// Differential battery: a campaign's serialized report must be
// bit-identical no matter how many worker threads (or per-trial scan
// threads) produced it, across randomly generated specs — the property
// that makes campaign sweeps trustworthy regression anchors.
#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "common/rng.h"

namespace radar::campaign {
namespace {

CampaignSpec base_spec() {
  CampaignSpec spec;
  spec.name = "diff";
  spec.model = "tiny";
  spec.train = false;
  spec.trials = 2;
  spec.seed = 1234;
  spec.attackers = {{.kind = "random_msb", .flips = 6},
                    {.kind = "random", .flips = 6}};
  SchemeSpec ilv;
  ilv.params.group_size = 32;
  SchemeSpec contig;
  contig.params.group_size = 32;
  contig.params.interleave = false;
  spec.schemes = {ilv, contig};
  return spec;
}

std::string run_json(const CampaignSpec& spec, std::size_t threads,
                     std::size_t scan_threads = 1) {
  const CampaignReport report =
      CampaignRunner(threads, scan_threads).run(spec);
  // CSV and JSON must both be deterministic; fold both into the digest.
  return report.to_json() + report.to_csv();
}

TEST(CampaignDeterminism, OneVsManyThreads) {
  const CampaignSpec spec = base_spec();
  const std::string serial = run_json(spec, 1);
  EXPECT_EQ(serial, run_json(spec, 4));
  EXPECT_EQ(serial, run_json(spec, 8));
}

TEST(CampaignDeterminism, ParallelScanSessionMatchesSerialScan) {
  // Per-trial scans run through ScanSession; a multi-threaded session must
  // leave the campaign report bit-identical to the serial scan path.
  CampaignSpec spec = base_spec();
  spec.attackers[0].flips = 10;
  const std::string serial = run_json(spec, 1, /*scan_threads=*/1);
  EXPECT_EQ(serial, run_json(spec, 1, /*scan_threads=*/4));
  EXPECT_EQ(serial, run_json(spec, 3, /*scan_threads=*/2));
}

TEST(CampaignDeterminism, AccuracyEvaluationPath) {
  CampaignSpec spec = base_spec();
  spec.eval_subset = 64;
  spec.trials = 2;
  spec.schemes.resize(1);
  EXPECT_EQ(run_json(spec, 1), run_json(spec, 6));
}

TEST(CampaignDeterminism, EvalEngineAndBatchInvariance) {
  // The int8 engine accumulates exactly in int32, so the direct-conv
  // reference kernels, the tiled im2col+GEMM kernels, and every eval
  // batch size must produce byte-identical reports.
  CampaignSpec spec = base_spec();
  spec.eval_subset = 48;
  spec.trials = 2;
  spec.schemes.resize(1);
  auto run_with = [&](EvalOptions eval, std::size_t threads) {
    const CampaignReport report =
        CampaignRunner(threads, 1, ScanMode::kFull, eval).run(spec);
    return report.to_json() + report.to_csv();
  };
  const std::string baseline = run_with({}, 1);
  EXPECT_EQ(baseline,
            run_with({.batch = 0, .engine = qnn::EngineKind::kReference}, 1));
  EXPECT_EQ(baseline,
            run_with({.batch = 1, .engine = qnn::EngineKind::kBatched}, 1));
  EXPECT_EQ(baseline,
            run_with({.batch = 7, .engine = qnn::EngineKind::kBatched}, 3));
  EXPECT_EQ(baseline,
            run_with({.batch = 17, .engine = qnn::EngineKind::kReference}, 2));
}

TEST(CampaignDeterminism, IncrementalEvalMatchesFullWithAccuracies) {
  // The incremental engine adds the clean-baseline eval cache (reload
  // recovery can return the model exactly to baseline); reports must stay
  // byte-identical to the full engine with accuracies enabled.
  CampaignSpec spec = base_spec();
  spec.eval_subset = 48;
  spec.trials = 2;
  spec.policy = core::RecoveryPolicy::kReloadClean;
  auto run_mode = [&](ScanMode mode, std::size_t threads) {
    const CampaignReport report =
        CampaignRunner(threads, 1, mode).run(spec);
    return report.to_json() + report.to_csv();
  };
  const std::string full = run_mode(ScanMode::kFull, 1);
  EXPECT_EQ(full, run_mode(ScanMode::kIncremental, 1));
  EXPECT_EQ(full, run_mode(ScanMode::kIncremental, 4));
}

TEST(CampaignDeterminism, PbfaAndKnowledgeableProfiles) {
  CampaignSpec spec = base_spec();
  spec.attackers = {
      {.kind = "pbfa", .flips = 3, .attack_batch = 8},
      {.kind = "knowledgeable",
       .flips = 3,
       .assumed_group_size = 32,
       .attack_batch = 8}};
  EXPECT_EQ(run_json(spec, 1), run_json(spec, 5));
}

TEST(CampaignDeterminism, RandomSpecsSweep) {
  Rng rng(2026);
  const std::vector<std::string> scheme_ids = {"radar2", "radar3", "crc7",
                                               "fletcher"};
  for (int round = 0; round < 3; ++round) {
    CampaignSpec spec;
    spec.name = "fuzz" + std::to_string(round);
    spec.model = "tiny";
    spec.train = false;
    spec.trials = 1 + static_cast<int>(rng.uniform_int(0, 1));
    spec.seed = rng.bits();
    spec.fault_rates = {0.0};
    if (rng.bernoulli(0.5)) spec.fault_rates.push_back(1e-4);
    const int n_attackers = 1 + static_cast<int>(rng.uniform_int(0, 1));
    for (int a = 0; a < n_attackers; ++a) {
      AttackerSpec atk;
      atk.kind = rng.bernoulli(0.5) ? "random_msb" : "random";
      atk.flips = 1 + static_cast<int>(rng.uniform_int(0, 11));
      spec.attackers.push_back(atk);
    }
    const int n_schemes = 1 + static_cast<int>(rng.uniform_int(0, 2));
    for (int s = 0; s < n_schemes; ++s) {
      SchemeSpec sch;
      sch.id = scheme_ids[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(scheme_ids.size()) - 1))];
      sch.params.group_size = std::int64_t{16}
                              << rng.uniform_int(0, 2);  // 16/32/64
      sch.params.interleave = rng.bernoulli(0.5);
      spec.schemes.push_back(sch);
    }
    const std::size_t threads = 2 + static_cast<std::size_t>(
                                        rng.uniform_int(0, 4));
    EXPECT_EQ(run_json(spec, 1), run_json(spec, threads))
        << "spec:\n" << spec.to_json();
  }
}

TEST(CampaignDeterminism, SubSpecReproducesFullSpecCells) {
  // Profile RNG streams are derived from the *content* of each
  // (attacker, fault-rate) group, not its matrix position — so deleting a
  // row from a spec (or loading its profiles from the disk cache) leaves
  // every remaining cell bit-identical.
  CampaignSpec spec = base_spec();
  spec.cache_tag = "difftest";
  spec.seed = 0xCAC4E;
  const CampaignReport full = CampaignRunner(2).run(spec);

  CampaignSpec sub = spec;
  sub.attackers = {spec.attackers[1]};  // keep only the second attacker
  const CampaignReport part = CampaignRunner(1).run(sub);
  for (std::size_t si = 0; si < spec.schemes.size(); ++si) {
    EXPECT_DOUBLE_EQ(part.cell(0, 0, si).mean_detected,
                     full.cell(1, 0, si).mean_detected);
    EXPECT_DOUBLE_EQ(part.cell(0, 0, si).mean_flips,
                     full.cell(1, 0, si).mean_flips);
    EXPECT_DOUBLE_EQ(part.cell(0, 0, si).mean_flagged_groups,
                     full.cell(1, 0, si).mean_flagged_groups);
  }
}

TEST(CampaignDeterminism, SeedChangesResults) {
  // Sanity guard: the determinism above is not because everything
  // collapses to the same constant output.
  CampaignSpec spec = base_spec();
  const std::string a = run_json(spec, 2);
  spec.seed ^= 0xDEADBEEF;
  EXPECT_NE(a, run_json(spec, 2));
}

}  // namespace
}  // namespace radar::campaign
