// Differential battery for the batched int8 inference engine: the tiled
// im2col+GEMM path must match a scalar reference and the pre-existing
// kernels BIT-exactly (int32 accumulation is exact, and both paths share
// one epilogue expression), across random geometries, odd strides and
// paddings, 1x1 and large kernels, and batch sizes 1..N — plus the
// zero-allocation guarantee of the steady-state forward loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <tuple>

#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "qnn/engine.h"
#include "qnn/kernels.h"
#include "quant/qmodel.h"

// ---- counting global allocator (zero-allocation assertions) ----
namespace {
std::atomic<std::size_t> g_live_allocs{0};
}

void* operator new(std::size_t n) {
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  ++g_live_allocs;
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace radar::qnn {
namespace {

std::vector<std::int8_t> random_codes(std::size_t n, Rng& rng) {
  std::vector<std::int8_t> v(n);
  for (auto& x : v) x = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return v;
}

QTensor random_qtensor(std::vector<std::int64_t> shape, float scale,
                       Rng& rng) {
  QTensor x;
  x.shape = std::move(shape);
  x.scale = scale;
  x.data = random_codes(static_cast<std::size_t>(x.numel()), rng);
  return x;
}

/// In-test scalar reference: the direct convolution polynomial with the
/// exact epilogue expression of the kernels.
nn::Tensor scalar_conv_ref(const QTensor& x, const std::vector<std::int8_t>& w,
                           float w_scale, const ConvGeom& g,
                           const std::vector<float>& bias) {
  const std::int64_t n = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const std::int64_t oh = g.out_size(in_h), ow = g.out_size(in_w);
  nn::Tensor y({n, g.out_channels, oh, ow});
  const float rescale = x.scale * w_scale;
  for (std::int64_t s = 0; s < n; ++s) {
    const std::int8_t* xs = x.data.data() + s * g.in_channels * in_h * in_w;
    for (std::int64_t co = 0; co < g.out_channels; ++co) {
      const float b = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(co)];
      for (std::int64_t yo = 0; yo < oh; ++yo) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          std::int32_t acc = 0;
          for (std::int64_t ci = 0; ci < g.in_channels; ++ci) {
            for (std::int64_t kh = 0; kh < g.kernel; ++kh) {
              for (std::int64_t kw = 0; kw < g.kernel; ++kw) {
                const std::int64_t yi = yo * g.stride - g.padding + kh;
                const std::int64_t xi = xo * g.stride - g.padding + kw;
                if (yi < 0 || yi >= in_h || xi < 0 || xi >= in_w) continue;
                acc += static_cast<std::int32_t>(
                           xs[(ci * in_h + yi) * in_w + xi]) *
                       w[static_cast<std::size_t>(
                           ((co * g.in_channels + ci) * g.kernel + kh) *
                               g.kernel +
                           kw)];
              }
            }
          }
          y[y.idx4(s, co, yo, xo)] = static_cast<float>(acc) * rescale + b;
        }
      }
    }
  }
  return y;
}

void expect_bitwise_equal(const nn::Tensor& a, const nn::Tensor& b,
                          const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<std::size_t>(a.numel())),
            0)
      << what << ": outputs are not bit-identical";
}

TEST(TiledConv, MatchesScalarAndDirectAcrossGeometries) {
  Rng rng(11);
  struct Geom {
    std::int64_t ci, co, k, stride, pad, h, w, n;
  };
  std::vector<Geom> cases = {
      {1, 1, 1, 1, 0, 4, 4, 1},   // degenerate 1x1
      {3, 8, 1, 1, 0, 9, 7, 2},   // 1x1 pointwise, odd sizes
      {3, 4, 1, 2, 0, 9, 9, 2},   // strided 1x1 (projection shortcut)
      {2, 5, 3, 1, 1, 8, 8, 3},   // classic 3x3
      {3, 4, 3, 2, 1, 11, 9, 2},  // strided 3x3, odd map
      {4, 6, 3, 3, 2, 10, 13, 1}, // stride 3, fat padding
      {2, 3, 5, 1, 2, 9, 9, 2},   // 5x5
      {1, 7, 5, 2, 0, 11, 11, 4}, // 5x5 no padding, stride 2
      {2, 2, 7, 1, 3, 12, 10, 2}, // large kernel
      {5, 17, 3, 1, 1, 6, 6, 3},  // co not a multiple of the tile width
  };
  // A few random geometries on top of the crafted ones.
  for (int r = 0; r < 8; ++r) {
    Geom g;
    g.k = 1 + 2 * rng.uniform_int(0, 2);  // 1/3/5
    g.stride = 1 + rng.uniform_int(0, 2);
    g.pad = rng.uniform_int(0, 2);
    g.ci = 1 + rng.uniform_int(0, 4);
    g.co = 1 + rng.uniform_int(0, 8);
    g.h = g.k + rng.uniform_int(0, 6);
    g.w = g.k + rng.uniform_int(0, 6);
    g.n = 1 + rng.uniform_int(0, 3);
    cases.push_back(g);
  }
  QnnScratch scratch;
  for (const Geom& c : cases) {
    ConvGeom geom;
    geom.in_channels = c.ci;
    geom.out_channels = c.co;
    geom.kernel = c.k;
    geom.stride = c.stride;
    geom.padding = c.pad;
    const std::string what = "ci=" + std::to_string(c.ci) + " co=" +
                             std::to_string(c.co) + " k=" +
                             std::to_string(c.k) + " s=" +
                             std::to_string(c.stride) + " p=" +
                             std::to_string(c.pad) + " hw=" +
                             std::to_string(c.h) + "x" + std::to_string(c.w) +
                             " n=" + std::to_string(c.n);
    const auto w = random_codes(
        static_cast<std::size_t>(c.co * c.ci * c.k * c.k), rng);
    std::vector<float> bias;
    for (std::int64_t i = 0; i < c.co; ++i)
      bias.push_back(0.1f * static_cast<float>(rng.normal()));
    const QTensor x = random_qtensor({c.n, c.ci, c.h, c.w}, 0.04f, rng);
    const float w_scale = 0.02f;

    const nn::Tensor ref = scalar_conv_ref(x, w, w_scale, geom, bias);
    const nn::Tensor direct = conv2d_i8(x, w, w_scale, geom, bias);
    const nn::Tensor tiled = conv2d_i8_tiled(x, w, w_scale, geom, bias);
    nn::Tensor tiled_into;
    conv2d_i8_tiled_into(x, w, w_scale, geom, bias, scratch, tiled_into);

    expect_bitwise_equal(ref, direct, what + " (direct)");
    expect_bitwise_equal(ref, tiled, what + " (tiled)");
    expect_bitwise_equal(ref, tiled_into, what + " (tiled_into)");
  }
}

TEST(TiledConv, EveryDispatchLevelMatchesScalar) {
  // The register-tiled GEMM variants (AVX2 / AVX-512) against the scalar
  // tile, bit for bit, across geometries chosen to hit the vector column
  // chunks (16 / 32 wide), their scalar column tails, odd-K tails, and
  // the mt < 4 row edge. Output patch counts per image span 1..~256 so
  // every chunk/tail seam of both vector widths is crossed.
  Rng rng(31);
  struct Geom {
    std::int64_t ci, co, k, stride, pad, h, w, n;
  };
  const std::vector<Geom> cases = {
      {1, 1, 1, 1, 0, 1, 1, 1},    // single output column
      {3, 5, 3, 1, 1, 5, 3, 1},    // tiny odd patch count, mt tail
      {2, 4, 3, 1, 1, 4, 4, 2},    // p = 32 exactly (one AVX-512 chunk)
      {2, 4, 3, 1, 1, 4, 4, 3},    // p = 48: chunk + AVX2-only chunk
      {3, 8, 1, 1, 0, 17, 3, 1},   // odd K = 3, p = 51
      {4, 9, 3, 2, 1, 15, 15, 2},  // strided, co % 4 != 0
      {5, 17, 5, 1, 2, 9, 9, 2},   // K = 125 (odd), wide co tail
      {8, 12, 3, 1, 1, 16, 16, 1}, // p = 256: full tile, even K = 72
  };
  QnnScratch scratch;
  for (const Geom& c : cases) {
    ConvGeom geom;
    geom.in_channels = c.ci;
    geom.out_channels = c.co;
    geom.kernel = c.k;
    geom.stride = c.stride;
    geom.padding = c.pad;
    const auto w = random_codes(
        static_cast<std::size_t>(c.co * c.ci * c.k * c.k), rng);
    std::vector<float> bias;
    for (std::int64_t i = 0; i < c.co; ++i)
      bias.push_back(0.1f * static_cast<float>(rng.normal()));
    const QTensor x = random_qtensor({c.n, c.ci, c.h, c.w}, 0.04f, rng);
    nn::Tensor want;
    {
      cpu::ScopedSimdLevel guard(cpu::SimdLevel::kScalar);
      conv2d_i8_tiled_into(x, w, 0.02f, geom, bias, scratch, want);
    }
    for (int l = 0; l < cpu::kNumSimdLevels; ++l) {
      const auto lvl = static_cast<cpu::SimdLevel>(l);
      if (!cpu::level_supported(lvl)) continue;
      cpu::ScopedSimdLevel guard(lvl);
      nn::Tensor got;
      conv2d_i8_tiled_into(x, w, 0.02f, geom, bias, scratch, got);
      expect_bitwise_equal(want, got,
                           std::string("level ") + cpu::level_name(lvl));
    }
  }
}

TEST(LinearI8, EveryDispatchLevelMatchesScalar) {
  Rng rng(37);
  for (const auto& [n, f, out] :
       std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>>{
           {1, 1, 1}, {3, 15, 5}, {7, 64, 9}, {5, 333, 12}}) {
    const auto w = random_codes(static_cast<std::size_t>(out * f), rng);
    std::vector<float> bias;
    for (std::int64_t i = 0; i < out; ++i)
      bias.push_back(0.1f * static_cast<float>(rng.normal()));
    const QTensor x = random_qtensor({n, f}, 0.03f, rng);
    nn::Tensor want;
    {
      cpu::ScopedSimdLevel guard(cpu::SimdLevel::kScalar);
      want = linear_i8(x, w, 0.02f, out, bias);
    }
    for (int l = 0; l < cpu::kNumSimdLevels; ++l) {
      const auto lvl = static_cast<cpu::SimdLevel>(l);
      if (!cpu::level_supported(lvl)) continue;
      cpu::ScopedSimdLevel guard(lvl);
      expect_bitwise_equal(want, linear_i8(x, w, 0.02f, out, bias),
                           std::string("f=") + std::to_string(f) +
                               " level " + cpu::level_name(lvl));
    }
  }
}

TEST(TiledConv, NoBiasMatches) {
  Rng rng(12);
  ConvGeom geom;
  geom.in_channels = 3;
  geom.out_channels = 5;
  geom.kernel = 3;
  geom.stride = 1;
  geom.padding = 1;
  const auto w = random_codes(static_cast<std::size_t>(5 * 3 * 9), rng);
  const QTensor x = random_qtensor({2, 3, 7, 7}, 0.05f, rng);
  expect_bitwise_equal(conv2d_i8(x, w, 0.03f, geom, {}),
                       conv2d_i8_tiled(x, w, 0.03f, geom, {}), "no-bias");
}

TEST(LinearI8, TiledMatchesScalarReference) {
  Rng rng(13);
  for (const auto& [n, f, out] :
       std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>>{
           {1, 5, 3}, {3, 16, 5}, {7, 33, 9}, {64, 64, 10}}) {
    const auto w = random_codes(static_cast<std::size_t>(out * f), rng);
    std::vector<float> bias;
    for (std::int64_t i = 0; i < out; ++i)
      bias.push_back(0.1f * static_cast<float>(rng.normal()));
    const QTensor x = random_qtensor({n, f}, 0.03f, rng);
    const float ws = 0.02f;
    const nn::Tensor y = linear_i8(x, w, ws, out, bias);
    const float rescale = x.scale * ws;
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t o = 0; o < out; ++o) {
        std::int32_t acc = 0;
        for (std::int64_t kk = 0; kk < f; ++kk)
          acc += static_cast<std::int32_t>(
                     x.data[static_cast<std::size_t>(i * f + kk)]) *
                 w[static_cast<std::size_t>(o * f + kk)];
        const float expect = static_cast<float>(acc) * rescale +
                             bias[static_cast<std::size_t>(o)];
        ASSERT_EQ(y[y.idx2(i, o)], expect) << "n=" << n << " o=" << o;
      }
    }
  }
}

// ---- engine-level differentials ----

struct EngineRig {
  nn::ResNetSpec spec;
  std::unique_ptr<nn::ResNet> model;
  std::unique_ptr<quant::QuantizedModel> qm;
  nn::Tensor calib, x;

  EngineRig() {
    Rng rng(21);
    spec.num_classes = 4;
    spec.base_width = 8;
    spec.blocks_per_stage = {1, 1};
    spec.name = "rig";
    model = std::make_unique<nn::ResNet>(spec, rng);
    // Non-trivial BN running statistics.
    nn::Tensor warm = nn::Tensor::randn({8, 3, 16, 16}, rng);
    model->forward(warm, nn::Mode::kTrain);
    qm = std::make_unique<quant::QuantizedModel>(*model);
    calib = nn::Tensor::randn({16, 3, 16, 16}, rng);
    x = nn::Tensor::randn({6, 3, 16, 16}, rng);
  }

  InferenceEngine make(EngineKind kind, ThreadPool* pool = nullptr) {
    InferenceEngine e(*qm, kind, pool);
    e.calibrate(calib);
    return e;
  }
};

TEST(Engine, BatchedMatchesReferenceBitExactly) {
  EngineRig rig;
  InferenceEngine ref = rig.make(EngineKind::kReference);
  InferenceEngine bat = rig.make(EngineKind::kBatched);
  expect_bitwise_equal(ref.forward(rig.x), bat.forward(rig.x),
                       "engine kinds");
}

TEST(Engine, BatchSplitInvariance) {
  EngineRig rig;
  InferenceEngine eng = rig.make(EngineKind::kBatched);
  const nn::Tensor full = eng.forward(rig.x);
  const std::int64_t chw = 3 * 16 * 16;
  for (std::int64_t s = 0; s < rig.x.dim(0); ++s) {
    nn::Tensor one({1, 3, 16, 16});
    std::memcpy(one.data(), rig.x.data() + s * chw,
                sizeof(float) * static_cast<std::size_t>(chw));
    const nn::Tensor ly = eng.forward(one);
    for (std::int64_t c = 0; c < full.dim(1); ++c)
      ASSERT_EQ(full[full.idx2(s, c)], ly[ly.idx2(0, c)])
          << "sample " << s << " class " << c;
  }
}

TEST(Engine, ThreadPoolInvariance) {
  EngineRig rig;
  InferenceEngine serial = rig.make(EngineKind::kBatched, nullptr);
  ThreadPool pool(3);
  InferenceEngine pooled = rig.make(EngineKind::kBatched, &pool);
  expect_bitwise_equal(serial.forward(rig.x), pooled.forward(rig.x),
                       "thread pool");
}

TEST(Engine, SeesLiveWeightMutations) {
  EngineRig rig;
  InferenceEngine eng = rig.make(EngineKind::kBatched);
  const nn::Tensor before = eng.forward(rig.x);
  const std::int8_t old = rig.qm->get_code(0, 0);
  rig.qm->set_code(0, 0, static_cast<std::int8_t>(old == 127 ? -127 : 127));
  const nn::Tensor attacked = eng.forward(rig.x);
  EXPECT_GT(nn::max_abs_diff(before, attacked), 0.0f);
  rig.qm->set_code(0, 0, old);
  expect_bitwise_equal(before, eng.forward(rig.x), "restored weights");
}

TEST(Engine, SteadyStateForwardIsAllocationFree) {
  EngineRig rig;
  InferenceEngine eng = rig.make(EngineKind::kBatched, /*pool=*/nullptr);
  QnnScratch scratch;
  nn::Tensor logits;
  // Warm-up: buffers grow to the high-water mark of this batch shape.
  eng.forward_into(rig.x, scratch, logits);
  eng.forward_into(rig.x, scratch, logits);
  // A smaller "remainder" batch (as produced when eval_subset is not a
  // multiple of eval_batch) must reuse the grown buffers too.
  nn::Tensor remainder({2, 3, 16, 16});
  std::memcpy(remainder.data(), rig.x.data(),
              sizeof(float) * static_cast<std::size_t>(remainder.numel()));
  const std::size_t grows_after_warmup = scratch.grows;
  const std::size_t allocs_before = g_live_allocs.load();
  for (int i = 0; i < 5; ++i) {
    eng.forward_into(rig.x, scratch, logits);
    eng.forward_into(remainder, scratch, logits);
  }
  const std::size_t allocs_after = g_live_allocs.load();
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "steady-state forward loop heap-allocated";
  EXPECT_EQ(scratch.grows, grows_after_warmup) << "scratch kept growing";
}

TEST(Engine, ReferenceSteadyStateIsAllocationFreeToo) {
  EngineRig rig;
  InferenceEngine eng = rig.make(EngineKind::kReference, /*pool=*/nullptr);
  QnnScratch scratch;
  nn::Tensor logits;
  eng.forward_into(rig.x, scratch, logits);
  const std::size_t allocs_before = g_live_allocs.load();
  for (int i = 0; i < 3; ++i) eng.forward_into(rig.x, scratch, logits);
  EXPECT_EQ(g_live_allocs.load() - allocs_before, 0u);
}

TEST(Engine, RequiresCalibration) {
  EngineRig rig;
  InferenceEngine eng(*rig.qm, EngineKind::kBatched, nullptr);
  EXPECT_THROW(eng.forward(rig.x), InvalidArgument);
  eng.calibrate(rig.calib);
  EXPECT_THROW(eng.calibrate(rig.calib), InvalidArgument);  // once only
  EXPECT_NO_THROW(eng.forward(rig.x));
}

}  // namespace
}  // namespace radar::qnn
