// Forward-pass correctness of the layer zoo against hand-computed or
// reference results, plus mode/caching semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layer.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace radar::nn {
namespace {

TEST(Conv2d, IdentityKernelPassesThrough) {
  Rng rng(1);
  Conv2d conv(1, 1, 1, 1, 0, /*bias=*/false, rng);
  conv.weight().value.fill(1.0f);
  Tensor x = Tensor::from_vector({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor y = conv.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), x.shape());
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, KnownSumKernel) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 1, /*bias=*/false, rng);
  conv.weight().value.fill(1.0f);  // 3x3 box filter
  Tensor x = Tensor::full({1, 1, 3, 3}, 1.0f);
  Tensor y = conv.forward(x, Mode::kEval);
  // Center sees all 9 ones; corners see 4; edges see 6.
  EXPECT_FLOAT_EQ(y[y.idx4(0, 0, 1, 1)], 9.0f);
  EXPECT_FLOAT_EQ(y[y.idx4(0, 0, 0, 0)], 4.0f);
  EXPECT_FLOAT_EQ(y[y.idx4(0, 0, 0, 1)], 6.0f);
}

TEST(Conv2d, StrideHalvesOutput) {
  Rng rng(2);
  Conv2d conv(3, 8, 3, 2, 1, false, rng);
  Tensor x({2, 3, 8, 8});
  Tensor y = conv.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 8, 4, 4}));
}

TEST(Conv2d, MultiChannelAccumulates) {
  Rng rng(3);
  Conv2d conv(2, 1, 1, 1, 0, false, rng);
  conv.weight().value[0] = 2.0f;   // channel 0 weight
  conv.weight().value[1] = -1.0f;  // channel 1 weight
  Tensor x({1, 2, 1, 1});
  x[0] = 5.0f;   // channel 0
  x[1] = 3.0f;   // channel 1
  Tensor y = conv.forward(x, Mode::kEval);
  EXPECT_FLOAT_EQ(y[0], 2.0f * 5.0f - 3.0f);
}

TEST(Conv2d, BiasAdds) {
  Rng rng(4);
  Conv2d conv(1, 2, 1, 1, 0, /*bias=*/true, rng);
  conv.weight().value.fill(0.0f);
  conv.bias().value[0] = 1.5f;
  conv.bias().value[1] = -2.0f;
  Tensor x({1, 1, 2, 2});
  Tensor y = conv.forward(x, Mode::kEval);
  EXPECT_FLOAT_EQ(y[y.idx4(0, 0, 0, 0)], 1.5f);
  EXPECT_FLOAT_EQ(y[y.idx4(0, 1, 1, 1)], -2.0f);
}

TEST(Conv2d, MacsFormula) {
  Rng rng(5);
  Conv2d conv(16, 32, 3, 1, 1, false, rng);
  // 32 out-ch * 8*8 spatial * 16 in-ch * 9 taps
  EXPECT_EQ(conv.macs(8, 8), 32 * 64 * 16 * 9);
}

TEST(Conv2d, InputChannelMismatchThrows) {
  Rng rng(6);
  Conv2d conv(3, 4, 3, 1, 1, false, rng);
  Tensor x({1, 2, 8, 8});
  EXPECT_THROW(conv.forward(x, Mode::kEval), InvalidArgument);
}

TEST(Conv2d, BackwardBeforeForwardThrows) {
  Rng rng(7);
  Conv2d conv(1, 1, 3, 1, 1, false, rng);
  Tensor g({1, 1, 4, 4});
  EXPECT_THROW(conv.backward(g), InvalidArgument);
}

TEST(Conv2d, EvalModeDoesNotCache) {
  Rng rng(8);
  Conv2d conv(1, 1, 3, 1, 1, false, rng);
  Tensor x({1, 1, 4, 4});
  conv.forward(x, Mode::kEval);
  EXPECT_THROW(conv.backward(Tensor({1, 1, 4, 4})), InvalidArgument);
}

TEST(Linear, MatchesManualComputation) {
  Rng rng(9);
  Linear fc(3, 2, /*bias=*/true, rng);
  fc.weight().value = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  fc.bias().value = Tensor::from_vector({2}, {0.5f, -0.5f});
  Tensor x = Tensor::from_vector({1, 3}, {1, 1, 1});
  Tensor y = fc.forward(x, Mode::kEval);
  EXPECT_FLOAT_EQ(y[0], 6.5f);
  EXPECT_FLOAT_EQ(y[1], 14.5f);
}

TEST(Linear, BatchIndependentRows) {
  Rng rng(10);
  Linear fc(4, 3, true, rng);
  Tensor x1 = Tensor::randn({1, 4}, rng);
  Tensor x2({2, 4});
  for (int j = 0; j < 4; ++j) {
    x2[x2.idx2(0, j)] = x1[j];
    x2[x2.idx2(1, j)] = -x1[j];
  }
  Tensor y1 = fc.forward(x1, Mode::kEval);
  Tensor y2 = fc.forward(x2, Mode::kEval);
  for (int j = 0; j < 3; ++j)
    EXPECT_NEAR(y2[y2.idx2(0, j)], y1[j], 1e-5f);
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor x = Tensor::from_vector({4}, {-1, 0, 2, -3});
  Tensor y = relu.forward(x, Mode::kEval);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReLU, BackwardMasksGradient) {
  ReLU relu;
  Tensor x = Tensor::from_vector({3}, {-1, 1, 2});
  relu.forward(x, Mode::kTrain);
  Tensor g = Tensor::from_vector({3}, {10, 20, 30});
  Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 20.0f);
  EXPECT_FLOAT_EQ(gx[2], 30.0f);
}

TEST(Flatten, CollapsesTrailingDims) {
  Flatten f;
  Tensor x({2, 3, 4, 5});
  Tensor y = f.forward(x, Mode::kTrain);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 60}));
  Tensor gx = f.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(BatchNorm, TrainNormalizesBatch) {
  BatchNorm2d bn(1);
  Tensor x = Tensor::from_vector({2, 1, 1, 2}, {1, 2, 3, 4});
  Tensor y = bn.forward(x, Mode::kTrain);
  // Batch mean 2.5, so outputs are symmetric around 0 with ~unit var.
  EXPECT_NEAR(y.sum(), 0.0f, 1e-4f);
  EXPECT_NEAR(y.sq_norm() / 4.0f, 1.0f, 1e-2f);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm2d bn(1, /*momentum=*/1.0f);  // running <- batch immediately
  Tensor x = Tensor::from_vector({1, 1, 1, 4}, {2, 4, 6, 8});
  bn.forward(x, Mode::kTrain);
  // Now eval on different data must use the stats from x (mean 5).
  Tensor z = Tensor::from_vector({1, 1, 1, 2}, {5, 5});
  Tensor y = bn.forward(z, Mode::kEval);
  EXPECT_NEAR(y[0], 0.0f, 1e-3f);
  EXPECT_NEAR(y[1], 0.0f, 1e-3f);
}

TEST(BatchNorm, GradModeMatchesEvalForward) {
  Rng rng(11);
  BatchNorm2d bn(2);
  Tensor warm = Tensor::randn({4, 2, 3, 3}, rng);
  bn.forward(warm, Mode::kTrain);  // populate running stats
  Tensor x = Tensor::randn({2, 2, 3, 3}, rng);
  Tensor ye = bn.forward(x, Mode::kEval);
  Tensor yg = bn.forward(x, Mode::kGrad);
  EXPECT_LT(max_abs_diff(ye, yg), 1e-6f);
}

TEST(BatchNorm, GradModeDoesNotUpdateRunningStats) {
  Rng rng(12);
  BatchNorm2d bn(1);
  const float rm_before = bn.running_mean()[0];
  Tensor x = Tensor::randn({2, 1, 4, 4}, rng, 5.0f);
  bn.forward(x, Mode::kGrad);
  EXPECT_EQ(bn.running_mean()[0], rm_before);
  bn.forward(x, Mode::kTrain);
  EXPECT_NE(bn.running_mean()[0], rm_before);
}

TEST(BatchNorm, AffineParamsApply) {
  BatchNorm2d bn(1, 1.0f);
  Tensor x = Tensor::from_vector({1, 1, 1, 2}, {0, 0});
  bn.gamma().value[0] = 3.0f;
  bn.beta().value[0] = -1.0f;
  Tensor y = bn.forward(x, Mode::kEval);  // running stats: mean 0, var 1
  EXPECT_NEAR(y[0], -1.0f, 1e-4f);
}

TEST(GlobalAvgPool, AveragesSpatial) {
  GlobalAvgPool pool;
  Tensor x = Tensor::from_vector({1, 2, 1, 2}, {1, 3, 10, 20});
  Tensor y = pool.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 15.0f);
}

TEST(GlobalAvgPool, BackwardSpreadsUniformly) {
  GlobalAvgPool pool;
  Tensor x({1, 1, 2, 2});
  pool.forward(x, Mode::kTrain);
  Tensor g = Tensor::from_vector({1, 1}, {8.0f});
  Tensor gx = pool.backward(g);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gx[i], 2.0f);
}

TEST(MaxPool, SelectsWindowMax) {
  MaxPool2d pool(2, 2, 0);
  Tensor x = Tensor::from_vector({1, 1, 2, 4}, {1, 5, 2, 0,  //
                                                3, 4, 7, 6});
  Tensor y = pool.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 7.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  MaxPool2d pool(2, 2, 0);
  Tensor x = Tensor::from_vector({1, 1, 2, 2}, {1, 9, 3, 2});
  pool.forward(x, Mode::kTrain);
  Tensor g = Tensor::from_vector({1, 1, 1, 1}, {5.0f});
  Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 5.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(Sequential, ChainsAndCollects) {
  Rng rng(13);
  Sequential seq;
  seq.emplace<Linear>("fc0", 4, 8, true, rng);
  seq.emplace<ReLU>("relu0");
  seq.emplace<Linear>("fc1", 8, 2, true, rng);
  Tensor x = Tensor::randn({3, 4}, rng);
  Tensor y = seq.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{3, 2}));

  std::vector<NamedParam> params;
  seq.collect_params("net", params);
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0].name, "net.fc0.weight");
  EXPECT_EQ(params[3].name, "net.fc1.bias");
}

}  // namespace
}  // namespace radar::nn
