// Quantizer and QuantizedModel: rounding contracts, bit-flip mutation,
// float-mirror synchronization, snapshots.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/qmodel.h"
#include "quant/quantizer.h"

namespace radar::quant {
namespace {

TEST(Quantizer, ScaleFromAbsMax) {
  nn::Tensor w = nn::Tensor::from_vector({4}, {0.5f, -1.27f, 0.1f, 1.0f});
  QuantResult r = quantize_symmetric(w);
  EXPECT_FLOAT_EQ(r.scale, 1.27f / 127.0f);
  EXPECT_EQ(r.q[1], -127);
}

TEST(Quantizer, RoundingErrorBounded) {
  Rng rng(1);
  nn::Tensor w = nn::Tensor::randn({1000}, rng, 0.05f);
  QuantResult r = quantize_symmetric(w);
  // Round-to-nearest: error at most scale/2 (plus fp noise).
  EXPECT_LE(quantization_error(w, r), r.scale * 0.5f + 1e-6f);
}

TEST(Quantizer, AllZeroTensor) {
  nn::Tensor w({16});
  QuantResult r = quantize_symmetric(w);
  EXPECT_FLOAT_EQ(r.scale, 1.0f);
  for (auto q : r.q) EXPECT_EQ(q, 0);
}

TEST(Quantizer, ExtremesHitFullRange) {
  nn::Tensor w = nn::Tensor::from_vector({2}, {1.0f, -1.0f});
  QuantResult r = quantize_symmetric(w);
  EXPECT_EQ(r.q[0], 127);
  EXPECT_EQ(r.q[1], -127);
}

TEST(Quantizer, DequantizeRoundTripIsIdempotent) {
  Rng rng(2);
  nn::Tensor w = nn::Tensor::randn({64}, rng);
  QuantResult r1 = quantize_symmetric(w);
  nn::Tensor dq({64});
  dequantize_into(r1.q, r1.scale, dq.data());
  QuantResult r2 = quantize_symmetric(dq);
  // Quantizing already-quantized values must be exact.
  EXPECT_EQ(r1.q, r2.q);
}

class QuantModelTest : public ::testing::Test {
 protected:
  QuantModelTest() : rng_(3), model_(nn::ResNetSpec::resnet20(10), rng_) {}
  Rng rng_;
  nn::ResNet model_;
};

TEST_F(QuantModelTest, QuantizesAllConvAndFcLayers) {
  QuantizedModel qm(model_);
  EXPECT_EQ(qm.num_layers(), 22u);
  EXPECT_EQ(qm.total_weights(), 270896);
}

TEST_F(QuantModelTest, FloatMirrorMatchesCodes) {
  QuantizedModel qm(model_);
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    const auto& l = qm.layer(li);
    for (std::int64_t i = 0; i < std::min<std::int64_t>(l.size(), 50); ++i) {
      EXPECT_FLOAT_EQ(l.param->value[i],
                      dequantize(l.q[static_cast<std::size_t>(i)], l.scale));
    }
  }
}

TEST_F(QuantModelTest, FlipBitUpdatesCodeAndMirror) {
  QuantizedModel qm(model_);
  const std::int8_t before = qm.get_code(0, 5);
  const std::int8_t returned = qm.flip_bit(0, 5, 7);
  EXPECT_EQ(returned, before);
  const std::int8_t after = qm.get_code(0, 5);
  EXPECT_NE(after, before);
  EXPECT_EQ(static_cast<std::uint8_t>(after ^ before), 0x80);
  EXPECT_FLOAT_EQ(qm.layer(0).param->value[5],
                  dequantize(after, qm.layer(0).scale));
}

TEST_F(QuantModelTest, FlipIsReversible) {
  QuantizedModel qm(model_);
  const std::int8_t orig = qm.get_code(3, 17);
  qm.flip_bit(3, 17, 2);
  qm.flip_bit(3, 17, 2);
  EXPECT_EQ(qm.get_code(3, 17), orig);
}

TEST_F(QuantModelTest, SnapshotRestoreRoundTrip) {
  QuantizedModel qm(model_);
  const ArenaSnapshot snap = qm.snapshot();
  const float mirror_before = qm.layer(1).param->value[0];
  qm.flip_bit(1, 0, 7);
  qm.flip_bit(4, 100, 6);
  qm.restore(snap);
  EXPECT_EQ(qm.get_code(1, 0), snap.span(1)[0]);
  EXPECT_FLOAT_EQ(qm.layer(1).param->value[0], mirror_before);
}

TEST_F(QuantModelTest, ForwardChangesAfterMsbFlips) {
  QuantizedModel qm(model_);
  nn::Tensor x = nn::Tensor::randn({1, 3, 32, 32}, rng_);
  nn::Tensor y0 = qm.forward(x);
  // Flip MSBs of a few first-layer weights: output must change.
  for (std::int64_t i = 0; i < 5; ++i) qm.flip_bit(0, i, 7);
  nn::Tensor y1 = qm.forward(x);
  EXPECT_GT(nn::max_abs_diff(y0, y1), 0.0f);
}

TEST_F(QuantModelTest, OutOfRangeAccessThrows) {
  QuantizedModel qm(model_);
  EXPECT_THROW(qm.get_code(0, qm.layer(0).size()), InvalidArgument);
  EXPECT_THROW(qm.flip_bit(0, -1, 7), InvalidArgument);
  EXPECT_THROW(qm.get_code(99, 0), std::out_of_range);
}

TEST_F(QuantModelTest, RestoreRejectsForeignSnapshot) {
  QuantizedModel qm(model_);
  const ArenaSnapshot empty;  // never captured: wrong geometry
  EXPECT_THROW(qm.restore(empty), InvalidArgument);
}

TEST_F(QuantModelTest, QuantizedAccuracyCloseToFloat) {
  // Quantization of a *random-init* network: outputs should still be
  // highly correlated (scale-preserving), sanity-checking the pipeline.
  nn::Tensor x = nn::Tensor::randn({4, 3, 32, 32}, rng_);
  Rng rng2(3);
  nn::ResNet fresh(nn::ResNetSpec::resnet20(10), rng2);
  nn::Tensor y_float = fresh.forward(x);
  QuantizedModel qm(model_);  // model_ has identical init (same seed)
  nn::Tensor y_quant = qm.forward(x);
  EXPECT_LT(nn::max_abs_diff(y_float, y_quant),
            0.25f * std::max(1.0f, y_float.abs_max()));
}

}  // namespace
}  // namespace radar::quant
