// ThreadPool coverage: concurrent submit+wait, parallel_for_chunks
// boundary cases, the chunks_or_inline inline path and global() reuse.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace radar {
namespace {

TEST(ThreadPool, SizeDefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
  ThreadPool pool3(3);
  EXPECT_EQ(pool3.size(), 3u);
}

TEST(ThreadPool, SubmitThenWaitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i)
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait();
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, WaitWithNothingSubmittedReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ConcurrentSubmittersAndWaiters) {
  // Several producer threads hammer submit() while the main thread
  // interleaves wait() calls: every task must run exactly once and no
  // wait() may hang or return before the tasks it covers are done.
  ThreadPool pool(4);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 100;
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &ran] {
      for (int i = 0; i < kPerProducer; ++i)
        pool.submit(
            [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  for (auto& t : producers) t.join();
  pool.wait();
  EXPECT_EQ(ran.load(), kProducers * kPerProducer);
  // The pool must be reusable after wait().
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait();
  EXPECT_EQ(ran.load(), kProducers * kPerProducer + 1);
}

TEST(ThreadPool, ParallelForVisitsEachIndexOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForChunksCoversRangeExactly) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1003;  // not a multiple of the pool size
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(kN, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lk(mu);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t covered = 0, expect_begin = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, expect_begin) << "gap or overlap between chunks";
    EXPECT_LT(b, e) << "empty chunk dispatched";
    covered += e - b;
    expect_begin = e;
  }
  EXPECT_EQ(covered, kN);
}

TEST(ThreadPool, ParallelForChunksZeroElements) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for_chunks(0, [&](std::size_t, std::size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 0) << "n=0 must dispatch no chunks";
  pool.parallel_for(0, [&](std::size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForChunksFewerElementsThanThreads) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 3;  // n < threads
  std::mutex mu;
  std::set<std::size_t> seen;
  pool.parallel_for_chunks(kN, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lk(mu);
    for (std::size_t i = b; i < e; ++i)
      EXPECT_TRUE(seen.insert(i).second) << "index " << i << " repeated";
  });
  EXPECT_EQ(seen.size(), kN);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), kN - 1);
}

TEST(ThreadPool, ChunksOrInlineRunsInlineWithoutPool) {
  // Null pool: exactly one fn(0, n) call on the calling thread.
  const auto self = std::this_thread::get_id();
  int calls = 0;
  ThreadPool::chunks_or_inline(nullptr, 100,
                               [&](std::size_t b, std::size_t e) {
                                 ++calls;
                                 EXPECT_EQ(b, 0u);
                                 EXPECT_EQ(e, 100u);
                                 EXPECT_EQ(std::this_thread::get_id(), self);
                               });
  EXPECT_EQ(calls, 1);

  // Size-1 pool and n == 1 also take the inline path.
  ThreadPool one(1);
  calls = 0;
  ThreadPool::chunks_or_inline(&one, 50, [&](std::size_t, std::size_t) {
    ++calls;
    EXPECT_EQ(std::this_thread::get_id(), self);
  });
  EXPECT_EQ(calls, 1);

  ThreadPool four(4);
  calls = 0;
  ThreadPool::chunks_or_inline(&four, 1, [&](std::size_t b, std::size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 1u);
  });
  EXPECT_EQ(calls, 1);

  // n == 0 never calls fn at all.
  ThreadPool::chunks_or_inline(&four, 0,
                               [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ChunksOrInlineParallelPathSums) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::atomic<std::size_t> sum{0};
  ThreadPool::chunks_or_inline(&pool, kN, [&](std::size_t b, std::size_t e) {
    std::size_t local = 0;
    for (std::size_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ThreadPool, GlobalReturnsSameInstanceAndStaysUsable) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
  std::atomic<int> ran{0};
  a.parallel_for(10, [&ran](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 10);
  // A second round through the same global pool (reuse, not rebuild).
  a.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  a.wait();
  EXPECT_EQ(ran.load(), 11);
}

}  // namespace
}  // namespace radar
