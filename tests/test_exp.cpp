// Experiment workspace: bundle/profile caching, replay invariants.
// Uses the seconds-scale "tiny" bundle and a temporary cache directory.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "common/env.h"
#include "common/serialize.h"
#include "exp/workspace.h"

namespace radar::exp {
namespace {

class ExpWorkspace : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cache_dir_ = "/tmp/radar_test_cache_" + std::to_string(::getpid());
    ::setenv("RADAR_CACHE_DIR", cache_dir_.c_str(), 1);
  }
  static void TearDownTestSuite() {
    ::unsetenv("RADAR_CACHE_DIR");
    std::filesystem::remove_all(cache_dir_);
  }
  static std::string cache_dir_;
};

std::string ExpWorkspace::cache_dir_;

TEST_F(ExpWorkspace, TrainAndCacheRoundTrip) {
  ModelBundle first = load_or_train("tiny");
  EXPECT_GT(first.clean_accuracy, 0.5);
  EXPECT_TRUE(radar::file_exists(cache_dir_ + "/tiny.ckpt"));
  // Second load must come from the checkpoint and match exactly.
  ModelBundle second = load_or_train("tiny");
  EXPECT_DOUBLE_EQ(first.clean_accuracy, second.clean_accuracy);
  ASSERT_EQ(first.qmodel->num_layers(), second.qmodel->num_layers());
  EXPECT_EQ(first.qmodel->snapshot(), second.qmodel->snapshot());
}

TEST_F(ExpWorkspace, UnknownModelIdRejected) {
  EXPECT_THROW(load_or_train("resnet1000"), InvalidArgument);
}

TEST_F(ExpWorkspace, LayerSizesMatchModel) {
  ModelBundle b = load_or_train("tiny");
  const auto sizes = b.layer_sizes();
  ASSERT_EQ(sizes.size(), b.qmodel->num_layers());
  std::int64_t total = 0;
  for (const auto s : sizes) total += s;
  EXPECT_EQ(total, b.qmodel->total_weights());
}

TEST_F(ExpWorkspace, PbfaProfilesCachedAndModelRestored) {
  ModelBundle b = load_or_train("tiny");
  const quant::ArenaSnapshot before = b.qmodel->snapshot();
  const auto first = load_or_run_pbfa(b, 4, 2, "test", 64);
  ASSERT_EQ(first.size(), 2u);
  for (const auto& round : first) {
    EXPECT_EQ(round.flips.size(), 4u);
    EXPECT_GE(round.accuracy_after, 0.0);
  }
  // The attack runs restore the clean snapshot.
  EXPECT_EQ(b.qmodel->snapshot(), before);
  // Cached reload is identical.
  const auto second = load_or_run_pbfa(b, 4, 2, "test", 64);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t r = 0; r < first.size(); ++r) {
    ASSERT_EQ(second[r].flips.size(), first[r].flips.size());
    for (std::size_t f = 0; f < first[r].flips.size(); ++f) {
      EXPECT_EQ(second[r].flips[f].index, first[r].flips[f].index);
      EXPECT_EQ(second[r].flips[f].bit, first[r].flips[f].bit);
    }
  }
}

TEST_F(ExpWorkspace, ReplayDetectionAndRestoration) {
  ModelBundle b = load_or_train("tiny");
  const auto profiles = load_or_run_pbfa(b, 4, 2, "test", 64);
  const quant::ArenaSnapshot before = b.qmodel->snapshot();

  core::RadarConfig rc;
  rc.group_size = 16;
  const RecoveryOutcome o = replay_and_recover(b, profiles[0], rc, 4, 64);
  EXPECT_EQ(o.flips_total, 4);
  EXPECT_GE(o.flips_detected, 3);  // PBFA flips are MSB-dominated
  EXPECT_GE(o.accuracy_recovered, 0.0);
  EXPECT_EQ(b.qmodel->snapshot(), before);  // replay must be side-effect-free
}

TEST_F(ExpWorkspace, ReplayPrefixUsesFewerFlips) {
  ModelBundle b = load_or_train("tiny");
  const auto profiles = load_or_run_pbfa(b, 4, 2, "test", 64);
  core::RadarConfig rc;
  rc.group_size = 16;
  const RecoveryOutcome o2 =
      replay_and_recover(b, profiles[0], rc, 2, /*eval=*/0);
  EXPECT_EQ(o2.flips_total, 2);
  EXPECT_LE(o2.flips_detected, 2);
}

TEST_F(ExpWorkspace, SummaryAveragesOverRounds) {
  ModelBundle b = load_or_train("tiny");
  const auto profiles = load_or_run_pbfa(b, 4, 2, "test", 64);
  core::RadarConfig rc;
  rc.group_size = 16;
  const RecoverySummary s =
      summarize_recovery(b, profiles, rc, 4, /*eval=*/0);
  EXPECT_EQ(s.rounds, 2);
  EXPECT_GE(s.mean_detected, 0.0);
  EXPECT_LE(s.mean_detected, 4.0);
}

TEST_F(ExpWorkspace, KnowledgeableProfilesHaveDecoys) {
  ModelBundle b = load_or_train("tiny");
  const auto profiles = load_or_run_knowledgeable(b, 3, 1, 16, 64);
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_GT(profiles[0].flips.size(), 3u);  // primaries + decoys
}

TEST_F(ExpWorkspace, RestrictedPbfaHonorsBits) {
  ModelBundle b = load_or_train("tiny");
  const auto profiles =
      load_or_run_restricted_pbfa(b, 3, 1, {6}, "msb1test", 64);
  for (const auto& f : profiles[0].flips) EXPECT_EQ(f.bit, 6);
}

}  // namespace
}  // namespace radar::exp
