// GroupLayout: bijection properties, interleaving stride, padding
// behaviour — parameterized over (W, G, skew).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/interleave.h"

namespace radar::core {
namespace {

class LayoutSweep : public ::testing::TestWithParam<
                        std::tuple<std::int64_t, std::int64_t, std::int64_t,
                                   bool>> {};

TEST_P(LayoutSweep, EveryWeightInExactlyOneGroupSlot) {
  const auto [w, g, skew, inter] = GetParam();
  const GroupLayout layout = inter ? GroupLayout::interleaved(w, g, skew)
                                   : GroupLayout::contiguous(w, g);
  std::set<std::int64_t> seen;
  for (std::int64_t grp = 0; grp < layout.num_groups(); ++grp) {
    for (const std::int64_t i : layout.group_members(grp)) {
      EXPECT_TRUE(seen.insert(i).second) << "index " << i << " repeated";
      EXPECT_GE(i, 0);
      EXPECT_LT(i, w);
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), w);
}

TEST_P(LayoutSweep, GroupOfAndMemberAreInverse) {
  const auto [w, g, skew, inter] = GetParam();
  const GroupLayout layout = inter ? GroupLayout::interleaved(w, g, skew)
                                   : GroupLayout::contiguous(w, g);
  for (std::int64_t i = 0; i < w; ++i) {
    const std::int64_t grp = layout.group_of(i);
    const std::int64_t slot = layout.slot_of(i);
    EXPECT_GE(grp, 0);
    EXPECT_LT(grp, layout.num_groups());
    EXPECT_EQ(layout.member(grp, slot), i);
  }
}

TEST_P(LayoutSweep, GroupSizesBounded) {
  const auto [w, g, skew, inter] = GetParam();
  const GroupLayout layout = inter ? GroupLayout::interleaved(w, g, skew)
                                   : GroupLayout::contiguous(w, g);
  for (std::int64_t grp = 0; grp < layout.num_groups(); ++grp) {
    const auto members = layout.group_members(grp);
    EXPECT_LE(static_cast<std::int64_t>(members.size()), g);
    EXPECT_GE(members.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayoutSweep,
    ::testing::Values(
        // W, G, skew, interleaved
        std::make_tuple(128, 16, 3, true), std::make_tuple(128, 16, 0, true),
        std::make_tuple(128, 16, 3, false), std::make_tuple(100, 8, 3, true),
        std::make_tuple(100, 8, 3, false), std::make_tuple(7, 3, 3, true),
        std::make_tuple(1, 1, 3, true), std::make_tuple(513, 512, 3, true),
        std::make_tuple(512, 512, 3, true), std::make_tuple(512, 1024, 3, true),
        std::make_tuple(4096, 64, 7, true), std::make_tuple(4097, 64, 3, true),
        std::make_tuple(270896, 512, 3, true),
        std::make_tuple(65536, 256, 5, false)));

TEST(GroupLayout, ContiguousGroupsAreRuns) {
  const GroupLayout layout = GroupLayout::contiguous(64, 8);
  EXPECT_EQ(layout.num_groups(), 8);
  const auto members = layout.group_members(2);
  ASSERT_EQ(members.size(), 8u);
  for (std::int64_t s = 0; s < 8; ++s) EXPECT_EQ(members[s], 16 + s);
}

TEST(GroupLayout, BasicInterleaveMatchesPaperFigure3) {
  // Fig. 3: 128 weights, stride-8 basic interleave (skew 0): group 0 holds
  // weights 0, 8, 16, ..., 120. In our parameterization that layout is
  // W = 128, G = 16 (16 groups of 8... 8 groups of 16): Ng = 8 groups,
  // members Ng apart.
  const GroupLayout layout = GroupLayout::interleaved(128, 16, /*skew=*/0);
  EXPECT_EQ(layout.num_groups(), 8);
  const auto members = layout.group_members(0);
  ASSERT_EQ(members.size(), 16u);
  for (std::size_t l = 0; l < members.size(); ++l)
    EXPECT_EQ(members[l], static_cast<std::int64_t>(l) * 8);
}

TEST(GroupLayout, InterleavedMembersAreFarApart) {
  // The defining property: consecutive members of a group are ~Ng apart,
  // so adjacent original weights never share a group (when Ng > skew+1).
  const GroupLayout layout = GroupLayout::interleaved(4096, 64, 3);
  const std::int64_t ng = layout.num_groups();
  ASSERT_EQ(ng, 64);
  for (std::int64_t grp = 0; grp < ng; grp += 7) {
    const auto members = layout.group_members(grp);
    for (std::size_t a = 1; a < members.size(); ++a) {
      const std::int64_t gap = members[a] - members[a - 1];
      EXPECT_GE(std::abs(gap), ng - 3 - 1);
    }
  }
}

TEST(GroupLayout, AdjacentWeightsInDifferentGroups) {
  const GroupLayout layout = GroupLayout::interleaved(4096, 64, 3);
  for (std::int64_t i = 0; i + 1 < 4096; ++i)
    EXPECT_NE(layout.group_of(i), layout.group_of(i + 1)) << "at " << i;
}

TEST(GroupLayout, SkewChangesAssignment) {
  const GroupLayout a = GroupLayout::interleaved(1024, 32, 0);
  const GroupLayout b = GroupLayout::interleaved(1024, 32, 3);
  int diffs = 0;
  for (std::int64_t i = 0; i < 1024; ++i)
    if (a.group_of(i) != b.group_of(i)) ++diffs;
  EXPECT_GT(diffs, 512);
}

TEST(GroupLayout, PaddingSlotsReportedAsMissing) {
  // 10 weights, groups of 4 -> 3 groups, 2 padding slots.
  const GroupLayout layout = GroupLayout::contiguous(10, 4);
  EXPECT_EQ(layout.num_groups(), 3);
  EXPECT_EQ(layout.member(2, 0), 8);
  EXPECT_EQ(layout.member(2, 1), 9);
  EXPECT_EQ(layout.member(2, 2), -1);
  EXPECT_EQ(layout.member(2, 3), -1);
}

TEST(GroupLayout, InvalidArgumentsThrow) {
  EXPECT_THROW(GroupLayout::contiguous(0, 8), InvalidArgument);
  EXPECT_THROW(GroupLayout::contiguous(8, 0), InvalidArgument);
  EXPECT_THROW(GroupLayout::interleaved(8, 4, -1), InvalidArgument);
  const GroupLayout l = GroupLayout::contiguous(8, 4);
  EXPECT_THROW(l.group_of(8), InvalidArgument);
  EXPECT_THROW(l.member(2, 0), InvalidArgument);
  EXPECT_THROW(l.member(0, 4), InvalidArgument);
}

}  // namespace
}  // namespace radar::core
