// Golden-rate regression: radar2/radar3 detection and recovery rates on
// the trained tiny synthetic model under random-MSB and PBFA attacks must
// stay inside fixed tolerance bands. These are the paper-facing numbers
// (Fig. 4 / Table III shapes); a refactor that silently degrades
// detection or recovery fails here before it reaches the benches.
//
// The tiny bundle trains in seconds on first run and is checkpoint-cached
// under RADAR_CACHE_DIR (default ./.model_cache) afterwards.
#include <gtest/gtest.h>

#include "campaign/campaign.h"

namespace radar::campaign {
namespace {

const CampaignReport& trained_report() {
  static const CampaignReport report = [] {
    CampaignSpec spec;
    spec.name = "golden-rates";
    spec.model = "tiny";
    spec.train = true;
    spec.trials = 3;
    spec.seed = 0x60D7;
    spec.eval_subset = 128;
    // Reload-clean recovery restores every flagged group exactly, so the
    // recovered accuracy pins against clean accuracy; zero-out recovery
    // (the paper's headline policy on the large models) is exercised by
    // the table3/fig5 benches and the campaign unit tests.
    spec.policy = core::RecoveryPolicy::kReloadClean;
    spec.attackers = {{.kind = "random_msb", .flips = 10},
                      {.kind = "pbfa", .flips = 5, .attack_batch = 8}};
    for (const char* id : {"radar2", "radar3"}) {
      SchemeSpec s;
      s.id = id;
      s.params.group_size = 32;
      spec.schemes.push_back(s);
    }
    return CampaignRunner(2).run(spec);
  }();
  return report;
}

TEST(CampaignGoldenRates, TrainedTinyModelIsAccurate) {
  // 4-class synthetic task: the trained checkpoint sits far above chance.
  EXPECT_GE(trained_report().clean_accuracy, 0.55);
}

TEST(CampaignGoldenRates, RandomMsbDetectionBand) {
  for (std::size_t si = 0; si < 2; ++si) {
    const CellStats& c = trained_report().cell(0, 0, si);
    // Paper: interleaved group signatures detect >= ~9.5/10 MSB flips.
    EXPECT_GE(c.detection_rate, 0.85) << c.scheme;
    EXPECT_DOUBLE_EQ(c.trial_detection_rate, 1.0) << c.scheme;
    EXPECT_DOUBLE_EQ(c.miss_rate, 0.0) << c.scheme;
  }
}

TEST(CampaignGoldenRates, PbfaDetectionBand) {
  for (std::size_t si = 0; si < 2; ++si) {
    const CellStats& c = trained_report().cell(1, 0, si);
    // PBFA prefers large-|Δw| (MSB) flips on a trained model; the scheme
    // must flag every attacked trial and most individual flips.
    EXPECT_GE(c.detection_rate, 0.60) << c.scheme;
    EXPECT_DOUBLE_EQ(c.miss_rate, 0.0) << c.scheme;
  }
}

TEST(CampaignGoldenRates, RecoveryRestoresAccuracy) {
  for (std::size_t ai = 0; ai < 2; ++ai) {
    for (std::size_t si = 0; si < 2; ++si) {
      const CellStats& c = trained_report().cell(ai, 0, si);
      // Reloading flagged groups can only help; with near-complete
      // detection it lands within a tight band of clean accuracy.
      EXPECT_GE(c.mean_acc_recovered, c.mean_acc_attacked - 0.02)
          << c.attacker << " / " << c.scheme;
      EXPECT_GE(c.mean_acc_recovered,
                trained_report().clean_accuracy - 0.10)
          << c.attacker << " / " << c.scheme;
    }
  }
}

TEST(CampaignGoldenRates, Radar3TracksRadar2) {
  // The 3-bit variant only adds a signature bit: its detection can only
  // match or improve on radar2 up to Monte-Carlo noise.
  for (std::size_t ai = 0; ai < 2; ++ai) {
    const CellStats& r2 = trained_report().cell(ai, 0, 0);
    const CellStats& r3 = trained_report().cell(ai, 0, 1);
    EXPECT_GE(r3.detection_rate, r2.detection_rate - 0.10) << r2.attacker;
  }
}

}  // namespace
}  // namespace radar::campaign
