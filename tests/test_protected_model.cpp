// ProtectedModel: verified inference, alarms, telemetry, re-signing
// after zero-out recovery.
#include <gtest/gtest.h>

#include "core/protected_model.h"
#include "core/scheme.h"

namespace radar::core {
namespace {

nn::ResNetSpec tiny_spec() {
  nn::ResNetSpec s;
  s.num_classes = 4;
  s.base_width = 8;
  s.blocks_per_stage = {1, 1};
  s.name = "tiny";
  return s;
}

class ProtectedModelTest : public ::testing::Test {
 protected:
  ProtectedModelTest()
      : rng_(7), model_(tiny_spec(), rng_), qm_(model_), scheme_(config()) {
    scheme_.attach(qm_);
  }

  static RadarConfig config() {
    RadarConfig c;
    c.group_size = 32;
    return c;
  }

  Rng rng_;
  nn::ResNet model_;
  quant::QuantizedModel qm_;
  RadarScheme scheme_;
};

TEST_F(ProtectedModelTest, CleanInferenceMatchesUnprotected) {
  ProtectedModel pm(qm_, scheme_);
  nn::Tensor x = nn::Tensor::randn({2, 3, 32, 32}, rng_);
  nn::Tensor y_plain = qm_.forward(x);
  nn::Tensor y_protected = pm.forward(x);
  EXPECT_EQ(nn::max_abs_diff(y_plain, y_protected), 0.0f);
  EXPECT_EQ(pm.scans(), 1);
  EXPECT_EQ(pm.detections(), 0);
}

TEST_F(ProtectedModelTest, AttackTriggersDetectionAndRecovery) {
  ProtectedModel pm(qm_, scheme_);
  qm_.flip_bit(1, 3, 7);
  nn::Tensor x = nn::Tensor::randn({1, 3, 32, 32}, rng_);
  pm.forward(x);
  EXPECT_EQ(pm.detections(), 1);
  EXPECT_GE(pm.groups_recovered(), 1);
  // The flipped weight's group was zeroed.
  EXPECT_EQ(qm_.get_code(1, 3), 0);
}

TEST_F(ProtectedModelTest, RecoveredStateScansCleanNextTime) {
  ProtectedModel pm(qm_, scheme_);
  qm_.flip_bit(1, 3, 7);
  pm.check_and_recover();
  EXPECT_EQ(pm.detections(), 1);
  // Second scan: zeroed group was re-signed, no repeated alarm.
  pm.check_and_recover();
  EXPECT_EQ(pm.detections(), 1);
  EXPECT_EQ(pm.scans(), 2);
}

TEST_F(ProtectedModelTest, AlarmCallbackFires) {
  ProtectedModel pm(qm_, scheme_);
  int alarms = 0;
  std::int64_t flagged = 0;
  pm.set_alarm([&](const DetectionReport& r) {
    ++alarms;
    flagged = r.num_flagged_groups();
  });
  pm.check_and_recover();  // clean: no alarm
  EXPECT_EQ(alarms, 0);
  qm_.flip_bit(0, 0, 7);
  pm.check_and_recover();
  EXPECT_EQ(alarms, 1);
  EXPECT_GE(flagged, 1);
}

TEST_F(ProtectedModelTest, ReloadPolicyRestoresCleanWeights) {
  ProtectedModel pm(qm_, scheme_, RecoveryPolicy::kReloadClean);
  const std::int8_t orig = qm_.get_code(2, 10);
  qm_.flip_bit(2, 10, 7);
  pm.check_and_recover();
  EXPECT_EQ(qm_.get_code(2, 10), orig);
  // Reload leaves the model in its golden state: clean scan after.
  EXPECT_FALSE(scheme_.scan(qm_).attack_detected());
}

TEST_F(ProtectedModelTest, LayerwiseForwardMatchesCleanInference) {
  ProtectedModel pm(qm_, scheme_);
  nn::Tensor x = nn::Tensor::randn({2, 3, 32, 32}, rng_);
  nn::Tensor y_plain = qm_.forward(x);
  nn::Tensor y_layerwise = pm.forward_layerwise(x);
  EXPECT_EQ(nn::max_abs_diff(y_plain, y_layerwise), 0.0f);
  EXPECT_EQ(pm.detections(), 0);
}

TEST_F(ProtectedModelTest, LayerwiseForwardDetectsAndRecoversInline) {
  ProtectedModel pm(qm_, scheme_);
  qm_.flip_bit(1, 3, 7);
  qm_.flip_bit(4, 9, 7);
  nn::Tensor x = nn::Tensor::randn({1, 3, 32, 32}, rng_);
  pm.forward_layerwise(x);
  // Two separate layers detected (each on its own fetch).
  EXPECT_EQ(pm.detections(), 2);
  EXPECT_EQ(qm_.get_code(1, 3), 0);
  EXPECT_EQ(qm_.get_code(4, 9), 0);
  // Second run: recovered state was re-signed, no repeated alarms.
  pm.forward_layerwise(x);
  EXPECT_EQ(pm.detections(), 2);
}

TEST_F(ProtectedModelTest, LayerwiseAndWholeModelAgreeOnRecovery) {
  // The same attack recovered layerwise vs whole-model must leave the
  // weights in the same state (same groups zeroed).
  const quant::ArenaSnapshot clean = qm_.snapshot();
  qm_.flip_bit(2, 11, 7);
  const quant::ArenaSnapshot attacked = qm_.snapshot();

  ProtectedModel pm1(qm_, scheme_);
  nn::Tensor x = nn::Tensor::randn({1, 3, 32, 32}, rng_);
  pm1.forward_layerwise(x);
  const quant::ArenaSnapshot after_layerwise = qm_.snapshot();

  qm_.restore(attacked);
  scheme_.attach(qm_);  // fresh golden computed from... rebuild below
  qm_.restore(clean);
  scheme_.attach(qm_);
  qm_.restore(attacked);
  ProtectedModel pm2(qm_, scheme_);
  pm2.check_and_recover();
  EXPECT_EQ(qm_.snapshot(), after_layerwise);
  qm_.restore(clean);
}

TEST_F(ProtectedModelTest, RequiresAttachedScheme) {
  RadarScheme fresh(config());
  EXPECT_THROW(ProtectedModel(qm_, fresh), InvalidArgument);
}

TEST_F(ProtectedModelTest, RecoveryChangesCorruptedOutputs) {
  // Zero-out recovery replaces the corrupted group: outputs must move off
  // the attacked trajectory, and the huge dequantized weights introduced
  // by MSB flips must be gone.
  ProtectedModel pm(qm_, scheme_);
  nn::Tensor x = nn::Tensor::randn({4, 3, 32, 32}, rng_);

  const quant::ArenaSnapshot clean = qm_.snapshot();
  // Corrupt small weights' MSBs in layer 1 (large value swing).
  std::vector<std::int64_t> victims;
  for (std::int64_t i = 0; i < qm_.layer(1).size() && victims.size() < 4; ++i)
    if (std::abs(qm_.get_code(1, i)) < 16) victims.push_back(i);
  for (const auto i : victims) qm_.flip_bit(1, i, 7);
  for (const auto i : victims)
    EXPECT_GE(std::abs(static_cast<int>(qm_.get_code(1, i))), 112);
  nn::Tensor y_attacked = qm_.forward(x);

  pm.check_and_recover();
  for (const auto i : victims) EXPECT_EQ(qm_.get_code(1, i), 0);
  nn::Tensor y_recovered = qm_.forward(x);
  EXPECT_GT(nn::max_abs_diff(y_attacked, y_recovered), 0.0f);
  qm_.restore(clean);
}

}  // namespace
}  // namespace radar::core
