// Serving subsystem: bounded MPMC queue semantics (including the
// deadline-bounded push path), latency histogram math, multi-tenant
// ModelHost end-to-end (concurrent inference + background epoch-guarded
// scanning + fault injection -> detection -> in-place recovery), chaos
// fault-point survival (watchdog restarts, degraded-golden fallback,
// deadline drops), the daemon's line protocol and its resilience to
// malformed/hostile socket clients.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <future>
#include <thread>

#include "common/fault_points.h"
#include "core/package.h"
#include "core/scheme_registry.h"
#include "exp/workspace.h"
#include "serve/daemon.h"
#include "serve/host.h"
#include "serve/latency_histogram.h"
#include "serve/request_queue.h"

#if defined(__unix__) || defined(__APPLE__)
#define RADAR_TEST_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define RADAR_TEST_HAVE_UNIX_SOCKETS 0
#endif

namespace radar::serve {
namespace {

// ---------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------
TEST(BoundedQueue, FifoAndCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3)) << "queue is full";
  EXPECT_EQ(q.rejected(), 1u);
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
}

TEST(BoundedQueue, CloseDrainsThenStops) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.push(7));
  q.close();
  EXPECT_FALSE(q.push(8)) << "push after close must fail";
  int v = 0;
  EXPECT_TRUE(q.pop(v)) << "pending items still delivered after close";
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(q.pop(v)) << "closed and drained";
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&q] { EXPECT_TRUE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  producer.join();
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
}

TEST(BoundedQueue, ConcurrentProducersConsumersDeliverEverything) {
  BoundedQueue<int> q(16);
  constexpr int kProducers = 3, kConsumers = 3, kPerProducer = 500;
  std::atomic<int> consumed{0}, sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(p * kPerProducer + i));
    });
  for (int c = 0; c < kConsumers; ++c)
    threads.emplace_back([&] {
      int v;
      while (q.pop(v)) {
        consumed.fetch_add(1, std::memory_order_relaxed);
        sum.fetch_add(v, std::memory_order_relaxed);
      }
    });
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
  const int n = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BoundedQueue, TryPushForTimesOutWhenFull) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.try_push_for(2, std::chrono::milliseconds(30)));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(waited, std::chrono::milliseconds(25))
      << "must actually wait out the budget before giving up";
  EXPECT_EQ(q.timed_out(), 1u);
  EXPECT_EQ(q.rejected(), 0u)
      << "deadline timeouts are accounted separately from open-loop sheds";
}

TEST(BoundedQueue, TryPushForSucceedsWhenSpaceFrees) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread consumer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    int v = 0;
    EXPECT_TRUE(q.pop(v));
  });
  EXPECT_TRUE(q.try_push_for(2, std::chrono::seconds(5)))
      << "capacity freed inside the budget must be used";
  consumer.join();
  EXPECT_EQ(q.timed_out(), 0u);
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
}

TEST(BoundedQueue, TryPushForFailsFastOnClose) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread pusher([&q] {
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(q.try_push_for(2, std::chrono::seconds(30)));
    EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5))
        << "close() must wake a deadline-bounded producer immediately";
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  pusher.join();
  EXPECT_EQ(q.timed_out(), 0u) << "closed is not a timeout";
}

// ---------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------
TEST(LatencyHistogram, BucketsAreMonotonicAndCoverInt64) {
  int prev = -1;
  const std::vector<std::int64_t> values = {
      0, 1, 7, 8, 9, 100, 1000, 123456, std::int64_t{1} << 40,
      std::int64_t{1} << 62};
  for (std::int64_t v : values) {
    const int b = LatencyHistogram::bucket_of(v);
    EXPECT_GE(b, prev) << "bucket index must be monotone in value, v=" << v;
    EXPECT_LT(b, LatencyHistogram::kBuckets);
    prev = b;
  }
  // Sub-bucket midpoints stay within 12.5% of the value they stand for.
  for (std::int64_t v : {100LL, 5000LL, 987654LL}) {
    const std::int64_t mid =
        LatencyHistogram::bucket_mid(LatencyHistogram::bucket_of(v));
    EXPECT_NEAR(static_cast<double>(mid), static_cast<double>(v),
                0.125 * static_cast<double>(v));
  }
}

TEST(LatencyHistogram, QuantilesAndMerge) {
  LatencyHistogram a, b;
  for (int i = 1; i <= 1000; ++i) a.record(i * 1000);  // 1..1000 us
  for (int i = 0; i < 10; ++i) b.record(5'000'000);    // 5ms outliers
  auto s = a.snapshot();
  s.merge(b.snapshot());
  EXPECT_EQ(s.total, 1010u);
  EXPECT_EQ(s.max, 5'000'000);
  const std::int64_t p50 = s.quantile(0.50);
  EXPECT_NEAR(static_cast<double>(p50), 500'000.0, 0.15 * 500'000.0);
  EXPECT_GE(s.quantile(0.999), 1'000'000);
  EXPECT_EQ(s.quantile(1.0), 5'000'000) << "top quantile reports the max";
  a.reset();
  EXPECT_EQ(a.snapshot().total, 0u);
}

// ---------------------------------------------------------------------
// ModelHost end-to-end (shared fixture state: packages are signed once —
// model construction dominates the suite's runtime otherwise).
// ---------------------------------------------------------------------
class ServeHostTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pkg_a_ = new std::string("/tmp/radar_test_serve_a_" +
                             std::to_string(::getpid()) + ".rpkg");
    pkg_b_ = new std::string("/tmp/radar_test_serve_b_" +
                             std::to_string(::getpid()) + ".rpkg");
    exp::ModelBundle bundle =
        exp::make_bundle("tiny", /*train=*/false, /*eval_clean=*/false);
    const char* ids[2] = {"radar2", "radar3"};
    const std::string* paths[2] = {pkg_a_, pkg_b_};
    for (int i = 0; i < 2; ++i) {
      auto scheme = core::SchemeRegistry::instance().create(
          ids[i], core::SchemeParams{.group_size = 32});
      scheme->attach(*bundle.qmodel);
      core::save_package(*paths[i], *bundle.qmodel, *scheme, "tiny");
    }
  }
  static void TearDownTestSuite() {
    std::filesystem::remove(*pkg_a_);
    std::filesystem::remove(*pkg_b_);
    delete pkg_a_;
    delete pkg_b_;
    pkg_a_ = pkg_b_ = nullptr;
  }

  void add_two_tenants(ModelHost& host) {
    TenantConfig a;
    a.name = "alpha";
    a.package_path = *pkg_a_;
    TenantConfig b;
    b.name = "beta";
    b.package_path = *pkg_b_;
    EXPECT_EQ(host.add_tenant(a), 0u);
    EXPECT_EQ(host.add_tenant(b), 1u);
  }

  static std::string* pkg_a_;
  static std::string* pkg_b_;
};

std::string* ServeHostTest::pkg_a_ = nullptr;
std::string* ServeHostTest::pkg_b_ = nullptr;

TEST_F(ServeHostTest, RejectsTamperedPackage) {
  const std::string tampered = "/tmp/radar_test_serve_t_" +
                               std::to_string(::getpid()) + ".rpkg";
  std::filesystem::copy_file(*pkg_a_, tampered);
  // Flip one payload byte mid-file: CRC (and likely a signature) breaks.
  {
    std::FILE* f = std::fopen(tampered.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -64, SEEK_END);
    const int c = std::fgetc(f);
    std::fseek(f, -64, SEEK_END);
    std::fputc(c ^ 0x80, f);
    std::fclose(f);
  }
  ModelHost host;
  TenantConfig cfg;
  cfg.name = "evil";
  cfg.package_path = tampered;
  EXPECT_THROW(host.add_tenant(cfg), std::exception)
      << "a package failing verification must not enter service";
  std::filesystem::remove(tampered);
}

TEST_F(ServeHostTest, ServesTwoTenantsConcurrently) {
  ServeOptions opts;
  opts.workers = 2;
  opts.scan = true;
  ModelHost host(opts);
  add_two_tenants(host);
  EXPECT_EQ(host.find_tenant("beta"), 1u);
  EXPECT_EQ(host.find_tenant("nope"), ModelHost::npos);
  host.start();

  constexpr int kPerThread = 20;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (std::size_t t = 0; t < 2; ++t) {
    clients.emplace_back([&host, &ok, t] {
      const auto& ds = host.dataset(t);
      for (int i = 0; i < kPerThread; ++i) {
        const nn::Tensor input =
            ds.test_batch(i % ds.test_size(), 1).images;
        const InferenceResult r = host.infer(t, input);
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_GE(r.predicted, 0);
        EXPECT_GT(r.latency_ns, 0);
        if (r.ok) ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& c : clients) c.join();
  host.stop();

  EXPECT_EQ(ok.load(), 2 * kPerThread);
  const HostStats stats = host.stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  for (const auto& t : stats.tenants) {
    EXPECT_EQ(t.requests, static_cast<std::uint64_t>(kPerThread));
    EXPECT_EQ(t.errors, 0u);
    EXPECT_EQ(t.detections, 0u) << "clean traffic must not trip the scanner";
    EXPECT_GT(t.latency.total, 0u);
  }
  // The background scanner made progress while traffic flowed.
  EXPECT_GT(stats.tenants[0].shards_scanned + stats.tenants[1].shards_scanned,
            0u);
}

TEST_F(ServeHostTest, InjectedFaultsDetectedAndRecoveredUnderTraffic) {
  ServeOptions opts;
  opts.workers = 2;
  opts.scan = true;
  opts.scan_shard_bytes = 4096;
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  // Keep request traffic flowing on the victim while the attack lands.
  std::atomic<bool> stop{false};
  std::thread traffic([&host, &stop] {
    const auto& ds = host.dataset(0);
    const nn::Tensor input = ds.test_batch(0, 1).images;
    while (!stop.load(std::memory_order_relaxed)) host.infer(0, input);
  });

  const std::size_t made = host.inject_faults(0, /*flips=*/6, /*seed=*/42);
  EXPECT_EQ(made, 6u);

  // One full sweep must catch it; allow generous wall time under load.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  HostStats stats;
  while (std::chrono::steady_clock::now() < deadline) {
    stats = host.stats();
    if (stats.tenants[0].detections > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_relaxed);
  traffic.join();
  host.stop();

  EXPECT_GT(stats.tenants[0].detections, 0u) << "injection went undetected";
  EXPECT_GT(stats.tenants[0].groups_recovered, 0u);
  EXPECT_GE(stats.tenants[0].last_ttd_ns, 0) << "time-to-detect not recorded";
  EXPECT_EQ(stats.tenants[0].faults_injected, 6u);
  EXPECT_GT(stats.tenants[0].writer_sections, 0u);
  EXPECT_EQ(stats.tenants[1].detections, 0u)
      << "the attack must not bleed into the other tenant";
}

TEST_F(ServeHostTest, RowhammerTripsQuarantineThenReadmits) {
  ServeOptions opts;
  opts.workers = 2;
  opts.scan = true;
  opts.scan_shard_bytes = 4096;
  opts.quarantine_threshold = 1;  // one detection trips (aggressive)
  opts.quarantine_window_ms = 5000;
  opts.quarantine_backoff_ms = 200;
  opts.quarantine_backoff_max_ms = 1000;
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  // A spatially correlated rowhammer burst against tenant 0. Many rows:
  // the radar2 signature only covers MSB flips, so the burst must be
  // large enough that some of its (uniform-bit) flips hit bit 7.
  const std::size_t made = host.inject_rowhammer(
      0, /*rows=*/16, /*activations=*/150000, /*double_sided=*/true,
      /*seed=*/7);
  EXPECT_GT(made, 0u) << "burst produced no weight flips";

  // The scanner must detect, trip the quarantine and run the full
  // re-verify. Poll generously — CI machines are slow under load.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  HostStats stats;
  while (std::chrono::steady_clock::now() < deadline) {
    stats = host.stats();
    if (stats.tenants[0].quarantines > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(stats.tenants[0].quarantines, 0u) << "quarantine never tripped";

  // While quarantined, tenant 0's requests are shed with a distinct
  // error and tenant 1 keeps serving uninterrupted. The readmission
  // backoff (>=200ms) gives us a window to observe the shedding; skip
  // the assertions gracefully if readmission already happened.
  const nn::Tensor in0 = host.dataset(0).test_batch(0, 1).images;
  const nn::Tensor in1 = host.dataset(1).test_batch(0, 1).images;
  if (host.stats().tenants[0].quarantined) {
    const InferenceResult shed = host.infer(0, in0);
    if (!shed.ok) {
      EXPECT_EQ(shed.error, "tenant quarantined");
    }
  }
  const InferenceResult other = host.infer(1, in1);
  EXPECT_TRUE(other.ok) << "other tenants must continue: " << other.error;

  // Auto-readmission after the backoff, and service is restored (the
  // quarantine re-verified and repaired the arena against the golden
  // copy, so no further detections re-trip it).
  while (std::chrono::steady_clock::now() < deadline) {
    stats = host.stats();
    if (stats.tenants[0].readmits > 0 && !stats.tenants[0].quarantined) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(stats.tenants[0].readmits, 0u) << "tenant never readmitted";
  EXPECT_FALSE(stats.tenants[0].quarantined);
  const InferenceResult after = host.infer(0, in0);
  EXPECT_TRUE(after.ok) << "readmitted tenant must serve again: "
                        << after.error;

  host.stop();
  const HostStats fin = host.stats();
  EXPECT_GT(fin.tenants[0].detections, 0u);
  EXPECT_GT(fin.tenants[0].groups_recovered, 0u);
  EXPECT_EQ(fin.tenants[0].faults_injected, made);
  // radar2's 2-bit signature only covers MSB flips; the quarantine's
  // byte-exact golden scrub must have cleaned the non-MSB remainder of
  // the burst that the scheme's codes could not see.
  EXPECT_GT(fin.tenants[0].bytes_scrubbed, 0u);
  EXPECT_EQ(fin.tenants[1].detections, 0u)
      << "the burst must not bleed into the other tenant";
  EXPECT_EQ(fin.tenants[1].quarantines, 0u);
}

TEST_F(ServeHostTest, QuarantineDisabledByZeroThreshold) {
  ServeOptions opts;
  opts.workers = 1;
  opts.scan = true;
  opts.scan_shard_bytes = 4096;
  opts.quarantine_threshold = 0;  // detections never quarantine
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  EXPECT_GT(host.inject_rowhammer(0, 16, 150000, true, 21), 0u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  HostStats stats;
  while (std::chrono::steady_clock::now() < deadline) {
    stats = host.stats();
    if (stats.tenants[0].detections > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  host.stop();
  EXPECT_GT(stats.tenants[0].detections, 0u);
  EXPECT_EQ(stats.tenants[0].quarantines, 0u)
      << "threshold 0 must disable quarantine";
}

TEST_F(ServeHostTest, OpenLoopShedsWhenQueueIsFull) {
  ServeOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.scan = false;
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  const nn::Tensor input = host.dataset(0).test_batch(0, 1).images;
  std::vector<std::future<InferenceResult>> pending;
  std::uint64_t accepted = 0, shed = 0;
  for (int i = 0; i < 64; ++i) {
    std::future<InferenceResult> fut;
    if (host.try_infer_async(0, input, fut)) {
      pending.push_back(std::move(fut));
      ++accepted;
    } else {
      ++shed;
    }
  }
  for (auto& f : pending) f.get();  // inputs must outlive the futures
  host.stop();
  EXPECT_GT(accepted, 0u);
  EXPECT_EQ(host.stats().queue_rejected, shed);
}

// ---------------------------------------------------------------------
// Daemon line protocol (in-process dispatch; the socket transport is
// exercised by the CI smoke job via serve_loadgen --connect).
// ---------------------------------------------------------------------
TEST_F(ServeHostTest, DaemonProtocol) {
  ServeOptions opts;
  opts.workers = 1;
  ModelHost host(opts);
  add_two_tenants(host);
  const std::string sock =
      "/tmp/radar_test_serve_sock_" + std::to_string(::getpid());
  Daemon daemon(host, sock);
  daemon.start();  // also starts the host and builds the input pools
  EXPECT_TRUE(daemon.running());
  EXPECT_TRUE(std::filesystem::exists(sock));

  EXPECT_EQ(daemon.handle_line("PING"), "PONG");
  EXPECT_EQ(daemon.handle_line("TENANTS"), "OK alpha beta");
  EXPECT_EQ(daemon.handle_line("SCAN OFF"), "OK");
  EXPECT_EQ(daemon.handle_line("SCAN sideways"), "ERR usage: SCAN ON|OFF");
  EXPECT_EQ(daemon.handle_line("DETECTIONS"), "OK 0");
  EXPECT_EQ(daemon.handle_line("BOGUS"), "ERR unknown command BOGUS");
  EXPECT_EQ(daemon.handle_line(""), "ERR empty command");
  EXPECT_EQ(daemon.handle_line("INFER nobody"), "ERR unknown tenant nobody");

  // Rowhammer-burst injection form (scanning is OFF: flips land but
  // stay undetected within this test).
  const std::string rh = daemon.handle_line("INJECT alpha rowhammer 1 150000 5");
  EXPECT_EQ(rh.rfind("OK ", 0), 0u) << rh;
  const std::string rh2 =
      daemon.handle_line("INJECT alpha rowhammer 1 150000 5 double");
  EXPECT_EQ(rh2.rfind("OK ", 0), 0u) << rh2;
  EXPECT_EQ(daemon.handle_line("INJECT alpha rowhammer 1").rfind("ERR usage", 0),
            0u);
  EXPECT_EQ(daemon.handle_line("INJECT alpha rowhammer 1 150000 5 sideways")
                .rfind("ERR usage", 0),
            0u);

  const std::string infer = daemon.handle_line("INFER beta");
  EXPECT_EQ(infer.rfind("OK ", 0), 0u) << infer;

  const std::string stats = daemon.handle_line("STATS");
  EXPECT_NE(stats.find("\"name\":\"alpha\""), std::string::npos) << stats;

  EXPECT_EQ(daemon.handle_line("SCAN ON"), "OK");
  EXPECT_EQ(daemon.handle_line("SHUTDOWN"), "OK");
  daemon.wait();  // returns because SHUTDOWN was requested
  daemon.stop();
  host.stop();
  EXPECT_FALSE(std::filesystem::exists(sock)) << "socket file not cleaned up";
}

// ---------------------------------------------------------------------
// Chaos fault injection: every armed failure mode must be survived —
// the request fails (at worst), the host never hangs or crashes, and
// the self-healing machinery (watchdog, degraded-golden fallback)
// leaves the system serving again.
// ---------------------------------------------------------------------
class ChaosServeTest : public ServeHostTest {
 protected:
  void SetUp() override { chaos::FaultRegistry::instance().disarm_all(); }
  void TearDown() override { chaos::FaultRegistry::instance().disarm_all(); }

  /// Poll `done` until it returns true or `sec` seconds elapse.
  static bool eventually(int sec, const std::function<bool()>& done) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(sec);
    while (std::chrono::steady_clock::now() < deadline) {
      if (done()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return done();
  }
};

TEST_F(ChaosServeTest, StalledScannerIsRestartedByWatchdog) {
  chaos::FaultRegistry::instance().arm(
      chaos::points::kScannerStall,
      {.prob = 1.0, .seed = 7, .param = 5000, .max_fires = 1});
  ServeOptions opts;
  opts.workers = 1;
  opts.scan = true;
  opts.scan_shard_bytes = 4096;
  opts.watchdog_interval_ms = 20;
  opts.scanner_stall_ms = 100;
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  ASSERT_TRUE(eventually(
      20, [&] { return host.stats().scanner_restarts >= 1; }))
      << "watchdog never restarted the stalled scanner";

  // The respawned scanner must actually scan: an injection is detected.
  EXPECT_GT(host.inject_faults(0, 6, 42), 0u);
  EXPECT_TRUE(eventually(
      30, [&] { return host.stats().tenants[0].detections > 0; }))
      << "restarted scanner never detected the injection";
  host.stop();
}

TEST_F(ChaosServeTest, CrashedScannerIsRestartedByWatchdog) {
  chaos::FaultRegistry::instance().arm(
      chaos::points::kScannerCrash,
      {.prob = 1.0, .seed = 7, .max_fires = 1});
  ServeOptions opts;
  opts.workers = 1;
  opts.scan = true;
  opts.scan_shard_bytes = 4096;
  opts.watchdog_interval_ms = 20;
  opts.scanner_stall_ms = 100;
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  ASSERT_TRUE(eventually(20, [&] {
    const HostStats s = host.stats();
    return s.scanner_crashes >= 1 && s.scanner_restarts >= 1;
  })) << "scanner crash was not caught + restarted";

  EXPECT_GT(host.inject_faults(0, 6, 42), 0u);
  EXPECT_TRUE(eventually(
      30, [&] { return host.stats().tenants[0].detections > 0; }));
  host.stop();
}

TEST_F(ChaosServeTest, WorkerExceptionFailsOnlyThatRequest) {
  chaos::FaultRegistry::instance().arm(
      chaos::points::kWorkerException,
      {.prob = 1.0, .seed = 7, .max_fires = 1});
  ServeOptions opts;
  opts.workers = 1;
  opts.scan = false;
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  const nn::Tensor input = host.dataset(0).test_batch(0, 1).images;
  const InferenceResult bad = host.infer(0, input);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("injected worker exception"), std::string::npos)
      << bad.error;
  const InferenceResult good = host.infer(0, input);
  EXPECT_TRUE(good.ok) << "one exception must not poison the worker: "
                       << good.error;
  host.stop();
  EXPECT_EQ(host.stats().tenants[0].errors, 1u);
}

TEST_F(ChaosServeTest, WedgedWorkerRequestFailedByWatchdog) {
  chaos::FaultRegistry::instance().arm(
      chaos::points::kWorkerStall,
      {.prob = 1.0, .seed = 7, .param = 1500, .max_fires = 1});
  ServeOptions opts;
  opts.workers = 1;
  opts.scan = false;
  opts.watchdog_interval_ms = 20;
  opts.worker_stall_ms = 100;
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  const nn::Tensor input = host.dataset(0).test_batch(0, 1).images;
  const auto t0 = std::chrono::steady_clock::now();
  const InferenceResult r = host.infer(0, input);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "worker wedged (watchdog)");
  EXPECT_LT(waited, std::chrono::milliseconds(1400))
      << "the client must unblock before the wedge clears";
  EXPECT_GE(host.stats().worker_flags, 1u);

  // Once the stall passes the worker drains the queue again.
  const InferenceResult after = host.infer(0, input);
  EXPECT_TRUE(after.ok) << after.error;
  EXPECT_EQ(host.stats().workers_wedged, 0u)
      << "a completed request clears the wedged flag";
  host.stop();
}

TEST_F(ChaosServeTest, FailedRecoveryRetriedNextSweep) {
  chaos::FaultRegistry::instance().arm(
      chaos::points::kRecoveryFail,
      {.prob = 1.0, .seed = 7, .max_fires = 1});
  ServeOptions opts;
  opts.workers = 1;
  opts.scan = true;
  opts.scan_shard_bytes = 4096;
  opts.quarantine_threshold = 0;  // isolate the recovery path
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  EXPECT_GT(host.inject_faults(0, 6, 42), 0u);
  ASSERT_TRUE(eventually(
      30, [&] { return host.stats().tenants[0].recover_failures >= 1; }))
      << "injected recovery failure never observed";
  // The corruption is still there; the next sweep re-detects and the
  // (now-exhausted) fault lets the repair land.
  EXPECT_TRUE(eventually(
      30, [&] { return host.stats().tenants[0].groups_recovered > 0; }))
      << "recovery never succeeded after the injected failure";
  host.stop();
}

TEST_F(ChaosServeTest, TornGoldenReadDegradesThenHeals) {
  chaos::FaultRegistry::instance().arm(
      chaos::points::kGoldenTornRead,
      {.prob = 1.0, .seed = 7, .max_fires = 1});
  ServeOptions opts;
  opts.workers = 1;
  opts.scan = true;
  opts.scan_shard_bytes = 4096;
  opts.quarantine_threshold = 0;
  opts.reopen_backoff_ms = 50;
  ModelHost host(opts);
  add_two_tenants(host);
  if (!host.stats().tenants[0].golden_mmapped)
    GTEST_SKIP() << "no mmap'd golden on this platform/package";
  host.start();

  EXPECT_GT(host.inject_faults(0, 6, 42), 0u);
  // The torn read fires when recovery first consults the golden
  // mapping: the tenant degrades to its snapshot fallback...
  ASSERT_TRUE(eventually(
      30, [&] { return host.stats().tenants[0].degrades >= 1; }))
      << "torn golden read never degraded the tenant";
  // ...recovery still works (from the snapshot)...
  EXPECT_TRUE(eventually(
      30, [&] { return host.stats().tenants[0].groups_recovered > 0; }));
  // ...and after the re-open backoff the mapping verifies end-to-end
  // again (the fault is exhausted) and the tenant heals.
  ASSERT_TRUE(eventually(30, [&] {
    const TenantStats t = host.stats().tenants[0];
    return t.heals >= 1 && !t.degraded;
  })) << "package re-open never healed the degraded golden";
  host.stop();
}

#if defined(__unix__) || defined(__APPLE__)
TEST_F(ChaosServeTest, PackageTruncatedAfterMmapDegradesNotCrashes) {
  // Not an injected fault: the package file really is shrunk under the
  // live mapping, so every later golden read lands on discarded pages
  // and raises a genuine SIGBUS. The guarded CRC check must convert
  // that into a degrade-to-snapshot, never a dead process.
  const std::string trunc = "/tmp/radar_test_serve_trunc_" +
                            std::to_string(::getpid()) + ".rpkg";
  std::filesystem::copy_file(
      *pkg_a_, trunc, std::filesystem::copy_options::overwrite_existing);
  ServeOptions opts;
  opts.workers = 1;
  opts.scan = true;
  opts.scan_shard_bytes = 4096;
  opts.quarantine_threshold = 0;
  opts.reopen_backoff_ms = 20;
  ModelHost host(opts);
  TenantConfig cfg;
  cfg.name = "trunc";
  cfg.package_path = trunc;
  ASSERT_EQ(host.add_tenant(cfg), 0u);
  if (!host.stats().tenants[0].golden_mmapped) {
    std::filesystem::remove(trunc);
    GTEST_SKIP() << "no mmap'd golden on this platform/package";
  }
  host.start();
  ASSERT_EQ(::truncate(trunc.c_str(), 0), 0);

  EXPECT_GT(host.inject_faults(0, 6, 42), 0u);
  ASSERT_TRUE(eventually(
      30, [&] { return host.stats().tenants[0].degrades >= 1; }))
      << "truncated golden mapping never degraded the tenant";
  // Recovery proceeds from the in-memory snapshot fallback...
  EXPECT_TRUE(eventually(
      30, [&] { return host.stats().tenants[0].groups_recovered > 0; }))
      << "snapshot-fallback recovery never repaired the injection";
  // ...the tenant keeps serving, and the periodic re-open keeps failing
  // (the bytes on disk are gone for good) without healing or crashing.
  const InferenceResult r =
      host.infer(0, host.dataset(0).test_batch(0, 1).images);
  EXPECT_TRUE(r.ok) << r.error;
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const TenantStats t = host.stats().tenants[0];
  EXPECT_TRUE(t.degraded);
  EXPECT_EQ(t.heals, 0u) << "a truncated package must never re-verify";
  host.stop();
  std::filesystem::remove(trunc);
}
#endif  // __unix__ || __APPLE__

TEST_F(ChaosServeTest, StarvedScanBudgetRaisesCoverageAlarms) {
  // A zero byte budget is a legal (if hostile) QoS setting: the
  // scheduler starves, no sweep ever completes, and the coverage-age
  // alarm is the only signal that detection has silently stopped.
  ServeOptions opts;
  opts.workers = 1;
  opts.scan = true;
  opts.scan_budget_bytes = 0;
  opts.coverage_period_ms = 25;  // deadline the starved scanner must miss
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  EXPECT_GT(host.inject_faults(0, 6, 42), 0u);
  ASSERT_TRUE(eventually(20, [&] {
    const HostStats s = host.stats();
    return s.tenants[0].coverage_alarms >= 1 &&
           s.tenants[1].coverage_alarms >= 1;
  })) << "starved scanner never raised a coverage alarm";

  const HostStats s = host.stats();
  for (const TenantStats& t : s.tenants) {
    EXPECT_EQ(t.shards_scanned, 0u) << "starved slices must not scan";
    EXPECT_EQ(t.sweeps, 0u);
    EXPECT_EQ(t.scan_cursor, 0u);
    EXPECT_EQ(t.detections, 0u)
        << "a starved scanner cannot have detected anything";
  }
  EXPECT_EQ(s.tenants[0].coverage_period_ms, -1) << "no sweep completed";
  // Starvation throttles scanning, never traffic.
  const InferenceResult r =
      host.infer(0, host.dataset(0).test_batch(0, 1).images);
  EXPECT_TRUE(r.ok) << r.error;
  host.stop();
}

TEST_F(ChaosServeTest, ExpiredRequestsDroppedWithoutForwardPass) {
  // One worker held busy by a slow request; a short-deadline request
  // queued behind it must be dropped, not computed.
  chaos::FaultRegistry::instance().arm(
      chaos::points::kInferSlow,
      {.prob = 1.0, .seed = 7, .param = 300, .max_fires = 1});
  ServeOptions opts;
  opts.workers = 1;
  opts.scan = false;
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  const nn::Tensor input = host.dataset(0).test_batch(0, 1).images;
  std::future<InferenceResult> slow;
  ASSERT_TRUE(host.try_infer_async(0, input, slow));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const InferenceResult dropped = host.infer(0, input, /*deadline_ms=*/50);
  EXPECT_FALSE(dropped.ok);
  EXPECT_EQ(dropped.error, "deadline exceeded");
  EXPECT_TRUE(slow.get().ok) << "the slow request itself still completes";
  host.stop();
  const TenantStats t = host.stats().tenants[0];
  EXPECT_EQ(t.deadline_expired, 1u);
  EXPECT_EQ(t.errors, 0u)
      << "a deadline drop is the client's timeout, not a model error";
}

TEST_F(ChaosServeTest, DaemonChaosCommand) {
  ServeOptions opts;
  opts.workers = 1;
  opts.scan = false;
  ModelHost host(opts);
  add_two_tenants(host);
  const std::string sock =
      "/tmp/radar_test_chaos_sock_" + std::to_string(::getpid());
  Daemon daemon(host, sock);
  daemon.start();

  EXPECT_EQ(daemon.handle_line("CHAOS ARM worker.exception 1 7 0 1"), "OK");
  const std::string st = daemon.handle_line("CHAOS STATS");
  EXPECT_NE(st.find("\"name\":\"worker.exception\""), std::string::npos) << st;
  // The armed point is live: the next request fails with the injected
  // exception, the one after succeeds (max_fires=1).
  const std::string bad = daemon.handle_line("INFER alpha");
  EXPECT_EQ(bad.rfind("ERR", 0), 0u) << bad;
  const std::string good = daemon.handle_line("INFER alpha 5000");
  EXPECT_EQ(good.rfind("OK ", 0), 0u) << good;

  EXPECT_EQ(daemon.handle_line("CHAOS DISARM worker.exception"), "OK");
  EXPECT_EQ(daemon.handle_line("CHAOS DISARM worker.exception"),
            "ERR not armed: worker.exception");
  EXPECT_EQ(daemon.handle_line("CHAOS DISARM ALL"), "OK");
  EXPECT_EQ(daemon.handle_line("CHAOS").rfind("ERR usage", 0), 0u);
  EXPECT_EQ(daemon.handle_line("CHAOS BOGUS").rfind("ERR usage", 0), 0u);
  EXPECT_EQ(daemon.handle_line("CHAOS ARM p notanumber 1").rfind("ERR", 0),
            0u);
  EXPECT_EQ(daemon.handle_line("CHAOS ARM p 2.0 1").rfind("ERR", 0), 0u)
      << "prob out of range must be rejected";

  daemon.stop();
  host.stop();
}

#if RADAR_TEST_HAVE_UNIX_SOCKETS
// ---------------------------------------------------------------------
// Daemon socket fuzz: malformed, oversized, truncated and vanishing
// clients must never take the daemon down or wedge a handler thread.
// ---------------------------------------------------------------------
namespace fuzz {

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t w = ::write(fd, data.data() + off, data.size() - off);
    if (w <= 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// Read one reply line ("" on EOF/error before a newline).
std::string read_line(int fd) {
  std::string reply;
  char c;
  while (true) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return "";
    if (c == '\n') return reply;
    reply.push_back(c);
  }
}

}  // namespace fuzz

TEST_F(ServeHostTest, DaemonSurvivesMalformedClients) {
  ServeOptions opts;
  opts.workers = 1;
  opts.scan = false;
  ModelHost host(opts);
  add_two_tenants(host);
  const std::string sock =
      "/tmp/radar_test_fuzz_sock_" + std::to_string(::getpid());
  Daemon daemon(host, sock, /*conn_timeout_ms=*/5000);
  daemon.start();

  // Binary garbage is an unknown command, not a crash.
  {
    const int fd = fuzz::connect_unix(sock);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(fuzz::send_all(fd, "\x01\x02\xfe\xffgarbage\r\n"));
    const std::string r = fuzz::read_line(fd);
    EXPECT_EQ(r.rfind("ERR", 0), 0u) << r;
    ::close(fd);
  }

  // An unterminated line over the cap gets one error reply and the door.
  {
    const int fd = fuzz::connect_unix(sock);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(fuzz::send_all(
        fd, std::string(Daemon::kMaxLineBytes + 512, 'A')));
    EXPECT_EQ(fuzz::read_line(fd), "ERR line too long");
    EXPECT_EQ(fuzz::read_line(fd), "") << "connection must be closed";
    ::close(fd);
  }

  // A terminated-but-oversized line: same contract.
  {
    const int fd = fuzz::connect_unix(sock);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(fuzz::send_all(
        fd, std::string(Daemon::kMaxLineBytes + 1, 'B') + "\n"));
    EXPECT_EQ(fuzz::read_line(fd), "ERR line too long");
    ::close(fd);
  }

  // Truncated commands and bad arguments reply ERR, connection stays up.
  {
    const int fd = fuzz::connect_unix(sock);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(fuzz::send_all(fd, "INFER\n"));
    EXPECT_EQ(fuzz::read_line(fd), "ERR usage: INFER <tenant> [deadline_ms]");
    ASSERT_TRUE(fuzz::send_all(fd, "INFER alpha notanumber\n"));
    EXPECT_EQ(fuzz::read_line(fd).rfind("ERR", 0), 0u);
    ASSERT_TRUE(fuzz::send_all(fd, "INJECT alpha\n"));
    EXPECT_EQ(fuzz::read_line(fd).rfind("ERR usage", 0), 0u);
    ASSERT_TRUE(fuzz::send_all(fd, "PING\n"));
    EXPECT_EQ(fuzz::read_line(fd), "PONG");
    ::close(fd);
  }

  // Mid-command disconnects and rapid connect/close churn.
  for (int i = 0; i < 10; ++i) {
    const int fd = fuzz::connect_unix(sock);
    ASSERT_GE(fd, 0);
    if (i % 2 == 0) fuzz::send_all(fd, "INFER al");  // no newline
    ::close(fd);
  }
  // Two commands in one write; reply order is preserved.
  {
    const int fd = fuzz::connect_unix(sock);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(fuzz::send_all(fd, "PING\nTENANTS\n"));
    EXPECT_EQ(fuzz::read_line(fd), "PONG");
    EXPECT_EQ(fuzz::read_line(fd), "OK alpha beta");
    ::close(fd);
  }

  // After all of that the daemon still serves.
  {
    const int fd = fuzz::connect_unix(sock);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(fuzz::send_all(fd, "INFER beta 5000\n"));
    EXPECT_EQ(fuzz::read_line(fd).rfind("OK ", 0), 0u);
    ::close(fd);
  }
  EXPECT_TRUE(daemon.running());
  daemon.stop();
  host.stop();
}

TEST_F(ServeHostTest, DaemonClosesIdleConnections) {
  ServeOptions opts;
  opts.workers = 1;
  opts.scan = false;
  ModelHost host(opts);
  add_two_tenants(host);
  const std::string sock =
      "/tmp/radar_test_idle_sock_" + std::to_string(::getpid());
  Daemon daemon(host, sock, /*conn_timeout_ms=*/200);
  daemon.start();

  const int fd = fuzz::connect_unix(sock);
  ASSERT_GE(fd, 0);
  // Say nothing; the daemon must hang up on us within the timeout (plus
  // its 100ms poll slice), observable as EOF.
  EXPECT_EQ(fuzz::read_line(fd), "") << "idle connection was not closed";
  ::close(fd);
  daemon.stop();
  host.stop();
}
#endif  // RADAR_TEST_HAVE_UNIX_SOCKETS

}  // namespace
}  // namespace radar::serve
