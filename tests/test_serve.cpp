// Serving subsystem: bounded MPMC queue semantics, latency histogram
// math, multi-tenant ModelHost end-to-end (concurrent inference +
// background epoch-guarded scanning + fault injection -> detection ->
// in-place recovery), and the daemon's line protocol.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>

#include "core/package.h"
#include "core/scheme_registry.h"
#include "exp/workspace.h"
#include "serve/daemon.h"
#include "serve/host.h"
#include "serve/latency_histogram.h"
#include "serve/request_queue.h"

namespace radar::serve {
namespace {

// ---------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------
TEST(BoundedQueue, FifoAndCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3)) << "queue is full";
  EXPECT_EQ(q.rejected(), 1u);
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
}

TEST(BoundedQueue, CloseDrainsThenStops) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.push(7));
  q.close();
  EXPECT_FALSE(q.push(8)) << "push after close must fail";
  int v = 0;
  EXPECT_TRUE(q.pop(v)) << "pending items still delivered after close";
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(q.pop(v)) << "closed and drained";
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&q] { EXPECT_TRUE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  producer.join();
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
}

TEST(BoundedQueue, ConcurrentProducersConsumersDeliverEverything) {
  BoundedQueue<int> q(16);
  constexpr int kProducers = 3, kConsumers = 3, kPerProducer = 500;
  std::atomic<int> consumed{0}, sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(p * kPerProducer + i));
    });
  for (int c = 0; c < kConsumers; ++c)
    threads.emplace_back([&] {
      int v;
      while (q.pop(v)) {
        consumed.fetch_add(1, std::memory_order_relaxed);
        sum.fetch_add(v, std::memory_order_relaxed);
      }
    });
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
  const int n = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ---------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------
TEST(LatencyHistogram, BucketsAreMonotonicAndCoverInt64) {
  int prev = -1;
  const std::vector<std::int64_t> values = {
      0, 1, 7, 8, 9, 100, 1000, 123456, std::int64_t{1} << 40,
      std::int64_t{1} << 62};
  for (std::int64_t v : values) {
    const int b = LatencyHistogram::bucket_of(v);
    EXPECT_GE(b, prev) << "bucket index must be monotone in value, v=" << v;
    EXPECT_LT(b, LatencyHistogram::kBuckets);
    prev = b;
  }
  // Sub-bucket midpoints stay within 12.5% of the value they stand for.
  for (std::int64_t v : {100LL, 5000LL, 987654LL}) {
    const std::int64_t mid =
        LatencyHistogram::bucket_mid(LatencyHistogram::bucket_of(v));
    EXPECT_NEAR(static_cast<double>(mid), static_cast<double>(v),
                0.125 * static_cast<double>(v));
  }
}

TEST(LatencyHistogram, QuantilesAndMerge) {
  LatencyHistogram a, b;
  for (int i = 1; i <= 1000; ++i) a.record(i * 1000);  // 1..1000 us
  for (int i = 0; i < 10; ++i) b.record(5'000'000);    // 5ms outliers
  auto s = a.snapshot();
  s.merge(b.snapshot());
  EXPECT_EQ(s.total, 1010u);
  EXPECT_EQ(s.max, 5'000'000);
  const std::int64_t p50 = s.quantile(0.50);
  EXPECT_NEAR(static_cast<double>(p50), 500'000.0, 0.15 * 500'000.0);
  EXPECT_GE(s.quantile(0.999), 1'000'000);
  EXPECT_EQ(s.quantile(1.0), 5'000'000) << "top quantile reports the max";
  a.reset();
  EXPECT_EQ(a.snapshot().total, 0u);
}

// ---------------------------------------------------------------------
// ModelHost end-to-end (shared fixture state: packages are signed once —
// model construction dominates the suite's runtime otherwise).
// ---------------------------------------------------------------------
class ServeHostTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pkg_a_ = new std::string("/tmp/radar_test_serve_a_" +
                             std::to_string(::getpid()) + ".rpkg");
    pkg_b_ = new std::string("/tmp/radar_test_serve_b_" +
                             std::to_string(::getpid()) + ".rpkg");
    exp::ModelBundle bundle =
        exp::make_bundle("tiny", /*train=*/false, /*eval_clean=*/false);
    const char* ids[2] = {"radar2", "radar3"};
    const std::string* paths[2] = {pkg_a_, pkg_b_};
    for (int i = 0; i < 2; ++i) {
      auto scheme = core::SchemeRegistry::instance().create(
          ids[i], core::SchemeParams{.group_size = 32});
      scheme->attach(*bundle.qmodel);
      core::save_package(*paths[i], *bundle.qmodel, *scheme, "tiny");
    }
  }
  static void TearDownTestSuite() {
    std::filesystem::remove(*pkg_a_);
    std::filesystem::remove(*pkg_b_);
    delete pkg_a_;
    delete pkg_b_;
    pkg_a_ = pkg_b_ = nullptr;
  }

  void add_two_tenants(ModelHost& host) {
    TenantConfig a;
    a.name = "alpha";
    a.package_path = *pkg_a_;
    TenantConfig b;
    b.name = "beta";
    b.package_path = *pkg_b_;
    EXPECT_EQ(host.add_tenant(a), 0u);
    EXPECT_EQ(host.add_tenant(b), 1u);
  }

  static std::string* pkg_a_;
  static std::string* pkg_b_;
};

std::string* ServeHostTest::pkg_a_ = nullptr;
std::string* ServeHostTest::pkg_b_ = nullptr;

TEST_F(ServeHostTest, RejectsTamperedPackage) {
  const std::string tampered = "/tmp/radar_test_serve_t_" +
                               std::to_string(::getpid()) + ".rpkg";
  std::filesystem::copy_file(*pkg_a_, tampered);
  // Flip one payload byte mid-file: CRC (and likely a signature) breaks.
  {
    std::FILE* f = std::fopen(tampered.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -64, SEEK_END);
    const int c = std::fgetc(f);
    std::fseek(f, -64, SEEK_END);
    std::fputc(c ^ 0x80, f);
    std::fclose(f);
  }
  ModelHost host;
  TenantConfig cfg;
  cfg.name = "evil";
  cfg.package_path = tampered;
  EXPECT_THROW(host.add_tenant(cfg), std::exception)
      << "a package failing verification must not enter service";
  std::filesystem::remove(tampered);
}

TEST_F(ServeHostTest, ServesTwoTenantsConcurrently) {
  ServeOptions opts;
  opts.workers = 2;
  opts.scan = true;
  ModelHost host(opts);
  add_two_tenants(host);
  EXPECT_EQ(host.find_tenant("beta"), 1u);
  EXPECT_EQ(host.find_tenant("nope"), ModelHost::npos);
  host.start();

  constexpr int kPerThread = 20;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (std::size_t t = 0; t < 2; ++t) {
    clients.emplace_back([&host, &ok, t] {
      const auto& ds = host.dataset(t);
      for (int i = 0; i < kPerThread; ++i) {
        const nn::Tensor input =
            ds.test_batch(i % ds.test_size(), 1).images;
        const InferenceResult r = host.infer(t, input);
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_GE(r.predicted, 0);
        EXPECT_GT(r.latency_ns, 0);
        if (r.ok) ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& c : clients) c.join();
  host.stop();

  EXPECT_EQ(ok.load(), 2 * kPerThread);
  const HostStats stats = host.stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  for (const auto& t : stats.tenants) {
    EXPECT_EQ(t.requests, static_cast<std::uint64_t>(kPerThread));
    EXPECT_EQ(t.errors, 0u);
    EXPECT_EQ(t.detections, 0u) << "clean traffic must not trip the scanner";
    EXPECT_GT(t.latency.total, 0u);
  }
  // The background scanner made progress while traffic flowed.
  EXPECT_GT(stats.tenants[0].shards_scanned + stats.tenants[1].shards_scanned,
            0u);
}

TEST_F(ServeHostTest, InjectedFaultsDetectedAndRecoveredUnderTraffic) {
  ServeOptions opts;
  opts.workers = 2;
  opts.scan = true;
  opts.scan_shard_bytes = 4096;
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  // Keep request traffic flowing on the victim while the attack lands.
  std::atomic<bool> stop{false};
  std::thread traffic([&host, &stop] {
    const auto& ds = host.dataset(0);
    const nn::Tensor input = ds.test_batch(0, 1).images;
    while (!stop.load(std::memory_order_relaxed)) host.infer(0, input);
  });

  const std::size_t made = host.inject_faults(0, /*flips=*/6, /*seed=*/42);
  EXPECT_EQ(made, 6u);

  // One full sweep must catch it; allow generous wall time under load.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  HostStats stats;
  while (std::chrono::steady_clock::now() < deadline) {
    stats = host.stats();
    if (stats.tenants[0].detections > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_relaxed);
  traffic.join();
  host.stop();

  EXPECT_GT(stats.tenants[0].detections, 0u) << "injection went undetected";
  EXPECT_GT(stats.tenants[0].groups_recovered, 0u);
  EXPECT_GE(stats.tenants[0].last_ttd_ns, 0) << "time-to-detect not recorded";
  EXPECT_EQ(stats.tenants[0].faults_injected, 6u);
  EXPECT_GT(stats.tenants[0].writer_sections, 0u);
  EXPECT_EQ(stats.tenants[1].detections, 0u)
      << "the attack must not bleed into the other tenant";
}

TEST_F(ServeHostTest, RowhammerTripsQuarantineThenReadmits) {
  ServeOptions opts;
  opts.workers = 2;
  opts.scan = true;
  opts.scan_shard_bytes = 4096;
  opts.quarantine_threshold = 1;  // one detection trips (aggressive)
  opts.quarantine_window_ms = 5000;
  opts.quarantine_backoff_ms = 200;
  opts.quarantine_backoff_max_ms = 1000;
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  // A spatially correlated rowhammer burst against tenant 0. Many rows:
  // the radar2 signature only covers MSB flips, so the burst must be
  // large enough that some of its (uniform-bit) flips hit bit 7.
  const std::size_t made = host.inject_rowhammer(
      0, /*rows=*/16, /*activations=*/150000, /*double_sided=*/true,
      /*seed=*/7);
  EXPECT_GT(made, 0u) << "burst produced no weight flips";

  // The scanner must detect, trip the quarantine and run the full
  // re-verify. Poll generously — CI machines are slow under load.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  HostStats stats;
  while (std::chrono::steady_clock::now() < deadline) {
    stats = host.stats();
    if (stats.tenants[0].quarantines > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(stats.tenants[0].quarantines, 0u) << "quarantine never tripped";

  // While quarantined, tenant 0's requests are shed with a distinct
  // error and tenant 1 keeps serving uninterrupted. The readmission
  // backoff (>=200ms) gives us a window to observe the shedding; skip
  // the assertions gracefully if readmission already happened.
  const nn::Tensor in0 = host.dataset(0).test_batch(0, 1).images;
  const nn::Tensor in1 = host.dataset(1).test_batch(0, 1).images;
  if (host.stats().tenants[0].quarantined) {
    const InferenceResult shed = host.infer(0, in0);
    if (!shed.ok) {
      EXPECT_EQ(shed.error, "tenant quarantined");
    }
  }
  const InferenceResult other = host.infer(1, in1);
  EXPECT_TRUE(other.ok) << "other tenants must continue: " << other.error;

  // Auto-readmission after the backoff, and service is restored (the
  // quarantine re-verified and repaired the arena against the golden
  // copy, so no further detections re-trip it).
  while (std::chrono::steady_clock::now() < deadline) {
    stats = host.stats();
    if (stats.tenants[0].readmits > 0 && !stats.tenants[0].quarantined) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(stats.tenants[0].readmits, 0u) << "tenant never readmitted";
  EXPECT_FALSE(stats.tenants[0].quarantined);
  const InferenceResult after = host.infer(0, in0);
  EXPECT_TRUE(after.ok) << "readmitted tenant must serve again: "
                        << after.error;

  host.stop();
  const HostStats fin = host.stats();
  EXPECT_GT(fin.tenants[0].detections, 0u);
  EXPECT_GT(fin.tenants[0].groups_recovered, 0u);
  EXPECT_EQ(fin.tenants[0].faults_injected, made);
  // radar2's 2-bit signature only covers MSB flips; the quarantine's
  // byte-exact golden scrub must have cleaned the non-MSB remainder of
  // the burst that the scheme's codes could not see.
  EXPECT_GT(fin.tenants[0].bytes_scrubbed, 0u);
  EXPECT_EQ(fin.tenants[1].detections, 0u)
      << "the burst must not bleed into the other tenant";
  EXPECT_EQ(fin.tenants[1].quarantines, 0u);
}

TEST_F(ServeHostTest, QuarantineDisabledByZeroThreshold) {
  ServeOptions opts;
  opts.workers = 1;
  opts.scan = true;
  opts.scan_shard_bytes = 4096;
  opts.quarantine_threshold = 0;  // detections never quarantine
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  EXPECT_GT(host.inject_rowhammer(0, 16, 150000, true, 21), 0u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  HostStats stats;
  while (std::chrono::steady_clock::now() < deadline) {
    stats = host.stats();
    if (stats.tenants[0].detections > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  host.stop();
  EXPECT_GT(stats.tenants[0].detections, 0u);
  EXPECT_EQ(stats.tenants[0].quarantines, 0u)
      << "threshold 0 must disable quarantine";
}

TEST_F(ServeHostTest, OpenLoopShedsWhenQueueIsFull) {
  ServeOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.scan = false;
  ModelHost host(opts);
  add_two_tenants(host);
  host.start();

  const nn::Tensor input = host.dataset(0).test_batch(0, 1).images;
  std::vector<std::future<InferenceResult>> pending;
  std::uint64_t accepted = 0, shed = 0;
  for (int i = 0; i < 64; ++i) {
    std::future<InferenceResult> fut;
    if (host.try_infer_async(0, input, fut)) {
      pending.push_back(std::move(fut));
      ++accepted;
    } else {
      ++shed;
    }
  }
  for (auto& f : pending) f.get();  // inputs must outlive the futures
  host.stop();
  EXPECT_GT(accepted, 0u);
  EXPECT_EQ(host.stats().queue_rejected, shed);
}

// ---------------------------------------------------------------------
// Daemon line protocol (in-process dispatch; the socket transport is
// exercised by the CI smoke job via serve_loadgen --connect).
// ---------------------------------------------------------------------
TEST_F(ServeHostTest, DaemonProtocol) {
  ServeOptions opts;
  opts.workers = 1;
  ModelHost host(opts);
  add_two_tenants(host);
  const std::string sock =
      "/tmp/radar_test_serve_sock_" + std::to_string(::getpid());
  Daemon daemon(host, sock);
  daemon.start();  // also starts the host and builds the input pools
  EXPECT_TRUE(daemon.running());
  EXPECT_TRUE(std::filesystem::exists(sock));

  EXPECT_EQ(daemon.handle_line("PING"), "PONG");
  EXPECT_EQ(daemon.handle_line("TENANTS"), "OK alpha beta");
  EXPECT_EQ(daemon.handle_line("SCAN OFF"), "OK");
  EXPECT_EQ(daemon.handle_line("SCAN sideways"), "ERR usage: SCAN ON|OFF");
  EXPECT_EQ(daemon.handle_line("DETECTIONS"), "OK 0");
  EXPECT_EQ(daemon.handle_line("BOGUS"), "ERR unknown command BOGUS");
  EXPECT_EQ(daemon.handle_line(""), "ERR empty command");
  EXPECT_EQ(daemon.handle_line("INFER nobody"), "ERR unknown tenant nobody");

  // Rowhammer-burst injection form (scanning is OFF: flips land but
  // stay undetected within this test).
  const std::string rh = daemon.handle_line("INJECT alpha rowhammer 1 150000 5");
  EXPECT_EQ(rh.rfind("OK ", 0), 0u) << rh;
  const std::string rh2 =
      daemon.handle_line("INJECT alpha rowhammer 1 150000 5 double");
  EXPECT_EQ(rh2.rfind("OK ", 0), 0u) << rh2;
  EXPECT_EQ(daemon.handle_line("INJECT alpha rowhammer 1").rfind("ERR usage", 0),
            0u);
  EXPECT_EQ(daemon.handle_line("INJECT alpha rowhammer 1 150000 5 sideways")
                .rfind("ERR usage", 0),
            0u);

  const std::string infer = daemon.handle_line("INFER beta");
  EXPECT_EQ(infer.rfind("OK ", 0), 0u) << infer;

  const std::string stats = daemon.handle_line("STATS");
  EXPECT_NE(stats.find("\"name\":\"alpha\""), std::string::npos) << stats;

  EXPECT_EQ(daemon.handle_line("SCAN ON"), "OK");
  EXPECT_EQ(daemon.handle_line("SHUTDOWN"), "OK");
  daemon.wait();  // returns because SHUTDOWN was requested
  daemon.stop();
  host.stop();
  EXPECT_FALSE(std::filesystem::exists(sock)) << "socket file not cleaned up";
}

}  // namespace
}  // namespace radar::serve
