// The registry contract every IntegrityScheme must honor: creatable by
// name, detects any single MSB flip, survives an export/import golden
// round-trip, and zero-out recovery clears all flagged groups.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/bits.h"
#include "core/scheme.h"
#include "core/scheme_registry.h"

namespace radar::core {
namespace {

nn::ResNetSpec tiny_spec() {
  nn::ResNetSpec s;
  s.num_classes = 4;
  s.base_width = 8;
  s.blocks_per_stage = {1, 1};
  s.name = "tiny";
  return s;
}

SchemeParams test_params() {
  SchemeParams p;
  p.group_size = 32;
  return p;
}

class SchemeContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  SchemeContractTest() : rng_(42), model_(tiny_spec(), rng_), qm_(model_) {}

  std::unique_ptr<IntegrityScheme> make_attached() {
    auto scheme =
        SchemeRegistry::instance().create(GetParam(), test_params());
    scheme->attach(qm_);
    return scheme;
  }

  Rng rng_;
  nn::ResNet model_;
  quant::QuantizedModel qm_;
};

TEST_P(SchemeContractTest, ReportsItsRegistryId) {
  auto scheme = make_attached();
  EXPECT_EQ(scheme->id(), GetParam());
  EXPECT_EQ(scheme->params().group_size, 32);
  EXPECT_EQ(scheme->num_layers(), qm_.num_layers());
  EXPECT_GT(scheme->signature_storage_bytes(), 0);
  EXPECT_GT(scheme->total_groups(), 0);
}

TEST_P(SchemeContractTest, CleanModelScansClean) {
  auto scheme = make_attached();
  EXPECT_FALSE(scheme->scan(qm_).attack_detected());
}

TEST_P(SchemeContractTest, DetectsAnySingleMsbFlip) {
  auto scheme = make_attached();
  const quant::ArenaSnapshot clean = qm_.snapshot();
  for (std::size_t layer : {std::size_t{0}, std::size_t{2}}) {
    const std::int64_t last = qm_.layer(layer).size() - 1;
    for (const std::int64_t idx : {std::int64_t{0}, last / 2, last}) {
      qm_.flip_bit(layer, idx, kMsb);
      const DetectionReport report = scheme->scan(qm_);
      EXPECT_TRUE(report.attack_detected())
          << GetParam() << " missed MSB flip at layer " << layer
          << " index " << idx;
      EXPECT_TRUE(report.is_flagged(layer,
                                    scheme->layout(layer).group_of(idx)))
          << GetParam() << " flagged the wrong group";
      qm_.restore(clean);
    }
  }
}

TEST_P(SchemeContractTest, GoldenExportImportRoundTrips) {
  auto scheme = make_attached();
  const auto golden = scheme->export_golden();
  ASSERT_EQ(golden.size(), qm_.num_layers());

  // A freshly attached scheme of the same id/params accepts the exported
  // golden codes and still scans the clean model clean...
  auto fresh = SchemeRegistry::instance().create(GetParam(), test_params());
  fresh->attach(qm_);
  fresh->import_golden(golden);
  EXPECT_FALSE(fresh->scan(qm_).attack_detected());

  // ...and reveals tampering that happens after the import.
  qm_.flip_bit(1, 3, kMsb);
  EXPECT_TRUE(fresh->scan(qm_).attack_detected());
  qm_.flip_bit(1, 3, kMsb);
}

TEST_P(SchemeContractTest, ZeroOutRecoveryClearsFlaggedGroups) {
  auto scheme = make_attached();
  const quant::ArenaSnapshot clean = qm_.snapshot();
  qm_.flip_bit(1, 3, kMsb);
  qm_.flip_bit(2, 9, kMsb);
  const DetectionReport report = scheme->scan(qm_);
  ASSERT_TRUE(report.attack_detected());

  scheme->recover(qm_, report, RecoveryPolicy::kZeroOut);
  for (std::size_t li = 0; li < qm_.num_layers(); ++li) {
    for (const std::int64_t g : report.flagged[li]) {
      for (const std::int64_t idx : scheme->layout(li).group_members(g))
        EXPECT_EQ(qm_.get_code(li, idx), 0)
            << GetParam() << " left layer " << li << " index " << idx;
    }
  }
  // After re-signing the zeroed state, the next scan is clean.
  scheme->resign(qm_);
  EXPECT_FALSE(scheme->scan(qm_).attack_detected());
  qm_.restore(clean);
}

TEST_P(SchemeContractTest, ReloadCleanRecoveryRestoresWeights) {
  auto scheme = make_attached();
  const quant::ArenaSnapshot clean = qm_.snapshot();
  qm_.flip_bit(1, 3, kMsb);
  const DetectionReport report = scheme->scan(qm_);
  ASSERT_TRUE(report.attack_detected());
  scheme->recover(qm_, report, RecoveryPolicy::kReloadClean);
  EXPECT_EQ(qm_.snapshot(), clean);
  EXPECT_FALSE(scheme->scan(qm_).attack_detected());
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredSchemes, SchemeContractTest,
    ::testing::ValuesIn(SchemeRegistry::instance().ids()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(SchemeRegistry, KnowsTheBuiltins) {
  auto& reg = SchemeRegistry::instance();
  for (const char* id : {"radar2", "radar3", "crc7", "crc10", "crc13",
                         "crc16", "fletcher", "hamming-secded"})
    EXPECT_TRUE(reg.contains(id)) << id;
}

TEST(SchemeRegistry, UnknownIdThrowsWithKnownIdsListed) {
  try {
    SchemeRegistry::instance().create("no-such-scheme", SchemeParams{});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("radar2"), std::string::npos);
  }
}

TEST(SchemeRegistry, CustomSchemesCanRegister) {
  auto& reg = SchemeRegistry::instance();
  reg.register_scheme("custom-radar", [](const SchemeParams& p) {
    return std::make_unique<RadarScheme>(p, 2);
  });
  EXPECT_TRUE(reg.contains("custom-radar"));
  auto scheme = reg.create("custom-radar", SchemeParams{});
  ASSERT_NE(scheme, nullptr);
}

}  // namespace
}  // namespace radar::core
