// Attack library: PBFA behaviour, random baseline, knowledgeable
// attacker, profile serialization and statistics.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>

#include "attack/knowledgeable.h"
#include "attack/pbfa.h"
#include "attack/profile_stats.h"
#include "attack/random_attack.h"
#include "core/checksum.h"
#include "data/trainer.h"
#include "nn/loss.h"

namespace radar::attack {
namespace {

/// Small, quickly trainable setup shared by the attack tests.
struct Fixture {
  Fixture() : rng(5), model(spec(), rng) {
    data::SyntheticSpec ds = data::synthetic_cifar_spec();
    ds.image_size = 16;
    ds.num_classes = 4;
    dataset = std::make_unique<data::SyntheticDataset>(ds, 256, 64);
    data::TrainConfig tc;
    tc.epochs = 3;
    tc.batch_size = 32;
    tc.batches_per_epoch = 16;
    tc.lr = 0.005f;
    tc.verbose = false;
    data::train(model, *dataset, tc);
    qm = std::make_unique<quant::QuantizedModel>(model);
  }

  static nn::ResNetSpec spec() {
    nn::ResNetSpec s;
    s.num_classes = 4;
    s.base_width = 8;
    s.blocks_per_stage = {1, 1};
    s.name = "tiny";
    return s;
  }

  Rng rng;
  nn::ResNet model;
  std::unique_ptr<data::SyntheticDataset> dataset;
  std::unique_ptr<quant::QuantizedModel> qm;
};

Fixture& fixture() {
  static Fixture f;  // train once for the whole test binary
  return f;
}

TEST(Pbfa, IncreasesLossWithEachCommittedFlip) {
  Fixture& f = fixture();
  const quant::ArenaSnapshot clean = f.qm->snapshot();
  data::Batch batch = f.dataset->attack_batch(16, 1);
  Pbfa pbfa;
  AttackResult r = pbfa.run(*f.qm, batch, 5);
  EXPECT_EQ(r.flips.size(), 5u);
  EXPECT_GT(r.loss_after, r.loss_before);
  f.qm->restore(clean);
}

TEST(Pbfa, RecordsAccurateBeforeAfterCodes) {
  Fixture& f = fixture();
  const quant::ArenaSnapshot clean = f.qm->snapshot();
  data::Batch batch = f.dataset->attack_batch(16, 2);
  Pbfa pbfa;
  AttackResult r = pbfa.run(*f.qm, batch, 3);
  for (const auto& flip : r.flips) {
    EXPECT_EQ(static_cast<std::uint8_t>(flip.before ^ flip.after),
              1u << flip.bit);
    EXPECT_EQ(f.qm->get_code(flip.layer, flip.index), flip.after);
    EXPECT_EQ(clean.span(flip.layer)[static_cast<std::size_t>(flip.index)],
              flip.before);
  }
  f.qm->restore(clean);
}

TEST(Pbfa, PrefersMsbFlips) {
  // Observation 1 of the paper: the most damaging admissible bit is
  // (almost) always the MSB.
  Fixture& f = fixture();
  const quant::ArenaSnapshot clean = f.qm->snapshot();
  data::Batch batch = f.dataset->attack_batch(16, 3);
  Pbfa pbfa;
  AttackResult r = pbfa.run(*f.qm, batch, 8);
  int msb = 0;
  for (const auto& flip : r.flips)
    if (flip.flips_msb()) ++msb;
  EXPECT_GE(msb, 6);
  f.qm->restore(clean);
}

TEST(Pbfa, GreedyIsPrefixConsistent) {
  Fixture& f = fixture();
  const quant::ArenaSnapshot clean = f.qm->snapshot();
  data::Batch batch = f.dataset->attack_batch(16, 4);
  Pbfa pbfa;
  AttackResult long_run = pbfa.run(*f.qm, batch, 6);
  f.qm->restore(clean);
  AttackResult short_run = pbfa.run(*f.qm, batch, 3);
  f.qm->restore(clean);
  ASSERT_GE(long_run.flips.size(), 3u);
  ASSERT_EQ(short_run.flips.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(long_run.flips[i].layer, short_run.flips[i].layer);
    EXPECT_EQ(long_run.flips[i].index, short_run.flips[i].index);
    EXPECT_EQ(long_run.flips[i].bit, short_run.flips[i].bit);
  }
}

TEST(Pbfa, RestrictedBitsHonored) {
  Fixture& f = fixture();
  const quant::ArenaSnapshot clean = f.qm->snapshot();
  data::Batch batch = f.dataset->attack_batch(16, 5);
  PbfaConfig cfg;
  cfg.allowed_bits = {6};  // MSB-1 only (the §VIII attacker)
  Pbfa pbfa(cfg);
  AttackResult r = pbfa.run(*f.qm, batch, 4);
  for (const auto& flip : r.flips) EXPECT_EQ(flip.bit, 6);
  f.qm->restore(clean);
}

TEST(Pbfa, Msb1AttackWeakerThanMsb) {
  // §VIII: restricting to MSB-1 yields less damage per flip.
  Fixture& f = fixture();
  const quant::ArenaSnapshot clean = f.qm->snapshot();
  data::Batch batch = f.dataset->attack_batch(32, 6);

  Pbfa msb_attack;  // unrestricted, will pick MSBs
  AttackResult r_msb = msb_attack.run(*f.qm, batch, 5);
  f.qm->restore(clean);

  PbfaConfig cfg;
  cfg.allowed_bits = {6};
  Pbfa msb1_attack(cfg);
  AttackResult r_msb1 = msb1_attack.run(*f.qm, batch, 5);
  f.qm->restore(clean);

  EXPECT_GT(r_msb.loss_after, r_msb1.loss_after);
}

TEST(Pbfa, TargetedVariantDrivesPredictionsToTarget) {
  Fixture& f = fixture();
  const quant::ArenaSnapshot clean = f.qm->snapshot();
  data::Batch batch = f.dataset->attack_batch(24, 8);

  auto target_rate = [&](int target) {
    nn::Tensor logits = f.qm->network().forward(batch.images, nn::Mode::kEval);
    const auto pred = nn::argmax_rows(logits);
    int hits = 0;
    for (const int p : pred)
      if (p == target) ++hits;
    return static_cast<double>(hits) / static_cast<double>(pred.size());
  };

  const int target = 2;
  const double before = target_rate(target);
  PbfaConfig cfg;
  cfg.target_class = target;
  Pbfa attacker(cfg);
  attacker.run(*f.qm, batch, 8);
  const double after = target_rate(target);
  EXPECT_GT(after, before + 0.2)
      << "targeted PBFA should herd predictions toward the target class";
  f.qm->restore(clean);
}

TEST(RandomAttack, FlipsRequestedCountAtDistinctSites) {
  Fixture& f = fixture();
  const quant::ArenaSnapshot clean = f.qm->snapshot();
  Rng rng(9);
  AttackResult r = random_bit_flips(*f.qm, 20, rng);
  EXPECT_EQ(r.flips.size(), 20u);
  std::set<std::pair<std::size_t, std::int64_t>> sites;
  for (const auto& flip : r.flips) sites.insert({flip.layer, flip.index});
  EXPECT_EQ(sites.size(), 20u);
  f.qm->restore(clean);
}

TEST(RandomAttack, MsbVariantOnlyTouchesMsb) {
  Fixture& f = fixture();
  const quant::ArenaSnapshot clean = f.qm->snapshot();
  Rng rng(10);
  AttackResult r = random_msb_flips(*f.qm, 15, rng);
  for (const auto& flip : r.flips) EXPECT_EQ(flip.bit, 7);
  f.qm->restore(clean);
}

TEST(Knowledgeable, DecoysCancelUnmaskedContiguousChecksum) {
  Fixture& f = fixture();
  const quant::ArenaSnapshot clean = f.qm->snapshot();

  // Defender's hypothetical naive configuration (what the attacker
  // assumes): contiguous groups, no masking.
  const std::int64_t g = 32;
  KnowledgeableConfig kc;
  kc.assumed_group_size = g;
  KnowledgeableAttacker attacker(kc);
  Rng rng(11);
  data::Batch batch = f.dataset->attack_batch(16, 7);
  AttackResult r = attacker.run(*f.qm, batch, 5, rng);
  EXPECT_GT(r.flips.size(), 5u);  // decoys appended

  // Verify each primary+decoy pair sums to zero under the naive checksum:
  // recompute per-group sums of the attacked layer vs clean.
  core::MaskStream no_mask(0, core::MaskStream::Expansion::kRepeat);
  for (std::size_t li = 0; li < f.qm->num_layers(); ++li) {
    const auto& ql = f.qm->layer(li);
    const core::GroupLayout layout = core::GroupLayout::contiguous(ql.size(), g);
    // Count flips per group in this layer.
    std::map<std::int64_t, int> flips_per_group;
    for (const auto& flip : r.flips)
      if (flip.layer == li) flips_per_group[layout.group_of(flip.index)]++;
    for (const auto& [grp, count] : flips_per_group) {
      if (count != 2) continue;  // only paired groups must cancel
      std::vector<std::int8_t> clean_w(clean.span(li).begin(),
                                       clean.span(li).end());
      const std::int64_t m_clean =
          core::masked_group_sum(clean_w, layout, grp, no_mask);
      const std::int64_t m_dirty =
          core::masked_group_sum(ql.q, layout, grp, no_mask);
      EXPECT_EQ(m_clean, m_dirty) << "layer " << li << " group " << grp;
    }
  }
  f.qm->restore(clean);
}

TEST(Profiles, SaveLoadRoundTrip) {
  const std::string path = "/tmp/radar_test_profiles.bin";
  std::vector<AttackResult> rounds(2);
  rounds[0].loss_before = 1.0f;
  rounds[0].loss_after = 9.0f;
  rounds[0].accuracy_after = 0.25;
  rounds[0].flips = {{3, 1234, 7, 10, -118}, {0, 7, 6, -5, -69}};
  rounds[1].flips = {{1, 42, 7, -1, 127}};
  save_profiles(path, rounds);
  const auto loaded = load_profiles(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_FLOAT_EQ(loaded[0].loss_after, 9.0f);
  EXPECT_NEAR(loaded[0].accuracy_after, 0.25, 1e-6);
  ASSERT_EQ(loaded[0].flips.size(), 2u);
  EXPECT_EQ(loaded[0].flips[0].layer, 3u);
  EXPECT_EQ(loaded[0].flips[0].index, 1234);
  EXPECT_EQ(loaded[0].flips[0].after, -118);
  EXPECT_EQ(loaded[1].flips[0].after, 127);
  std::filesystem::remove(path);
}

TEST(ProfileStats, BitPositionTable) {
  std::vector<AttackResult> rounds(1);
  rounds[0].flips = {
      {0, 0, 7, 10, -118},   // MSB 0->1
      {0, 1, 7, -118, 10},   // MSB 1->0
      {0, 2, 6, 0, 64},      // other
      {0, 3, 7, 5, -123},    // MSB 0->1
  };
  const BitPositionStats s = bit_position_stats(rounds);
  EXPECT_EQ(s.msb_zero_to_one, 2);
  EXPECT_EQ(s.msb_one_to_zero, 1);
  EXPECT_EQ(s.others, 1);
  EXPECT_EQ(s.total(), 4);
}

TEST(ProfileStats, WeightRangeTable) {
  std::vector<AttackResult> rounds(1);
  rounds[0].flips = {
      {0, 0, 7, -100, 0}, {0, 1, 7, -10, 0}, {0, 2, 7, 5, 0},
      {0, 3, 7, 100, 0},  {0, 4, 7, -33, 0},
  };
  const WeightRangeStats s = weight_range_stats(rounds);
  EXPECT_EQ(s.counts[0], 2);  // (-128,-32): -100, -33
  EXPECT_EQ(s.counts[1], 1);  // (-32,0)
  EXPECT_EQ(s.counts[2], 1);  // (0,32)
  EXPECT_EQ(s.counts[3], 1);  // (32,127)
}

TEST(ProfileStats, MultiFlipProportionGrowsWithGroupSize) {
  // Two flips 100 apart in a 1000-weight layer: same contiguous group only
  // when G > 100.
  std::vector<AttackResult> rounds(1);
  rounds[0].flips = {{0, 100, 7, 0, 0}, {0, 199, 7, 0, 0}};
  const std::vector<std::int64_t> sizes = {1000};
  EXPECT_EQ(multi_flip_group_proportion(rounds, sizes, 50, false), 0.0);
  EXPECT_EQ(multi_flip_group_proportion(rounds, sizes, 500, false), 1.0);
}

TEST(ProfileStats, InterleaveReducesMultiFlipProportion) {
  // Clustered flips (adjacent indices): contiguous grouping puts them
  // together; interleaving scatters them.
  std::vector<AttackResult> rounds(1);
  for (std::int64_t i = 0; i < 6; ++i)
    rounds[0].flips.push_back({0, 512 + i, 7, 0, 0});
  const std::vector<std::int64_t> sizes = {4096};
  const double contiguous =
      multi_flip_group_proportion(rounds, sizes, 64, false);
  const double interleaved =
      multi_flip_group_proportion(rounds, sizes, 64, true);
  EXPECT_GT(contiguous, 0.9);
  EXPECT_LT(interleaved, 0.1);
}

}  // namespace
}  // namespace radar::attack
