// End-to-end pipeline: train -> quantize -> attack -> detect -> recover.
// A scaled-down version of the paper's whole experimental loop, asserting
// the qualitative claims (attack hurts, RADAR detects, recovery restores).
#include <gtest/gtest.h>

#include <map>

#include "attack/pbfa.h"
#include "attack/random_attack.h"
#include "core/protected_model.h"
#include "core/scheme.h"
#include "data/trainer.h"

namespace radar {
namespace {

struct Pipeline {
  Pipeline() : rng(99), model(spec(), rng) {
    data::SyntheticSpec ds = data::synthetic_cifar_spec();
    ds.image_size = 16;
    ds.num_classes = 4;
    ds.noise = 0.25;
    dataset = std::make_unique<data::SyntheticDataset>(ds, 512, 256);
    data::TrainConfig tc;
    tc.epochs = 5;
    tc.batch_size = 32;
    tc.batches_per_epoch = 24;
    tc.lr = 0.005f;
    tc.verbose = false;
    data::train(model, *dataset, tc);
    qm = std::make_unique<quant::QuantizedModel>(model);
    clean_acc = accuracy();
  }

  static nn::ResNetSpec spec() {
    nn::ResNetSpec s;
    s.num_classes = 4;
    s.base_width = 8;
    s.blocks_per_stage = {1, 1};
    s.name = "tiny";
    return s;
  }

  double accuracy() {
    return data::evaluate(
        [this](const nn::Tensor& x) { return qm->forward(x); }, *dataset);
  }

  Rng rng;
  nn::ResNet model;
  std::unique_ptr<data::SyntheticDataset> dataset;
  std::unique_ptr<quant::QuantizedModel> qm;
  double clean_acc = 0.0;
};

Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

TEST(Integration, TrainingReachesUsableAccuracy) {
  Pipeline& p = pipeline();
  EXPECT_GT(p.clean_acc, 0.6) << "quantized test accuracy too low";
}

TEST(Integration, PbfaDegradesAccuracySignificantly) {
  Pipeline& p = pipeline();
  const quant::ArenaSnapshot clean = p.qm->snapshot();
  attack::Pbfa pbfa;
  data::Batch batch = p.dataset->attack_batch(32, 123);
  pbfa.run(*p.qm, batch, 8);
  const double attacked = p.accuracy();
  EXPECT_LT(attacked, p.clean_acc - 0.15)
      << "PBFA should cause a large accuracy drop";
  p.qm->restore(clean);
}

TEST(Integration, PbfaBeatsRandomFlipsAtEqualBudget) {
  // The paper's premise: random flips are a weak attack.
  Pipeline& p = pipeline();
  const quant::ArenaSnapshot clean = p.qm->snapshot();

  attack::Pbfa pbfa;
  data::Batch batch = p.dataset->attack_batch(32, 123);
  pbfa.run(*p.qm, batch, 8);
  const double pbfa_acc = p.accuracy();
  p.qm->restore(clean);

  double random_acc_sum = 0.0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    Rng rng(200 + t);
    attack::random_bit_flips(*p.qm, 8, rng);
    random_acc_sum += p.accuracy();
    p.qm->restore(clean);
  }
  EXPECT_LT(pbfa_acc, random_acc_sum / trials);
}

TEST(Integration, RadarDetectsMostPbfaFlips) {
  Pipeline& p = pipeline();
  const quant::ArenaSnapshot clean = p.qm->snapshot();

  core::RadarConfig cfg;
  cfg.group_size = 64;
  cfg.interleave = true;
  core::RadarScheme scheme(cfg);
  scheme.attach(*p.qm);

  attack::Pbfa pbfa;
  data::Batch batch = p.dataset->attack_batch(32, 321);
  attack::AttackResult r = pbfa.run(*p.qm, batch, 8);

  const core::DetectionReport report = scheme.scan(*p.qm);
  // The hard guarantee (parity bit SB): every group containing an ODD
  // number of MSB flips is flagged. Even-count groups can cancel (the
  // Fig. 2 clustering effect — this 5k-weight model has very few groups
  // per layer at G=64), and lower-bit flips are only probabilistically
  // visible; both are quantified by the benches, not asserted here.
  std::map<std::pair<std::size_t, std::int64_t>, int> msb_per_group;
  for (const auto& f : r.flips) {
    if (!f.flips_msb()) continue;
    msb_per_group[{f.layer, scheme.layout(f.layer).group_of(f.index)}]++;
  }
  int odd_groups = 0;
  for (const auto& [key, count] : msb_per_group) {
    if (count % 2 == 0) continue;
    ++odd_groups;
    EXPECT_TRUE(report.is_flagged(key.first, key.second))
        << "layer " << key.first << " group " << key.second << " holds "
        << count << " MSB flips but was not flagged";
  }
  EXPECT_GT(odd_groups, 0) << "attack produced no odd-count MSB group";
  p.qm->restore(clean);
}

TEST(Integration, RecoveryRestoresAccuracyAndLoss) {
  Pipeline& p = pipeline();
  const quant::ArenaSnapshot clean = p.qm->snapshot();

  core::RadarConfig cfg;
  cfg.group_size = 16;  // fine groups: little collateral zeroing
  core::RadarScheme scheme(cfg);
  scheme.attach(*p.qm);

  attack::Pbfa pbfa;
  data::Batch batch = p.dataset->attack_batch(32, 55);
  pbfa.run(*p.qm, batch, 10);
  const double attacked_acc = p.accuracy();
  data::Batch probe = p.dataset->test_batch(0, 128);
  const float attacked_loss = attack::evaluate_loss(*p.qm, probe);

  const core::DetectionReport report = scheme.scan(*p.qm);
  scheme.recover(*p.qm, report, core::RecoveryPolicy::kZeroOut);
  const double recovered_acc = p.accuracy();
  const float recovered_loss = attack::evaluate_loss(*p.qm, probe);

  // Removing the huge corrupted weights must reduce the loss; accuracy
  // must not get worse and should land near the clean level. (On this
  // 4-class toy, PBFA often kills one fc class row; zeroing it caps
  // recovery at 3/4 — the full-scale effect is measured by the benches.)
  EXPECT_LT(recovered_loss, attacked_loss);
  EXPECT_GE(recovered_acc, attacked_acc);
  EXPECT_GE(recovered_acc, p.clean_acc - 0.3)
      << "zero-out recovery should restore close to clean accuracy";
  p.qm->restore(clean);
}

TEST(Integration, ProtectedModelSurvivesRepeatedRuntimeAttacks) {
  Pipeline& p = pipeline();
  const quant::ArenaSnapshot clean = p.qm->snapshot();

  core::RadarConfig cfg;
  cfg.group_size = 32;
  core::RadarScheme scheme(cfg);
  scheme.attach(*p.qm);
  core::ProtectedModel pm(*p.qm, scheme);

  data::Batch probe = p.dataset->test_batch(0, 16);
  Rng rng(77);
  for (int wave = 0; wave < 3; ++wave) {
    attack::random_msb_flips(*p.qm, 4, rng);
    pm.forward(probe.images);
  }
  EXPECT_EQ(pm.detections(), 3);
  EXPECT_GE(pm.groups_recovered(), 3);
  p.qm->restore(clean);
}

TEST(Integration, SmallerGroupsRecoverBetter) {
  // The paper's storage/accuracy trade-off, qualitatively: finer groups
  // zero out less collateral weight mass.
  Pipeline& p = pipeline();
  const quant::ArenaSnapshot clean = p.qm->snapshot();
  attack::Pbfa pbfa;
  data::Batch batch = p.dataset->attack_batch(32, 888);
  attack::AttackResult r = pbfa.run(*p.qm, batch, 6);
  const quant::ArenaSnapshot attacked = p.qm->snapshot();

  double acc_small, acc_large;
  {
    p.qm->restore(clean);
    core::RadarConfig cfg;
    cfg.group_size = 16;
    core::RadarScheme scheme(cfg);
    scheme.attach(*p.qm);
    p.qm->restore(attacked);
    scheme.recover(*p.qm, scheme.scan(*p.qm), core::RecoveryPolicy::kZeroOut);
    acc_small = p.accuracy();
  }
  {
    p.qm->restore(clean);
    core::RadarConfig cfg;
    cfg.group_size = 256;
    core::RadarScheme scheme(cfg);
    scheme.attach(*p.qm);
    p.qm->restore(attacked);
    scheme.recover(*p.qm, scheme.scan(*p.qm), core::RecoveryPolicy::kZeroOut);
    acc_large = p.accuracy();
  }
  // Not strictly monotone per-round, but G=16 should not lose to G=256 by
  // a wide margin; typically it wins.
  EXPECT_GE(acc_small + 0.08, acc_large);
  (void)r;
  p.qm->restore(clean);
}

}  // namespace
}  // namespace radar
