// WeightArena: contiguous storage geometry, span plumbing, global-index
// mapping, one-memcpy snapshots, and the QuantizedModel arena contract
// (baseline compares, load_weights, dirty tracking interplay).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "common/bits.h"
#include "common/rng.h"
#include "quant/qmodel.h"
#include "quant/weight_arena.h"

namespace radar::quant {
namespace {

nn::ResNetSpec tiny_spec() {
  nn::ResNetSpec s;
  s.num_classes = 4;
  s.base_width = 8;
  s.blocks_per_stage = {1, 1};
  s.name = "tiny";
  return s;
}

TEST(WeightArena, OffsetsAreAlignedAndNonOverlapping) {
  WeightArena arena = WeightArena::build({{"a", 0, 7, 1.0f},
                                          {"b", 0, 64, 1.0f},
                                          {"c", 0, 1, 1.0f},
                                          {"d", 0, 100, 1.0f}});
  ASSERT_EQ(arena.num_layers(), 4u);
  std::int64_t prev_end = 0;
  for (std::size_t i = 0; i < arena.num_layers(); ++i) {
    const ArenaLayer& l = arena.layer(i);
    EXPECT_EQ(l.offset % kArenaAlignment, 0) << i;
    EXPECT_GE(l.offset, prev_end) << i;
    prev_end = l.offset + l.size;
  }
  EXPECT_EQ(arena.total_weights(), 7 + 64 + 1 + 100);
  EXPECT_GE(arena.size_bytes(), prev_end);
  EXPECT_EQ(arena.size_bytes() % kArenaAlignment, 0);
  // Span base pointers inherit the alignment.
  for (std::size_t i = 0; i < arena.num_layers(); ++i)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arena.span(i).data()) %
                  static_cast<std::uintptr_t>(kArenaAlignment),
              0u)
        << i;
}

TEST(WeightArena, BuildIsDeterministicGivenSizes) {
  const auto a = WeightArena::build({{"x", 0, 33, 1.0f}, {"y", 0, 5, 2.0f}});
  const auto b = WeightArena::build({{"p", 0, 33, 9.0f}, {"q", 0, 5, 1.0f}});
  for (std::size_t i = 0; i < a.num_layers(); ++i) {
    EXPECT_EQ(a.layer(i).offset, b.layer(i).offset);
    EXPECT_EQ(a.layer(i).size, b.layer(i).size);
  }
  EXPECT_EQ(a.size_bytes(), b.size_bytes());
}

TEST(WeightArena, BlobStartsZeroedIncludingPadding) {
  WeightArena arena = WeightArena::build({{"a", 0, 3, 1.0f},
                                          {"b", 0, 5, 1.0f}});
  for (const std::int8_t v : arena.bytes()) EXPECT_EQ(v, 0);
}

TEST(WeightArena, GlobalIndexRoundTrips) {
  WeightArena arena = WeightArena::build({{"a", 0, 7, 1.0f},
                                          {"b", 0, 0, 1.0f},   // empty layer
                                          {"c", 0, 64, 1.0f},
                                          {"d", 0, 9, 1.0f}});
  std::int64_t g = 0;
  for (std::size_t li = 0; li < arena.num_layers(); ++li) {
    for (std::int64_t i = 0; i < arena.layer(li).size; ++i, ++g) {
      EXPECT_EQ(arena.global_index(li, i), g);
      const auto [l2, i2] = arena.locate(g);
      EXPECT_EQ(l2, li);
      EXPECT_EQ(i2, i);
    }
  }
  EXPECT_EQ(g, arena.total_weights());
  EXPECT_THROW(arena.locate(-1), InvalidArgument);
  EXPECT_THROW(arena.locate(arena.total_weights()), InvalidArgument);
  EXPECT_THROW(arena.global_index(0, 7), InvalidArgument);
}

TEST(WeightArena, SnapshotCaptureAndEquality) {
  WeightArena arena = WeightArena::build({{"a", 0, 40, 1.0f},
                                          {"b", 0, 70, 1.0f}});
  Rng rng(3);
  for (auto& v : arena.span(0)) v = static_cast<std::int8_t>(rng.bits());
  for (auto& v : arena.span(1)) v = static_cast<std::int8_t>(rng.bits());
  ArenaSnapshot s1, s2;
  s1.capture(arena);
  s2.capture(arena);
  EXPECT_TRUE(s1 == s2);
  // Per-layer views of the snapshot equal the live spans.
  for (std::size_t li = 0; li < arena.num_layers(); ++li)
    EXPECT_TRUE(std::memcmp(s1.span(li).data(), arena.span(li).data(),
                            s1.span(li).size()) == 0);
  arena.span(1)[3] ^= 1;
  s2.capture(arena);
  EXPECT_FALSE(s1 == s2);
}

// ---- the QuantizedModel arena contract ----

class QuantArenaTest : public ::testing::Test {
 protected:
  QuantArenaTest() : rng_(29), model_(tiny_spec(), rng_), qm_(model_) {}

  Rng rng_;
  nn::ResNet model_;
  QuantizedModel qm_;
};

TEST_F(QuantArenaTest, LayerSpansAliasTheArena) {
  const WeightArena& arena = qm_.arena();
  ASSERT_EQ(arena.num_layers(), qm_.num_layers());
  for (std::size_t li = 0; li < qm_.num_layers(); ++li) {
    EXPECT_EQ(qm_.layer(li).q.data(), arena.span(li).data());
    EXPECT_EQ(qm_.layer(li).size(), arena.layer(li).size);
    EXPECT_EQ(qm_.layer(li).name, arena.layer(li).name);
    EXPECT_EQ(qm_.layer(li).scale, arena.layer(li).scale);
  }
  // Mutations through the model are visible through the arena view.
  const std::int8_t before = qm_.get_code(2, 5);
  qm_.flip_bit(2, 5, kMsb);
  EXPECT_EQ(arena.span(2)[5], radar::flip_bit(before, kMsb));
  qm_.flip_bit(2, 5, kMsb);
}

TEST_F(QuantArenaTest, GlobalIndexCoversEveryWeight) {
  EXPECT_EQ(qm_.global_index(0, 0), 0);
  const auto [last_layer, last_idx] = qm_.locate(qm_.total_weights() - 1);
  EXPECT_EQ(last_layer, qm_.num_layers() - 1);
  EXPECT_EQ(last_idx, qm_.layer(last_layer).size() - 1);
}

TEST_F(QuantArenaTest, DirtyMatchesBaselineUsesArenaBaseline) {
  qm_.set_dirty_tracking(true);
  EXPECT_TRUE(qm_.dirty_matches_baseline());
  const std::int8_t before = qm_.flip_bit(1, 7, kMsb);
  EXPECT_FALSE(qm_.dirty_matches_baseline());
  // A second write that lands back on the baseline value: matches again
  // even though the log is non-empty.
  qm_.set_code(1, 7, before);
  EXPECT_TRUE(qm_.dirty_matches_baseline());
  qm_.undo_dirty();
  EXPECT_TRUE(qm_.dirty_matches_baseline());
  qm_.set_dirty_tracking(false);
}

TEST_F(QuantArenaTest, ClearDirtyMovesTheBaseline) {
  qm_.set_dirty_tracking(true);
  qm_.flip_bit(0, 3, kMsb);
  qm_.clear_dirty();  // attacked state becomes the new baseline
  EXPECT_TRUE(qm_.dirty_matches_baseline());
  qm_.flip_bit(0, 3, kMsb);  // undo the flip -> now differs from baseline
  EXPECT_FALSE(qm_.dirty_matches_baseline());
  qm_.undo_dirty();
  qm_.set_dirty_tracking(false);
}

TEST_F(QuantArenaTest, LoadWeightsReplacesBlobAndScales) {
  const ArenaSnapshot snap = qm_.snapshot();
  std::vector<std::int8_t> blob(snap.bytes().begin(), snap.bytes().end());
  std::vector<float> scales;
  for (std::size_t li = 0; li < qm_.num_layers(); ++li)
    scales.push_back(qm_.layer(li).scale * 2.0f);
  blob[static_cast<std::size_t>(qm_.arena().layer(1).offset) + 4] ^= 0x40;
  qm_.load_weights(std::span<const std::int8_t>(blob.data(), blob.size()),
                   scales);
  EXPECT_EQ(qm_.layer(0).scale, scales[0]);
  EXPECT_EQ(qm_.arena().layer(0).scale, scales[0]);
  EXPECT_EQ(qm_.layer(1).q[4],
            static_cast<std::int8_t>(snap.span(1)[4] ^ 0x40));
  // Float mirror resynced against the new codes and scales.
  EXPECT_FLOAT_EQ(qm_.layer(0).param->value[0],
                  dequantize(qm_.layer(0).q[0], scales[0]));
  EXPECT_THROW(qm_.load_weights(
                   std::span<const std::int8_t>(blob.data(), blob.size() - 1),
                   scales),
               InvalidArgument);
}

TEST_F(QuantArenaTest, SnapshotRestoreIsExact) {
  const ArenaSnapshot clean = qm_.snapshot();
  Rng rng(0xA5);
  for (int i = 0; i < 64; ++i) {
    const auto li = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(qm_.num_layers()) - 1));
    qm_.flip_bit(li, rng.uniform_int(0, qm_.layer(li).size() - 1),
                 static_cast<int>(rng.uniform_int(0, 7)));
  }
  EXPECT_FALSE(qm_.snapshot() == clean);
  qm_.restore(clean);
  EXPECT_TRUE(qm_.snapshot() == clean);
}

}  // namespace
}  // namespace radar::quant
