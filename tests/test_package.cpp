// RadarPackage: signed deployment artifact round trips and tamper
// evidence, with the scheme id + params carried in the artifact; format
// v3 (contiguous weight arena + layer table + mmap'd golden copy) and
// the transparent v2 migration path.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "common/bits.h"
#include "core/package.h"
#include "core/scheme.h"
#include "core/scheme_registry.h"
#include "qnn/engine.h"
#include "qnn/qnn_scratch.h"

namespace radar::core {
namespace {

nn::ResNetSpec tiny_spec() {
  nn::ResNetSpec s;
  s.num_classes = 4;
  s.base_width = 8;
  s.blocks_per_stage = {1, 1};
  s.name = "tiny";
  return s;
}

class PackageTest : public ::testing::Test {
 protected:
  PackageTest()
      : rng_(21),
        model_(tiny_spec(), rng_),
        qm_(model_),
        path_("/tmp/radar_test_pkg_" + std::to_string(::getpid()) + ".rpkg") {
  }
  ~PackageTest() override { std::filesystem::remove(path_); }

  RadarScheme make_signed_scheme() {
    RadarConfig cfg;
    cfg.group_size = 32;
    RadarScheme scheme(cfg);
    scheme.attach(qm_);
    return scheme;
  }

  Rng rng_;
  nn::ResNet model_;
  quant::QuantizedModel qm_;
  std::string path_;
};

TEST_F(PackageTest, SaveLoadRoundTripVerifies) {
  RadarScheme scheme = make_signed_scheme();
  save_package(path_, qm_, scheme, "tiny-v1");

  // Load into a *fresh* model instance.
  Rng rng2(99);
  nn::ResNet other(tiny_spec(), rng2);
  quant::QuantizedModel qm2(other);
  std::unique_ptr<IntegrityScheme> scheme2;
  const PackageLoadReport report = load_package(path_, qm2, scheme2);
  EXPECT_TRUE(report.crc_ok);
  EXPECT_TRUE(report.signatures_ok);
  EXPECT_TRUE(report.verified());
  EXPECT_EQ(report.info.model_name, "tiny-v1");
  EXPECT_EQ(report.info.scheme_id, "radar2");
  EXPECT_EQ(report.info.total_weights, qm_.total_weights());
  // Weights restored exactly (one arena compare).
  EXPECT_EQ(qm2.snapshot(), qm_.snapshot());
  // The rebuilt scheme works: clean scan after load.
  ASSERT_NE(scheme2, nullptr);
  EXPECT_EQ(scheme2->id(), "radar2");
  EXPECT_FALSE(scheme2->scan(qm2).attack_detected());
}

TEST_F(PackageTest, SchemeParamsSurviveRoundTrip) {
  RadarConfig cfg;
  cfg.group_size = 16;
  cfg.interleave = false;
  cfg.signature_bits = 3;
  cfg.skew = 5;
  cfg.expansion = MaskStream::Expansion::kRepeat;
  cfg.master_key = 0x1234;
  RadarScheme scheme(cfg);
  scheme.attach(qm_);
  save_package(path_, qm_, scheme, "cfg-test");
  const PackageInfo info = read_package_info(path_);
  EXPECT_EQ(info.scheme_id, "radar3");
  EXPECT_EQ(info.params.group_size, 16);
  EXPECT_FALSE(info.params.interleave);
  EXPECT_EQ(info.params.skew, 5);
  EXPECT_EQ(info.params.expansion, MaskStream::Expansion::kRepeat);
  EXPECT_EQ(info.params.master_key, 0x1234u);
}

TEST_F(PackageTest, EverySchemeRoundTripsThroughPackage) {
  SchemeParams params;
  params.group_size = 32;
  for (const auto& id : SchemeRegistry::instance().ids()) {
    auto scheme = SchemeRegistry::instance().create(id, params);
    scheme->attach(qm_);
    save_package(path_, qm_, *scheme, "rt-" + id);

    Rng rng2(7);
    nn::ResNet other(tiny_spec(), rng2);
    quant::QuantizedModel qm2(other);
    std::unique_ptr<IntegrityScheme> loaded;
    const PackageLoadReport report = load_package(path_, qm2, loaded);
    EXPECT_TRUE(report.verified()) << id;
    EXPECT_EQ(report.info.scheme_id, id);
    ASSERT_NE(loaded, nullptr) << id;
    EXPECT_EQ(loaded->id(), id);
  }
}

TEST_F(PackageTest, TamperedWeightsAreLocalized) {
  RadarScheme scheme = make_signed_scheme();
  save_package(path_, qm_, scheme, "tiny-v1");

  // Attacker modifies the deployed model *after* signing (equivalently,
  // the file in transit): flip an MSB, re-save without access to the
  // golden signatures.
  qm_.flip_bit(2, 7, kMsb);
  {
    // Re-serialize with the tampered weights but the ORIGINAL golden
    // signatures (attacker cannot forge them without the key).
    Rng r(1);
    nn::ResNet scratch(tiny_spec(), r);
    quant::QuantizedModel qm_scratch(scratch);
    std::unique_ptr<IntegrityScheme> s2;
    load_package(path_, qm_scratch, s2);  // original content
    qm_scratch.flip_bit(2, 7, kMsb);
    save_package(path_, qm_scratch, *s2, "tiny-v1");
    // save_package exports s2's golden, which is the original one.
  }

  Rng rng2(5);
  nn::ResNet fresh(tiny_spec(), rng2);
  quant::QuantizedModel qm2(fresh);
  std::unique_ptr<IntegrityScheme> scheme2;
  const PackageLoadReport report = load_package(path_, qm2, scheme2);
  EXPECT_FALSE(report.signatures_ok);
  EXPECT_FALSE(report.verified());
  // The tampered group is localized.
  EXPECT_TRUE(report.tamper.is_flagged(
      2, scheme2->layout(2).group_of(7)));
  EXPECT_EQ(report.tamper.num_flagged_groups(), 1);
}

TEST_F(PackageTest, ParallelLoadMatchesSerial) {
  RadarScheme scheme = make_signed_scheme();
  save_package(path_, qm_, scheme, "tiny-v1");
  qm_.flip_bit(1, 3, kMsb);
  {
    Rng r(1);
    nn::ResNet scratch(tiny_spec(), r);
    quant::QuantizedModel qm_scratch(scratch);
    std::unique_ptr<IntegrityScheme> s2;
    load_package(path_, qm_scratch, s2);
    qm_scratch.flip_bit(1, 3, kMsb);
    save_package(path_, qm_scratch, *s2, "tiny-v1");
  }

  Rng rng2(5);
  nn::ResNet fresh(tiny_spec(), rng2);
  quant::QuantizedModel qm2(fresh);
  std::unique_ptr<IntegrityScheme> serial_scheme;
  const auto serial = load_package(path_, qm2, serial_scheme, 1);
  std::unique_ptr<IntegrityScheme> parallel_scheme;
  const auto parallel = load_package(path_, qm2, parallel_scheme, 4);
  EXPECT_EQ(serial.tamper.flagged, parallel.tamper.flagged);
  EXPECT_FALSE(parallel.signatures_ok);
}

TEST_F(PackageTest, LayerCountMismatchRejected) {
  RadarScheme scheme = make_signed_scheme();
  save_package(path_, qm_, scheme, "tiny-v1");
  nn::ResNetSpec other_spec = tiny_spec();
  other_spec.blocks_per_stage = {1};
  Rng rng2(3);
  nn::ResNet other(other_spec, rng2);
  quant::QuantizedModel qm2(other);
  std::unique_ptr<IntegrityScheme> scheme2;
  EXPECT_THROW(load_package(path_, qm2, scheme2), InvalidArgument);
}

TEST_F(PackageTest, InfoDoesNotNeedModel) {
  RadarScheme scheme = make_signed_scheme();
  save_package(path_, qm_, scheme, "info-only");
  const PackageInfo info = read_package_info(path_);
  EXPECT_EQ(info.model_name, "info-only");
  EXPECT_EQ(info.num_layers, qm_.num_layers());
  EXPECT_EQ(info.total_weights, qm_.total_weights());
}

TEST_F(PackageTest, CorruptFileRejected) {
  EXPECT_THROW(read_package_info("/tmp/no_such_package.rpkg"),
               SerializationError);
}

// ---- format v3: contiguous arena ----

TEST_F(PackageTest, V3InfoCarriesArenaTable) {
  RadarScheme scheme = make_signed_scheme();
  save_package(path_, qm_, scheme, "v3-table");
  const PackageInfo info = read_package_info(path_);
  EXPECT_EQ(info.format_version, kPackageFormatV3);
  ASSERT_EQ(info.layers.size(), qm_.num_layers());
  EXPECT_EQ(info.arena_bytes, qm_.arena().size_bytes());
  for (std::size_t li = 0; li < qm_.num_layers(); ++li) {
    const quant::ArenaLayer& pl = info.layers[li];
    const quant::ArenaLayer& ml = qm_.arena().layer(li);
    EXPECT_EQ(pl.name, ml.name);
    EXPECT_EQ(pl.offset, ml.offset);
    EXPECT_EQ(pl.size, ml.size);
    EXPECT_EQ(pl.scale, ml.scale);
  }
}

TEST_F(PackageTest, V2SaveStillRoundTripsAndReportsVersion) {
  RadarScheme scheme = make_signed_scheme();
  save_package(path_, qm_, scheme, "legacy", kPackageFormatV2);
  const PackageInfo info = read_package_info(path_);
  EXPECT_EQ(info.format_version, kPackageFormatV2);
  EXPECT_EQ(info.total_weights, qm_.total_weights());
  // The derived arena geometry matches what a fresh arena would assign.
  ASSERT_EQ(info.layers.size(), qm_.num_layers());
  for (std::size_t li = 0; li < qm_.num_layers(); ++li)
    EXPECT_EQ(info.layers[li].offset, qm_.arena().layer(li).offset);

  Rng rng2(12);
  nn::ResNet other(tiny_spec(), rng2);
  quant::QuantizedModel qm2(other);
  std::unique_ptr<IntegrityScheme> scheme2;
  const PackageLoadReport report = load_package(path_, qm2, scheme2);
  EXPECT_TRUE(report.verified());
  EXPECT_EQ(qm2.snapshot(), qm_.snapshot());
}

TEST_F(PackageTest, V2ToV3MigrationPreservesReportsAndLogits) {
  // Tamper AFTER signing so both loads carry a non-trivial detection
  // report; migrating the artifact v2 -> v3 must not change a single bit
  // of the report or of the engine logits.
  RadarScheme scheme = make_signed_scheme();
  qm_.flip_bit(2, 7, kMsb);
  save_package(path_, qm_, scheme, "migrate", kPackageFormatV2);

  const std::string v3_path = path_ + ".v3";
  nn::Tensor x;
  {
    Rng rx(1234);
    x = nn::Tensor::randn({4, 3, 32, 32}, rx);
  }
  auto load_and_eval = [&](const std::string& p, DetectionReport& tamper,
                           nn::Tensor& logits) {
    Rng rng2(55);
    nn::ResNet fresh(tiny_spec(), rng2);
    quant::QuantizedModel qm2(fresh);
    std::unique_ptr<IntegrityScheme> s;
    const PackageLoadReport report = load_package(p, qm2, s);
    tamper = report.tamper;
    qnn::InferenceEngine engine(qm2, qnn::EngineKind::kBatched);
    engine.calibrate(x);
    qnn::QnnScratch scratch;
    engine.forward_into(x, scratch, logits);
    // Re-save as v3 from this loaded state for the second pass.
    save_package(v3_path, qm2, *s, "migrate");
    return report.info.format_version;
  };
  DetectionReport tamper_v2, tamper_v3;
  nn::Tensor logits_v2, logits_v3;
  EXPECT_EQ(load_and_eval(path_, tamper_v2, logits_v2), kPackageFormatV2);
  EXPECT_EQ(load_and_eval(v3_path, tamper_v3, logits_v3), kPackageFormatV3);
  EXPECT_TRUE(tamper_v2.attack_detected());
  EXPECT_EQ(tamper_v2.flagged, tamper_v3.flagged);
  ASSERT_EQ(logits_v2.numel(), logits_v3.numel());
  EXPECT_EQ(std::memcmp(logits_v2.data(), logits_v3.data(),
                        static_cast<std::size_t>(logits_v2.numel()) *
                            sizeof(float)),
            0)
      << "logits differ across the v2 -> v3 migration";
  std::filesystem::remove(v3_path);
}

TEST_F(PackageTest, MmapGoldenBacksReloadCleanRecovery) {
  RadarScheme scheme = make_signed_scheme();
  save_package(path_, qm_, scheme, "mmap-golden");

  Rng rng2(77);
  nn::ResNet fresh(tiny_spec(), rng2);
  quant::QuantizedModel qm2(fresh);
  std::unique_ptr<IntegrityScheme> s;
  PackageLoadOptions opts;
  opts.mmap_golden = true;
  const PackageLoadReport report = load_package(path_, qm2, s, opts);
  EXPECT_TRUE(report.verified());
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(report.golden_mmapped);
#endif
  const quant::ArenaSnapshot clean = qm2.snapshot();
  // Corrupt in memory, then recover straight from the file mapping.
  qm2.flip_bit(1, 5, kMsb);
  qm2.flip_bit(3, 9, kMsb);
  const DetectionReport tamper = s->scan(qm2);
  EXPECT_TRUE(tamper.attack_detected());
  s->recover(qm2, tamper, RecoveryPolicy::kReloadClean);
  EXPECT_TRUE(qm2.snapshot() == clean);
  EXPECT_FALSE(s->scan(qm2).attack_detected());
}

TEST_F(PackageTest, MmapFallsBackForV2Packages) {
  RadarScheme scheme = make_signed_scheme();
  save_package(path_, qm_, scheme, "v2-no-mmap", kPackageFormatV2);
  Rng rng2(78);
  nn::ResNet fresh(tiny_spec(), rng2);
  quant::QuantizedModel qm2(fresh);
  std::unique_ptr<IntegrityScheme> s;
  PackageLoadOptions opts;
  opts.mmap_golden = true;
  const PackageLoadReport report = load_package(path_, qm2, s, opts);
  EXPECT_TRUE(report.verified());
  EXPECT_FALSE(report.golden_mmapped);  // owned copy; recovery still works
  qm2.flip_bit(0, 2, kMsb);
  const DetectionReport tamper = s->scan(qm2);
  s->recover(qm2, tamper, RecoveryPolicy::kReloadClean);
  EXPECT_FALSE(s->scan(qm2).attack_detected());
}

}  // namespace
}  // namespace radar::core
