// Softmax cross-entropy and optimizers.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"

namespace radar::nn {
namespace {

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy ce;
  Tensor logits({4, 10});
  std::vector<int> labels = {0, 3, 7, 9};
  const float loss = ce.forward(logits, labels);
  EXPECT_NEAR(loss, std::log(10.0f), 1e-5f);
}

TEST(CrossEntropy, ConfidentCorrectIsNearZero) {
  SoftmaxCrossEntropy ce;
  Tensor logits({1, 3});
  logits[0] = 50.0f;  // class 0 overwhelmingly likely
  const float loss = ce.forward(logits, {0});
  EXPECT_LT(loss, 1e-4f);
}

TEST(CrossEntropy, ConfidentWrongIsLarge) {
  SoftmaxCrossEntropy ce;
  Tensor logits({1, 3});
  logits[0] = 50.0f;
  const float loss = ce.forward(logits, {1});
  EXPECT_GT(loss, 40.0f);
}

TEST(CrossEntropy, NumericallyStableForHugeLogits) {
  SoftmaxCrossEntropy ce;
  Tensor logits({1, 2});
  logits[0] = 1e4f;
  logits[1] = -1e4f;
  const float loss = ce.forward(logits, {0});
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0f, 1e-3f);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy ce;
  Rng rng(3);
  Tensor logits = Tensor::randn({3, 4}, rng);
  std::vector<int> labels = {1, 0, 3};
  ce.forward(logits, labels);
  Tensor g = ce.backward();
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const float up = ce.forward(logits, labels);
    logits[i] = saved - eps;
    const float down = ce.forward(logits, labels);
    logits[i] = saved;
    EXPECT_NEAR(g[i], (up - down) / (2 * eps), 1e-3f) << "at " << i;
  }
}

TEST(CrossEntropy, GradientRowsSumToZero) {
  SoftmaxCrossEntropy ce;
  Rng rng(4);
  Tensor logits = Tensor::randn({5, 6}, rng);
  ce.forward(logits, {0, 1, 2, 3, 4});
  Tensor g = ce.backward();
  for (int r = 0; r < 5; ++r) {
    double s = 0.0;
    for (int c = 0; c < 6; ++c) s += g[g.idx2(r, c)];
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(CrossEntropy, LabelOutOfRangeThrows) {
  SoftmaxCrossEntropy ce;
  Tensor logits({1, 3});
  EXPECT_THROW(ce.forward(logits, {3}), InvalidArgument);
  EXPECT_THROW(ce.forward(logits, {-1}), InvalidArgument);
}

TEST(Accuracy, ArgmaxAndAccuracy) {
  Tensor logits = Tensor::from_vector({2, 3}, {0, 5, 1,  //
                                               9, 2, 3});
  EXPECT_EQ(argmax_rows(logits), (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 2}), 0.0);
}

/// y = 2x problem: a single linear unit must fit it quickly.
TEST(Sgd, ConvergesOnLinearRegressionStyleTask) {
  Rng rng(5);
  Linear fc(1, 1, true, rng);
  std::vector<NamedParam> params;
  fc.collect_params("fc", params);
  Sgd opt(params, /*lr=*/0.05f, /*momentum=*/0.9f);
  for (int it = 0; it < 200; ++it) {
    Tensor x = Tensor::randn({8, 1}, rng);
    Tensor y = fc.forward(x, Mode::kTrain);
    // L = mean (y - 2x)^2; dL/dy = 2(y-2x)/N
    Tensor g({8, 1});
    for (int i = 0; i < 8; ++i) g[i] = 2.0f * (y[i] - 2.0f * x[i]) / 8.0f;
    opt.zero_grad();
    fc.backward(g);
    opt.step();
  }
  EXPECT_NEAR(fc.weight().value[0], 2.0f, 0.05f);
  EXPECT_NEAR(fc.bias().value[0], 0.0f, 0.05f);
}

TEST(Adam, ConvergesOnSameTask) {
  Rng rng(6);
  Linear fc(1, 1, true, rng);
  std::vector<NamedParam> params;
  fc.collect_params("fc", params);
  Adam opt(params, /*lr=*/0.05f);
  for (int it = 0; it < 300; ++it) {
    Tensor x = Tensor::randn({8, 1}, rng);
    Tensor y = fc.forward(x, Mode::kTrain);
    Tensor g({8, 1});
    for (int i = 0; i < 8; ++i) g[i] = 2.0f * (y[i] - 2.0f * x[i]) / 8.0f;
    opt.zero_grad();
    fc.backward(g);
    opt.step();
  }
  EXPECT_NEAR(fc.weight().value[0], 2.0f, 0.1f);
}

TEST(Sgd, WeightDecayShrinksWeightsNotBias) {
  Rng rng(7);
  Linear fc(2, 2, true, rng);
  fc.weight().value.fill(1.0f);
  fc.bias().value.fill(1.0f);
  std::vector<NamedParam> params;
  fc.collect_params("fc", params);
  Sgd opt(params, /*lr=*/0.1f, /*momentum=*/0.0f, /*weight_decay=*/0.5f);
  opt.zero_grad();  // zero gradients: only decay acts
  opt.step();
  EXPECT_LT(fc.weight().value[0], 1.0f);
  EXPECT_FLOAT_EQ(fc.bias().value[0], 1.0f);
}

TEST(Sgd, MomentumAcceleratesConstantGradient) {
  Rng rng(8);
  Linear fc(1, 1, false, rng);
  fc.weight().value[0] = 0.0f;
  std::vector<NamedParam> params;
  fc.collect_params("fc", params);
  Sgd opt(params, /*lr=*/0.1f, /*momentum=*/0.9f);
  // Apply the same gradient twice: second step must be larger.
  fc.weight().grad[0] = 1.0f;
  opt.step();
  const float after1 = fc.weight().value[0];
  fc.weight().grad[0] = 1.0f;
  opt.step();
  const float delta2 = after1 - fc.weight().value[0];
  EXPECT_GT(delta2, 0.1f * 1.5f);  // momentum compounding
}

TEST(Mlp, TrainsXorStyleSeparation) {
  Rng rng(9);
  Mlp mlp({2, 16, 2}, rng);
  SoftmaxCrossEntropy ce;
  Adam opt(mlp.params(), 0.01f);
  // XOR dataset.
  Tensor x = Tensor::from_vector({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  std::vector<int> labels = {0, 1, 1, 0};
  float last = 0.0f;
  for (int it = 0; it < 500; ++it) {
    opt.zero_grad();
    Tensor logits = mlp.forward(x, Mode::kTrain);
    last = ce.forward(logits, labels);
    mlp.backward(ce.backward());
    opt.step();
  }
  EXPECT_LT(last, 0.05f);
  EXPECT_DOUBLE_EQ(accuracy(mlp.forward(x), labels), 1.0);
}

}  // namespace
}  // namespace radar::nn
