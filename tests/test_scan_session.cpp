// ScanSession: parallel whole-model scans must be bit-identical to the
// serial scan, for every registered scheme, clean or corrupted.
#include <gtest/gtest.h>

#include "common/bits.h"
#include "core/protected_model.h"
#include "core/scan_session.h"
#include "core/scheme_registry.h"

namespace radar::core {
namespace {

nn::ResNetSpec tiny_spec() {
  nn::ResNetSpec s;
  s.num_classes = 4;
  s.base_width = 8;
  s.blocks_per_stage = {1, 1};
  s.name = "tiny";
  return s;
}

class ScanSessionTest : public ::testing::Test {
 protected:
  ScanSessionTest() : rng_(11), model_(tiny_spec(), rng_), qm_(model_) {}

  Rng rng_;
  nn::ResNet model_;
  quant::QuantizedModel qm_;
};

TEST_F(ScanSessionTest, ParallelEqualsSerialForEveryScheme) {
  SchemeParams params;
  params.group_size = 32;
  for (const auto& id : SchemeRegistry::instance().ids()) {
    auto scheme = SchemeRegistry::instance().create(id, params);
    scheme->attach(qm_);
    const quant::QSnapshot clean = qm_.snapshot();

    // Corrupt several layers so the merged report is non-trivial.
    qm_.flip_bit(0, 1, kMsb);
    qm_.flip_bit(1, 3, kMsb);
    qm_.flip_bit(4, 9, kMsb);

    const DetectionReport serial = scheme->scan(qm_);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      ScanSession session(*scheme, threads);
      const DetectionReport parallel = session.scan(qm_);
      EXPECT_EQ(serial.flagged, parallel.flagged)
          << id << " with " << threads << " threads";
    }
    qm_.restore(clean);
  }
}

TEST_F(ScanSessionTest, CleanModelScansCleanInParallel) {
  auto scheme = SchemeRegistry::instance().create("radar2", SchemeParams{
      .group_size = 32});
  scheme->attach(qm_);
  ScanSession session(*scheme, 4);
  EXPECT_FALSE(session.scan(qm_).attack_detected());
}

TEST_F(ScanSessionTest, SerialSessionRunsWithoutPool) {
  auto scheme = SchemeRegistry::instance().create("radar2", SchemeParams{
      .group_size = 32});
  scheme->attach(qm_);
  ScanSession session(*scheme, 1);
  EXPECT_EQ(session.threads(), 1u);
  qm_.flip_bit(1, 3, kMsb);
  EXPECT_EQ(session.scan(qm_).flagged, scheme->scan(qm_).flagged);
  qm_.flip_bit(1, 3, kMsb);
}

TEST_F(ScanSessionTest, UnattachedSchemeRejected) {
  auto scheme = SchemeRegistry::instance().create("radar2", SchemeParams{});
  ScanSession session(*scheme, 2);
  EXPECT_THROW(session.scan(qm_), InvalidArgument);
}

TEST_F(ScanSessionTest, ProtectedModelUsesSessionForWholeModelScans) {
  auto scheme = SchemeRegistry::instance().create("radar2", SchemeParams{
      .group_size = 32});
  scheme->attach(qm_);
  ProtectedModel pm(qm_, *scheme);
  pm.set_scan_threads(4);
  qm_.flip_bit(1, 3, kMsb);
  pm.check_and_recover();
  EXPECT_EQ(pm.detections(), 1);
  EXPECT_EQ(qm_.get_code(1, 3), 0);
  // Recovered state was re-signed: next parallel scan is clean.
  pm.check_and_recover();
  EXPECT_EQ(pm.detections(), 1);
}

}  // namespace
}  // namespace radar::core
