// ScanSession: parallel whole-model scans must be bit-identical to the
// serial scan, for every registered scheme, clean or corrupted — under
// both work partitionings (legacy layer-parallel and byte-range
// sharding) and any shard size.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/bits.h"
#include "common/cpu_features.h"
#include "core/protected_model.h"
#include "core/scan_session.h"
#include "core/scheme_registry.h"

// ---- counting global allocator (zero-allocation assertions) ----
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}

void* operator new(std::size_t n) {
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  ++g_alloc_count;
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace radar::core {
namespace {

nn::ResNetSpec tiny_spec() {
  nn::ResNetSpec s;
  s.num_classes = 4;
  s.base_width = 8;
  s.blocks_per_stage = {1, 1};
  s.name = "tiny";
  return s;
}

class ScanSessionTest : public ::testing::Test {
 protected:
  ScanSessionTest() : rng_(11), model_(tiny_spec(), rng_), qm_(model_) {}

  Rng rng_;
  nn::ResNet model_;
  quant::QuantizedModel qm_;
};

TEST_F(ScanSessionTest, ParallelEqualsSerialForEveryScheme) {
  SchemeParams params;
  params.group_size = 32;
  for (const auto& id : SchemeRegistry::instance().ids()) {
    auto scheme = SchemeRegistry::instance().create(id, params);
    scheme->attach(qm_);
    const quant::ArenaSnapshot clean = qm_.snapshot();

    // Corrupt several layers so the merged report is non-trivial.
    qm_.flip_bit(0, 1, kMsb);
    qm_.flip_bit(1, 3, kMsb);
    qm_.flip_bit(4, 9, kMsb);

    const DetectionReport serial = scheme->scan(qm_);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      ScanSession session(*scheme, threads);
      const DetectionReport parallel = session.scan(qm_);
      EXPECT_EQ(serial.flagged, parallel.flagged)
          << id << " with " << threads << " threads";
    }
    qm_.restore(clean);
  }
}

TEST_F(ScanSessionTest, EveryDispatchLevelMatchesScalarWholeModelScan) {
  // Whole-model sharded scans under each supported SIMD level against
  // the scalar-level serial scan: the dispatched row kernels, the
  // range-window kernel taken by split shards, and the merge must agree
  // bit for bit for every registered scheme.
  SchemeParams params;
  params.group_size = 32;
  for (const auto& id : SchemeRegistry::instance().ids()) {
    auto scheme = SchemeRegistry::instance().create(id, params);
    scheme->attach(qm_);
    const quant::ArenaSnapshot clean = qm_.snapshot();
    qm_.flip_bit(0, 1, kMsb);
    qm_.flip_bit(2, 5, kMsb);
    qm_.flip_bit(4, 9, kMsb);

    DetectionReport want;
    {
      cpu::ScopedSimdLevel guard(cpu::SimdLevel::kScalar);
      want = scheme->scan(qm_);
    }
    for (int l = 0; l < cpu::kNumSimdLevels; ++l) {
      const auto lvl = static_cast<cpu::SimdLevel>(l);
      if (!cpu::level_supported(lvl)) continue;
      cpu::ScopedSimdLevel guard(lvl);
      EXPECT_EQ(scheme->scan(qm_).flagged, want.flagged)
          << id << " serial, level " << cpu::level_name(lvl);
      ScanSession session(*scheme, 4);
      session.set_shard_bytes(96);  // force split shards -> range kernel
      EXPECT_EQ(session.scan(qm_).flagged, want.flagged)
          << id << " sharded, level " << cpu::level_name(lvl);
    }
    qm_.restore(clean);
  }
}

TEST_F(ScanSessionTest, CleanModelScansCleanInParallel) {
  auto scheme = SchemeRegistry::instance().create("radar2", SchemeParams{
      .group_size = 32});
  scheme->attach(qm_);
  ScanSession session(*scheme, 4);
  EXPECT_FALSE(session.scan(qm_).attack_detected());
}

TEST_F(ScanSessionTest, SerialSessionRunsWithoutPool) {
  auto scheme = SchemeRegistry::instance().create("radar2", SchemeParams{
      .group_size = 32});
  scheme->attach(qm_);
  ScanSession session(*scheme, 1);
  EXPECT_EQ(session.threads(), 1u);
  qm_.flip_bit(1, 3, kMsb);
  EXPECT_EQ(session.scan(qm_).flagged, scheme->scan(qm_).flagged);
  qm_.flip_bit(1, 3, kMsb);
}

TEST_F(ScanSessionTest, ByteRangeShardsMatchSerialAtAnyShardSize) {
  // Force shards far smaller than any layer so every layer splits into
  // many group ranges; the merged report must still equal the serial
  // scan bit for bit, for every scheme (native range kernels for radar
  // and grouped codes; the default trim path is covered via tiny layers
  // that stay whole).
  Rng rng(0xBEEF);
  SchemeParams params;
  params.group_size = 16;
  for (const auto& id : SchemeRegistry::instance().ids()) {
    auto scheme = SchemeRegistry::instance().create(id, params);
    scheme->attach(qm_);
    const quant::ArenaSnapshot clean = qm_.snapshot();
    for (int f = 0; f < 12; ++f) {
      const auto li = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(qm_.num_layers()) - 1));
      qm_.flip_bit(li, rng.uniform_int(0, qm_.layer(li).size() - 1), kMsb);
    }
    const DetectionReport serial = scheme->scan(qm_);
    for (const std::int64_t shard_bytes : {std::int64_t{64},
                                           std::int64_t{1000}}) {
      ScanSession session(*scheme, 4);
      session.set_shard_bytes(shard_bytes);
      const DetectionReport sharded = session.scan(qm_);
      EXPECT_EQ(serial.flagged, sharded.flagged)
          << id << " shard_bytes=" << shard_bytes;
      if (shard_bytes == 64)
        EXPECT_GT(session.last_shard_count(), qm_.num_layers())
            << id << ": small shards should split layers";
    }
    // Legacy layer-parallel partitioning stays available and identical.
    ScanSession layerwise(*scheme, 4);
    layerwise.set_sharding(ScanSession::Sharding::kLayer);
    EXPECT_EQ(serial.flagged, layerwise.scan(qm_).flagged) << id;
    qm_.restore(clean);
  }
}

TEST_F(ScanSessionTest, RangeScanEqualsTrimmedFullScanPerLayer) {
  // scan_layer_range_into over arbitrary split points reproduces the
  // slice of scan_layer_into for every scheme.
  Rng rng(0x51AB);
  SchemeParams params;
  params.group_size = 8;
  for (const auto& id : SchemeRegistry::instance().ids()) {
    auto scheme = SchemeRegistry::instance().create(id, params);
    scheme->attach(qm_);
    for (int f = 0; f < 10; ++f) {
      const auto li = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(qm_.num_layers()) - 1));
      qm_.flip_bit(li, rng.uniform_int(0, qm_.layer(li).size() - 1), kMsb);
    }
    ScanScratch scratch;
    std::vector<std::int64_t> part, whole;
    for (std::size_t li = 0; li < qm_.num_layers(); ++li) {
      scheme->scan_layer_into(qm_, li, whole, scratch);
      const std::int64_t ng = scheme->layout(li).num_groups();
      // Random split into 3 ranges (possibly empty).
      const std::int64_t a = rng.uniform_int(0, ng);
      const std::int64_t b = rng.uniform_int(0, ng);
      const std::int64_t lo = std::min(a, b), hi = std::max(a, b);
      std::vector<std::int64_t> merged;
      for (const auto [s, e] : {std::pair{std::int64_t{0}, lo},
                                std::pair{lo, hi}, std::pair{hi, ng}}) {
        scheme->scan_layer_range_into(qm_, li, s, e, part, scratch);
        for (const std::int64_t g : part) {
          EXPECT_GE(g, s);
          EXPECT_LT(g, e);
        }
        merged.insert(merged.end(), part.begin(), part.end());
      }
      EXPECT_EQ(merged, whole) << id << " layer " << li;
    }
    // Re-attach baseline for the next scheme (weights left attacked).
  }
}

TEST_F(ScanSessionTest, SerialScanLoopIsAllocationFreeAtSteadyState) {
  auto scheme = SchemeRegistry::instance().create(
      "radar2", SchemeParams{.group_size = 32});
  scheme->attach(qm_);
  ScanSession session(*scheme, 1);
  qm_.set_dirty_tracking(true);
  DetectionReport full, inc;
  qm_.flip_bit(1, 3, kMsb);
  // Warm-up: scratch and report vectors grow to their high-water mark.
  session.scan_into(qm_, full);
  session.scan_dirty_into(qm_, inc);
  const std::size_t before = g_alloc_count.load();
  for (int round = 0; round < 5; ++round) {
    session.scan_into(qm_, full);
    session.scan_dirty_into(qm_, inc);
  }
  EXPECT_EQ(g_alloc_count.load() - before, 0u)
      << "steady-state scan loop allocated";
  EXPECT_EQ(full.flagged, inc.flagged);
  qm_.undo_dirty();
  qm_.set_dirty_tracking(false);
}

TEST_F(ScanSessionTest, UnattachedSchemeRejected) {
  auto scheme = SchemeRegistry::instance().create("radar2", SchemeParams{});
  ScanSession session(*scheme, 2);
  EXPECT_THROW(session.scan(qm_), InvalidArgument);
}

TEST_F(ScanSessionTest, ProtectedModelUsesSessionForWholeModelScans) {
  auto scheme = SchemeRegistry::instance().create("radar2", SchemeParams{
      .group_size = 32});
  scheme->attach(qm_);
  ProtectedModel pm(qm_, *scheme);
  pm.set_scan_threads(4);
  qm_.flip_bit(1, 3, kMsb);
  pm.check_and_recover();
  EXPECT_EQ(pm.detections(), 1);
  EXPECT_EQ(qm_.get_code(1, 3), 0);
  // Recovered state was re-signed: next parallel scan is clean.
  pm.check_and_recover();
  EXPECT_EQ(pm.detections(), 1);
}

}  // namespace
}  // namespace radar::core
