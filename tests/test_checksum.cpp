// Checksum + signature properties: Eq. (1) semantics, MSB parity
// coverage, double-flip behaviour, masking, and the 3-bit variant.
#include <gtest/gtest.h>

#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "core/checksum.h"

namespace radar::core {
namespace {

/// Mask stream that never negates (isolates pure addition checksum).
MaskStream zero_mask() {
  return MaskStream(0, MaskStream::Expansion::kRepeat);
}

TEST(Binarize, MatchesEquationOne) {
  // SA = floor(M/256) % 2, SB = floor(M/128) % 2, packed (SA<<1)|SB.
  EXPECT_EQ(binarize(0, 2).bits, 0b00);
  EXPECT_EQ(binarize(127, 2).bits, 0b00);
  EXPECT_EQ(binarize(128, 2).bits, 0b01);
  EXPECT_EQ(binarize(255, 2).bits, 0b01);
  EXPECT_EQ(binarize(256, 2).bits, 0b10);
  EXPECT_EQ(binarize(384, 2).bits, 0b11);
  EXPECT_EQ(binarize(512, 2).bits, 0b00);
}

TEST(Binarize, FloorSemanticsForNegativeChecksums) {
  // floor(-1/128) = -1 (odd) and floor(-1/256) = -1 (odd).
  EXPECT_EQ(binarize(-1, 2).bits, 0b11);
  // floor(-128/128) = -1 (odd), floor(-128/256) = -1 (odd).
  EXPECT_EQ(binarize(-128, 2).bits, 0b11);
  // floor(-129/128) = -2 (even), floor(-129/256) = -1 (odd).
  EXPECT_EQ(binarize(-129, 2).bits, 0b10);
  // floor(-256/256) = -1, floor(-256/128) = -2.
  EXPECT_EQ(binarize(-256, 2).bits, 0b10);
}

TEST(Binarize, ThreeBitAddsSc) {
  // SC = floor(M/64) % 2 as the LSB.
  EXPECT_EQ(binarize(64, 3).bits, 0b001);
  EXPECT_EQ(binarize(128, 3).bits, 0b010);
  EXPECT_EQ(binarize(192, 3).bits, 0b011);
  EXPECT_EQ(binarize(320, 3).bits, 0b101);
}

TEST(Binarize, RejectsOtherWidths) {
  EXPECT_THROW(binarize(0, 1), InvalidArgument);
  EXPECT_THROW(binarize(0, 4), InvalidArgument);
}

TEST(MaskedSum, PlainAdditionWithZeroMask) {
  std::vector<std::int8_t> w = {10, -20, 30, 5};
  const GroupLayout layout = GroupLayout::contiguous(4, 4);
  EXPECT_EQ(masked_group_sum(w, layout, 0, zero_mask()), 25);
}

TEST(MaskedSum, MaskNegatesSelectedWeights) {
  std::vector<std::int8_t> w = {10, -20, 30, 5};
  const GroupLayout layout = GroupLayout::contiguous(4, 4);
  // Repeat key 0b0101: positions 0 and 2 negated.
  MaskStream m(0x5, MaskStream::Expansion::kRepeat);
  EXPECT_EQ(masked_group_sum(w, layout, 0, m), -10 - 20 - 30 + 5);
}

TEST(MaskedSum, PaddingContributesZero) {
  std::vector<std::int8_t> w = {100, 100, 100};  // G=4, one padding slot
  const GroupLayout layout = GroupLayout::contiguous(3, 4);
  EXPECT_EQ(masked_group_sum(w, layout, 0, zero_mask()), 300);
}

TEST(MaskedSum, GroupsUseDistinctMaskPositions) {
  // Same weights in two groups but the PRF mask positions differ, so the
  // sums generally differ.
  std::vector<std::int8_t> w(32, 17);
  const GroupLayout layout = GroupLayout::contiguous(32, 8);
  MaskStream m(0x77AA);
  int distinct = 0;
  std::int64_t first = masked_group_sum(w, layout, 0, m);
  for (std::int64_t g = 1; g < 4; ++g)
    if (masked_group_sum(w, layout, g, m) != first) ++distinct;
  EXPECT_GT(distinct, 0);
}

TEST(MaskedSum, SizeMismatchThrows) {
  std::vector<std::int8_t> w(16, 0);
  const GroupLayout layout = GroupLayout::contiguous(32, 8);
  EXPECT_THROW(masked_group_sum(w, layout, 0, zero_mask()),
               InvalidArgument);
}

// ---- Detection properties (the security core of the paper) ----

class ChecksumProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // Random group of 64 int8 weights + PRF mask keyed off the param seed.
  void SetUp() override {
    Rng rng(GetParam());
    weights_.resize(64);
    for (auto& w : weights_)
      w = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    mask_ = std::make_unique<MaskStream>(
        static_cast<std::uint16_t>(rng.bits() & 0xFFFF));
    layout_ = std::make_unique<GroupLayout>(GroupLayout::contiguous(64, 64));
  }

  Signature sig(int width = 2) const {
    return group_signature(weights_, *layout_, 0, *mask_, width);
  }

  std::vector<std::int8_t> weights_;
  std::unique_ptr<MaskStream> mask_;
  std::unique_ptr<GroupLayout> layout_;
};

TEST_P(ChecksumProperty, SingleMsbFlipAlwaysDetected) {
  const Signature clean = sig();
  for (std::size_t i = 0; i < weights_.size(); i += 5) {
    const std::int8_t saved = weights_[i];
    weights_[i] = radar::flip_bit(saved, radar::kMsb);
    EXPECT_FALSE(sig() == clean) << "missed MSB flip at " << i;
    weights_[i] = saved;
  }
}

TEST_P(ChecksumProperty, AnyOddNumberOfMsbFlipsDetected) {
  const Signature clean = sig();
  Rng rng(GetParam() ^ 0xDEAD);
  for (int count : {1, 3, 5, 7}) {
    auto saved = weights_;
    const auto sites = rng.sample_without_replacement(weights_.size(),
                                                      static_cast<std::size_t>(count));
    for (auto s : sites)
      weights_[s] = radar::flip_bit(weights_[s], radar::kMsb);
    EXPECT_FALSE(sig() == clean) << count << " flips escaped";
    weights_ = saved;
  }
}

TEST_P(ChecksumProperty, SingleMsb1FlipDetectedBy3BitSignature) {
  const Signature clean = sig(3);
  for (std::size_t i = 0; i < weights_.size(); i += 7) {
    const std::int8_t saved = weights_[i];
    weights_[i] = radar::flip_bit(saved, 6);  // MSB-1
    EXPECT_FALSE(sig(3) == clean) << "missed MSB-1 flip at " << i;
    weights_[i] = saved;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

TEST(ChecksumBlindSpots, SameDirectionDoublePairCaughtBySa) {
  // Unmasked: two 0->1 MSB flips each add -128; M shifts by -256, SB is
  // unchanged but SA toggles (the very reason the paper includes SA).
  std::vector<std::int8_t> w = {10, 20, 30, 40};
  const GroupLayout layout = GroupLayout::contiguous(4, 4);
  const Signature clean = group_signature(w, layout, 0, zero_mask(), 2);
  w[0] = radar::flip_bit(w[0], radar::kMsb);  // 0->1
  w[1] = radar::flip_bit(w[1], radar::kMsb);  // 0->1
  const Signature dirty = group_signature(w, layout, 0, zero_mask(), 2);
  EXPECT_FALSE(dirty == clean);
  // And specifically: SB (bit 0) equal, SA (bit 1) differs.
  EXPECT_EQ((dirty.bits ^ clean.bits) & 0b01, 0);
  EXPECT_EQ((dirty.bits ^ clean.bits) & 0b10, 0b10);
}

TEST(ChecksumBlindSpots, OppositePairInvisibleWithoutMask) {
  // One 0->1 (-128) and one 1->0 (+128): net zero — the documented
  // weakness that interleaving + masking must address.
  std::vector<std::int8_t> w = {10, -20, 30, 40};  // w[1] has MSB set
  const GroupLayout layout = GroupLayout::contiguous(4, 4);
  const Signature clean = group_signature(w, layout, 0, zero_mask(), 2);
  w[0] = radar::flip_bit(w[0], radar::kMsb);
  w[1] = radar::flip_bit(w[1], radar::kMsb);
  const Signature dirty = group_signature(w, layout, 0, zero_mask(), 2);
  EXPECT_TRUE(dirty == clean);
}

TEST(ChecksumBlindSpots, MaskingCanExposeOppositePair) {
  // With a mask that negates exactly one of the two positions, both flips
  // push M the same way (±256): detected by SA.
  std::vector<std::int8_t> w = {10, -20, 30, 40};
  const GroupLayout layout = GroupLayout::contiguous(4, 4);
  // Repeat key 0b0010: only position 1 negated.
  MaskStream m(0x2, MaskStream::Expansion::kRepeat);
  const Signature clean = group_signature(w, layout, 0, m, 2);
  w[0] = radar::flip_bit(w[0], radar::kMsb);
  w[1] = radar::flip_bit(w[1], radar::kMsb);
  const Signature dirty = group_signature(w, layout, 0, m, 2);
  EXPECT_FALSE(dirty == clean);
}

TEST(ChecksumBlindSpots, TwoBitSignatureCanMissMsb1Flip) {
  // A ±64 change does not necessarily cross a /128 boundary.
  std::vector<std::int8_t> w = {0, 0, 0, 0};  // M = 0
  const GroupLayout layout = GroupLayout::contiguous(4, 4);
  const Signature clean = group_signature(w, layout, 0, zero_mask(), 2);
  w[0] = radar::flip_bit(w[0], 6);  // +64: M = 64, still floor(64/128)=0
  const Signature dirty = group_signature(w, layout, 0, zero_mask(), 2);
  EXPECT_TRUE(dirty == clean);  // 2-bit blind
  // ... while the 3-bit signature sees it.
  std::vector<std::int8_t> w2 = {0, 0, 0, 0};
  const Signature clean3 = group_signature(w2, layout, 0, zero_mask(), 3);
  w2[0] = radar::flip_bit(w2[0], 6);
  EXPECT_FALSE(group_signature(w2, layout, 0, zero_mask(), 3) == clean3);
}

TEST(ChecksumBlindSpots, LowBitFlipsUsuallyInvisible) {
  // Bits 0..4 change M by at most ±16: far from the /128 threshold in
  // most states — quantifying why the scheme targets MSBs.
  Rng rng(4242);
  int missed = 0, total = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::int8_t> w(16);
    for (auto& x : w) x = static_cast<std::int8_t>(rng.uniform_int(-40, 40));
    const GroupLayout layout = GroupLayout::contiguous(16, 16);
    MaskStream m(static_cast<std::uint16_t>(rng.bits() & 0xFFFF));
    const Signature clean = group_signature(w, layout, 0, m, 2);
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, 15));
    const int bit = static_cast<int>(rng.uniform_int(0, 2));
    w[i] = radar::flip_bit(w[i], bit);
    ++total;
    if (group_signature(w, layout, 0, m, 2) == clean) ++missed;
  }
  EXPECT_GT(missed, total / 2);
}

}  // namespace
}  // namespace radar::core
