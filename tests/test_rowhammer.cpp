// Rowhammer campaign attacker: per-seed burst determinism, spatial
// correlation of the flips through the address mapping, commitment to
// the quantized model, and thread-invariance of campaign reports that
// use the attacker.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "attack/rowhammer.h"
#include "campaign/campaign.h"
#include "common/rng.h"
#include "nn/resnet.h"
#include "quant/qmodel.h"

namespace radar {
namespace {

/// A float model + its quantized view (the float masters must outlive
/// the QuantizedModel).
struct TestModel {
  std::unique_ptr<nn::ResNet> net;
  std::unique_ptr<quant::QuantizedModel> qm;
};

TestModel make_model(std::uint64_t seed) {
  Rng rng(seed);
  nn::ResNetSpec spec;
  spec.num_classes = 4;
  spec.base_width = 8;
  spec.blocks_per_stage = {1};
  TestModel m;
  m.net = std::make_unique<nn::ResNet>(spec, rng);
  m.qm = std::make_unique<quant::QuantizedModel>(*m.net);
  return m;
}

TEST(Rowhammer, BurstIsDeterministicPerSeedAndCommitsFlips) {
  TestModel ma = make_model(3), mb = make_model(3);
  quant::QuantizedModel &qa = *ma.qm, &qb = *mb.qm;
  attack::RowhammerConfig cfg;
  cfg.rows = 2;
  // The test model's arena is tiny; raise the weak-cell density so every
  // burst reliably lands flips inside it.
  cfg.dram.cell_vulnerability = 0.02;
  Rng ra(5), rb(5);
  const attack::AttackResult a = attack::rowhammer_attack(qa, cfg, ra);
  const attack::AttackResult b = attack::rowhammer_attack(qb, cfg, rb);
  ASSERT_FALSE(a.flips.empty());
  ASSERT_EQ(a.flips.size(), b.flips.size());
  for (std::size_t i = 0; i < a.flips.size(); ++i) {
    EXPECT_EQ(a.flips[i].layer, b.flips[i].layer);
    EXPECT_EQ(a.flips[i].index, b.flips[i].index);
    EXPECT_EQ(a.flips[i].bit, b.flips[i].bit);
    EXPECT_EQ(a.flips[i].before, b.flips[i].before);
    EXPECT_EQ(a.flips[i].after, b.flips[i].after);
    // Committed: each record is exactly one bit apart, and since every
    // (cell, bit) is flipped at most once, the model's final code agrees
    // with the record in that bit (other bits of the same byte may have
    // been hit by later flips of the burst).
    EXPECT_EQ(static_cast<std::uint8_t>(a.flips[i].before ^
                                        a.flips[i].after),
              std::uint8_t{1} << a.flips[i].bit);
    const std::uint8_t now = static_cast<std::uint8_t>(
        qa.get_code(a.flips[i].layer, a.flips[i].index));
    EXPECT_EQ((now >> a.flips[i].bit) & 1,
              (static_cast<std::uint8_t>(a.flips[i].after) >>
               a.flips[i].bit) &
                  1);
  }

  // A different rng stream hammers different cells.
  TestModel mc = make_model(3);
  quant::QuantizedModel& qc = *mc.qm;
  Rng rc(6);
  const attack::AttackResult c = attack::rowhammer_attack(qc, cfg, rc);
  const auto sa = a.flip_sites(), sc = c.flip_sites();
  EXPECT_TRUE(sa != sc);
}

TEST(Rowhammer, FlipsClusterWithinOneRowUnderRowMajor) {
  TestModel m = make_model(4);
  quant::QuantizedModel& qm = *m.qm;
  attack::RowhammerConfig cfg;
  cfg.dram.mapping = sim::AddressMapping::kRowMajor;
  cfg.dram.banks = 1;
  cfg.dram.row_bytes = 512;
  cfg.dram.cell_vulnerability = 0.01;  // ~40 weak cells per row
  cfg.rows = 1;
  Rng rng(9);
  const attack::AttackResult res = attack::rowhammer_attack(qm, cfg, rng);
  ASSERT_GE(res.flips.size(), 5u) << "one hammered row must yield a burst";
  // Under the linear mapping, one victim row is 512 consecutive arena
  // bytes — every flip of the burst lands inside that window. That is
  // the spatial correlation the iid attackers lack.
  std::int64_t lo = INT64_MAX, hi = INT64_MIN;
  for (const attack::BitFlip& f : res.flips) {
    const std::int64_t off = qm.layer_byte_range(f.layer).first + f.index;
    lo = std::min(lo, off);
    hi = std::max(hi, off);
  }
  EXPECT_LT(hi - lo, cfg.dram.row_bytes);
}

TEST(Rowhammer, BankStripeSpreadsOneRowAcrossTheArena) {
  TestModel m = make_model(4);
  quant::QuantizedModel& qm = *m.qm;
  attack::RowhammerConfig cfg;  // default: kBankStripe across 8 banks
  cfg.dram.row_bytes = 512;
  cfg.dram.stripe_bytes = 32;  // fine interleave: a row spans the arena
  cfg.dram.cell_vulnerability = 0.02;
  cfg.rows = 1;
  Rng rng(9);
  const attack::AttackResult res = attack::rowhammer_attack(qm, cfg, rng);
  ASSERT_GE(res.flips.size(), 5u);
  // With the controller interleave one victim row is NOT a contiguous
  // byte range: its stripe granules sit total_banks x stripe_bytes
  // apart, so the burst spans at least one full rotation.
  std::int64_t lo = INT64_MAX, hi = INT64_MIN;
  for (const attack::BitFlip& f : res.flips) {
    const std::int64_t off = qm.layer_byte_range(f.layer).first + f.index;
    lo = std::min(lo, off);
    hi = std::max(hi, off);
  }
  EXPECT_GE(hi - lo, 8 * cfg.dram.stripe_bytes);
}

TEST(Rowhammer, MoreRowsYieldMoreFlips) {
  attack::RowhammerConfig one, four;
  one.dram.cell_vulnerability = four.dram.cell_vulnerability = 0.01;
  one.dram.row_bytes = four.dram.row_bytes = 512;
  one.rows = 1;
  four.rows = 4;
  TestModel m1 = make_model(5), m4 = make_model(5);
  quant::QuantizedModel &q1 = *m1.qm, &q4 = *m4.qm;
  Rng r1(17), r4(17);
  const auto f1 = attack::rowhammer_attack(q1, one, r1).flips.size();
  const auto f4 = attack::rowhammer_attack(q4, four, r4).flips.size();
  EXPECT_GT(f4, f1);
}

TEST(CampaignRowhammer, SpecRoundTripsThroughJson) {
  campaign::CampaignSpec spec;
  spec.name = "rh";
  spec.model = "tiny";
  spec.train = false;
  spec.trials = 1;
  campaign::AttackerSpec atk;
  atk.kind = "rowhammer";
  atk.rows = 4;
  atk.activations = 120000;
  atk.double_sided = true;
  atk.mapping = "rowmajor";
  atk.row_bytes = 4096;
  spec.attackers = {atk};
  spec.schemes = {campaign::SchemeSpec{}};
  const campaign::CampaignSpec back =
      campaign::CampaignSpec::from_json_text(spec.to_json());
  ASSERT_EQ(back.attackers.size(), 1u);
  EXPECT_EQ(back.attackers[0].kind, "rowhammer");
  EXPECT_EQ(back.attackers[0].rows, 4);
  EXPECT_EQ(back.attackers[0].activations, 120000);
  EXPECT_TRUE(back.attackers[0].double_sided);
  EXPECT_EQ(back.attackers[0].mapping, "rowmajor");
  EXPECT_EQ(back.attackers[0].row_bytes, 4096);
  // Every burst-shaping parameter is part of the label — the campaign
  // keys RNG streams and the disk cache off it.
  EXPECT_EQ(back.attackers[0].label(),
            "rowhammer/r4/a120000/ds/rowmajor/rb4096");
}

TEST(CampaignRowhammer, ReportsAreThreadInvariant) {
  campaign::CampaignSpec spec;
  spec.name = "rh-diff";
  spec.model = "tiny";
  spec.train = false;
  spec.trials = 2;
  spec.seed = 77;
  campaign::AttackerSpec stripe;
  stripe.kind = "rowhammer";
  stripe.rows = 4;
  campaign::AttackerSpec rowmajor;
  rowmajor.kind = "rowhammer";
  rowmajor.mapping = "rowmajor";
  rowmajor.double_sided = true;
  spec.attackers = {stripe, rowmajor};
  campaign::SchemeSpec ilv;
  ilv.params.group_size = 32;
  campaign::SchemeSpec contig;
  contig.params.group_size = 32;
  contig.params.interleave = false;
  spec.schemes = {ilv, contig};

  auto run_json = [&](std::size_t threads) {
    const campaign::CampaignReport report =
        campaign::CampaignRunner(threads).run(spec);
    return report.to_json() + report.to_csv();
  };
  const std::string serial = run_json(1);
  EXPECT_EQ(serial, run_json(4));

  // And the burst actually lands + is seen: flips and detections > 0.
  const campaign::CampaignReport report = campaign::CampaignRunner(2).run(spec);
  for (std::size_t a = 0; a < spec.attackers.size(); ++a)
    for (std::size_t s = 0; s < spec.schemes.size(); ++s) {
      EXPECT_GT(report.cell(a, 0, s).mean_flips, 0.0);
      EXPECT_GT(report.cell(a, 0, s).mean_detected, 0.0);
    }
}

}  // namespace
}  // namespace radar
