// Knowledgeable attacker (§VIII) coverage: the decoy pairs it crafts are
// provably invisible to the defense it assumes — a contiguous, unmasked
// addition checksum — but are caught once the defender's masking and
// interleaving are on, both at the scheme level and through the campaign
// engine.
#include <gtest/gtest.h>

#include <map>

#include "attack/knowledgeable.h"
#include "campaign/campaign.h"
#include "common/bits.h"
#include "core/checksum.h"
#include "core/scheme.h"
#include "exp/workspace.h"

namespace radar {
namespace {

constexpr std::int64_t kAssumedG = 32;

class KnowledgeableTest : public ::testing::Test {
 protected:
  KnowledgeableTest()
      : bundle_(exp::make_bundle("tiny", /*train=*/false,
                                 /*eval_clean=*/false)),
        clean_(bundle_.qmodel->snapshot()) {}

  attack::AttackResult run_attack(int n_primary) {
    attack::KnowledgeableConfig cfg;
    cfg.assumed_group_size = kAssumedG;
    cfg.pbfa.allowed_bits = {7};  // MSB attacker, the paper's setting
    attack::KnowledgeableAttacker attacker(cfg);
    Rng rng(0x5EC0);
    const data::Batch batch = bundle_.dataset->attack_batch(8, 0xBA7C4);
    return attacker.run(*bundle_.qmodel, batch, n_primary, rng);
  }

  /// Unmasked contiguous checksum of one assumed group of a layer.
  std::int64_t plain_checksum(const quant::ArenaSnapshot& snap,
                              std::size_t layer, std::int64_t group) {
    const std::span<const std::int8_t> weights = snap.span(layer);
    const core::GroupLayout layout = core::GroupLayout::contiguous(
        static_cast<std::int64_t>(weights.size()), kAssumedG);
    const core::MaskStream no_mask(0, core::MaskStream::Expansion::kRepeat);
    return core::masked_group_sum(weights, layout, group, no_mask);
  }

  exp::ModelBundle bundle_;
  quant::ArenaSnapshot clean_;
};

TEST_F(KnowledgeableTest, DecoyPairsEvadeContiguousUnmaskedChecksum) {
  const attack::AttackResult res = run_attack(6);
  const std::size_t n_decoys = res.flips.size() - 6;
  ASSERT_GT(n_decoys, 0u) << "attacker found no canceling partners";
  const quant::ArenaSnapshot attacked = bundle_.qmodel->snapshot();

  // Group the flips by their assumed (contiguous) checksum group.
  std::map<std::pair<std::size_t, std::int64_t>, int> flips_per_group;
  for (const attack::BitFlip& f : res.flips)
    ++flips_per_group[{f.layer, f.index / kAssumedG}];

  // Every group holding exactly one primary + its decoy must have an
  // unchanged unmasked checksum: the pair cancels, the attack is
  // invisible to the defense the attacker assumes.
  int cancelled_groups = 0;
  for (const auto& [group_key, count] : flips_per_group) {
    if (count != 2) continue;  // unpaired primary or a rare collision
    EXPECT_EQ(plain_checksum(clean_, group_key.first, group_key.second),
              plain_checksum(attacked, group_key.first, group_key.second))
        << "layer " << group_key.first << " group " << group_key.second;
    ++cancelled_groups;
  }
  EXPECT_GT(cancelled_groups, 0);
}

TEST_F(KnowledgeableTest, MaskingAndInterleavingCatchTheDecoys) {
  // Attach both defender configurations to the clean model first.
  core::RadarConfig contig;
  contig.group_size = kAssumedG;
  contig.interleave = false;
  core::RadarScheme masked_contig(contig);
  masked_contig.attach(*bundle_.qmodel);

  core::RadarConfig ilv = contig;
  ilv.interleave = true;
  core::RadarScheme masked_ilv(ilv);
  masked_ilv.attach(*bundle_.qmodel);

  const attack::AttackResult res = run_attack(6);
  const auto sites = res.flip_sites();

  // Interleaving scatters each decoy pair across groups, so almost every
  // flip is flagged individually (paper: detection stays near-complete).
  const core::DetectionReport ilv_report =
      masked_ilv.scan(*bundle_.qmodel);
  const std::int64_t ilv_detected =
      core::count_detected_flips(masked_ilv, ilv_report, sites);
  EXPECT_TRUE(ilv_report.attack_detected());
  EXPECT_GE(static_cast<double>(ilv_detected),
            0.8 * static_cast<double>(sites.size()));

  // Even without interleaving, the secret mask breaks ~half of the decoy
  // cancellations — the attack cannot stay fully invisible.
  const core::DetectionReport contig_report =
      masked_contig.scan(*bundle_.qmodel);
  EXPECT_TRUE(contig_report.attack_detected());
  // And the interleaved defense dominates the contiguous one.
  const std::int64_t contig_detected =
      core::count_detected_flips(masked_contig, contig_report, sites);
  EXPECT_GE(ilv_detected, contig_detected);

  bundle_.qmodel->restore(clean_);
}

TEST(KnowledgeableCampaignTest, InterleavingDominatesInCampaign) {
  campaign::CampaignSpec spec;
  spec.name = "knowledgeable";
  spec.model = "tiny";
  spec.train = false;
  // 8 trials at this seed give a wide, calibrated ilv-vs-contig margin
  // (~86% vs ~54%); the tiny model's small layers make per-trial decoy
  // collisions noisy, so fewer trials would flake.
  spec.trials = 8;
  spec.seed = 2;
  spec.attackers = {{.kind = "knowledgeable",
                     .flips = 6,
                     .assumed_group_size = kAssumedG,
                     .attack_batch = 8}};
  campaign::SchemeSpec contig;
  contig.params.group_size = kAssumedG;
  contig.params.interleave = false;
  campaign::SchemeSpec ilv = contig;
  ilv.params.interleave = true;
  spec.schemes = {contig, ilv};

  const campaign::CampaignReport report =
      campaign::CampaignRunner(2).run(spec);
  const campaign::CellStats& c_contig = report.cell(0, 0, 0);
  const campaign::CellStats& c_ilv = report.cell(0, 0, 1);
  // The attacker actually crafted decoys (flips > primaries).
  EXPECT_GT(c_ilv.mean_flips, 6.0);
  // Interleaving keeps detection high and never misses a trial; the
  // contiguous defense loses the cancelled pairs (and whole trials).
  // Calibrated: across probed seeds ilv lands at 66-77% and contig at
  // 43-58% on the tiny model (its small layers collide decoy pairs far
  // more often than the paper-scale networks).
  EXPECT_GE(c_ilv.detection_rate, 0.65);
  EXPECT_GE(c_ilv.detection_rate, c_contig.detection_rate + 0.10);
  EXPECT_DOUBLE_EQ(c_ilv.miss_rate, 0.0);
  EXPECT_GT(c_contig.miss_rate, 0.0);
}

}  // namespace
}  // namespace radar
