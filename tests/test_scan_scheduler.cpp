// ScanScheduler edge cases: the budget semantics and the report-identity
// contract the serve and campaign layers build on.
//
//   - zero budget starves (nothing scanned, `starved` reported) — the
//     signal the serve coverage-age alarm keys off
//   - unlimited budget completes a sweep in one slice whose report is
//     byte-identical to ScanSession::scan_into (serial AND pooled)
//   - a byte budget small enough to split layers resumes mid-layer and
//     still reproduces the serial report exactly
//   - dirty groups preempt the sweep (flagged before the cursor would
//     reach them) without ever polluting the sweep report
//   - the campaign's kScheduled mode emits default (non-timing) reports
//     byte-identical to kFull, across worker thread counts
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "campaign/campaign.h"
#include "common/bits.h"
#include "core/scan_scheduler.h"
#include "core/scan_session.h"
#include "core/scheme_registry.h"
#include "quant/qmodel.h"

namespace radar::core {
namespace {

nn::ResNetSpec tiny_spec() {
  nn::ResNetSpec s;
  s.num_classes = 4;
  s.base_width = 8;
  s.blocks_per_stage = {1, 1};
  s.name = "tiny";
  return s;
}

class ScanSchedulerTest : public ::testing::Test {
 protected:
  ScanSchedulerTest() : rng_(91), model_(tiny_spec(), rng_), qm_(model_) {
    scheme_ = SchemeRegistry::instance().create(
        "radar2", SchemeParams{.group_size = 32});
    scheme_->attach(qm_);
  }

  /// Corrupt one weight (persistently) in the given layer.
  void flip(std::size_t layer, std::int64_t idx) {
    qm_.flip_bit(layer, idx, kMsb);
  }

  Rng rng_;
  nn::ResNet model_;
  quant::QuantizedModel qm_;
  std::unique_ptr<IntegrityScheme> scheme_;
};

TEST_F(ScanSchedulerTest, ZeroBudgetStarvesWithoutScanning) {
  ScanScheduler sched;
  ScanScheduler::Config cfg;
  cfg.budget_bytes = 0;
  sched.plan(*scheme_, cfg);
  flip(0, 1);  // corruption a starved scanner must NOT see
  for (int i = 0; i < 5; ++i) {
    const auto slice = sched.run_slice(qm_);
    EXPECT_TRUE(slice.starved);
    EXPECT_FALSE(slice.flagged);
    EXPECT_EQ(slice.chunks + slice.dirty_groups, 0);
    EXPECT_EQ(slice.bytes, 0);
  }
  EXPECT_EQ(sched.cursor(), 0u);
  EXPECT_EQ(sched.bytes_scanned(), 0);
  EXPECT_EQ(sched.sweeps(), 0u);
  // Retuning the budget un-starves the same plan.
  sched.set_budget(/*budget_us=*/-1, /*budget_bytes=*/-1);
  const auto slice = sched.run_slice(qm_);
  EXPECT_FALSE(slice.starved);
  EXPECT_TRUE(slice.wrapped);
  EXPECT_TRUE(slice.flagged);
}

TEST_F(ScanSchedulerTest, UnlimitedBudgetMatchesScanSessionByteForByte) {
  flip(0, 3);
  flip(2, 17);
  flip(3, 5);
  ScanScheduler sched;
  sched.plan(*scheme_, {});  // defaults: unlimited budget
  const auto slice = sched.run_slice(qm_);
  EXPECT_TRUE(slice.wrapped);
  EXPECT_EQ(static_cast<std::size_t>(slice.chunks), sched.num_chunks());

  DetectionReport serial, pooled;
  ScanSession(*scheme_, 1).scan_into(qm_, serial);
  ScanSession(*scheme_, 4).scan_into(qm_, pooled);
  EXPECT_EQ(sched.last_sweep_report().flagged, serial.flagged);
  EXPECT_EQ(sched.last_sweep_report().flagged, pooled.flagged);
  EXPECT_TRUE(sched.last_sweep_report().attack_detected());
}

TEST_F(ScanSchedulerTest, MidLayerResumeReproducesSerialReport) {
  flip(1, 7);
  flip(3, 41);
  // chunk_bytes far below any layer size forces multi-chunk layers, and
  // budget_bytes == 1 forces one chunk per slice: every boundary is a
  // mid-layer resume through scan_layer_range_into.
  ScanScheduler sched;
  ScanScheduler::Config cfg;
  cfg.chunk_bytes = 128;
  cfg.budget_bytes = 1;
  sched.plan(*scheme_, cfg);
  ASSERT_GT(sched.num_chunks(), qm_.num_layers())
      << "plan must split layers for this test to mean anything";
  std::size_t slices = 0;
  while (!sched.run_slice(qm_).wrapped) ++slices;
  EXPECT_EQ(slices + 1, sched.num_chunks());

  DetectionReport serial;
  ScanSession(*scheme_, 1).scan_into(qm_, serial);
  EXPECT_EQ(sched.last_sweep_report().flagged, serial.flagged);
}

TEST_F(ScanSchedulerTest, DirtyGroupsPreemptTheSweep) {
  const std::size_t last = qm_.num_layers() - 1;
  const GroupLayout& layout = scheme_->layout(last);
  flip(last, 0);
  const std::int64_t bad_group = layout.group_of(0);

  ScanScheduler sched;
  ScanScheduler::Config cfg;
  cfg.budget_bytes = 1;  // one unit per slice
  sched.plan(*scheme_, cfg);
  sched.push_dirty(last, bad_group);
  sched.push_dirty(last, bad_group);  // deduplicated
  EXPECT_EQ(sched.dirty_pending(), 1u);

  // The very first slice must flag the dirty group — the sweep cursor is
  // still at chunk 0, nowhere near the last layer.
  const auto slice = sched.run_slice(qm_);
  EXPECT_EQ(slice.dirty_groups, 1);
  EXPECT_EQ(slice.chunks, 0);
  EXPECT_TRUE(slice.flagged);
  ASSERT_EQ(sched.slice_flags().size(), 1u);
  EXPECT_EQ(sched.slice_flags()[0],
            (std::pair<std::size_t, std::int64_t>{last, bad_group}));
  EXPECT_EQ(sched.cursor(), 0u) << "dirty work must not advance the sweep";

  // Drain the sweep: the dirty rescan must not have polluted the
  // accumulated sweep report (it still equals the serial scan).
  while (!sched.run_slice(qm_).wrapped) {
  }
  DetectionReport serial;
  ScanSession(*scheme_, 1).scan_into(qm_, serial);
  EXPECT_EQ(sched.last_sweep_report().flagged, serial.flagged);
}

TEST_F(ScanSchedulerTest, SliceNeverScansPastAWrap) {
  ScanScheduler sched;
  sched.plan(*scheme_, {});  // unlimited: one slice = exactly one sweep
  for (int sweep = 0; sweep < 3; ++sweep) {
    const auto slice = sched.run_slice(qm_);
    EXPECT_TRUE(slice.wrapped);
    EXPECT_EQ(static_cast<std::size_t>(slice.chunks), sched.num_chunks());
    EXPECT_EQ(sched.cursor(), 0u);
  }
  EXPECT_EQ(sched.sweeps(), 3u);
}

// ---------------------------------------------------------------------
// Campaign integration: kScheduled default reports are byte-identical to
// kFull, for any budget and any worker thread count.
// ---------------------------------------------------------------------
campaign::CampaignSpec sched_spec() {
  campaign::CampaignSpec spec;
  spec.name = "sched_ident";
  spec.model = "tiny";
  spec.train = false;
  spec.trials = 2;
  spec.seed = 0xC0FFEE;
  spec.eval_subset = 0;  // detection-only: fast
  campaign::AttackerSpec atk;
  atk.kind = "random_msb";
  atk.flips = 5;
  spec.attackers = {atk};
  campaign::SchemeSpec radar2;
  radar2.id = "radar2";
  radar2.params.group_size = 32;
  spec.schemes = {radar2};
  return spec;
}

TEST(ScheduledCampaign, DefaultReportIdenticalToFullAcrossThreads) {
  const campaign::CampaignSpec spec = sched_spec();
  const std::string full =
      campaign::CampaignRunner(1, 1, campaign::ScanMode::kFull)
          .run(spec)
          .to_json(false);
  for (const std::int64_t budget : {std::int64_t{512}, std::int64_t{-1}}) {
    campaign::EvalOptions eval;
    eval.scan_budget_bytes = budget;
    eval.scan_chunk_bytes = 512;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const campaign::CampaignReport report =
          campaign::CampaignRunner(threads, 1,
                                   campaign::ScanMode::kScheduled, eval)
              .run(spec);
      EXPECT_EQ(report.to_json(false), full)
          << "budget=" << budget << " threads=" << threads;
      EXPECT_TRUE(report.scheduled.enabled);
      EXPECT_EQ(report.scheduled.detected_trials, report.scheduled.trials);
    }
  }
}

TEST(ScheduledCampaign, ZeroBudgetIsRejected) {
  campaign::EvalOptions eval;
  eval.scan_budget_bytes = 0;
  EXPECT_THROW(
      campaign::CampaignRunner(1, 1, campaign::ScanMode::kScheduled, eval)
          .run(sched_spec()),
      Error);
}

}  // namespace
}  // namespace radar::core
