// Fuzz/robustness battery for the two untrusted-input parsers: the
// package v2 loader and the campaign spec parser. Truncated, bit-corrupted
// and wrong-magic inputs must surface as radar::Error (or load with the
// tampering reported) — never crash, hang, or allocate unboundedly.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign_spec.h"
#include "common/rng.h"
#include "core/package.h"
#include "core/scheme_registry.h"
#include "exp/workspace.h"

namespace radar {
namespace {

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

class PackageFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bundle_ = new exp::ModelBundle(
        exp::make_bundle("tiny", /*train=*/false, /*eval_clean=*/false));
    core::SchemeParams params;
    params.group_size = 64;
    auto scheme = core::SchemeRegistry::instance().create("radar2", params);
    scheme->attach(*bundle_->qmodel);
    core::save_package(kGoodPath, *bundle_->qmodel, *scheme, "tiny");
    golden_bytes_ = read_file(kGoodPath);
    ASSERT_GT(golden_bytes_.size(), 64u);
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
    std::remove(kGoodPath);
    std::remove(kFuzzPath);
  }

  /// Attempt a verified load of `bytes`; returns true when the loader
  /// either threw radar::Error or reported the corruption. Any other
  /// exception (bad_alloc, length_error, ...) fails the test.
  bool load_survives(const std::vector<unsigned char>& bytes,
                     bool expect_throw_only = false) {
    write_file(kFuzzPath, bytes);
    std::unique_ptr<core::IntegrityScheme> scheme;
    try {
      const auto report =
          core::load_package(kFuzzPath, *bundle_->qmodel, scheme);
      return !expect_throw_only;  // loaded: caller decides if that is ok
    } catch (const Error&) {
      return true;
    }
    // Anything else (std::bad_alloc, std::length_error, ...) escapes the
    // try above and fails the test loudly.
  }

  static constexpr const char* kGoodPath = "fuzz_package_good.bin";
  static constexpr const char* kFuzzPath = "fuzz_package_mut.bin";
  static exp::ModelBundle* bundle_;
  static std::vector<unsigned char> golden_bytes_;
};

exp::ModelBundle* PackageFuzzTest::bundle_ = nullptr;
std::vector<unsigned char> PackageFuzzTest::golden_bytes_;

TEST_F(PackageFuzzTest, IntactPackageVerifies) {
  std::unique_ptr<core::IntegrityScheme> scheme;
  const auto report =
      core::load_package(kGoodPath, *bundle_->qmodel, scheme);
  EXPECT_TRUE(report.verified());
}

TEST_F(PackageFuzzTest, EveryTruncationThrows) {
  // Dense coverage of the header region plus strides through the body.
  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < 64; ++n) cuts.push_back(n);
  for (std::size_t n = 64; n < golden_bytes_.size(); n += 97)
    cuts.push_back(n);
  for (const std::size_t n : cuts) {
    const std::vector<unsigned char> trunc(golden_bytes_.begin(),
                                           golden_bytes_.begin() +
                                               static_cast<std::ptrdiff_t>(n));
    EXPECT_TRUE(load_survives(trunc, /*expect_throw_only=*/true))
        << "truncation at " << n << " bytes did not throw";
  }
}

TEST_F(PackageFuzzTest, WrongMagicAndVersionThrow) {
  auto bytes = golden_bytes_;
  bytes[0] ^= 0xFF;
  EXPECT_TRUE(load_survives(bytes, /*expect_throw_only=*/true));
  bytes = golden_bytes_;
  bytes[4] ^= 0x01;  // format version field
  EXPECT_TRUE(load_survives(bytes, /*expect_throw_only=*/true));
}

TEST_F(PackageFuzzTest, RandomBitCorruptionsNeverCrash) {
  Rng rng(0xF422);
  for (int iter = 0; iter < 300; ++iter) {
    auto bytes = golden_bytes_;
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 7));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<unsigned char>(1u << rng.uniform_int(0, 7));
    }
    EXPECT_TRUE(load_survives(bytes)) << "iteration " << iter;
  }
}

TEST_F(PackageFuzzTest, CorruptLengthFieldsAreBounded) {
  // Saturate every plausible 8-byte window with a huge length; the loader
  // must reject it via the remaining-bytes bound, not attempt a 2^60-byte
  // allocation or a 2^60-slot scan.
  for (std::size_t pos = 8; pos + 8 <= golden_bytes_.size() && pos < 4096;
       pos += 13) {
    auto bytes = golden_bytes_;
    for (int i = 0; i < 8; ++i)
      bytes[pos + static_cast<std::size_t>(i)] = 0x7F;
    EXPECT_TRUE(load_survives(bytes)) << "length bomb at offset " << pos;
  }
}

TEST_F(PackageFuzzTest, WeightPayloadTamperingIsLocalized) {
  // Flip one weight byte (deep in the payload, past the header): the load
  // must succeed and report the tampering instead of throwing.
  auto bytes = golden_bytes_;
  bytes[bytes.size() / 2] ^= 0x80;
  write_file(kFuzzPath, bytes);
  std::unique_ptr<core::IntegrityScheme> scheme;
  try {
    const auto report =
        core::load_package(kFuzzPath, *bundle_->qmodel, scheme);
    EXPECT_FALSE(report.verified());
  } catch (const Error&) {
    // Also acceptable: the byte landed in a structural field.
  }
}

// ---- campaign spec parser ----

const char* kGoodSpec = R"({
  "name": "fuzz", "model": "tiny", "train": false,
  "trials": 2, "seed": 9, "eval_subset": 0,
  "fault_rates": [0, 1e-4],
  "attackers": [{"kind": "random_msb", "flips": 6},
                {"kind": "pbfa", "flips": 3, "allowed_bits": [7]}],
  "schemes": [{"id": "radar2", "group_size": 32, "interleave": true},
              {"id": "crc13", "group_size": 64}]
})";

TEST(SpecFuzzTest, GoodSpecParses) {
  const auto spec = campaign::CampaignSpec::from_json_text(kGoodSpec);
  EXPECT_EQ(spec.attackers.size(), 2u);
  EXPECT_EQ(spec.schemes.size(), 2u);
}

TEST(SpecFuzzTest, EveryTruncationThrows) {
  const std::string good = kGoodSpec;
  for (std::size_t n = 0; n < good.size(); ++n) {
    const std::string trunc = good.substr(0, n);
    EXPECT_THROW(campaign::CampaignSpec::from_json_text(trunc), Error)
        << "truncation at " << n;
  }
}

TEST(SpecFuzzTest, RandomByteCorruptionsNeverCrash) {
  const std::string good = kGoodSpec;
  Rng rng(0x5BEC);
  int parsed_ok = 0;
  for (int iter = 0; iter < 500; ++iter) {
    std::string mut = good;
    const int edits = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(mut.size()) - 1));
      mut[pos] = static_cast<char>(rng.uniform_int(32, 126));
    }
    try {
      (void)campaign::CampaignSpec::from_json_text(mut);
      ++parsed_ok;  // corruption produced a different-but-valid spec
    } catch (const Error&) {
      // expected for most mutations
    }
  }
  // Sanity: the harness is actually exercising both outcomes.
  EXPECT_LT(parsed_ok, 500);
}

TEST(SpecFuzzTest, DeepNestingIsDepthLimited) {
  EXPECT_THROW(campaign::CampaignSpec::from_json_text(
                   std::string(100000, '[')),
               Error);
  std::string deep;
  for (int i = 0; i < 5000; ++i) deep += "{\"a\":";
  EXPECT_THROW(campaign::CampaignSpec::from_json_text(deep), Error);
}

TEST(SpecFuzzTest, HostileNumbersAreRejected) {
  EXPECT_THROW(campaign::CampaignSpec::from_json_text(
                   R"({"trials": 1e999, "attackers": [{"kind": "random"}],
                       "schemes": [{"id": "radar2"}]})"),
               Error);
  EXPECT_THROW(campaign::CampaignSpec::from_json_text(
                   R"({"trials": 2.5, "attackers": [{"kind": "random"}],
                       "schemes": [{"id": "radar2"}]})"),
               Error);
  EXPECT_THROW(campaign::CampaignSpec::from_json_text(
                   R"({"seed": -1, "attackers": [{"kind": "random"}],
                       "schemes": [{"id": "radar2"}]})"),
               Error);
  EXPECT_THROW(campaign::CampaignSpec::from_json_text(
                   R"({"attackers": [{"kind": "random", "flips": 1e12}],
                       "schemes": [{"id": "radar2"}]})"),
               Error);
}

}  // namespace
}  // namespace radar
