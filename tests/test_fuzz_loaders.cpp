// Fuzz/robustness battery for the two untrusted-input parsers: the
// package loader (v3 arena format and the legacy v2 path) and the
// campaign spec parser. Truncated, bit-corrupted and wrong-magic inputs
// must surface as radar::Error (or load with the tampering reported) —
// never crash, hang, or allocate unboundedly. v3 adds structured attacks
// on the arena layer table: unaligned / overlapping / out-of-bounds
// offsets, oversized arena claims, and truncated blobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign_spec.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "core/package.h"
#include "core/scheme_registry.h"
#include "exp/workspace.h"

namespace radar {
namespace {

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

class PackageFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bundle_ = new exp::ModelBundle(
        exp::make_bundle("tiny", /*train=*/false, /*eval_clean=*/false));
    core::SchemeParams params;
    params.group_size = 64;
    auto scheme = core::SchemeRegistry::instance().create("radar2", params);
    scheme->attach(*bundle_->qmodel);
    core::save_package(kGoodPath, *bundle_->qmodel, *scheme, "tiny");
    golden_bytes_ = read_file(kGoodPath);
    ASSERT_GT(golden_bytes_.size(), 64u);
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
    std::remove(kGoodPath);
    std::remove(kFuzzPath);
  }

  /// Attempt a verified load of `bytes`; returns true when the loader
  /// either threw radar::Error or reported the corruption. Any other
  /// exception (bad_alloc, length_error, ...) fails the test.
  bool load_survives(const std::vector<unsigned char>& bytes,
                     bool expect_throw_only = false) {
    write_file(kFuzzPath, bytes);
    std::unique_ptr<core::IntegrityScheme> scheme;
    try {
      const auto report =
          core::load_package(kFuzzPath, *bundle_->qmodel, scheme);
      return !expect_throw_only;  // loaded: caller decides if that is ok
    } catch (const Error&) {
      return true;
    }
    // Anything else (std::bad_alloc, std::length_error, ...) escapes the
    // try above and fails the test loudly.
  }

  static constexpr const char* kGoodPath = "fuzz_package_good.bin";
  static constexpr const char* kFuzzPath = "fuzz_package_mut.bin";
  static exp::ModelBundle* bundle_;
  static std::vector<unsigned char> golden_bytes_;
};

exp::ModelBundle* PackageFuzzTest::bundle_ = nullptr;
std::vector<unsigned char> PackageFuzzTest::golden_bytes_;

TEST_F(PackageFuzzTest, IntactPackageVerifies) {
  std::unique_ptr<core::IntegrityScheme> scheme;
  const auto report =
      core::load_package(kGoodPath, *bundle_->qmodel, scheme);
  EXPECT_TRUE(report.verified());
}

TEST_F(PackageFuzzTest, EveryTruncationThrows) {
  // Dense coverage of the header region plus strides through the body.
  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < 64; ++n) cuts.push_back(n);
  for (std::size_t n = 64; n < golden_bytes_.size(); n += 97)
    cuts.push_back(n);
  for (const std::size_t n : cuts) {
    const std::vector<unsigned char> trunc(golden_bytes_.begin(),
                                           golden_bytes_.begin() +
                                               static_cast<std::ptrdiff_t>(n));
    EXPECT_TRUE(load_survives(trunc, /*expect_throw_only=*/true))
        << "truncation at " << n << " bytes did not throw";
  }
}

TEST_F(PackageFuzzTest, WrongMagicAndVersionThrow) {
  auto bytes = golden_bytes_;
  bytes[0] ^= 0xFF;
  EXPECT_TRUE(load_survives(bytes, /*expect_throw_only=*/true));
  bytes = golden_bytes_;
  bytes[4] ^= 0x01;  // format version field
  EXPECT_TRUE(load_survives(bytes, /*expect_throw_only=*/true));
}

TEST_F(PackageFuzzTest, RandomBitCorruptionsNeverCrash) {
  Rng rng(0xF422);
  for (int iter = 0; iter < 300; ++iter) {
    auto bytes = golden_bytes_;
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 7));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<unsigned char>(1u << rng.uniform_int(0, 7));
    }
    EXPECT_TRUE(load_survives(bytes)) << "iteration " << iter;
  }
}

TEST_F(PackageFuzzTest, CorruptLengthFieldsAreBounded) {
  // Saturate every plausible 8-byte window with a huge length; the loader
  // must reject it via the remaining-bytes bound, not attempt a 2^60-byte
  // allocation or a 2^60-slot scan.
  for (std::size_t pos = 8; pos + 8 <= golden_bytes_.size() && pos < 4096;
       pos += 13) {
    auto bytes = golden_bytes_;
    for (int i = 0; i < 8; ++i)
      bytes[pos + static_cast<std::size_t>(i)] = 0x7F;
    EXPECT_TRUE(load_survives(bytes)) << "length bomb at offset " << pos;
  }
}

TEST_F(PackageFuzzTest, WeightPayloadTamperingIsLocalized) {
  // Flip one weight byte (deep in the payload, past the header): the load
  // must succeed and report the tampering instead of throwing.
  auto bytes = golden_bytes_;
  bytes[bytes.size() / 2] ^= 0x80;
  write_file(kFuzzPath, bytes);
  std::unique_ptr<core::IntegrityScheme> scheme;
  try {
    const auto report =
        core::load_package(kFuzzPath, *bundle_->qmodel, scheme);
    EXPECT_FALSE(report.verified());
  } catch (const Error&) {
    // Also acceptable: the byte landed in a structural field.
  }
}

// ---- crafted v3 arena-table attacks ----

/// Parameters of a hand-built v3-shaped package file. Defaults describe a
/// well-formed two-layer package; each test corrupts one aspect.
struct CraftedV3 {
  std::int64_t arena_size = 192;
  std::vector<std::int64_t> sizes = {100, 60};
  std::vector<std::int64_t> offsets = {0, 128};
  std::uint32_t pad_excess = 0;   ///< add to the correct pad field value
  std::int64_t blob_shortfall = 0;  ///< bytes withheld from the blob
};

void write_crafted_v3(const std::string& path, const CraftedV3& cfg) {
  BinaryWriter w(path, core::kPackageFormatV3);
  w.write_string("crafted");
  w.write_string("radar2");  // scheme id
  w.write_i64(64);           // group_size
  w.write_u8(1);             // interleave
  w.write_i64(3);            // skew
  w.write_u8(1);             // expansion = prf
  w.write_u64(0);            // master key
  w.write_u32(0);            // payload crc (never reached on bad tables)
  w.write_u64(cfg.sizes.size());
  w.write_i64(cfg.arena_size);
  for (std::size_t li = 0; li < cfg.sizes.size(); ++li) {
    w.write_string("layer" + std::to_string(li));
    w.write_f32(1.0f);
    w.write_i64(cfg.sizes[li]);
    w.write_i64(cfg.offsets[li]);
  }
  for (std::size_t li = 0; li < cfg.sizes.size(); ++li)
    w.write_u8_vector({});  // golden codes (geometry dies first)
  const std::uint64_t pos = w.tell() + sizeof(std::uint32_t);
  const auto pad = static_cast<std::uint32_t>(
      (quant::kArenaAlignment - pos % quant::kArenaAlignment) %
      quant::kArenaAlignment);
  w.write_u32(pad + cfg.pad_excess);
  const std::vector<char> zeros(
      static_cast<std::size_t>(quant::kArenaAlignment), 0);
  w.write_bytes(zeros.data(), pad);
  // Cap the physical blob at 1 MiB: length-bomb tests claim astronomical
  // arena sizes precisely so the loader must reject them from the
  // remaining-bytes bound, not because we actually materialized them.
  const std::int64_t blob_bytes = std::min<std::int64_t>(
      std::int64_t{1} << 20,
      std::max<std::int64_t>(0, cfg.arena_size - cfg.blob_shortfall));
  for (std::int64_t i = 0; i < blob_bytes;
       i += static_cast<std::int64_t>(zeros.size()))
    w.write_bytes(zeros.data(),
                  static_cast<std::size_t>(std::min<std::int64_t>(
                      static_cast<std::int64_t>(zeros.size()),
                      blob_bytes - i)));
  w.close();
}

class V3TableFuzzTest : public PackageFuzzTest {
 protected:
  void expect_rejected(const CraftedV3& cfg, const char* what) {
    write_crafted_v3(kFuzzPath, cfg);
    std::unique_ptr<core::IntegrityScheme> scheme;
    EXPECT_THROW(core::load_package(kFuzzPath, *bundle_->qmodel, scheme),
                 Error)
        << what;
    EXPECT_THROW(core::read_package_info(kFuzzPath), Error) << what;
  }
};

TEST_F(V3TableFuzzTest, WellFormedCraftedTableParses) {
  // Sanity: the crafted writer itself is structurally valid — info parses
  // (the model-level load then rejects the layer-count mismatch).
  write_crafted_v3(kFuzzPath, CraftedV3{});
  const core::PackageInfo info = core::read_package_info(kFuzzPath);
  EXPECT_EQ(info.format_version, core::kPackageFormatV3);
  EXPECT_EQ(info.total_weights, 160);
}

TEST_F(V3TableFuzzTest, UnalignedOffsetRejected) {
  CraftedV3 cfg;
  cfg.offsets = {0, 100};  // not a multiple of 64
  expect_rejected(cfg, "unaligned layer offset");
}

TEST_F(V3TableFuzzTest, OverlappingLayersRejected) {
  CraftedV3 cfg;
  cfg.sizes = {100, 60};
  cfg.offsets = {0, 64};  // aligned, but 64 < 0 + 100
  expect_rejected(cfg, "overlapping layer table entries");
}

TEST_F(V3TableFuzzTest, OutOfBoundsLayerRejected) {
  CraftedV3 cfg;
  cfg.offsets = {0, 128};
  cfg.sizes = {100, 65};  // 128 + 65 > 192
  expect_rejected(cfg, "layer past the arena end");
}

TEST_F(V3TableFuzzTest, NegativeAndDescendingOffsetsRejected) {
  CraftedV3 cfg;
  cfg.offsets = {128, 0};  // descending
  cfg.sizes = {60, 60};
  expect_rejected(cfg, "descending offsets");
  cfg.offsets = {-64, 0};
  expect_rejected(cfg, "negative offset");
}

TEST_F(V3TableFuzzTest, OversizedArenaClaimRejected) {
  CraftedV3 cfg;
  cfg.arena_size = std::int64_t{1} << 60;  // length bomb
  expect_rejected(cfg, "arena size beyond the file");
}

TEST_F(V3TableFuzzTest, TruncatedArenaBlobRejected) {
  CraftedV3 cfg;
  cfg.blob_shortfall = 64;
  expect_rejected(cfg, "truncated arena blob");
}

TEST_F(V3TableFuzzTest, CorruptPaddingRejected) {
  CraftedV3 cfg;
  cfg.pad_excess = 64;  // pad field >= alignment
  expect_rejected(cfg, "corrupt padding field");
}

// ---- legacy v2 files keep their fuzz coverage ----

TEST_F(PackageFuzzTest, V2TruncationsAllThrow) {
  core::SchemeParams params;
  params.group_size = 64;
  auto scheme = core::SchemeRegistry::instance().create("radar2", params);
  scheme->attach(*bundle_->qmodel);
  core::save_package(kFuzzPath, *bundle_->qmodel, *scheme, "tiny",
                     core::kPackageFormatV2);
  const auto v2_bytes = read_file(kFuzzPath);
  ASSERT_GT(v2_bytes.size(), 64u);
  {
    std::unique_ptr<core::IntegrityScheme> loaded;
    EXPECT_TRUE(
        core::load_package(kFuzzPath, *bundle_->qmodel, loaded).verified());
  }
  for (std::size_t n = 0; n < v2_bytes.size(); n += 89) {
    const std::vector<unsigned char> trunc(
        v2_bytes.begin(), v2_bytes.begin() + static_cast<std::ptrdiff_t>(n));
    EXPECT_TRUE(load_survives(trunc, /*expect_throw_only=*/true))
        << "v2 truncation at " << n << " bytes did not throw";
  }
}

// ---- campaign spec parser ----

const char* kGoodSpec = R"({
  "name": "fuzz", "model": "tiny", "train": false,
  "trials": 2, "seed": 9, "eval_subset": 0,
  "fault_rates": [0, 1e-4],
  "attackers": [{"kind": "random_msb", "flips": 6},
                {"kind": "pbfa", "flips": 3, "allowed_bits": [7]}],
  "schemes": [{"id": "radar2", "group_size": 32, "interleave": true},
              {"id": "crc13", "group_size": 64}]
})";

TEST(SpecFuzzTest, GoodSpecParses) {
  const auto spec = campaign::CampaignSpec::from_json_text(kGoodSpec);
  EXPECT_EQ(spec.attackers.size(), 2u);
  EXPECT_EQ(spec.schemes.size(), 2u);
}

TEST(SpecFuzzTest, EveryTruncationThrows) {
  const std::string good = kGoodSpec;
  for (std::size_t n = 0; n < good.size(); ++n) {
    const std::string trunc = good.substr(0, n);
    EXPECT_THROW(campaign::CampaignSpec::from_json_text(trunc), Error)
        << "truncation at " << n;
  }
}

TEST(SpecFuzzTest, RandomByteCorruptionsNeverCrash) {
  const std::string good = kGoodSpec;
  Rng rng(0x5BEC);
  int parsed_ok = 0;
  for (int iter = 0; iter < 500; ++iter) {
    std::string mut = good;
    const int edits = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(mut.size()) - 1));
      mut[pos] = static_cast<char>(rng.uniform_int(32, 126));
    }
    try {
      (void)campaign::CampaignSpec::from_json_text(mut);
      ++parsed_ok;  // corruption produced a different-but-valid spec
    } catch (const Error&) {
      // expected for most mutations
    }
  }
  // Sanity: the harness is actually exercising both outcomes.
  EXPECT_LT(parsed_ok, 500);
}

TEST(SpecFuzzTest, DeepNestingIsDepthLimited) {
  EXPECT_THROW(campaign::CampaignSpec::from_json_text(
                   std::string(100000, '[')),
               Error);
  std::string deep;
  for (int i = 0; i < 5000; ++i) deep += "{\"a\":";
  EXPECT_THROW(campaign::CampaignSpec::from_json_text(deep), Error);
}

TEST(SpecFuzzTest, HostileNumbersAreRejected) {
  EXPECT_THROW(campaign::CampaignSpec::from_json_text(
                   R"({"trials": 1e999, "attackers": [{"kind": "random"}],
                       "schemes": [{"id": "radar2"}]})"),
               Error);
  EXPECT_THROW(campaign::CampaignSpec::from_json_text(
                   R"({"trials": 2.5, "attackers": [{"kind": "random"}],
                       "schemes": [{"id": "radar2"}]})"),
               Error);
  EXPECT_THROW(campaign::CampaignSpec::from_json_text(
                   R"({"seed": -1, "attackers": [{"kind": "random"}],
                       "schemes": [{"id": "radar2"}]})"),
               Error);
  EXPECT_THROW(campaign::CampaignSpec::from_json_text(
                   R"({"attackers": [{"kind": "random", "flips": 1e12}],
                       "schemes": [{"id": "radar2"}]})"),
               Error);
}

}  // namespace
}  // namespace radar
