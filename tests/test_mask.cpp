// MaskStream: determinism, expansion modes, balance, key derivation.
#include <gtest/gtest.h>

#include <set>

#include "core/mask.h"

namespace radar::core {
namespace {

TEST(MaskStream, RepeatModeIsKeyPeriodic) {
  const std::uint16_t key = 0xB00B;
  MaskStream m(key, MaskStream::Expansion::kRepeat);
  for (std::int64_t p = 0; p < 256; ++p) {
    EXPECT_EQ(m.bit(p), static_cast<bool>((key >> (p % 16)) & 1));
    EXPECT_EQ(m.bit(p), m.bit(p + 16));
  }
}

TEST(MaskStream, PrfModeDeterministic) {
  MaskStream a(0x1234), b(0x1234);
  for (std::int64_t p = 0; p < 1000; ++p) EXPECT_EQ(a.bit(p), b.bit(p));
}

TEST(MaskStream, PrfModeNotShortPeriodic) {
  MaskStream m(0x1234);
  bool any_diff = false;
  for (std::int64_t p = 0; p < 64 && !any_diff; ++p)
    if (m.bit(p) != m.bit(p + 16)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(MaskStream, DifferentKeysDifferentStreams) {
  MaskStream a(1), b(2);
  int diff = 0;
  for (std::int64_t p = 0; p < 256; ++p)
    if (a.bit(p) != b.bit(p)) ++diff;
  EXPECT_GT(diff, 64);
}

TEST(MaskStream, PrfBitsRoughlyBalanced) {
  MaskStream m(0xBEEF);
  int ones = 0;
  const int n = 10000;
  for (std::int64_t p = 0; p < n; ++p)
    if (m.bit(p)) ++ones;
  EXPECT_GT(ones, n / 2 - 300);
  EXPECT_LT(ones, n / 2 + 300);
}

TEST(MaskStream, LayerKeysDistinct) {
  std::set<std::uint16_t> keys;
  for (std::size_t layer = 0; layer < 64; ++layer)
    keys.insert(MaskStream::derive_layer_key(0xC0FFEE, layer));
  // 64 draws from 2^16: collisions are possible but should be rare.
  EXPECT_GE(keys.size(), 62u);
}

TEST(MaskStream, LayerKeysDependOnMasterSeed) {
  EXPECT_NE(MaskStream::derive_layer_key(1, 0),
            MaskStream::derive_layer_key(2, 0));
}

TEST(MaskStream, KeyAccessors) {
  MaskStream m(0xABCD, MaskStream::Expansion::kRepeat);
  EXPECT_EQ(m.key(), 0xABCD);
  EXPECT_EQ(m.expansion(), MaskStream::Expansion::kRepeat);
}

}  // namespace
}  // namespace radar::core
