// Integer inference kernels and batch-norm folding.
#include <gtest/gtest.h>

#include <cmath>

#include "data/trainer.h"
#include "nn/fold.h"
#include "qnn/kernels.h"
#include "qnn/qtensor.h"
#include "quant/qmodel.h"

namespace radar::qnn {
namespace {

TEST(QTensor, QuantizeDequantizeBounded) {
  Rng rng(1);
  nn::Tensor x = nn::Tensor::randn({64}, rng, 2.0f);
  const float scale = choose_activation_scale(x);
  QTensor q = quantize_activation(x, scale);
  nn::Tensor back = dequantize(q);
  EXPECT_LE(nn::max_abs_diff(x, back), scale * 0.5f + 1e-6f);
}

TEST(QTensor, ClampsToSymmetricRange) {
  nn::Tensor x = nn::Tensor::from_vector({3}, {100.0f, -100.0f, 0.0f});
  QTensor q = quantize_activation(x, 0.1f);  // would need ±1000
  EXPECT_EQ(q.data[0], 127);
  EXPECT_EQ(q.data[1], -127);
  EXPECT_EQ(q.data[2], 0);
}

TEST(QTensor, ScaleMustBePositive) {
  nn::Tensor x({4});
  EXPECT_THROW(quantize_activation(x, 0.0f), InvalidArgument);
}

TEST(QTensor, ZeroTensorScaleFallsBackToOne) {
  nn::Tensor x({8});
  EXPECT_FLOAT_EQ(choose_activation_scale(x), 1.0f);
}

/// Integer conv must agree with the float conv applied to the
/// dequantized operands (exactly: both compute the same polynomial).
TEST(Kernels, ConvMatchesFloatReferenceExactly) {
  Rng rng(2);
  ConvGeom geom;
  geom.in_channels = 3;
  geom.out_channels = 4;
  geom.kernel = 3;
  geom.stride = 1;
  geom.padding = 1;

  // Integer operands.
  std::vector<std::int8_t> w(static_cast<std::size_t>(4 * 3 * 9));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  const float w_scale = 0.01f;
  QTensor x;
  x.shape = {2, 3, 6, 6};
  x.scale = 0.05f;
  x.data.resize(static_cast<std::size_t>(x.numel()));
  for (auto& v : x.data)
    v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));

  nn::Tensor y_int = conv2d_i8(x, w, w_scale, geom, {});

  // Float reference via the training-path conv.
  nn::Conv2d conv(3, 4, 3, 1, 1, /*bias=*/false, rng);
  for (std::size_t i = 0; i < w.size(); ++i)
    conv.weight().value[static_cast<std::int64_t>(i)] =
        static_cast<float>(w[i]) * w_scale;
  nn::Tensor y_float = conv.forward(dequantize(x), nn::Mode::kEval);

  EXPECT_LT(nn::max_abs_diff(y_int, y_float), 1e-4f);
}

TEST(Kernels, ConvBiasAndStride) {
  Rng rng(3);
  ConvGeom geom;
  geom.in_channels = 2;
  geom.out_channels = 2;
  geom.kernel = 3;
  geom.stride = 2;
  geom.padding = 1;
  std::vector<std::int8_t> w(static_cast<std::size_t>(2 * 2 * 9), 1);
  std::vector<float> bias = {0.5f, -0.5f};
  QTensor x;
  x.shape = {1, 2, 5, 5};
  x.scale = 1.0f;
  x.data.assign(static_cast<std::size_t>(x.numel()), 0);
  nn::Tensor y = conv2d_i8(x, w, 1.0f, geom, bias);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{1, 2, 3, 3}));
  EXPECT_FLOAT_EQ(y[y.idx4(0, 0, 0, 0)], 0.5f);   // all-zero input: bias
  EXPECT_FLOAT_EQ(y[y.idx4(0, 1, 2, 2)], -0.5f);
}

TEST(Kernels, LinearMatchesFloatReference) {
  Rng rng(4);
  const std::int64_t f = 16, out = 5;
  std::vector<std::int8_t> w(static_cast<std::size_t>(out * f));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  QTensor x;
  x.shape = {3, f};
  x.scale = 0.02f;
  x.data.resize(static_cast<std::size_t>(x.numel()));
  for (auto& v : x.data)
    v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));

  nn::Tensor y = linear_i8(x, w, 0.03f, out, {});

  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t o = 0; o < out; ++o) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < f; ++k)
        acc += static_cast<double>(x.data[static_cast<std::size_t>(i * f + k)]) *
               w[static_cast<std::size_t>(o * f + k)];
      EXPECT_NEAR(y[y.idx2(i, o)], acc * 0.02 * 0.03, 1e-4);
    }
  }
}

TEST(Kernels, GeometryValidation) {
  QTensor x;
  x.shape = {1, 2, 4, 4};
  x.data.assign(32, 0);
  ConvGeom geom;
  geom.in_channels = 3;  // mismatch
  geom.out_channels = 1;
  std::vector<std::int8_t> w(27, 0);
  EXPECT_THROW(conv2d_i8(x, w, 1.0f, geom, {}), InvalidArgument);
}

TEST(Fold, ConvBnFoldPreservesEvalOutput) {
  Rng rng(5);
  nn::Conv2d conv(3, 8, 3, 1, 1, /*bias=*/false, rng);
  nn::BatchNorm2d bn(8);
  // Give BN non-trivial statistics and affine parameters.
  nn::Tensor warm = nn::Tensor::randn({8, 8, 6, 6}, rng, 2.0f);
  bn.forward(warm, nn::Mode::kTrain);
  for (std::int64_t c = 0; c < 8; ++c) {
    bn.gamma().value[c] = 0.5f + 0.1f * static_cast<float>(c);
    bn.beta().value[c] = -0.2f * static_cast<float>(c);
  }

  nn::Tensor x = nn::Tensor::randn({2, 3, 6, 6}, rng);
  nn::Tensor before =
      bn.forward(conv.forward(x, nn::Mode::kEval), nn::Mode::kEval);
  nn::fold_conv_bn(conv, bn);
  nn::Tensor after =
      bn.forward(conv.forward(x, nn::Mode::kEval), nn::Mode::kEval);
  EXPECT_LT(nn::max_abs_diff(before, after), 2e-4f);
  EXPECT_TRUE(conv.has_bias());
}

TEST(Fold, WholeResnetFoldPreservesEvalOutput) {
  Rng rng(6);
  nn::ResNetSpec spec;
  spec.num_classes = 4;
  spec.base_width = 8;
  spec.blocks_per_stage = {1, 1};
  nn::ResNet model(spec, rng);
  // Push non-trivial running statistics through every BN.
  nn::Tensor warm = nn::Tensor::randn({8, 3, 16, 16}, rng);
  model.forward(warm, nn::Mode::kTrain);

  nn::Tensor x = nn::Tensor::randn({2, 3, 16, 16}, rng);
  nn::Tensor before = model.forward(x, nn::Mode::kEval);
  nn::fold_batchnorm(model);
  nn::Tensor after = model.forward(x, nn::Mode::kEval);
  EXPECT_LT(nn::max_abs_diff(before, after),
            5e-4f * std::max(1.0f, before.abs_max()));
}

TEST(Fold, FoldedModelQuantizesAndRemainsAccurate) {
  // The deployment pipeline: train -> fold BN -> quantize -> (protect).
  Rng rng(7);
  nn::ResNetSpec spec;
  spec.num_classes = 4;
  spec.base_width = 8;
  spec.blocks_per_stage = {1};
  nn::ResNet model(spec, rng);
  data::SyntheticSpec ds = data::synthetic_cifar_spec();
  ds.image_size = 16;
  ds.num_classes = 4;
  data::SyntheticDataset dataset(ds, 256, 128);
  data::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 32;
  tc.batches_per_epoch = 12;
  tc.lr = 0.005f;
  tc.verbose = false;
  data::train(model, dataset, tc);
  const double float_acc = data::evaluate(model, dataset);

  nn::fold_batchnorm(model);
  quant::QuantizedModel qm(model);
  const double q_acc = data::evaluate(
      [&qm](const nn::Tensor& x) { return qm.forward(x); }, dataset);
  EXPECT_GT(q_acc, float_acc - 0.1);
}

}  // namespace
}  // namespace radar::qnn
