// Numerical gradient checks: every layer's backward() against central
// finite differences of its forward(). The loss is a fixed random linear
// functional of the output so dL/dy is known exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/resnet.h"

namespace radar::nn {
namespace {

/// L(y) = sum_i c_i * y_i with fixed random coefficients c.
struct LinearLoss {
  Tensor coeffs;
  explicit LinearLoss(const Tensor& y, Rng& rng)
      : coeffs(Tensor::randn(y.shape(), rng)) {}
  float operator()(const Tensor& y) const {
    double s = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i)
      s += static_cast<double>(coeffs[i]) * y[i];
    return static_cast<float>(s);
  }
  Tensor grad() const { return coeffs; }
};

/// Central-difference gradient of f at x[i].
float numeric_grad(const std::function<float(void)>& f, float& slot,
                   float eps = 1e-3f) {
  const float saved = slot;
  slot = saved + eps;
  const float up = f();
  slot = saved - eps;
  const float down = f();
  slot = saved;
  return (up - down) / (2.0f * eps);
}

/// Check dL/dx and dL/dparam of `layer` on input x. Uses Mode `mode` for
/// the analytic pass and kEval-safe re-forwarding for numeric probes.
void check_layer(Layer& layer, Tensor x, Mode mode, float tol = 2e-2f,
                 float eps = 1e-3f) {
  Rng rng(77);
  Tensor y0 = layer.forward(x, mode);
  LinearLoss loss(y0, rng);

  // Analytic gradients.
  std::vector<NamedParam> params;
  layer.collect_params("p", params);
  for (auto& np : params) np.param->zero_grad();
  Tensor gx = layer.backward(loss.grad());

  // Numeric input gradient. Re-forward with the same mode so batch-norm
  // statistics are recomputed consistently.
  auto eval = [&]() { return loss(layer.forward(x, mode)); };
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float num = numeric_grad(eval, x[i], eps);
    ASSERT_NEAR(gx[i], num, tol) << "input grad mismatch at " << i;
  }

  // Numeric parameter gradients.
  for (auto& np : params) {
    Tensor& v = np.param->value;
    for (std::int64_t i = 0; i < v.numel(); ++i) {
      const float num = numeric_grad(eval, v[i], eps);
      ASSERT_NEAR(np.param->grad[i], num, tol)
          << "param " << np.name << " grad mismatch at " << i;
    }
  }
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  Linear fc(5, 3, /*bias=*/true, rng);
  check_layer(fc, Tensor::randn({4, 5}, rng), Mode::kTrain);
}

TEST(GradCheck, ConvStride1) {
  Rng rng(2);
  Conv2d conv(2, 3, 3, 1, 1, /*bias=*/true, rng);
  check_layer(conv, Tensor::randn({2, 2, 4, 4}, rng), Mode::kTrain);
}

TEST(GradCheck, ConvStride2NoBias) {
  Rng rng(3);
  Conv2d conv(2, 2, 3, 2, 1, /*bias=*/false, rng);
  check_layer(conv, Tensor::randn({2, 2, 5, 5}, rng), Mode::kTrain);
}

TEST(GradCheck, Conv1x1Projection) {
  Rng rng(4);
  Conv2d conv(3, 4, 1, 2, 0, /*bias=*/false, rng);
  check_layer(conv, Tensor::randn({1, 3, 4, 4}, rng), Mode::kTrain);
}

TEST(GradCheck, ReLU) {
  Rng rng(5);
  ReLU relu;
  // Keep probe points away from the kink at 0.
  Tensor x = Tensor::randn({3, 7}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.3f;
  check_layer(relu, x, Mode::kTrain);
}

TEST(GradCheck, BatchNormTrainMode) {
  Rng rng(6);
  BatchNorm2d bn(2);
  check_layer(bn, Tensor::randn({3, 2, 2, 2}, rng), Mode::kTrain, 3e-2f);
}

TEST(GradCheck, BatchNormGradModeAffine) {
  Rng rng(7);
  BatchNorm2d bn(2);
  // Populate running stats first, then check the eval-statistics path.
  Tensor warm = Tensor::randn({8, 2, 3, 3}, rng);
  bn.forward(warm, Mode::kTrain);
  check_layer(bn, Tensor::randn({2, 2, 2, 2}, rng), Mode::kGrad);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(8);
  GlobalAvgPool pool;
  check_layer(pool, Tensor::randn({2, 3, 3, 3}, rng), Mode::kTrain);
}

TEST(GradCheck, MaxPool) {
  Rng rng(9);
  MaxPool2d pool(2, 2, 0);
  // Perturbations must not change the argmax: spread values far apart.
  Tensor x({1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i)
    x[i] = static_cast<float>(i * 3) +
           static_cast<float>(rng.uniform(0.0, 0.5));
  check_layer(pool, x, Mode::kTrain);
}

TEST(GradCheck, BasicBlockIdentitySkip) {
  // kGrad mode: batch-norm statistics are constants, so the composite
  // block gradient is exactly checkable (kTrain couples every activation
  // through the batch statistics, amplifying finite-difference noise).
  Rng rng(10);
  BasicBlock block(3, 3, 1, rng);
  // Small eps: at 1e-3 the finite difference straddles ReLU kinks deep in
  // the composite (verified: the numeric estimate converges to the
  // analytic gradient as eps -> 0).
  check_layer(block, Tensor::randn({2, 3, 4, 4}, rng), Mode::kGrad, 1.5e-1f,
              1e-4f);
}

TEST(GradCheck, BasicBlockProjectionSkip) {
  Rng rng(11);
  BasicBlock block(2, 4, 2, rng);
  check_layer(block, Tensor::randn({2, 2, 4, 4}, rng), Mode::kGrad, 1.5e-1f,
              1e-4f);
}

TEST(GradCheck, SequentialComposition) {
  Rng rng(12);
  Sequential seq;
  seq.emplace<Linear>("fc0", 4, 6, true, rng);
  seq.emplace<ReLU>("relu");
  seq.emplace<Linear>("fc1", 6, 2, true, rng);
  Tensor x = Tensor::randn({3, 4}, rng);
  // Nudge pre-activations away from ReLU kinks by scaling input up.
  x.scale_(2.0f);
  check_layer(seq, x, Mode::kTrain);
}

}  // namespace
}  // namespace radar::nn
