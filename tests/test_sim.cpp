// Timing simulator + network descriptors + DRAM/rowhammer model.
#include <gtest/gtest.h>

#include "nn/resnet.h"
#include "quant/qmodel.h"
#include "sim/dram.h"
#include "sim/netdesc.h"
#include "sim/timing.h"

namespace radar::sim {
namespace {

TEST(NetDesc, Resnet20MatchesHandCount) {
  const NetworkShape net = resnet20_shape();
  EXPECT_EQ(net.total_weights(), 270896);  // conv+fc weights, CIFAR ResNet-20
  // ~40.5M MACs for one 32x32 image (well-known figure ~41M).
  EXPECT_NEAR(static_cast<double>(net.total_macs()), 40.5e6, 1.5e6);
}

TEST(NetDesc, Resnet18MatchesImagenetArchitecture) {
  const NetworkShape net = resnet18_shape();
  EXPECT_EQ(net.total_weights(), 11678912);  // 11.7M conv+fc weights
  // ~1.8G MACs at 224x224 (the canonical ResNet-18 figure).
  EXPECT_NEAR(static_cast<double>(net.total_macs()), 1.82e9, 0.1e9);
}

TEST(NetDesc, SignatureStorageMatchesPaperFig6) {
  // Paper: ResNet-18 @ G=512, 2-bit -> 5.6 KB; ResNet-20 @ G=8 -> 8.2 KB.
  const NetworkShape r18 = resnet18_shape();
  const double kb18 =
      static_cast<double>(r18.signature_storage_bytes(512, 2)) / 1024.0;
  EXPECT_NEAR(kb18, 5.6, 0.2);
  const NetworkShape r20 = resnet20_shape();
  const double kb20 =
      static_cast<double>(r20.signature_storage_bytes(8, 2)) / 1024.0;
  EXPECT_NEAR(kb20, 8.2, 0.15);
}

TEST(NetDesc, CrcStorageMatchesPaperTableV) {
  // CRC-13 @ G=512 on ResNet-18: 36.4 KB; @ G=8 on ResNet-20: 28.7 KB
  // (13/2 x the signature storage... 6.5x, computed directly).
  const NetworkShape r18 = resnet18_shape();
  EXPECT_NEAR(static_cast<double>(r18.code_storage_bytes(512, 13)) / 1024.0,
              36.4, 1.0);
  const NetworkShape r20 = resnet20_shape();
  EXPECT_NEAR(static_cast<double>(r20.code_storage_bytes(8, 7)) / 1024.0,
              28.7, 1.0);
}

TEST(NetDesc, LayerShapeFormulas) {
  LayerShape conv;
  conv.type = LayerType::kConv;
  conv.in_channels = 16;
  conv.out_channels = 32;
  conv.kernel = 3;
  conv.stride = 2;
  conv.padding = 1;
  conv.in_h = conv.in_w = 32;
  EXPECT_EQ(conv.out_h(), 16);
  EXPECT_EQ(conv.weights(), 32 * 16 * 9);
  EXPECT_EQ(conv.macs(), 32 * 16 * 16 * 16 * 9);

  LayerShape fc;
  fc.type = LayerType::kFullyConnected;
  fc.in_channels = 512;
  fc.out_channels = 1000;
  EXPECT_EQ(fc.weights(), 512000);
  EXPECT_EQ(fc.macs(), 512000);
}

TEST(Timing, DefaultsReproducePaperTableIvBaselines) {
  TimingSimulator sim;
  // Paper Table IV: ResNet-20 66.3 ms, ResNet-18 3.268 s. A single
  // cycles/MAC constant cannot hit both exactly (different platform
  // efficiency per net); defaults land within ~6%.
  EXPECT_NEAR(sim.inference_seconds(resnet20_shape()), 0.0663, 0.006);
  EXPECT_NEAR(sim.inference_seconds(resnet18_shape()), 3.268, 0.17);
}

TEST(Timing, DefaultsReproducePaperTableIvRadarOverheads) {
  TimingSimulator sim;
  // Paper Table IV deltas: ResNet-20 G=8 2.4 ms (3.5 ms interleaved),
  // ResNet-18 G=512 19 ms (60 ms interleaved).
  EXPECT_NEAR(sim.radar_seconds(resnet20_shape(), 8, false).detection,
              0.0024, 0.0002);
  EXPECT_NEAR(sim.radar_seconds(resnet20_shape(), 8, true).detection,
              0.0035, 0.0003);
  EXPECT_NEAR(sim.radar_seconds(resnet18_shape(), 512, false).detection,
              0.019, 0.001);
  EXPECT_NEAR(sim.radar_seconds(resnet18_shape(), 512, true).detection,
              0.060, 0.005);
}

TEST(Timing, DefaultsReproducePaperTableVCrcOverheads) {
  TimingSimulator sim;
  // Paper Table V deltas: 17.9 ms (ResNet-20, G=8), 317 ms (ResNet-18,
  // G=512).
  EXPECT_NEAR(sim.crc_seconds(resnet20_shape(), 8, 7).detection, 0.0179,
              0.001);
  EXPECT_NEAR(sim.crc_seconds(resnet18_shape(), 512, 13).detection, 0.317,
              0.01);
}

TEST(Timing, RadarOverheadUnderTwoPercentForResnet18) {
  TimingSimulator sim;
  const auto t = sim.radar_seconds(resnet18_shape(), 512, true);
  EXPECT_LT(t.overhead_pct(), 2.5);
  EXPECT_GT(t.overhead_pct(), 0.5);
}

TEST(Timing, InterleaveCostsExtra) {
  TimingSimulator sim;
  const auto plain = sim.radar_seconds(resnet18_shape(), 512, false);
  const auto inter = sim.radar_seconds(resnet18_shape(), 512, true);
  EXPECT_GT(inter.detection, plain.detection);
  EXPECT_EQ(inter.baseline, plain.baseline);
}

TEST(Timing, CrcSlowerThanRadar) {
  TimingSimulator sim;
  const auto radar = sim.radar_seconds(resnet18_shape(), 512, true);
  const auto crc = sim.crc_seconds(resnet18_shape(), 512, 13);
  EXPECT_GT(crc.detection, radar.detection * 3.0);
}

TEST(Timing, SmallerGroupsCostMore) {
  TimingSimulator sim;
  const auto g8 = sim.radar_seconds(resnet20_shape(), 8, true);
  const auto g64 = sim.radar_seconds(resnet20_shape(), 64, true);
  EXPECT_GT(g8.detection, g64.detection);
}

TEST(Timing, BatchedInferenceAmortizesDetection) {
  TimingSimulator sim;
  const auto single = sim.radar_seconds(resnet18_shape(), 512, true);
  const auto batched = sim.radar_seconds_batched(resnet18_shape(), 512, true, 8);
  EXPECT_NEAR(batched.baseline, 8.0 * single.baseline, 1e-9);
  EXPECT_EQ(batched.detection, single.detection);
  EXPECT_LT(batched.overhead_pct(), single.overhead_pct());
}

TEST(Timing, CalibrationHitsTargetsExactly) {
  TimingSimulator sim;
  sim.calibrate_baseline(resnet20_shape(), 0.0663, resnet18_shape(), 3.268);
  EXPECT_NEAR(sim.inference_seconds(resnet20_shape()), 0.0663, 1e-6);
  EXPECT_NEAR(sim.inference_seconds(resnet18_shape()), 3.268, 1e-5);
  sim.calibrate_radar(resnet20_shape(), 8, 0.0024, resnet18_shape(), 512,
                      0.019);
  EXPECT_NEAR(sim.radar_seconds(resnet20_shape(), 8, false).detection,
              0.0024, 1e-6);
  EXPECT_NEAR(sim.radar_seconds(resnet18_shape(), 512, false).detection,
              0.019, 1e-5);
}

TEST(Timing, RecoveryCosts) {
  TimingSimulator sim;
  EXPECT_GT(sim.reload_seconds(11678912), sim.zero_out_seconds(512));
  EXPECT_NEAR(sim.zero_out_seconds(512), 512e-9, 1e-10);
}

TEST(Dram, SusceptibleCellsAreRareAndDeterministic) {
  DramConfig cfg;
  cfg.cell_vulnerability = 1e-3;
  DramModel dram(cfg);
  std::int64_t weak = 0;
  const std::int64_t probes = 200000;
  for (std::int64_t i = 0; i < probes; ++i) {
    const std::int64_t row = i % 100;
    const std::int64_t byte = (i / 100) % cfg.row_bytes;
    const int bit = static_cast<int>(i % 8);
    if (dram.susceptible(row, byte, bit)) ++weak;
    // Determinism: asking twice gives the same answer.
    EXPECT_EQ(dram.susceptible(row, byte, bit),
              dram.susceptible(row, byte, bit));
  }
  const double rate = static_cast<double>(weak) / static_cast<double>(probes);
  EXPECT_NEAR(rate, 1e-3, 4e-4);
}

TEST(Dram, HammerRequiresThresholdActivations) {
  DramConfig cfg;
  cfg.cell_vulnerability = 0.01;
  DramModel dram(cfg);
  EXPECT_TRUE(dram.hammer(5, cfg.hammer_threshold / 2).empty());
  EXPECT_FALSE(dram.hammer(5, cfg.hammer_threshold / 2 + 1).empty());
}

TEST(Dram, ActivationCountersAccumulateAndReset) {
  DramConfig cfg;
  cfg.cell_vulnerability = 0.05;
  DramModel dram(cfg);
  dram.hammer(9, 100);
  dram.hammer(9, 200);
  EXPECT_EQ(dram.activations(9), 300);
  EXPECT_EQ(dram.activations(10), 0);
  // Crossing the threshold flips bits and resets the counter.
  dram.hammer(9, cfg.hammer_threshold);
  EXPECT_EQ(dram.activations(9), 0);
}

TEST(Dram, TargetedFlipRespectsPlacementProbability) {
  DramConfig cfg;
  DramModel dram(cfg);
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 1000; ++i)
    if (dram.targeted_flip(1, 0, 7, 0.7, rng)) ++hits;
  EXPECT_NEAR(hits, 700, 60);
  EXPECT_FALSE(dram.targeted_flip(1, 0, 7, 0.0, rng));
}

TEST(Dram, DifferentSeedsGiveDifferentVulnerabilityMaps) {
  DramConfig a, b;
  a.cell_vulnerability = b.cell_vulnerability = 0.2;
  b.seed = a.seed + 1;
  DramModel da(a), db(b);
  int diff = 0;
  for (std::int64_t i = 0; i < 500; ++i)
    if (da.susceptible(0, i, 0) != db.susceptible(0, i, 0)) ++diff;
  EXPECT_GT(diff, 50);
}

TEST(Timing, HammingBetweenRadarAndBitSerialCrc) {
  TimingSimulator sim;
  const auto radar = sim.radar_seconds(resnet18_shape(), 512, false);
  const auto hamming = sim.hamming_seconds(resnet18_shape(), 512);
  const auto crc = sim.crc_seconds(resnet18_shape(), 512, 13);
  EXPECT_GT(hamming.detection, radar.detection);
  EXPECT_LT(hamming.detection, crc.detection);
}

TEST(Timing, CalibrationRejectsSingularSystems) {
  TimingSimulator sim;
  EXPECT_THROW(sim.calibrate_baseline(resnet20_shape(), 0.01,
                                      resnet20_shape(), 0.02),
               radar::InvalidArgument);
}

TEST(Dram, MapBufferBoundsChecked) {
  DramConfig cfg;
  DramModel dram(cfg);
  EXPECT_EQ(dram.map_buffer(0, cfg.row_bytes * 3 + 1), 4);
  EXPECT_THROW(dram.map_buffer(cfg.num_rows - 1, cfg.row_bytes * 2),
               radar::InvalidArgument);
}

TEST(Dram, FlipsLandInModelWeights) {
  Rng rng(1);
  nn::ResNetSpec spec;
  spec.num_classes = 4;
  spec.base_width = 8;
  spec.blocks_per_stage = {1};
  nn::ResNet model(spec, rng);
  quant::QuantizedModel qm(model);

  DramConfig cfg;
  const std::vector<DramFlip> flips = {{0, 3, 7}, {0, 10, 6}};
  const auto before3 = qm.get_code(0, 3);
  const std::int64_t applied = apply_dram_flips_to_model(flips, 0, cfg, qm);
  EXPECT_EQ(applied, 2);
  EXPECT_EQ(static_cast<std::uint8_t>(qm.get_code(0, 3) ^ before3), 0x80);
}

DramConfig multi_bank_config() {
  DramConfig cfg;
  cfg.channels = 2;
  cfg.ranks = 2;
  cfg.banks = 4;
  cfg.num_rows = 32;
  cfg.row_bytes = 1024;
  cfg.stripe_bytes = 128;
  return cfg;
}

TEST(Dram, AddressMappingRoundTripsRowMajor) {
  DramConfig cfg = multi_bank_config();
  cfg.mapping = AddressMapping::kRowMajor;
  DramModel dram(cfg);
  const std::int64_t cap = dram.capacity_bytes();
  EXPECT_EQ(cap, 2 * 2 * 4 * 32 * 1024);
  for (std::int64_t off : {std::int64_t{0}, std::int64_t{1},
                           std::int64_t{127}, std::int64_t{128},
                           std::int64_t{1023}, std::int64_t{1024},
                           std::int64_t{8191}, cap / 3, cap / 2, cap - 1}) {
    const PhysAddr a = dram.decompose(off);
    EXPECT_GE(a.channel, 0);
    EXPECT_LT(a.channel, cfg.channels);
    EXPECT_GE(a.rank, 0);
    EXPECT_LT(a.rank, cfg.ranks);
    EXPECT_GE(a.bank, 0);
    EXPECT_LT(a.bank, cfg.banks);
    EXPECT_GE(a.row, 0);
    EXPECT_LT(a.row, cfg.num_rows);
    EXPECT_GE(a.col, 0);
    EXPECT_LT(a.col, cfg.row_bytes);
    EXPECT_EQ(dram.compose(a), off);
    EXPECT_GE(dram.global_row(a), 0);
    EXPECT_LT(dram.global_row(a), dram.total_rows());
  }
  EXPECT_THROW(dram.decompose(cap), radar::InvalidArgument);
}

TEST(Dram, AddressMappingRoundTripsBankStripe) {
  DramConfig cfg = multi_bank_config();
  cfg.mapping = AddressMapping::kBankStripe;
  DramModel dram(cfg);
  const std::int64_t cap = dram.capacity_bytes();
  // Exhaustive round-trip over a prefix plus strided samples to the end.
  for (std::int64_t off = 0; off < 4096; ++off)
    EXPECT_EQ(dram.compose(dram.decompose(off)), off);
  for (std::int64_t off = 0; off < cap; off += 997)
    EXPECT_EQ(dram.compose(dram.decompose(off)), off);
  EXPECT_EQ(dram.compose(dram.decompose(cap - 1)), cap - 1);
}

TEST(Dram, BankStripeInterleavesAcrossBanks) {
  DramConfig cfg = multi_bank_config();
  cfg.mapping = AddressMapping::kBankStripe;
  DramModel dram(cfg);
  // Consecutive stripe granules land in different banks; with row-major
  // they share a row.
  const PhysAddr a = dram.decompose(0);
  const PhysAddr b = dram.decompose(cfg.stripe_bytes);
  EXPECT_NE(dram.global_row(a), dram.global_row(b));
  // After total_banks granules the stripe wraps back to the first bank.
  const PhysAddr c = dram.decompose(cfg.stripe_bytes * dram.total_banks());
  EXPECT_EQ(c.channel, a.channel);
  EXPECT_EQ(c.rank, a.rank);
  EXPECT_EQ(c.bank, a.bank);

  DramConfig lin = cfg;
  lin.mapping = AddressMapping::kRowMajor;
  DramModel ldram(lin);
  EXPECT_EQ(ldram.global_row(ldram.decompose(0)),
            ldram.global_row(ldram.decompose(cfg.stripe_bytes)));
}

TEST(Dram, HammerVictimFlipsOnlyTheVictimRow) {
  DramConfig cfg = multi_bank_config();
  cfg.mapping = AddressMapping::kBankStripe;
  cfg.cell_vulnerability = 0.05;
  cfg.hammer_threshold = 1000;
  cfg.flip_ramp = 1;  // step: pressure past threshold flips for sure
  DramModel dram(cfg);
  Rng rng(11);
  const PhysAddr victim = dram.decompose(3 * cfg.stripe_bytes + 17);
  const auto flips = dram.hammer_victim(victim, 2 * cfg.hammer_threshold,
                                        /*double_sided=*/false, rng);
  ASSERT_FALSE(flips.empty());
  for (const DramFlip& f : flips) {
    EXPECT_EQ(f.row, dram.global_row(victim));
    const PhysAddr back = dram.decompose(f.offset);
    EXPECT_EQ(back.channel, victim.channel);
    EXPECT_EQ(back.rank, victim.rank);
    EXPECT_EQ(back.bank, victim.bank);
    EXPECT_EQ(back.row, victim.row);
    EXPECT_EQ(back.col, f.byte_in_row);
  }
}

TEST(Dram, HammerVictimSubThresholdNeverFlips) {
  DramConfig cfg = multi_bank_config();
  cfg.cell_vulnerability = 0.5;  // plenty of weak cells: threshold must gate
  cfg.hammer_threshold = 1000;
  cfg.flip_ramp = 1;
  DramModel dram(cfg);
  Rng rng(12);
  const PhysAddr victim = dram.decompose(2048);
  EXPECT_TRUE(dram.hammer_victim(victim, cfg.hammer_threshold - 1,
                                 /*double_sided=*/false, rng)
                  .empty());
  // One more activation tips the accumulated pressure over.
  EXPECT_FALSE(dram.hammer_victim(victim, 1, /*double_sided=*/false, rng)
                   .empty());
}

TEST(Dram, DoubleSidedHammeringPressuresFromBothRows) {
  DramConfig cfg = multi_bank_config();
  cfg.cell_vulnerability = 0.5;
  cfg.hammer_threshold = 1000;
  cfg.flip_ramp = 1;
  const std::int64_t acts = cfg.hammer_threshold / 2 + 10;  // half + slack
  Rng rng(13);
  // Single-sided at just over half the threshold: no flips.
  DramModel single(cfg);
  const PhysAddr victim = single.decompose(5 * cfg.row_bytes);
  EXPECT_TRUE(single.hammer_victim(victim, acts, false, rng).empty());
  // Double-sided at the same count: both neighbours contribute, flips.
  DramModel both(cfg);
  EXPECT_FALSE(both.hammer_victim(victim, acts, true, rng).empty());
}

TEST(Dram, TargetedFlipSubThresholdActivationsFail) {
  DramConfig cfg;
  DramModel dram(cfg);
  Rng rng(14);
  // Explicit sub-threshold hammer counts accumulate but never flip.
  for (int i = 0; i < 4; ++i)
    EXPECT_FALSE(dram.targeted_flip(1, 0, 7, 1.0, rng,
                                    cfg.hammer_threshold / 10));
  // Topping up past the threshold finally flips.
  EXPECT_TRUE(dram.targeted_flip(1, 0, 7, 1.0, rng, cfg.hammer_threshold));
}

TEST(Dram, MapBufferRejectsOverlap) {
  DramConfig cfg;
  DramModel dram(cfg);
  EXPECT_EQ(dram.map_buffer(0, cfg.row_bytes * 2), 2);
  EXPECT_THROW(dram.map_buffer(1, cfg.row_bytes), radar::InvalidArgument);
  EXPECT_THROW(dram.map_buffer(0, 1), radar::InvalidArgument);
  EXPECT_EQ(dram.map_buffer(2, cfg.row_bytes), 1);
}

TEST(Dram, HammerVictimDeterministicPerSeed) {
  DramConfig cfg = multi_bank_config();
  cfg.mapping = AddressMapping::kBankStripe;
  cfg.cell_vulnerability = 0.05;
  cfg.hammer_threshold = 1000;
  cfg.flip_ramp = 2000;  // p ~ 0.5: the rng stream matters
  const std::int64_t acts = 2000;
  DramModel da(cfg), db(cfg), dc(cfg);
  Rng ra(7), rb(7), rc(8);
  const PhysAddr victim = da.decompose(4096);
  const auto fa = da.hammer_victim(victim, acts, true, ra);
  const auto fb = db.hammer_victim(victim, acts, true, rb);
  const auto fc = dc.hammer_victim(victim, acts, true, rc);
  ASSERT_FALSE(fa.empty());
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].row, fb[i].row);
    EXPECT_EQ(fa[i].byte_in_row, fb[i].byte_in_row);
    EXPECT_EQ(fa[i].bit, fb[i].bit);
    EXPECT_EQ(fa[i].offset, fb[i].offset);
  }
  // A different rng seed draws a different subset of the weak cells.
  bool same = fa.size() == fc.size();
  if (same)
    for (std::size_t i = 0; i < fa.size(); ++i)
      same = same && fa[i].byte_in_row == fc[i].byte_in_row &&
             fa[i].bit == fc[i].bit;
  EXPECT_FALSE(same);
}

TEST(Dram, FlipsOutsideModelIgnored) {
  Rng rng(2);
  nn::ResNetSpec spec;
  spec.num_classes = 4;
  spec.base_width = 8;
  spec.blocks_per_stage = {1};
  nn::ResNet model(spec, rng);
  quant::QuantizedModel qm(model);
  DramConfig cfg;
  const std::vector<DramFlip> flips = {{5000, 0, 0}};
  EXPECT_EQ(apply_dram_flips_to_model(flips, 0, cfg, qm), 0);
}

}  // namespace
}  // namespace radar::sim
