// RadarScheme end-to-end on a quantized network: golden signatures,
// scanning, detection accounting, recovery policies, re-signing.
#include <gtest/gtest.h>

#include "core/scanner.h"
#include "core/scheme.h"

namespace radar::core {
namespace {

nn::ResNetSpec tiny_spec() {
  nn::ResNetSpec s;
  s.num_classes = 4;
  s.base_width = 8;
  s.blocks_per_stage = {1, 1};
  s.name = "tiny";
  return s;
}

class SchemeTest : public ::testing::Test {
 protected:
  SchemeTest() : rng_(42), model_(tiny_spec(), rng_), qm_(model_) {}

  RadarConfig cfg(std::int64_t g = 32, bool interleave = true,
                  int bits = 2) const {
    RadarConfig c;
    c.group_size = g;
    c.interleave = interleave;
    c.signature_bits = bits;
    return c;
  }

  Rng rng_;
  nn::ResNet model_;
  quant::QuantizedModel qm_;
};

TEST_F(SchemeTest, CleanModelScansClean) {
  RadarScheme scheme(cfg());
  scheme.attach(qm_);
  const DetectionReport report = scheme.scan(qm_);
  EXPECT_FALSE(report.attack_detected());
  EXPECT_EQ(report.num_flagged_groups(), 0);
}

TEST_F(SchemeTest, SingleMsbFlipFlagsExactlyItsGroup) {
  RadarScheme scheme(cfg());
  scheme.attach(qm_);
  qm_.flip_bit(2, 7, 7);
  const DetectionReport report = scheme.scan(qm_);
  EXPECT_TRUE(report.attack_detected());
  EXPECT_EQ(report.num_flagged_groups(), 1);
  const std::int64_t expected_group = scheme.layout(2).group_of(7);
  EXPECT_TRUE(report.is_flagged(2, expected_group));
}

TEST_F(SchemeTest, MultipleFlipsAcrossLayersAllFlagged) {
  RadarScheme scheme(cfg());
  scheme.attach(qm_);
  std::vector<std::pair<std::size_t, std::int64_t>> sites = {
      {0, 3}, {1, 50}, {3, 11}};
  for (auto [l, i] : sites) qm_.flip_bit(l, i, 7);
  const DetectionReport report = scheme.scan(qm_);
  EXPECT_EQ(count_detected_flips(scheme, report, sites), 3);
}

TEST_F(SchemeTest, ScanLayerMatchesFullScan) {
  RadarScheme scheme(cfg());
  scheme.attach(qm_);
  qm_.flip_bit(1, 20, 7);
  const DetectionReport full = scheme.scan(qm_);
  const auto layer1 = scheme.scan_layer(qm_, 1);
  EXPECT_EQ(full.flagged[1], layer1);
  EXPECT_TRUE(scheme.scan_layer(qm_, 0).empty());
}

TEST_F(SchemeTest, ZeroOutRecoveryZeroesWholeGroup) {
  RadarScheme scheme(cfg());
  scheme.attach(qm_);
  qm_.flip_bit(2, 7, 7);
  const DetectionReport report = scheme.scan(qm_);
  scheme.recover(qm_, report, RecoveryPolicy::kZeroOut);
  const std::int64_t group = scheme.layout(2).group_of(7);
  for (const std::int64_t idx : scheme.layout(2).group_members(group)) {
    EXPECT_EQ(qm_.get_code(2, idx), 0);
    EXPECT_FLOAT_EQ(qm_.layer(2).param->value[idx], 0.0f);
  }
}

TEST_F(SchemeTest, ZeroOutLeavesOtherGroupsUntouched) {
  RadarScheme scheme(cfg());
  scheme.attach(qm_);
  const quant::ArenaSnapshot before = qm_.snapshot();
  qm_.flip_bit(2, 7, 7);
  const DetectionReport report = scheme.scan(qm_);
  scheme.recover(qm_, report, RecoveryPolicy::kZeroOut);
  const std::int64_t group = scheme.layout(2).group_of(7);
  for (std::int64_t i = 0; i < qm_.layer(2).size(); ++i) {
    if (scheme.layout(2).group_of(i) == group) continue;
    EXPECT_EQ(qm_.get_code(2, i), before.span(2)[static_cast<std::size_t>(i)]);
  }
}

TEST_F(SchemeTest, ReloadCleanRestoresExactWeights) {
  RadarScheme scheme(cfg());
  scheme.attach(qm_);
  const quant::ArenaSnapshot clean = qm_.snapshot();
  qm_.flip_bit(0, 1, 7);
  qm_.flip_bit(0, 2, 6);
  const DetectionReport report = scheme.scan(qm_);
  scheme.recover(qm_, report, RecoveryPolicy::kReloadClean);
  // Flagged groups are byte-identical to the clean model again.
  const DetectionReport after = scheme.scan(qm_);
  EXPECT_FALSE(after.attack_detected());
  EXPECT_EQ(qm_.get_code(0, 1), clean.span(0)[1]);
}

TEST_F(SchemeTest, ResignAcceptsAuthorizedUpdate) {
  RadarScheme scheme(cfg());
  scheme.attach(qm_);
  // An authorized in-place update (not an attack): change a weight, then
  // re-sign. The scheme must stop flagging it.
  qm_.set_code(1, 5, 99);
  EXPECT_TRUE(scheme.scan(qm_).attack_detected());
  scheme.resign(qm_);
  EXPECT_FALSE(scheme.scan(qm_).attack_detected());
}

TEST_F(SchemeTest, StorageBytesMatchPerLayerPacking) {
  RadarScheme scheme(cfg(32, true, 2));
  scheme.attach(qm_);
  std::int64_t expected = 0;
  for (std::size_t li = 0; li < qm_.num_layers(); ++li) {
    const std::int64_t groups = (qm_.layer(li).size() + 31) / 32;
    expected += (groups * 2 + 7) / 8;
  }
  EXPECT_EQ(scheme.signature_storage_bytes(), expected);
}

TEST_F(SchemeTest, ThreeBitSignatureCostsFiftyPercentMore) {
  RadarScheme s2(cfg(32, true, 2));
  RadarScheme s3(cfg(32, true, 3));
  s2.attach(qm_);
  s3.attach(qm_);
  const double ratio = static_cast<double>(s3.signature_storage_bytes()) /
                       static_cast<double>(s2.signature_storage_bytes());
  EXPECT_NEAR(ratio, 1.5, 0.05);
}

TEST_F(SchemeTest, SmallerGroupsMoreStorage) {
  RadarScheme coarse(cfg(128));
  RadarScheme fine(cfg(8));
  coarse.attach(qm_);
  fine.attach(qm_);
  EXPECT_GT(fine.signature_storage_bytes(),
            coarse.signature_storage_bytes() * 8);
}

TEST_F(SchemeTest, DetectsMsb1FlipWith3Bits) {
  RadarScheme scheme(cfg(32, true, 3));
  scheme.attach(qm_);
  qm_.flip_bit(1, 9, 6);  // MSB-1
  EXPECT_TRUE(scheme.scan(qm_).attack_detected());
}

TEST_F(SchemeTest, InterleaveSplitsAdjacentFlips) {
  // Two adjacent weights: same group without interleave, different groups
  // with interleave.
  RadarScheme inter(cfg(32, true));
  RadarScheme contig(cfg(32, false));
  inter.attach(qm_);
  contig.attach(qm_);
  EXPECT_EQ(contig.layout(0).group_of(10), contig.layout(0).group_of(11));
  EXPECT_NE(inter.layout(0).group_of(10), inter.layout(0).group_of(11));
}

TEST_F(SchemeTest, ScanBeforeAttachThrows) {
  RadarScheme scheme(cfg());
  EXPECT_THROW(scheme.scan(qm_), InvalidArgument);
}

TEST_F(SchemeTest, ConfigValidation) {
  RadarConfig bad = cfg();
  bad.group_size = 0;
  EXPECT_THROW(RadarScheme{bad}, InvalidArgument);
  bad = cfg();
  bad.signature_bits = 5;
  EXPECT_THROW(RadarScheme{bad}, InvalidArgument);
}

TEST_F(SchemeTest, GoldenExportImportRoundTrip) {
  RadarScheme a(cfg());
  a.attach(qm_);
  const auto exported = a.export_golden();
  EXPECT_EQ(exported.size(), qm_.num_layers());

  // A scheme whose golden state was computed from a *tampered* model
  // becomes correct again after importing the clean export.
  qm_.flip_bit(0, 2, 7);
  RadarScheme b(cfg());
  b.attach(qm_);                      // blesses the tampered state
  EXPECT_FALSE(b.scan(qm_).attack_detected());
  b.import_golden(exported);          // restore the signed truth
  const DetectionReport report = b.scan(qm_);
  EXPECT_TRUE(report.attack_detected());
  EXPECT_TRUE(report.is_flagged(0, b.layout(0).group_of(2)));
  qm_.flip_bit(0, 2, 7);  // restore
}

TEST_F(SchemeTest, ImportGoldenValidatesShape) {
  RadarScheme scheme(cfg());
  scheme.attach(qm_);
  auto exported = scheme.export_golden();
  exported.pop_back();
  EXPECT_THROW(scheme.import_golden(exported), InvalidArgument);
  RadarScheme fresh(cfg());
  EXPECT_THROW(fresh.import_golden(scheme.export_golden()),
               InvalidArgument);
}

TEST_F(SchemeTest, ResignLayerIsScoped) {
  RadarScheme scheme(cfg());
  scheme.attach(qm_);
  qm_.flip_bit(1, 4, 7);
  qm_.flip_bit(3, 8, 7);
  // Re-signing only layer 1 must keep layer 3 flagged.
  scheme.resign_layer(qm_, 1);
  const DetectionReport report = scheme.scan(qm_);
  EXPECT_TRUE(report.flagged[1].empty());
  EXPECT_FALSE(report.flagged[3].empty());
  EXPECT_THROW(scheme.resign_layer(qm_, 99), InvalidArgument);
}

TEST(LayerScanner, MatchesReferencePrimitives) {
  Rng rng(55);
  std::vector<std::int8_t> w(1000);
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  for (const bool inter : {false, true}) {
    for (const int bits : {2, 3}) {
      const GroupLayout layout =
          inter ? GroupLayout::interleaved(1000, 64, 3)
                : GroupLayout::contiguous(1000, 64);
      const MaskStream mask(0xA1B2);
      const LayerScanner scanner(layout, mask, bits);
      const auto sigs = scanner.scan(w);
      ASSERT_EQ(static_cast<std::int64_t>(sigs.size()), layout.num_groups());
      for (std::int64_t g = 0; g < layout.num_groups(); ++g) {
        EXPECT_TRUE(sigs[static_cast<std::size_t>(g)] ==
                    group_signature(w, layout, g, mask, bits))
            << "group " << g << " inter=" << inter << " bits=" << bits;
      }
    }
  }
}

TEST(LayerScanner, MaskedSumsMatchReference) {
  Rng rng(56);
  std::vector<std::int8_t> w(257);
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  const GroupLayout layout = GroupLayout::interleaved(257, 16, 3);
  const MaskStream mask(0x1357);
  const LayerScanner scanner(layout, mask, 2);
  const auto sums = scanner.masked_sums(w);
  for (std::int64_t g = 0; g < layout.num_groups(); ++g)
    EXPECT_EQ(sums[static_cast<std::size_t>(g)],
              masked_group_sum(w, layout, g, mask));
}

TEST(LayerScanner, SizeMismatchThrows) {
  const GroupLayout layout = GroupLayout::contiguous(64, 8);
  const MaskStream mask(1);
  const LayerScanner scanner(layout, mask, 2);
  std::vector<std::int8_t> wrong(65, 0);
  EXPECT_THROW(scanner.scan(wrong), InvalidArgument);
  EXPECT_THROW(LayerScanner(layout, mask, 4), InvalidArgument);
}

TEST_F(SchemeTest, DetectionReportIsFlaggedOutOfRange) {
  DetectionReport r;
  r.flagged = {{1, 5}, {}};
  EXPECT_TRUE(r.is_flagged(0, 5));
  EXPECT_FALSE(r.is_flagged(0, 2));
  EXPECT_FALSE(r.is_flagged(7, 0));  // layer beyond report: not flagged
}

}  // namespace
}  // namespace radar::core
