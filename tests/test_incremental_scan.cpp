// Incremental-scan differential battery.
//
// Three independent engines must agree bit for bit on every random layout,
// attack and recovery sequence:
//   (a) the reference scalar primitives (masked_group_sum / binarize —
//       the pre-PR ground truth the original kernel was tested against),
//   (b) the vectorized full scan (LayerScanner row kernel via
//       ScanSession::scan_into),
//   (c) the incremental dirty-group scan (ScanSession::scan_dirty_into).
// Plus the undo path: undo_dirty() must return the model to its exact
// prior int8 and float state after arbitrary tracked mutation sequences.
#include <gtest/gtest.h>

#include <vector>

#include "common/bits.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "core/checksum.h"
#include "core/scan_session.h"
#include "core/scanner.h"
#include "core/scheme_registry.h"

namespace radar::core {
namespace {

nn::ResNetSpec tiny_spec() {
  nn::ResNetSpec s;
  s.num_classes = 4;
  s.base_width = 8;
  s.blocks_per_stage = {1, 1};
  s.name = "tiny";
  return s;
}

/// One pass of the kernel battery: random layouts / group sizes /
/// interleave / skew, full + narrow + range-window scans, all checked
/// against the scalar masked_group_sum ground truth. Runs under whatever
/// SIMD level is active, so the level-sweep test below exercises every
/// dispatched variant against the same reference.
void run_scan_kernel_battery(Rng& rng, int trials) {
  for (int trial = 0; trial < trials; ++trial) {
    const std::int64_t w_count = rng.uniform_int(1, 3000);
    const std::int64_t g = rng.uniform_int(1, 96);
    const bool inter = rng.uniform_int(0, 1) == 1;
    const std::int64_t skew = rng.uniform_int(0, 7);
    const GroupLayout layout =
        inter ? GroupLayout::interleaved(w_count, g, skew)
              : GroupLayout::contiguous(w_count, g);
    const MaskStream mask(static_cast<std::uint16_t>(rng.bits() & 0xFFFF),
                          rng.uniform_int(0, 1) == 0
                              ? MaskStream::Expansion::kRepeat
                              : MaskStream::Expansion::kPrf);
    std::vector<std::int8_t> w(static_cast<std::size_t>(w_count));
    for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    const std::span<const std::int8_t> ws(w.data(), w.size());
    const int bits = rng.uniform_int(0, 1) == 0 ? 2 : 3;
    const LayerScanner scanner(layout, mask, bits);
    ScanScratch scratch;
    scanner.masked_sums_into(ws, scratch);
    ASSERT_EQ(scratch.sums.size(),
              static_cast<std::size_t>(layout.num_groups()));
    for (std::int64_t grp = 0; grp < layout.num_groups(); ++grp) {
      const std::int64_t ref = masked_group_sum(ws, layout, grp, mask);
      EXPECT_EQ(scratch.sums[static_cast<std::size_t>(grp)], ref)
          << "full scan, trial " << trial << " group " << grp;
      EXPECT_EQ(scanner.group_sum(ws, grp), ref)
          << "narrow scan, trial " << trial << " group " << grp;
      EXPECT_TRUE(scanner.group_signature_at(ws, grp) ==
                  group_signature(ws, layout, grp, mask, bits))
          << "signature, trial " << trial << " group " << grp;
    }
    // The byte-range sharding kernel: random group ranges must reproduce
    // the corresponding slice of the full sums exactly (the sharded
    // whole-model scan is bit-identical only because of this).
    const std::vector<std::int64_t> full_sums = scratch.sums;
    ScanScratch range_scratch;
    for (int r = 0; r < 6; ++r) {
      const std::int64_t a = rng.uniform_int(0, layout.num_groups());
      const std::int64_t b = rng.uniform_int(0, layout.num_groups());
      const std::int64_t lo = std::min(a, b), hi = std::max(a, b);
      scanner.masked_sums_range_into(ws, lo, hi, range_scratch);
      ASSERT_EQ(range_scratch.sums.size(), static_cast<std::size_t>(hi - lo));
      for (std::int64_t g = lo; g < hi; ++g)
        EXPECT_EQ(range_scratch.sums[static_cast<std::size_t>(g - lo)],
                  full_sums[static_cast<std::size_t>(g)])
            << "range [" << lo << ", " << hi << "), trial " << trial
            << " group " << g;
    }
  }
}

TEST(ScanKernel, MatchesScalarReferenceOnRandomLayouts) {
  Rng rng(0x5CA);
  run_scan_kernel_battery(rng, 40);
}

TEST(ScanKernel, EveryDispatchLevelMatchesScalarReference) {
  // The same battery under each level this machine supports: the
  // dispatched dot/axpy variants must reproduce the scalar ground truth
  // bit for bit on every random layout.
  for (int l = 0; l < cpu::kNumSimdLevels; ++l) {
    const auto lvl = static_cast<cpu::SimdLevel>(l);
    if (!cpu::level_supported(lvl)) continue;
    SCOPED_TRACE(cpu::level_name(lvl));
    cpu::ScopedSimdLevel guard(lvl);
    Rng rng(0x51D0 + l);
    run_scan_kernel_battery(rng, 15);
  }
}

class IncrementalScanTest : public ::testing::Test {
 protected:
  IncrementalScanTest() : rng_(17), model_(tiny_spec(), rng_), qm_(model_) {}

  Rng rng_;
  nn::ResNet model_;
  quant::QuantizedModel qm_;
};

TEST_F(IncrementalScanTest, UndoDirtyRestoresExactState) {
  const quant::ArenaSnapshot before = qm_.snapshot();
  std::vector<float> float_before;
  for (std::size_t li = 0; li < qm_.num_layers(); ++li) {
    const auto& p = *qm_.layer(li).param;
    float_before.insert(float_before.end(), p.value.data(),
                        p.value.data() + p.value.numel());
  }
  qm_.set_dirty_tracking(true);
  Rng rng(0xD1E7);
  for (int i = 0; i < 200; ++i) {
    const auto li = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(qm_.num_layers()) - 1));
    const std::int64_t idx = rng.uniform_int(0, qm_.layer(li).size() - 1);
    if (rng.uniform_int(0, 3) == 0) {
      qm_.set_code(li, idx,
                   static_cast<std::int8_t>(rng.uniform_int(-128, 127)));
    } else {
      qm_.flip_bit(li, idx, static_cast<int>(rng.uniform_int(0, 7)));
    }
  }
  EXPECT_EQ(qm_.dirty_writes().size(), 200u);
  qm_.undo_dirty();
  EXPECT_TRUE(qm_.dirty_writes().empty());
  EXPECT_EQ(qm_.snapshot(), before);
  std::size_t k = 0;
  for (std::size_t li = 0; li < qm_.num_layers(); ++li) {
    const auto& p = *qm_.layer(li).param;
    for (std::int64_t i = 0; i < p.value.numel(); ++i, ++k)
      ASSERT_EQ(p.value.data()[i], float_before[k]) << "layer " << li;
  }
}

TEST_F(IncrementalScanTest, IncrementalMatchesFullUnderAttackAndRecovery) {
  Rng rng(0xF00D);
  SchemeParams params;
  for (const auto& id : SchemeRegistry::instance().ids()) {
    for (const bool interleave : {true, false}) {
      params.group_size = rng.uniform_int(4, 64);
      params.interleave = interleave;
      params.skew = rng.uniform_int(0, 5);
      auto scheme = SchemeRegistry::instance().create(id, params);
      scheme->attach(qm_);
      ScanSession session(*scheme, 1);
      qm_.set_dirty_tracking(true);  // clean state = incremental baseline
      DetectionReport full, inc;
      for (int round = 0; round < 6; ++round) {
        const int n_flips = static_cast<int>(rng.uniform_int(1, 15));
        std::vector<std::pair<std::size_t, std::int64_t>> sites;
        for (int f = 0; f < n_flips; ++f) {
          const auto li = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(qm_.num_layers()) - 1));
          const std::int64_t idx =
              rng.uniform_int(0, qm_.layer(li).size() - 1);
          qm_.flip_bit(li, idx, static_cast<int>(rng.uniform_int(0, 7)));
          sites.emplace_back(li, idx);
        }
        // Three engines on the attacked state.
        const DetectionReport legacy = scheme->scan(qm_);
        session.scan_into(qm_, full);
        session.scan_dirty_into(qm_, inc);
        ASSERT_EQ(legacy.flagged, full.flagged)
            << id << " legacy-vs-vectorized, round " << round;
        ASSERT_EQ(full.flagged, inc.flagged)
            << id << " full-vs-incremental, round " << round;
        ASSERT_EQ(count_detected_flips(*scheme, full, sites),
                  count_detected_flips(*scheme, inc, sites));
        // Recovery writes are tracked too; the incremental scan stays
        // valid against the attach-time baseline afterwards.
        scheme->recover(qm_, full, RecoveryPolicy::kZeroOut);
        session.scan_into(qm_, full);
        session.scan_dirty_into(qm_, inc);
        ASSERT_EQ(full.flagged, inc.flagged)
            << id << " post-recovery, round " << round;
        // Back to clean for the next round, via the write-level undo.
        qm_.undo_dirty();
        session.scan_dirty_into(qm_, inc);
        ASSERT_FALSE(inc.attack_detected()) << id << " after undo";
      }
      qm_.set_dirty_tracking(false);
    }
  }
}

TEST_F(IncrementalScanTest, ThresholdZeroForcesFullScanPath) {
  auto scheme = SchemeRegistry::instance().create(
      "radar2", SchemeParams{.group_size = 16});
  scheme->attach(qm_);
  ScanSession session(*scheme, 1);
  session.set_full_scan_threshold(0.0);  // every dirty scan degenerates
  qm_.set_dirty_tracking(true);
  qm_.flip_bit(0, 5, kMsb);
  DetectionReport full, inc;
  session.scan_into(qm_, full);
  session.scan_dirty_into(qm_, inc);
  EXPECT_EQ(full.flagged, inc.flagged);
  EXPECT_TRUE(inc.attack_detected());
  qm_.set_dirty_tracking(false);
}

TEST_F(IncrementalScanTest, DirtyScanWithoutTrackingFallsBackToFull) {
  auto scheme = SchemeRegistry::instance().create(
      "radar2", SchemeParams{.group_size = 16});
  scheme->attach(qm_);
  ScanSession session(*scheme, 1);
  qm_.flip_bit(1, 3, kMsb);  // untracked mutation
  DetectionReport inc;
  session.scan_dirty_into(qm_, inc);  // no log: must rescan everything
  EXPECT_TRUE(inc.attack_detected());
  qm_.flip_bit(1, 3, kMsb);
}

TEST_F(IncrementalScanTest, ScanLayerGroupsEqualsFilteredFullScan) {
  Rng rng(0xA11);
  for (const auto& id : SchemeRegistry::instance().ids()) {
    auto scheme = SchemeRegistry::instance().create(
        id, SchemeParams{.group_size = 8});
    scheme->attach(qm_);
    for (int f = 0; f < 10; ++f) {
      const auto li = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(qm_.num_layers()) - 1));
      qm_.flip_bit(li, rng.uniform_int(0, qm_.layer(li).size() - 1),
                   static_cast<int>(rng.uniform_int(0, 7)));
    }
    ScanScratch scratch;
    for (std::size_t li = 0; li < qm_.num_layers(); ++li) {
      const std::vector<std::int64_t> all = scheme->scan_layer(qm_, li);
      // Querying every group reproduces the full per-layer scan.
      std::vector<std::int64_t> every(
          static_cast<std::size_t>(scheme->layout(li).num_groups()));
      for (std::size_t g = 0; g < every.size(); ++g)
        every[g] = static_cast<std::int64_t>(g);
      std::vector<std::int64_t> flagged;
      scheme->scan_layer_groups(qm_, li, every, flagged, scratch);
      EXPECT_EQ(flagged, all) << id << " layer " << li;
      // Querying every second group yields exactly the even flagged ones.
      std::vector<std::int64_t> evens;
      for (std::size_t g = 0; g < every.size(); g += 2)
        evens.push_back(static_cast<std::int64_t>(g));
      scheme->scan_layer_groups(qm_, li, evens, flagged, scratch);
      std::vector<std::int64_t> expected;
      for (const std::int64_t g : all)
        if (g % 2 == 0) expected.push_back(g);
      EXPECT_EQ(flagged, expected) << id << " layer " << li;
    }
    // Each scheme re-attaches to the current weights, so the comparisons
    // above never depend on state left over from the previous scheme.
  }
}

}  // namespace
}  // namespace radar::core
