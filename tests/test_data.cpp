// Synthetic dataset generator: determinism, balance, batching contracts.
#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.h"

namespace radar::data {
namespace {

TEST(Synthetic, DeterministicFromSeed) {
  const auto spec = synthetic_cifar_spec();
  SyntheticDataset a(spec, 64, 32);
  SyntheticDataset b(spec, 64, 32);
  Batch ta = a.test_batch(0, 32);
  Batch tb = b.test_batch(0, 32);
  EXPECT_EQ(nn::max_abs_diff(ta.images, tb.images), 0.0f);
  EXPECT_EQ(ta.labels, tb.labels);
}

TEST(Synthetic, DifferentSeedsProduceDifferentData) {
  auto spec_a = synthetic_cifar_spec();
  auto spec_b = spec_a;
  spec_b.seed += 1;
  SyntheticDataset a(spec_a, 16, 16);
  SyntheticDataset b(spec_b, 16, 16);
  EXPECT_GT(nn::max_abs_diff(a.test_batch(0, 16).images,
                             b.test_batch(0, 16).images),
            0.0f);
}

TEST(Synthetic, LabelsBalancedRoundRobin) {
  const auto spec = synthetic_cifar_spec();
  SyntheticDataset d(spec, 100, 50);
  std::vector<int> counts(10, 0);
  for (int l : d.test_labels()) counts[static_cast<std::size_t>(l)]++;
  for (int c : counts) EXPECT_EQ(c, 5);
}

TEST(Synthetic, TrainBatchShapeAndLabels) {
  const auto spec = synthetic_cifar_spec();
  SyntheticDataset d(spec, 128, 32);
  Rng rng(5);
  Batch b = d.train_batch(16, rng);
  EXPECT_EQ(b.images.shape(), (std::vector<std::int64_t>{16, 3, 32, 32}));
  EXPECT_EQ(b.labels.size(), 16u);
  for (int l : b.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 10);
  }
}

TEST(Synthetic, TestBatchRangeValidation) {
  const auto spec = synthetic_cifar_spec();
  SyntheticDataset d(spec, 32, 16);
  EXPECT_THROW(d.test_batch(10, 10), InvalidArgument);
  EXPECT_NO_THROW(d.test_batch(6, 10));
}

TEST(Synthetic, AttackBatchDeterministicInSeed) {
  const auto spec = synthetic_cifar_spec();
  SyntheticDataset d(spec, 64, 16);
  Batch a = d.attack_batch(8, 42);
  Batch b = d.attack_batch(8, 42);
  Batch c = d.attack_batch(8, 43);
  EXPECT_EQ(nn::max_abs_diff(a.images, b.images), 0.0f);
  EXPECT_GT(nn::max_abs_diff(a.images, c.images), 0.0f);
}

TEST(Synthetic, ImagenetSpecIsHarder) {
  const auto c = synthetic_cifar_spec();
  const auto i = synthetic_imagenet_spec();
  EXPECT_GT(i.num_classes, c.num_classes);
  EXPECT_GT(i.noise, c.noise);
}

TEST(Synthetic, ClassesAreVisuallyDistinct) {
  // Mean intra-class distance should be smaller than inter-class distance
  // (otherwise the task is unlearnable and all accuracy numbers collapse).
  const auto spec = synthetic_cifar_spec();
  SyntheticDataset d(spec, 200, 100);
  Batch b = d.test_batch(0, 100);
  const std::int64_t stride = 3 * 32 * 32;
  auto dist = [&](std::int64_t i, std::int64_t j) {
    double s = 0.0;
    for (std::int64_t k = 0; k < stride; ++k) {
      const double diff =
          b.images[i * stride + k] - b.images[j * stride + k];
      s += diff * diff;
    }
    return s;
  };
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (std::int64_t i = 0; i < 40; ++i) {
    for (std::int64_t j = i + 1; j < 40; ++j) {
      if (b.labels[static_cast<std::size_t>(i)] ==
          b.labels[static_cast<std::size_t>(j)]) {
        intra += dist(i, j);
        ++n_intra;
      } else {
        inter += dist(i, j);
        ++n_inter;
      }
    }
  }
  ASSERT_GT(n_intra, 0);
  ASSERT_GT(n_inter, 0);
  EXPECT_LT(intra / n_intra, inter / n_inter);
}

TEST(Synthetic, RejectsDegenerateSpecs) {
  auto spec = synthetic_cifar_spec();
  spec.num_classes = 1;
  EXPECT_THROW(SyntheticDataset(spec, 8, 8), InvalidArgument);
}

}  // namespace
}  // namespace radar::data
