// SignatureStore: bit-packing round trips and storage accounting.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/signature_store.h"

namespace radar::core {
namespace {

class StoreWidth : public ::testing::TestWithParam<int> {};

TEST_P(StoreWidth, RoundTripsAllPatterns) {
  const int width = GetParam();
  const std::int64_t n = 1000;
  SignatureStore store(n, width);
  Rng rng(width);
  std::vector<std::uint8_t> expected(static_cast<std::size_t>(n));
  for (std::int64_t g = 0; g < n; ++g) {
    Signature s;
    s.width = width;
    s.bits = static_cast<std::uint8_t>(rng.bits() & ((1u << width) - 1u));
    expected[static_cast<std::size_t>(g)] = s.bits;
    store.set(g, s);
  }
  for (std::int64_t g = 0; g < n; ++g) {
    const Signature s = store.get(g);
    EXPECT_EQ(s.bits, expected[static_cast<std::size_t>(g)]) << "group " << g;
    EXPECT_EQ(s.width, width);
  }
}

TEST_P(StoreWidth, OverwriteIsClean) {
  const int width = GetParam();
  SignatureStore store(10, width);
  Signature all_ones{static_cast<std::uint8_t>((1u << width) - 1u), width};
  Signature zero{0, width};
  store.set(5, all_ones);
  store.set(5, zero);
  EXPECT_EQ(store.get(5).bits, 0);
  // Neighbours untouched.
  EXPECT_EQ(store.get(4).bits, 0);
  EXPECT_EQ(store.get(6).bits, 0);
}

INSTANTIATE_TEST_SUITE_P(Widths, StoreWidth, ::testing::Values(2, 3));

TEST(SignatureStore, StorageBytesRoundUp) {
  EXPECT_EQ(SignatureStore(4, 2).storage_bytes(), 1);    // 8 bits
  EXPECT_EQ(SignatureStore(5, 2).storage_bytes(), 2);    // 10 bits
  EXPECT_EQ(SignatureStore(8, 3).storage_bytes(), 3);    // 24 bits
  EXPECT_EQ(SignatureStore(0, 2).storage_bytes(), 0);
}

TEST(SignatureStore, StaticStorageFormula) {
  // ResNet-18-scale: 11.17M weights at G=512, 2-bit signatures ≈ 5.4 KB
  // (per-layer padding pushes the real system slightly above this).
  const std::int64_t bytes =
      SignatureStore::storage_bytes_for(11166912, 512, 2);
  EXPECT_NEAR(static_cast<double>(bytes), 5454.0, 2.0);
  // ResNet-20-scale at G=8: ≈ 8.3 KB.
  const std::int64_t bytes20 = SignatureStore::storage_bytes_for(270896, 8, 2);
  EXPECT_NEAR(static_cast<double>(bytes20), 8466.0, 2.0);
}

TEST(SignatureStore, WidthMismatchRejected) {
  SignatureStore store(4, 2);
  Signature s3{0, 3};
  EXPECT_THROW(store.set(0, s3), InvalidArgument);
}

TEST(SignatureStore, RangeChecks) {
  SignatureStore store(4, 2);
  Signature s{0, 2};
  EXPECT_THROW(store.set(4, s), InvalidArgument);
  EXPECT_THROW(store.get(-1), InvalidArgument);
  EXPECT_THROW(SignatureStore(4, 1), InvalidArgument);
}

}  // namespace
}  // namespace radar::core
