// Parameterized end-to-end detection properties of the full RadarScheme
// over (group size, interleave, signature width): the security contracts
// the paper relies on, checked on a real quantized network.
#include <gtest/gtest.h>

#include <tuple>

#include "common/bits.h"
#include "core/scheme.h"

namespace radar::core {
namespace {

nn::ResNetSpec tiny_spec() {
  nn::ResNetSpec s;
  s.num_classes = 4;
  s.base_width = 8;
  s.blocks_per_stage = {1, 1};
  s.name = "tiny";
  return s;
}

class DetectionSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, bool, int>> {
 protected:
  DetectionSweep() : rng_(11), model_(tiny_spec(), rng_), qm_(model_) {}

  RadarScheme make_scheme() {
    auto [g, inter, bits] = GetParam();
    RadarConfig cfg;
    cfg.group_size = g;
    cfg.interleave = inter;
    cfg.signature_bits = bits;
    RadarScheme scheme(cfg);
    scheme.attach(qm_);
    return scheme;
  }

  Rng rng_;
  nn::ResNet model_;
  quant::QuantizedModel qm_;
};

TEST_P(DetectionSweep, EverySingleMsbFlipDetected) {
  RadarScheme scheme = make_scheme();
  const quant::ArenaSnapshot clean = qm_.snapshot();
  Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    const auto layer =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(qm_.num_layers()) - 1));
    const std::int64_t idx = rng.uniform_int(0, qm_.layer(layer).size() - 1);
    qm_.flip_bit(layer, idx, kMsb);
    const DetectionReport report = scheme.scan(qm_);
    EXPECT_TRUE(report.is_flagged(layer, scheme.layout(layer).group_of(idx)))
        << "layer " << layer << " idx " << idx;
    qm_.restore(clean);
  }
}

TEST_P(DetectionSweep, CleanStateNeverFlagged) {
  RadarScheme scheme = make_scheme();
  EXPECT_FALSE(scheme.scan(qm_).attack_detected());
}

TEST_P(DetectionSweep, TenRandomMsbFlipsMostlyDetected) {
  RadarScheme scheme = make_scheme();
  const quant::ArenaSnapshot clean = qm_.snapshot();
  Rng rng(202);
  std::int64_t detected = 0, total = 0;
  for (int round = 0; round < 10; ++round) {
    std::vector<std::pair<std::size_t, std::int64_t>> sites;
    for (int f = 0; f < 10; ++f) {
      const auto layer = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(qm_.num_layers()) - 1));
      const std::int64_t idx =
          rng.uniform_int(0, qm_.layer(layer).size() - 1);
      qm_.flip_bit(layer, idx, kMsb);
      sites.emplace_back(layer, idx);
    }
    const DetectionReport report = scheme.scan(qm_);
    detected += count_detected_flips(scheme, report, sites);
    total += 10;
    qm_.restore(clean);
    scheme.attach(qm_);  // fresh golden state per round
  }
  // The paper's detection ratios are >= 7/10 even in the worst sweep
  // point; random flips across a whole model should do at least that.
  EXPECT_GE(detected, (total * 7) / 10);
}

TEST_P(DetectionSweep, RecoveryClearsDetectionState) {
  RadarScheme scheme = make_scheme();
  const quant::ArenaSnapshot clean = qm_.snapshot();
  qm_.flip_bit(1, 3, kMsb);
  qm_.flip_bit(2, 30, kMsb);
  const DetectionReport report = scheme.scan(qm_);
  ASSERT_TRUE(report.attack_detected());
  scheme.recover(qm_, report, RecoveryPolicy::kReloadClean);
  EXPECT_FALSE(scheme.scan(qm_).attack_detected());
  qm_.restore(clean);
}

TEST_P(DetectionSweep, StorageMatchesConfiguredWidth) {
  auto [g, inter, bits] = GetParam();
  (void)inter;
  RadarScheme scheme = make_scheme();
  std::int64_t expected = 0;
  for (std::size_t li = 0; li < qm_.num_layers(); ++li) {
    const std::int64_t groups = (qm_.layer(li).size() + g - 1) / g;
    expected += (groups * bits + 7) / 8;
  }
  EXPECT_EQ(scheme.signature_storage_bytes(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DetectionSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(8, 32, 128, 512),
                       ::testing::Bool(), ::testing::Values(2, 3)),
    [](const ::testing::TestParamInfo<DetectionSweep::ParamType>& info) {
      return "G" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_ilv" : "_contig") + "_bits" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace radar::core
