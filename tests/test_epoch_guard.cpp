// EpochGuard + ScanScheduler under real races: optimistic scans must
// never report a torn read as tampering (zero false positives while a
// writer hammers the arena) and must still flag every real flip within
// one validated sweep (zero false negatives). Also covers the seqlock
// protocol edges (odd-epoch bail, overlap invalidation, disjoint-range
// independence) and the quiescent fallback path. The scheduler runs
// with budget_bytes = 1, which degenerates to exactly one chunk per
// slice — the step-at-a-time granularity these races need.
//
// This test runs under TSan in CI with tests/tsan.supp suppressing the
// *intentional* data race between scan reads and writer-section writes —
// the epoch protocol, not the happens-before graph, is what makes those
// reads sound, and this test is the evidence.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/bits.h"
#include "core/scan_scheduler.h"
#include "core/scheme_registry.h"
#include "quant/epoch_guard.h"

namespace radar::quant {
namespace {

TEST(EpochGuard, CoversRangeWithConfiguredShards) {
  EpochGuard g(10000, 4096);  // 3 shards
  std::vector<std::uint64_t> snap;
  EXPECT_TRUE(g.read_begin(0, 10000, snap));
  EXPECT_EQ(snap.size(), 3u);
  EXPECT_TRUE(g.read_validate(0, 10000, snap));
  EXPECT_EQ(g.epoch(0), 0u);
}

TEST(EpochGuard, ReadBeginBailsInsideWriterSection) {
  EpochGuard g(8192, 4096);
  std::vector<std::uint64_t> snap;
  {
    EpochGuard::WriterSection ws(g, 0, 100);
    EXPECT_FALSE(g.read_begin(0, 100, snap)) << "epoch is odd mid-write";
    // A disjoint shard is unaffected.
    EXPECT_TRUE(g.read_begin(4096, 8192, snap));
    EXPECT_TRUE(g.read_validate(4096, 8192, snap));
  }
  EXPECT_TRUE(g.read_begin(0, 100, snap));
  EXPECT_TRUE(g.read_validate(0, 100, snap));
  EXPECT_EQ(g.writer_sections(), 1u);
}

TEST(EpochGuard, OverlappingWriterInvalidatesSnapshot) {
  EpochGuard g(8192, 4096);
  std::vector<std::uint64_t> snap;
  ASSERT_TRUE(g.read_begin(0, 8192, snap));
  { EpochGuard::WriterSection ws(g, 0, 10); }
  EXPECT_FALSE(g.read_validate(0, 8192, snap))
      << "a completed writer section must invalidate the covered reader";
  // Re-begin sees the settled (even) epochs again.
  ASSERT_TRUE(g.read_begin(0, 8192, snap));
  EXPECT_TRUE(g.read_validate(0, 8192, snap));
}

TEST(EpochGuard, LockWritersExcludesWriterSections) {
  EpochGuard g(4096, 4096);
  std::atomic<bool> writer_done{false};
  std::thread writer;
  {
    auto lock = g.lock_writers();
    writer = std::thread([&g, &writer_done] {
      EpochGuard::WriterSection ws(g, 0, 8);
      writer_done.store(true, std::memory_order_release);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(writer_done.load(std::memory_order_acquire))
        << "writer entered its section while writers were locked out";
  }
  writer.join();
  EXPECT_TRUE(writer_done.load(std::memory_order_acquire));
}

// ---------------------------------------------------------------------
// Race-stress fixture: a real quantized model with a guard-enabled arena
// and an attached scheme, scanned chunk-by-chunk by a ScanScheduler.
// ---------------------------------------------------------------------
nn::ResNetSpec tiny_spec() {
  nn::ResNetSpec s;
  s.num_classes = 4;
  s.base_width = 8;
  s.blocks_per_stage = {1, 1};
  s.name = "tiny";
  return s;
}

class EpochScanStressTest : public ::testing::Test {
 protected:
  EpochScanStressTest() : rng_(31), model_(tiny_spec(), rng_), qm_(model_) {
    scheme_ = core::SchemeRegistry::instance().create(
        "radar2", core::SchemeParams{.group_size = 32});
    scheme_->attach(qm_);
    qm_.enable_epoch_guard(/*shard_bytes=*/1024);
    core::ScanScheduler::Config cfg;
    cfg.chunk_bytes = 2048;
    cfg.budget_bytes = 1;  // exactly one chunk per slice
    cfg.max_retries = 8;
    scanner_.plan(*scheme_, cfg);
  }

  /// Scan one chunk and fold any flags into `found` (per layer).
  core::ScanScheduler::Slice step_into(
      std::vector<std::vector<std::int64_t>>* found) {
    const auto slice = scanner_.run_slice(qm_);
    if (found != nullptr)
      for (const auto& [layer, group] : scanner_.slice_flags())
        (*found)[layer].push_back(group);
    return slice;
  }

  Rng rng_;
  nn::ResNet model_;
  quant::QuantizedModel qm_;
  std::unique_ptr<core::IntegrityScheme> scheme_;
  core::ScanScheduler scanner_;
};

TEST_F(EpochScanStressTest, NoFalsePositivesWhileWriterHammersArena) {
  // The writer corrupts and restores bytes inside writer sections, so at
  // every section boundary the arena is bit-clean. Any scan verdict the
  // epoch protocol lets through (validated optimistic scan, or quiescent
  // fallback) must therefore be clean: a single flagged group would be a
  // torn read promoted to a detection — the exact bug the guard exists
  // to prevent.
  std::atomic<bool> stop{false};
  std::thread writer([this, &stop] {
    Rng wrng(77);
    const std::size_t layers = qm_.num_layers();
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t layer = static_cast<std::size_t>(
          wrng.uniform_int(0, static_cast<std::int64_t>(layers) - 1));
      const std::int64_t idx =
          wrng.uniform_int(0, qm_.layer(layer).size() - 1);
      const auto [b0, b1] = qm_.layer_byte_range(layer);
      EpochGuard::WriterSection ws(*qm_.epoch_guard(), b0, b1);
      qm_.flip_bit(layer, idx, kMsb);
      qm_.flip_bit(layer, idx, kMsb);  // restore before leaving
    }
  });

  constexpr int kSteps = 4000;
  for (int i = 0; i < kSteps; ++i) {
    const auto slice = step_into(nullptr);
    EXPECT_FALSE(slice.flagged)
        << "false positive at step " << i << " (cursor now "
        << scanner_.cursor() << ")";
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GE(scanner_.sweeps(), 1u) << "stress must cover full sweeps";
  // The writer ran concurrently the whole time; at least some scans
  // should have collided (purely advisory — timing dependent).
  SUCCEED() << "epoch_retries=" << scanner_.epoch_retries()
            << " fallbacks=" << scanner_.epoch_fallbacks();
}

TEST_F(EpochScanStressTest, DetectsEveryRealFlipWithinOneSweep) {
  // Leave real corruption behind (still under writer sections, as any
  // legitimate writer would), then compare one full epoch-validated
  // sweep against the serial ground-truth scan.
  {
    const auto [b0, b1] = qm_.layer_byte_range(0);
    EpochGuard::WriterSection ws(*qm_.epoch_guard(), b0, b1);
    qm_.flip_bit(0, 3, kMsb);
  }
  {
    const auto [b0, b1] = qm_.layer_byte_range(2);
    EpochGuard::WriterSection ws(*qm_.epoch_guard(), b0, b1);
    qm_.flip_bit(2, 17, kMsb);
    qm_.flip_bit(2, 41, kMsb);
  }
  const core::DetectionReport truth = scheme_->scan(qm_);
  ASSERT_TRUE(truth.attack_detected());

  std::vector<std::vector<std::int64_t>> found(qm_.num_layers());
  for (std::size_t i = 0; i < scanner_.num_chunks(); ++i) step_into(&found);
  for (std::size_t li = 0; li < found.size(); ++li)
    std::sort(found[li].begin(), found[li].end());
  EXPECT_EQ(found, truth.flagged)
      << "one sweep must flag exactly what the serial scan flags";
  // The per-sweep report the scheduler accumulated must match too — this
  // is the byte-identity the campaign and serve layers rely on.
  EXPECT_EQ(scanner_.last_sweep_report().flagged, truth.flagged);
}

TEST_F(EpochScanStressTest, QuiescentFallbackStillDetects) {
  // max_retries = 0 forces every shard through the lock_writers()
  // fallback — the path a pathological writer would push the scanner
  // into. Detection must be unimpaired.
  {
    const auto [b0, b1] = qm_.layer_byte_range(1);
    EpochGuard::WriterSection ws(*qm_.epoch_guard(), b0, b1);
    qm_.flip_bit(1, 5, kMsb);
  }
  const core::DetectionReport truth = scheme_->scan(qm_);
  std::vector<std::vector<std::int64_t>> found(qm_.num_layers());
  const std::uint64_t fallbacks_before = scanner_.epoch_fallbacks();
  scanner_.set_max_retries(0);
  for (std::size_t i = 0; i < scanner_.num_chunks(); ++i) step_into(&found);
  EXPECT_EQ(scanner_.epoch_fallbacks(),
            fallbacks_before + scanner_.num_chunks());
  for (auto& f : found) std::sort(f.begin(), f.end());
  EXPECT_EQ(found, truth.flagged);
}

TEST_F(EpochScanStressTest, ConcurrentWriterNeverHidesPersistentFlips) {
  // Zero false negatives under contention: persistent corruption in one
  // layer, a busy (clean) writer in another. Every completed sweep must
  // include the corrupted groups, however many scans the writer spoils.
  {
    const auto [b0, b1] = qm_.layer_byte_range(3);
    EpochGuard::WriterSection ws(*qm_.epoch_guard(), b0, b1);
    qm_.flip_bit(3, 2, kMsb);
  }
  const core::DetectionReport truth = scheme_->scan(qm_);

  std::atomic<bool> stop{false};
  std::thread writer([this, &stop] {
    Rng wrng(99);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t idx = wrng.uniform_int(0, qm_.layer(0).size() - 1);
      const auto [b0, b1] = qm_.layer_byte_range(0);
      EpochGuard::WriterSection ws(*qm_.epoch_guard(), b0, b1);
      qm_.flip_bit(0, idx, kMsb);
      qm_.flip_bit(0, idx, kMsb);
    }
  });

  for (int sweep = 0; sweep < 3; ++sweep) {
    std::vector<std::vector<std::int64_t>> found(qm_.num_layers());
    for (std::size_t i = 0; i < scanner_.num_chunks(); ++i)
      step_into(&found);
    for (auto& f : found) std::sort(f.begin(), f.end());
    EXPECT_EQ(found, truth.flagged) << "sweep " << sweep;
    EXPECT_EQ(scanner_.last_sweep_report().flagged, truth.flagged)
        << "sweep " << sweep;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
}  // namespace radar::quant
