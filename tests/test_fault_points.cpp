// Chaos fault-injection registry: spec parsing, deterministic firing
// under a seed, max_fires caps, disarm semantics and the stats/JSON
// surface the daemon's CHAOS command exposes.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/fault_points.h"

namespace radar::chaos {
namespace {

/// Every test leaves the process-global registry clean — chaos must not
/// leak into unrelated suites running in the same binary.
class FaultPointsTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::instance().disarm_all(); }
  void TearDown() override { FaultRegistry::instance().disarm_all(); }
};

TEST_F(FaultPointsTest, UnarmedNeverFires) {
  auto& reg = FaultRegistry::instance();
  EXPECT_EQ(reg.armed(), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(reg.fire("nope.never"));
  EXPECT_TRUE(reg.stats().empty());
}

TEST_F(FaultPointsTest, ProbabilityEndpoints) {
  auto& reg = FaultRegistry::instance();
  reg.arm("always", FaultSpec{.prob = 1.0, .seed = 1});
  reg.arm("never", FaultSpec{.prob = 0.0, .seed = 1});
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(reg.fire("always"));
    EXPECT_FALSE(reg.fire("never"));
  }
  EXPECT_EQ(reg.armed(), 2u);
}

TEST_F(FaultPointsTest, SameSeedSameVerdictSequence) {
  auto& reg = FaultRegistry::instance();
  auto run = [&reg](std::uint64_t seed) {
    reg.arm("coin", FaultSpec{.prob = 0.5, .seed = seed});
    std::vector<bool> verdicts;
    for (int i = 0; i < 256; ++i) verdicts.push_back(reg.fire("coin"));
    reg.disarm("coin");
    return verdicts;
  };
  const auto a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b) << "same seed must replay the same fire sequence";
  EXPECT_NE(a, c) << "different seeds must diverge";
  // A fair-ish coin: not all-true, not all-false.
  const std::size_t fires =
      static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 64u);
  EXPECT_LT(fires, 192u);
}

TEST_F(FaultPointsTest, MaxFiresCapsThenGoesQuiet) {
  auto& reg = FaultRegistry::instance();
  reg.arm("capped", FaultSpec{.prob = 1.0, .seed = 9, .max_fires = 3});
  int fired = 0;
  for (int i = 0; i < 20; ++i) fired += reg.fire("capped") ? 1 : 0;
  EXPECT_EQ(fired, 3);
  const auto st = reg.stats();
  ASSERT_EQ(st.size(), 1u);
  EXPECT_EQ(st[0].fires, 3u);
  EXPECT_EQ(st[0].evals, 20u);
}

TEST_F(FaultPointsTest, ParamFallsBackWhenUnarmedOrZero) {
  auto& reg = FaultRegistry::instance();
  EXPECT_EQ(reg.param("stall", 123), 123) << "unarmed: fallback";
  reg.arm("stall", FaultSpec{.prob = 1.0, .seed = 0, .param = 0});
  EXPECT_EQ(reg.param("stall", 123), 123) << "param 0 means 'default'";
  reg.arm("stall", FaultSpec{.prob = 1.0, .seed = 0, .param = 777});
  EXPECT_EQ(reg.param("stall", 123), 777);
}

TEST_F(FaultPointsTest, ArmFromSpecParsesAllFields) {
  auto& reg = FaultRegistry::instance();
  reg.arm_from_spec("scanner.stall:0.25:42:1500:2,worker.exception:1:7");
  const auto st = reg.stats();  // sorted by name
  ASSERT_EQ(st.size(), 2u);
  EXPECT_EQ(st[0].name, "scanner.stall");
  EXPECT_DOUBLE_EQ(st[0].spec.prob, 0.25);
  EXPECT_EQ(st[0].spec.seed, 42u);
  EXPECT_EQ(st[0].spec.param, 1500);
  EXPECT_EQ(st[0].spec.max_fires, 2);
  EXPECT_EQ(st[1].name, "worker.exception");
  EXPECT_DOUBLE_EQ(st[1].spec.prob, 1.0);
  EXPECT_EQ(st[1].spec.seed, 7u);
  EXPECT_EQ(st[1].spec.param, 0);
  EXPECT_EQ(st[1].spec.max_fires, -1);
}

TEST_F(FaultPointsTest, MalformedSpecsThrow) {
  auto& reg = FaultRegistry::instance();
  for (const char* bad :
       {"nocolons", "point:", "point:notanumber:1", "point:0.5",
        "point:0.5:notanumber", "point:0.5:1:alsobad", ":0.5:1",
        "point:1.5:1" /* prob out of range */}) {
    EXPECT_THROW(reg.arm_from_spec(bad), radar::Error) << bad;
  }
  // A throwing clause must not leave later tests poisoned.
  reg.disarm_all();
  EXPECT_EQ(reg.armed(), 0u);
}

TEST_F(FaultPointsTest, DisarmRestoresFastPath) {
  auto& reg = FaultRegistry::instance();
  reg.arm("p", FaultSpec{.prob = 1.0, .seed = 0});
  EXPECT_TRUE(reg.fire("p"));
  EXPECT_TRUE(reg.disarm("p"));
  EXPECT_FALSE(reg.disarm("p")) << "second disarm reports not-armed";
  EXPECT_EQ(reg.armed(), 0u);
  EXPECT_FALSE(reg.fire("p"));
}

TEST_F(FaultPointsTest, ReArmResetsCounters) {
  auto& reg = FaultRegistry::instance();
  reg.arm("p", FaultSpec{.prob = 1.0, .seed = 0});
  for (int i = 0; i < 5; ++i) reg.fire("p");
  reg.arm("p", FaultSpec{.prob = 1.0, .seed = 0});
  const auto st = reg.stats();
  ASSERT_EQ(st.size(), 1u);
  EXPECT_EQ(st[0].evals, 0u);
  EXPECT_EQ(st[0].fires, 0u);
}

TEST_F(FaultPointsTest, JsonListsArmedPoints) {
  auto& reg = FaultRegistry::instance();
  EXPECT_EQ(reg.to_json(), "{\"points\":[]}");
  reg.arm("b.point", FaultSpec{.prob = 0.5, .seed = 3, .param = 10});
  reg.arm("a.point", FaultSpec{.prob = 1.0, .seed = 4});
  reg.fire("a.point");
  const std::string j = reg.to_json();
  // Sorted by name, with live counters.
  const auto pa = j.find("\"name\":\"a.point\"");
  const auto pb = j.find("\"name\":\"b.point\"");
  ASSERT_NE(pa, std::string::npos) << j;
  ASSERT_NE(pb, std::string::npos) << j;
  EXPECT_LT(pa, pb);
  EXPECT_NE(j.find("\"evals\":1"), std::string::npos) << j;
  EXPECT_NE(j.find("\"fires\":1"), std::string::npos) << j;
}

TEST_F(FaultPointsTest, ArmRejectsBadProbAndEmptyName) {
  auto& reg = FaultRegistry::instance();
  EXPECT_THROW(reg.arm("p", FaultSpec{.prob = -0.1}), radar::Error);
  EXPECT_THROW(reg.arm("p", FaultSpec{.prob = 1.1}), radar::Error);
  EXPECT_THROW(reg.arm("", FaultSpec{}), radar::Error);
}

}  // namespace
}  // namespace radar::chaos
