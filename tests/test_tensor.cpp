// Tensor container: shapes, arithmetic, factories, invariants.
#include <gtest/gtest.h>

#include "common/error.h"
#include "nn/tensor.h"

namespace radar::nn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ShapeAccessors) {
  Tensor t({4, 3, 2, 5});
  EXPECT_EQ(t.rank(), 4u);
  EXPECT_EQ(t.dim(0), 4);
  EXPECT_EQ(t.dim(3), 5);
  EXPECT_EQ(t.numel(), 120);
  EXPECT_EQ(t.shape_str(), "[4, 3, 2, 5]");
  EXPECT_THROW(t.dim(4), InvalidArgument);
}

TEST(Tensor, Idx4RowMajor) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.idx4(0, 0, 0, 0), 0);
  EXPECT_EQ(t.idx4(0, 0, 0, 1), 1);
  EXPECT_EQ(t.idx4(0, 0, 1, 0), 5);
  EXPECT_EQ(t.idx4(0, 1, 0, 0), 20);
  EXPECT_EQ(t.idx4(1, 0, 0, 0), 60);
  EXPECT_EQ(t.idx4(1, 2, 3, 4), 119);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  t.reshape({3, 2});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t[t.idx2(2, 1)], 6.0f);
  EXPECT_THROW(t.reshape({4, 2}), InvalidArgument);
}

TEST(Tensor, FillAndZero) {
  Tensor t({3, 3});
  t.fill(2.5f);
  EXPECT_FLOAT_EQ(t.sum(), 22.5f);
  t.zero();
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a = Tensor::from_vector({3}, {1, 2, 3});
  Tensor b = Tensor::from_vector({3}, {10, 20, 30});
  Tensor c = a + b;
  EXPECT_FLOAT_EQ(c[0], 11.0f);
  EXPECT_FLOAT_EQ(c[2], 33.0f);
  Tensor d = b - a;
  EXPECT_FLOAT_EQ(d[1], 18.0f);
  Tensor e = 2.0f * a;
  EXPECT_FLOAT_EQ(e[2], 6.0f);
  a.axpy_(0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2, 2}), b({4});
  EXPECT_THROW(a.add_(b), InvalidArgument);
  EXPECT_THROW(a.sub_(b), InvalidArgument);
  EXPECT_THROW(a.axpy_(1.0f, b), InvalidArgument);
  EXPECT_THROW(max_abs_diff(a, b), InvalidArgument);
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::from_vector({4}, {-3, 1, 2, -0.5f});
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.max(), 2.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 3.0f);
  EXPECT_FLOAT_EQ(t.mean(), -0.125f);
  EXPECT_FLOAT_EQ(t.sq_norm(), 9.0f + 1.0f + 4.0f + 0.25f);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(123);
  Tensor t = Tensor::randn({10000}, rng, 2.0f);
  EXPECT_NEAR(t.mean(), 0.0f, 0.1f);
  const float var = t.sq_norm() / 10000.0f;
  EXPECT_NEAR(var, 4.0f, 0.3f);
}

TEST(Tensor, KaimingScalesWithFanIn) {
  Rng rng(5);
  Tensor t = Tensor::kaiming({64, 32}, 32, rng);
  const float var = t.sq_norm() / static_cast<float>(t.numel());
  EXPECT_NEAR(var, 2.0f / 32.0f, 0.02f);
}

TEST(Tensor, UniformBounds) {
  Rng rng(9);
  Tensor t = Tensor::uniform({1000}, rng, -1.0f, 2.0f);
  EXPECT_GE(t.min(), -1.0f);
  EXPECT_LE(t.max(), 2.0f);
  EXPECT_GT(t.max(), 1.0f);  // should reach near the upper bound
}

TEST(Tensor, FromVectorValidatesCount) {
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1, 2, 3}), InvalidArgument);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({3});
  EXPECT_THROW(t.at(3), InvalidArgument);
  EXPECT_THROW(t.at(-1), InvalidArgument);
  EXPECT_NO_THROW(t.at(2));
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a = Tensor::from_vector({3}, {1, 2, 3});
  Tensor b = Tensor::from_vector({3}, {1, 2.5f, 2});
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.0f);
}

TEST(Tensor, NegativeDimensionThrows) {
  EXPECT_THROW(Tensor({2, -1}), InvalidArgument);
}

}  // namespace
}  // namespace radar::nn
