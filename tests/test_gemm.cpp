// GEMM kernels vs a naive reference, across transposes, accumulation and
// threading (parameterized shape sweep).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "nn/gemm.h"

namespace radar::nn {
namespace {

std::vector<float> random_matrix(std::int64_t n, Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(n));
  for (auto& v : m) v = static_cast<float>(rng.normal());
  return m;
}

void naive_gemm(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(GemmShapes, MatchesNaiveReference) {
  const auto [m, k, n, parallel] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + k * 101 + n));
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> ref(static_cast<std::size_t>(m * n));
  naive_gemm(a.data(), b.data(), ref.data(), m, k, n);

  std::vector<float> c(static_cast<std::size_t>(m * n));
  gemm(a.data(), b.data(), c.data(), m, k, n, false, parallel);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_NEAR(c[i], ref[i], 1e-3f) << "at " << i;
}

TEST_P(GemmShapes, TransposedBMatchesNaive) {
  const auto [m, k, n, parallel] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m + k + n));
  const auto a = random_matrix(m * k, rng);
  const auto bt = random_matrix(n * k, rng);  // B^T stored [n x k]
  // Reference: build B from B^T.
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (std::int64_t j = 0; j < n; ++j)
    for (std::int64_t p = 0; p < k; ++p) b[p * n + j] = bt[j * k + p];
  std::vector<float> ref(static_cast<std::size_t>(m * n));
  naive_gemm(a.data(), b.data(), ref.data(), m, k, n);

  std::vector<float> c(static_cast<std::size_t>(m * n));
  gemm_bt(a.data(), bt.data(), c.data(), m, k, n, false, parallel);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_NEAR(c[i], ref[i], 1e-3f) << "at " << i;
}

TEST_P(GemmShapes, TransposedAMatchesNaive) {
  const auto [m, k, n, parallel] = GetParam();
  Rng rng(static_cast<std::uint64_t>(3 * m + k - n + 1000));
  const auto at = random_matrix(k * m, rng);  // A^T stored [k x m]
  const auto b = random_matrix(k * n, rng);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t p = 0; p < k; ++p) a[i * k + p] = at[p * m + i];
  std::vector<float> ref(static_cast<std::size_t>(m * n));
  naive_gemm(a.data(), b.data(), ref.data(), m, k, n);

  std::vector<float> c(static_cast<std::size_t>(m * n));
  gemm_at(at.data(), b.data(), c.data(), m, k, n, false, parallel);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_NEAR(c[i], ref[i], 1e-3f) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1, false),
                      std::make_tuple(3, 5, 7, false),
                      std::make_tuple(16, 16, 16, false),
                      std::make_tuple(1, 64, 33, false),
                      std::make_tuple(64, 1, 9, false),
                      std::make_tuple(37, 41, 43, false),
                      std::make_tuple(128, 96, 64, true),
                      std::make_tuple(200, 64, 100, true)));

TEST(Gemm, AccumulateAddsOntoExisting) {
  Rng rng(1);
  const auto a = random_matrix(4 * 3, rng);
  const auto b = random_matrix(3 * 2, rng);
  std::vector<float> once(8, 0.0f), twice(8, 0.0f);
  gemm(a.data(), b.data(), once.data(), 4, 3, 2);
  gemm(a.data(), b.data(), twice.data(), 4, 3, 2, /*accumulate=*/false);
  gemm(a.data(), b.data(), twice.data(), 4, 3, 2, /*accumulate=*/true);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(twice[i], 2.0f * once[i], 1e-4f);
}

TEST(Gemm, TransposedBFloatAccumulationStaysAccurate) {
  // gemm_bt now accumulates in float like gemm / gemm_at (it used to
  // widen to double); training-scale reduction depths must stay within a
  // float-roundoff band of the double reference.
  Rng rng(3);
  const std::int64_t m = 8, k = 512, n = 12;
  const auto a = random_matrix(m * k, rng);
  const auto bt = random_matrix(n * k, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  gemm_bt(a.data(), bt.data(), c.data(), m, k, n, false, false);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double ref = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        ref += static_cast<double>(a[i * k + p]) * bt[j * k + p];
      // |err| <~ k * eps * sum|terms|; sqrt(k)-scale values keep this tiny.
      EXPECT_NEAR(c[i * n + j], static_cast<float>(ref), 5e-3f)
          << "at " << i << "," << j;
    }
  }
}

TEST(Gemm, TransposedBParallelAndSerialAgreeBitwise) {
  // Rows are computed independently, so chunking across the pool must not
  // change a single bit (PBFA gradient ranking depends on this).
  Rng rng(4);
  const std::int64_t m = 120, k = 64, n = 48;
  const auto a = random_matrix(m * k, rng);
  const auto bt = random_matrix(n * k, rng);
  std::vector<float> cs(static_cast<std::size_t>(m * n)),
      cp(static_cast<std::size_t>(m * n));
  gemm_bt(a.data(), bt.data(), cs.data(), m, k, n, false, /*parallel=*/false);
  gemm_bt(a.data(), bt.data(), cp.data(), m, k, n, false, /*parallel=*/true);
  for (std::size_t i = 0; i < cs.size(); ++i) EXPECT_EQ(cs[i], cp[i]);
}

TEST(Gemm, ZeroValuesContributeNothing) {
  // The old kernels special-cased av == 0.0f with a branch; the branchless
  // kernels must treat explicit zeros identically (including -0.0f).
  const std::int64_t m = 2, k = 3, n = 4;
  std::vector<float> a = {0.0f, -0.0f, 2.0f, 0.0f, 0.0f, 0.0f};
  Rng rng(5);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> ref(static_cast<std::size_t>(m * n));
  naive_gemm(a.data(), b.data(), ref.data(), m, k, n);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  gemm(a.data(), b.data(), c.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], ref[i], 1e-6f);
}

TEST(Gemm, ParallelAndSerialAgree) {
  Rng rng(2);
  const std::int64_t m = 150, k = 70, n = 90;
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> cs(static_cast<std::size_t>(m * n)),
      cp(static_cast<std::size_t>(m * n));
  gemm(a.data(), b.data(), cs.data(), m, k, n, false, /*parallel=*/false);
  gemm(a.data(), b.data(), cp.data(), m, k, n, false, /*parallel=*/true);
  for (std::size_t i = 0; i < cs.size(); ++i) EXPECT_EQ(cs[i], cp[i]);
}

}  // namespace
}  // namespace radar::nn
