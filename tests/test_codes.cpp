// Integrity-code baselines: CRC known-answer + property tests, Hamming
// SEC-DED behaviour, Fletcher/addition checksums.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "codes/crc.h"
#include "codes/fletcher.h"
#include "codes/hamming.h"
#include "common/cpu_features.h"
#include "common/error.h"
#include "common/rng.h"

namespace radar::codes {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Crc, Crc16XmodemKnownAnswer) {
  // CRC-16/XMODEM (poly 0x1021, init 0, no reflection): "123456789"
  // -> 0x31C3. Our engine implements exactly that convention.
  Crc crc(CrcSpec::crc16_ccitt());
  const auto data = bytes_of("123456789");
  EXPECT_EQ(crc.compute(data), 0x31C3u);
}

TEST(Crc, TableMatchesBitwiseAcrossSpecs) {
  Rng rng(1);
  std::vector<std::uint8_t> data(257);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.bits() & 0xFF);
  for (const auto& spec :
       {CrcSpec::crc7(), CrcSpec::crc10(), CrcSpec::crc13(),
        CrcSpec::crc16_ccitt(), CrcSpec::crc32()}) {
    Crc crc(spec);
    EXPECT_EQ(crc.compute(data), crc.compute_bitwise(data)) << spec.name;
  }
}

TEST(Crc, SlicingMatchesBitwiseOverRandomBuffers) {
  // Differential battery for the slicing kernels: every spec (narrow
  // widths included — they share the same left-aligned tables), every
  // length 0..64 plus larger odd sizes, fresh random bytes per length,
  // under every dispatch level this machine supports (scalar takes the
  // slicing-by-8 kernel, wider tiers slicing-by-16). Covers both wide
  // kernels, the byte-at-a-time tail, and their seams.
  for (int l = 0; l < cpu::kNumSimdLevels; ++l) {
    const auto lvl = static_cast<cpu::SimdLevel>(l);
    if (!cpu::level_supported(lvl)) continue;
    SCOPED_TRACE(cpu::level_name(lvl));
    cpu::ScopedSimdLevel guard(lvl);
    Rng rng(99);
    for (const auto& spec :
         {CrcSpec::crc7(), CrcSpec::crc10(), CrcSpec::crc13(),
          CrcSpec::crc16_ccitt(), CrcSpec::crc32()}) {
      Crc crc(spec);
      for (std::size_t len = 0; len <= 64; ++len) {
        std::vector<std::uint8_t> data(len);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.bits() & 0xFF);
        EXPECT_EQ(crc.compute(data), crc.compute_bitwise(data))
            << spec.name << " len=" << len;
      }
      for (const std::size_t len : {255u, 512u, 1021u, 4096u}) {
        std::vector<std::uint8_t> data(len);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.bits() & 0xFF);
        EXPECT_EQ(crc.compute(data), crc.compute_bitwise(data))
            << spec.name << " len=" << len;
      }
    }
  }
}

TEST(Crc, EmptyDataIsZero) {
  Crc crc(CrcSpec::crc13());
  EXPECT_EQ(crc.compute({}), 0u);
}

TEST(Crc, ResultFitsWidth) {
  Rng rng(2);
  std::vector<std::uint8_t> data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.bits() & 0xFF);
  for (const auto& spec : {CrcSpec::crc7(), CrcSpec::crc10(), CrcSpec::crc13()}) {
    Crc crc(spec);
    EXPECT_LT(crc.compute(data), 1u << spec.width) << spec.name;
  }
}

class CrcErrorDetection : public ::testing::TestWithParam<int> {};

TEST_P(CrcErrorDetection, DetectsAllSingleBitErrors) {
  // Any CRC detects every single-bit error.
  const int size = GetParam();
  Rng rng(static_cast<std::uint64_t>(size));
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.bits() & 0xFF);
  Crc crc(CrcSpec::crc13());
  const auto clean = crc.compute(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc.compute(data), clean)
          << "missed single error at " << byte << ":" << bit;
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

TEST_P(CrcErrorDetection, DetectsSampledDoubleBitErrors) {
  // HD=3 at these block lengths: every 2-bit error detected (sampled).
  const int size = GetParam();
  Rng rng(static_cast<std::uint64_t>(size) * 31);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.bits() & 0xFF);
  Crc crc(CrcSpec::crc13());
  const auto clean = crc.compute(data);
  const std::int64_t total_bits = size * 8;
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = rng.uniform_int(0, total_bits - 1);
    auto b = rng.uniform_int(0, total_bits - 1);
    if (a == b) b = (b + 1) % total_bits;
    data[static_cast<std::size_t>(a / 8)] ^=
        static_cast<std::uint8_t>(1u << (a % 8));
    data[static_cast<std::size_t>(b / 8)] ^=
        static_cast<std::uint8_t>(1u << (b % 8));
    EXPECT_NE(crc.compute(data), clean) << "missed double " << a << "," << b;
    data[static_cast<std::size_t>(a / 8)] ^=
        static_cast<std::uint8_t>(1u << (a % 8));
    data[static_cast<std::size_t>(b / 8)] ^=
        static_cast<std::uint8_t>(1u << (b % 8));
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CrcErrorDetection,
                         ::testing::Values(8, 64, 512));

TEST(Crc, RejectsBadSpecs) {
  CrcSpec bad{2, 0x3, "too-narrow"};
  EXPECT_THROW(Crc{bad}, radar::InvalidArgument);
  CrcSpec wide_poly{7, 0xFF, "poly-overflow"};
  EXPECT_THROW(Crc{wide_poly}, radar::InvalidArgument);
}

TEST(Crc, Crc10DetectsDoubleErrorsAt512Bits) {
  // CRC-10's role in the paper: protect the 512 MSBs of a G=512 group.
  // Our generator is primitive (order 1023 > 512), so all double-bit
  // errors within that span must be caught.
  Rng rng(77);
  std::vector<std::uint8_t> data(64);  // 512 bits
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.bits() & 0xFF);
  Crc crc(CrcSpec::crc10());
  const auto clean = crc.compute(data);
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = rng.uniform_int(0, 511);
    auto b = rng.uniform_int(0, 511);
    if (a == b) b = (b + 1) % 512;
    data[static_cast<std::size_t>(a / 8)] ^= static_cast<std::uint8_t>(1u << (a % 8));
    data[static_cast<std::size_t>(b / 8)] ^= static_cast<std::uint8_t>(1u << (b % 8));
    EXPECT_NE(crc.compute(data), clean);
    data[static_cast<std::size_t>(a / 8)] ^= static_cast<std::uint8_t>(1u << (a % 8));
    data[static_cast<std::size_t>(b / 8)] ^= static_cast<std::uint8_t>(1u << (b % 8));
  }
}

TEST(Crc, DifferentPolynomialsDisagree) {
  const auto data = bytes_of("radar");
  Crc a(CrcSpec::crc13()), b(CrcSpec::crc16_ccitt());
  EXPECT_NE(a.compute(data), b.compute(data));
}

TEST(Hamming, ParityBitCounts) {
  // Classic table: 64 data bits -> 7 parity (+1 overall = 8 stored);
  // 4096 data bits -> 13 parity (the numbers quoted in §VII.B).
  EXPECT_EQ(HammingSecDed::parity_bits_for(64), 7);
  EXPECT_EQ(HammingSecDed::parity_bits_for(4096), 13);
  EXPECT_EQ(HammingSecDed::parity_bits_for(1), 2);
  EXPECT_EQ(HammingSecDed(64).storage_bits(), 8);
  EXPECT_EQ(HammingSecDed(4096).storage_bits(), 14);
}

TEST(Hamming, CleanDataChecksOk) {
  Rng rng(3);
  std::vector<std::uint8_t> data(8);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.bits() & 0xFF);
  HammingSecDed code(64);
  const auto check = code.encode(data);
  const auto r = code.check(data, check);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.corrected);
  EXPECT_FALSE(r.double_error);
}

TEST(Hamming, SingleErrorFlaggedAsCorrectable) {
  Rng rng(4);
  std::vector<std::uint8_t> data(8);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.bits() & 0xFF);
  HammingSecDed code(64);
  const auto check = code.encode(data);
  for (int bit = 0; bit < 64; bit += 5) {
    data[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    const auto r = code.check(data, check);
    EXPECT_TRUE(r.corrected) << "bit " << bit;
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.double_error);
    data[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

TEST(Hamming, DoubleErrorDetectedNotCorrected) {
  Rng rng(5);
  std::vector<std::uint8_t> data(8);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.bits() & 0xFF);
  HammingSecDed code(64);
  const auto check = code.encode(data);
  int detected = 0, trials = 0;
  for (int a = 0; a < 64; a += 7) {
    for (int b = a + 3; b < 64; b += 11) {
      data[static_cast<std::size_t>(a / 8)] ^=
          static_cast<std::uint8_t>(1u << (a % 8));
      data[static_cast<std::size_t>(b / 8)] ^=
          static_cast<std::uint8_t>(1u << (b % 8));
      const auto r = code.check(data, check);
      ++trials;
      if (r.double_error) ++detected;
      EXPECT_FALSE(r.ok);
      data[static_cast<std::size_t>(a / 8)] ^=
          static_cast<std::uint8_t>(1u << (a % 8));
      data[static_cast<std::size_t>(b / 8)] ^=
          static_cast<std::uint8_t>(1u << (b % 8));
    }
  }
  EXPECT_EQ(detected, trials);
}

TEST(Hamming, I8ConvenienceMatchesBytes) {
  std::vector<std::int8_t> w = {-5, 17, -128, 127, 0, 33, -1, 64};
  HammingSecDed code(64);
  const auto c1 = code.encode_i8(w);
  const auto r = code.check_i8(w, c1);
  EXPECT_TRUE(r.ok);
}

TEST(Fletcher, KnownAnswers) {
  // Standard example: "abcde" -> Fletcher-16 = 0xC8F0.
  EXPECT_EQ(fletcher16(bytes_of("abcde")), 0xC8F0);
  EXPECT_EQ(fletcher16(bytes_of("abcdef")), 0x2057);
}

TEST(Fletcher, F32DetectsReordering) {
  // Position sensitivity is Fletcher's advantage over plain addition.
  const auto a = bytes_of("AB");
  const auto b = bytes_of("BA");
  EXPECT_NE(fletcher32(a), fletcher32(b));
  EXPECT_EQ(addition_checksum(a, 16), addition_checksum(b, 16));
}

TEST(AdditionChecksum, WidthMasking) {
  std::vector<std::uint8_t> data(300, 0xFF);  // sum = 76500
  EXPECT_EQ(addition_checksum(data, 8), 76500 % 256);
  EXPECT_EQ(addition_checksum(data, 16), 76500 % 65536);
  EXPECT_EQ(addition_checksum(data, 32), 76500u);
  EXPECT_THROW(addition_checksum(data, 0), radar::InvalidArgument);
}

TEST(AdditionChecksum, BlindToCancellingPair) {
  // The documented weakness RADAR inherits and mitigates via masking.
  std::vector<std::uint8_t> data = {10, 20, 30};
  const auto clean = addition_checksum(data, 16);
  data[0] += 5;
  data[1] -= 5;
  EXPECT_EQ(addition_checksum(data, 16), clean);
}

}  // namespace
}  // namespace radar::codes
