// Unit tests for the common substrate: RNG, bit helpers, serialization,
// env knobs, thread pool, error machinery.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <set>

#include "common/bits.h"
#include "common/env.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/thread_pool.h"

namespace radar {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.bits() == b.bits()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(3);
  const auto s = rng.sample_without_replacement(1000, 100);
  EXPECT_EQ(s.size(), 100u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 100u);
  for (auto v : s) EXPECT_LT(v, 1000u);
}

TEST(Rng, SampleAllElements) {
  Rng rng(3);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(3);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), InvalidArgument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(11);
  Rng child = a.fork();
  EXPECT_NE(a.bits(), child.bits());
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Bits, GetBitMatchesTwosComplement) {
  const std::int8_t v = -128;  // 0b1000'0000
  EXPECT_TRUE(get_bit(v, 7));
  for (int b = 0; b < 7; ++b) EXPECT_FALSE(get_bit(v, b));
  const std::int8_t w = 127;  // 0b0111'1111
  EXPECT_FALSE(get_bit(w, 7));
  for (int b = 0; b < 7; ++b) EXPECT_TRUE(get_bit(w, b));
}

TEST(Bits, FlipBitIsInvolution) {
  for (int v = -128; v <= 127; ++v) {
    for (int b = 0; b < 8; ++b) {
      const auto x = static_cast<std::int8_t>(v);
      EXPECT_EQ(flip_bit(flip_bit(x, b), b), x);
    }
  }
}

TEST(Bits, MsbFlipDeltaIs128) {
  for (int v = -128; v <= 127; ++v) {
    const auto x = static_cast<std::int8_t>(v);
    const int d = flip_delta(x, kMsb);
    EXPECT_EQ(std::abs(d), 128);
    // 0 -> 1 on the sign bit means the value *decreases* by 128.
    if (!get_bit(x, kMsb)) EXPECT_EQ(d, -128);
  }
}

TEST(Bits, LowerBitFlipDelta) {
  for (int b = 0; b < 7; ++b) {
    const std::int8_t zero = 0;
    EXPECT_EQ(flip_delta(zero, b), 1 << b);
  }
}

TEST(Bits, SetBit) {
  std::int8_t v = 0;
  v = set_bit(v, 3, true);
  EXPECT_EQ(v, 8);
  v = set_bit(v, 3, false);
  EXPECT_EQ(v, 0);
  v = set_bit(v, 3, false);  // idempotent
  EXPECT_EQ(v, 0);
}

TEST(Bits, FloorDivPow2Negative) {
  // Must match mathematical floor, not truncation toward zero.
  EXPECT_EQ(floor_div_pow2(-1, 7), -1);
  EXPECT_EQ(floor_div_pow2(-128, 7), -1);
  EXPECT_EQ(floor_div_pow2(-129, 7), -2);
  EXPECT_EQ(floor_div_pow2(127, 7), 0);
  EXPECT_EQ(floor_div_pow2(128, 7), 1);
  EXPECT_EQ(floor_div_pow2(255, 8), 0);
  EXPECT_EQ(floor_div_pow2(256, 8), 1);
  EXPECT_EQ(floor_div_pow2(-256, 8), -1);
}

TEST(Bits, OutOfRangeBitThrows) {
  EXPECT_THROW(get_bit(0, 8), InvalidArgument);
  EXPECT_THROW(flip_bit(0, -1), InvalidArgument);
}

TEST(Serialize, RoundTripScalarsAndVectors) {
  const std::string path = "/tmp/radar_test_serialize.bin";
  {
    BinaryWriter w(path, 3);
    w.write_u8(200);
    w.write_u32(0xDEADBEEF);
    w.write_u64(1ull << 60);
    w.write_i64(-77);
    w.write_f32(3.5f);
    w.write_string("hello radar");
    w.write_f32_vector({1.0f, -2.0f, 0.25f});
    w.write_i8_vector({-128, 0, 127});
    w.write_u64_vector({9, 8, 7});
    w.close();
  }
  BinaryReader r(path, 3);
  EXPECT_EQ(r.read_u8(), 200);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 1ull << 60);
  EXPECT_EQ(r.read_i64(), -77);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.5f);
  EXPECT_EQ(r.read_string(), "hello radar");
  EXPECT_EQ(r.read_f32_vector(), (std::vector<float>{1.0f, -2.0f, 0.25f}));
  EXPECT_EQ(r.read_i8_vector(), (std::vector<std::int8_t>{-128, 0, 127}));
  EXPECT_EQ(r.read_u64_vector(), (std::vector<std::uint64_t>{9, 8, 7}));
  std::filesystem::remove(path);
}

TEST(Serialize, VersionMismatchThrows) {
  const std::string path = "/tmp/radar_test_version.bin";
  {
    BinaryWriter w(path, 1);
    w.write_u32(0);
    w.close();
  }
  EXPECT_THROW(BinaryReader(path, 2), SerializationError);
  std::filesystem::remove(path);
}

TEST(Serialize, TruncatedFileThrows) {
  const std::string path = "/tmp/radar_test_trunc.bin";
  {
    BinaryWriter w(path, 1);
    w.write_u64(1000);  // promises a long vector that never arrives
    w.close();
  }
  BinaryReader r(path, 1);
  EXPECT_THROW(r.read_f32_vector(), SerializationError);
  std::filesystem::remove(path);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(BinaryReader("/tmp/no_such_radar_file.bin", 1),
               SerializationError);
}

TEST(ThreadPool, ParallelForVisitsEachIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunksCoversRange) {
  ThreadPool pool(8);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for_chunks(100, [&](std::size_t b, std::size_t e) {
    std::int64_t local = 0;
    for (std::size_t i = b; i < e; ++i) local += static_cast<std::int64_t>(i);
    sum += local;
  });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Env, FallbacksWhenUnset) {
  ::unsetenv("RADAR_TEST_UNSET_VAR");
  EXPECT_EQ(env_int("RADAR_TEST_UNSET_VAR", 42), 42);
  EXPECT_EQ(env_string("RADAR_TEST_UNSET_VAR", "x"), "x");
}

TEST(Env, ParsesValues) {
  ::setenv("RADAR_TEST_VAR", "123", 1);
  EXPECT_EQ(env_int("RADAR_TEST_VAR", 0), 123);
  ::setenv("RADAR_TEST_VAR", "abc", 1);
  EXPECT_EQ(env_int("RADAR_TEST_VAR", 9), 9);
  ::unsetenv("RADAR_TEST_VAR");
}

TEST(Env, ExperimentRoundsPrecedence) {
  ::setenv("RADAR_ROUNDS", "17", 1);
  EXPECT_EQ(experiment_rounds(100, 5), 17);
  ::unsetenv("RADAR_ROUNDS");
  ::unsetenv("RADAR_FAST");
  EXPECT_EQ(experiment_rounds(100, 5), 100);
  ::setenv("RADAR_FAST", "1", 1);
  EXPECT_EQ(experiment_rounds(100, 5), 5);
  ::unsetenv("RADAR_FAST");
}

TEST(Error, ChecksThrowWithContext) {
  try {
    RADAR_REQUIRE(false, "contextual message");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("contextual message"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace radar
