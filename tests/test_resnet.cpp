// ResNet builders: topology, parameter accounting, forward shapes,
// determinism and checkpointing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "nn/model_io.h"
#include "nn/resnet.h"

namespace radar::nn {
namespace {

TEST(ResNetSpec, PaperConfigurations) {
  const auto r20 = ResNetSpec::resnet20();
  EXPECT_EQ(r20.blocks_per_stage, (std::vector<std::int64_t>{3, 3, 3}));
  EXPECT_EQ(r20.base_width, 16);
  const auto r18 = ResNetSpec::resnet18();
  EXPECT_EQ(r18.blocks_per_stage, (std::vector<std::int64_t>{2, 2, 2, 2}));
}

TEST(ResNet, Resnet20QuantizableWeightCountMatchesPaperArchitecture) {
  Rng rng(1);
  ResNet net(ResNetSpec::resnet20(10), rng);
  std::int64_t conv_fc_weights = 0;
  int conv_fc_layers = 0;
  for (auto& np : net.params()) {
    if (np.param->kind == ParamKind::kConvWeight ||
        np.param->kind == ParamKind::kLinearWeight) {
      conv_fc_weights += np.param->value.numel();
      ++conv_fc_layers;
    }
  }
  // Hand-derived for CIFAR ResNet-20 (stem + 9 blocks + 2 projections + fc).
  EXPECT_EQ(conv_fc_weights, 270896);
  EXPECT_EQ(conv_fc_layers, 22);
}

TEST(ResNet, ForwardOutputShape) {
  Rng rng(2);
  ResNet net(ResNetSpec::resnet20(10), rng);
  Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
  Tensor y = net.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 10}));
}

TEST(ResNet, Resnet18ReducedWidthForward) {
  Rng rng(3);
  ResNet net(ResNetSpec::resnet18(20, 16), rng);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  Tensor y = net.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{1, 20}));
}

TEST(ResNet, DeterministicInitAndForward) {
  Rng rng_a(7), rng_b(7);
  ResNet a(ResNetSpec::resnet20(10), rng_a);
  ResNet b(ResNetSpec::resnet20(10), rng_b);
  Rng xr(9);
  Tensor x = Tensor::randn({1, 3, 32, 32}, xr);
  EXPECT_EQ(max_abs_diff(a.forward(x), b.forward(x)), 0.0f);
}

TEST(ResNet, ParamNamesUniqueAndHierarchical) {
  Rng rng(4);
  ResNet net(ResNetSpec::resnet20(10), rng);
  std::set<std::string> names;
  bool found_block_conv = false;
  for (auto& np : net.params()) {
    EXPECT_TRUE(names.insert(np.name).second) << "duplicate " << np.name;
    if (np.name == "stage1.block0.conv1.weight") found_block_conv = true;
  }
  EXPECT_TRUE(found_block_conv);
}

TEST(ResNet, ProjectionOnlyWhereShapeChanges) {
  Rng rng(5);
  // Stage 0 blocks keep 16 channels at stride 1: no projection.
  BasicBlock plain(16, 16, 1, rng);
  EXPECT_FALSE(plain.has_projection());
  BasicBlock strided(16, 32, 2, rng);
  EXPECT_TRUE(strided.has_projection());
  BasicBlock widened(16, 32, 1, rng);
  EXPECT_TRUE(widened.has_projection());
}

TEST(ResNet, ZeroGradClearsAllGradients) {
  Rng rng(6);
  ResNet net(ResNetSpec::resnet20(10), rng);
  Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
  Tensor y = net.forward(x, Mode::kTrain);
  Tensor g = Tensor::full(y.shape(), 1.0f);
  net.backward(g);
  float grad_norm = 0.0f;
  for (auto& np : net.params()) grad_norm += np.param->grad.sq_norm();
  EXPECT_GT(grad_norm, 0.0f);
  net.zero_grad();
  grad_norm = 0.0f;
  for (auto& np : net.params()) grad_norm += np.param->grad.sq_norm();
  EXPECT_EQ(grad_norm, 0.0f);
}

TEST(ResNet, BackwardProducesInputGradient) {
  Rng rng(8);
  ResNet net(ResNetSpec::resnet20(10), rng);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  Tensor y = net.forward(x, Mode::kGrad);
  Tensor g({1, 10});
  g[3] = 1.0f;
  Tensor gx = net.backward(g);
  EXPECT_EQ(gx.shape(), x.shape());
  EXPECT_GT(gx.sq_norm(), 0.0f);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = "/tmp/radar_test_ckpt.bin";
  Rng rng_a(10), rng_b(11);  // different init
  ResNet a(ResNetSpec::resnet20(10), rng_a);
  ResNet b(ResNetSpec::resnet20(10), rng_b);
  Rng xr(1);
  Tensor x = Tensor::randn({1, 3, 32, 32}, xr);
  EXPECT_GT(max_abs_diff(a.forward(x), b.forward(x)), 0.0f);

  save_checkpoint(path, a.params(), a.buffers());
  load_checkpoint(path, b.params(), b.buffers());
  EXPECT_EQ(max_abs_diff(a.forward(x), b.forward(x)), 0.0f);
  std::filesystem::remove(path);
}

TEST(Checkpoint, ShapeMismatchRejected) {
  const std::string path = "/tmp/radar_test_ckpt_mismatch.bin";
  Rng rng(12);
  ResNet small(ResNetSpec::resnet20(10), rng);
  ResNet wide(ResNetSpec::resnet18(10, 16), rng);
  save_checkpoint(path, small.params(), small.buffers());
  EXPECT_THROW(load_checkpoint(path, wide.params(), wide.buffers()),
               SerializationError);
  std::filesystem::remove(path);
}

TEST(Checkpoint, MissingFileThrows) {
  Rng rng(13);
  ResNet net(ResNetSpec::resnet20(10), rng);
  EXPECT_THROW(
      load_checkpoint("/tmp/no_such_ckpt.bin", net.params(), net.buffers()),
      SerializationError);
}

}  // namespace
}  // namespace radar::nn
