// Campaign engine basics: spec JSON round-trip and validation, matrix
// expansion, report structure, and end-to-end detection semantics on the
// raw tiny model.
#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/json.h"

namespace radar::campaign {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.name = "unit";
  spec.model = "tiny";
  spec.train = false;
  spec.trials = 2;
  spec.seed = 7;
  spec.eval_subset = 0;
  spec.attackers = {{.kind = "random_msb", .flips = 8}};
  SchemeSpec radar;
  radar.params.group_size = 32;
  SchemeSpec crc;
  crc.id = "crc13";
  crc.params.group_size = 32;
  spec.schemes = {radar, crc};
  return spec;
}

TEST(CampaignSpecTest, JsonRoundTrip) {
  CampaignSpec spec = small_spec();
  spec.seed = 0xDEADBEEFCAFEF00DULL;  // above 2^53: must round-trip exactly
  spec.fault_rates = {0.0, 1e-4};
  spec.attackers.push_back(
      {.kind = "knowledgeable", .flips = 4, .assumed_group_size = 64});
  AttackerSpec pbfa;
  pbfa.kind = "pbfa";
  pbfa.flips = 3;
  pbfa.allowed_bits = {6, 7};
  spec.attackers.push_back(pbfa);

  const CampaignSpec back = CampaignSpec::from_json_text(spec.to_json());
  EXPECT_EQ(back.to_json(), spec.to_json());
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.attackers.size(), 3u);
  EXPECT_EQ(back.attackers[2].allowed_bits, (std::vector<int>{6, 7}));
  EXPECT_EQ(back.attackers[1].assumed_group_size, 64);
  EXPECT_EQ(back.schemes[1].id, "crc13");
  EXPECT_EQ(back.fault_rates, spec.fault_rates);
  EXPECT_FALSE(back.train);
}

TEST(CampaignSpecTest, ValidationRejectsBadSpecs) {
  CampaignSpec spec = small_spec();
  spec.attackers.clear();
  EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = small_spec();
  spec.attackers[0].kind = "quantum";
  EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = small_spec();
  spec.schemes[0].id = "no-such-scheme";
  EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = small_spec();
  spec.trials = 0;
  EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = small_spec();
  spec.fault_rates = {-0.5};
  EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = small_spec();
  spec.schemes[0].params.group_size = 0;
  EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = small_spec();
  spec.attackers[0].allowed_bits = {9};
  EXPECT_THROW(spec.validate(), InvalidArgument);
}

TEST(CampaignSpecTest, ParserRejectsUnknownKeys) {
  EXPECT_THROW(CampaignSpec::from_json_text(
                   R"({"attackers": [], "schemes": [], "typo_key": 1})"),
               InvalidArgument);
  EXPECT_THROW(
      CampaignSpec::from_json_text(
          R"({"attackers": [{"kind": "random", "power": 9000}],
              "schemes": [{"id": "radar2"}]})"),
      InvalidArgument);
}

TEST(CampaignRunnerTest, ReportShapeMatchesSpecMatrix) {
  CampaignSpec spec = small_spec();
  spec.fault_rates = {0.0, 1e-4};
  const CampaignReport report = CampaignRunner(1).run(spec);
  ASSERT_EQ(report.cells.size(), spec.num_cells());
  EXPECT_EQ(report.trials, spec.trials);
  EXPECT_EQ(report.model, "tiny");
  EXPECT_LT(report.clean_accuracy, 0.0);  // eval_subset == 0: no accuracy
  // Cell-major order: attacker, fault rate, scheme.
  const CellStats& c = report.cell(0, 1, 1);
  EXPECT_EQ(c.attacker, "random_msb/nbf8");
  EXPECT_EQ(c.scheme, "crc13/G32/ilv");  // SchemeParams default interleave
  EXPECT_DOUBLE_EQ(c.fault_rate, 1e-4);
  // The fault-rate column injects extra MSB faults on top of the 8 flips.
  EXPECT_GT(c.mean_flips, report.cell(0, 0, 1).mean_flips);
}

TEST(CampaignRunnerTest, CrcDetectsEveryMsbFlip) {
  const CampaignReport report = CampaignRunner(1).run(small_spec());
  const CellStats& crc = report.cell(0, 0, 1);
  EXPECT_DOUBLE_EQ(crc.detection_rate, 1.0);
  EXPECT_DOUBLE_EQ(crc.trial_detection_rate, 1.0);
  EXPECT_DOUBLE_EQ(crc.miss_rate, 0.0);
  const CellStats& radar = report.cell(0, 0, 0);
  EXPECT_GE(radar.detection_rate, 0.75);  // paper's worst sweep point
  EXPECT_DOUBLE_EQ(radar.miss_rate, 0.0);
}

TEST(CampaignRunnerTest, EvalSubsetProducesAccuracies) {
  CampaignSpec spec = small_spec();
  spec.eval_subset = 64;
  const CampaignReport report = CampaignRunner(1).run(spec);
  EXPECT_GE(report.clean_accuracy, 0.0);
  for (const CellStats& c : report.cells) {
    EXPECT_GE(c.mean_acc_attacked, 0.0);
    EXPECT_GE(c.mean_acc_recovered, 0.0);
  }
}

TEST(CampaignRunnerTest, ReloadCleanRecoveryRestoresAccuracy) {
  CampaignSpec spec = small_spec();
  spec.eval_subset = 64;
  spec.policy = core::RecoveryPolicy::kReloadClean;
  spec.schemes.resize(1);  // radar2 only
  const CampaignReport report = CampaignRunner(1).run(spec);
  // Reload recovery restores every flagged group exactly; with full
  // detection the recovered accuracy equals the clean accuracy.
  EXPECT_NEAR(report.cell(0, 0, 0).mean_acc_recovered,
              report.clean_accuracy, 0.08);
}

TEST(CampaignRunnerTest, UnknownModelThrows) {
  CampaignSpec spec = small_spec();
  spec.model = "resnet1b";
  EXPECT_THROW(CampaignRunner(1).run(spec), InvalidArgument);
}

TEST(CampaignReportTest, CsvHasOneRowPerCell) {
  const CampaignReport report = CampaignRunner(1).run(small_spec());
  const std::string csv = report.to_csv();
  std::size_t lines = 0;
  for (const char c : csv) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, 1 + report.cells.size());
}

TEST(CampaignReportTest, TimingOnlyWhenRequested) {
  const CampaignReport report = CampaignRunner(1).run(small_spec());
  EXPECT_EQ(report.to_json().find("timing"), std::string::npos);
  EXPECT_NE(report.to_json(true).find("timing"), std::string::npos);
}

TEST(JsonTest, ParsesScalarsAndStructure) {
  const Json v = Json::parse(
      R"({"a": [1, 2.5, -3], "b": "x\ny", "c": true, "d": null})");
  EXPECT_EQ(v.at("a").items().size(), 3u);
  EXPECT_EQ(v.at("a").items()[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(v.at("a").items()[1].as_number(), 2.5);
  EXPECT_EQ(v.at("b").as_string(), "x\ny");
  EXPECT_TRUE(v.at("c").as_bool());
  EXPECT_EQ(v.at("d").type(), Json::Type::kNull);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), InvalidArgument);
  EXPECT_THROW(v.at("b").as_int(), InvalidArgument);
  EXPECT_THROW(v.at("a").items()[1].as_int(), InvalidArgument);
}

TEST(JsonTest, FullUint64RangeAndStrictness) {
  // Plain integer tokens decode exactly across the full u64 range.
  EXPECT_EQ(Json::parse("18446744073709551615").as_uint(),
            0xFFFFFFFFFFFFFFFFULL);
  EXPECT_THROW(Json::parse("18446744073709551616").as_uint(),
               InvalidArgument);
  EXPECT_THROW(Json::parse("9223372036854775808").as_int(), InvalidArgument);
  // Duplicate object keys are rejected, not last-wins-swallowed.
  EXPECT_THROW(Json::parse(R"({"trials": 2, "trials": 50000})"), Error);
}

}  // namespace
}  // namespace radar::campaign
