// Dispatch-level plumbing and differential checks for the shared SIMD
// primitives (dot_i8 / axpy_i8 / bytes_equal): every level the machine
// supports must be bit-identical to the scalar reference on adversarial
// lengths (sub-vector, exactly-vector, vector+tail) and extreme values
// (+-127, the int16-product corners), including the positions around the
// int64 drain boundary of the widened accumulators.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/simd_ops.h"

namespace radar {
namespace {

std::vector<cpu::SimdLevel> supported_levels() {
  std::vector<cpu::SimdLevel> out;
  for (int l = 0; l < cpu::kNumSimdLevels; ++l) {
    const auto lvl = static_cast<cpu::SimdLevel>(l);
    if (cpu::level_supported(lvl)) out.push_back(lvl);
  }
  return out;
}

TEST(CpuFeatures, ScalarAlwaysSupportedAndDetectedIsSupported) {
  EXPECT_TRUE(cpu::level_supported(cpu::SimdLevel::kScalar));
  EXPECT_TRUE(cpu::level_supported(cpu::detected_level()));
  if (cpu::has_avx512_vnni())
    EXPECT_TRUE(cpu::level_supported(cpu::SimdLevel::kAvx512));
}

TEST(CpuFeatures, SetActiveLevelClampsToSupported) {
  const cpu::SimdLevel prev = cpu::active_level();
  // Requesting the top tier installs the best supported level <= it.
  const cpu::SimdLevel got =
      cpu::set_active_level(cpu::SimdLevel::kAvx512);
  EXPECT_TRUE(cpu::level_supported(got));
  EXPECT_LE(static_cast<int>(got),
            static_cast<int>(cpu::SimdLevel::kAvx512));
  EXPECT_EQ(cpu::set_active_level(cpu::SimdLevel::kScalar),
            cpu::SimdLevel::kScalar);
  cpu::set_active_level(prev);
}

TEST(CpuFeatures, ScopedLevelRestores) {
  const cpu::SimdLevel prev = cpu::active_level();
  {
    cpu::ScopedSimdLevel guard(cpu::SimdLevel::kScalar);
    EXPECT_EQ(cpu::active_level(), cpu::SimdLevel::kScalar);
  }
  EXPECT_EQ(cpu::active_level(), prev);
}

TEST(CpuFeatures, ParseLevelRoundTripsAndNativeDetects) {
  for (int l = 0; l < cpu::kNumSimdLevels; ++l) {
    const auto lvl = static_cast<cpu::SimdLevel>(l);
    EXPECT_EQ(cpu::parse_level(cpu::level_name(lvl)), lvl);
  }
  EXPECT_EQ(cpu::parse_level("native"), cpu::detected_level());
  EXPECT_EQ(cpu::parse_level("bogus"), cpu::detected_level());
}

TEST(SimdOps, DotMatchesScalarAcrossLevelsLengthsAndExtremes) {
  Rng rng(0xD07);
  // Lengths straddling every vector width and its tail handling, plus
  // large enough to cross the int64 drain boundary at least twice.
  const std::vector<std::int64_t> lengths = {0,  1,  7,   15,  16,  17,
                                             31, 32, 33,  63,  64,  65,
                                             127, 255, 4096, (1 << 20) + 3};
  for (const std::int64_t n : lengths) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(n));
    std::vector<std::int8_t> b(static_cast<std::size_t>(n));
    for (auto& v : a)
      v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    // Signs only, as the scan kernels guarantee: keeps the true sum in
    // int32 at every length while the products hit the +-127 corners.
    for (auto& v : b)
      v = static_cast<std::int8_t>(rng.uniform_int(0, 1) * 2 - 1);
    cpu::ScopedSimdLevel scalar_guard(cpu::SimdLevel::kScalar);
    const std::int32_t want = simd::dot_i8(a.data(), b.data(), n);
    for (const cpu::SimdLevel lvl : supported_levels()) {
      cpu::ScopedSimdLevel guard(lvl);
      EXPECT_EQ(simd::dot_i8(a.data(), b.data(), n), want)
          << "n=" << n << " level=" << cpu::level_name(lvl);
    }
  }
}

TEST(SimdOps, AxpyMatchesScalarAcrossLevels) {
  Rng rng(0xA4B1);
  for (const std::int64_t n : {1, 15, 16, 17, 31, 32, 33, 63, 64, 65,
                               1000, 4099}) {
    std::vector<std::int8_t> w(static_cast<std::size_t>(n));
    std::vector<std::int8_t> s(static_cast<std::size_t>(n));
    std::vector<std::int32_t> init(static_cast<std::size_t>(n));
    for (auto& v : w)
      v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    for (auto& v : s)
      v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    for (auto& v : init)
      v = static_cast<std::int32_t>(rng.uniform_int(-1000000, 1000000));
    std::vector<std::int32_t> want = init;
    {
      cpu::ScopedSimdLevel guard(cpu::SimdLevel::kScalar);
      simd::axpy_i8(want.data(), w.data(), s.data(), n);
    }
    for (const cpu::SimdLevel lvl : supported_levels()) {
      cpu::ScopedSimdLevel guard(lvl);
      std::vector<std::int32_t> got = init;
      simd::axpy_i8(got.data(), w.data(), s.data(), n);
      EXPECT_EQ(got, want) << "n=" << n
                           << " level=" << cpu::level_name(lvl);
    }
  }
}

TEST(SimdOps, BytesEqualMatchesMemcmpAcrossLevels) {
  Rng rng(0xBE5);
  for (const std::int64_t n : {0, 1, 31, 32, 33, 63, 64, 65, 4097}) {
    std::vector<std::uint8_t> a(static_cast<std::size_t>(n));
    for (auto& v : a)
      v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    std::vector<std::uint8_t> b = a;
    for (const cpu::SimdLevel lvl : supported_levels()) {
      cpu::ScopedSimdLevel guard(lvl);
      EXPECT_TRUE(simd::bytes_equal(a.data(), b.data(),
                                    static_cast<std::size_t>(n)))
          << "n=" << n << " level=" << cpu::level_name(lvl);
      if (n == 0) continue;
      // Flip one byte at the front, middle, back: each must be caught.
      for (const std::int64_t pos : {std::int64_t{0}, n / 2, n - 1}) {
        b[static_cast<std::size_t>(pos)] ^= 0x40;
        EXPECT_FALSE(simd::bytes_equal(a.data(), b.data(),
                                       static_cast<std::size_t>(n)))
            << "n=" << n << " pos=" << pos
            << " level=" << cpu::level_name(lvl);
        b[static_cast<std::size_t>(pos)] ^= 0x40;
      }
    }
  }
}

}  // namespace
}  // namespace radar
