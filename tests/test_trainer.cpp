// Training/evaluation pipeline: convergence, determinism, evaluation
// contracts.
#include <gtest/gtest.h>

#include "data/trainer.h"
#include "nn/loss.h"

namespace radar::data {
namespace {

nn::ResNetSpec tiny_spec() {
  nn::ResNetSpec s;
  s.num_classes = 4;
  s.base_width = 8;
  s.blocks_per_stage = {1};
  s.name = "tiny";
  return s;
}

SyntheticDataset tiny_dataset() {
  SyntheticSpec ds = synthetic_cifar_spec();
  ds.image_size = 16;
  ds.num_classes = 4;
  return SyntheticDataset(ds, 256, 128);
}

TrainConfig tiny_config() {
  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 32;
  tc.batches_per_epoch = 12;
  tc.lr = 0.005f;
  tc.verbose = false;
  return tc;
}

TEST(Trainer, LossDecreasesAndAccuracyIsUsable) {
  Rng rng(1);
  nn::ResNet model(tiny_spec(), rng);
  const SyntheticDataset dataset = tiny_dataset();
  const TrainReport report = train(model, dataset, tiny_config());
  ASSERT_EQ(report.epoch_losses.size(), 4u);
  EXPECT_LT(report.epoch_losses.back(), report.epoch_losses.front());
  EXPECT_GT(report.test_accuracy, 0.5);
  EXPECT_FLOAT_EQ(report.final_train_loss, report.epoch_losses.back());
}

TEST(Trainer, DeterministicGivenSeeds) {
  const SyntheticDataset dataset = tiny_dataset();
  auto run = [&] {
    Rng rng(2);
    nn::ResNet model(tiny_spec(), rng);
    return train(model, dataset, tiny_config());
  };
  const TrainReport a = run();
  const TrainReport b = run();
  EXPECT_EQ(a.epoch_losses, b.epoch_losses);
  EXPECT_DOUBLE_EQ(a.test_accuracy, b.test_accuracy);
}

TEST(Trainer, SgdAndAdamBothConverge) {
  const SyntheticDataset dataset = tiny_dataset();
  for (const bool use_adam : {false, true}) {
    Rng rng(3);
    nn::ResNet model(tiny_spec(), rng);
    TrainConfig tc = tiny_config();
    tc.use_adam = use_adam;
    tc.lr = use_adam ? 0.005f : 0.02f;
    const TrainReport report = train(model, dataset, tc);
    EXPECT_GT(report.test_accuracy, 0.5) << "adam=" << use_adam;
  }
}

TEST(Trainer, EvaluateAgreesWithManualLoop) {
  Rng rng(4);
  nn::ResNet model(tiny_spec(), rng);
  const SyntheticDataset dataset = tiny_dataset();
  const double via_helper = evaluate(model, dataset, /*batch=*/64);
  // Manual evaluation over the full test split.
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < dataset.test_size(); start += 32) {
    const std::int64_t count =
        std::min<std::int64_t>(32, dataset.test_size() - start);
    Batch b = dataset.test_batch(start, count);
    const auto pred = nn::argmax_rows(model.forward(b.images));
    for (std::size_t i = 0; i < pred.size(); ++i)
      if (pred[i] == b.labels[i]) ++correct;
  }
  EXPECT_DOUBLE_EQ(via_helper,
                   static_cast<double>(correct) /
                       static_cast<double>(dataset.test_size()));
}

TEST(Trainer, EvaluateWithCustomForward) {
  Rng rng(5);
  nn::ResNet model(tiny_spec(), rng);
  const SyntheticDataset dataset = tiny_dataset();
  // A forward that always predicts class 0: accuracy = class-0 share.
  const double acc = evaluate(
      [&](const nn::Tensor& x) {
        nn::Tensor logits({x.dim(0), 4});
        for (std::int64_t i = 0; i < x.dim(0); ++i)
          logits[logits.idx2(i, 0)] = 1.0f;
        return logits;
      },
      dataset);
  EXPECT_NEAR(acc, 0.25, 1e-9);  // round-robin labels: exactly 1/4
}

TEST(Trainer, BatchSizeLargerThanTrainSetRejected) {
  const SyntheticDataset dataset = tiny_dataset();
  Rng rng(6);
  EXPECT_THROW(dataset.train_batch(10000, rng), InvalidArgument);
}

}  // namespace
}  // namespace radar::data
