// Microbenchmarks of inference and the embedded RADAR scan on the host
// CPU (google-benchmark): how much a software-only deployment pays.
#include <benchmark/benchmark.h>

#include "core/protected_model.h"
#include "core/scheme.h"

namespace {

using namespace radar;

struct Setup {
  Setup() : rng(3), model(nn::ResNetSpec::resnet20(10), rng), qm(model) {
    core::RadarConfig rc;
    rc.group_size = 8;
    scheme = std::make_unique<core::RadarScheme>(rc);
    scheme->attach(qm);
    x = nn::Tensor::randn({1, 3, 32, 32}, rng);
  }
  Rng rng;
  nn::ResNet model;
  quant::QuantizedModel qm;
  std::unique_ptr<core::RadarScheme> scheme;
  nn::Tensor x;
};

Setup& setup() {
  static Setup s;
  return s;
}

void BM_Resnet20ForwardBatch1(benchmark::State& state) {
  Setup& s = setup();
  for (auto _ : state) benchmark::DoNotOptimize(s.qm.forward(s.x));
}
BENCHMARK(BM_Resnet20ForwardBatch1);

void BM_RadarScanResnet20(benchmark::State& state) {
  Setup& s = setup();
  for (auto _ : state) {
    auto report = s.scheme->scan(s.qm);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_RadarScanResnet20);

void BM_ProtectedForwardBatch1(benchmark::State& state) {
  Setup& s = setup();
  core::ProtectedModel pm(s.qm, *s.scheme);
  for (auto _ : state) benchmark::DoNotOptimize(pm.forward(s.x));
}
BENCHMARK(BM_ProtectedForwardBatch1);

void BM_GoldenResign(benchmark::State& state) {
  Setup& s = setup();
  for (auto _ : state) {
    s.scheme->resign(s.qm);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_GoldenResign);

}  // namespace
