// micro_model — weight-arena storage ops + whole-model scan thread
// scaling under byte-range vs layer-granular work sharding.
//
// Two sections, both landing in BENCH_model.json:
//
//  1. Arena storage ops (GB/s): a raw memcpy baseline (the bandwidth
//     ceiling every other row is judged against, measured in-bench on
//     the same buffers sizes), snapshot capture (one memcpy), restore
//     (changed-layer probe + targeted resync; clean restores run at
//     compare speed), and snapshot compare (dispatched bytes_equal) on a
//     wide ResNet whose conv layers span the realistic ~100x size spread.
//
//  2. Whole-model scan thread scaling 1..8: the same radar2 G=512 scan
//     partitioned the legacy way (one work item per layer — bounded by
//     the largest layer) vs byte-range group shards (equal-byte work
//     items through scan_layer_range_into). Reports are asserted
//     byte-identical across all partitionings and thread counts, and
//     byte-range throughput is asserted monotone-or-flat in the thread
//     count (exit 1 on regression): sessions clamp workers to the
//     hardware core count, so requesting more threads must never scan
//     slower than requesting fewer.
//
//  3. Load balance (machine-independent): the critical-path bytes of a
//     greedy T-worker schedule over each partitioning's work items, and
//     the parallel speedup it bounds. Layer-granular partitioning is
//     limited by its largest layer (~14% of this model in ONE item), so
//     its speedup bound flattens near 7x regardless of thread count;
//     byte-range shards keep the bound near-linear. This is the
//     acceptance number on machines (like 1-core CI sandboxes) where
//     wall-clock scaling cannot show up.
//
// Usage: bench_micro_model
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/scan_session.h"
#include "core/scheme_registry.h"
#include "nn/resnet.h"
#include "quant/qmodel.h"

namespace {

using namespace radar;

volatile std::int64_t g_sink = 0;

/// Makespan (critical-path bytes) of a greedy longest-first schedule of
/// `items` onto `workers` — the quantity that bounds parallel scan
/// speedup on real multicore hardware, independent of this machine.
std::int64_t critical_path_bytes(std::vector<std::int64_t> items,
                                 std::size_t workers) {
  std::sort(items.begin(), items.end(), std::greater<>());
  std::vector<std::int64_t> load(workers, 0);
  for (const std::int64_t it : items)
    *std::min_element(load.begin(), load.end()) += it;
  return *std::max_element(load.begin(), load.end());
}

}  // namespace

int main() {
  bench::heading("micro_model",
                 "arena storage ops + scan thread scaling (byte-range vs "
                 "layer sharding)");
  bench::JsonReport json("model");

  // A wide ResNet: realistic conv-size skew at multi-MB arena scale.
  nn::ResNetSpec spec;
  spec.num_classes = 10;
  spec.base_width = 64;
  spec.blocks_per_stage = {3, 3, 3};
  spec.name = "wide";
  Rng rng(7);
  nn::ResNet model(spec, rng);
  quant::QuantizedModel qm(model);
  const double bytes = static_cast<double>(qm.total_weights());
  std::int64_t min_layer = qm.layer(0).size(), max_layer = min_layer;
  for (std::size_t li = 1; li < qm.num_layers(); ++li) {
    min_layer = std::min(min_layer, qm.layer(li).size());
    max_layer = std::max(max_layer, qm.layer(li).size());
  }
  std::printf("  model: %lld weights in %zu layers (%.1f MiB arena, "
              "layer sizes %lld..%lld)\n",
              static_cast<long long>(qm.total_weights()), qm.num_layers(),
              static_cast<double>(qm.arena().size_bytes()) / (1 << 20),
              static_cast<long long>(min_layer),
              static_cast<long long>(max_layer));

  // ---- section 1: arena storage ops ----
  std::printf("  %-28s %16s %9s\n", "op", "ns/op", "GB/s");
  bench::rule();
  auto run = [&](const char* name, double per_op_bytes, auto&& fn) {
    const double ns = bench::measure_ns_per_op(fn);
    json.add(name, ns, per_op_bytes);
    std::printf("  %-28s %16.1f %9.2f\n", name, ns,
                per_op_bytes / ns);
    return ns;
  };
  // Same-machine bandwidth ceiling: one arena-sized memcpy between
  // buffers allocated like the snapshot blobs. The 80%-of-memcpy
  // acceptance for compare/restore reads off this row, not off a number
  // measured on some other box.
  std::vector<std::int8_t> mc_src(
      static_cast<std::size_t>(qm.arena().size_bytes()), 1);
  std::vector<std::int8_t> mc_dst(mc_src.size());
  const double memcpy_ns = run("memcpy_baseline", bytes, [&] {
    std::memcpy(mc_dst.data(), mc_src.data(), mc_src.size());
    g_sink = g_sink + mc_dst[0];
  });
  quant::ArenaSnapshot snap = qm.snapshot();
  quant::ArenaSnapshot other = qm.snapshot();
  run("snapshot_capture", bytes, [&] {
    snap.capture(qm.arena());
    g_sink = g_sink + snap.bytes()[0];
  });
  const double compare_ns = run("snapshot_compare", bytes, [&] {
    g_sink = g_sink + (snap == other ? 1 : 0);
  });
  const double restore_ns = run("restore", bytes, [&] {
    qm.restore(snap);
    g_sink = g_sink + qm.get_code(0, 0);
  });
  std::printf("  compare / memcpy bandwidth: %.2f   restore / memcpy: "
              "%.2f\n",
              memcpy_ns / compare_ns, memcpy_ns / restore_ns);

  // ---- section 2: scan thread scaling ----
  core::SchemeParams params;
  params.group_size = 512;
  auto scheme = core::SchemeRegistry::instance().create("radar2", params);
  scheme->attach(qm);
  const core::DetectionReport serial_report = scheme->scan(qm);

  bench::rule();
  std::printf("  %-28s %16s %9s %9s\n", "full scan", "ns/op", "GB/s",
              "speedup");
  bench::rule();
  double base_ns = 0.0;
  bool identical = true;
  std::vector<std::pair<std::size_t, double>> byterange_ns;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    for (const auto sharding : {core::ScanSession::Sharding::kLayer,
                                core::ScanSession::Sharding::kByteRange}) {
      const bool by_range =
          sharding == core::ScanSession::Sharding::kByteRange;
      core::ScanSession session(*scheme, threads);
      session.set_sharding(sharding);
      core::DetectionReport report;
      session.scan_into(qm, report);  // warm up pool + scratch
      identical = identical && report.flagged == serial_report.flagged;
      // Min of three passes: shared CI boxes see CPU steal spikes well
      // above the real row-to-row differences this section gates on.
      double ns = 1e300;
      for (int pass = 0; pass < 3; ++pass) {
        ns = std::min(ns, bench::measure_ns_per_op([&] {
          session.scan_into(qm, report);
          g_sink = g_sink + report.num_flagged_groups();
        }));
      }
      char name[64];
      std::snprintf(name, sizeof(name), "scan_%s_t%zu",
                    by_range ? "byterange" : "layer", threads);
      if (threads == 1 && !by_range) base_ns = ns;
      if (by_range) byterange_ns.emplace_back(threads, ns);
      json.add(name, ns, bytes);
      std::printf("  %-28s %16.1f %9.2f %8.2fx\n", name, ns, bytes / ns,
                  base_ns / ns);
    }
  }
  std::printf("  reports byte-identical across partitionings: %s\n",
              identical ? "yes" : "NO");
  // Monotone-or-flat gate: more requested threads must never make the
  // byte-range scan slower (10% tolerance absorbs run-to-run noise; the
  // pre-fix oversubscription collapse was a 2x regression, far outside
  // it).
  bool scaling_ok = true;
  for (std::size_t i = 1; i < byterange_ns.size(); ++i) {
    if (byterange_ns[i].second > byterange_ns[i - 1].second * 1.10) {
      scaling_ok = false;
      std::printf("  SCALING REGRESSION: scan_byterange_t%zu is %.0f%% "
                  "slower than t%zu\n",
                  byterange_ns[i].first,
                  100.0 * (byterange_ns[i].second /
                               byterange_ns[i - 1].second -
                           1.0),
                  byterange_ns[i - 1].first);
    }
  }
  std::printf("  byte-range scaling monotone-or-flat: %s\n",
              scaling_ok ? "yes" : "NO");
  std::printf("  (wall-clock rows measured on %u hardware core(s) — "
              "see the load-balance bounds below for the\n"
              "   machine-independent scaling story)\n",
              std::thread::hardware_concurrency());

  // ---- section 3: machine-independent load balance ----
  std::vector<std::int64_t> layer_items;
  for (std::size_t li = 0; li < qm.num_layers(); ++li)
    layer_items.push_back(qm.layer(li).size());
  bench::rule();
  std::printf("  %-10s %18s %18s %12s %12s\n", "threads",
              "layer critpath B", "range critpath B", "layer bound",
              "range bound");
  bench::rule();
  for (const std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
    // Byte-range shards: rebuild the session's plan (target = total /
    // (threads * 4), the ScanSession default) as byte counts.
    const std::int64_t target = std::max<std::int64_t>(
        4096, qm.total_weights() / (static_cast<std::int64_t>(threads) * 4));
    std::vector<std::int64_t> range_items;
    for (std::size_t li = 0; li < qm.num_layers(); ++li) {
      const std::int64_t nw = qm.layer(li).size();
      const std::int64_t ng = scheme->layout(li).num_groups();
      const std::int64_t chunks = std::max<std::int64_t>(
          1, std::min(ng, (nw + target - 1) / target));
      const std::int64_t per = (ng + chunks - 1) / chunks;
      for (std::int64_t b = 0; b < ng; b += per)
        range_items.push_back(std::min(b + per, ng) * params.group_size -
                              b * params.group_size);
    }
    const std::int64_t cp_layer = critical_path_bytes(layer_items, threads);
    const std::int64_t cp_range = critical_path_bytes(range_items, threads);
    const double bound_layer = bytes / static_cast<double>(cp_layer);
    const double bound_range = bytes / static_cast<double>(cp_range);
    std::printf("  %-10zu %18lld %18lld %11.2fx %11.2fx\n", threads,
                static_cast<long long>(cp_layer),
                static_cast<long long>(cp_range), bound_layer, bound_range);
    char name[64];
    std::snprintf(name, sizeof(name), "critpath_layer_t%zu_bytes", threads);
    json.add(name, static_cast<double>(cp_layer));
    std::snprintf(name, sizeof(name), "critpath_byterange_t%zu_bytes",
                  threads);
    json.add(name, static_cast<double>(cp_range));
  }
  bench::note(
      "claim reproduced if the byte-range critical path keeps shrinking "
      "with threads while the layer-parallel one flattens at the largest "
      "layer, and all reports are byte-identical (critpath entries store "
      "bytes in the ns_per_op field)");
  json.write();
  return identical && scaling_ok ? 0 : 1;
}
