// micro_qnn — int8 inference kernel throughput and end-to-end eval speedup.
//
// Two sections, both landing in BENCH_qnn.json (the inference-path
// counterpart of BENCH_scan.json):
//
//  1. Kernel throughput (GMAC/s) per ResNet-20 layer shape: the
//     pre-existing direct 7-loop convolution (conv2d_i8) vs the batched
//     im2col + tiled int8 GEMM path (conv2d_i8_tiled), batch 8. Outputs
//     are asserted bit-identical while timing.
//
//  2. End-to-end: the trained tiny bundle's eval path (the accuracy
//     measurements every campaign trial with eval_subset > 0 pays) run
//     through the reference engine (direct conv per sample — the old
//     kernels) vs the batched engine. Logits must be byte-identical; the
//     images/sec ratio is the acceptance number (target >= 4x).
//
// JSON semantics: conv entries use bytes_per_op = MACs, so gb_per_sec
// reads as GMAC/s; eval entries are ns per full-test-split evaluation.
#include <algorithm>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "data/trainer.h"
#include "exp/workspace.h"
#include "qnn/engine.h"
#include "qnn/kernels.h"

namespace {

using namespace radar;

volatile float g_sink = 0.0f;

struct ConvCase {
  const char* name;
  qnn::ConvGeom geom;
  std::int64_t in_hw;
};

}  // namespace

int main() {
  bench::heading("micro_qnn", "int8 inference kernels + batched engine");
  bench::JsonReport json("qnn");
  Rng rng(7);

  // ---- section 1: conv kernel GMAC/s on ResNet-20 layer shapes ----
  const std::int64_t batch = 8;
  const std::vector<ConvCase> cases = {
      {"conv_stem_3x16_k3_32", {3, 16, 3, 1, 1}, 32},
      {"conv_s0_16x16_k3_32", {16, 16, 3, 1, 1}, 32},
      {"conv_s1_16x32_k3_s2", {16, 32, 3, 2, 1}, 32},
      {"conv_s1_32x32_k3_16", {32, 32, 3, 1, 1}, 16},
      {"conv_proj_16x32_k1_s2", {16, 32, 1, 2, 0}, 32},
      {"conv_s2_64x64_k3_8", {64, 64, 3, 1, 1}, 8},
  };
  std::printf("  %-26s %12s %12s %9s %9s %6s\n", "layer shape (batch 8)",
              "direct ns", "tiled ns", "dGMAC/s", "tGMAC/s", "x");
  bench::rule();
  for (const ConvCase& c : cases) {
    const std::int64_t hw = c.in_hw;
    const std::int64_t oh = c.geom.out_size(hw);
    const double macs =
        static_cast<double>(batch * c.geom.out_channels * oh * oh *
                            c.geom.in_channels * c.geom.kernel *
                            c.geom.kernel);
    std::vector<std::int8_t> w(static_cast<std::size_t>(
        c.geom.out_channels * c.geom.in_channels * c.geom.kernel *
        c.geom.kernel));
    for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    qnn::QTensor x;
    x.shape = {batch, c.geom.in_channels, hw, hw};
    x.scale = 0.02f;
    x.data.resize(static_cast<std::size_t>(x.numel()));
    for (auto& v : x.data)
      v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));

    // Bit-identity first, then time each path.
    const nn::Tensor yd = qnn::conv2d_i8(x, w, 0.01f, c.geom, {});
    const nn::Tensor yt = qnn::conv2d_i8_tiled(x, w, 0.01f, c.geom, {});
    const bool same =
        yd.shape() == yt.shape() &&
        std::memcmp(yd.data(), yt.data(),
                    sizeof(float) * static_cast<std::size_t>(yd.numel())) == 0;
    if (!same) {
      std::printf("  %-26s MISMATCH\n", c.name);
      return 1;
    }
    const double ns_direct = bench::measure_ns_per_op([&] {
      g_sink = g_sink + qnn::conv2d_i8(x, w, 0.01f, c.geom, {})[0];
    });
    qnn::QnnScratch scratch;
    nn::Tensor y;
    const double ns_tiled = bench::measure_ns_per_op([&] {
      qnn::conv2d_i8_tiled_into(x, w, 0.01f, c.geom, {}, scratch, y);
      g_sink = g_sink + y[0];
    });
    std::printf("  %-26s %12.0f %12.0f %9.2f %9.2f %5.1fx\n", c.name,
                ns_direct, ns_tiled, macs / ns_direct, macs / ns_tiled,
                ns_direct / ns_tiled);
    json.add(std::string(c.name) + "_direct", ns_direct, macs);
    json.add(std::string(c.name) + "_tiled", ns_tiled, macs);
  }

  // ---- section 2: end-to-end eval path on the trained tiny bundle ----
  exp::ModelBundle bundle = exp::load_or_train("tiny");
  const std::int64_t test_n = bundle.dataset->test_size();
  const std::int64_t calib_n = std::min<std::int64_t>(128, test_n);
  const nn::Tensor calib = bundle.dataset->test_batch(0, calib_n).images;
  qnn::InferenceEngine ref(*bundle.qmodel, qnn::EngineKind::kReference);
  qnn::InferenceEngine bat(*bundle.qmodel, qnn::EngineKind::kBatched);
  ref.calibrate(calib);
  bat.calibrate(calib);

  // Logit byte-identity over the whole test split.
  const nn::Tensor all = bundle.dataset->test_batch(0, test_n).images;
  const nn::Tensor lref = ref.forward(all);
  const nn::Tensor lbat = bat.forward(all);
  const bool identical =
      lref.shape() == lbat.shape() &&
      std::memcmp(lref.data(), lbat.data(),
                  sizeof(float) *
                      static_cast<std::size_t>(lref.numel())) == 0;

  const double acc_ref = data::evaluate(ref, *bundle.dataset, 64);
  const double acc_bat = data::evaluate(bat, *bundle.dataset, 64);
  // Best-of-3 (like micro_scan): the shared-core dev/CI boxes are noisy
  // and the acceptance ratio should reflect kernel speed, not scheduler
  // luck.
  double ns_ref = 1e30, ns_bat = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    ns_ref = std::min(ns_ref, bench::measure_ns_per_op([&] {
               g_sink = g_sink + static_cast<float>(data::evaluate(
                                     ref, *bundle.dataset, 64));
             }));
    ns_bat = std::min(ns_bat, bench::measure_ns_per_op([&] {
               g_sink = g_sink + static_cast<float>(data::evaluate(
                                     bat, *bundle.dataset, 64));
             }));
  }
  const double ips_ref = 1e9 * static_cast<double>(test_n) / ns_ref;
  const double ips_bat = 1e9 * static_cast<double>(test_n) / ns_bat;
  const double speedup = ns_ref / ns_bat;
  bench::rule();
  std::printf("  trained tiny eval path (%lld images, batch 64):\n",
              static_cast<long long>(test_n));
  std::printf("  %-28s %12.2f ms  (%8.0f images/sec, acc %.2f%%)\n",
              "eval_direct_conv", 1e-6 * ns_ref, ips_ref, 100.0 * acc_ref);
  std::printf("  %-28s %12.2f ms  (%8.0f images/sec, acc %.2f%%)\n",
              "eval_batched_engine", 1e-6 * ns_bat, ips_bat, 100.0 * acc_bat);
  std::printf("  %-28s %12.2fx\n", "eval_speedup", speedup);
  std::printf("  logits byte-identical: %s\n", identical ? "yes" : "NO");
  json.add("eval_direct_conv", ns_ref, static_cast<double>(test_n));
  json.add("eval_batched_engine", ns_bat, static_cast<double>(test_n));
  bench::note(
      "claim reproduced if eval_speedup >= 4 and logits are byte-identical "
      "(direct-conv engine reproduces the pre-PR qnn kernels)");
  json.write();
  return identical && acc_ref == acc_bat ? 0 : 1;
}
