// Table IV — Time overhead of RADAR (gem5 in the paper; our analytic
// timing model over the paper-scale network shapes — DESIGN.md §4).
//
// Paper: ResNet-20 66.3 ms -> 68.7 ms (69.8 ms interleaved) = 3.56%
// (5.27%); ResNet-18 3.268 s -> 3.287 s (3.328 s) = 0.58% (1.83%).
#include <cstdio>

#include "bench_util.h"
#include "sim/netdesc.h"
#include "sim/timing.h"

int main() {
  using namespace radar;
  bench::heading("Table IV", "RADAR inference-time overhead");
  bench::note(
      "analytic Cortex-M4F-class model; constants calibrated on the "
      "paper's baseline and non-interleaved RADAR rows; interleaved rows "
      "and batch scaling are predictions");

  sim::TimingSimulator sim;
  struct Row {
    const char* id;
    sim::NetworkShape shape;
    std::int64_t g;
    const char* paper;
  };
  const Row rows[] = {
      {"resnet20", sim::resnet20_shape(), 8,
       "66.3ms -> 68.7ms (69.8ms) = 3.56% (5.27%)"},
      {"resnet18", sim::resnet18_shape(), 512,
       "3.268s -> 3.287s (3.328s) = 0.58% (1.83%)"},
  };

  std::printf("  %-9s %12s %14s %16s %10s %10s\n", "model", "baseline",
              "RADAR", "RADAR (ilv)", "ovh%", "ovh% ilv");
  bench::rule();
  for (const auto& row : rows) {
    const auto plain = sim.radar_seconds(row.shape, row.g, false);
    const auto inter = sim.radar_seconds(row.shape, row.g, true);
    std::printf("  %-9s %10.1fms %12.1fms %14.1fms %9.2f%% %9.2f%%\n",
                row.id, 1e3 * plain.baseline, 1e3 * plain.total(),
                1e3 * inter.total(), plain.overhead_pct(),
                inter.overhead_pct());
    std::printf("  paper: %s\n", row.paper);
  }

  bench::rule();
  std::printf("batch amortization (ResNet-18, G=512, interleaved):\n");
  std::printf("  %-8s %12s\n", "batch", "overhead");
  for (const std::int64_t batch : {1, 2, 4, 8, 16}) {
    const auto t =
        sim.radar_seconds_batched(sim::resnet18_shape(), 512, true, batch);
    std::printf("  %-8lld %11.3f%%\n", static_cast<long long>(batch),
                t.overhead_pct());
  }
  std::printf(
      "claim reproduced if single-batch overhead is <2%% for ResNet-18 and "
      "<6%% for ResNet-20, shrinking with batch size.\n");

  bench::JsonReport json("table4_time_overhead");
  for (const auto& row : rows) {
    const auto plain = sim.radar_seconds(row.shape, row.g, false);
    const auto inter = sim.radar_seconds(row.shape, row.g, true);
    json.add(std::string("model/") + row.id + "/baseline",
             1e9 * plain.baseline);
    json.add(std::string("model/") + row.id + "/radar", 1e9 * plain.total());
    json.add(std::string("model/") + row.id + "/radar_interleaved",
             1e9 * inter.total());
  }
  json.write();
  return 0;
}
