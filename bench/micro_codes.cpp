// Microbenchmarks of the detection primitives (google-benchmark).
//
// Ground truth for the cost ranking assumed by the timing model: the
// masked addition checksum must be substantially cheaper per byte than
// CRC (table-driven or bit-serial) and Hamming SEC-DED.
#include <benchmark/benchmark.h>

#include <vector>

#include "codes/crc.h"
#include "codes/fletcher.h"
#include "codes/hamming.h"
#include "common/rng.h"
#include "core/checksum.h"
#include "core/scanner.h"
#include "core/scheme.h"

namespace {

using namespace radar;

std::vector<std::int8_t> make_weights(std::size_t n) {
  Rng rng(42);
  std::vector<std::int8_t> w(n);
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return w;
}

void BM_MaskedChecksum512(benchmark::State& state) {
  const auto w = make_weights(1 << 16);
  const core::GroupLayout layout =
      core::GroupLayout::interleaved(1 << 16, 512, 3);
  const core::MaskStream mask(0xBEEF);
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (std::int64_t g = 0; g < layout.num_groups(); ++g)
      acc += core::masked_group_sum(w, layout, g, mask);
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_MaskedChecksum512);

void BM_SignatureScanFullLayer(benchmark::State& state) {
  const auto w = make_weights(1 << 16);
  const core::GroupLayout layout =
      core::GroupLayout::interleaved(1 << 16, 512, 3);
  const core::MaskStream mask(0xBEEF);
  for (auto _ : state) {
    unsigned acc = 0;
    for (std::int64_t g = 0; g < layout.num_groups(); ++g)
      acc += core::group_signature(w, layout, g, mask, 2).bits;
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_SignatureScanFullLayer);

void BM_StreamingScan512(benchmark::State& state) {
  // The production scan path: precomputed group/mask tables, one pass.
  const auto w = make_weights(1 << 16);
  const core::GroupLayout layout =
      core::GroupLayout::interleaved(1 << 16, 512, 3);
  const core::MaskStream mask(0xBEEF);
  const core::LayerScanner scanner(layout, mask, 2);
  for (auto _ : state) {
    auto sigs = scanner.scan(w);
    benchmark::DoNotOptimize(sigs);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_StreamingScan512);

void BM_CrcTable(benchmark::State& state) {
  const auto w = make_weights(1 << 16);
  codes::Crc crc(codes::CrcSpec::crc13());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crc.compute_i8(std::span<const std::int8_t>(w.data(), w.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_CrcTable);

void BM_CrcBitSerial(benchmark::State& state) {
  const auto w = make_weights(1 << 14);
  codes::Crc crc(codes::CrcSpec::crc13());
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc.compute_bitwise(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(w.data()), w.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 14));
}
BENCHMARK(BM_CrcBitSerial);

void BM_HammingSecDed512(benchmark::State& state) {
  const auto w = make_weights(512);
  codes::HammingSecDed code(512 * 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        code.encode_i8(std::span<const std::int8_t>(w.data(), w.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          512);
}
BENCHMARK(BM_HammingSecDed512);

void BM_Fletcher32(benchmark::State& state) {
  const auto w = make_weights(1 << 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codes::fletcher32(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(w.data()), w.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_Fletcher32);

}  // namespace
