// Microbenchmarks of the detection primitives (self-timed, JSON output).
//
// Ground truth for the cost ranking assumed by the timing model: the
// masked addition checksum must be substantially cheaper per byte than
// CRC (table-driven or bit-serial) and Hamming SEC-DED. Emits
// BENCH_micro_codes.json for the CI perf trajectory.
#include <vector>

#include "bench_util.h"
#include "codes/crc.h"
#include "codes/fletcher.h"
#include "codes/hamming.h"
#include "common/rng.h"
#include "core/checksum.h"
#include "core/scanner.h"

namespace {

using namespace radar;

std::vector<std::int8_t> make_weights(std::size_t n) {
  Rng rng(42);
  std::vector<std::int8_t> w(n);
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return w;
}

volatile std::int64_t g_sink = 0;

}  // namespace

int main() {
  bench::heading("micro_codes", "detection primitives, ns/byte");
  bench::JsonReport json("micro_codes");

  const std::size_t kBuf = 1 << 16;
  const auto w = make_weights(kBuf);
  const auto bytes = static_cast<double>(kBuf);
  const core::GroupLayout layout = core::GroupLayout::interleaved(
      static_cast<std::int64_t>(kBuf), 512, 3);
  const core::MaskStream mask(0xBEEF);
  const std::span<const std::int8_t> wspan(w.data(), w.size());
  const std::span<const std::uint8_t> uspan(
      reinterpret_cast<const std::uint8_t*>(w.data()), w.size());

  struct Row {
    const char* name;
    double ns_per_op;
    double bytes_per_op;
  };
  std::vector<Row> rows;
  auto run = [&](const char* name, double per_op_bytes, auto&& fn) {
    const double ns = bench::measure_ns_per_op(fn);
    rows.push_back({name, ns, per_op_bytes});
    json.add(name, ns, per_op_bytes);
  };

  run("masked_checksum_512", bytes, [&] {
    std::int64_t acc = 0;
    for (std::int64_t g = 0; g < layout.num_groups(); ++g)
      acc += core::masked_group_sum(wspan, layout, g, mask);
    g_sink = g_sink +acc;
  });
  run("signature_scan_reference", bytes, [&] {
    unsigned acc = 0;
    for (std::int64_t g = 0; g < layout.num_groups(); ++g)
      acc += core::group_signature(wspan, layout, g, mask, 2).bits;
    g_sink = g_sink +acc;
  });
  {
    // The production scan path: precomputed group/mask tables, one pass.
    const core::LayerScanner scanner(layout, mask, 2);
    run("streaming_scan_512", bytes, [&] {
      auto sigs = scanner.scan(wspan);
      g_sink = g_sink +sigs.size();
    });
  }
  {
    codes::Crc crc13(codes::CrcSpec::crc13());
    run("crc13_table", bytes, [&] { g_sink = g_sink +crc13.compute_i8(wspan); });
    run("crc13_bitserial", bytes,
        [&] { g_sink = g_sink +crc13.compute_bitwise(uspan); });
  }
  {
    codes::HammingSecDed code(512 * 8);
    const std::span<const std::int8_t> block(w.data(), 512);
    run("hamming_secded_512", 512.0,
        [&] { g_sink = g_sink +code.encode_i8(block); });
  }
  run("fletcher32", bytes, [&] { g_sink = g_sink +codes::fletcher32(uspan); });

  std::printf("  %-26s %14s %12s\n", "primitive", "ns/op", "ns/byte");
  bench::rule();
  for (const auto& row : rows) {
    std::printf("  %-26s %14.1f %12.3f\n", row.name, row.ns_per_op,
                row.ns_per_op / row.bytes_per_op);
  }
  bench::note(
      "claim reproduced if the streaming masked scan is cheapest per byte "
      "and bit-serial CRC is the most expensive");
  json.write();
  return 0;
}
