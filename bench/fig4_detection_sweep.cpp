// Fig. 4 — Average number of detected bit-flips (out of 10) vs group size,
// with and without interleaving.
//
// Paper: ResNet-20 detection falls from ~10/10 at small G to ~7/10 at
// G=64 without interleaving; interleaving keeps it high. ResNet-18 stays
// at ~9.5/10 with interleaving across G = 64..1024.
//
// Declared over the campaign engine: one PBFA attacker column against a
// radar2 scheme column per (G, interleave) point, detection only.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "campaign/campaign.h"
#include "common/env.h"
#include "exp/workspace.h"

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(10, 3));
  bench::heading("Fig. 4", "detected PBFA flips (of 10) vs G");
  bench::note("rounds = " + std::to_string(rounds) +
              "; detection only (no accuracy evaluation)");

  struct Config {
    const char* id;
    std::vector<std::int64_t> gs;
  };
  const Config configs[] = {
      {"resnet20", {4, 8, 16, 32, 64}},
      {"resnet18", {64, 128, 256, 512, 1024}},
  };

  for (const auto& cfg : configs) {
    campaign::CampaignSpec spec;
    spec.name = std::string("fig4/") + cfg.id;
    spec.model = cfg.id;
    spec.trials = rounds;
    spec.eval_subset = 0;
    spec.cache_tag = "fig4";
    spec.attackers = {{.kind = "pbfa", .flips = 10}};
    for (const auto g : cfg.gs) {
      for (const bool ilv : {false, true}) {
        campaign::SchemeSpec s;
        s.id = "radar2";
        s.params.group_size = exp::paper_group(cfg.id, g);
        s.params.interleave = ilv;
        spec.schemes.push_back(s);
      }
    }
    const auto report =
        campaign::CampaignRunner(bench_threads()).run(spec);

    std::printf("\n%s:%s\n", cfg.id,
                exp::group_scale_for(cfg.id) != 1
                    ? " (paper G mapped to G/16 for the reduced model)"
                    : "");
    std::printf("  %-8s %20s %20s\n", "G", "detected (w/o ilv)",
                "detected (ilv)");
    bench::rule();
    for (std::size_t gi = 0; gi < cfg.gs.size(); ++gi) {
      const auto& plain = report.cell(0, 0, 2 * gi);
      const auto& inter = report.cell(0, 0, 2 * gi + 1);
      std::printf("  %-8lld %17.2f/10 %17.2f/10\n",
                  static_cast<long long>(cfg.gs[gi]), plain.mean_detected,
                  inter.mean_detected);
    }
  }
  bench::rule();
  std::printf(
      "paper shape: near 10/10 at small G; w/o interleave degrades toward "
      "the largest G (~7/10 on ResNet-20), interleave stays >= ~9.5/10.\n");
  return 0;
}
