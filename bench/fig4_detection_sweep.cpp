// Fig. 4 — Average number of detected bit-flips (out of 10) vs group size,
// with and without interleaving.
//
// Paper: ResNet-20 detection falls from ~10/10 at small G to ~7/10 at
// G=64 without interleaving; interleaving keeps it high. ResNet-18 stays
// at ~9.5/10 with interleaving across G = 64..1024.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "exp/workspace.h"

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(10, 3));
  bench::heading("Fig. 4", "detected PBFA flips (of 10) vs G");
  bench::note("rounds = " + std::to_string(rounds) +
              "; detection only (no accuracy evaluation)");

  struct Config {
    const char* id;
    std::vector<std::int64_t> gs;
  };
  const Config configs[] = {
      {"resnet20", {4, 8, 16, 32, 64}},
      {"resnet18", {64, 128, 256, 512, 1024}},
  };

  for (const auto& cfg : configs) {
    exp::ModelBundle bundle = exp::load_or_train(cfg.id);
    const auto profiles = exp::load_or_run_pbfa(bundle, 10, rounds);
    std::printf("\n%s:%s\n", cfg.id,
                bundle.group_scale != 1
                    ? " (paper G mapped to G/16 for the reduced model)"
                    : "");
    std::printf("  %-8s %20s %20s\n", "G", "detected (w/o ilv)",
                "detected (ilv)");
    bench::rule();
    for (const auto g : cfg.gs) {
      core::RadarConfig rc;
      rc.group_size = bundle.scaled_group(g);
      rc.interleave = false;
      const auto plain =
          exp::summarize_recovery(bundle, profiles, rc, 10, /*eval=*/0);
      rc.interleave = true;
      const auto inter =
          exp::summarize_recovery(bundle, profiles, rc, 10, /*eval=*/0);
      std::printf("  %-8lld %17.2f/10 %17.2f/10\n",
                  static_cast<long long>(g), plain.mean_detected,
                  inter.mean_detected);
    }
  }
  bench::rule();
  std::printf(
      "paper shape: near 10/10 at small G; w/o interleave degrades toward "
      "the largest G (~7/10 on ResNet-20), interleave stays >= ~9.5/10.\n");
  return 0;
}
