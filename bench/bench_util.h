// Shared console-table formatting for the experiment binaries.
//
// Every bench prints (a) the measured series in the same row/column
// structure as the paper's table or figure and (b) the paper's reported
// numbers next to them, so EXPERIMENTS.md can be filled by reading the
// output directly.
#pragma once

#include <cstdio>
#include <string>

namespace radar::bench {

inline void heading(const std::string& experiment, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), what.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

inline void rule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace radar::bench
