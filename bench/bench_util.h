// Shared console-table formatting + machine-readable output for the
// experiment binaries.
//
// Every bench prints (a) the measured series in the same row/column
// structure as the paper's table or figure and (b) the paper's reported
// numbers next to them, so EXPERIMENTS.md can be filled by reading the
// output directly. Benches additionally record measurements into a
// JsonReport, which lands as BENCH_<bench>.json (name, ns/op, bytes/s per
// entry) so CI can track a perf trajectory across PRs.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace radar::bench {

inline void heading(const std::string& experiment, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), what.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

inline void rule() {
  std::printf("----------------------------------------------------------------\n");
}

/// ns per call of `fn`, repeated until `min_seconds` of wall time (at
/// least `min_reps` calls) so short operations are timed meaningfully.
template <typename F>
double measure_ns_per_op(F&& fn, int min_reps = 3,
                         double min_seconds = 0.05) {
  using clock = std::chrono::steady_clock;
  std::int64_t reps = 0;
  const auto t0 = clock::now();
  auto t1 = t0;
  do {
    fn();
    ++reps;
    t1 = clock::now();
  } while (reps < min_reps ||
           std::chrono::duration<double>(t1 - t0).count() < min_seconds);
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(reps);
}

/// Machine-readable bench results: one entry per measurement, written as
/// BENCH_<bench>.json into RADAR_BENCH_JSON_DIR (default: cwd).
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Record one measurement. `bytes_per_op` of 0 means "not byte-oriented"
  /// and suppresses the throughput fields for that entry. For the int8
  /// scan paths one byte is one weight, so ns_per_weight == ns/byte.
  void add(const std::string& name, double ns_per_op,
           double bytes_per_op = 0.0) {
    entries_.push_back({name, ns_per_op, bytes_per_op});
  }

  /// Write BENCH_<bench>.json; returns the path ("" on failure).
  std::string write() const {
    const char* dir = std::getenv("RADAR_BENCH_JSON_DIR");
    const std::string path =
        (dir != nullptr ? std::string(dir) + "/" : std::string()) +
        "BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return "";
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
                 bench_name_.c_str());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const auto& e = entries_[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"ns_per_op\": %.3f",
                   e.name.c_str(), e.ns_per_op);
      if (e.bytes_per_op > 0.0) {
        const double bytes_per_sec = 1e9 * e.bytes_per_op / e.ns_per_op;
        std::fprintf(f,
                     ", \"bytes_per_sec\": %.0f, \"ns_per_weight\": %.4f"
                     ", \"gb_per_sec\": %.3f",
                     bytes_per_sec, e.ns_per_op / e.bytes_per_op,
                     bytes_per_sec / 1e9);
      }
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("  json: %s (%zu entries)\n", path.c_str(), entries_.size());
    return path;
  }

 private:
  struct Entry {
    std::string name;
    double ns_per_op;
    double bytes_per_op;
  };
  std::string bench_name_;
  std::vector<Entry> entries_;
};

}  // namespace radar::bench
