// Table II — Frequency of PBFA-targeted weights in different value ranges.
//
// Paper: ResNet-20: 85 / 595 / 249 / 71 and ResNet-18: 16 / 860 / 76 / 27
// over the ranges (-128,-32), (-32,0), (0,32), (32,127). The claim: PBFA
// targets *small-valued* weights whose MSB flip makes them huge — the
// basis for zero-out recovery.
#include <cstdio>

#include "attack/profile_stats.h"
#include "bench_util.h"
#include "common/env.h"
#include "exp/workspace.h"

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(10, 3));
  bench::heading("Table II", "value range of PBFA-targeted weights");
  bench::note("rounds = " + std::to_string(rounds) +
              " x 10 flips, normalized to 1000 flips");

  struct PaperRow {
    const char* id;
    int c[4];
  };
  const PaperRow paper[] = {{"resnet20", {85, 595, 249, 71}},
                            {"resnet18", {16, 860, 76, 27}}};

  std::printf("%-10s", "model");
  for (std::size_t i = 0; i < 4; ++i)
    std::printf(" %13s", attack::WeightRangeStats::range_name(i));
  std::printf("   | paper\n");
  bench::rule();
  for (const auto& row : paper) {
    exp::ModelBundle bundle = exp::load_or_train(row.id);
    const auto profiles = exp::load_or_run_pbfa(bundle, 10, rounds);
    const attack::WeightRangeStats s = attack::weight_range_stats(profiles);
    std::int64_t total = 0;
    for (const auto c : s.counts) total += c;
    const double norm =
        total > 0 ? 1000.0 / static_cast<double>(total) : 0.0;
    std::printf("%-10s", row.id);
    for (const auto c : s.counts)
      std::printf(" %13.0f", static_cast<double>(c) * norm);
    std::printf("   | %d/%d/%d/%d\n", row.c[0], row.c[1], row.c[2],
                row.c[3]);
  }
  bench::rule();
  std::printf(
      "claim reproduced if the small ranges (-32,0)+(0,32) dominate.\n");
  return 0;
}
