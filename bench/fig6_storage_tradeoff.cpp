// Fig. 6 — Recovery accuracy vs golden-signature storage.
//
// Two series per model: (a) signature storage of the *paper-scale*
// networks (ResNet-20 @ 32x32, ResNet-18 @ 224x224) from the shape
// descriptors — these match the paper's x-axis exactly (8.2 KB at G=8,
// 5.6 KB at G=512); (b) measured recovery accuracy on our trained
// stand-in models (NBF = 10, interleaved).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "exp/workspace.h"
#include "sim/netdesc.h"

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(10, 3));
  bench::heading("Fig. 6", "recovery accuracy vs signature storage");
  bench::note("rounds = " + std::to_string(rounds) +
              ", NBF = 10, interleaved");

  struct Config {
    const char* id;
    sim::NetworkShape shape;
    std::vector<std::int64_t> gs;
  };
  const Config configs[] = {
      {"resnet20", sim::resnet20_shape(), {4, 8, 16, 32, 64}},
      {"resnet18", sim::resnet18_shape(), {64, 128, 256, 512, 1024}},
  };

  for (const auto& cfg : configs) {
    exp::ModelBundle bundle = exp::load_or_train(cfg.id);
    const auto profiles = exp::load_or_run_pbfa(bundle, 10, rounds);
    std::printf("\n%s (paper-scale storage axis: %s, %lld weights):\n",
                cfg.id, cfg.shape.name.c_str(),
                static_cast<long long>(cfg.shape.total_weights()));
    std::printf("  %-8s %16s %18s\n", "G", "storage (KB)",
                "recovered acc");
    bench::rule();
    for (const auto g : cfg.gs) {
      const double kb =
          static_cast<double>(cfg.shape.signature_storage_bytes(g, 2)) /
          1024.0;
      core::RadarConfig rc;
      rc.group_size = bundle.scaled_group(g);
      rc.interleave = true;
      const auto summary =
          exp::summarize_recovery(bundle, profiles, rc, 10, 256);
      std::printf("  %-8lld %16.1f %17.2f%%\n", static_cast<long long>(g),
                  kb, 100.0 * summary.mean_acc_recovered);
    }
  }
  bench::rule();
  std::printf(
      "paper sweet spots: ResNet-20 G=8 (8.2 KB, >80%%); ResNet-18 G=512 "
      "(5.6 KB, >60%%). Shape: accuracy degrades mildly as storage "
      "shrinks (larger G).\n");
  return 0;
}
