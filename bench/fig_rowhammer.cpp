// Rowhammer figure — detected flips vs victim rows hammered.
//
// The iid attackers (Fig. 4) pick weights uniformly; a rowhammer burst is
// spatially correlated: every flip lands in the DRAM rows adjacent to the
// aggressors, so under the linear (rowmajor) mapping a burst concentrates
// into few groups while the controller stripe spreads it — the same
// contrast interleaved signatures exploit on the defender side. This
// bench sweeps the number of victim rows hammered per trial and reports
// detected / injected flips per scheme, single- and double-sided.
//
// JSON artifact: BENCH_rowhammer.json, one entry per
// (attacker, scheme, rows) point of the curve.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "campaign/campaign.h"
#include "common/env.h"

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(20, 5));
  const std::vector<int> rows_sweep = {1, 2, 4, 8};
  bench::heading("Rowhammer", "detected flips vs victim rows hammered");
  bench::note("rounds = " + std::to_string(rounds) +
              "; detection only; tiny model, raw init");

  campaign::CampaignSpec spec;
  spec.name = "fig_rowhammer";
  spec.model = "tiny";
  spec.train = false;  // raw init: deterministic without a training cache
  spec.trials = rounds;
  spec.seed = 0x5248;
  spec.eval_subset = 0;
  for (const int rows : rows_sweep) {
    for (const bool ds : {false, true}) {
      campaign::AttackerSpec atk;
      atk.kind = "rowhammer";
      atk.rows = rows;
      atk.double_sided = ds;
      spec.attackers.push_back(atk);
    }
  }
  campaign::SchemeSpec ilv;
  ilv.params.group_size = 32;
  campaign::SchemeSpec contig;
  contig.params.group_size = 32;
  contig.params.interleave = false;
  campaign::SchemeSpec crc;
  crc.id = "crc13";
  crc.params.group_size = 32;
  spec.schemes = {ilv, contig, crc};

  const campaign::CampaignReport report =
      campaign::CampaignRunner(bench_threads()).run(spec);

  std::printf("\n  %-6s %-5s %8s | %21s %21s %21s\n", "rows", "sided",
              "flips", "radar2/ilv det", "radar2/contig det", "crc13 det");
  bench::rule();
  for (std::size_t a = 0; a < spec.attackers.size(); ++a) {
    const auto& atk = spec.attackers[a];
    std::printf("  %-6d %-5s %8.1f |", atk.rows,
                atk.double_sided ? "dbl" : "sgl",
                report.cell(a, 0, 0).mean_flips);
    for (std::size_t s = 0; s < spec.schemes.size(); ++s) {
      const auto& c = report.cell(a, 0, s);
      std::printf(" %9.2f (%5.1f%%)    ", c.mean_detected,
                  100.0 * c.detection_rate);
    }
    std::printf("\n");
  }
  bench::rule();
  std::printf(
      "shape: flips grow ~linearly with rows; the 2-bit MSB signature "
      "flags the group of every MSB flip (~1/8 of random-bit rowhammer "
      "flips pull neighbours into flagged groups), crc13 sees every "
      "bit.\n");

  // Machine-readable curve: one entry per (attacker, scheme, rows) point.
  const char* dir = std::getenv("RADAR_BENCH_JSON_DIR");
  const std::string path =
      (dir != nullptr ? std::string(dir) + "/" : std::string()) +
      "BENCH_rowhammer.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return 1;
  std::fprintf(f, "{\n  \"bench\": \"rowhammer\",\n  \"results\": [\n");
  std::size_t emitted = 0;
  const std::size_t total = spec.attackers.size() * spec.schemes.size();
  for (std::size_t a = 0; a < spec.attackers.size(); ++a)
    for (std::size_t s = 0; s < spec.schemes.size(); ++s) {
      const auto& c = report.cell(a, 0, s);
      std::fprintf(
          f,
          "    {\"attacker\": \"%s\", \"scheme\": \"%s\", \"rows\": %d"
          ", \"double_sided\": %s, \"mean_flips\": %.3f"
          ", \"mean_detected\": %.3f, \"detection_rate\": %.4f"
          ", \"trial_detection_rate\": %.4f}%s\n",
          c.attacker.c_str(), c.scheme.c_str(), spec.attackers[a].rows,
          spec.attackers[a].double_sided ? "true" : "false", c.mean_flips,
          c.mean_detected, c.detection_rate, c.trial_detection_rate,
          ++emitted < total ? "," : "");
    }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  json: %s (%zu entries)\n", path.c_str(), emitted);
  return 0;
}
