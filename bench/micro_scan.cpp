// micro_scan — scan-path throughput and end-to-end campaign eval speedup.
//
// Two sections, both landing in BENCH_scan.json (the perf-trajectory
// artifact this PR starts recording):
//
//  1. Kernel throughput (GB/s): the pre-PR scalar scatter-add kernel
//     (reimplemented here verbatim as the baseline) vs the vectorized
//     group-major kernel, on a 4M-weight interleaved layer at the paper's
//     G=512, plus the gather-free contiguous path and the O(G) narrow
//     per-group scan the incremental path is built from.
//
//  2. End-to-end: the PR-2 campaign smoke spec evaluated with the full
//     engine (per-cell attach, whole-model restore, full rescans) vs the
//     incremental engine (cached schemes, dirty-group scans, write-level
//     undo). Reports must be byte-identical; the eval-phase speedup is the
//     acceptance number (target >= 5x vs the pre-PR eval phase, which the
//     full mode upper-bounds: it still pays attach/restore/full-scan costs).
//
// Usage: bench_micro_scan [campaign_spec.json]
//   (default spec path assumes running from build/: ../examples/specs/)
#include <cstdint>
#include <span>
#include <vector>

#include "bench_util.h"
#include "campaign/campaign.h"
#include "common/rng.h"
#include "core/scan_scratch.h"
#include "core/scanner.h"

namespace {

using namespace radar;

std::vector<std::int8_t> make_weights(std::size_t n) {
  Rng rng(42);
  std::vector<std::int8_t> w(n);
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return w;
}

/// The pre-PR LayerScanner kernel, kept verbatim as the bench baseline:
/// per-original-index group/sign tables, one scalar scatter-add pass into
/// a freshly allocated int64 vector (the allocation was part of the cost).
struct ScalarScatterScanner {
  std::int64_t num_groups;
  std::vector<std::int32_t> group_of;
  std::vector<std::int8_t> sign;

  ScalarScatterScanner(const core::GroupLayout& layout,
                       const core::MaskStream& mask)
      : num_groups(layout.num_groups()),
        group_of(static_cast<std::size_t>(layout.num_weights())),
        sign(static_cast<std::size_t>(layout.num_weights())) {
    const std::int64_t g = layout.group_size();
    for (std::int64_t grp = 0; grp < num_groups; ++grp) {
      for (std::int64_t slot = 0; slot < g; ++slot) {
        const std::int64_t i = layout.member(grp, slot);
        if (i < 0) continue;
        group_of[static_cast<std::size_t>(i)] =
            static_cast<std::int32_t>(grp);
        sign[static_cast<std::size_t>(i)] = mask.bit(grp * g + slot) ? -1 : 1;
      }
    }
  }

  std::vector<std::int64_t> masked_sums(
      std::span<const std::int8_t> weights) const {
    std::vector<std::int64_t> sums(static_cast<std::size_t>(num_groups), 0);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      sums[static_cast<std::size_t>(group_of[i])] +=
          static_cast<std::int64_t>(weights[i]) * sign[i];
    }
    return sums;
  }
};

volatile std::int64_t g_sink = 0;

}  // namespace

int main(int argc, char** argv) {
  bench::heading("micro_scan", "scan kernels + incremental campaign eval");
  bench::JsonReport json("scan");

  // ---- section 1: kernel throughput ----
  const std::int64_t kW = std::int64_t{1} << 22;  // 4M weights
  const std::int64_t kG = 512;                    // paper group size
  const auto w = make_weights(static_cast<std::size_t>(kW));
  const std::span<const std::int8_t> wspan(w.data(), w.size());
  const auto bytes = static_cast<double>(kW);
  const core::MaskStream mask(0xBEEF);
  const core::GroupLayout inter = core::GroupLayout::interleaved(kW, kG, 3);
  const core::GroupLayout contig = core::GroupLayout::contiguous(kW, kG);

  struct Row {
    const char* name;
    double ns_per_op;
    double bytes_per_op;
  };
  std::vector<Row> rows;
  auto run = [&](const char* name, double per_op_bytes, auto&& fn) {
    const double ns = bench::measure_ns_per_op(fn);
    rows.push_back({name, ns, per_op_bytes});
    json.add(name, ns, per_op_bytes);
  };

  {
    const ScalarScatterScanner scalar(inter, mask);
    run("scan_scalar_scatter_512", bytes, [&] {
      const auto sums = scalar.masked_sums(wspan);
      g_sink = g_sink + sums[0];
    });
  }
  {
    const core::LayerScanner scanner(inter, mask, 2);
    core::ScanScratch scratch;
    run("scan_vectorized_512", bytes, [&] {
      scanner.masked_sums_into(wspan, scratch);
      g_sink = g_sink + scratch.sums[0];
    });
    run("narrow_scan_per_group_512", static_cast<double>(kG), [&] {
      g_sink = g_sink + scanner.group_sum(wspan, 17);
    });
  }
  {
    const core::LayerScanner scanner(contig, mask, 2);
    core::ScanScratch scratch;
    run("scan_vectorized_contig_512", bytes, [&] {
      scanner.masked_sums_into(wspan, scratch);
      g_sink = g_sink + scratch.sums[0];
    });
  }

  std::printf("  %-28s %16s %10s %9s\n", "kernel", "ns/op", "ns/weight",
              "GB/s");
  bench::rule();
  for (const auto& row : rows) {
    std::printf("  %-28s %16.1f %10.4f %9.2f\n", row.name, row.ns_per_op,
                row.ns_per_op / row.bytes_per_op,
                row.bytes_per_op / row.ns_per_op);
  }

  // ---- section 2: end-to-end campaign eval phase ----
  const std::string spec_path =
      argc > 1 ? argv[1] : "../examples/specs/campaign_smoke.json";
  const auto spec = campaign::CampaignSpec::from_json_file(spec_path);
  const campaign::CampaignRunner full(1, 1, campaign::ScanMode::kFull);
  const campaign::CampaignRunner inc(1, 1, campaign::ScanMode::kIncremental);
  // Best-of-3: the eval phase is milliseconds, the profile phase is not —
  // reuse nothing across runners so both pay identical profile costs.
  double full_eval = 1e30, inc_eval = 1e30;
  std::string full_json, inc_json;
  for (int rep = 0; rep < 3; ++rep) {
    const auto rf = full.run(spec);
    const auto ri = inc.run(spec);
    if (rf.eval_seconds < full_eval) full_eval = rf.eval_seconds;
    if (ri.eval_seconds < inc_eval) inc_eval = ri.eval_seconds;
    full_json = rf.to_json(false);
    inc_json = ri.to_json(false);
  }
  const bool identical = full_json == inc_json;
  const double speedup = full_eval / inc_eval;
  const auto n_units = static_cast<double>(spec.num_trials_total());
  bench::rule();
  std::printf("  campaign '%s': %.0f eval units, threads=1\n",
              spec.name.c_str(), n_units);
  std::printf("  %-28s %12.3f ms  (%8.1f us/trial)\n", "eval_full",
              1e3 * full_eval, 1e6 * full_eval / n_units);
  std::printf("  %-28s %12.3f ms  (%8.1f us/trial)\n", "eval_incremental",
              1e3 * inc_eval, 1e6 * inc_eval / n_units);
  std::printf("  %-28s %12.2fx\n", "eval_speedup", speedup);
  std::printf("  reports byte-identical: %s\n", identical ? "yes" : "NO");
  // The speedup ratio is printed only — every JSON entry keeps ns_per_op
  // time semantics so the trajectory stays machine-comparable.
  json.add("campaign_eval_full", 1e9 * full_eval);
  json.add("campaign_eval_incremental", 1e9 * inc_eval);
  bench::note(
      "claim reproduced if eval_speedup >= 5 and reports are byte-identical "
      "(full mode upper-bounds the pre-PR eval phase)");
  json.write();
  return identical ? 0 : 1;
}
