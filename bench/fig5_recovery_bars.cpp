// Fig. 5 — Accuracy recovery bars for ResNet-18 (ImageNet stand-in).
//
// Paper: clean 69.79%; NBF=5 attack -> 5.66%, NBF=10 -> 0.18%; recovery
// with interleave at G=128/256/512 returns to ~60-67% (Δ = 57.21% and
// 60.51% over the unprotected model at G=128).
//
// Declared over the campaign engine: two PBFA attacker columns (NBF 5 and
// 10) against an interleaved radar2 column per paper G.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "campaign/campaign.h"
#include "common/env.h"
#include "exp/workspace.h"

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(10, 3));
  bench::heading("Fig. 5", "ResNet-18 recovery bars (interleaved)");
  bench::note("rounds = " + std::to_string(rounds));

  const std::vector<std::int64_t> gs = {128, 256, 512};
  const std::int64_t scale = exp::group_scale_for("resnet18");
  campaign::CampaignSpec spec;
  spec.name = "fig5";
  spec.model = "resnet18";
  spec.trials = rounds;
  spec.eval_subset = 256;
  spec.cache_tag = "fig5";
  spec.attackers = {{.kind = "pbfa", .flips = 5},
                    {.kind = "pbfa", .flips = 10}};
  for (const auto g : gs) {
    campaign::SchemeSpec s;
    s.id = "radar2";
    s.params.group_size = exp::paper_group("resnet18", g);
    s.params.interleave = true;
    spec.schemes.push_back(s);
  }
  const auto report =
      campaign::CampaignRunner(bench_threads()).run(spec);

  std::printf("  clean accuracy: %.2f%% (paper 69.79%%)\n",
              100.0 * report.clean_accuracy);
  std::printf("  (paper G mapped to G/%lld for the reduced-width model)\n\n",
              static_cast<long long>(scale));
  std::printf("  %-6s %10s", "NBF", "w/o RADAR");
  for (const auto g : gs)
    std::printf("   G=%-6lld", static_cast<long long>(g));
  std::printf("  delta(G=128)\n");
  bench::rule();
  const int nbfs[] = {5, 10};
  for (std::size_t ai = 0; ai < 2; ++ai) {
    const double attacked = report.cell(ai, 0, 0).mean_acc_attacked;
    std::printf("  %-6d %9.2f%%", nbfs[ai], 100.0 * attacked);
    for (std::size_t gi = 0; gi < gs.size(); ++gi)
      std::printf("   %7.2f%%",
                  100.0 * report.cell(ai, 0, gi).mean_acc_recovered);
    std::printf("   %7.2f%%\n",
                100.0 * (report.cell(ai, 0, 0).mean_acc_recovered - attacked));
  }
  bench::rule();
  std::printf(
      "paper: NBF=5 bars 5.66%% -> 66-68%% (delta 57.21%%); NBF=10 bars "
      "0.18%% -> 60-66%% (delta 60.51%%).\n");
  return 0;
}
