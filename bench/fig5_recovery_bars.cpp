// Fig. 5 — Accuracy recovery bars for ResNet-18 (ImageNet stand-in).
//
// Paper: clean 69.79%; NBF=5 attack -> 5.66%, NBF=10 -> 0.18%; recovery
// with interleave at G=128/256/512 returns to ~60-67% (Δ = 57.21% and
// 60.51% over the unprotected model at G=128).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "exp/workspace.h"

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(10, 3));
  bench::heading("Fig. 5", "ResNet-18 recovery bars (interleaved)");
  bench::note("rounds = " + std::to_string(rounds));

  exp::ModelBundle bundle = exp::load_or_train("resnet18");
  const auto profiles = exp::load_or_run_pbfa(bundle, 10, rounds);
  const std::vector<std::int64_t> gs = {128, 256, 512};

  std::printf("  clean accuracy: %.2f%% (paper 69.79%%)\n",
              100.0 * bundle.clean_accuracy);
  std::printf("  (paper G mapped to G/%lld for the reduced-width model)\n\n",
              static_cast<long long>(bundle.group_scale));
  std::printf("  %-6s %10s", "NBF", "w/o RADAR");
  for (const auto g : gs)
    std::printf("   G=%-6lld", static_cast<long long>(g));
  std::printf("  delta(G=128)\n");
  bench::rule();
  for (const int nbf : {5, 10}) {
    double attacked = 0.0;
    std::vector<double> recovered(gs.size(), 0.0);
    for (const auto& round : profiles) {
      bool measured = false;
      for (std::size_t gi = 0; gi < gs.size(); ++gi) {
        core::RadarConfig rc;
        rc.group_size = bundle.scaled_group(gs[gi]);
        rc.interleave = true;
        const auto o = exp::replay_and_recover(bundle, round, rc, nbf, 256,
                                               !measured);
        recovered[gi] += o.accuracy_recovered;
        if (!measured) {
          attacked += o.accuracy_attacked;
          measured = true;
        }
      }
    }
    const double n = static_cast<double>(profiles.size());
    std::printf("  %-6d %9.2f%%", nbf, 100.0 * attacked / n);
    for (const double r : recovered) std::printf("   %7.2f%%", 100.0 * r / n);
    std::printf("   %7.2f%%\n", 100.0 * (recovered[0] - attacked) / n);
  }
  bench::rule();
  std::printf(
      "paper: NBF=5 bars 5.66%% -> 66-68%% (delta 57.21%%); NBF=10 bars "
      "0.18%% -> 60-66%% (delta 60.51%%).\n");
  return 0;
}
