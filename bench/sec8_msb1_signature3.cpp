// §VIII — Avoid flipping MSB: the MSB-1-restricted attacker and the 3-bit
// signature countermeasure.
//
// Paper: ~30 MSB-1 flips are needed for damage comparable to 10 MSB flips
// on ResNet-20; the 2-bit signature is weak against MSB-1 flips, while a
// 3-bit signature (adds SC = floor(M/64) % 2) detects them at +50%
// storage.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "exp/workspace.h"

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(4, 2));
  bench::heading("§VIII", "MSB-1 attacker vs 3-bit signature (ResNet-20)");
  bench::note("rounds = " + std::to_string(rounds));

  exp::ModelBundle bundle = exp::load_or_train("resnet20");
  const auto msb_profiles = exp::load_or_run_pbfa(
      bundle, 10, static_cast<int>(experiment_rounds(10, 3)));
  const auto msb1_profiles =
      exp::load_or_run_restricted_pbfa(bundle, 30, rounds, {6}, "msb1");

  // 1. Damage per flip budget.
  std::printf("attack strength (accuracy after attack, clean %.2f%%):\n",
              100.0 * bundle.clean_accuracy);
  std::printf("  %-24s %10s\n", "attack", "accuracy");
  bench::rule();
  double msb_acc = 0.0;
  for (const auto& r : msb_profiles) msb_acc += r.accuracy_after;
  std::printf("  %-24s %9.2f%%\n", "MSB, 10 flips",
              100.0 * msb_acc / static_cast<double>(msb_profiles.size()));
  for (const int nbf : {10, 20, 30}) {
    double acc = 0.0;
    for (const auto& r : msb1_profiles) {
      core::RadarConfig rc;  // replay only; use any config, read attacked
      rc.group_size = 16;
      const auto o = exp::replay_and_recover(bundle, r, rc, nbf, 256);
      acc += o.accuracy_attacked;
    }
    std::printf("  MSB-1, %2d flips          %9.2f%%\n", nbf,
                100.0 * acc / static_cast<double>(msb1_profiles.size()));
  }
  std::printf(
      "  paper: ~30 MSB-1 flips needed for damage comparable to 10 MSB "
      "flips.\n\n");

  // 2. Detection of the MSB-1 attack: 2-bit vs 3-bit signature.
  std::printf("detection of the 30-flip MSB-1 attack (G=16, interleaved):\n");
  std::printf("  %-18s %14s %14s\n", "signature", "detected", "storage x");
  bench::rule();
  for (const int bits : {2, 3}) {
    core::RadarConfig rc;
    rc.group_size = 16;
    rc.interleave = true;
    rc.signature_bits = bits;
    const auto s = exp::summarize_recovery(bundle, msb1_profiles, rc, 30,
                                           /*eval=*/0);
    std::printf("  %d-bit %12s %10.2f/30 %13.2f\n", bits, "",
                s.mean_detected, bits == 2 ? 1.0 : 1.5);
  }
  bench::rule();
  std::printf(
      "claim reproduced if the 3-bit signature detects (nearly) all MSB-1 "
      "flips while the 2-bit one misses a large fraction.\n");
  return 0;
}
