// fig_scan_pareto — the scan-QoS tradeoff the scheduler exists to expose.
//
// Sweeps the ScanScheduler's per-slice byte budget through a scheduled
// campaign (one inference batch interleaved per scan slice, the serve
// cadence) and reports, per budget point:
//
//   images/sec        — inference throughput with scanning interleaved
//   p99 batch ms      — inference batch latency under scanning
//   worst TTD slices  — slices until first detection (deterministic
//                       under a pure byte budget)
//   coverage ms       — measured full-sweep period (the staleness bound)
//
// Two regression gates make this a CI check rather than a chart:
//
//   identity — every scheduled run's default (non-timing) report must be
//     byte-identical to the full-scan baseline: the budget dial moves
//     WHEN groups are scanned, never what a sweep reports.
//   monotone — worst-case time-to-detect (in slices) must not increase
//     with a larger byte budget; a non-monotone curve means the
//     scheduler is losing work to its own slicing.
//
// Results land in BENCH_pareto.json (RADAR_BENCH_JSON_DIR honored).
// Exit code 1 when either gate fails. RADAR_FAST=1 shrinks the sweep to
// 3 points for CI smoke runs.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "campaign/campaign.h"
#include "common/env.h"

namespace {

using namespace radar;

campaign::CampaignSpec pareto_spec() {
  campaign::CampaignSpec spec;
  spec.name = "scan_pareto";
  spec.model = "tiny";
  spec.train = false;  // raw init: reproducible with a cold cache
  spec.trials = fast_mode() ? 3 : 6;
  spec.seed = 0x9A12E70;
  spec.eval_subset = fast_mode() ? 64 : 128;
  spec.policy = core::RecoveryPolicy::kZeroOut;
  campaign::AttackerSpec atk;
  atk.kind = "random_msb";
  // One flip per trial: worst-case TTD is then the sweep distance to the
  // furthest flip across trials, which is what the budget actually
  // rations. Scattering many flips would put one near the sweep start in
  // every trial and flatten the curve to TTD = 1 slice.
  atk.flips = 1;
  spec.attackers = {atk};
  campaign::SchemeSpec sch;
  sch.id = "radar2";
  sch.params.group_size = 32;
  spec.schemes = {sch};
  spec.fault_rates = {0.0};
  return spec;
}

/// One measured budget point of the Pareto curve.
struct ParetoPoint {
  std::int64_t budget_bytes = -1;
  campaign::ScheduledStats sched;
  double images_per_sec = 0.0;
  bool identical_to_full = false;
};

}  // namespace

int main() {
  bench::heading("scan_pareto",
                 "detection latency vs throughput under the scan budget");

  const campaign::CampaignSpec spec = pareto_spec();
  // Small chunks so the tiny model still yields a many-slice sweep.
  constexpr std::int64_t kChunkBytes = 256;
  std::vector<std::int64_t> budgets =
      fast_mode() ? std::vector<std::int64_t>{256, 4096, -1}
                  : std::vector<std::int64_t>{256, 1024, 4096, -1};

  // Full-scan baseline: the report every scheduled run must reproduce.
  campaign::EvalOptions eval;
  eval.scan_chunk_bytes = kChunkBytes;
  const campaign::CampaignRunner full_runner(
      /*threads=*/1, /*scan_threads=*/1, campaign::ScanMode::kFull, eval);
  const std::string full_json = full_runner.run(spec).to_json(false);

  std::vector<ParetoPoint> points;
  for (const std::int64_t budget : budgets) {
    campaign::EvalOptions e = eval;
    e.scan_budget_bytes = budget;
    const campaign::CampaignRunner runner(
        1, 1, campaign::ScanMode::kScheduled, e);
    const campaign::CampaignReport report = runner.run(spec);
    ParetoPoint p;
    p.budget_bytes = budget;
    p.sched = report.scheduled;
    p.images_per_sec =
        report.eval_seconds > 0.0
            ? static_cast<double>(report.eval_images) / report.eval_seconds
            : 0.0;
    p.identical_to_full = report.to_json(false) == full_json;
    points.push_back(p);
  }

  std::printf("  %12s %10s %12s %10s %12s %12s\n", "budget", "img/s",
              "p99 batch", "ttd", "worst ttd", "coverage");
  std::printf("  %12s %10s %12s %10s %12s %12s\n", "bytes/slice", "",
              "ms", "slices", "ms", "ms");
  bench::rule();
  for (const ParetoPoint& p : points) {
    char budget[32];
    if (p.budget_bytes < 0)
      std::snprintf(budget, sizeof(budget), "unlimited");
    else
      std::snprintf(budget, sizeof(budget), "%lld",
                    static_cast<long long>(p.budget_bytes));
    std::printf("  %12s %10.0f %12.3f %10lld %12.3f %12.3f%s\n", budget,
                p.images_per_sec, p.sched.p99_batch_ms,
                static_cast<long long>(p.sched.worst_ttd_slices),
                p.sched.worst_ttd_ms, p.sched.mean_sweep_ms,
                p.identical_to_full ? "" : "   REPORT MISMATCH");
  }

  // ---- gates ----
  bool identity_ok = true, monotone_ttd = true, coverage_ok = true;
  for (const ParetoPoint& p : points) {
    identity_ok = identity_ok && p.identical_to_full;
    // Every trial must complete its sweep and detect the injection.
    coverage_ok = coverage_ok && p.sched.trials > 0 &&
                  p.sched.detected_trials == p.sched.trials &&
                  p.sched.mean_sweep_ms >= 0.0;
  }
  // budgets run smallest -> unlimited; a larger slice budget covers the
  // first flagged chunk at the same or an earlier slice index.
  for (std::size_t i = 1; i < points.size(); ++i)
    monotone_ttd = monotone_ttd && points[i].sched.worst_ttd_slices <=
                                       points[i - 1].sched.worst_ttd_slices;

  std::printf("  gates: identity %s, monotone ttd %s, coverage %s\n",
              identity_ok ? "ok" : "FAIL", monotone_ttd ? "ok" : "FAIL",
              coverage_ok ? "ok" : "FAIL");

  // ---- BENCH_pareto.json (custom shape: one row per budget point) ----
  const char* dir = std::getenv("RADAR_BENCH_JSON_DIR");
  const std::string path =
      (dir != nullptr ? std::string(dir) + "/" : std::string()) +
      "BENCH_pareto.json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"pareto\",\n");
    std::fprintf(f, "  \"chunk_bytes\": %lld,\n",
                 static_cast<long long>(kChunkBytes));
    std::fprintf(f, "  \"identity_ok\": %s,\n",
                 identity_ok ? "true" : "false");
    std::fprintf(f, "  \"monotone_ttd\": %s,\n",
                 monotone_ttd ? "true" : "false");
    std::fprintf(f, "  \"coverage_ok\": %s,\n",
                 coverage_ok ? "true" : "false");
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const ParetoPoint& p = points[i];
      const campaign::ScheduledStats& s = p.sched;
      std::fprintf(f,
                   "    {\"budget_bytes\": %lld, \"images_per_sec\": %.1f"
                   ", \"p99_batch_ms\": %.3f, \"worst_ttd_slices\": %lld"
                   ", \"mean_ttd_slices\": %.2f, \"worst_ttd_ms\": %.3f"
                   ", \"mean_ttd_ms\": %.3f, \"coverage_period_ms\": %.3f"
                   ", \"slices_per_sweep\": %.2f"
                   ", \"scan_bytes_per_sec\": %.0f}%s\n",
                   static_cast<long long>(p.budget_bytes), p.images_per_sec,
                   s.p99_batch_ms,
                   static_cast<long long>(s.worst_ttd_slices),
                   s.mean_ttd_slices, s.worst_ttd_ms, s.mean_ttd_ms,
                   s.mean_sweep_ms, s.mean_slices_per_sweep,
                   s.scan_bytes_per_sec,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("  json: %s (%zu points)\n", path.c_str(), points.size());
  }

  return (identity_ok && monotone_ttd && coverage_ok) ? 0 : 1;
}
