// Fig. 2 — Proportion of groups receiving multiple vulnerable bits, as a
// function of group size G.
//
// Paper: the proportion is near zero for small G and grows super-linearly
// with G (vulnerable bits are scattered, not clustered). We additionally
// print the interleaved grouping, which suppresses residual clustering.
#include <cstdio>
#include <vector>

#include "attack/profile_stats.h"
#include "bench_util.h"
#include "common/env.h"
#include "exp/workspace.h"

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(10, 3));
  bench::heading("Fig. 2", "proportion of multi-flip groups vs G");
  bench::note("rounds = " + std::to_string(rounds) + " x 10 PBFA flips");

  struct Config {
    const char* id;
    std::vector<std::int64_t> gs;
  };
  const Config configs[] = {
      {"resnet20", {4, 8, 16, 32, 64}},
      {"resnet18", {64, 128, 256, 512, 1024}},
  };

  for (const auto& cfg : configs) {
    exp::ModelBundle bundle = exp::load_or_train(cfg.id);
    const auto profiles = exp::load_or_run_pbfa(bundle, 10, rounds);
    const auto sizes = bundle.layer_sizes();
    std::printf("\n%s:\n", cfg.id);
    std::printf("  %-8s %22s %22s\n", "G", "multi-flip (contiguous)",
                "multi-flip (interleaved)");
    bench::rule();
    double prev = -1.0;
    for (const auto g : cfg.gs) {
      const double contiguous =
          attack::multi_flip_group_proportion(profiles, sizes, g, false);
      const double interleaved =
          attack::multi_flip_group_proportion(profiles, sizes, g, true);
      std::printf("  %-8lld %21.2f%% %21.2f%%\n",
                  static_cast<long long>(g), 100.0 * contiguous,
                  100.0 * interleaved);
      if (prev >= 0.0 && contiguous + 1e-9 < prev)
        std::printf("  (note: non-monotone at this sample size)\n");
      prev = contiguous;
    }
  }
  bench::rule();
  std::printf(
      "paper shape: ~0%% at the smallest G, super-linear growth toward the "
      "largest G (up to ~16-24%%).\n");
  return 0;
}
