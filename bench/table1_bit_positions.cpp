// Table I — Number of PBFA attacks in different bit positions.
//
// Paper (100 rounds x 10 flips): ResNet-20: MSB 0->1 = 334, 1->0 = 666,
// others = 0; ResNet-18: 16 / 897 / 87. The headline claim is that PBFA
// overwhelmingly targets MSBs; the 0->1 vs 1->0 split depends on the
// trained weight distribution.
#include <cstdio>

#include "attack/profile_stats.h"
#include "bench_util.h"
#include "common/env.h"
#include "exp/workspace.h"

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(10, 3));
  bench::heading("Table I", "PBFA flip counts by bit position");
  bench::note("rounds = " + std::to_string(rounds) +
              " x 10 flips (paper: 100 x 10; scale with RADAR_ROUNDS)");

  struct PaperRow {
    const char* id;
    int msb01, msb10, others;
  };
  const PaperRow paper[] = {{"resnet20", 334, 666, 0},
                            {"resnet18", 16, 897, 87}};

  std::printf("%-10s %14s %14s %8s   | paper (per 1000 flips)\n", "model",
              "MSB (0->1)", "MSB (1->0)", "others");
  bench::rule();
  for (const auto& row : paper) {
    exp::ModelBundle bundle = exp::load_or_train(row.id);
    const auto profiles = exp::load_or_run_pbfa(bundle, 10, rounds);
    const attack::BitPositionStats s = attack::bit_position_stats(profiles);
    const double norm =
        s.total() > 0 ? 1000.0 / static_cast<double>(s.total()) : 0.0;
    std::printf("%-10s %14.0f %14.0f %8.0f   | %d / %d / %d\n", row.id,
                s.msb_zero_to_one * norm, s.msb_one_to_zero * norm,
                s.others * norm, row.msb01, row.msb10, row.others);
  }
  bench::rule();
  std::printf("claim reproduced if MSB flips dominate (>= ~900/1000).\n");
  return 0;
}
