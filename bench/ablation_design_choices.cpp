// Ablations of RADAR's design choices (DESIGN.md §5).
//
// (a) interleave skew t: 0 (pure stride) vs 3 (paper) vs no interleave,
//     against the knowledgeable paired-flip attacker;
// (b) mask-key expansion: repeating the 16-bit key (paper's literal
//     scheme) vs counter-mode PRF (library default);
// (c) recovery policy: zero-out (instant, approximate) vs halt-and-reload
//     (exact, pays DRAM refill) — accuracy and modeled time.
#include <cstdio>

#include "bench_util.h"
#include "common/env.h"
#include "exp/workspace.h"
#include "sim/netdesc.h"
#include "sim/timing.h"

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(6, 2));
  bench::heading("Ablation", "design choices of the RADAR scheme");

  exp::ModelBundle bundle = exp::load_or_train("resnet20");
  const auto know_profiles =
      exp::load_or_run_knowledgeable(bundle, 10, rounds, 32);
  double mean_flips = 0.0;
  for (const auto& r : know_profiles)
    mean_flips += static_cast<double>(r.flips.size());
  mean_flips /= static_cast<double>(know_profiles.size());

  // (a) skew ablation under the knowledgeable attacker, G = 32.
  std::printf("\n(a) interleave skew vs knowledgeable attacker (G=32, "
              "%.1f flips/round):\n",
              mean_flips);
  std::printf("  %-24s %14s %14s\n", "layout", "detected", "recovered acc");
  bench::rule();
  struct LayoutCfg {
    const char* name;
    bool interleave;
    std::int64_t skew;
  };
  for (const LayoutCfg lc : {LayoutCfg{"contiguous", false, 0},
                             LayoutCfg{"interleave, skew 0", true, 0},
                             LayoutCfg{"interleave, skew 3", true, 3}}) {
    core::RadarConfig rc;
    rc.group_size = 32;
    rc.interleave = lc.interleave;
    rc.skew = lc.skew;
    const auto s =
        exp::summarize_recovery(bundle, know_profiles, rc, 64, 256);
    std::printf("  %-24s %11.2f/%-2.0f %13.2f%%\n", lc.name,
                s.mean_detected, mean_flips,
                100.0 * s.mean_acc_recovered);
  }

  // (b) mask expansion ablation.
  std::printf("\n(b) mask-key expansion (G=32, interleaved):\n");
  std::printf("  %-24s %14s\n", "expansion", "detected");
  bench::rule();
  for (const auto expansion : {core::MaskStream::Expansion::kRepeat,
                               core::MaskStream::Expansion::kPrf}) {
    core::RadarConfig rc;
    rc.group_size = 32;
    rc.expansion = expansion;
    const auto s =
        exp::summarize_recovery(bundle, know_profiles, rc, 64, /*eval=*/0);
    std::printf("  %-24s %11.2f/%-2.0f\n",
                expansion == core::MaskStream::Expansion::kRepeat
                    ? "16-bit key, repeating"
                    : "16-bit key, PRF",
                s.mean_detected, mean_flips);
  }

  // (c) recovery policy: accuracy + modeled time at paper scale.
  std::printf("\n(c) recovery policy (G=32, interleaved, PBFA 10 flips):\n");
  const auto pbfa_profiles = exp::load_or_run_pbfa(
      bundle, 10, static_cast<int>(experiment_rounds(10, 3)));
  {
    core::RadarConfig rc;
    rc.group_size = 32;
    // Zero-out accuracy from the standard replay path.
    const auto zero =
        exp::summarize_recovery(bundle, pbfa_profiles, rc, 10, 256);
    std::printf("  %-24s %14s %14s\n", "policy", "accuracy", "time @R18");
    bench::rule();
    sim::TimingSimulator tsim;
    std::printf("  %-24s %13.2f%% %12.1f us\n", "zero-out (paper)",
                100.0 * zero.mean_acc_recovered,
                1e6 * tsim.zero_out_seconds(32 * 10));
    // Reload restores the clean model exactly: accuracy = clean.
    std::printf("  %-24s %13.2f%% %12.1f ms\n", "halt + clean reload",
                100.0 * bundle.clean_accuracy,
                1e3 * tsim.reload_seconds(
                          sim::resnet18_shape().total_weights()));
  }
  bench::rule();
  std::printf(
      "expected: skew-3 interleave dominates against paired flips; both "
      "key expansions detect (masking is what matters); reload is exact "
      "but ~1000x slower than zero-out.\n");
  return 0;
}
