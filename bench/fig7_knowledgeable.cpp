// Fig. 7 — Knowledgeable attacker on ResNet-20: PBFA plus canceling decoy
// pairs (≈20 flips total), detection and recovery vs group size.
//
// Paper: without interleaving the detection ratio collapses (the attacker
// successfully pairs 0->1 / 1->0 flips inside checksum groups) and the
// recovered accuracy drops with it; interleaving (plus masking) keeps
// detection near the plain-PBFA level. For each defender G we give the
// attacker the strongest assumption — the true G, contiguous — so the
// non-interleaved series is a worst case.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "exp/workspace.h"

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(6, 2));
  bench::heading("Fig. 7", "knowledgeable attacker (ResNet-20)");
  bench::note("rounds = " + std::to_string(rounds) +
              "; 10 primary PBFA flips + canceling decoys (~20 total)");

  exp::ModelBundle bundle = exp::load_or_train("resnet20");
  const std::vector<std::int64_t> gs = {4, 8, 16, 32, 64};

  std::printf("  %-6s %8s %18s %18s %14s %14s\n", "G", "flips",
              "detected (w/o ilv)", "detected (ilv)", "acc (w/o)",
              "acc (ilv)");
  bench::rule();
  for (const auto g : gs) {
    const auto profiles =
        exp::load_or_run_knowledgeable(bundle, 10, rounds, g);
    double mean_flips = 0.0;
    for (const auto& r : profiles)
      mean_flips += static_cast<double>(r.flips.size());
    mean_flips /= static_cast<double>(profiles.size());

    core::RadarConfig rc;
    rc.group_size = g;
    rc.interleave = false;
    // Replay all flips (primary + decoys): n_bf large enough to take all.
    const auto plain = exp::summarize_recovery(bundle, profiles, rc, 64, 256);
    rc.interleave = true;
    const auto inter = exp::summarize_recovery(bundle, profiles, rc, 64, 256);
    std::printf("  %-6lld %8.1f %15.2f/%-2.0f %15.2f/%-2.0f %13.2f%% %13.2f%%\n",
                static_cast<long long>(g), mean_flips, plain.mean_detected,
                mean_flips, inter.mean_detected, mean_flips,
                100.0 * plain.mean_acc_recovered,
                100.0 * inter.mean_acc_recovered);
  }
  bench::rule();
  std::printf(
      "paper shape: w/o interleave detection drops well below the flip "
      "count (pairs cancel); with interleave it stays near-complete and "
      "recovery accuracy is much higher at small G.\n");
  return 0;
}
