// Table V — Overhead comparison with CRC techniques.
//
// Paper: ResNet-20 G=8: CRC 84.2ms/Δ17.9ms, 28.7 KB vs RADAR
// 69.8ms/Δ3.5ms, 8.2 KB. ResNet-18 G=512: CRC-13 3.585s/Δ0.317s, 36.4 KB
// vs RADAR 3.328s/Δ0.060s, 5.6 KB; CRC-10 (MSB-only) Δ0.315s / 28.0 KB.
//
// We report the modeled times and exact storage, plus measured host-CPU
// throughput of our actual CRC/checksum implementations as a sanity check
// on the relative cost ranking.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "codes/crc.h"
#include "codes/hamming.h"
#include "common/rng.h"
#include "core/checksum.h"
#include "core/scanner.h"
#include "sim/netdesc.h"
#include "sim/timing.h"

namespace {
/// ns per byte of a callable applied to `data` repeatedly.
template <typename F>
double ns_per_byte(const std::vector<std::int8_t>& data, F&& f, int reps) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         (static_cast<double>(reps) * static_cast<double>(data.size()));
}
}  // namespace

int main() {
  using namespace radar;
  bench::heading("Table V", "RADAR vs CRC: time and storage");

  sim::TimingSimulator sim;
  struct Row {
    const char* id;
    sim::NetworkShape shape;
    std::int64_t g;
    const char* paper_crc;
    const char* paper_radar;
  };
  const Row rows[] = {
      {"resnet20; G=8", sim::resnet20_shape(), 8,
       "84.2ms/17.9ms, 28.7KB", "69.8ms/3.5ms, 8.2KB"},
      {"resnet18; G=512", sim::resnet18_shape(), 512,
       "3.585s/0.317s, 36.4KB", "3.328s/0.060s, 5.6KB"},
  };

  for (const auto& row : rows) {
    const int crc_bits =
        codes::HammingSecDed::parity_bits_for(row.g * 8);  // 7 or 13
    const auto crc = sim.crc_seconds(row.shape, row.g, crc_bits);
    const auto radar = sim.radar_seconds(row.shape, row.g, true);
    std::printf("\n%s:\n", row.id);
    std::printf("  %-10s %12s %12s %12s\n", "scheme", "time", "delta",
                "storage");
    bench::rule();
    std::printf("  CRC-%-6d %10.1fms %10.1fms %9.1f KB   | paper %s\n",
                crc_bits, 1e3 * crc.total(), 1e3 * crc.detection,
                static_cast<double>(
                    row.shape.code_storage_bytes(row.g, crc_bits)) /
                    1024.0,
                row.paper_crc);
    std::printf("  RADAR      %10.1fms %10.1fms %9.1f KB   | paper %s\n",
                1e3 * radar.total(), 1e3 * radar.detection,
                static_cast<double>(
                    row.shape.signature_storage_bytes(row.g, 2)) /
                    1024.0,
                row.paper_radar);
  }

  // MSB-only CRC-10 alternative (paper's last paragraph of §VII.B).
  {
    const auto crc10 = sim.crc_seconds(sim::resnet18_shape(), 512, 10);
    std::printf(
        "\nMSB-only CRC-10 on ResNet-18: delta %.3fs, storage %.1f KB "
        "(paper 0.315s / 28.0 KB)\n",
        crc10.detection,
        static_cast<double>(
            sim::resnet18_shape().code_storage_bytes(512, 10)) /
            1024.0);
  }

  // Host-CPU ground truth: our real implementations, 512-byte groups.
  {
    Rng rng(1);
    std::vector<std::int8_t> data(1 << 20);
    for (auto& b : data) b = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    const core::GroupLayout layout = core::GroupLayout::interleaved(
        static_cast<std::int64_t>(data.size()), 512, 3);
    const core::MaskStream mask(0xBEEF);
    volatile std::int64_t sink = 0;

    codes::Crc crc13(codes::CrcSpec::crc13());
    const double crc_table = ns_per_byte(
        data,
        [&] {
          sink += crc13.compute_i8(
              std::span<const std::int8_t>(data.data(), data.size()));
        },
        8);
    const double crc_serial = ns_per_byte(
        data,
        [&] {
          sink += crc13.compute_bitwise(std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(data.data()),
              data.size()));
        },
        2);
    const core::LayerScanner scanner(layout, mask, 2);
    const double radar_scan = ns_per_byte(
        data,
        [&] {
          auto sums = scanner.masked_sums(
              std::span<const std::int8_t>(data.data(), data.size()));
          sink += sums[0];
        },
        8);
    std::printf(
        "\nhost-CPU measured (this machine, ns/byte): RADAR streaming scan "
        "%.2f, CRC-13 table %.2f, CRC-13 bit-serial %.2f\n",
        radar_scan, crc_table, crc_serial);
    std::printf(
        "claim reproduced if the RADAR scan is cheapest and bit-serial CRC "
        "(the MCU-class implementation the paper models) is the most "
        "expensive.\n");
  }
  return 0;
}
