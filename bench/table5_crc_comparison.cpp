// Table V — Overhead comparison with CRC techniques.
//
// Paper: ResNet-20 G=8: CRC 84.2ms/Δ17.9ms, 28.7 KB vs RADAR
// 69.8ms/Δ3.5ms, 8.2 KB. ResNet-18 G=512: CRC-13 3.585s/Δ0.317s, 36.4 KB
// vs RADAR 3.328s/Δ0.060s, 5.6 KB; CRC-10 (MSB-only) Δ0.315s / 28.0 KB.
//
// We report the modeled times and exact storage, plus a measured
// comparison of every registered IntegrityScheme scanning the same
// quantized model — the host-CPU ground truth for the relative cost
// ranking the paper's table asserts — and a campaign-engine sweep of the
// same schemes' detection rates under random MSB faults (the capability
// axis the table's storage/time tradeoff buys).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "campaign/campaign.h"
#include "codes/hamming.h"
#include "common/env.h"
#include "common/rng.h"
#include "core/scan_session.h"
#include "core/scheme_registry.h"
#include "sim/netdesc.h"
#include "sim/timing.h"

int main() {
  using namespace radar;
  bench::heading("Table V", "RADAR vs CRC: time and storage");

  sim::TimingSimulator sim;
  struct Row {
    const char* id;
    sim::NetworkShape shape;
    std::int64_t g;
    const char* paper_crc;
    const char* paper_radar;
  };
  const Row rows[] = {
      {"resnet20; G=8", sim::resnet20_shape(), 8,
       "84.2ms/17.9ms, 28.7KB", "69.8ms/3.5ms, 8.2KB"},
      {"resnet18; G=512", sim::resnet18_shape(), 512,
       "3.585s/0.317s, 36.4KB", "3.328s/0.060s, 5.6KB"},
  };

  for (const auto& row : rows) {
    const int crc_bits =
        codes::HammingSecDed::parity_bits_for(row.g * 8);  // 7 or 13
    const auto crc = sim.crc_seconds(row.shape, row.g, crc_bits);
    const auto radar = sim.radar_seconds(row.shape, row.g, true);
    std::printf("\n%s:\n", row.id);
    std::printf("  %-10s %12s %12s %12s\n", "scheme", "time", "delta",
                "storage");
    bench::rule();
    std::printf("  CRC-%-6d %10.1fms %10.1fms %9.1f KB   | paper %s\n",
                crc_bits, 1e3 * crc.total(), 1e3 * crc.detection,
                static_cast<double>(
                    row.shape.code_storage_bytes(row.g, crc_bits)) /
                    1024.0,
                row.paper_crc);
    std::printf("  RADAR      %10.1fms %10.1fms %9.1f KB   | paper %s\n",
                1e3 * radar.total(), 1e3 * radar.detection,
                static_cast<double>(
                    row.shape.signature_storage_bytes(row.g, 2)) /
                    1024.0,
                row.paper_radar);
  }

  // MSB-only CRC-10 alternative (paper's last paragraph of §VII.B).
  {
    const auto crc10 = sim.crc_seconds(sim::resnet18_shape(), 512, 10);
    std::printf(
        "\nMSB-only CRC-10 on ResNet-18: delta %.3fs, storage %.1f KB "
        "(paper 0.315s / 28.0 KB)\n",
        crc10.detection,
        static_cast<double>(
            sim::resnet18_shape().code_storage_bytes(512, 10)) /
            1024.0);
  }

  // Host-CPU ground truth: every registered scheme scanning the same
  // quantized model through the scheme-agnostic API.
  {
    bench::JsonReport json("table5_crc_comparison");
    nn::ResNetSpec spec;
    spec.num_classes = 8;
    spec.base_width = 16;
    spec.blocks_per_stage = {2, 2};
    spec.name = "bench-net";
    Rng rng(1);
    nn::ResNet model(spec, rng);
    quant::QuantizedModel qm(model);
    const auto bytes = static_cast<double>(qm.total_weights());

    core::SchemeParams params;
    params.group_size = 512;
    std::printf("\nmeasured on this machine (%lld int8 weights):\n",
                static_cast<long long>(qm.total_weights()));
    std::printf("  %-16s %12s %12s %12s\n", "scheme", "scan ns/byte",
                "MB/s", "storage B");
    bench::rule();
    for (const auto& id : core::SchemeRegistry::instance().ids()) {
      auto scheme = core::SchemeRegistry::instance().create(id, params);
      scheme->attach(qm);
      const double ns = bench::measure_ns_per_op(
          [&] { (void)scheme->scan(qm); });
      json.add("scan/" + id, ns, bytes);
      std::printf("  %-16s %12.3f %12.1f %12lld\n", id.c_str(), ns / bytes,
                  bytes / ns * 1e3,
                  static_cast<long long>(scheme->signature_storage_bytes()));
    }

    // Layer-parallel ScanSession scaling on the cheapest scheme.
    auto radar = core::SchemeRegistry::instance().create("radar2", params);
    radar->attach(qm);
    std::printf("\nScanSession scaling (radar2):\n");
    for (const std::size_t threads : {1, 2, 4}) {
      const core::ScanSession session(*radar, threads);
      const double ns = bench::measure_ns_per_op(
          [&] { (void)session.scan(qm); });
      json.add("scan_session/radar2/t" + std::to_string(threads), ns, bytes);
      std::printf("  %zu thread(s): %10.1f us/scan\n", threads, ns / 1e3);
    }
    std::printf(
        "claim reproduced if the RADAR scan is the cheapest per byte of "
        "the measured schemes.\n");
    json.write();
  }

  // Capability side of the tradeoff: every registered scheme against the
  // same random-MSB fault campaign (detection rate per storage byte).
  {
    campaign::CampaignSpec spec;
    spec.name = "table5/detection";
    spec.model = "tiny";
    spec.train = false;
    spec.trials = static_cast<int>(experiment_rounds(5, 2));
    spec.seed = 0x7AB1E5;
    spec.attackers = {{.kind = "random_msb", .flips = 10}};
    for (const auto& id : core::SchemeRegistry::instance().ids()) {
      campaign::SchemeSpec s;
      s.id = id;
      s.params.group_size = 512;
      spec.schemes.push_back(s);
    }
    const auto report =
        campaign::CampaignRunner(bench_threads()).run(spec);
    std::printf("\ndetection of 10 random MSB faults (G=512, %d trials):\n",
                spec.trials);
    std::printf("  %-16s %14s %10s\n", "scheme", "detection", "missed");
    bench::rule();
    for (std::size_t si = 0; si < spec.schemes.size(); ++si) {
      const auto& c = report.cell(0, 0, si);
      std::printf("  %-16s %13.1f%% %9.0f%%\n", spec.schemes[si].id.c_str(),
                  100.0 * c.detection_rate, 100.0 * c.miss_rate);
    }
    std::printf(
        "RADAR trades a few detection points for an order of magnitude "
        "less storage than the CRC family.\n");
  }
  return 0;
}
