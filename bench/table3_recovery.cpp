// Table III — Accuracy recovery of the RADAR scheme.
//
// Paper (test accuracy %, "w/o interleave / with interleave"):
//   ResNet-20: clean 90.15; NBF=5 -> 40.72, NBF=10 -> 18.01 after attack;
//     recovery at G=8/16/32 climbs back to 61..86%.
//   ResNet-18: clean 69.79; NBF=5 -> 5.66, NBF=10 -> 0.18 after attack;
//     recovery at G=128/256/512 climbs back to 57..68%.
// Absolute accuracies differ on our synthetic stand-in datasets; the shape
// (catastrophic drop -> near-clean recovery, better with interleave and
// smaller G) is what this bench reproduces.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "exp/workspace.h"

namespace {
constexpr std::int64_t kEvalSubset = 256;
}

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(10, 3));
  bench::heading("Table III", "accuracy recovery of the RADAR scheme");
  bench::note("rounds = " + std::to_string(rounds) + ", accuracy on " +
              std::to_string(kEvalSubset) + " test images");

  struct Config {
    const char* id;
    std::vector<std::int64_t> gs;
    const char* paper_clean;
    const char* paper_row5;
    const char* paper_row10;
  };
  const Config configs[] = {
      {"resnet20",
       {8, 16, 32},
       "90.15",
       "40.72 -> 82.66/85.64, 76.39/83.72, 68.06/73.35",
       "18.01 -> 80.86/81.07, 70.53/77.96, 61.62/61.32"},
      {"resnet18",
       {128, 256, 512},
       "69.79",
       " 5.66 -> 66.60/67.51, 65.12/66.15, 62.89/62.87",
       " 0.18 -> 62.69/66.33, 59.95/64.96, 57.46/60.69"},
  };

  for (const auto& cfg : configs) {
    exp::ModelBundle bundle = exp::load_or_train(cfg.id);
    const auto profiles = exp::load_or_run_pbfa(bundle, 10, rounds);
    std::printf("\n%s: clean accuracy %.2f%%  (paper clean %s%%)\n",
                cfg.id, 100.0 * bundle.clean_accuracy, cfg.paper_clean);
    if (bundle.group_scale != 1)
      std::printf("  (reduced-width model: paper G mapped to G/%lld — same "
                  "groups-per-layer granularity)\n",
                  static_cast<long long>(bundle.group_scale));
    std::printf("  %-5s %10s", "NBF", "attacked");
    for (const auto g : cfg.gs)
      std::printf("     G=%-4lld w/o / ilv", static_cast<long long>(g));
    std::printf("\n");
    bench::rule();
    for (const int nbf : {5, 10}) {
      // Attacked accuracy is independent of (G, interleave): average the
      // per-round replays once.
      double attacked = 0.0;
      std::vector<std::vector<double>> recovered(
          cfg.gs.size(), std::vector<double>(2, 0.0));
      for (const auto& round : profiles) {
        bool attacked_done = false;
        for (std::size_t gi = 0; gi < cfg.gs.size(); ++gi) {
          for (int ilv = 0; ilv < 2; ++ilv) {
            core::RadarConfig rc;
            rc.group_size = bundle.scaled_group(cfg.gs[gi]);
            rc.interleave = (ilv == 1);
            const exp::RecoveryOutcome o = exp::replay_and_recover(
                bundle, round, rc, nbf, kEvalSubset,
                /*measure_attacked=*/!attacked_done);
            recovered[gi][static_cast<std::size_t>(ilv)] +=
                o.accuracy_recovered;
            if (!attacked_done) {
              attacked += o.accuracy_attacked;
              attacked_done = true;
            }
          }
        }
      }
      const double n = static_cast<double>(profiles.size());
      std::printf("  %-5d %9.2f%%", nbf, 100.0 * attacked / n);
      for (std::size_t gi = 0; gi < cfg.gs.size(); ++gi)
        std::printf("     %6.2f%% / %6.2f%%", 100.0 * recovered[gi][0] / n,
                    100.0 * recovered[gi][1] / n);
      std::printf("\n");
    }
    std::printf("  paper NBF=5 : %s\n", cfg.paper_row5);
    std::printf("  paper NBF=10: %s\n", cfg.paper_row10);
  }
  bench::rule();
  std::printf(
      "claim reproduced if recovery returns close to clean accuracy and "
      "interleaving/smaller G help.\n");
  return 0;
}
