// Table III — Accuracy recovery of the RADAR scheme.
//
// Paper (test accuracy %, "w/o interleave / with interleave"):
//   ResNet-20: clean 90.15; NBF=5 -> 40.72, NBF=10 -> 18.01 after attack;
//     recovery at G=8/16/32 climbs back to 61..86%.
//   ResNet-18: clean 69.79; NBF=5 -> 5.66, NBF=10 -> 0.18 after attack;
//     recovery at G=128/256/512 climbs back to 57..68%.
// Absolute accuracies differ on our synthetic stand-in datasets; the shape
// (catastrophic drop -> near-clean recovery, better with interleave and
// smaller G) is what this bench reproduces.
//
// Declared over the campaign engine: PBFA attacker columns (NBF 5, 10)
// against a radar2 column per (G, interleave) point, with accuracy
// evaluation on kEvalSubset test images.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "campaign/campaign.h"
#include "common/env.h"
#include "exp/workspace.h"

namespace {
constexpr std::int64_t kEvalSubset = 256;
}

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(10, 3));
  bench::heading("Table III", "accuracy recovery of the RADAR scheme");
  bench::note("rounds = " + std::to_string(rounds) + ", accuracy on " +
              std::to_string(kEvalSubset) + " test images");

  struct Config {
    const char* id;
    std::vector<std::int64_t> gs;
    const char* paper_clean;
    const char* paper_row5;
    const char* paper_row10;
  };
  const Config configs[] = {
      {"resnet20",
       {8, 16, 32},
       "90.15",
       "40.72 -> 82.66/85.64, 76.39/83.72, 68.06/73.35",
       "18.01 -> 80.86/81.07, 70.53/77.96, 61.62/61.32"},
      {"resnet18",
       {128, 256, 512},
       "69.79",
       " 5.66 -> 66.60/67.51, 65.12/66.15, 62.89/62.87",
       " 0.18 -> 62.69/66.33, 59.95/64.96, 57.46/60.69"},
  };

  for (const auto& cfg : configs) {
    campaign::CampaignSpec spec;
    spec.name = std::string("table3/") + cfg.id;
    spec.model = cfg.id;
    spec.trials = rounds;
    spec.eval_subset = kEvalSubset;
    spec.cache_tag = "table3";
    spec.attackers = {{.kind = "pbfa", .flips = 5},
                      {.kind = "pbfa", .flips = 10}};
    for (const auto g : cfg.gs) {
      for (const bool ilv : {false, true}) {
        campaign::SchemeSpec s;
        s.id = "radar2";
        s.params.group_size = exp::paper_group(cfg.id, g);
        s.params.interleave = ilv;
        spec.schemes.push_back(s);
      }
    }
    const auto report =
        campaign::CampaignRunner(bench_threads()).run(spec);

    const std::int64_t scale = exp::group_scale_for(cfg.id);
    std::printf("\n%s: clean accuracy %.2f%%  (paper clean %s%%)\n",
                cfg.id, 100.0 * report.clean_accuracy, cfg.paper_clean);
    if (scale != 1)
      std::printf("  (reduced-width model: paper G mapped to G/%lld — same "
                  "groups-per-layer granularity)\n",
                  static_cast<long long>(scale));
    std::printf("  %-5s %10s", "NBF", "attacked");
    for (const auto g : cfg.gs)
      std::printf("     G=%-4lld w/o / ilv", static_cast<long long>(g));
    std::printf("\n");
    bench::rule();
    const int nbfs[] = {5, 10};
    for (std::size_t ai = 0; ai < 2; ++ai) {
      std::printf("  %-5d %9.2f%%", nbfs[ai],
                  100.0 * report.cell(ai, 0, 0).mean_acc_attacked);
      for (std::size_t gi = 0; gi < cfg.gs.size(); ++gi)
        std::printf("     %6.2f%% / %6.2f%%",
                    100.0 * report.cell(ai, 0, 2 * gi).mean_acc_recovered,
                    100.0 * report.cell(ai, 0, 2 * gi + 1).mean_acc_recovered);
      std::printf("\n");
    }
    std::printf("  paper NBF=5 : %s\n", cfg.paper_row5);
    std::printf("  paper NBF=10: %s\n", cfg.paper_row10);
  }
  bench::rule();
  std::printf(
      "claim reproduced if recovery returns close to clean accuracy and "
      "interleaving/smaller G help.\n");
  return 0;
}
