// §VI.B miss-rate study — Monte-Carlo probability that an attack of 10
// random MSB flips on a 512-weight layer escapes detection entirely.
//
// Paper: miss rate ~1e-5 at G=32 and ~1e-6 at G=16 over 1e6 rounds. A
// miss requires every flipped group's masked sum to be unchanged (or to
// slip past both signature bits), i.e. flips must pair up inside groups
// with canceling masked directions.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/bits.h"
#include "common/env.h"
#include "common/rng.h"
#include "core/checksum.h"

namespace {

using namespace radar;
using core::GroupLayout;
using core::MaskStream;
using core::Signature;

/// One Monte-Carlo round: returns true when NO group is flagged.
bool round_is_missed(std::vector<std::int8_t>& weights,
                     const GroupLayout& layout, const MaskStream& mask,
                     Rng& rng, int n_flips) {
  const auto sites = rng.sample_without_replacement(weights.size(),
                                                    static_cast<std::size_t>(n_flips));
  // Record clean signatures of affected groups, flip, compare, restore.
  std::map<std::int64_t, Signature> clean;
  for (const auto s : sites) {
    const std::int64_t g = layout.group_of(static_cast<std::int64_t>(s));
    if (!clean.count(g))
      clean[g] = core::group_signature(weights, layout, g, mask, 2);
  }
  for (const auto s : sites)
    weights[s] = flip_bit(weights[s], kMsb);
  bool missed = true;
  for (const auto& [g, sig] : clean) {
    if (!(core::group_signature(weights, layout, g, mask, 2) == sig)) {
      missed = false;
      break;
    }
  }
  for (const auto s : sites)
    weights[s] = flip_bit(weights[s], kMsb);
  return missed;
}

}  // namespace

int main() {
  const std::int64_t rounds = radar::experiment_rounds(1000000, 50000);
  radar::bench::heading("§VI.B", "MSB-attack miss rate, 512-weight layer");
  radar::bench::note("rounds = " + std::to_string(rounds) +
                     " x 10 random MSB flips (paper: 1e6)");

  Rng init_rng(2024);
  std::vector<std::int8_t> weights(512);
  for (auto& w : weights)
    w = static_cast<std::int8_t>(init_rng.uniform_int(-128, 127));

  std::printf("  %-6s %12s %14s   | paper\n", "G", "misses", "miss rate");
  radar::bench::rule();
  const struct {
    std::int64_t g;
    const char* paper;
  } configs[] = {{32, "~1e-5"}, {16, "~1e-6"}};
  for (const auto& cfg : configs) {
    const GroupLayout layout = GroupLayout::interleaved(512, cfg.g, 3);
    const MaskStream mask(MaskStream::derive_layer_key(0xC0FFEE, 0));
    Rng rng(7 + static_cast<std::uint64_t>(cfg.g));
    std::int64_t misses = 0;
    for (std::int64_t r = 0; r < rounds; ++r)
      if (round_is_missed(weights, layout, mask, rng, 10)) ++misses;
    std::printf("  %-6lld %12lld %14.2e   | %s\n",
                static_cast<long long>(cfg.g),
                static_cast<long long>(misses),
                rounds > 0 ? static_cast<double>(misses) /
                                 static_cast<double>(rounds)
                           : 0.0,
                cfg.paper);
  }
  radar::bench::rule();
  std::printf(
      "claim reproduced if the miss rate is <= ~1e-4 and smaller G gives a "
      "smaller rate.\n");
  return 0;
}
