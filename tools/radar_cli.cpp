// radar_cli — command-line front end for the RADAR deployment workflow.
//
// Commands are registered in a dispatch table (kCommands below): each
// entry owns its usage line, its positional-argument arity and its
// handler. `radar_cli help` prints the table; exit codes are uniform
// across commands (0 success, 1 runtime failure, 2 usage error).
//
//   radar_cli sign   <pkg> [--model tiny|resnet20|resnet18] [--group N]
//                          [--scheme NAME] [--bits 2|3] [--no-interleave]
//       Train (or load from cache) the reference model, attach the chosen
//       protection scheme and write a signed deployment package. --scheme
//       accepts any registered id (see `radar_cli schemes`); --bits 2|3 is
//       shorthand for --scheme radar2|radar3.
//
//   radar_cli info   <pkg>
//       Print package metadata, including the stored scheme id (no
//       verification).
//
//   radar_cli pack inspect <pkg>
//       Print the package format version, scheme id + parameters, and the
//       per-layer weight-arena table (byte offset / size / scale) — the
//       storage-level view of the artifact (no model, no verification).
//
//   radar_cli verify <pkg> [--model ...] [--threads N] [--mmap]
//       Load the package into a fresh model and verify CRC + golden codes
//       (scanning across N worker threads); exit code 0 only when the
//       artifact is intact. --mmap serves the reload-clean golden copy
//       from a read-only mapping of the package file (v3 packages).
//
//   radar_cli attack <pkg> [--model ...] [--flips N] [--pbfa]
//       Corrupt the package the way a rowhammer adversary would corrupt
//       DRAM (random MSB flips, or gradient-guided PBFA with --pbfa) and
//       re-save it — the golden codes are preserved, so `verify` exposes
//       the tampering.
//
//   radar_cli recover <pkg> [--model ...] [--threads N]
//       Load, zero out every flagged group, re-sign and save: the
//       offline analogue of the run-time recovery path.
//
//   radar_cli campaign <spec.json> [--threads N] [--scan-threads N]
//                          [--incremental | --scheduled] [--eval-batch N]
//                          [--scan-budget-us N] [--scan-budget-bytes N]
//                          [--eval-engine reference|batched]
//                          [--out report.json] [--csv report.csv]
//                          [--timing]
//       Run a declarative attack campaign (attackers x schemes x fault
//       rates x trials, see src/campaign/campaign_spec.h for the spec
//       format) fanned out over N worker threads, print the summary and
//       optionally write the JSON/CSV report. Reports are byte-identical
//       across thread counts at a fixed seed; --timing adds wall-clock
//       data (incl. engine images/sec) to the JSON, breaking that
//       invariance on purpose. --incremental switches the evaluation
//       phase to dirty-group scanning with write-by-write undo;
//       --eval-batch sets the images per int8-engine forward (default
//       auto) and --eval-engine selects the batched im2col+GEMM kernels
//       or the direct-convolution reference — all three keep reports
//       byte-identical (CI-enforced). --scheduled runs every trial's
//       scan through the budget-driven ScanScheduler (interleaving one
//       inference batch per slice) and records time-to-detect under the
//       --scan-budget-us / --scan-budget-bytes slice budget; default
//       reports stay byte-identical to the full-scan mode, with the QoS
//       telemetry in the --timing JSON section.
//
//   radar_cli serve --socket <path> --tenant <name>=<pkg> [...]
//                   [--model ...] [--workers N] [--queue N] [--no-scan]
//                   [--scan-shard-bytes N] [--scan-budget-us N]
//                   [--scan-budget-bytes N] [--coverage-period-ms N]
//                   [--no-mmap]
//                   [--quarantine-threshold N] [--quarantine-window-ms N]
//                   [--quarantine-backoff-ms N] [--conn-timeout-ms N]
//                   [--deadline-ms N] [--no-watchdog]
//                   [--watchdog-interval-ms N] [--scanner-stall-ms N]
//                   [--worker-stall-ms N]
//       Multi-tenant protection-as-a-service daemon: every --tenant loads
//       one signed package (mmap'd golden copy by default) behind a
//       shared worker pool, with the epoch-guarded background scanner
//       sweeping all tenants. Speaks the line protocol on the Unix
//       socket (see src/serve/daemon.h); `SHUTDOWN` exits cleanly and
//       prints the final stats JSON.
//
//   radar_cli schemes
//       List the registered scheme ids.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "attack/pbfa.h"
#include "attack/random_attack.h"
#include "campaign/campaign.h"
#include "core/package.h"
#include "core/scheme_registry.h"
#include "exp/workspace.h"
#include "serve/daemon.h"

namespace {

using namespace radar;

struct Args {
  std::string command;
  std::vector<std::string> positional;  ///< args after the command name
  std::string package;     ///< first positional (second for `pack`)
  std::string subcommand;  ///< "pack <subcommand> <file>" form
  std::string model = "tiny";
  std::string scheme;  ///< empty: derived from --bits
  std::int64_t group = 32;
  int bits = 2;
  bool interleave = true;
  int flips = 10;
  bool use_pbfa = false;
  std::size_t threads = 1;
  std::size_t scan_threads = 1;
  bool mmap_golden = false;  ///< verify: mmap the v3 arena as golden copy
  std::string out;  ///< campaign JSON report path
  std::string csv;  ///< campaign CSV report path
  bool timing = false;
  bool incremental = false;  ///< campaign: dirty-group scanning
  bool scheduled = false;    ///< campaign: budget-driven interleaved scan
  campaign::EvalOptions eval;  ///< campaign: accuracy-eval knobs
  // ---- scan QoS knobs, shared by campaign --scheduled and serve ----
  // INT64_MIN = not given on the command line (keep the mode default).
  std::int64_t scan_budget_us = INT64_MIN;
  std::int64_t scan_budget_bytes = INT64_MIN;
  std::int64_t coverage_period_ms = INT64_MIN;
  // ---- serve ----
  std::string socket;                 ///< serve: unix socket path
  std::vector<std::string> tenants;   ///< serve: name=package specs
  std::size_t workers = 2;
  std::size_t queue_capacity = 4096;
  bool scan = true;
  std::int64_t scan_shard_bytes = 16 * 1024;
  bool serve_mmap = true;
  // Quarantine policy (see ServeOptions); -1 keeps the built-in default.
  int quarantine_threshold = -1;
  std::int64_t quarantine_window_ms = -1;
  std::int64_t quarantine_backoff_ms = -1;
  // Robustness knobs (see ServeOptions / Daemon); -1 keeps defaults.
  std::int64_t conn_timeout_ms = -1;
  std::int64_t watchdog_interval_ms = -1;
  std::int64_t scanner_stall_ms = -1;
  std::int64_t worker_stall_ms = -1;
  std::int64_t default_deadline_ms = -1;
  bool watchdog = true;
};

bool parse_options(int argc, char** argv, int first_opt, Args& args) {
  for (int i = first_opt; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--model") {
      args.model = next("--model");
    } else if (a == "--scheme") {
      args.scheme = next("--scheme");
    } else if (a == "--group") {
      args.group = std::atoll(next("--group"));
    } else if (a == "--bits") {
      args.bits = std::atoi(next("--bits"));
    } else if (a == "--no-interleave") {
      args.interleave = false;
    } else if (a == "--flips") {
      args.flips = std::atoi(next("--flips"));
    } else if (a == "--pbfa") {
      args.use_pbfa = true;
    } else if (a == "--threads") {
      const int threads = std::atoi(next("--threads"));
      if (threads < 0) {
        std::fprintf(stderr, "--threads must be >= 0 (0 = all cores)\n");
        return false;
      }
      args.threads = static_cast<std::size_t>(threads);
    } else if (a == "--scan-threads") {
      const int threads = std::atoi(next("--scan-threads"));
      if (threads < 0) {
        std::fprintf(stderr, "--scan-threads must be >= 0\n");
        return false;
      }
      args.scan_threads = static_cast<std::size_t>(threads);
    } else if (a == "--out") {
      args.out = next("--out");
    } else if (a == "--csv") {
      args.csv = next("--csv");
    } else if (a == "--timing") {
      args.timing = true;
    } else if (a == "--mmap") {
      args.mmap_golden = true;
    } else if (a == "--incremental") {
      args.incremental = true;
    } else if (a == "--scheduled") {
      args.scheduled = true;
    } else if (a == "--scan-budget-us") {
      args.scan_budget_us = std::atoll(next("--scan-budget-us"));
    } else if (a == "--scan-budget-bytes") {
      args.scan_budget_bytes = std::atoll(next("--scan-budget-bytes"));
    } else if (a == "--coverage-period-ms") {
      args.coverage_period_ms = std::atoll(next("--coverage-period-ms"));
      if (args.coverage_period_ms < 0) {
        std::fprintf(stderr,
                     "--coverage-period-ms must be >= 0 (0 = alarm off)\n");
        return false;
      }
    } else if (a == "--eval-batch") {
      const int batch = std::atoi(next("--eval-batch"));
      if (batch < 0) {
        std::fprintf(stderr, "--eval-batch must be >= 0 (0 = auto)\n");
        return false;
      }
      args.eval.batch = batch;
    } else if (a == "--eval-engine") {
      const std::string kind = next("--eval-engine");
      if (kind == "reference") {
        args.eval.engine = qnn::EngineKind::kReference;
      } else if (kind == "batched") {
        args.eval.engine = qnn::EngineKind::kBatched;
      } else {
        std::fprintf(stderr,
                     "--eval-engine must be reference or batched\n");
        return false;
      }
    } else if (a == "--socket") {
      args.socket = next("--socket");
    } else if (a == "--tenant") {
      args.tenants.push_back(next("--tenant"));
    } else if (a == "--workers") {
      const int w = std::atoi(next("--workers"));
      if (w < 1) {
        std::fprintf(stderr, "--workers must be >= 1\n");
        return false;
      }
      args.workers = static_cast<std::size_t>(w);
    } else if (a == "--queue") {
      const int q = std::atoi(next("--queue"));
      if (q < 1) {
        std::fprintf(stderr, "--queue must be >= 1\n");
        return false;
      }
      args.queue_capacity = static_cast<std::size_t>(q);
    } else if (a == "--no-scan") {
      args.scan = false;
    } else if (a == "--scan-shard-bytes") {
      args.scan_shard_bytes = std::atoll(next("--scan-shard-bytes"));
      if (args.scan_shard_bytes < 1) {
        std::fprintf(stderr, "--scan-shard-bytes must be >= 1\n");
        return false;
      }
    } else if (a == "--no-mmap") {
      args.serve_mmap = false;
    } else if (a == "--quarantine-threshold") {
      args.quarantine_threshold = std::atoi(next("--quarantine-threshold"));
      if (args.quarantine_threshold < 0) {
        std::fprintf(stderr, "--quarantine-threshold must be >= 0\n");
        return false;
      }
    } else if (a == "--quarantine-window-ms") {
      args.quarantine_window_ms =
          std::atoll(next("--quarantine-window-ms"));
      if (args.quarantine_window_ms < 1) {
        std::fprintf(stderr, "--quarantine-window-ms must be >= 1\n");
        return false;
      }
    } else if (a == "--quarantine-backoff-ms") {
      args.quarantine_backoff_ms =
          std::atoll(next("--quarantine-backoff-ms"));
      if (args.quarantine_backoff_ms < 1) {
        std::fprintf(stderr, "--quarantine-backoff-ms must be >= 1\n");
        return false;
      }
    } else if (a == "--conn-timeout-ms") {
      args.conn_timeout_ms = std::atoll(next("--conn-timeout-ms"));
      if (args.conn_timeout_ms < 0) {
        std::fprintf(stderr, "--conn-timeout-ms must be >= 0 (0 = off)\n");
        return false;
      }
    } else if (a == "--watchdog-interval-ms") {
      args.watchdog_interval_ms =
          std::atoll(next("--watchdog-interval-ms"));
      if (args.watchdog_interval_ms < 1) {
        std::fprintf(stderr, "--watchdog-interval-ms must be >= 1\n");
        return false;
      }
    } else if (a == "--scanner-stall-ms") {
      args.scanner_stall_ms = std::atoll(next("--scanner-stall-ms"));
      if (args.scanner_stall_ms < 1) {
        std::fprintf(stderr, "--scanner-stall-ms must be >= 1\n");
        return false;
      }
    } else if (a == "--worker-stall-ms") {
      args.worker_stall_ms = std::atoll(next("--worker-stall-ms"));
      if (args.worker_stall_ms < 1) {
        std::fprintf(stderr, "--worker-stall-ms must be >= 1\n");
        return false;
      }
    } else if (a == "--deadline-ms") {
      args.default_deadline_ms = std::atoll(next("--deadline-ms"));
      if (args.default_deadline_ms < 0) {
        std::fprintf(stderr, "--deadline-ms must be >= 0 (0 = off)\n");
        return false;
      }
    } else if (a == "--no-watchdog") {
      args.watchdog = false;
    } else if (a == "--") {
      // explicit end of options
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return false;
    } else {
      args.positional.push_back(a);
    }
  }
  if (args.bits != 2 && args.bits != 3) {
    std::fprintf(stderr, "--bits must be 2 or 3\n");
    return false;
  }
  return true;
}

std::string scheme_id(const Args& args) {
  if (!args.scheme.empty()) return args.scheme;
  return args.bits == 3 ? "radar3" : "radar2";
}

void print_report(const core::PackageLoadReport& report) {
  std::printf("model:       %s\n", report.info.model_name.c_str());
  std::printf("layers:      %zu (%lld weights)\n", report.info.num_layers,
              static_cast<long long>(report.info.total_weights));
  std::printf("scheme:      %s (G=%lld %s)\n",
              report.info.scheme_id.c_str(),
              static_cast<long long>(report.info.params.group_size),
              report.info.params.interleave ? "interleaved" : "contiguous");
  std::printf("payload CRC: %s\n", report.crc_ok ? "ok" : "MISMATCH");
  std::printf("signatures:  %s\n",
              report.signatures_ok ? "ok" : "TAMPERING DETECTED");
  if (!report.signatures_ok) {
    for (std::size_t li = 0; li < report.tamper.flagged.size(); ++li) {
      if (report.tamper.flagged[li].empty()) continue;
      std::printf("  layer %zu: %zu flagged group(s)\n", li,
                  report.tamper.flagged[li].size());
    }
  }
}

int cmd_sign(const Args& args) {
  exp::ModelBundle bundle = exp::load_or_train(args.model);
  core::SchemeParams params;
  params.group_size = args.group;
  params.interleave = args.interleave;
  const std::string id = scheme_id(args);
  auto scheme = core::SchemeRegistry::instance().create(id, params);
  scheme->attach(*bundle.qmodel);
  core::save_package(args.package, *bundle.qmodel, *scheme, args.model);
  std::printf("signed %s with %s: %lld weights, %lld golden-code bytes -> %s\n",
              args.model.c_str(), id.c_str(),
              static_cast<long long>(bundle.qmodel->total_weights()),
              static_cast<long long>(scheme->signature_storage_bytes()),
              args.package.c_str());
  return 0;
}

int cmd_info(const Args& args) {
  const core::PackageInfo info = core::read_package_info(args.package);
  std::printf("model:   %s\n", info.model_name.c_str());
  std::printf("layers:  %zu (%lld weights)\n", info.num_layers,
              static_cast<long long>(info.total_weights));
  std::printf("scheme:  %s\n", info.scheme_id.c_str());
  std::printf("config:  G=%lld %s skew=%lld\n",
              static_cast<long long>(info.params.group_size),
              info.params.interleave ? "interleaved" : "contiguous",
              static_cast<long long>(info.params.skew));
  return 0;
}

int cmd_verify(const Args& args) {
  exp::ModelBundle bundle = exp::load_or_train(args.model);
  std::unique_ptr<core::IntegrityScheme> scheme;
  core::PackageLoadOptions opts;
  opts.threads = args.threads;
  opts.mmap_golden = args.mmap_golden;
  const auto report =
      core::load_package(args.package, *bundle.qmodel, scheme, opts);
  print_report(report);
  if (args.mmap_golden)
    std::printf("golden copy: %s\n",
                report.golden_mmapped ? "mmap (zero-copy)" : "owned (mmap unavailable)");
  return report.verified() ? 0 : 1;
}

int cmd_pack(const Args& args) {
  if (args.subcommand != "inspect") {
    std::fprintf(stderr, "unknown pack subcommand %s (try: inspect)\n",
                 args.subcommand.c_str());
    return 2;
  }
  const core::PackageInfo info = core::read_package_info(args.package);
  std::printf("package: %s\n", args.package.c_str());
  std::printf("format:  v%u%s\n", info.format_version,
              info.format_version >= core::kPackageFormatV3
                  ? " (contiguous weight arena, mmap-ready)"
                  : " (per-layer vectors)");
  std::printf("model:   %s\n", info.model_name.c_str());
  // The master key is deliberately not printed (provisioned out of band;
  // keep it out of terminal scrollback and CI logs).
  std::printf("scheme:  %s  G=%lld %s skew=%lld expansion=%s\n",
              info.scheme_id.c_str(),
              static_cast<long long>(info.params.group_size),
              info.params.interleave ? "interleaved" : "contiguous",
              static_cast<long long>(info.params.skew),
              info.params.expansion == core::MaskStream::Expansion::kPrf
                  ? "prf"
                  : "repeat");
  std::printf("arena:   %lld bytes (%lld weights in %zu layers, %lld pad)\n",
              static_cast<long long>(info.arena_bytes),
              static_cast<long long>(info.total_weights), info.num_layers,
              static_cast<long long>(info.arena_bytes - info.total_weights));
  std::printf("%-5s %-28s %12s %10s %12s\n", "layer", "name", "offset",
              "size", "scale");
  for (std::size_t li = 0; li < info.layers.size(); ++li) {
    const auto& l = info.layers[li];
    std::printf("%-5zu %-28s %12lld %10lld %12.6g\n", li, l.name.c_str(),
                static_cast<long long>(l.offset),
                static_cast<long long>(l.size),
                static_cast<double>(l.scale));
  }
  return 0;
}

int cmd_attack(const Args& args) {
  exp::ModelBundle bundle = exp::load_or_train(args.model);
  std::unique_ptr<core::IntegrityScheme> scheme;
  const auto report =
      core::load_package(args.package, *bundle.qmodel, scheme);
  if (!report.crc_ok)
    std::fprintf(stderr, "warning: package CRC already invalid\n");
  if (args.use_pbfa) {
    attack::Pbfa pbfa;
    data::Batch batch = bundle.dataset->attack_batch(16, 0xA77);
    const auto result = pbfa.run(*bundle.qmodel, batch, args.flips);
    std::printf("PBFA committed %zu flips (loss %.3f -> %.3f)\n",
                result.flips.size(), result.loss_before, result.loss_after);
  } else {
    Rng rng(0xBAD);
    attack::random_msb_flips(*bundle.qmodel, args.flips, rng);
    std::printf("flipped %d random MSBs\n", args.flips);
  }
  // Re-save with the ORIGINAL golden codes: the attacker cannot forge
  // them without the master key. Preserve the stored format version —
  // the attack models in-place corruption, not a format migration.
  core::save_package(args.package, *bundle.qmodel, *scheme,
                     report.info.model_name, report.info.format_version);
  std::printf("tampered package written to %s\n", args.package.c_str());
  return 0;
}

int cmd_recover(const Args& args) {
  exp::ModelBundle bundle = exp::load_or_train(args.model);
  std::unique_ptr<core::IntegrityScheme> scheme;
  auto report = core::load_package(args.package, *bundle.qmodel, scheme,
                                   args.threads);
  print_report(report);
  if (report.signatures_ok) {
    std::printf("nothing to recover\n");
    return 0;
  }
  scheme->recover(*bundle.qmodel, report.tamper,
                  core::RecoveryPolicy::kZeroOut);
  scheme->resign(*bundle.qmodel);
  core::save_package(args.package, *bundle.qmodel, *scheme,
                     report.info.model_name, report.info.format_version);
  const double acc = exp::accuracy_on_subset(bundle, 256);
  std::printf("zeroed %lld group(s), re-signed; accuracy now %.2f%%\n",
              static_cast<long long>(report.tamper.num_flagged_groups()),
              100.0 * acc);
  return 0;
}

int cmd_schemes(const Args&) {
  for (const auto& id : core::SchemeRegistry::instance().ids())
    std::printf("%s\n", id.c_str());
  return 0;
}

int cmd_campaign(const Args& args) {
  if (args.incremental && args.scheduled) {
    std::fprintf(stderr, "--incremental and --scheduled are exclusive\n");
    return 2;
  }
  const auto spec = campaign::CampaignSpec::from_json_file(args.package);
  campaign::EvalOptions eval = args.eval;
  if (args.scan_budget_us != INT64_MIN)
    eval.scan_budget_us = args.scan_budget_us;
  if (args.scan_budget_bytes != INT64_MIN)
    eval.scan_budget_bytes = args.scan_budget_bytes;
  eval.scan_chunk_bytes = args.scan_shard_bytes;
  campaign::CampaignRunner runner(args.threads, args.scan_threads,
                                  args.scheduled
                                      ? campaign::ScanMode::kScheduled
                                      : args.incremental
                                            ? campaign::ScanMode::kIncremental
                                            : campaign::ScanMode::kFull,
                                  eval);
  const campaign::CampaignReport report = runner.run(spec);
  report.print();
  if (args.timing) {
    const double ips =
        report.eval_seconds > 0.0
            ? static_cast<double>(report.eval_images) / report.eval_seconds
            : 0.0;
    std::printf(
        "timing: profile %.3fs (%lld images), eval %.3fs "
        "(%lld images, %.0f images/sec)\n",
        report.profile_seconds,
        static_cast<long long>(report.profile_images), report.eval_seconds,
        static_cast<long long>(report.eval_images), ips);
  }
  auto write_file = [](const std::string& path, const std::string& body) {
    std::ofstream out(path, std::ios::binary);
    out << body;
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  };
  if (!args.out.empty() &&
      !write_file(args.out, report.to_json(args.timing)))
    return 1;
  if (!args.csv.empty() && !write_file(args.csv, report.to_csv()))
    return 1;
  return 0;
}

int cmd_serve(const Args& args) {
  if (args.socket.empty() || args.tenants.empty()) {
    std::fprintf(stderr,
                 "serve needs --socket <path> and at least one "
                 "--tenant <name>=<package>\n");
    return 2;
  }
  serve::ServeOptions opts;
  opts.workers = args.workers;
  opts.queue_capacity = args.queue_capacity;
  opts.scan = args.scan;
  opts.scan_shard_bytes = args.scan_shard_bytes;
  if (args.scan_budget_us != INT64_MIN)
    opts.scan_budget_us = args.scan_budget_us;
  if (args.scan_budget_bytes != INT64_MIN)
    opts.scan_budget_bytes = args.scan_budget_bytes;
  if (args.coverage_period_ms != INT64_MIN)
    opts.coverage_period_ms = args.coverage_period_ms;
  if (args.quarantine_threshold >= 0)
    opts.quarantine_threshold = args.quarantine_threshold;
  if (args.quarantine_window_ms > 0)
    opts.quarantine_window_ms = args.quarantine_window_ms;
  if (args.quarantine_backoff_ms > 0)
    opts.quarantine_backoff_ms = args.quarantine_backoff_ms;
  opts.watchdog = args.watchdog;
  if (args.watchdog_interval_ms > 0)
    opts.watchdog_interval_ms = args.watchdog_interval_ms;
  if (args.scanner_stall_ms > 0)
    opts.scanner_stall_ms = args.scanner_stall_ms;
  if (args.worker_stall_ms > 0)
    opts.worker_stall_ms = args.worker_stall_ms;
  if (args.default_deadline_ms >= 0)
    opts.default_deadline_ms = args.default_deadline_ms;
  serve::ModelHost host(opts);
  for (const std::string& spec : args.tenants) {
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
      std::fprintf(stderr, "bad --tenant spec '%s' (want name=package)\n",
                   spec.c_str());
      return 2;
    }
    serve::TenantConfig cfg;
    cfg.name = spec.substr(0, eq);
    cfg.package_path = spec.substr(eq + 1);
    cfg.model_id = args.model;
    cfg.mmap_golden = args.serve_mmap;
    host.add_tenant(cfg);
  }
  serve::Daemon daemon(host, args.socket,
                       args.conn_timeout_ms >= 0 ? args.conn_timeout_ms
                                                 : 30000);
  daemon.start();
  // SIGINT/SIGTERM shut down as cleanly as a SHUTDOWN command: wait()
  // returns, then the socket closes, the queue drains and the scanner
  // joins below.
  serve::Daemon::install_signal_handlers();
  std::printf("serving %zu tenant(s) on %s (%zu workers, scanning %s)\n",
              host.num_tenants(), args.socket.c_str(), args.workers,
              args.scan ? "on" : "off");
  std::fflush(stdout);
  daemon.wait();  // until SHUTDOWN, SIGINT or SIGTERM
  daemon.stop();
  host.stop();
  std::printf("%s\n", host.stats().to_json().c_str());
  return 0;
}

/// One dispatch-table entry: usage metadata + positional arity + handler.
struct Command {
  const char* name;
  const char* usage;       ///< positional part, shown in help
  int num_positional;      ///< required positional args after the name
  int (*run)(const Args&);
};

constexpr Command kCommands[] = {
    {"sign", "sign <pkg> [--model M] [--scheme S|--bits 2|3] [--group N]",
     1, cmd_sign},
    {"info", "info <pkg>", 1, cmd_info},
    {"pack", "pack inspect <pkg>", 2, cmd_pack},
    {"verify", "verify <pkg> [--model M] [--threads N] [--mmap]", 1,
     cmd_verify},
    {"attack", "attack <pkg> [--model M] [--flips N] [--pbfa]", 1,
     cmd_attack},
    {"recover", "recover <pkg> [--model M] [--threads N]", 1, cmd_recover},
    {"campaign",
     "campaign <spec.json> [--threads N] [--incremental | --scheduled] "
     "[--scan-budget-us N] [--scan-budget-bytes N] [--out J] [--csv C]",
     1, cmd_campaign},
    {"serve",
     "serve --socket <path> --tenant <name>=<pkg> [--tenant ...] "
     "[--workers N] [--no-scan] [--scan-budget-us N] "
     "[--scan-budget-bytes N] [--coverage-period-ms N] "
     "[--quarantine-threshold N] "
     "[--quarantine-window-ms N] [--quarantine-backoff-ms N] "
     "[--conn-timeout-ms N] [--deadline-ms N] [--no-watchdog] "
     "[--watchdog-interval-ms N] [--scanner-stall-ms N] "
     "[--worker-stall-ms N]",
     0, cmd_serve},
    {"schemes", "schemes", 0, cmd_schemes},
};

void print_usage() {
  std::fprintf(stderr, "usage:\n");
  for (const Command& c : kCommands)
    std::fprintf(stderr, "  radar_cli %s\n", c.usage);
}

const Command* find_command(const std::string& name) {
  for (const Command& c : kCommands)
    if (name == c.name) return &c;
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  Args args;
  args.command = argv[1];
  if (args.command == "help" || args.command == "--help" ||
      args.command == "-h") {
    print_usage();
    return 0;
  }
  const Command* cmd = find_command(args.command);
  if (cmd == nullptr) {
    std::fprintf(stderr, "unknown command %s\n", args.command.c_str());
    print_usage();
    return 2;
  }
  if (!parse_options(argc, argv, 2, args)) return 2;
  if (static_cast<int>(args.positional.size()) < cmd->num_positional) {
    std::fprintf(stderr, "usage: radar_cli %s\n", cmd->usage);
    return 2;
  }
  // Map positionals onto the legacy fields the handlers read.
  if (args.command == "pack") {
    args.subcommand = args.positional[0];
    args.package = args.positional[1];
  } else if (cmd->num_positional >= 1) {
    args.package = args.positional[0];
  }
  try {
    return cmd->run(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
