// serve_loadgen — open-loop load generator for the RADAR serving daemon.
//
// Drives a ModelHost either in-process (default; self-provisions two
// signed demo tenants when no --tenant is given) or over the daemon's
// Unix socket (--connect), through three phases of identical traffic:
//
//   1. scan_off  — background integrity scanning disabled (baseline)
//   2. scan_on   — scanning enabled (the protection overhead under load)
//   3. attack    — scanning on; at 25% of the phase `--inject-flips`
//                  random MSBs are flipped in the hottest tenant (or, with
//                  --inject-rowhammer N, a spatially correlated N-row
//                  hammer burst lands instead), and the time until the
//                  scanner's first detection is recorded
//
// Traffic is open-loop: each client thread draws Poisson inter-arrivals
// (with periodic burst windows at --burst-factor x the base rate) and
// Zipf-skewed tenant popularity, and measures latency from the INTENDED
// arrival time — so server queueing during bursts shows up in the tail
// instead of being hidden by coordinated omission.
//
// Transient refusals (queue shed, quarantined tenant — anything the
// server tags RETRY-AFTER) get up to --max-retries inline retries with
// exponential backoff + jitter; the retried request's total wait counts
// against its intended arrival, so retries cost tail latency, honestly.
//
// Results land as a human table plus BENCH_serve.json (p50/p99/p999 per
// phase, throughput, retries, time-to-detect). Exit code 1 when an
// injection was requested but never detected — the CI smoke contract.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/package.h"
#include "core/scheme_registry.h"
#include "exp/workspace.h"
#include "serve/host.h"
#include "serve/latency_histogram.h"

#if defined(__unix__) || defined(__APPLE__)
#define LOADGEN_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define LOADGEN_HAVE_UNIX_SOCKETS 0
#endif

namespace {

using namespace radar;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string connect;                ///< daemon socket (empty: in-process)
  std::vector<std::string> tenants;   ///< name=package (in-process mode)
  std::string model = "tiny";
  std::size_t workers = 2;        ///< in-process host inference workers
  std::size_t threads = 2;        ///< client threads
  double rate = 200.0;            ///< total requests/sec (base, pre-burst)
  double burst_factor = 4.0;      ///< rate multiplier inside burst windows
  double zipf_s = 1.0;            ///< tenant popularity skew exponent
  std::int64_t duration_ms = 1000;  ///< per phase
  int inject_flips = 8;
  int inject_rowhammer = 0;  ///< victim rows to hammer (0: iid flips)
  std::int64_t rh_activations = 150000;  ///< aggressor activations per row
  std::uint64_t seed = 0x10ADU;
  // Scan QoS passthrough (in-process mode); INT64_MIN = host default.
  std::int64_t scan_budget_us = INT64_MIN;
  std::int64_t scan_budget_bytes = INT64_MIN;
  std::int64_t coverage_period_ms = INT64_MIN;
  bool shutdown = false;  ///< socket mode: send SHUTDOWN when done
  std::int64_t deadline_ms = 0;  ///< per-request deadline (0: none)
  // Shed/quarantined replies are retryable, not terminal: bounded
  // retries with exponential backoff + jitter, honoring the server's
  // RETRY-AFTER hint. Retries run inline in the client loop, so their
  // cost lands in the coordinated-omission-safe latency tail.
  int max_retries = 3;
  std::int64_t retry_base_ms = 2;

  bool attacking() const { return inject_flips > 0 || inject_rowhammer > 0; }
};

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--connect") o.connect = next("--connect");
    else if (a == "--tenant") o.tenants.push_back(next("--tenant"));
    else if (a == "--model") o.model = next("--model");
    else if (a == "--workers") o.workers = static_cast<std::size_t>(std::atoi(next("--workers")));
    else if (a == "--threads") o.threads = static_cast<std::size_t>(std::atoi(next("--threads")));
    else if (a == "--rate") o.rate = std::atof(next("--rate"));
    else if (a == "--burst-factor") o.burst_factor = std::atof(next("--burst-factor"));
    else if (a == "--zipf-s") o.zipf_s = std::atof(next("--zipf-s"));
    else if (a == "--duration-ms") o.duration_ms = std::atoll(next("--duration-ms"));
    else if (a == "--inject-flips") o.inject_flips = std::atoi(next("--inject-flips"));
    else if (a == "--inject-rowhammer") o.inject_rowhammer = std::atoi(next("--inject-rowhammer"));
    else if (a == "--rh-activations") o.rh_activations = std::atoll(next("--rh-activations"));
    else if (a == "--seed") o.seed = std::strtoull(next("--seed"), nullptr, 0);
    else if (a == "--scan-budget-us") o.scan_budget_us = std::atoll(next("--scan-budget-us"));
    else if (a == "--scan-budget-bytes") o.scan_budget_bytes = std::atoll(next("--scan-budget-bytes"));
    else if (a == "--coverage-period-ms") o.coverage_period_ms = std::atoll(next("--coverage-period-ms"));
    else if (a == "--shutdown") o.shutdown = true;
    else if (a == "--deadline-ms") o.deadline_ms = std::atoll(next("--deadline-ms"));
    else if (a == "--max-retries") o.max_retries = std::atoi(next("--max-retries"));
    else if (a == "--retry-base-ms") o.retry_base_ms = std::atoll(next("--retry-base-ms"));
    else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return false;
    }
  }
  if (o.threads < 1 || o.rate <= 0.0 || o.duration_ms < 1) {
    std::fprintf(stderr, "--threads/--rate/--duration-ms must be positive\n");
    return false;
  }
  return true;
}

/// Zipf CDF over `n` ranks: P(i) ~ 1/(i+1)^s.
std::vector<double> zipf_cdf(std::size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s) / total;
    cdf[i] = acc;
  }
  cdf[n - 1] = 1.0;
  return cdf;
}

std::size_t zipf_pick(const std::vector<double>& cdf, double u) {
  for (std::size_t i = 0; i < cdf.size(); ++i)
    if (u <= cdf[i]) return i;
  return cdf.size() - 1;
}

// ---------------------------------------------------------------------
// Backend: the loadgen's view of the serving system. Control operations
// run on the main thread; infer() must be safe from every client thread.
// ---------------------------------------------------------------------
/// One inference attempt as the client saw it. `retryable` marks
/// transient server-side refusals (shed queue, quarantined tenant) that
/// deserve a backoff + retry rather than a terminal error sample.
struct InferOutcome {
  bool ok = false;
  bool retryable = false;
  std::int64_t retry_after_ms = -1;  ///< server hint; -1 when absent
};

class Backend {
 public:
  virtual ~Backend() = default;
  virtual std::size_t num_tenants() const = 0;
  virtual std::string tenant_name(std::size_t t) const = 0;
  /// Blocking inference from any client thread.
  virtual InferOutcome infer(std::size_t thread_id, std::size_t tenant) = 0;
  virtual void set_scanning(bool on) = 0;
  virtual std::size_t inject(std::size_t tenant, int flips,
                             std::uint64_t seed) = 0;
  /// Spatially correlated rowhammer burst (single-sided).
  virtual std::size_t inject_rowhammer(std::size_t tenant, int rows,
                                       std::int64_t activations,
                                       std::uint64_t seed) = 0;
  virtual std::uint64_t detections() = 0;
  /// Server-side time-to-detect in ns when the backend can see it
  /// (-1: unknown; the caller falls back to the client-observed value).
  virtual std::int64_t server_ttd_ns(std::size_t) { return -1; }
  /// Scan QoS telemetry when visible (-1: unknown). Coverage period is
  /// the worst (longest) last-sweep duration across tenants; bytes/sec
  /// is summed across tenants.
  virtual double coverage_period_ms() { return -1.0; }
  virtual double scan_bytes_per_sec() { return -1.0; }
  virtual void shutdown() {}
};

/// In-process: owns the ModelHost (tenants from --tenant specs, or two
/// self-signed demo packages when none are given).
class InProcessBackend : public Backend {
 public:
  InProcessBackend(const Options& o) : deadline_ms_(o.deadline_ms) {
    serve::ServeOptions opts;
    opts.workers = o.workers;
    if (o.scan_budget_us != INT64_MIN)
      opts.scan_budget_us = o.scan_budget_us;
    if (o.scan_budget_bytes != INT64_MIN)
      opts.scan_budget_bytes = o.scan_budget_bytes;
    if (o.coverage_period_ms != INT64_MIN)
      opts.coverage_period_ms = o.coverage_period_ms;
    host_ = std::make_unique<serve::ModelHost>(opts);

    std::vector<std::pair<std::string, std::string>> specs;
    for (const std::string& spec : o.tenants) {
      const std::size_t eq = spec.find('=');
      RADAR_REQUIRE(eq != std::string::npos && eq > 0,
                    "bad --tenant spec (want name=package): " + spec);
      specs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    }
    if (specs.empty()) specs = provision_demo_tenants(o);

    for (const auto& [name, pkg] : specs) {
      serve::TenantConfig cfg;
      cfg.name = name;
      cfg.package_path = pkg;
      cfg.model_id = o.model;
      host_->add_tenant(cfg);
    }

    // Pre-slice a pool of single-image inputs per tenant so the hot loop
    // never allocates tensors.
    for (std::size_t t = 0; t < host_->num_tenants(); ++t) {
      const auto& ds = host_->dataset(t);
      const std::int64_t n = std::min<std::int64_t>(64, ds.test_size());
      inputs_.emplace_back();
      for (std::int64_t i = 0; i < n; ++i)
        inputs_.back().push_back(ds.test_batch(i, 1).images);
    }
    host_->start();
  }

  ~InProcessBackend() override {
    host_->stop();
    for (const std::string& p : owned_packages_) std::remove(p.c_str());
  }

  std::size_t num_tenants() const override { return host_->num_tenants(); }
  std::string tenant_name(std::size_t t) const override {
    return host_->tenant_name(t);
  }
  InferOutcome infer(std::size_t, std::size_t tenant) override {
    auto& pool = inputs_[tenant];
    const std::size_t i =
        cursor_.fetch_add(1, std::memory_order_relaxed) % pool.size();
    const serve::InferenceResult r =
        host_->infer(tenant, pool[i], deadline_ms_);
    InferOutcome oc;
    oc.ok = r.ok;
    oc.retry_after_ms = r.retry_after_ms;
    oc.retryable = !r.ok && r.retry_after_ms >= 0;
    return oc;
  }
  void set_scanning(bool on) override { host_->set_scanning(on); }
  std::size_t inject(std::size_t tenant, int flips,
                     std::uint64_t seed) override {
    return host_->inject_faults(tenant, flips, seed);
  }
  std::size_t inject_rowhammer(std::size_t tenant, int rows,
                               std::int64_t activations,
                               std::uint64_t seed) override {
    return host_->inject_rowhammer(tenant, rows, activations,
                                   /*double_sided=*/false, seed);
  }
  std::uint64_t detections() override {
    return host_->stats().total_detections();
  }
  std::int64_t server_ttd_ns(std::size_t tenant) override {
    return host_->stats().tenants.at(tenant).last_ttd_ns;
  }
  double coverage_period_ms() override {
    std::int64_t worst = -1;
    for (const auto& t : host_->stats().tenants)
      worst = std::max(worst, t.coverage_period_ms);
    return static_cast<double>(worst);
  }
  double scan_bytes_per_sec() override {
    std::int64_t total = 0;
    for (const auto& t : host_->stats().tenants)
      total += t.scan_bytes_per_sec;
    return static_cast<double>(total);
  }

  serve::ModelHost& host() { return *host_; }

 private:
  /// Sign two throwaway demo packages (radar2 / radar3) so a bare
  /// `serve_loadgen` run measures something real.
  std::vector<std::pair<std::string, std::string>> provision_demo_tenants(
      const Options& o) {
    std::vector<std::pair<std::string, std::string>> specs;
    exp::ModelBundle bundle = exp::load_or_train(o.model);
    const char* ids[2] = {"radar2", "radar3"};
    const char* names[2] = {"alpha", "beta"};
    for (int i = 0; i < 2; ++i) {
      core::SchemeParams params;
      auto scheme = core::SchemeRegistry::instance().create(ids[i], params);
      scheme->attach(*bundle.qmodel);
      const std::string path = "/tmp/radar_loadgen_" + std::string(names[i]) +
                               "_" + std::to_string(::getpid()) + ".rpkg";
      core::save_package(path, *bundle.qmodel, *scheme, o.model);
      owned_packages_.push_back(path);
      specs.emplace_back(names[i], path);
    }
    std::printf("provisioned demo tenants: alpha=radar2 beta=radar3\n");
    return specs;
  }

  std::unique_ptr<serve::ModelHost> host_;
  std::vector<std::vector<nn::Tensor>> inputs_;
  std::atomic<std::size_t> cursor_{0};
  std::vector<std::string> owned_packages_;
  std::int64_t deadline_ms_;
};

#if LOADGEN_HAVE_UNIX_SOCKETS
/// Socket mode: one connection per client thread plus one control
/// connection, speaking the daemon's line protocol.
class SocketBackend : public Backend {
 public:
  SocketBackend(const std::string& path, std::size_t threads,
                std::int64_t deadline_ms)
      : path_(path), deadline_ms_(deadline_ms) {
    control_ = connect_or_throw();
    for (std::size_t i = 0; i < threads; ++i)
      thread_fds_.push_back(connect_or_throw());
    const std::string r = request(control_, "TENANTS");
    RADAR_REQUIRE(r.rfind("OK", 0) == 0, "TENANTS failed: " + r);
    std::string tok;
    for (std::size_t p = 2; p < r.size();) {
      const std::size_t sp = r.find(' ', p + 1);
      tok = r.substr(p + 1, (sp == std::string::npos ? r.size() : sp) - p - 1);
      if (!tok.empty()) names_.push_back(tok);
      if (sp == std::string::npos) break;
      p = sp;
    }
    RADAR_REQUIRE(!names_.empty(), "daemon reports no tenants");
  }

  ~SocketBackend() override {
    for (int fd : thread_fds_) ::close(fd);
    ::close(control_);
  }

  std::size_t num_tenants() const override { return names_.size(); }
  std::string tenant_name(std::size_t t) const override {
    return names_.at(t);
  }
  InferOutcome infer(std::size_t thread_id, std::size_t tenant) override {
    std::string cmd = "INFER " + names_[tenant];
    if (deadline_ms_ > 0) cmd += " " + std::to_string(deadline_ms_);
    const std::string r = request(thread_fds_.at(thread_id), cmd);
    InferOutcome oc;
    oc.ok = r.rfind("OK", 0) == 0;
    if (!oc.ok) {
      const std::size_t ra = r.find("RETRY-AFTER=");
      if (ra != std::string::npos) {
        oc.retryable = true;
        oc.retry_after_ms = std::atoll(r.c_str() + ra + 12);
      }
    }
    return oc;
  }
  void set_scanning(bool on) override {
    request(control_, on ? "SCAN ON" : "SCAN OFF");
  }
  std::size_t inject(std::size_t tenant, int flips,
                     std::uint64_t seed) override {
    const std::string r =
        request(control_, "INJECT " + names_[tenant] + " " +
                              std::to_string(flips) + " " +
                              std::to_string(seed));
    return r.rfind("OK ", 0) == 0
               ? static_cast<std::size_t>(std::atoll(r.c_str() + 3))
               : 0;
  }
  std::size_t inject_rowhammer(std::size_t tenant, int rows,
                               std::int64_t activations,
                               std::uint64_t seed) override {
    const std::string r = request(
        control_, "INJECT " + names_[tenant] + " rowhammer " +
                      std::to_string(rows) + " " +
                      std::to_string(activations) + " " +
                      std::to_string(seed));
    return r.rfind("OK ", 0) == 0
               ? static_cast<std::size_t>(std::atoll(r.c_str() + 3))
               : 0;
  }
  std::uint64_t detections() override {
    const std::string r = request(control_, "DETECTIONS");
    return r.rfind("OK ", 0) == 0
               ? static_cast<std::uint64_t>(std::atoll(r.c_str() + 3))
               : 0;
  }
  void shutdown() override { request(control_, "SHUTDOWN"); }

 private:
  int connect_or_throw() {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    RADAR_REQUIRE(fd >= 0, "socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    RADAR_REQUIRE(path_.size() < sizeof(addr.sun_path),
                  "socket path too long");
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      throw Error("cannot connect to " + path_ + ": " +
                  std::strerror(errno));
    }
    return fd;
  }

  /// One request line -> one reply line (each fd is used by one thread).
  static std::string request(int fd, const std::string& line) {
    const std::string msg = line + "\n";
    std::size_t off = 0;
    while (off < msg.size()) {
      const ssize_t w = ::write(fd, msg.data() + off, msg.size() - off);
      if (w <= 0) throw Error("daemon connection lost (write)");
      off += static_cast<std::size_t>(w);
    }
    std::string reply;
    char c;
    while (true) {
      const ssize_t n = ::read(fd, &c, 1);
      if (n <= 0) throw Error("daemon connection lost (read)");
      if (c == '\n') break;
      reply.push_back(c);
    }
    return reply;
  }

  std::string path_;
  std::int64_t deadline_ms_;
  int control_ = -1;
  std::vector<int> thread_fds_;
  std::vector<std::string> names_;
};
#endif  // LOADGEN_HAVE_UNIX_SOCKETS

// ---------------------------------------------------------------------
// One traffic phase: T open-loop client threads, shared histogram.
// ---------------------------------------------------------------------
struct PhaseResult {
  serve::LatencyHistogram::Snapshot latency;
  std::uint64_t sent = 0, failed = 0;
  std::uint64_t retries = 0;   ///< total retry attempts across requests
  std::uint64_t retried = 0;   ///< requests that needed >= 1 retry
  double seconds = 0.0;
  std::int64_t client_ttd_ns = -1;  ///< attack phases only
};

/// Burst windows: 100ms at burst_factor x rate out of every 500ms.
double rate_at(double t_sec, const Options& o) {
  const double phase = std::fmod(t_sec, 0.5);
  return phase < 0.1 ? o.rate * o.burst_factor : o.rate;
}

PhaseResult run_phase(Backend& backend, const Options& o,
                      const std::vector<double>& cdf, std::uint64_t seed,
                      bool attack, std::size_t inject_tenant) {
  PhaseResult out;
  serve::LatencyHistogram hist;
  std::atomic<std::uint64_t> sent{0}, failed{0}, retries{0}, retried{0};
  const auto t_start = Clock::now();
  const auto t_end =
      t_start + std::chrono::milliseconds(o.duration_ms);

  std::vector<std::thread> threads;
  for (std::size_t ti = 0; ti < o.threads; ++ti) {
    threads.emplace_back([&, ti] {
      Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (ti + 1)));
      const double per_thread = 1.0 / static_cast<double>(o.threads);
      auto t_next = t_start;
      while (t_next < t_end) {
        std::this_thread::sleep_until(t_next);  // no-op when behind
        const std::size_t tenant = zipf_pick(cdf, rng.uniform());
        InferOutcome oc;
        int tries = 0;
        bool conn_lost = false;
        while (true) {
          try {
            oc = backend.infer(ti, tenant);
          } catch (const std::exception&) {
            // Socket torn down under us (chaos disconnect, daemon
            // death): this thread's connection is gone for good.
            conn_lost = true;
            break;
          }
          if (oc.ok || !oc.retryable || tries >= o.max_retries) break;
          // Exponential backoff with jitter, floored at the server's
          // RETRY-AFTER hint; runs inline so the retried request's full
          // wait lands in the intended-arrival latency below.
          const std::int64_t base_ms = o.retry_base_ms << tries;
          const std::int64_t wait_ms =
              std::max(base_ms, oc.retry_after_ms) +
              static_cast<std::int64_t>(rng.uniform() *
                                        static_cast<double>(base_ms));
          ++tries;
          std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
        }
        if (tries > 0) {
          retries.fetch_add(static_cast<std::uint64_t>(tries),
                            std::memory_order_relaxed);
          retried.fetch_add(1, std::memory_order_relaxed);
        }
        if (conn_lost) {
          sent.fetch_add(1, std::memory_order_relaxed);
          failed.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        const bool ok = oc.ok;
        const auto t_done = Clock::now();
        // Latency from the INTENDED arrival: backlog during bursts is
        // tail latency, not silently forgiven.
        hist.record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        t_done - t_next)
                        .count());
        sent.fetch_add(1, std::memory_order_relaxed);
        if (!ok) failed.fetch_add(1, std::memory_order_relaxed);
        const double t_sec =
            std::chrono::duration<double>(t_next - t_start).count();
        const double lambda = rate_at(t_sec, o) * per_thread;
        const double gap = -std::log(1.0 - rng.uniform()) / lambda;
        t_next += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(gap));
      }
    });
  }

  if (attack) {
    // Fire the attack at ~25% of the phase, then poll for the scanner's
    // detection — the client-observed time-to-detect.
    std::this_thread::sleep_until(
        t_start + std::chrono::milliseconds(o.duration_ms / 4));
    const std::uint64_t base = backend.detections();
    const auto t_inject = Clock::now();
    if (o.inject_rowhammer > 0)
      backend.inject_rowhammer(inject_tenant, o.inject_rowhammer,
                               o.rh_activations, o.seed ^ 0xF117);
    else
      backend.inject(inject_tenant, o.inject_flips, o.seed ^ 0xF117);
    while (Clock::now() < t_end) {
      if (backend.detections() > base) {
        out.client_ttd_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t_inject)
                .count();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  for (auto& t : threads) t.join();
  out.latency = hist.snapshot();
  out.sent = sent.load();
  out.failed = failed.load();
  out.retries = retries.load();
  out.retried = retried.load();
  out.seconds = std::chrono::duration<double>(Clock::now() - t_start).count();
  return out;
}

void print_phase(const char* name, const PhaseResult& r) {
  std::printf("  %-9s %8llu req (%llu failed, %llu retries) %8.0f req/s   "
              "p50 %8.3fms  p99 %8.3fms  p999 %8.3fms\n",
              name, static_cast<unsigned long long>(r.sent),
              static_cast<unsigned long long>(r.failed),
              static_cast<unsigned long long>(r.retries),
              static_cast<double>(r.sent) / r.seconds,
              r.latency.quantile(0.50) / 1e6,
              r.latency.quantile(0.99) / 1e6,
              r.latency.quantile(0.999) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) {
    std::fprintf(stderr,
                 "usage: serve_loadgen [--connect <socket>] "
                 "[--tenant name=pkg ...] [--model M] [--workers N]\n"
                 "                     [--threads T] [--rate R] "
                 "[--burst-factor F] [--zipf-s S]\n"
                 "                     [--duration-ms D] "
                 "[--inject-flips N] [--inject-rowhammer ROWS]\n"
                 "                     [--rh-activations A] [--seed S] "
                 "[--shutdown]\n"
                 "                     [--scan-budget-us N] "
                 "[--scan-budget-bytes N] [--coverage-period-ms N]\n"
                 "                     [--deadline-ms D] [--max-retries N] "
                 "[--retry-base-ms B]\n");
    return 2;
  }
  try {
    std::unique_ptr<Backend> backend;
    if (!o.connect.empty()) {
#if LOADGEN_HAVE_UNIX_SOCKETS
      backend = std::make_unique<SocketBackend>(o.connect, o.threads,
                                                o.deadline_ms);
#else
      std::fprintf(stderr, "--connect requires unix domain sockets\n");
      return 2;
#endif
    } else {
      backend = std::make_unique<InProcessBackend>(o);
    }

    const std::size_t nt = backend->num_tenants();
    const std::vector<double> cdf = zipf_cdf(nt, o.zipf_s);
    // Zipf rank 0 is the most popular tenant — attack where traffic is.
    const std::size_t hot = 0;

    bench::heading("serve", "multi-tenant daemon under open-loop load");
    std::printf("  tenants:");
    for (std::size_t t = 0; t < nt; ++t)
      std::printf(" %s(%.0f%%)", backend->tenant_name(t).c_str(),
                  100.0 * (cdf[t] - (t ? cdf[t - 1] : 0.0)));
    std::printf("  rate %.0f req/s x%g bursts, %zu client thread(s), "
                "%lldms/phase\n",
                o.rate, o.burst_factor, o.threads,
                static_cast<long long>(o.duration_ms));
    bench::rule();

    backend->set_scanning(false);
    const PhaseResult off =
        run_phase(*backend, o, cdf, o.seed + 1, false, hot);
    print_phase("scan_off", off);

    backend->set_scanning(true);
    const PhaseResult on =
        run_phase(*backend, o, cdf, o.seed + 2, false, hot);
    print_phase("scan_on", on);

    PhaseResult attack;
    std::int64_t ttd_ns = -1;
    if (o.attacking()) {
      attack = run_phase(*backend, o, cdf, o.seed + 3, true, hot);
      print_phase("attack", attack);
      const std::int64_t server_ttd = backend->server_ttd_ns(hot);
      ttd_ns = server_ttd >= 0 ? server_ttd : attack.client_ttd_ns;
      if (ttd_ns >= 0)
        std::printf("  time-to-detect: %.3fms (%s-observed), scanning "
                    "stayed on under attack\n",
                    ttd_ns / 1e6, server_ttd >= 0 ? "server" : "client");
      else
        std::printf("  time-to-detect: NONE — injection was NOT detected\n");
    }

    // Scan QoS telemetry from the server side (in-process only): the
    // coverage a tenant actually got while the load ran, and the sweep
    // bandwidth the budget allowed.
    const double coverage_ms = backend->coverage_period_ms();
    const double scan_bps = backend->scan_bytes_per_sec();
    if (coverage_ms >= 0.0)
      std::printf("  scan QoS: coverage period %.3fms, %.2f MB/s swept\n",
                  coverage_ms, scan_bps / 1e6);

    if (o.shutdown) backend->shutdown();

    bench::JsonReport report("serve");
    report.add("p50_scan_off", off.latency.quantile(0.50));
    report.add("p99_scan_off", off.latency.quantile(0.99));
    report.add("p999_scan_off", off.latency.quantile(0.999));
    report.add("p50_scan_on", on.latency.quantile(0.50));
    report.add("p99_scan_on", on.latency.quantile(0.99));
    report.add("p999_scan_on", on.latency.quantile(0.999));
    report.add("failed_scan_off", static_cast<double>(off.failed));
    report.add("failed_scan_on", static_cast<double>(on.failed));
    report.add("retries_scan_off", static_cast<double>(off.retries));
    report.add("retries_scan_on", static_cast<double>(on.retries));
    if (coverage_ms >= 0.0) {
      report.add("coverage_period_ms", coverage_ms);
      report.add("scan_bytes_per_sec", scan_bps);
    }
    if (o.attacking()) {
      report.add("p50_attack", attack.latency.quantile(0.50));
      report.add("p99_attack", attack.latency.quantile(0.99));
      report.add("failed_attack", static_cast<double>(attack.failed));
      report.add("retries_attack", static_cast<double>(attack.retries));
      if (ttd_ns >= 0) report.add("time_to_detect", static_cast<double>(ttd_ns));
    }
    const std::string path = report.write();
    if (!path.empty()) std::printf("  wrote %s\n", path.c_str());

    if (o.attacking() && ttd_ns < 0) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
