// Attack forensics: characterize how PBFA attacks *your* model.
//
// Reproduces the paper's §III.C methodology on the cached reference model:
// runs PBFA rounds, then reports which bit positions the attack selects,
// which weight-value ranges it targets, and how the flips spread across
// layers — the analysis that motivated RADAR's MSB-focused 2-bit
// signature and zero-out recovery.
#include <cstdio>
#include <map>

#include "attack/profile_stats.h"
#include "common/env.h"
#include "exp/workspace.h"

int main() {
  using namespace radar;
  const int rounds = static_cast<int>(experiment_rounds(10, 3));
  std::printf("== PBFA forensics on the reference ResNet-20 ==\n");

  exp::ModelBundle bundle = exp::load_or_train("resnet20");
  const auto profiles = exp::load_or_run_pbfa(bundle, 10, rounds);

  std::printf("\nclean accuracy %.2f%%; mean accuracy after 10 flips ",
              100.0 * bundle.clean_accuracy);
  double after = 0.0;
  for (const auto& r : profiles) after += r.accuracy_after;
  std::printf("%.2f%%\n", 100.0 * after / static_cast<double>(profiles.size()));

  const auto bits = attack::bit_position_stats(profiles);
  std::printf("\nbit positions: MSB 0->1: %lld, MSB 1->0: %lld, other: %lld\n",
              static_cast<long long>(bits.msb_zero_to_one),
              static_cast<long long>(bits.msb_one_to_zero),
              static_cast<long long>(bits.others));

  const auto ranges = attack::weight_range_stats(profiles);
  std::printf("targeted weight values:");
  for (std::size_t i = 0; i < ranges.counts.size(); ++i)
    std::printf("  %s: %lld", attack::WeightRangeStats::range_name(i),
                static_cast<long long>(ranges.counts[i]));
  std::printf("\n");

  // Layer histogram: which tensors does the attack concentrate on?
  std::map<std::size_t, int> per_layer;
  for (const auto& round : profiles)
    for (const auto& f : round.flips) per_layer[f.layer]++;
  std::printf("\nflips per quantized layer:\n");
  for (const auto& [layer, count] : per_layer) {
    std::printf("  layer %2zu (%-28s %7lld weights): %d\n", layer,
                (bundle.qmodel->layer(layer).name + ",").c_str(),
                static_cast<long long>(bundle.qmodel->layer(layer).size()),
                count);
  }

  // Defense hint derived from the forensics.
  std::printf(
      "\n=> %0.f%% of flips hit the MSB of small-valued weights: an "
      "MSB-sensitive group checksum with zero-out recovery (RADAR) is the "
      "matched defense.\n",
      100.0 * static_cast<double>(bits.msb_zero_to_one +
                                  bits.msb_one_to_zero) /
          static_cast<double>(bits.total()));
  return 0;
}
