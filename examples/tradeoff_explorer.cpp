// Trade-off explorer: pick a RADAR configuration for a deployment.
//
// For a chosen network scale (the paper's ResNet-18 by default) this tool
// sweeps group size and signature width and reports, per configuration:
// secure-storage bytes, predicted detection-time overhead on the
// Cortex-M4F-class platform model, and a Monte-Carlo estimate of the
// full-attack miss rate — then flags the paper's recommended operating
// point.
#include <cstdio>
#include <map>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "core/checksum.h"
#include "sim/netdesc.h"
#include "sim/timing.h"

namespace {

using namespace radar;

/// Monte-Carlo miss rate of a 10-MSB-flip attack on one 4096-weight layer
/// (scaled-down proxy; smaller G -> fewer collisions -> fewer misses).
double miss_rate(std::int64_t g, int sig_bits, std::int64_t rounds) {
  Rng rng(g * 7919 + sig_bits);
  std::vector<std::int8_t> w(4096);
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  const core::GroupLayout layout = core::GroupLayout::interleaved(4096, g, 3);
  const core::MaskStream mask(0xBEEF);
  std::int64_t misses = 0;
  for (std::int64_t r = 0; r < rounds; ++r) {
    const auto sites = rng.sample_without_replacement(w.size(), 10);
    std::map<std::int64_t, core::Signature> clean;
    for (const auto s : sites) {
      const std::int64_t grp = layout.group_of(static_cast<std::int64_t>(s));
      if (!clean.count(grp))
        clean[grp] = core::group_signature(w, layout, grp, mask, sig_bits);
    }
    for (const auto s : sites) w[s] = flip_bit(w[s], kMsb);
    bool missed = true;
    for (const auto& [grp, sig] : clean) {
      if (!(core::group_signature(w, layout, grp, mask, sig_bits) == sig)) {
        missed = false;
        break;
      }
    }
    for (const auto s : sites) w[s] = flip_bit(w[s], kMsb);
    if (missed) ++misses;
  }
  return static_cast<double>(misses) / static_cast<double>(rounds);
}

}  // namespace

int main() {
  const std::int64_t mc_rounds = radar::experiment_rounds(200000, 20000);
  const auto shape = radar::sim::resnet18_shape();
  radar::sim::TimingSimulator sim;

  std::printf("== RADAR configuration explorer: %s (%lld weights) ==\n",
              shape.name.c_str(),
              static_cast<long long>(shape.total_weights()));
  std::printf("Monte-Carlo rounds per cell: %lld\n\n",
              static_cast<long long>(mc_rounds));
  std::printf("%-8s %-6s %12s %12s %14s\n", "G", "sig", "storage KB",
              "overhead %", "miss rate");
  std::printf("--------------------------------------------------------\n");

  for (const std::int64_t g : {64, 128, 256, 512, 1024}) {
    for (const int bits : {2, 3}) {
      const double kb =
          static_cast<double>(shape.signature_storage_bytes(g, bits)) /
          1024.0;
      const auto t = sim.radar_seconds(shape, g, true);
      const double mr = miss_rate(g, bits, mc_rounds);
      const bool recommended = (g == 512 && bits == 2);
      std::printf("%-8lld %-6d %12.1f %11.2f%% %14.2e %s\n",
                  static_cast<long long>(g), bits, kb, t.overhead_pct(), mr,
                  recommended ? "  <- paper's choice" : "");
    }
  }
  std::printf(
      "\nreading: storage scales ~1/G and x1.5 for 3-bit signatures; the "
      "time overhead is dominated by the per-weight checksum, so G mainly "
      "buys storage; miss rate rises with G (more in-group collisions). "
      "G=512 / 2-bit is the paper's ResNet-18 sweet spot.\n");
  return 0;
}
