// Edge deployment: the full system-level story.
//
// A quantized classifier serves inference requests from DRAM-resident
// weights while a rowhammer-capable attacker repeatedly corrupts them.
// RADAR is embedded in the serving loop (scan on every weight fetch, as
// in the paper's per-layer embedding); the example prints a run-time
// timeline of attacks, detections and recoveries, then reports the
// timing budget of the same deployment on the paper's full-size ResNet-18
// using the analytic platform model.
#include <cstdio>

#include "attack/pbfa.h"
#include "core/protected_model.h"
#include "core/scheme_registry.h"
#include "data/trainer.h"
#include "sim/dram.h"
#include "sim/netdesc.h"
#include "sim/timing.h"

int main() {
  using namespace radar;

  // ---- Deploy a small quantized model ----
  nn::ResNetSpec spec;
  spec.num_classes = 6;
  spec.base_width = 8;
  spec.blocks_per_stage = {1, 1};
  spec.name = "edge-net";
  Rng rng(7);
  nn::ResNet model(spec, rng);

  data::SyntheticSpec dspec = data::synthetic_cifar_spec();
  dspec.num_classes = 6;
  dspec.image_size = 16;
  data::SyntheticDataset dataset(dspec, 1024, 384);
  data::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 32;
  tc.batches_per_epoch = 24;
  tc.lr = 0.005f;
  tc.verbose = false;
  data::train(model, dataset, tc);
  quant::QuantizedModel qm(model);

  // Weights live in DRAM starting at row 64.
  sim::DramConfig dram_cfg;
  dram_cfg.cell_vulnerability = 2e-4;
  sim::DramModel dram(dram_cfg);
  const std::int64_t base_row = 64;
  const std::int64_t rows = dram.map_buffer(base_row, qm.weight_bytes());
  std::printf("deployed %lld int8 weights across %lld DRAM rows\n",
              static_cast<long long>(qm.total_weights()),
              static_cast<long long>(rows));

  // ---- Protect with RADAR ----
  // This model's layers are tiny (the fc layer has only 96 weights), so
  // pick fine groups — coarse groups on midget layers leave few groups
  // per layer and raise the chance that two flips land in one group with
  // canceling masked contributions. The 3-bit signature additionally
  // covers MSB-1 flips (paper §VIII).
  core::SchemeParams params;
  params.group_size = 16;
  auto scheme = core::SchemeRegistry::instance().create("radar3", params);
  scheme->attach(qm);
  core::ProtectedModel pm(qm, *scheme);
  std::printf("RADAR attached: %lld signature bytes in on-chip SRAM\n\n",
              static_cast<long long>(scheme->signature_storage_bytes()));

  // ---- Serving loop under attack ----
  // The attacker alternates between blind hammering (soft-error-like
  // collateral flips) and targeted PBFA flips placed via rowhammer.
  attack::Pbfa pbfa;
  Rng attacker_rng(13);
  data::Batch attack_batch = dataset.attack_batch(16, 5);
  const quant::ArenaSnapshot golden = qm.snapshot();

  std::printf("%-6s %-22s %-10s %-12s %s\n", "tick", "event", "served",
              "detected", "accuracy");
  for (int tick = 1; tick <= 8; ++tick) {
    const char* event = "quiet";
    if (tick == 3 || tick == 6) {
      // Targeted attack: PBFA picks bits; rowhammer placement succeeds
      // with high probability per bit.
      int landed = 0;
      const attack::AttackResult plan = pbfa.run(qm, attack_batch, 3);
      for (const auto& f : plan.flips) {
        (void)f;
        if (dram.targeted_flip(base_row, 0, 7, 0.9, attacker_rng)) ++landed;
      }
      // Flips that failed placement are reverted.
      event = landed == 3 ? "PBFA via rowhammer" : "PBFA (partial)";
    } else if (tick == 5) {
      // Blind hammering of one victim row holding weights.
      const auto flips =
          dram.hammer(base_row + 0, dram_cfg.hammer_threshold + 1);
      sim::apply_dram_flips_to_model(flips, base_row, dram_cfg, qm);
      event = "blind rowhammer";
    }

    const std::int64_t det_before = pm.detections();
    data::Batch req = dataset.test_batch((tick * 16) % 256, 16);
    // Verified inference with the paper's per-layer embedding: each
    // weight tensor is checked on its fetch, right before use.
    pm.forward_layerwise(req.images);
    const bool detected = pm.detections() > det_before;

    const double acc = data::evaluate(
        [&](const nn::Tensor& x) { return qm.forward(x); }, dataset);
    std::printf("%-6d %-22s %-10s %-12s %.1f%%\n", tick, event, "yes",
                detected ? "YES -> recovered" : "-", 100.0 * acc);
  }
  std::printf("\ntotals: %lld scans, %lld detections, %lld groups zeroed\n",
              static_cast<long long>(pm.scans()),
              static_cast<long long>(pm.detections()),
              static_cast<long long>(pm.groups_recovered()));
  qm.restore(golden);

  // ---- Timing budget at paper scale ----
  sim::TimingSimulator tsim;
  const auto shape = sim::resnet18_shape();
  const auto t = tsim.radar_seconds(shape, 512, true);
  std::printf(
      "\npaper-scale budget (ResNet-18 @224, G=512, interleaved): "
      "baseline %.3fs + detection %.3fs = %.2f%% overhead\n",
      t.baseline, t.detection, t.overhead_pct());
  std::printf("zero-out recovery of one group: %.1f us; full clean reload: "
              "%.1f ms\n",
              1e6 * tsim.zero_out_seconds(512),
              1e3 * tsim.reload_seconds(shape.total_weights()));
  return 0;
}
