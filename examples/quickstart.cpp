// Quickstart: protect a quantized network with RADAR in ~40 lines.
//
//   1. Train a small CNN on a synthetic task (seconds on a laptop).
//   2. Quantize its conv/fc weights to int8 (the DRAM-resident state).
//   3. Attach a RadarScheme: interleaved groups, masked addition
//      checksums, 2-bit golden signatures.
//   4. Simulate a PBFA-style adversary flipping MSBs at run time.
//   5. Watch ProtectedModel detect the attack and recover accuracy.
#include <cstdio>

#include "attack/pbfa.h"
#include "core/protected_model.h"
#include "core/scheme_registry.h"
#include "data/trainer.h"

int main() {
  using namespace radar;

  // 1. A small residual network + synthetic 8-class dataset.
  nn::ResNetSpec spec;
  spec.num_classes = 8;
  spec.base_width = 8;
  spec.blocks_per_stage = {1, 1};
  spec.name = "quickstart-net";
  Rng rng(1);
  nn::ResNet model(spec, rng);

  data::SyntheticSpec dspec = data::synthetic_cifar_spec();
  dspec.num_classes = 8;
  dspec.image_size = 16;
  data::SyntheticDataset dataset(dspec, 1024, 512);

  data::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 32;
  tc.batches_per_epoch = 32;
  tc.lr = 0.005f;
  tc.verbose = false;
  std::printf("training %s (%lld params)...\n", spec.name.c_str(),
              static_cast<long long>(model.num_params()));
  const auto report = data::train(model, dataset, tc);
  std::printf("float test accuracy: %.1f%%\n", 100.0 * report.test_accuracy);

  // 2. Quantize to int8 — this is what sits in (attackable) DRAM.
  quant::QuantizedModel qm(model);
  std::printf("quantized %zu weight tensors, %lld int8 weights\n",
              qm.num_layers(), static_cast<long long>(qm.total_weights()));

  // 3. Attach RADAR by registry name ("radar2" = the 2-bit signatures of
  // Eq. (1); swap in "radar3", "crc13", "fletcher", ... to compare).
  core::SchemeParams params;
  params.group_size = 16;  // fine groups: tiny models have little redundancy
  params.interleave = true;  // groups of originally-interspersed weights
  auto scheme = core::SchemeRegistry::instance().create("radar2", params);
  scheme->attach(qm);
  std::printf("golden signatures: %lld bytes of secure on-chip storage\n",
              static_cast<long long>(scheme->signature_storage_bytes()));

  core::ProtectedModel protected_model(qm, *scheme);
  protected_model.set_alarm([](const core::DetectionReport& r) {
    std::printf("  !! alarm: %lld group(s) corrupted\n",
                static_cast<long long>(r.num_flagged_groups()));
  });

  auto accuracy = [&](const char* when) {
    const double acc = data::evaluate(
        [&](const nn::Tensor& x) { return qm.forward(x); }, dataset);
    std::printf("%-28s %.1f%%\n", when, 100.0 * acc);
    return acc;
  };
  accuracy("accuracy (clean):");

  // 4. The adversary: progressive bit-flip attack on the int8 weights.
  attack::Pbfa pbfa;
  data::Batch attack_batch = dataset.attack_batch(16, 99);
  const attack::AttackResult atk = pbfa.run(qm, attack_batch, 12);
  std::printf("\nPBFA committed %zu flips (loss %.3f -> %.3f)\n",
              atk.flips.size(), atk.loss_before, atk.loss_after);
  accuracy("accuracy (after attack):");

  // 5. Verified inference: scan -> recover -> forward.
  data::Batch probe = dataset.test_batch(0, 4);
  protected_model.forward(probe.images);
  std::printf("detections: %lld, groups recovered: %lld\n",
              static_cast<long long>(protected_model.detections()),
              static_cast<long long>(protected_model.groups_recovered()));
  accuracy("accuracy (after recovery):");
  return 0;
}
