// Environment-variable knobs for experiment binaries.
//
// RADAR_FAST=1      — shrink Monte-Carlo round counts for CI smoke runs.
// RADAR_ROUNDS=N    — explicit round count override.
// RADAR_CACHE_DIR=D — where trained-model checkpoints are cached.
// RADAR_THREADS=N   — campaign worker threads for the sweep benches
//                     (0 = all cores; results are thread-count invariant).
// RADAR_SIMD=L      — kernel dispatch level: scalar|neon|avx2|avx512|native
//                     (clamped to what the CPU supports; see
//                     common/cpu_features.h). Results are level-invariant;
//                     only throughput changes.
// RADAR_CHAOS=SPEC  — arm chaos fault points for the serve stack:
//                     point:prob:seed[:param[:max_fires]],... (see
//                     common/fault_points.h; parsed once at ModelHost
//                     construction). Unset = chaos layer fully inert.
#pragma once

#include <cstdint>
#include <string>

namespace radar {

/// Read an integer env var; returns fallback when unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Read a string env var; returns fallback when unset.
std::string env_string(const char* name, const std::string& fallback);

/// True when RADAR_FAST is set to a non-zero value.
bool fast_mode();

/// Round count for a Monte-Carlo experiment: RADAR_ROUNDS if set, else
/// `fast` when fast_mode(), else `full`.
std::int64_t experiment_rounds(std::int64_t full, std::int64_t fast);

/// Directory for cached trained models (created on demand).
std::string model_cache_dir();

/// Campaign worker count for the sweep benches: RADAR_THREADS clamped to
/// [0, 4096] (out-of-range or unset falls back to 0 = all cores).
std::size_t bench_threads();

}  // namespace radar
