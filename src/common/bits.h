// Bit-level helpers for 8-bit two's-complement weights.
//
// The attack and defense both reason about individual bits of int8 weights;
// these helpers centralize the (occasionally subtle) signed<->unsigned
// conversions so no call site re-implements them.
#pragma once

#include <cstdint>

#include "common/error.h"

namespace radar {

/// Index of the most significant (sign) bit of an int8 weight.
inline constexpr int kMsb = 7;

/// Read bit `bit` (0 = LSB .. 7 = MSB) of an int8 value.
inline bool get_bit(std::int8_t v, int bit) {
  RADAR_REQUIRE(bit >= 0 && bit < 8, "bit index out of range");
  return (static_cast<std::uint8_t>(v) >> bit) & 1u;
}

/// Return `v` with bit `bit` flipped.
inline std::int8_t flip_bit(std::int8_t v, int bit) {
  RADAR_REQUIRE(bit >= 0 && bit < 8, "bit index out of range");
  return static_cast<std::int8_t>(static_cast<std::uint8_t>(v) ^
                                  (1u << bit));
}

/// Return `v` with bit `bit` set to `on`.
inline std::int8_t set_bit(std::int8_t v, int bit, bool on) {
  RADAR_REQUIRE(bit >= 0 && bit < 8, "bit index out of range");
  auto u = static_cast<std::uint8_t>(v);
  if (on)
    u = static_cast<std::uint8_t>(u | (1u << bit));
  else
    u = static_cast<std::uint8_t>(u & ~(1u << bit));
  return static_cast<std::int8_t>(u);
}

/// Signed value change caused by flipping bit `bit` of `v`.
/// Flipping the MSB of a two's-complement byte changes the value by ∓128
/// (bit 0→1 subtracts... adds -128), lower bits by ±2^bit.
inline int flip_delta(std::int8_t v, int bit) {
  const int before = v;
  const int after = flip_bit(v, bit);
  return after - before;
}

/// Floor division by a power of two via arithmetic shift; matches the
/// paper's ⌊M / 2^k⌋ for negative checksums as well.
inline std::int64_t floor_div_pow2(std::int64_t m, int k) {
  RADAR_REQUIRE(k >= 0 && k < 63, "shift out of range");
  return m >> k;
}

/// Population count of a 64-bit word.
inline int popcount64(std::uint64_t v) { return __builtin_popcountll(v); }

}  // namespace radar
