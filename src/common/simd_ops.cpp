#include "common/simd_ops.h"

#include <algorithm>
#include <array>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define RADAR_SIMD_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define RADAR_SIMD_NEON 1
#endif

namespace radar::simd {

namespace {

// Vector accumulator lanes are drained to int64 every kDrainBlock
// elements: the largest per-lane partial sum inside one block is
// (kDrainBlock / lanes) * max|pair of products|, which stays far from
// int32 wrap for every caller (scan groups reach 2^22 elements; without
// draining, a lane's running sum could exceed the bound of the *total*
// the precondition guarantees).
constexpr std::int64_t kDrainBlock = std::int64_t{1} << 19;

// ---- scalar reference (the bit-identity anchor) ----

std::int32_t dot_i8_scalar(const std::int8_t* a, const std::int8_t* b,
                           std::int64_t n) {
  std::int32_t acc = 0;
  for (std::int64_t k = 0; k < n; ++k)
    acc += static_cast<std::int32_t>(a[k]) * static_cast<std::int32_t>(b[k]);
  return acc;
}

void axpy_i8_scalar(std::int32_t* acc, const std::int8_t* w,
                    const std::int8_t* s, std::int64_t n) {
  for (std::int64_t k = 0; k < n; ++k)
    acc[k] += static_cast<std::int32_t>(w[k]) * static_cast<std::int32_t>(s[k]);
}

bool bytes_equal_scalar(const void* a, const void* b, std::size_t n) {
  return n == 0 || std::memcmp(a, b, n) == 0;
}

#if defined(RADAR_SIMD_X86)

// ---- AVX2 ----

__attribute__((target("avx2"))) std::int64_t hsum_i32x8(__m256i v) {
  alignas(32) std::int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  std::int64_t s = 0;
  for (int i = 0; i < 8; ++i) s += lanes[i];
  return s;
}

__attribute__((target("avx2"))) std::int32_t dot_i8_avx2(
    const std::int8_t* a, const std::int8_t* b, std::int64_t n) {
  std::int64_t total = 0;
  std::int64_t i = 0;
  const std::int64_t vec_end = n & ~std::int64_t{15};
  while (i < vec_end) {
    const std::int64_t block_end = std::min(vec_end, i + kDrainBlock);
    __m256i acc = _mm256_setzero_si256();
    for (; i < block_end; i += 16) {
      const __m256i va = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
      const __m256i vb = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
    }
    total += hsum_i32x8(acc);
  }
  auto result = static_cast<std::int32_t>(total);
  for (; i < n; ++i)
    result += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  return result;
}

__attribute__((target("avx2"))) void axpy_i8_avx2(std::int32_t* acc,
                                                  const std::int8_t* w,
                                                  const std::int8_t* s,
                                                  std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i vw = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i)));
    const __m256i vs = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i)));
    const __m256i prod = _mm256_mullo_epi16(vw, vs);  // |p| <= 2^14, exact
    const __m256i lo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod));
    const __m256i hi =
        _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1));
    __m256i* accp = reinterpret_cast<__m256i*>(acc + i);
    _mm256_storeu_si256(
        accp, _mm256_add_epi32(_mm256_loadu_si256(accp), lo));
    __m256i* accp2 = reinterpret_cast<__m256i*>(acc + i + 8);
    _mm256_storeu_si256(
        accp2, _mm256_add_epi32(_mm256_loadu_si256(accp2), hi));
  }
  for (; i < n; ++i)
    acc[i] +=
        static_cast<std::int32_t>(w[i]) * static_cast<std::int32_t>(s[i]);
}

__attribute__((target("avx2"))) bool bytes_equal_avx2(const void* pa,
                                                      const void* pb,
                                                      std::size_t n) {
  const auto* a = static_cast<const char*>(pa);
  const auto* b = static_cast<const char*>(pb);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) != -1) return false;
  }
  return i == n || std::memcmp(a + i, b + i, n - i) == 0;
}

// ---- AVX-512 (F+BW+VL; madd form) ----

__attribute__((target("avx512f,avx512bw,avx512vl"))) std::int64_t
hsum_i32x16(__m512i v) {
  alignas(64) std::int32_t lanes[16];
  _mm512_store_si512(lanes, v);
  std::int64_t s = 0;
  for (int i = 0; i < 16; ++i) s += lanes[i];
  return s;
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) std::int32_t
dot_i8_avx512(const std::int8_t* a, const std::int8_t* b, std::int64_t n) {
  std::int64_t total = 0;
  std::int64_t i = 0;
  const std::int64_t vec_end = n & ~std::int64_t{31};
  while (i < vec_end) {
    const std::int64_t block_end = std::min(vec_end, i + kDrainBlock);
    __m512i acc = _mm512_setzero_si512();
    for (; i < block_end; i += 32) {
      const __m512i va = _mm512_cvtepi8_epi16(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
      const __m512i vb = _mm512_cvtepi8_epi16(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
      acc = _mm512_add_epi32(acc, _mm512_madd_epi16(va, vb));
    }
    total += hsum_i32x16(acc);
  }
  auto result = static_cast<std::int32_t>(total);
  for (; i < n; ++i)
    result += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  return result;
}

// ---- AVX-512 VNNI (vpdpbusd) ----
//
// vpdpbusd multiplies unsigned bytes by signed bytes. Biasing `a` by
// +128 (a ^ 0x80 reinterpreted as u8) gives
//   sum (a_k + 128) * b_k = dot + 128 * sum b_k,
// and a second vpdpbusd chain against constant 1-bytes produces
// sum b_k, so the exact dot is recovered as S1 - 128*S2 (in int64:
// S1 alone can exceed int32 even when the true dot does not).

__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) std::int32_t
dot_i8_vnni(const std::int8_t* a, const std::int8_t* b, std::int64_t n) {
  const __m512i flip = _mm512_set1_epi8(static_cast<char>(0x80));
  const __m512i ones = _mm512_set1_epi8(1);
  std::int64_t total = 0;
  std::int64_t i = 0;
  const std::int64_t vec_end = n & ~std::int64_t{63};
  while (i < vec_end) {
    const std::int64_t block_end = std::min(vec_end, i + kDrainBlock);
    __m512i s1 = _mm512_setzero_si512();
    __m512i s2 = _mm512_setzero_si512();
    for (; i < block_end; i += 64) {
      const __m512i va = _mm512_loadu_si512(a + i);
      const __m512i vb = _mm512_loadu_si512(b + i);
      s1 = _mm512_dpbusd_epi32(s1, _mm512_xor_si512(va, flip), vb);
      s2 = _mm512_dpbusd_epi32(s2, ones, vb);
    }
    total += hsum_i32x16(s1) - 128 * hsum_i32x16(s2);
  }
  auto result = static_cast<std::int32_t>(total);
  for (; i < n; ++i)
    result += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  return result;
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) void axpy_i8_avx512(
    std::int32_t* acc, const std::int8_t* w, const std::int8_t* s,
    std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512i vw = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i)));
    const __m512i vs = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i)));
    const __m512i prod = _mm512_mullo_epi16(vw, vs);
    const __m512i lo = _mm512_cvtepi16_epi32(_mm512_castsi512_si256(prod));
    const __m512i hi =
        _mm512_cvtepi16_epi32(_mm512_extracti64x4_epi64(prod, 1));
    _mm512_storeu_si512(
        acc + i, _mm512_add_epi32(_mm512_loadu_si512(acc + i), lo));
    _mm512_storeu_si512(
        acc + i + 16,
        _mm512_add_epi32(_mm512_loadu_si512(acc + i + 16), hi));
  }
  for (; i < n; ++i)
    acc[i] +=
        static_cast<std::int32_t>(w[i]) * static_cast<std::int32_t>(s[i]);
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) bool bytes_equal_avx512(
    const void* pa, const void* pb, std::size_t n) {
  const auto* a = static_cast<const char*>(pa);
  const auto* b = static_cast<const char*>(pb);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    if (_mm512_cmpneq_epi8_mask(va, vb) != 0) return false;
  }
  return i == n || std::memcmp(a + i, b + i, n - i) == 0;
}

#endif  // RADAR_SIMD_X86

#if defined(RADAR_SIMD_NEON)

// ---- NEON (aarch64) ----
// The sdot form needs the dotprod extension (armv8.2+); the vmull form
// runs on every aarch64 core. Both are exact int32 paths.

std::int32_t dot_i8_neon(const std::int8_t* a, const std::int8_t* b,
                         std::int64_t n) {
  std::int64_t total = 0;
  std::int64_t i = 0;
  const std::int64_t vec_end = n & ~std::int64_t{15};
  while (i < vec_end) {
    const std::int64_t block_end = std::min(vec_end, i + kDrainBlock);
    int32x4_t acc = vdupq_n_s32(0);
    for (; i < block_end; i += 16) {
      const int8x16_t va = vld1q_s8(a + i);
      const int8x16_t vb = vld1q_s8(b + i);
#if defined(__ARM_FEATURE_DOTPROD)
      acc = vdotq_s32(acc, va, vb);
#else
      const int16x8_t lo = vmull_s8(vget_low_s8(va), vget_low_s8(vb));
      const int16x8_t hi = vmull_s8(vget_high_s8(va), vget_high_s8(vb));
      acc = vpadalq_s16(vpadalq_s16(acc, lo), hi);
#endif
    }
    total += vaddlvq_s32(acc);
  }
  auto result = static_cast<std::int32_t>(total);
  for (; i < n; ++i)
    result += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  return result;
}

void axpy_i8_neon(std::int32_t* acc, const std::int8_t* w,
                  const std::int8_t* s, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int16x8_t prod = vmull_s8(vld1_s8(w + i), vld1_s8(s + i));
    vst1q_s32(acc + i,
              vaddw_s16(vld1q_s32(acc + i), vget_low_s16(prod)));
    vst1q_s32(acc + i + 4,
              vaddw_s16(vld1q_s32(acc + i + 4), vget_high_s16(prod)));
  }
  for (; i < n; ++i)
    acc[i] +=
        static_cast<std::int32_t>(w[i]) * static_cast<std::int32_t>(s[i]);
}

#endif  // RADAR_SIMD_NEON

}  // namespace

const DotI8Fn* dot_i8_table() {
  static const std::array<DotI8Fn, cpu::kNumSimdLevels> table = [] {
    std::array<DotI8Fn, cpu::kNumSimdLevels> t;
    t.fill(&dot_i8_scalar);
#if defined(RADAR_SIMD_X86)
    if (cpu::level_supported(cpu::SimdLevel::kAvx2))
      t[static_cast<int>(cpu::SimdLevel::kAvx2)] = &dot_i8_avx2;
    if (cpu::level_supported(cpu::SimdLevel::kAvx512))
      t[static_cast<int>(cpu::SimdLevel::kAvx512)] =
          cpu::has_avx512_vnni() ? &dot_i8_vnni : &dot_i8_avx512;
#endif
#if defined(RADAR_SIMD_NEON)
    t[static_cast<int>(cpu::SimdLevel::kNeon)] = &dot_i8_neon;
#endif
    return t;
  }();
  return table.data();
}

const AxpyI8Fn* axpy_i8_table() {
  static const std::array<AxpyI8Fn, cpu::kNumSimdLevels> table = [] {
    std::array<AxpyI8Fn, cpu::kNumSimdLevels> t;
    t.fill(&axpy_i8_scalar);
#if defined(RADAR_SIMD_X86)
    if (cpu::level_supported(cpu::SimdLevel::kAvx2))
      t[static_cast<int>(cpu::SimdLevel::kAvx2)] = &axpy_i8_avx2;
    if (cpu::level_supported(cpu::SimdLevel::kAvx512))
      t[static_cast<int>(cpu::SimdLevel::kAvx512)] = &axpy_i8_avx512;
#endif
#if defined(RADAR_SIMD_NEON)
    t[static_cast<int>(cpu::SimdLevel::kNeon)] = &axpy_i8_neon;
#endif
    return t;
  }();
  return table.data();
}

const BytesEqualFn* bytes_equal_table() {
  static const std::array<BytesEqualFn, cpu::kNumSimdLevels> table = [] {
    std::array<BytesEqualFn, cpu::kNumSimdLevels> t;
    t.fill(&bytes_equal_scalar);
#if defined(RADAR_SIMD_X86)
    if (cpu::level_supported(cpu::SimdLevel::kAvx2))
      t[static_cast<int>(cpu::SimdLevel::kAvx2)] = &bytes_equal_avx2;
    if (cpu::level_supported(cpu::SimdLevel::kAvx512))
      t[static_cast<int>(cpu::SimdLevel::kAvx512)] = &bytes_equal_avx512;
#endif
    return t;
  }();
  return table.data();
}

}  // namespace radar::simd
