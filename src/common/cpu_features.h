// Runtime SIMD capability detection and kernel-dispatch level selection.
//
// Every hot kernel in the repo (masked-sum scan rows, the rotated
// range-window kernel, CRC slicing, snapshot compare, the int8 GEMM
// microkernels) keeps its portable scalar form as the bit-identical
// reference and registers explicitly vectorized variants in a small
// per-kernel function-pointer table indexed by SimdLevel. The active
// level is a process-wide atomic:
//
//   * detected once from cpuid (x86: AVX2, AVX-512 F/BW/VL, VNNI, with
//     the OS xsave check for ymm/zmm state) or the architecture (arm:
//     NEON), and
//   * overridable with RADAR_SIMD=scalar|neon|avx2|avx512|native for
//     differential testing and benchmarking — requesting a level the
//     machine cannot run silently clamps to the best supported one, so
//     a test matrix can set RADAR_SIMD=avx512 everywhere and still pass
//     on older hardware.
//
// Because all dispatched kernels accumulate in exact integer arithmetic,
// every level produces byte-identical results; the level only moves
// throughput. The differential test batteries run each available level
// against scalar to enforce that.
#pragma once

#include <string>

namespace radar::cpu {

/// Dispatch tiers, ordered by preference. kNeon only exists on arm,
/// kAvx2/kAvx512 only on x86; kScalar is supported everywhere.
enum class SimdLevel : int {
  kScalar = 0,
  kNeon = 1,    ///< aarch64 NEON (sdot where available)
  kAvx2 = 2,    ///< 256-bit integer SIMD
  kAvx512 = 3,  ///< AVX-512 F+BW+VL (VNNI used when present)
};

inline constexpr int kNumSimdLevels = 4;

/// Highest level this machine can execute (cpuid + xgetbv, cached).
SimdLevel detected_level();

/// True when `level` can execute on this machine.
bool level_supported(SimdLevel level);

/// True when AVX-512 VNNI (`vpdpbusd`) is available (implies kAvx512).
bool has_avx512_vnni();

/// The level kernels dispatch on right now. Initialized on first use
/// from RADAR_SIMD (unset or "native" selects detected_level()).
SimdLevel active_level();

/// Force a level; clamps to the best supported level <= the request
/// (falling back to kScalar when the requested tier does not exist on
/// this architecture). Returns the level actually installed.
SimdLevel set_active_level(SimdLevel level);

/// "scalar" / "neon" / "avx2" / "avx512".
const char* level_name(SimdLevel level);

/// Parse a RADAR_SIMD value; returns detected_level() for "native" /
/// unknown strings and the named level otherwise.
SimdLevel parse_level(const std::string& name);

/// RAII level override for differential tests: installs `level` (with
/// the usual clamping), restores the previous level on destruction.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(active_level()) {
    set_active_level(level);
  }
  ~ScopedSimdLevel() { set_active_level(previous_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel previous_;
};

}  // namespace radar::cpu
