// Deterministic random number generation.
//
// Every stochastic component in the library (weight init, synthetic data,
// attacks, Monte-Carlo experiments) draws from an explicitly seeded
// radar::Rng so that every experiment is bit-reproducible. There is no
// global RNG: ownership is always explicit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace radar {

/// splitmix64 finalizer — the well-mixed keyed hash behind the mask PRF,
/// the DRAM cell hash, and campaign seed derivation. One definition so
/// those streams cannot silently diverge.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Deterministic PRNG wrapper around std::mt19937_64 with the sampling
/// helpers used throughout the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5241444152ULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal scaled by stddev around mean.
  double normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Raw 64 random bits.
  std::uint64_t bits() { return engine_(); }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Derive an independent child generator (for parallel streams).
  Rng fork() { return Rng(engine_() ^ 0x9E3779B97F4A7C15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace radar
