// SIGBUS containment for reads of file-backed (mmap'd) memory.
//
// A v3 package's golden arena is served straight from a read-only file
// mapping. If the file is truncated *after* the mapping is established
// (operator error, a dying disk, an overlay unmount), touching a page
// past the new EOF raises SIGBUS — which by default kills the whole
// multi-tenant daemon because one tenant's package went bad. The guard
// turns that into a recoverable per-read failure: run the read under
// with_sigbus_guard() and a fault becomes a `false` return instead of
// process death, letting the caller degrade the tenant (snapshot
// fallback + backed-off re-open) exactly like a CRC mismatch.
//
// Mechanics: a process-wide SIGBUS/SEGV handler is installed on first
// use; each guarded region sigsetjmp()s into a thread-local buffer that
// the handler siglongjmp()s back to. Faults on threads with no active
// guard are re-raised with default disposition, so genuine bugs still
// crash loudly with the original signal. Guarded regions must not
// allocate or take locks in ways that would be left inconsistent by a
// longjmp — keep them to the raw byte reads (CRC loops, byte compares),
// which is exactly how GoldenGuard and the quarantine scrub use it.
//
// On platforms without POSIX signals the wrapper just runs `fn` and
// returns true (mmap loading is compiled out there anyway).
#pragma once

#include <functional>

namespace radar {

/// Run `fn`, absorbing SIGBUS/SEGV raised on this thread during the
/// call. Returns true when `fn` completed, false when a fault aborted
/// it. Reentrant per thread (nested guards restore the outer jump
/// buffer); thread-safe.
bool with_sigbus_guard(const std::function<void()>& fn);

}  // namespace radar
