#include "common/sigbus_guard.h"

#if defined(__unix__) || defined(__APPLE__)
#define RADAR_HAVE_SIGBUS_GUARD 1
#endif

#ifdef RADAR_HAVE_SIGBUS_GUARD

#include <csetjmp>
#include <csignal>
#include <mutex>

namespace radar {
namespace {

// Active jump target for this thread; null when no guard is active.
thread_local sigjmp_buf* g_jump = nullptr;

void fault_handler(int sig) {
  if (g_jump != nullptr) siglongjmp(*g_jump, sig);
  // No guard on this thread: this is a genuine bug, not a torn mapping.
  // Restore default disposition and re-raise so the process dies with
  // the original signal (and a usable core dump).
  signal(sig, SIG_DFL);
  raise(sig);
}

void install_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = fault_handler;
  sigemptyset(&sa.sa_mask);
  // SA_NODEFER: siglongjmp skips the normal handler return, so without
  // it the signal would stay blocked after the first fault and the next
  // one would kill the process despite an active guard.
  sa.sa_flags = SA_NODEFER;
  sigaction(SIGBUS, &sa, nullptr);
  sigaction(SIGSEGV, &sa, nullptr);
}

}  // namespace

bool with_sigbus_guard(const std::function<void()>& fn) {
  static std::once_flag once;
  std::call_once(once, install_handlers);

  sigjmp_buf* const outer = g_jump;
  sigjmp_buf here;
  // Save the signal mask (second arg 1) so the longjmp path restores it.
  if (sigsetjmp(here, 1) != 0) {
    g_jump = outer;  // fault: unwind to the outer guard (or none)
    return false;
  }
  g_jump = &here;
  fn();
  g_jump = outer;
  return true;
}

}  // namespace radar

#else  // !RADAR_HAVE_SIGBUS_GUARD

namespace radar {

bool with_sigbus_guard(const std::function<void()>& fn) {
  fn();
  return true;
}

}  // namespace radar

#endif
