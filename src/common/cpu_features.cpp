#include "common/cpu_features.h"

#include <atomic>
#include <cstdint>

#include "common/env.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define RADAR_X86 1
#endif

namespace radar::cpu {

namespace {

#if defined(RADAR_X86)

struct X86Features {
  bool avx2 = false;
  bool avx512 = false;  ///< F + BW + VL: the subset the kernels need
  bool avx512_vnni = false;
};

/// xgetbv(0): the XCR0 register describing OS-enabled vector state.
std::uint64_t read_xcr0() {
  std::uint32_t eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

X86Features detect_x86() {
  X86Features f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  // The OS must have enabled xsave of the vector state; otherwise the
  // cpuid feature bits are meaningless (kernels would fault).
  const bool osxsave = (ecx & (1u << 27)) != 0;
  if (!osxsave) return f;
  const std::uint64_t xcr0 = read_xcr0();
  const bool ymm_state = (xcr0 & 0x6) == 0x6;          // XMM + YMM
  const bool zmm_state = (xcr0 & 0xe6) == 0xe6;        // + opmask/ZMM
  if (!ymm_state) return f;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return f;
  f.avx2 = (ebx & (1u << 5)) != 0;
  const bool avx512f = (ebx & (1u << 16)) != 0;
  const bool avx512bw = (ebx & (1u << 30)) != 0;
  const bool avx512vl = (ebx & (1u << 31)) != 0;
  f.avx512 = zmm_state && avx512f && avx512bw && avx512vl;
  f.avx512_vnni = f.avx512 && (ecx & (1u << 11)) != 0;
  return f;
}

const X86Features& x86_features() {
  static const X86Features f = detect_x86();
  return f;
}

#endif  // RADAR_X86

/// Active level storage; -1 = not yet initialized from RADAR_SIMD.
std::atomic<int> g_active{-1};

/// Best supported level <= the request (tiers that do not exist on this
/// architecture fall through to scalar).
SimdLevel clamp_to_supported(SimdLevel level) {
  SimdLevel eff = SimdLevel::kScalar;
  for (int l = 0; l <= static_cast<int>(level); ++l) {
    const auto cand = static_cast<SimdLevel>(l);
    if (level_supported(cand)) eff = cand;
  }
  return eff;
}

SimdLevel init_from_env() {
  return clamp_to_supported(parse_level(env_string("RADAR_SIMD", "native")));
}

}  // namespace

SimdLevel detected_level() {
#if defined(RADAR_X86)
  if (x86_features().avx512) return SimdLevel::kAvx512;
  if (x86_features().avx2) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
#elif defined(__aarch64__)
  return SimdLevel::kNeon;  // NEON is architecturally guaranteed
#else
  return SimdLevel::kScalar;
#endif
}

bool level_supported(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
#if defined(RADAR_X86)
    case SimdLevel::kAvx2:
      return x86_features().avx2;
    case SimdLevel::kAvx512:
      return x86_features().avx512;
#elif defined(__aarch64__)
    case SimdLevel::kNeon:
      return true;
#endif
    default:
      return false;
  }
}

bool has_avx512_vnni() {
#if defined(RADAR_X86)
  return x86_features().avx512_vnni;
#else
  return false;
#endif
}

SimdLevel active_level() {
  int v = g_active.load(std::memory_order_relaxed);
  if (v < 0) {
    const SimdLevel init = init_from_env();
    // First caller wins; racing initializers compute the same value.
    int expected = -1;
    g_active.compare_exchange_strong(expected, static_cast<int>(init),
                                     std::memory_order_relaxed);
    v = g_active.load(std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(v);
}

SimdLevel set_active_level(SimdLevel level) {
  const SimdLevel eff = clamp_to_supported(level);
  g_active.store(static_cast<int>(eff), std::memory_order_relaxed);
  return eff;
}

const char* level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kNeon: return "neon";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "scalar";
}

SimdLevel parse_level(const std::string& name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "neon") return SimdLevel::kNeon;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  return detected_level();
}

}  // namespace radar::cpu
