#include "common/serialize.h"

#include <cstring>
#include <filesystem>

namespace radar {

namespace {
constexpr std::uint32_t kMagic = 0x52414452;  // "RADR"
constexpr std::uint64_t kMaxVectorBytes = 1ull << 32;
}  // namespace

BinaryWriter::BinaryWriter(const std::string& path,
                           std::uint32_t format_version)
    : out_(path, std::ios::binary), path_(path) {
  if (!out_) throw SerializationError("cannot open for write: " + path);
  write_u32(kMagic);
  write_u32(format_version);
}

BinaryWriter::~BinaryWriter() {
  if (!closed_) {
    out_.flush();
  }
}

template <typename T>
void BinaryWriter::write_raw(const T& v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(T));
  if (!out_) throw SerializationError("write failure: " + path_);
}

void BinaryWriter::write_u8(std::uint8_t v) { write_raw(v); }
void BinaryWriter::write_u32(std::uint32_t v) { write_raw(v); }
void BinaryWriter::write_u64(std::uint64_t v) { write_raw(v); }
void BinaryWriter::write_i64(std::int64_t v) { write_raw(v); }
void BinaryWriter::write_f32(float v) { write_raw(v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  if (!out_) throw SerializationError("write failure: " + path_);
}

void BinaryWriter::write_bytes(const void* data, std::size_t n) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(n));
  if (!out_) throw SerializationError("write failure: " + path_);
}

std::uint64_t BinaryWriter::tell() {
  const auto pos = out_.tellp();
  if (pos < 0) throw SerializationError("tell failure: " + path_);
  return static_cast<std::uint64_t>(pos);
}

void BinaryWriter::write_f32_vector(const std::vector<float>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
  if (!out_) throw SerializationError("write failure: " + path_);
}

void BinaryWriter::write_i8_vector(const std::vector<std::int8_t>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size()));
  if (!out_) throw SerializationError("write failure: " + path_);
}

void BinaryWriter::write_u8_vector(const std::vector<std::uint8_t>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size()));
  if (!out_) throw SerializationError("write failure: " + path_);
}

void BinaryWriter::write_u64_vector(const std::vector<std::uint64_t>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(std::uint64_t)));
  if (!out_) throw SerializationError("write failure: " + path_);
}

void BinaryWriter::close() {
  out_.flush();
  if (!out_) throw SerializationError("flush failure: " + path_);
  out_.close();
  closed_ = true;
}

BinaryReader::BinaryReader(const std::string& path,
                           std::uint32_t expected_version)
    : BinaryReader(path, expected_version, expected_version) {}

BinaryReader::BinaryReader(const std::string& path,
                           std::uint32_t min_version,
                           std::uint32_t max_version)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) throw SerializationError("cannot open for read: " + path);
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw SerializationError("cannot stat: " + path);
  file_size_ = static_cast<std::uint64_t>(size);
  const auto magic = read_u32();
  if (magic != kMagic)
    throw SerializationError("bad magic in " + path);
  version_ = read_u32();
  if (version_ < min_version || version_ > max_version)
    throw SerializationError("version mismatch in " + path + ": got " +
                             std::to_string(version_) + " expected " +
                             std::to_string(min_version) + ".." +
                             std::to_string(max_version));
}

template <typename T>
T BinaryReader::read_raw() {
  T v{};
  in_.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in_) throw SerializationError("truncated read: " + path_);
  return v;
}

void BinaryReader::read_bytes(void* dst, std::uint64_t n) {
  if (n > remaining())
    throw SerializationError("truncated read: " + path_);
  in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (!in_) throw SerializationError("truncated read: " + path_);
}

void BinaryReader::skip(std::uint64_t n) {
  if (n > remaining())
    throw SerializationError("truncated read: " + path_);
  in_.seekg(static_cast<std::streamoff>(n), std::ios::cur);
  if (!in_) throw SerializationError("seek failure: " + path_);
}

std::uint64_t BinaryReader::tell() {
  const auto pos = in_.tellg();
  if (pos < 0) throw SerializationError("tell failure: " + path_);
  return static_cast<std::uint64_t>(pos);
}

std::uint64_t BinaryReader::remaining() {
  const auto pos = in_.tellg();
  if (pos < 0) return 0;
  const auto upos = static_cast<std::uint64_t>(pos);
  return upos >= file_size_ ? 0 : file_size_ - upos;
}

void BinaryReader::check_length(std::uint64_t count, std::size_t elem_size) {
  if (count > kMaxVectorBytes / elem_size || count * elem_size > remaining())
    throw SerializationError("corrupt length field in " + path_);
}

std::uint8_t BinaryReader::read_u8() { return read_raw<std::uint8_t>(); }
std::uint32_t BinaryReader::read_u32() { return read_raw<std::uint32_t>(); }
std::uint64_t BinaryReader::read_u64() { return read_raw<std::uint64_t>(); }
std::int64_t BinaryReader::read_i64() { return read_raw<std::int64_t>(); }
float BinaryReader::read_f32() { return read_raw<float>(); }

std::string BinaryReader::read_string() {
  const auto n = read_u64();
  check_length(n, 1);
  std::string s(n, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(n));
  if (!in_) throw SerializationError("truncated string: " + path_);
  return s;
}

std::vector<float> BinaryReader::read_f32_vector() {
  const auto n = read_u64();
  check_length(n, sizeof(float));
  std::vector<float> v(n);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(float)));
  if (!in_) throw SerializationError("truncated vector: " + path_);
  return v;
}

std::vector<std::int8_t> BinaryReader::read_i8_vector() {
  const auto n = read_u64();
  check_length(n, 1);
  std::vector<std::int8_t> v(n);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(n));
  if (!in_) throw SerializationError("truncated vector: " + path_);
  return v;
}

std::vector<std::uint8_t> BinaryReader::read_u8_vector() {
  const auto n = read_u64();
  check_length(n, 1);
  std::vector<std::uint8_t> v(n);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(n));
  if (!in_) throw SerializationError("truncated vector: " + path_);
  return v;
}

std::vector<std::uint64_t> BinaryReader::read_u64_vector() {
  const auto n = read_u64();
  check_length(n, sizeof(std::uint64_t));
  std::vector<std::uint64_t> v(n);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(std::uint64_t)));
  if (!in_) throw SerializationError("truncated vector: " + path_);
  return v;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

}  // namespace radar
