#include "common/rng.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/error.h"

namespace radar {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  RADAR_REQUIRE(k <= n, "cannot sample more elements than the population");
  // Dense sampling when k is a large fraction of n; hash-set rejection
  // sampling otherwise (keeps 10-of-10M draws cheap).
  if (k * 3 >= n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    std::shuffle(all.begin(), all.end(), engine_);
    all.resize(k);
    return all;
  }
  std::unordered_set<std::size_t> seen;
  std::vector<std::size_t> out;
  out.reserve(k);
  std::uniform_int_distribution<std::size_t> d(0, n - 1);
  while (out.size() < k) {
    std::size_t v = d(engine_);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace radar
