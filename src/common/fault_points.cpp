#include "common/fault_points.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "common/error.h"
#include "common/logging.h"

namespace radar::chaos {

namespace {

/// splitmix64 — the repo's standard cheap stateless mixer (see
/// sim::DramModel's cell hash): full-avalanche, so (seed, index) streams
/// are independent across points and evaluations.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double u01(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry reg;
  return reg;
}

void FaultRegistry::arm(const std::string& point, const FaultSpec& spec) {
  RADAR_REQUIRE(!point.empty(), "chaos: fault point needs a name");
  RADAR_REQUIRE(spec.prob >= 0.0 && spec.prob <= 1.0,
                "chaos: prob must be in [0,1] for point " + point);
  std::unique_lock lock(mu_);
  auto& slot = points_[point];
  if (slot == nullptr) slot = std::make_unique<Point>();
  slot->spec = spec;
  slot->evals.store(0, std::memory_order_relaxed);
  slot->fires.store(0, std::memory_order_relaxed);
  armed_.store(points_.size(), std::memory_order_release);
}

bool FaultRegistry::disarm(const std::string& point) {
  std::unique_lock lock(mu_);
  const bool erased = points_.erase(point) > 0;
  armed_.store(points_.size(), std::memory_order_release);
  return erased;
}

void FaultRegistry::disarm_all() {
  std::unique_lock lock(mu_);
  points_.clear();
  armed_.store(0, std::memory_order_release);
}

void FaultRegistry::arm_from_spec(const std::string& spec) {
  std::istringstream clauses(spec);
  std::string clause;
  while (std::getline(clauses, clause, ',')) {
    if (clause.empty()) continue;
    std::istringstream fields(clause);
    std::string name, tok;
    FaultSpec fs;
    if (!std::getline(fields, name, ':') || name.empty() ||
        !std::getline(fields, tok, ':'))
      throw Error("chaos: bad clause '" + clause +
                  "' (want point:prob:seed[:param[:max_fires]])");
    try {
      std::size_t pos = 0;
      fs.prob = std::stod(tok, &pos);
      if (pos != tok.size()) throw std::invalid_argument(tok);
      if (!std::getline(fields, tok, ':'))
        throw std::invalid_argument("missing seed");
      fs.seed = std::stoull(tok, &pos);
      if (pos != tok.size()) throw std::invalid_argument(tok);
      if (std::getline(fields, tok, ':')) {
        fs.param = std::stoll(tok, &pos);
        if (pos != tok.size()) throw std::invalid_argument(tok);
      }
      if (std::getline(fields, tok, ':')) {
        fs.max_fires = std::stoll(tok, &pos);
        if (pos != tok.size()) throw std::invalid_argument(tok);
      }
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw Error("chaos: bad clause '" + clause +
                  "' (want point:prob:seed[:param[:max_fires]])");
    }
    arm(name, fs);  // validates prob
  }
}

void FaultRegistry::arm_from_env() {
  if (env_armed_.exchange(true, std::memory_order_acq_rel)) return;
  const char* v = std::getenv("RADAR_CHAOS");
  if (v == nullptr || *v == '\0') return;
  arm_from_spec(v);
  for (const PointStats& p : stats())
    RADAR_LOG(kWarn) << "chaos: armed " << p.name << " prob=" << p.spec.prob
                     << " seed=" << p.spec.seed << " param=" << p.spec.param
                     << " max_fires=" << p.spec.max_fires;
}

bool FaultRegistry::fire(const char* point) {
  if (armed_.load(std::memory_order_acquire) == 0) return false;
  std::shared_lock lock(mu_);
  const auto it = points_.find(point);
  if (it == points_.end()) return false;
  Point& p = *it->second;
  const std::uint64_t n = p.evals.fetch_add(1, std::memory_order_relaxed);
  if (p.spec.max_fires >= 0 &&
      p.fires.load(std::memory_order_relaxed) >=
          static_cast<std::uint64_t>(p.spec.max_fires))
    return false;
  // Deterministic per (seed, evaluation index): replaying a chaos run
  // reaches the same verdict at the same evaluation count.
  const bool hit = u01(splitmix64(p.spec.seed ^ (n * 0x9E3779B97F4A7C15ULL))) <
                   p.spec.prob;
  if (!hit) return false;
  // max_fires race note: two threads can pass the cap check concurrently
  // and both fire; the cap is a scripting convenience for single-threaded
  // points (scanner, control plane), not a strict global budget.
  p.fires.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::int64_t FaultRegistry::param(const char* point,
                                  std::int64_t fallback) const {
  if (armed_.load(std::memory_order_acquire) == 0) return fallback;
  std::shared_lock lock(mu_);
  const auto it = points_.find(point);
  if (it == points_.end() || it->second->spec.param == 0) return fallback;
  return it->second->spec.param;
}

std::vector<PointStats> FaultRegistry::stats() const {
  std::shared_lock lock(mu_);
  std::vector<PointStats> out;
  out.reserve(points_.size());
  for (const auto& [name, p] : points_) {
    PointStats s;
    s.name = name;
    s.spec = p->spec;
    s.evals = p->evals.load(std::memory_order_relaxed);
    s.fires = p->fires.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  // unordered_map order is not stable across runs; sort for replies.
  std::sort(out.begin(), out.end(),
            [](const PointStats& a, const PointStats& b) {
              return a.name < b.name;
            });
  return out;
}

std::string FaultRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"points\":[";
  bool first = true;
  for (const PointStats& p : stats()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << p.name << "\",\"prob\":" << p.spec.prob
       << ",\"seed\":" << p.spec.seed << ",\"param\":" << p.spec.param
       << ",\"max_fires\":" << p.spec.max_fires << ",\"evals\":" << p.evals
       << ",\"fires\":" << p.fires << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace radar::chaos
