#include "common/env.h"

#include <cstdlib>
#include <filesystem>

namespace radar {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

bool fast_mode() { return env_int("RADAR_FAST", 0) != 0; }

std::int64_t experiment_rounds(std::int64_t full, std::int64_t fast) {
  const std::int64_t forced = env_int("RADAR_ROUNDS", -1);
  if (forced > 0) return forced;
  return fast_mode() ? fast : full;
}

std::string model_cache_dir() {
  const std::string dir = env_string("RADAR_CACHE_DIR", ".model_cache");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

std::size_t bench_threads() {
  const std::int64_t v = env_int("RADAR_THREADS", 0);
  if (v < 0 || v > 4096) return 0;
  return static_cast<std::size_t>(v);
}

}  // namespace radar
