// Fixed-size thread pool with a parallel_for helper.
//
// Used by the GEMM kernels and Monte-Carlo experiment drivers. The pool is
// created once and reused; parallel_for partitions [0, n) into contiguous
// chunks, one per worker, which is the right granularity for the dense
// kernels in this library.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace radar {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; fire-and-forget (synchronize with wait()).
  void submit(std::function<void()> task);

  /// Block until every submitted task has completed.
  void wait();

  /// Run fn(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool. Blocks until complete. fn must be thread-safe across chunks.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Chunked variant: fn(begin, end) per chunk — lower overhead for cheap
  /// per-element bodies.
  void parallel_for_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

  /// Run fn(begin, end) over [0, n) through `pool` when it can actually
  /// parallelize (non-null, size > 1, n > 1); otherwise one inline
  /// fn(0, n) call — which allocates nothing, keeping callers'
  /// steady-state loops allocation-free.
  template <typename Fn>
  static void chunks_or_inline(ThreadPool* pool, std::size_t n, Fn&& fn) {
    if (pool != nullptr && pool->size() > 1 && n > 1)
      pool->parallel_for_chunks(n, fn);
    else if (n > 0)
      fn(0, n);
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace radar
