// Minimal leveled logger used by long-running experiments.
//
// Deliberately tiny: single sink (stderr), compile-time cheap when the
// level filters the message out, and no global construction order issues.
#pragma once

#include <sstream>
#include <string>

namespace radar {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: RADAR_LOG(kInfo) << "epoch " << e;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace radar

#define RADAR_LOG(level)                                        \
  if (::radar::LogLevel::level < ::radar::log_level()) {        \
  } else                                                        \
    ::radar::LogLine(::radar::LogLevel::level)
