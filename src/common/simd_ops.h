// Dispatched SIMD primitives shared by the scan kernels and the arena
// snapshot compare.
//
// Three primitives cover the scan-side hot loops (the int8 GEMM keeps
// its own register-tiled variants in nn/int8_gemm.cpp, and the CRC its
// slicing tables in codes/crc.cpp — each with the same table-per-kernel
// dispatch shape):
//
//   * dot_i8     — contiguous int8 x int8 -> int32 dot product: the
//                  contiguous-group masked sum and the linear-layer
//                  reduction. AVX-512 uses `vpdpbusd` (VNNI) when the
//                  machine has it, with the exact +128 bias correction.
//   * axpy_i8    — acc[k] += w[k] * s[k] over a contiguous segment: the
//                  rotated-row accumulation step of the interleaved scan
//                  and its range-window variant.
//   * bytes_equal — whole-buffer equality: snapshot compare / restore's
//                  changed-layer probe.
//
// Every variant accumulates in exact integer arithmetic, so all levels
// return bit-identical results; callers guarantee the same no-overflow
// precondition the scalar paths already rely on (|true dot| < 2^31).
// Variants live in per-kernel function-pointer tables indexed by
// cpu::SimdLevel; each call reads cpu::active_level(), so tests can
// sweep levels at runtime via cpu::ScopedSimdLevel.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/cpu_features.h"

namespace radar::simd {

using DotI8Fn = std::int32_t (*)(const std::int8_t*, const std::int8_t*,
                                 std::int64_t);
using AxpyI8Fn = void (*)(std::int32_t*, const std::int8_t*,
                          const std::int8_t*, std::int64_t);
using BytesEqualFn = bool (*)(const void*, const void*, std::size_t);

/// The per-kernel dispatch tables, indexed by cpu::SimdLevel. Entries
/// for levels this build / machine cannot run point at the scalar
/// reference (set_active_level clamps before they would be hit anyway).
const DotI8Fn* dot_i8_table();
const AxpyI8Fn* axpy_i8_table();
const BytesEqualFn* bytes_equal_table();

/// Contiguous dot product sum_k a[k]*b[k] with exact int32 result.
/// Precondition (inherited from the scalar paths): the true sum and
/// every partial |sum of a subset of products| fit in int32 — holds for
/// masked-sum scans (one operand is +1/-1/0 signs, n <= 2^22) and for
/// the GEMM reductions (k <= nn::kInt8GemmMaxK).
inline std::int32_t dot_i8(const std::int8_t* a, const std::int8_t* b,
                           std::int64_t n) {
  return dot_i8_table()[static_cast<int>(cpu::active_level())](a, b, n);
}

/// acc[k] += w[k] * s[k], elementwise over a contiguous segment.
inline void axpy_i8(std::int32_t* acc, const std::int8_t* w,
                    const std::int8_t* s, std::int64_t n) {
  axpy_i8_table()[static_cast<int>(cpu::active_level())](acc, w, s, n);
}

/// memcmp(a, b, n) == 0, vectorized at the active level.
inline bool bytes_equal(const void* a, const void* b, std::size_t n) {
  return bytes_equal_table()[static_cast<int>(cpu::active_level())](a, b, n);
}

}  // namespace radar::simd
