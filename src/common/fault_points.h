// Chaos fault-injection registry: every failure mode the serving stack
// must survive, injectable on demand and deterministic under a seed.
//
// A *fault point* is a named site in the code ("scanner.stall",
// "golden.torn_read", ...) that asks the registry whether it should fail
// right now. Unarmed points cost one relaxed atomic load — the registry
// short-circuits when nothing is armed, so production binaries carry the
// hooks for free. An armed point fires pseudo-randomly with probability
// `prob`, driven by a splitmix64 stream over (seed, evaluation index):
// the same seed always yields the same fire/no-fire sequence regardless
// of wall clock or thread interleaving at the *point* level, which is
// what makes chaos runs replayable and CI-assertable.
//
// Arming:
//   - env:     RADAR_CHAOS=point:prob:seed[:param[:max_fires]],...
//              (parsed once by arm_from_env(); ModelHost calls it)
//   - daemon:  CHAOS ARM <point> <prob> <seed> [param] [max_fires]
//   - code:    FaultRegistry::instance().arm("worker.stall", {...})
//
// `param` is a point-specific integer (stall duration in ms for the
// stall points; unused elsewhere); `max_fires` caps how many times the
// point fires before going quiet (-1 = unlimited) so a single torn read
// or a single crash can be scripted exactly.
//
// The registry is process-global and thread-safe: fire() may be called
// from any thread; arm/disarm take a writer lock and are expected to be
// rare (test setup, daemon control plane).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace radar::chaos {

/// Canonical point names wired through the stack (the registry accepts
/// any string — these are the ones the serve layer evaluates).
namespace points {
inline constexpr const char* kScannerStall = "scanner.stall";
inline constexpr const char* kScannerCrash = "scanner.crash";
inline constexpr const char* kWorkerException = "worker.exception";
inline constexpr const char* kWorkerStall = "worker.stall";
inline constexpr const char* kInferSlow = "infer.slow";
inline constexpr const char* kRecoveryFail = "recovery.fail";
inline constexpr const char* kGoldenTornRead = "golden.torn_read";
inline constexpr const char* kQueueStall = "queue.stall";
inline constexpr const char* kSocketPartialWrite = "socket.partial_write";
inline constexpr const char* kSocketDisconnect = "socket.disconnect";
inline constexpr const char* kWriterStall = "epoch.writer_stall";
}  // namespace points

/// How one armed point behaves.
struct FaultSpec {
  double prob = 1.0;            ///< fire probability per evaluation [0,1]
  std::uint64_t seed = 0;       ///< stream seed (replayable)
  std::int64_t param = 0;       ///< point-specific (stall ms, ...)
  std::int64_t max_fires = -1;  ///< stop firing after N fires (-1: never)
};

/// Point-in-time counters of one armed point.
struct PointStats {
  std::string name;
  FaultSpec spec;
  std::uint64_t evals = 0;  ///< times the point was reached
  std::uint64_t fires = 0;  ///< times it actually fired
};

class FaultRegistry {
 public:
  static FaultRegistry& instance();

  /// Arm (or re-arm, resetting counters) one point. Throws on prob
  /// outside [0,1].
  void arm(const std::string& point, const FaultSpec& spec);
  /// Disarm one point; false when it was not armed.
  bool disarm(const std::string& point);
  void disarm_all();
  /// Number of armed points (0 makes fire() a single atomic load).
  std::size_t armed() const {
    return armed_.load(std::memory_order_acquire);
  }

  /// Parse and arm a comma-separated spec list
  /// ("point:prob:seed[:param[:max_fires]],..."). Throws radar::Error on
  /// malformed input, naming the offending clause.
  void arm_from_spec(const std::string& spec);
  /// Arm from $RADAR_CHAOS exactly once per process (later calls no-op),
  /// logging what was armed. Safe to call from multiple entry points.
  void arm_from_env();

  /// The hot-path query: should the named point fail now? Counts the
  /// evaluation and, deterministically per (seed, evaluation index),
  /// decides. Always false for unarmed points or exhausted max_fires.
  bool fire(const char* point);

  /// The armed `param` of a point (fallback when unarmed) — stall
  /// durations and the like.
  std::int64_t param(const char* point, std::int64_t fallback) const;

  std::vector<PointStats> stats() const;
  /// One-line JSON of every armed point (daemon CHAOS STATS reply).
  std::string to_json() const;

 private:
  FaultRegistry() = default;

  struct Point {
    FaultSpec spec;
    std::atomic<std::uint64_t> evals{0};
    std::atomic<std::uint64_t> fires{0};
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Point>> points_;
  std::atomic<std::size_t> armed_{0};
  std::atomic<bool> env_armed_{false};
};

/// Convenience wrappers for call sites.
inline bool fire(const char* point) {
  return FaultRegistry::instance().fire(point);
}
inline std::int64_t param(const char* point, std::int64_t fallback) {
  return FaultRegistry::instance().param(point, fallback);
}

}  // namespace radar::chaos
