// Binary (de)serialization for model checkpoints and experiment caches.
//
// A tiny, versioned, little-endian tagged format. Writers and readers are
// symmetric; readers validate magic/version and length-prefix every string
// and buffer, throwing SerializationError on any truncation or mismatch.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"

namespace radar {

/// Streaming binary writer.
class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the header. Throws on I/O failure.
  BinaryWriter(const std::string& path, std::uint32_t format_version);
  ~BinaryWriter();

  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_string(const std::string& s);
  /// Raw bytes, no length prefix (callers that need one write it first).
  void write_bytes(const void* data, std::size_t n);
  /// Current byte offset from the start of the file.
  std::uint64_t tell();
  void write_f32_vector(const std::vector<float>& v);
  void write_i8_vector(const std::vector<std::int8_t>& v);
  void write_u8_vector(const std::vector<std::uint8_t>& v);
  void write_u64_vector(const std::vector<std::uint64_t>& v);

  /// Flushes and closes; throws if the stream is in a bad state.
  void close();

 private:
  template <typename T>
  void write_raw(const T& v);
  std::ofstream out_;
  std::string path_;
  bool closed_ = false;
};

/// Streaming binary reader (validates the header on open). Every
/// length-prefixed read is bounded by the bytes actually left in the file,
/// so a corrupted length field throws SerializationError instead of
/// attempting a multi-gigabyte allocation.
class BinaryReader {
 public:
  BinaryReader(const std::string& path, std::uint32_t expected_version);
  /// Accept any format version in [min_version, max_version] — for
  /// formats whose loader handles several versions transparently; check
  /// version() after opening.
  BinaryReader(const std::string& path, std::uint32_t min_version,
               std::uint32_t max_version);

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  std::string read_string();
  std::vector<float> read_f32_vector();
  std::vector<std::int8_t> read_i8_vector();
  std::vector<std::uint8_t> read_u8_vector();
  std::vector<std::uint64_t> read_u64_vector();

  std::uint32_t version() const { return version_; }

  /// Raw bytes into `dst` (throws SerializationError when fewer than `n`
  /// bytes are left).
  void read_bytes(void* dst, std::uint64_t n);
  /// Skip `n` bytes (bounds-checked like read_bytes).
  void skip(std::uint64_t n);
  /// Current byte offset from the start of the file.
  std::uint64_t tell();

  /// Bytes between the current read position and the end of the file.
  std::uint64_t remaining();

 private:
  template <typename T>
  T read_raw();
  /// Throws unless `count` elements of `elem_size` bytes fit in the rest
  /// of the file (overflow-safe).
  void check_length(std::uint64_t count, std::size_t elem_size);
  std::ifstream in_;
  std::string path_;
  std::uint32_t version_ = 0;
  std::uint64_t file_size_ = 0;
};

/// True if a regular file exists at `path`.
bool file_exists(const std::string& path);

}  // namespace radar
