// Error handling primitives for the RADAR library.
//
// All library-level failures throw radar::Error (a std::runtime_error) so
// callers can distinguish library faults from standard-library exceptions.
// The RADAR_CHECK / RADAR_REQUIRE macros capture the failing expression and
// source location.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace radar {

/// Base exception for all RADAR library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its contract.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when serialized data is malformed or truncated.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}
}  // namespace detail

}  // namespace radar

/// Internal invariant check; always enabled (errors here indicate bugs).
#define RADAR_CHECK(expr)                                                     \
  do {                                                                        \
    if (!(expr))                                                              \
      ::radar::detail::throw_check_failure("RADAR_CHECK", #expr, __FILE__,    \
                                           __LINE__, "");                     \
  } while (0)

/// Invariant check with a context message (streamable not required).
#define RADAR_CHECK_MSG(expr, msg)                                            \
  do {                                                                        \
    if (!(expr))                                                              \
      ::radar::detail::throw_check_failure("RADAR_CHECK", #expr, __FILE__,    \
                                           __LINE__, (msg));                  \
  } while (0)

/// Public-API argument validation.
#define RADAR_REQUIRE(expr, msg)                                              \
  do {                                                                        \
    if (!(expr))                                                              \
      ::radar::detail::throw_check_failure("RADAR_REQUIRE", #expr, __FILE__,  \
                                           __LINE__, (msg));                  \
  } while (0)
