#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace radar {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

// Daemon-friendly prefixes: a monotonic timestamp (seconds since the
// process's first log line — wall clock can step, steady_clock cannot)
// and a small dense thread id (the OS tid is noisy and non-portable;
// an arrival-order counter makes interleaved worker/scanner output
// readable). Both are lock-free on the hot path.
std::chrono::steady_clock::time_point log_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

int log_thread_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  const double t =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    log_epoch())
          .count();
  // One formatted buffer, one fwrite under the mutex: lines from
  // concurrent threads never interleave mid-line, and stderr being
  // unbuffered costs one syscall per line instead of one per fragment.
  char line[1024];
  const int n = std::snprintf(line, sizeof(line),
                              "[radar %-5s +%011.6f T%02d] %s\n",
                              level_name(level), t, log_thread_id(),
                              msg.c_str());
  if (n <= 0) return;
  const std::size_t len =
      n < static_cast<int>(sizeof(line)) ? static_cast<std::size_t>(n)
                                         : sizeof(line) - 1;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fwrite(line, 1, len, stderr);
}
}  // namespace detail

}  // namespace radar
