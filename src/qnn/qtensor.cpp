#include "qnn/qtensor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace radar::qnn {

float choose_activation_scale(const nn::Tensor& x) {
  const float amax = x.abs_max();
  return amax > 0.0f ? amax / 127.0f : 1.0f;
}

QTensor quantize_activation(const nn::Tensor& x, float scale) {
  RADAR_REQUIRE(scale > 0.0f, "activation scale must be positive");
  QTensor q;
  q.shape = x.shape();
  q.scale = scale;
  q.data.resize(static_cast<std::size_t>(x.numel()));
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const long r = std::lround(x[i] / scale);
    q.data[static_cast<std::size_t>(i)] =
        static_cast<std::int8_t>(std::clamp(r, -127L, 127L));
  }
  return q;
}

nn::Tensor dequantize(const QTensor& x) {
  nn::Tensor t(x.shape);
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(x.data[static_cast<std::size_t>(i)]) * x.scale;
  return t;
}

}  // namespace radar::qnn
