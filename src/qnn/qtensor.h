// Quantized activation tensors and integer inference kernels.
//
// The deployment-side counterpart of the float training substrate: the
// paper's platform (a Cortex-M4F-class edge device) computes convolutions
// directly on int8 weights streamed from DRAM. These kernels implement
// that path — int8 x int8 -> int32 accumulation with requantization — so
// the library can execute the protected model the way the hardware would,
// and so tests can verify that RADAR's zero-out recovery behaves
// identically on the integer path.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace radar::qnn {

/// Symmetric int8 tensor: real_value = data[i] * scale.
struct QTensor {
  std::vector<std::int8_t> data;
  std::vector<std::int64_t> shape;
  float scale = 1.0f;

  std::int64_t numel() const {
    std::int64_t n = 1;
    for (const auto d : shape) n *= d;
    return n;
  }
  std::int64_t dim(std::size_t i) const { return shape.at(i); }
};

/// Quantize a float activation tensor with the given scale (values are
/// clamped to [-127, 127]; -128 is reserved to keep symmetry).
QTensor quantize_activation(const nn::Tensor& x, float scale);

/// Choose a scale covering the tensor's range: max|x| / 127.
float choose_activation_scale(const nn::Tensor& x);

/// Dequantize back to float.
nn::Tensor dequantize(const QTensor& x);

}  // namespace radar::qnn
