// Batched int8 inference engine: executes a quantized network the way the
// paper's integer deployment target would.
//
// The engine compiles the ResNet layer graph into a flat op program once
// at construction: every Conv2d absorbs its following BatchNorm2d (and a
// directly following ReLU) into a per-channel requantization epilogue, a
// BasicBlock expands into two convs + optional projection + fused
// add-ReLU, and the head becomes global-avg-pool + linear. Conv / fc
// weights are read live from the QuantizedModel's int8 buffers at every
// forward, so bit flips and recoveries are visible without any
// re-preparation; batch-norm constants, float biases and activation
// scales are frozen (BN and biases are not attackable in the threat
// model, and scales come from a one-time static calibration on the clean
// model).
//
// Two interchangeable conv kernels:
//   kReference — the pre-existing direct 7-loop convolution, per sample;
//   kBatched   — int8 im2col (interior rows memcpy'd) feeding the tiled
//                int8x int8 -> int32 GEMM with fused bias+requant(+ReLU)
//                epilogue, parallelized over batch x output-channel
//                blocks through the ThreadPool.
// Both kinds compute identical int32 accumulators and evaluate the same
// epilogue expression per output, so logits are bit-identical across
// kinds, thread counts and batch partitionings — campaign reports built
// on this engine can therefore be CI-diffed byte-for-byte.
//
// forward_into draws every intermediate buffer from a caller QnnScratch:
// after warm-up (first call at the largest batch size) the steady-state
// forward loop performs zero heap allocations.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/int8_gemm.h"
#include "nn/tensor.h"
#include "qnn/kernels.h"
#include "qnn/qnn_scratch.h"
#include "quant/qmodel.h"

namespace radar {
class ThreadPool;
}

namespace radar::qnn {

enum class EngineKind {
  kReference,  ///< direct convolution (pre-existing kernel semantics)
  kBatched,    ///< im2col + tiled GEMM + fused requant epilogue
};

class InferenceEngine {
 public:
  /// Compiles the op program from `model`'s network graph. `pool` may be
  /// null (serial); a pool of size 1 also runs inline (and is then
  /// allocation-free, like null).
  explicit InferenceEngine(quant::QuantizedModel& model,
                           EngineKind kind = EngineKind::kBatched,
                           ThreadPool* pool = nullptr);

  /// One-time static calibration: runs `batch` through the program,
  /// fixing each conv/linear input scale to max|activation| / 127 (with
  /// int8 effects propagated layer by layer). Must be called on the CLEAN
  /// model — scales are frozen afterwards so results stay independent of
  /// later attacks, batch splits and thread counts.
  void calibrate(const nn::Tensor& batch);
  bool calibrated() const { return calibrated_; }

  EngineKind kind() const { return kind_; }
  void set_kind(EngineKind kind) { kind_ = kind; }
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  std::int64_t num_classes() const { return num_classes_; }

  /// Batched forward of NCHW `x` into `logits`; all working memory comes
  /// from `scratch` (zero allocations after warm-up). `logits` is grown
  /// to at least [N, classes] but never shrunk — after a larger batch,
  /// only its first N rows are valid (read the row count from the input
  /// batch, not from logits.dim(0)). Requires calibrate() first.
  void forward_into(const nn::Tensor& x, QnnScratch& scratch,
                    nn::Tensor& logits);

  /// Convenience wrapper (allocates a scratch + logits).
  nn::Tensor forward(const nn::Tensor& x);

 private:
  struct Op {
    enum class Kind { kConv, kLinear, kAdd, kRelu, kPool, kFlatten };
    Kind kind = Kind::kConv;
    ConvGeom geom;                 ///< conv only
    std::size_t qlayer = 0;        ///< conv/linear: QuantizedModel index
    std::int64_t in_features = 0;  ///< linear only
    std::int64_t out_features = 0;
    std::vector<float> bn_scale;   ///< folded BN multiplier (empty = 1)
    std::vector<float> bn_shift;   ///< folded BN shift (empty = 0)
    std::vector<float> wbias;      ///< float conv/linear bias (empty = 0)
    float x_scale = 0.0f;          ///< calibrated activation scale
    float inv_x_scale = 0.0f;
    std::vector<float> out_scale;  ///< fused epilogue scale (per channel)
    std::vector<float> out_bias;   ///< fused epilogue bias (per channel)
    bool relu = false;             ///< fused trailing ReLU
    int src = 0;                   ///< input buffer id
    int src2 = -1;                 ///< kAdd: second operand buffer id
    int dst = 0;                   ///< output buffer id (-1 = logits)
  };

  void compile(nn::Sequential& net);
  void push_conv(nn::Conv2d& conv, nn::BatchNorm2d* bn, bool relu, int src,
                 int dst);
  std::size_t qlayer_of(const nn::Param& weight) const;
  void run(const nn::Tensor& x, QnnScratch& scratch, nn::Tensor& logits,
           bool calibrating);
  void run_conv(Op& op, std::int64_t n, std::int64_t in_h, std::int64_t in_w,
                QnnScratch& scratch, bool calibrating);
  void run_linear(Op& op, std::int64_t n, std::int64_t in_features,
                  const float* src, float* dst, QnnScratch& scratch,
                  bool calibrating);

  quant::QuantizedModel* model_;
  EngineKind kind_;
  ThreadPool* pool_;
  std::vector<Op> ops_;
  std::int64_t in_channels_ = 0;
  std::int64_t num_classes_ = 0;
  bool calibrated_ = false;
};

}  // namespace radar::qnn
