#include "qnn/kernels.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/thread_pool.h"

namespace radar::qnn {

namespace {

/// Output-channel block width of one GEMM work unit: big enough to
/// amortize dispatch, small enough to load-balance batch x channel tiles.
constexpr std::int64_t kCoBlock = 16;

void check_conv_args(const QTensor& x, std::span<const std::int8_t> w,
                     const ConvGeom& geom, std::span<const float> bias) {
  RADAR_REQUIRE(x.shape.size() == 4, "conv input must be NCHW");
  RADAR_REQUIRE(x.dim(1) == geom.in_channels, "input channel mismatch");
  RADAR_REQUIRE(static_cast<std::int64_t>(w.size()) ==
                    geom.out_channels * geom.in_channels * geom.kernel *
                        geom.kernel,
                "weight buffer size mismatch");
  RADAR_REQUIRE(bias.empty() || static_cast<std::int64_t>(bias.size()) ==
                                    geom.out_channels,
                "bias size mismatch");
}

/// First xo with xo*stride - padding + kw >= 0 (clamped to [0, ow]).
inline std::int64_t first_valid(std::int64_t padding, std::int64_t kw,
                                std::int64_t stride, std::int64_t ow) {
  const std::int64_t num = padding - kw;
  if (num <= 0) return 0;
  return std::min(ow, (num + stride - 1) / stride);
}

/// First xo with xo*stride - padding + kw >= in_w (clamped to [0, ow]).
inline std::int64_t first_invalid(std::int64_t in_w, std::int64_t padding,
                                  std::int64_t kw, std::int64_t stride,
                                  std::int64_t ow) {
  const std::int64_t num = in_w + padding - kw;
  if (num <= 0) return 0;
  return std::min(ow, (num + stride - 1) / stride);
}

}  // namespace

nn::Tensor conv2d_i8(const QTensor& x, std::span<const std::int8_t> w,
                     float w_scale, const ConvGeom& geom,
                     std::span<const float> bias) {
  check_conv_args(x, w, geom, bias);
  const std::int64_t n = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const std::int64_t oh = geom.out_size(in_h), ow = geom.out_size(in_w);
  RADAR_REQUIRE(oh > 0 && ow > 0, "conv output collapses to zero size");

  nn::Tensor y({n, geom.out_channels, oh, ow});
  const float rescale = x.scale * w_scale;
  const std::int64_t in_stride = geom.in_channels * in_h * in_w;
  const std::int64_t kk = geom.kernel * geom.kernel;

  ThreadPool::global().parallel_for_chunks(
      static_cast<std::size_t>(n), [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          const std::int8_t* xs =
              x.data.data() + static_cast<std::int64_t>(s) * in_stride;
          for (std::int64_t co = 0; co < geom.out_channels; ++co) {
            const std::int8_t* wc = w.data() + co * geom.in_channels * kk;
            const float b = bias.empty() ? 0.0f
                                         : bias[static_cast<std::size_t>(co)];
            for (std::int64_t yo = 0; yo < oh; ++yo) {
              for (std::int64_t xo = 0; xo < ow; ++xo) {
                std::int32_t acc = 0;
                for (std::int64_t ci = 0; ci < geom.in_channels; ++ci) {
                  const std::int8_t* wk = wc + ci * kk;
                  const std::int8_t* xc = xs + ci * in_h * in_w;
                  for (std::int64_t kh = 0; kh < geom.kernel; ++kh) {
                    const std::int64_t yi =
                        yo * geom.stride - geom.padding + kh;
                    if (yi < 0 || yi >= in_h) continue;
                    for (std::int64_t kw = 0; kw < geom.kernel; ++kw) {
                      const std::int64_t xi =
                          xo * geom.stride - geom.padding + kw;
                      if (xi < 0 || xi >= in_w) continue;
                      acc += static_cast<std::int32_t>(
                                 xc[yi * in_w + xi]) *
                             wk[kh * geom.kernel + kw];
                    }
                  }
                }
                y[y.idx4(static_cast<std::int64_t>(s), co, yo, xo)] =
                    static_cast<float>(acc) * rescale + b;
              }
            }
          }
        }
      });
  return y;
}

void direct_conv_i8(const std::int8_t* x, const std::int8_t* w,
                    const ConvGeom& geom, std::int64_t in_h,
                    std::int64_t in_w, const nn::RequantEpilogue& epi,
                    float* y) {
  const std::int64_t oh = geom.out_size(in_h), ow = geom.out_size(in_w);
  const std::int64_t kk = geom.kernel * geom.kernel;
  for (std::int64_t co = 0; co < geom.out_channels; ++co) {
    const std::int8_t* wc = w + co * geom.in_channels * kk;
    const float s = epi.scale[co];
    const float b = epi.bias != nullptr ? epi.bias[co] : 0.0f;
    float* yc = y + co * oh * ow;
    for (std::int64_t yo = 0; yo < oh; ++yo) {
      for (std::int64_t xo = 0; xo < ow; ++xo) {
        std::int32_t acc = 0;
        for (std::int64_t ci = 0; ci < geom.in_channels; ++ci) {
          const std::int8_t* wk = wc + ci * kk;
          const std::int8_t* xc = x + ci * in_h * in_w;
          for (std::int64_t kh = 0; kh < geom.kernel; ++kh) {
            const std::int64_t yi = yo * geom.stride - geom.padding + kh;
            if (yi < 0 || yi >= in_h) continue;
            for (std::int64_t kw = 0; kw < geom.kernel; ++kw) {
              const std::int64_t xi = xo * geom.stride - geom.padding + kw;
              if (xi < 0 || xi >= in_w) continue;
              acc += static_cast<std::int32_t>(xc[yi * in_w + xi]) *
                     wk[kh * geom.kernel + kw];
            }
          }
        }
        yc[yo * ow + xo] = nn::requant_one(acc, s, b, epi.relu);
      }
    }
  }
}

void im2col_i8(const std::int8_t* x, const ConvGeom& geom, std::int64_t in_h,
               std::int64_t in_w, std::int8_t* col) {
  const std::int64_t oh = geom.out_size(in_h), ow = geom.out_size(in_w);
  const std::int64_t k = geom.kernel, stride = geom.stride,
                     padding = geom.padding;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < geom.in_channels; ++c) {
    const std::int8_t* xc = x + c * in_h * in_w;
    for (std::int64_t kh = 0; kh < k; ++kh) {
      for (std::int64_t kw = 0; kw < k; ++kw, ++row) {
        std::int8_t* dst = col + row * oh * ow;
        // Horizontal validity bounds hoisted out of the inner loop: the
        // interior [lo, hi) needs no per-element bounds check.
        const std::int64_t lo = first_valid(padding, kw, stride, ow);
        const std::int64_t hi =
            std::max(lo, first_invalid(in_w, padding, kw, stride, ow));
        for (std::int64_t yo = 0; yo < oh; ++yo, dst += ow) {
          const std::int64_t yi = yo * stride - padding + kh;
          if (yi < 0 || yi >= in_h) {
            std::memset(dst, 0, static_cast<std::size_t>(ow));
            continue;
          }
          const std::int8_t* src = xc + yi * in_w;
          if (lo > 0)
            std::memset(dst, 0, static_cast<std::size_t>(lo));
          if (stride == 1) {
            // Interior fast path: one contiguous row copy.
            std::memcpy(dst + lo, src + (lo - padding + kw),
                        static_cast<std::size_t>(hi - lo));
          } else {
            for (std::int64_t xo = lo; xo < hi; ++xo)
              dst[xo] = src[xo * stride - padding + kw];
          }
          if (hi < ow)
            std::memset(dst + hi, 0, static_cast<std::size_t>(ow - hi));
        }
      }
    }
  }
}

void conv2d_i8_tiled_into(const QTensor& x, std::span<const std::int8_t> w,
                          float w_scale, const ConvGeom& geom,
                          std::span<const float> bias, QnnScratch& scratch,
                          nn::Tensor& y) {
  check_conv_args(x, w, geom, bias);
  const std::int64_t n = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const std::int64_t oh = geom.out_size(in_h), ow = geom.out_size(in_w);
  RADAR_REQUIRE(oh > 0 && ow > 0, "conv output collapses to zero size");
  const std::int64_t co = geom.out_channels;
  if (y.rank() != 4 || y.dim(0) != n || y.dim(1) != co || y.dim(2) != oh ||
      y.dim(3) != ow)
    y = nn::Tensor({n, co, oh, ow});

  // Broadcast the scalar rescale / optional bias into per-channel epilogue
  // arrays (scratch-backed so the steady state stays allocation-free).
  const float rescale = x.scale * w_scale;
  float* scale = scratch.ensure(scratch.scale, static_cast<std::size_t>(co));
  std::fill(scale, scale + co, rescale);
  nn::RequantEpilogue epi{scale, nullptr, false};
  if (!bias.empty()) {
    float* eb = scratch.ensure(scratch.bias, static_cast<std::size_t>(co));
    std::copy(bias.begin(), bias.end(), eb);
    epi.bias = eb;
  }

  conv2d_i8_tiled_exec(x.data.data(), w, geom, n, in_h, in_w, epi, scratch,
                       y.data(), &ThreadPool::global());
}

void conv2d_i8_tiled_exec(const std::int8_t* qx,
                          std::span<const std::int8_t> w,
                          const ConvGeom& geom, std::int64_t n,
                          std::int64_t in_h, std::int64_t in_w,
                          const nn::RequantEpilogue& epi, QnnScratch& scratch,
                          float* y, ThreadPool* pool) {
  const std::int64_t co = geom.out_channels;
  const std::int64_t ckk = geom.in_channels * geom.kernel * geom.kernel;
  const std::int64_t osp = geom.out_size(in_h) * geom.out_size(in_w);
  const std::int64_t in_stride = geom.in_channels * in_h * in_w;
  std::int8_t* col =
      scratch.ensure(scratch.col, static_cast<std::size_t>(n * ckk * osp));
  ThreadPool::chunks_or_inline(pool, static_cast<std::size_t>(n),
             [&](std::size_t begin, std::size_t end) {
               for (std::size_t s = begin; s < end; ++s)
                 im2col_i8(qx + static_cast<std::int64_t>(s) * in_stride,
                           geom, in_h, in_w,
                           col + static_cast<std::int64_t>(s) * ckk * osp);
             });
  const std::int64_t blocks = (co + kCoBlock - 1) / kCoBlock;
  ThreadPool::chunks_or_inline(pool, static_cast<std::size_t>(n * blocks),
             [&](std::size_t begin, std::size_t end) {
               for (std::size_t u = begin; u < end; ++u) {
                 const auto s = static_cast<std::int64_t>(u) / blocks;
                 const std::int64_t m0 =
                     (static_cast<std::int64_t>(u) % blocks) * kCoBlock;
                 nn::gemm_i8_colblock(w.data(), col + s * ckk * osp,
                                      y + s * co * osp, m0,
                                      std::min(co, m0 + kCoBlock), ckk, osp,
                                      ckk, osp, osp, epi);
               }
             });
}

nn::Tensor conv2d_i8_tiled(const QTensor& x, std::span<const std::int8_t> w,
                           float w_scale, const ConvGeom& geom,
                           std::span<const float> bias) {
  nn::Tensor y;
  QnnScratch scratch;
  conv2d_i8_tiled_into(x, w, w_scale, geom, bias, scratch, y);
  return y;
}

nn::Tensor linear_i8(const QTensor& x, std::span<const std::int8_t> w,
                     float w_scale, std::int64_t out_features,
                     std::span<const float> bias) {
  RADAR_REQUIRE(x.shape.size() == 2, "linear input must be [N, F]");
  const std::int64_t n = x.dim(0), f = x.dim(1);
  RADAR_REQUIRE(static_cast<std::int64_t>(w.size()) == out_features * f,
                "weight buffer size mismatch");
  RADAR_REQUIRE(bias.empty() ||
                    static_cast<std::int64_t>(bias.size()) == out_features,
                "bias size mismatch");
  nn::Tensor y({n, out_features});
  const std::vector<float> scale(static_cast<std::size_t>(out_features),
                                 x.scale * w_scale);
  const nn::RequantEpilogue epi{scale.data(),
                                bias.empty() ? nullptr : bias.data(), false};
  auto rows = [&](std::size_t begin, std::size_t end) {
    nn::gemm_i8_dot(x.data.data(), w.data(), y.data(),
                    static_cast<std::int64_t>(begin),
                    static_cast<std::int64_t>(end), out_features, f, f, f,
                    out_features, epi);
  };
  // Below this many multiply-adds the pool dispatch dominates.
  if (n * out_features * f < (std::int64_t{1} << 15) || n == 1) {
    rows(0, static_cast<std::size_t>(n));
  } else {
    ThreadPool::global().parallel_for_chunks(static_cast<std::size_t>(n),
                                             rows);
  }
  return y;
}

}  // namespace radar::qnn
