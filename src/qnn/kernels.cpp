#include "qnn/kernels.h"

#include "common/error.h"
#include "common/thread_pool.h"

namespace radar::qnn {

nn::Tensor conv2d_i8(const QTensor& x, std::span<const std::int8_t> w,
                     float w_scale, const ConvGeom& geom,
                     std::span<const float> bias) {
  RADAR_REQUIRE(x.shape.size() == 4, "conv input must be NCHW");
  RADAR_REQUIRE(x.dim(1) == geom.in_channels, "input channel mismatch");
  RADAR_REQUIRE(static_cast<std::int64_t>(w.size()) ==
                    geom.out_channels * geom.in_channels * geom.kernel *
                        geom.kernel,
                "weight buffer size mismatch");
  RADAR_REQUIRE(bias.empty() || static_cast<std::int64_t>(bias.size()) ==
                                    geom.out_channels,
                "bias size mismatch");
  const std::int64_t n = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const std::int64_t oh = geom.out_size(in_h), ow = geom.out_size(in_w);
  RADAR_REQUIRE(oh > 0 && ow > 0, "conv output collapses to zero size");

  nn::Tensor y({n, geom.out_channels, oh, ow});
  const float rescale = x.scale * w_scale;
  const std::int64_t in_stride = geom.in_channels * in_h * in_w;
  const std::int64_t kk = geom.kernel * geom.kernel;

  ThreadPool::global().parallel_for_chunks(
      static_cast<std::size_t>(n), [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          const std::int8_t* xs =
              x.data.data() + static_cast<std::int64_t>(s) * in_stride;
          for (std::int64_t co = 0; co < geom.out_channels; ++co) {
            const std::int8_t* wc = w.data() + co * geom.in_channels * kk;
            const float b = bias.empty() ? 0.0f
                                         : bias[static_cast<std::size_t>(co)];
            for (std::int64_t yo = 0; yo < oh; ++yo) {
              for (std::int64_t xo = 0; xo < ow; ++xo) {
                std::int32_t acc = 0;
                for (std::int64_t ci = 0; ci < geom.in_channels; ++ci) {
                  const std::int8_t* wk = wc + ci * kk;
                  const std::int8_t* xc = xs + ci * in_h * in_w;
                  for (std::int64_t kh = 0; kh < geom.kernel; ++kh) {
                    const std::int64_t yi =
                        yo * geom.stride - geom.padding + kh;
                    if (yi < 0 || yi >= in_h) continue;
                    for (std::int64_t kw = 0; kw < geom.kernel; ++kw) {
                      const std::int64_t xi =
                          xo * geom.stride - geom.padding + kw;
                      if (xi < 0 || xi >= in_w) continue;
                      acc += static_cast<std::int32_t>(
                                 xc[yi * in_w + xi]) *
                             wk[kh * geom.kernel + kw];
                    }
                  }
                }
                y[y.idx4(static_cast<std::int64_t>(s), co, yo, xo)] =
                    static_cast<float>(acc) * rescale + b;
              }
            }
          }
        }
      });
  return y;
}

nn::Tensor linear_i8(const QTensor& x, std::span<const std::int8_t> w,
                     float w_scale, std::int64_t out_features,
                     std::span<const float> bias) {
  RADAR_REQUIRE(x.shape.size() == 2, "linear input must be [N, F]");
  const std::int64_t n = x.dim(0), f = x.dim(1);
  RADAR_REQUIRE(static_cast<std::int64_t>(w.size()) == out_features * f,
                "weight buffer size mismatch");
  RADAR_REQUIRE(bias.empty() ||
                    static_cast<std::int64_t>(bias.size()) == out_features,
                "bias size mismatch");
  nn::Tensor y({n, out_features});
  const float rescale = x.scale * w_scale;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int8_t* xr = x.data.data() + i * f;
    for (std::int64_t o = 0; o < out_features; ++o) {
      const std::int8_t* wr = w.data() + o * f;
      std::int32_t acc = 0;
      for (std::int64_t k = 0; k < f; ++k)
        acc += static_cast<std::int32_t>(xr[k]) * wr[k];
      y[y.idx2(i, o)] =
          static_cast<float>(acc) * rescale +
          (bias.empty() ? 0.0f : bias[static_cast<std::size_t>(o)]);
    }
  }
  return y;
}

}  // namespace radar::qnn
