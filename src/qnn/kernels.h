// Integer inference kernels: int8 x int8 -> int32 convolution and linear.
//
// Semantics: y_real = (sum_k x_q[k] * w_q[k]) * x_scale * w_scale + bias.
// Outputs are produced as float (the accumulator dequantized), which the
// caller may requantize for the next layer — mirroring per-layer
// requantization on integer NPUs/MCUs.
#pragma once

#include <cstdint>
#include <span>

#include "nn/tensor.h"
#include "qnn/qtensor.h"

namespace radar::qnn {

/// Conv geometry (square kernel, symmetric padding), NCHW activations and
/// [Cout, Cin, K, K] weights.
struct ConvGeom {
  std::int64_t in_channels = 0, out_channels = 0;
  std::int64_t kernel = 1, stride = 1, padding = 0;

  std::int64_t out_size(std::int64_t in) const {
    return (in + 2 * padding - kernel) / stride + 1;
  }
};

/// Integer convolution. `bias` (size Cout, may be empty) is added in real
/// units. Returns float feature maps.
nn::Tensor conv2d_i8(const QTensor& x, std::span<const std::int8_t> w,
                     float w_scale, const ConvGeom& geom,
                     std::span<const float> bias);

/// Integer fully-connected layer: x [N, F] int8, w [out, F] int8.
nn::Tensor linear_i8(const QTensor& x, std::span<const std::int8_t> w,
                     float w_scale, std::int64_t out_features,
                     std::span<const float> bias);

}  // namespace radar::qnn
