// Integer inference kernels: int8 x int8 -> int32 convolution and linear.
//
// Semantics: y_real = (sum_k x_q[k] * w_q[k]) * x_scale * w_scale + bias.
// Outputs are produced as float (the accumulator dequantized), which the
// caller may requantize for the next layer — mirroring per-layer
// requantization on integer NPUs/MCUs.
#pragma once

#include <cstdint>
#include <span>

#include "nn/int8_gemm.h"
#include "nn/tensor.h"
#include "qnn/qnn_scratch.h"
#include "qnn/qtensor.h"

namespace radar {
class ThreadPool;
}

namespace radar::qnn {

/// Conv geometry (square kernel, symmetric padding), NCHW activations and
/// [Cout, Cin, K, K] weights.
struct ConvGeom {
  std::int64_t in_channels = 0, out_channels = 0;
  std::int64_t kernel = 1, stride = 1, padding = 0;

  std::int64_t out_size(std::int64_t in) const {
    return (in + 2 * padding - kernel) / stride + 1;
  }
};

/// Integer convolution. `bias` (size Cout, may be empty) is added in real
/// units. Returns float feature maps.
nn::Tensor conv2d_i8(const QTensor& x, std::span<const std::int8_t> w,
                     float w_scale, const ConvGeom& geom,
                     std::span<const float> bias);

/// Integer fully-connected layer: x [N, F] int8, w [out, F] int8.
/// Runs through the shared int8 GEMM tile kernel, parallelized over the
/// batch dimension on the global ThreadPool for large shapes; results are
/// bit-identical for any thread count (exact int32 accumulation).
nn::Tensor linear_i8(const QTensor& x, std::span<const std::int8_t> w,
                     float w_scale, std::int64_t out_features,
                     std::span<const float> bias);

/// int8 im2col of one sample [Cin, in_h, in_w] into a row-major
/// [Cin*K*K, OH*OW] patch matrix. The interior fast path memcpy-copies
/// contiguous input rows (stride 1) or runs a bounds-check-free strided
/// gather; padding boundaries are zero-filled outside the inner loop.
void im2col_i8(const std::int8_t* x, const ConvGeom& geom, std::int64_t in_h,
               std::int64_t in_w, std::int8_t* col);

/// Reference direct convolution of one sample with a per-channel requant
/// epilogue — the pre-existing 7-deep kernel, kept as the bit-exactness
/// baseline for the tiled path.
void direct_conv_i8(const std::int8_t* x, const std::int8_t* w,
                    const ConvGeom& geom, std::int64_t in_h,
                    std::int64_t in_w, const nn::RequantEpilogue& epi,
                    float* y);

/// Batched convolution via int8 im2col + tiled int8 GEMM with fused
/// requant epilogue. Bit-identical to conv2d_i8 (same int32 sums, same
/// epilogue expression). The `_into` variant draws all working memory from
/// `scratch` and writes into a caller tensor (allocation-free after
/// warm-up); both parallelize over batch x output-channel blocks on the
/// global ThreadPool.
nn::Tensor conv2d_i8_tiled(const QTensor& x, std::span<const std::int8_t> w,
                           float w_scale, const ConvGeom& geom,
                           std::span<const float> bias);
void conv2d_i8_tiled_into(const QTensor& x, std::span<const std::int8_t> w,
                          float w_scale, const ConvGeom& geom,
                          std::span<const float> bias, QnnScratch& scratch,
                          nn::Tensor& y);

/// The one batched-conv executor both of the above and the inference
/// engine run (so tests and benches measure the exact production kernel):
/// pre-quantized activations `qx` ([N, Cin, in_h, in_w] int8) go through
/// per-sample im2col, then batch x output-channel-block GEMM units with
/// the fused epilogue, fanned out over `pool` (null or size-1 = inline,
/// allocation-free). Writes NCHW float output into `y`.
void conv2d_i8_tiled_exec(const std::int8_t* qx,
                          std::span<const std::int8_t> w,
                          const ConvGeom& geom, std::int64_t n,
                          std::int64_t in_h, std::int64_t in_w,
                          const nn::RequantEpilogue& epi, QnnScratch& scratch,
                          float* y, ThreadPool* pool);

}  // namespace radar::qnn
