// QnnScratch: caller-provided working memory for the quantized inference
// hot path (the qnn counterpart of core/scan_scratch.h).
//
// Every allocation-free inference entry point (InferenceEngine::
// forward_into, conv2d_i8_tiled_into) borrows its buffers from one of
// these instead of heap-allocating per call. Buffers grow to the
// high-water mark of the network / batch they serve and are then reused,
// so a steady-state forward loop performs zero heap allocations (the
// `grows` counter is the test hook for that property). A scratch object
// is not thread-safe; use one per worker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace radar::qnn {

struct QnnScratch {
  std::vector<float> act[3];       ///< activation ping-pong + skip buffer
  std::vector<std::int8_t> qact;   ///< quantized input of the current op
  std::vector<std::int8_t> col;    ///< im2col patch matrices, all samples
  std::vector<float> scale;        ///< broadcast per-channel epilogue scale
  std::vector<float> bias;         ///< broadcast per-channel epilogue bias
  std::size_t grows = 0;           ///< buffer-growth events (warm-up ends
                                   ///< when this stops increasing)

  /// Grow-only resize: returns a pointer to at least `n` elements.
  template <typename T>
  T* ensure(std::vector<T>& v, std::size_t n) {
    if (v.size() < n) {
      v.resize(n);
      ++grows;
    }
    return v.data();
  }
};

}  // namespace radar::qnn
