#include "qnn/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.h"
#include "common/thread_pool.h"
#include "nn/resnet.h"

namespace radar::qnn {

namespace {

/// The one activation-quantization expression of the engine (shared by
/// calibration and steady-state forwards so they cannot diverge):
/// round-half-away-from-zero via clamp + offset + truncate — branchless
/// select form, so the loop autovectorizes instead of calling lround per
/// element.
void quantize_block(const float* x, std::size_t n, float inv_scale,
                    std::int8_t* q) {
  for (std::size_t i = 0; i < n; ++i) {
    float v = x[i] * inv_scale;
    v = v > 127.0f ? 127.0f : v;
    v = v < -127.0f ? -127.0f : v;
    v += v >= 0.0f ? 0.5f : -0.5f;
    q[i] = static_cast<std::int8_t>(static_cast<std::int32_t>(v));
  }
}

}  // namespace

InferenceEngine::InferenceEngine(quant::QuantizedModel& model,
                                 EngineKind kind, ThreadPool* pool)
    : model_(&model), kind_(kind), pool_(pool) {
  compile(model.network().net());
  RADAR_REQUIRE(!ops_.empty(), "qnn engine: empty network");
  RADAR_REQUIRE(ops_.front().kind == Op::Kind::kConv,
                "qnn engine: network must start with a convolution");
  in_channels_ = ops_.front().geom.in_channels;
}

std::size_t InferenceEngine::qlayer_of(const nn::Param& weight) const {
  for (std::size_t i = 0; i < model_->num_layers(); ++i)
    if (model_->layer(i).param == &weight) return i;
  throw InvalidArgument("qnn engine: weight tensor is not quantized");
}

void InferenceEngine::push_conv(nn::Conv2d& conv, nn::BatchNorm2d* bn,
                                bool relu, int src, int dst) {
  Op op;
  op.kind = Op::Kind::kConv;
  op.geom = ConvGeom{conv.in_channels(), conv.out_channels(), conv.kernel(),
                     conv.stride(), conv.padding()};
  RADAR_REQUIRE(op.geom.in_channels * op.geom.kernel * op.geom.kernel <=
                    nn::kInt8GemmMaxK,
                "conv reduction depth overflows int32 accumulation");
  op.qlayer = qlayer_of(conv.weight());
  const auto co = static_cast<std::size_t>(op.geom.out_channels);
  if (conv.has_bias()) {
    op.wbias.assign(conv.bias().value.data(),
                    conv.bias().value.data() + co);
  }
  if (bn != nullptr) {
    RADAR_REQUIRE(bn->channels() == op.geom.out_channels,
                  "batch-norm width mismatch");
    op.bn_scale.resize(co);
    op.bn_shift.resize(co);
    for (std::size_t c = 0; c < co; ++c) {
      const auto ci = static_cast<std::int64_t>(c);
      const float a = bn->gamma().value[ci] /
                      std::sqrt(bn->running_var()[ci] + bn->eps());
      op.bn_scale[c] = a;
      op.bn_shift[c] = bn->beta().value[ci] - bn->running_mean()[ci] * a;
    }
  }
  op.relu = relu;
  op.src = src;
  op.dst = dst;
  ops_.push_back(std::move(op));
}

void InferenceEngine::compile(nn::Sequential& net) {
  int cur = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    nn::Layer& child = net.child(i);
    const std::string kind = child.kind();
    if (kind == "Conv2d") {
      auto* conv = dynamic_cast<nn::Conv2d*>(&child);
      RADAR_REQUIRE(conv != nullptr, "Conv2d kind mismatch");
      nn::BatchNorm2d* bn = nullptr;
      if (i + 1 < net.size() && net.child(i + 1).kind() == "BatchNorm2d") {
        bn = dynamic_cast<nn::BatchNorm2d*>(&net.child(i + 1));
        ++i;
      }
      bool relu = false;
      if (i + 1 < net.size() && net.child(i + 1).kind() == "ReLU") {
        relu = true;
        ++i;
      }
      const int dst = (cur + 1) % 3;
      push_conv(*conv, bn, relu, cur, dst);
      cur = dst;
    } else if (kind == "BasicBlock") {
      auto* bb = dynamic_cast<nn::BasicBlock*>(&child);
      RADAR_REQUIRE(bb != nullptr, "BasicBlock kind mismatch");
      const int a = cur, b = (cur + 1) % 3, c = (cur + 2) % 3;
      push_conv(bb->conv1(), &bb->bn1(), /*relu=*/true, a, b);
      push_conv(bb->conv2(), &bb->bn2(), /*relu=*/false, b, c);
      Op add;
      add.kind = Op::Kind::kAdd;
      add.relu = true;  // post-add ReLU of the residual block
      add.src = c;
      add.dst = c;
      if (bb->has_projection()) {
        push_conv(*bb->down_conv(), bb->down_bn(), /*relu=*/false, a, b);
        add.src2 = b;
      } else {
        add.src2 = a;
      }
      ops_.push_back(std::move(add));
      cur = c;
    } else if (kind == "ReLU") {
      Op op;
      op.kind = Op::Kind::kRelu;
      op.src = op.dst = cur;
      ops_.push_back(std::move(op));
    } else if (kind == "GlobalAvgPool") {
      Op op;
      op.kind = Op::Kind::kPool;
      op.src = cur;
      op.dst = (cur + 1) % 3;
      cur = op.dst;
      ops_.push_back(std::move(op));
    } else if (kind == "Flatten") {
      Op op;
      op.kind = Op::Kind::kFlatten;
      op.src = op.dst = cur;
      ops_.push_back(std::move(op));
    } else if (kind == "Linear") {
      auto* lin = dynamic_cast<nn::Linear*>(&child);
      RADAR_REQUIRE(lin != nullptr, "Linear kind mismatch");
      RADAR_REQUIRE(lin->in_features() <= nn::kInt8GemmMaxK,
                    "linear reduction depth overflows int32 accumulation");
      Op op;
      op.kind = Op::Kind::kLinear;
      op.qlayer = qlayer_of(lin->weight());
      op.in_features = lin->in_features();
      op.out_features = lin->out_features();
      if (lin->has_bias()) {
        op.wbias.assign(
            lin->bias().value.data(),
            lin->bias().value.data() + lin->out_features());
      }
      op.src = cur;
      op.dst = (i + 1 == net.size()) ? -1 : (cur + 1) % 3;
      if (op.dst >= 0) cur = op.dst;
      num_classes_ = lin->out_features();
      ops_.push_back(std::move(op));
    } else {
      throw InvalidArgument("qnn engine: unsupported layer kind " + kind);
    }
  }
}

void InferenceEngine::run_conv(Op& op, std::int64_t n, std::int64_t in_h,
                               std::int64_t in_w, QnnScratch& scratch,
                               bool calibrating) {
  const std::int64_t ci = op.geom.in_channels, co = op.geom.out_channels;
  const std::int64_t csz = ci * in_h * in_w;
  const std::int64_t oh = op.geom.out_size(in_h),
                     ow = op.geom.out_size(in_w);
  RADAR_REQUIRE(oh > 0 && ow > 0, "conv output collapses to zero size");
  const std::int64_t osp = oh * ow;
  const quant::QuantLayer& ql = model_->layer(op.qlayer);
  const float* src = scratch.act[op.src].data();
  float* dst =
      scratch.ensure(scratch.act[op.dst],
                     static_cast<std::size_t>(n * co * osp));

  if (calibrating) {
    float amax = 0.0f;
    for (std::int64_t i = 0; i < n * csz; ++i)
      amax = std::max(amax, std::fabs(src[i]));
    op.x_scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    op.inv_x_scale = 1.0f / op.x_scale;
    const auto nco = static_cast<std::size_t>(co);
    op.out_scale.resize(nco);
    op.out_bias.resize(nco);
    for (std::size_t c = 0; c < nco; ++c) {
      const float a = op.bn_scale.empty() ? 1.0f : op.bn_scale[c];
      const float shift = op.bn_shift.empty() ? 0.0f : op.bn_shift[c];
      const float cb = op.wbias.empty() ? 0.0f : op.wbias[c];
      op.out_scale[c] = op.x_scale * ql.scale * a;
      op.out_bias[c] = cb * a + shift;
    }
  }

  std::int8_t* qact =
      scratch.ensure(scratch.qact, static_cast<std::size_t>(n * csz));
  ThreadPool::chunks_or_inline(pool_, static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end) {
        quantize_block(src + begin * static_cast<std::size_t>(csz),
                       (end - begin) * static_cast<std::size_t>(csz),
                       op.inv_x_scale,
                       qact + begin * static_cast<std::size_t>(csz));
      });

  const nn::RequantEpilogue epi{op.out_scale.data(), op.out_bias.data(),
                                op.relu};
  if (kind_ == EngineKind::kReference) {
    ThreadPool::chunks_or_inline(pool_, static_cast<std::size_t>(n),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s)
            direct_conv_i8(qact + static_cast<std::int64_t>(s) * csz,
                           ql.q.data(), op.geom, in_h, in_w, epi,
                           dst + static_cast<std::int64_t>(s) * co * osp);
        });
    return;
  }
  conv2d_i8_tiled_exec(
      qact, std::span<const std::int8_t>(ql.q.data(), ql.q.size()), op.geom,
      n, in_h, in_w, epi, scratch, dst, pool_);
}

void InferenceEngine::run_linear(Op& op, std::int64_t n,
                                 std::int64_t in_features, const float* src,
                                 float* dst, QnnScratch& scratch,
                                 bool calibrating) {
  RADAR_REQUIRE(in_features == op.in_features,
                "linear input feature mismatch");
  const quant::QuantLayer& ql = model_->layer(op.qlayer);
  const std::int64_t f = op.in_features, m = op.out_features;
  if (calibrating) {
    float amax = 0.0f;
    for (std::int64_t i = 0; i < n * f; ++i)
      amax = std::max(amax, std::fabs(src[i]));
    op.x_scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    op.inv_x_scale = 1.0f / op.x_scale;
    op.out_scale.assign(static_cast<std::size_t>(m),
                        op.x_scale * ql.scale);
    op.out_bias.assign(static_cast<std::size_t>(m), 0.0f);
    if (!op.wbias.empty())
      std::copy(op.wbias.begin(), op.wbias.end(), op.out_bias.begin());
  }
  std::int8_t* qact =
      scratch.ensure(scratch.qact, static_cast<std::size_t>(n * f));
  ThreadPool::chunks_or_inline(pool_, static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end) {
        quantize_block(src + begin * static_cast<std::size_t>(f),
                       (end - begin) * static_cast<std::size_t>(f),
                       op.inv_x_scale,
                       qact + begin * static_cast<std::size_t>(f));
      });
  const nn::RequantEpilogue epi{op.out_scale.data(), op.out_bias.data(),
                                op.relu};
  auto rows = [&](std::size_t begin, std::size_t end) {
    nn::gemm_i8_dot(qact, ql.q.data(), dst,
                    static_cast<std::int64_t>(begin),
                    static_cast<std::int64_t>(end), m, f, f, f, m, epi);
  };
  if (kind_ == EngineKind::kBatched)
    ThreadPool::chunks_or_inline(pool_, static_cast<std::size_t>(n), rows);
  else
    rows(0, static_cast<std::size_t>(n));
}

void InferenceEngine::run(const nn::Tensor& x, QnnScratch& scratch,
                          nn::Tensor& logits, bool calibrating) {
  RADAR_REQUIRE(x.rank() == 4, "qnn engine input must be NCHW");
  RADAR_REQUIRE(x.dim(1) == in_channels_, "input channel mismatch");
  const std::int64_t n = x.dim(0);
  RADAR_REQUIRE(n > 0, "empty batch");

  std::int64_t C[3] = {0, 0, 0}, H[3] = {0, 0, 0}, W[3] = {0, 0, 0};
  const int in_buf = ops_.front().src;
  float* b0 = scratch.ensure(scratch.act[in_buf],
                             static_cast<std::size_t>(x.numel()));
  std::memcpy(b0, x.data(), sizeof(float) *
                                static_cast<std::size_t>(x.numel()));
  C[in_buf] = x.dim(1);
  H[in_buf] = x.dim(2);
  W[in_buf] = x.dim(3);

  int final_buf = in_buf;
  for (Op& op : ops_) {
    switch (op.kind) {
      case Op::Kind::kConv: {
        RADAR_REQUIRE(C[op.src] == op.geom.in_channels,
                      "conv channel mismatch in op program");
        run_conv(op, n, H[op.src], W[op.src], scratch, calibrating);
        C[op.dst] = op.geom.out_channels;
        H[op.dst] = op.geom.out_size(H[op.src]);
        W[op.dst] = op.geom.out_size(W[op.src]);
        final_buf = op.dst;
        break;
      }
      case Op::Kind::kAdd: {
        RADAR_REQUIRE(C[op.dst] == C[op.src2] && H[op.dst] == H[op.src2] &&
                          W[op.dst] == W[op.src2],
                      "residual shape mismatch");
        float* d = scratch.act[op.dst].data();
        const float* s2 = scratch.act[op.src2].data();
        const std::int64_t m = n * C[op.dst] * H[op.dst] * W[op.dst];
        if (op.relu) {
          for (std::int64_t i = 0; i < m; ++i) {
            const float v = d[i] + s2[i];
            d[i] = v < 0.0f ? 0.0f : v;
          }
        } else {
          for (std::int64_t i = 0; i < m; ++i) d[i] += s2[i];
        }
        final_buf = op.dst;
        break;
      }
      case Op::Kind::kRelu: {
        float* d = scratch.act[op.src].data();
        const std::int64_t m = n * C[op.src] * H[op.src] * W[op.src];
        for (std::int64_t i = 0; i < m; ++i)
          if (d[i] < 0.0f) d[i] = 0.0f;
        final_buf = op.src;
        break;
      }
      case Op::Kind::kPool: {
        const std::int64_t c = C[op.src], sp = H[op.src] * W[op.src];
        const float inv = 1.0f / static_cast<float>(sp);
        const float* s = scratch.act[op.src].data();
        float* d = scratch.ensure(scratch.act[op.dst],
                                  static_cast<std::size_t>(n * c));
        for (std::int64_t i = 0; i < n * c; ++i) {
          const float* row = s + i * sp;
          float acc = 0.0f;
          for (std::int64_t p = 0; p < sp; ++p) acc += row[p];
          d[i] = acc * inv;
        }
        C[op.dst] = c;
        H[op.dst] = W[op.dst] = 1;
        final_buf = op.dst;
        break;
      }
      case Op::Kind::kFlatten: {
        C[op.src] = C[op.src] * H[op.src] * W[op.src];
        H[op.src] = W[op.src] = 1;
        final_buf = op.src;
        break;
      }
      case Op::Kind::kLinear: {
        const std::int64_t f = C[op.src] * H[op.src] * W[op.src];
        float* out;
        if (op.dst < 0) {
          // Grow-only: a logits buffer from a larger batch is reused for a
          // smaller one (only the first n rows are written), so remainder
          // batches stay allocation-free.
          if (logits.rank() != 2 || logits.dim(0) < n ||
              logits.dim(1) != op.out_features)
            logits = nn::Tensor({n, op.out_features});
          out = logits.data();
        } else {
          out = scratch.ensure(
              scratch.act[op.dst],
              static_cast<std::size_t>(n * op.out_features));
          C[op.dst] = op.out_features;
          H[op.dst] = W[op.dst] = 1;
          final_buf = op.dst;
        }
        run_linear(op, n, f, scratch.act[op.src].data(), out, scratch,
                   calibrating);
        if (op.dst < 0) return;
        break;
      }
    }
  }
  // Program did not end in a logits-producing linear: hand back the final
  // activation as [N, features].
  const std::int64_t feat = C[final_buf] * H[final_buf] * W[final_buf];
  if (logits.rank() != 2 || logits.dim(0) < n || logits.dim(1) != feat)
    logits = nn::Tensor({n, feat});
  std::memcpy(logits.data(), scratch.act[final_buf].data(),
              sizeof(float) * static_cast<std::size_t>(n * feat));
}

void InferenceEngine::calibrate(const nn::Tensor& batch) {
  RADAR_REQUIRE(!calibrated_, "qnn engine already calibrated");
  QnnScratch scratch;
  nn::Tensor logits;
  run(batch, scratch, logits, /*calibrating=*/true);
  calibrated_ = true;
}

void InferenceEngine::forward_into(const nn::Tensor& x, QnnScratch& scratch,
                                   nn::Tensor& logits) {
  RADAR_REQUIRE(calibrated_, "qnn engine: calibrate() before forward");
  run(x, scratch, logits, /*calibrating=*/false);
}

nn::Tensor InferenceEngine::forward(const nn::Tensor& x) {
  QnnScratch scratch;
  nn::Tensor logits;
  forward_into(x, scratch, logits);
  return logits;
}

}  // namespace radar::qnn
