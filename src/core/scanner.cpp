#include "core/scanner.h"

namespace radar::core {

LayerScanner::LayerScanner(const GroupLayout& layout, const MaskStream& mask,
                           int sig_bits)
    : sig_bits_(sig_bits), num_groups_(layout.num_groups()) {
  RADAR_REQUIRE(sig_bits == 2 || sig_bits == 3,
                "signature width must be 2 or 3");
  const std::int64_t w = layout.num_weights();
  group_of_.resize(static_cast<std::size_t>(w));
  sign_.resize(static_cast<std::size_t>(w));
  const std::int64_t g = layout.group_size();
  for (std::int64_t grp = 0; grp < num_groups_; ++grp) {
    for (std::int64_t slot = 0; slot < g; ++slot) {
      const std::int64_t i = layout.member(grp, slot);
      if (i < 0) continue;
      group_of_[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(grp);
      sign_[static_cast<std::size_t>(i)] =
          mask.bit(grp * g + slot) ? -1 : 1;
    }
  }
}

std::vector<std::int64_t> LayerScanner::masked_sums(
    std::span<const std::int8_t> weights) const {
  RADAR_REQUIRE(weights.size() == group_of_.size(),
                "weight buffer size does not match scanner");
  std::vector<std::int64_t> sums(static_cast<std::size_t>(num_groups_), 0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    sums[static_cast<std::size_t>(group_of_[i])] +=
        static_cast<std::int64_t>(weights[i]) * sign_[i];
  }
  return sums;
}

std::vector<Signature> LayerScanner::scan(
    std::span<const std::int8_t> weights) const {
  const auto sums = masked_sums(weights);
  std::vector<Signature> out(sums.size());
  for (std::size_t g = 0; g < sums.size(); ++g)
    out[g] = binarize(sums[g], sig_bits_);
  return out;
}

}  // namespace radar::core
