#include "core/scanner.h"

#include <algorithm>

#include "common/simd_ops.h"

namespace radar::core {

namespace {

/// Contiguous int8 dot product with int32 accumulation, dispatched on
/// the active SIMD level (scalar / AVX2 / AVX-512 VNNI / NEON — all
/// bit-identical). Signs are +1/-1 (0 on padding), so the result equals
/// the masked checksum exactly.
inline std::int32_t dot_i8_i32(const std::int8_t* w, const std::int8_t* s,
                               std::int64_t n) {
  return simd::dot_i8(w, s, n);
}

inline std::int64_t dot_i8_i64(const std::int8_t* w, const std::int8_t* s,
                               std::int64_t n) {
  std::int64_t acc = 0;
  for (std::int64_t k = 0; k < n; ++k)
    acc += static_cast<std::int64_t>(w[k]) * static_cast<std::int64_t>(s[k]);
  return acc;
}

/// acc[k] += w[k] * s[k] over a contiguous segment — the rotated-row
/// accumulation step of the interleaved scan (and its range-window
/// variant), dispatched like dot_i8_i32.
inline void axpy_i8_i32(std::int32_t* acc, const std::int8_t* w,
                        const std::int8_t* s, std::int64_t n) {
  simd::axpy_i8(acc, w, s, n);
}

}  // namespace

LayerScanner::LayerScanner(const GroupLayout& layout, const MaskStream& mask,
                           int sig_bits)
    : sig_bits_(sig_bits),
      num_groups_(layout.num_groups()),
      num_weights_(layout.num_weights()),
      group_size_(layout.group_size()),
      interleaved_(layout.is_interleaved()),
      skew_(layout.skew()) {
  RADAR_REQUIRE(sig_bits == 2 || sig_bits == 3,
                "signature width must be 2 or 3");
  RADAR_REQUIRE(num_weights_ < (std::int64_t{1} << 31),
                "layer too large for 32-bit permutation indices");
  const std::int64_t g = group_size_;
  const auto padded = static_cast<std::size_t>(num_groups_ * g);
  sign_rm_.resize(static_cast<std::size_t>(num_weights_));
  perm_.resize(padded);
  sign_.resize(padded);
  for (std::int64_t grp = 0; grp < num_groups_; ++grp) {
    for (std::int64_t slot = 0; slot < g; ++slot) {
      const std::int64_t pos = grp * g + slot;
      const std::int64_t i = layout.member(grp, slot);
      if (i < 0) {
        // Padding: point at a valid index with sign 0 so the narrow scan
        // stays branchless and the slot contributes nothing.
        perm_[static_cast<std::size_t>(pos)] = 0;
        sign_[static_cast<std::size_t>(pos)] = 0;
        continue;
      }
      const std::int8_t sgn = mask.bit(pos) ? -1 : 1;
      perm_[static_cast<std::size_t>(pos)] = static_cast<std::int32_t>(i);
      sign_[static_cast<std::size_t>(pos)] = sgn;
      sign_rm_[static_cast<std::size_t>(i)] = sgn;
    }
  }
}

void LayerScanner::masked_sums_into(std::span<const std::int8_t> weights,
                                    ScanScratch& scratch) const {
  RADAR_REQUIRE(static_cast<std::int64_t>(weights.size()) == num_weights_,
                "weight buffer size does not match scanner");
  const std::int64_t g = group_size_;
  const std::int64_t ng = num_groups_;
  scratch.sums.resize(static_cast<std::size_t>(ng));
  const std::int8_t* w = weights.data();
  const std::int8_t* s = sign_rm_.data();
  if (!interleaved_) {
    // Contiguous layout: groups are contiguous weight slices.
    const bool wide = g > kInt32SafeGroupSize;
    for (std::int64_t grp = 0; grp < ng; ++grp) {
      const std::int64_t base = grp * g;
      const std::int64_t n = std::min(g, num_weights_ - base);
      scratch.sums[static_cast<std::size_t>(grp)] =
          wide ? dot_i8_i64(w + base, s + base, n)
               : static_cast<std::int64_t>(dot_i8_i32(w + base, s + base, n));
    }
    return;
  }
  if (g > kInt32SafeGroupSize) {
    // Pathological group sizes could overflow the int32 accumulators;
    // take the exact int64 per-group path instead.
    for (std::int64_t grp = 0; grp < ng; ++grp)
      scratch.sums[static_cast<std::size_t>(grp)] = group_sum(weights, grp);
    return;
  }
  // Interleaved layout: within row r, index i = r*ng + c belongs to group
  // (c + skew*r) mod ng — consecutive indices hit consecutive groups, so
  // each row folds into the accumulator as two contiguous rotated
  // segments. One sequential pass over weights and signs; the ng int32
  // accumulators stay cache-hot.
  scratch.acc.resize(static_cast<std::size_t>(ng));
  std::int32_t* acc = scratch.acc.data();
  std::fill(acc, acc + ng, 0);
  for (std::int64_t row = 0; row * ng < num_weights_; ++row) {
    const std::int64_t base = row * ng;
    const std::int64_t len = std::min(ng, num_weights_ - base);
    const std::int64_t off = (skew_ * row) % ng;
    const std::int64_t first = std::min(len, ng - off);
    axpy_i8_i32(acc + off, w + base, s + base, first);
    axpy_i8_i32(acc, w + base + first, s + base + first, len - first);
  }
  for (std::int64_t grp = 0; grp < ng; ++grp)
    scratch.sums[static_cast<std::size_t>(grp)] =
        static_cast<std::int64_t>(acc[grp]);
}

void LayerScanner::masked_sums_range_into(
    std::span<const std::int8_t> weights, std::int64_t group_begin,
    std::int64_t group_end, ScanScratch& scratch) const {
  RADAR_REQUIRE(static_cast<std::int64_t>(weights.size()) == num_weights_,
                "weight buffer size does not match scanner");
  RADAR_REQUIRE(group_begin >= 0 && group_begin <= group_end &&
                    group_end <= num_groups_,
                "group range out of bounds");
  const std::int64_t g = group_size_;
  const std::int64_t ng = num_groups_;
  const std::int64_t m = group_end - group_begin;
  scratch.sums.resize(static_cast<std::size_t>(m));
  if (m == 0) return;
  const std::int8_t* w = weights.data();
  const std::int8_t* s = sign_rm_.data();
  if (!interleaved_) {
    // Contiguous layout: the range is a straight run of dot products.
    const bool wide = g > kInt32SafeGroupSize;
    for (std::int64_t grp = group_begin; grp < group_end; ++grp) {
      const std::int64_t base = grp * g;
      const std::int64_t n = std::min(g, num_weights_ - base);
      scratch.sums[static_cast<std::size_t>(grp - group_begin)] =
          wide ? dot_i8_i64(w + base, s + base, n)
               : static_cast<std::int64_t>(dot_i8_i32(w + base, s + base, n));
    }
    return;
  }
  if (g > kInt32SafeGroupSize) {
    for (std::int64_t grp = group_begin; grp < group_end; ++grp)
      scratch.sums[static_cast<std::size_t>(grp - group_begin)] =
          group_sum(weights, grp);
    return;
  }
  // Interleaved layout: within row r, group grp's member sits at column
  // c = (grp - skew*r) mod ng. The range's columns form one rotated
  // window of width m per row — at most two contiguous segments, each
  // folding into the m accumulators with the same widening-add kernel as
  // the full scan (acc index advances in lockstep with the column).
  scratch.acc.resize(static_cast<std::size_t>(m));
  std::int32_t* acc = scratch.acc.data();
  std::fill(acc, acc + m, 0);
  for (std::int64_t row = 0; row * ng < num_weights_; ++row) {
    const std::int64_t base = row * ng;
    const std::int64_t len = std::min(ng, num_weights_ - base);
    // Column of the range's first group in this row.
    const std::int64_t c0 = ((group_begin - skew_ * row) % ng + ng) % ng;
    // Segment A: columns [c0, min(c0 + m, ng)) -> acc[0 ..).
    const std::int64_t a_end = std::min({c0 + m, ng, len});
    if (a_end > c0) axpy_i8_i32(acc, w + base + c0, s + base + c0, a_end - c0);
    // Segment B (wrap): columns [0, c0 + m - ng) -> acc[ng - c0 ..).
    const std::int64_t b_end = std::min(c0 + m - ng, len);
    if (b_end > 0) axpy_i8_i32(acc + (ng - c0), w + base, s + base, b_end);
  }
  for (std::int64_t k = 0; k < m; ++k)
    scratch.sums[static_cast<std::size_t>(k)] =
        static_cast<std::int64_t>(acc[k]);
}

std::int64_t LayerScanner::group_sum(std::span<const std::int8_t> weights,
                                     std::int64_t group) const {
  RADAR_REQUIRE(static_cast<std::int64_t>(weights.size()) == num_weights_,
                "weight buffer size does not match scanner");
  RADAR_REQUIRE(group >= 0 && group < num_groups_, "group out of range");
  const std::int64_t g = group_size_;
  const std::int32_t* p = perm_.data() + group * g;
  const std::int8_t* s = sign_.data() + group * g;
  if (g > kInt32SafeGroupSize) {
    std::int64_t acc = 0;
    for (std::int64_t k = 0; k < g; ++k)
      acc += static_cast<std::int64_t>(
                 weights[static_cast<std::size_t>(p[k])]) *
             static_cast<std::int64_t>(s[k]);
    return acc;
  }
  std::int32_t acc = 0;
  for (std::int64_t k = 0; k < g; ++k)
    acc += static_cast<std::int32_t>(weights[static_cast<std::size_t>(p[k])]) *
           static_cast<std::int32_t>(s[k]);
  return acc;
}

Signature LayerScanner::group_signature_at(
    std::span<const std::int8_t> weights, std::int64_t group) const {
  return binarize(group_sum(weights, group), sig_bits_);
}

std::vector<std::int64_t> LayerScanner::masked_sums(
    std::span<const std::int8_t> weights) const {
  ScanScratch scratch;
  masked_sums_into(weights, scratch);
  return std::move(scratch.sums);
}

std::vector<Signature> LayerScanner::scan(
    std::span<const std::int8_t> weights) const {
  ScanScratch scratch;
  masked_sums_into(weights, scratch);
  std::vector<Signature> out(scratch.sums.size());
  for (std::size_t g = 0; g < scratch.sums.size(); ++g)
    out[g] = binarize(scratch.sums[g], sig_bits_);
  return out;
}

}  // namespace radar::core
