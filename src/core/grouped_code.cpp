#include "core/grouped_code.h"

#include "codes/crc.h"
#include "codes/fletcher.h"
#include "codes/hamming.h"

namespace radar::core {

namespace {

class CrcBlockCode : public BlockCode {
 public:
  explicit CrcBlockCode(const codes::CrcSpec& spec) : crc_(spec) {}
  int code_bits() const override { return crc_.storage_bits(); }
  std::uint32_t compute(std::span<const std::int8_t> block) const override {
    return crc_.compute_i8(block);
  }

 private:
  codes::Crc crc_;
};

class Fletcher16BlockCode : public BlockCode {
 public:
  int code_bits() const override { return 16; }
  std::uint32_t compute(std::span<const std::int8_t> block) const override {
    return codes::fletcher16(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(block.data()), block.size()));
  }
};

class HammingBlockCode : public BlockCode {
 public:
  explicit HammingBlockCode(std::int64_t group_size)
      : code_(group_size * 8) {}
  int code_bits() const override { return code_.storage_bits(); }
  std::uint32_t compute(std::span<const std::int8_t> block) const override {
    return code_.encode_i8(block);
  }

 private:
  codes::HammingSecDed code_;
};

}  // namespace

BlockCodeFactory crc_block_code(int width) {
  codes::CrcSpec spec;
  switch (width) {
    case 7:  spec = codes::CrcSpec::crc7(); break;
    case 10: spec = codes::CrcSpec::crc10(); break;
    case 13: spec = codes::CrcSpec::crc13(); break;
    case 16: spec = codes::CrcSpec::crc16_ccitt(); break;
    default:
      RADAR_REQUIRE(false, "no CRC preset of width " + std::to_string(width));
  }
  return [spec](std::int64_t) { return std::make_unique<CrcBlockCode>(spec); };
}

BlockCodeFactory fletcher16_block_code() {
  return [](std::int64_t) { return std::make_unique<Fletcher16BlockCode>(); };
}

BlockCodeFactory hamming_secded_block_code() {
  return [](std::int64_t group_size) {
    return std::make_unique<HammingBlockCode>(group_size);
  };
}

GroupedCodeScheme::GroupedCodeScheme(std::string id,
                                     const SchemeParams& params,
                                     BlockCodeFactory make_code)
    : SchemeBase(std::move(id), params), make_code_(std::move(make_code)) {
  RADAR_REQUIRE(make_code_ != nullptr, "null block code factory");
}

void GroupedCodeScheme::attach(const quant::QuantizedModel& qm, bool sign) {
  attach_layouts(qm);
  code_ = make_code_(params_.group_size);
  golden_.clear();
  for (const auto& layout : layouts_)
    golden_.emplace_back(layout.num_groups(), code_->code_bits());
  if (sign) resign(qm);
}

void GroupedCodeScheme::gather(const quant::QuantizedModel& qm,
                               std::size_t layer, std::int64_t group,
                               std::vector<std::int8_t>& block) const {
  const auto& layout = layouts_[layer];
  const auto& q = qm.layer(layer).q;
  block.assign(static_cast<std::size_t>(layout.group_size()), 0);
  for (std::int64_t slot = 0; slot < layout.group_size(); ++slot) {
    const std::int64_t i = layout.member(group, slot);
    if (i >= 0) block[static_cast<std::size_t>(slot)] =
        q[static_cast<std::size_t>(i)];
  }
}

void GroupedCodeScheme::scan_layer_into(const quant::QuantizedModel& qm,
                                        std::size_t layer,
                                        std::vector<std::int64_t>& flagged,
                                        ScanScratch& scratch) const {
  RADAR_REQUIRE(attached(), "scan before attach");
  RADAR_REQUIRE(layouts_.size() == qm.num_layers(),
                "scheme not attached to this model");
  flagged.clear();
  for (std::int64_t g = 0; g < layouts_[layer].num_groups(); ++g) {
    gather(qm, layer, g, scratch.block);
    if (code_->compute(scratch.block) != golden_[layer].get(g))
      flagged.push_back(g);
  }
}

void GroupedCodeScheme::scan_layer_groups(const quant::QuantizedModel& qm,
                                          std::size_t layer,
                                          std::span<const std::int64_t> groups,
                                          std::vector<std::int64_t>& flagged,
                                          ScanScratch& scratch) const {
  RADAR_REQUIRE(attached(), "scan before attach");
  RADAR_REQUIRE(layouts_.size() == qm.num_layers(),
                "scheme not attached to this model");
  flagged.clear();
  for (const std::int64_t g : groups) {
    gather(qm, layer, g, scratch.block);
    if (code_->compute(scratch.block) != golden_[layer].get(g))
      flagged.push_back(g);
  }
}

void GroupedCodeScheme::scan_layer_range_into(
    const quant::QuantizedModel& qm, std::size_t layer,
    std::int64_t group_begin, std::int64_t group_end,
    std::vector<std::int64_t>& flagged, ScanScratch& scratch) const {
  RADAR_REQUIRE(attached(), "scan before attach");
  RADAR_REQUIRE(layouts_.size() == qm.num_layers(),
                "scheme not attached to this model");
  RADAR_REQUIRE(layer < layouts_.size() && group_begin >= 0 &&
                    group_begin <= group_end &&
                    group_end <= layouts_[layer].num_groups(),
                "group range out of bounds");
  // Block codes pay per gathered group either way, so a range scan is the
  // full-scan loop bounded to [group_begin, group_end).
  flagged.clear();
  for (std::int64_t g = group_begin; g < group_end; ++g) {
    gather(qm, layer, g, scratch.block);
    if (code_->compute(scratch.block) != golden_[layer].get(g))
      flagged.push_back(g);
  }
}

void GroupedCodeScheme::resign_layer(const quant::QuantizedModel& qm,
                                     std::size_t layer) {
  RADAR_REQUIRE(layouts_.size() == qm.num_layers(),
                "scheme not attached to this model");
  RADAR_REQUIRE(layer < layouts_.size(), "layer out of range");
  std::vector<std::int8_t> block;
  for (std::int64_t g = 0; g < layouts_[layer].num_groups(); ++g) {
    gather(qm, layer, g, block);
    golden_[layer].set(g, code_->compute(block));
  }
}

std::int64_t GroupedCodeScheme::signature_storage_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& store : golden_) bytes += store.storage_bytes();
  return bytes;
}

std::vector<std::vector<std::uint8_t>> GroupedCodeScheme::export_golden()
    const {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(golden_.size());
  for (const auto& store : golden_) out.push_back(store.packed());
  return out;
}

void GroupedCodeScheme::import_golden(
    std::vector<std::vector<std::uint8_t>> packed) {
  RADAR_REQUIRE(attached(), "import_golden before attach");
  RADAR_REQUIRE(packed.size() == golden_.size(),
                "golden layer count mismatch");
  for (std::size_t li = 0; li < golden_.size(); ++li)
    golden_[li].set_packed(std::move(packed[li]));
}

}  // namespace radar::core
