#include "core/integrity_scheme.h"

#include <algorithm>

namespace radar::core {

bool DetectionReport::is_flagged(std::size_t layer,
                                 std::int64_t group) const {
  if (layer >= flagged.size()) return false;
  const auto& f = flagged[layer];
  return std::binary_search(f.begin(), f.end(), group);
}

void IntegrityScheme::scan_layer_groups(const quant::QuantizedModel& qm,
                                        std::size_t layer,
                                        std::span<const std::int64_t> groups,
                                        std::vector<std::int64_t>& flagged,
                                        ScanScratch& scratch) const {
  scan_layer_into(qm, layer, flagged, scratch);
  // Keep only the requested groups (both lists are sorted ascending).
  std::size_t keep = 0, gi = 0;
  for (const std::int64_t f : flagged) {
    while (gi < groups.size() && groups[gi] < f) ++gi;
    if (gi < groups.size() && groups[gi] == f) flagged[keep++] = f;
  }
  flagged.resize(keep);
}

void IntegrityScheme::scan_layer_range_into(const quant::QuantizedModel& qm,
                                            std::size_t layer,
                                            std::int64_t group_begin,
                                            std::int64_t group_end,
                                            std::vector<std::int64_t>& flagged,
                                            ScanScratch& scratch) const {
  scan_layer_into(qm, layer, flagged, scratch);
  // Trim to [group_begin, group_end) — flagged is sorted ascending.
  std::size_t keep = 0;
  for (const std::int64_t f : flagged)
    if (f >= group_begin && f < group_end) flagged[keep++] = f;
  flagged.resize(keep);
}

SchemeBase::SchemeBase(std::string id, const SchemeParams& params)
    : id_(std::move(id)), params_(params) {
  RADAR_REQUIRE(params.group_size > 0, "group size must be positive");
}

GroupLayout SchemeBase::make_layout(std::int64_t num_weights) const {
  return params_.interleave
             ? GroupLayout::interleaved(num_weights, params_.group_size,
                                        params_.skew)
             : GroupLayout::contiguous(num_weights, params_.group_size);
}

void SchemeBase::attach_layouts(const quant::QuantizedModel& qm) {
  layouts_.clear();
  clean_offsets_.clear();
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    layouts_.push_back(make_layout(qm.layer(li).size()));
    const quant::ArenaLayer& al = qm.arena().layer(li);
    clean_offsets_.emplace_back(al.offset, al.size);
  }
  clean_size_bytes_ = qm.arena().size_bytes();
  clean_holder_.reset();
  if (defer_clean_capture_) {
    // The caller promised an external source (set_clean_source follows
    // immediately); skip the full-arena copy it would throw away.
    defer_clean_capture_ = false;
    clean_copy_ = {};
    clean_bytes_ = {};
    return;
  }
  clean_copy_.capture(qm.arena());
  clean_bytes_ = clean_copy_.bytes();
}

void SchemeBase::set_clean_source(std::shared_ptr<const void> holder,
                                  std::span<const std::int8_t> bytes) {
  RADAR_REQUIRE(attached(), "set_clean_source before attach");
  RADAR_REQUIRE(holder != nullptr, "null clean-source holder");
  RADAR_REQUIRE(static_cast<std::int64_t>(bytes.size()) == clean_size_bytes_,
                "clean source does not match the attached arena size");
  clean_holder_ = std::move(holder);
  clean_bytes_ = bytes;
  clean_copy_ = {};  // drop the owned copy — the external source wins
}

std::vector<std::int64_t> SchemeBase::scan_layer(
    const quant::QuantizedModel& qm, std::size_t layer) const {
  std::vector<std::int64_t> flagged;
  ScanScratch scratch;
  scan_layer_into(qm, layer, flagged, scratch);
  return flagged;
}

DetectionReport SchemeBase::scan(const quant::QuantizedModel& qm) const {
  RADAR_REQUIRE(layouts_.size() == qm.num_layers(),
                "scheme not attached to this model");
  DetectionReport report;
  report.flagged.resize(qm.num_layers());
  for (std::size_t li = 0; li < qm.num_layers(); ++li)
    report.flagged[li] = scan_layer(qm, li);
  return report;
}

void SchemeBase::recover(quant::QuantizedModel& qm,
                         const DetectionReport& report,
                         RecoveryPolicy policy) const {
  RADAR_REQUIRE(report.flagged.size() == qm.num_layers(),
                "report does not match model");
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    const GroupLayout& layout = layouts_[li];
    // Resolve the clean copy only when this policy actually reads it —
    // zero-out recovery must work on schemes with no clean source (e.g.
    // deferred capture that never got set_clean_source).
    const std::span<const std::int8_t> clean =
        (policy == RecoveryPolicy::kReloadClean &&
         !report.flagged[li].empty())
            ? clean_span(li)
            : std::span<const std::int8_t>{};
    for (const std::int64_t g : report.flagged[li]) {
      // Iterate slots directly — group_members() would allocate per group.
      for (std::int64_t slot = 0; slot < layout.group_size(); ++slot) {
        const std::int64_t idx = layout.member(g, slot);
        if (idx < 0) continue;
        switch (policy) {
          case RecoveryPolicy::kZeroOut:
            qm.set_code(li, idx, 0);
            break;
          case RecoveryPolicy::kReloadClean:
            qm.set_code(li, idx, clean[static_cast<std::size_t>(idx)]);
            break;
        }
      }
    }
  }
}

void SchemeBase::resign(const quant::QuantizedModel& qm) {
  RADAR_REQUIRE(layouts_.size() == qm.num_layers(),
                "scheme not attached to this model");
  for (std::size_t li = 0; li < qm.num_layers(); ++li) resign_layer(qm, li);
}

std::int64_t SchemeBase::total_groups() const {
  std::int64_t n = 0;
  for (const auto& l : layouts_) n += l.num_groups();
  return n;
}

std::int64_t count_detected_flips(
    const IntegrityScheme& scheme, const DetectionReport& report,
    const std::vector<std::pair<std::size_t, std::int64_t>>& flips) {
  std::int64_t detected = 0;
  for (const auto& [layer, idx] : flips) {
    const std::int64_t group = scheme.layout(layer).group_of(idx);
    if (report.is_flagged(layer, group)) ++detected;
  }
  return detected;
}

}  // namespace radar::core
