#include "core/integrity_scheme.h"

#include <algorithm>

namespace radar::core {

bool DetectionReport::is_flagged(std::size_t layer,
                                 std::int64_t group) const {
  if (layer >= flagged.size()) return false;
  const auto& f = flagged[layer];
  return std::binary_search(f.begin(), f.end(), group);
}

SchemeBase::SchemeBase(std::string id, const SchemeParams& params)
    : id_(std::move(id)), params_(params) {
  RADAR_REQUIRE(params.group_size > 0, "group size must be positive");
}

GroupLayout SchemeBase::make_layout(std::int64_t num_weights) const {
  return params_.interleave
             ? GroupLayout::interleaved(num_weights, params_.group_size,
                                        params_.skew)
             : GroupLayout::contiguous(num_weights, params_.group_size);
}

void SchemeBase::attach_layouts(const quant::QuantizedModel& qm) {
  layouts_.clear();
  for (std::size_t li = 0; li < qm.num_layers(); ++li)
    layouts_.push_back(make_layout(qm.layer(li).size()));
  clean_snapshot_ = qm.snapshot();
}

DetectionReport SchemeBase::scan(const quant::QuantizedModel& qm) const {
  RADAR_REQUIRE(layouts_.size() == qm.num_layers(),
                "scheme not attached to this model");
  DetectionReport report;
  report.flagged.resize(qm.num_layers());
  for (std::size_t li = 0; li < qm.num_layers(); ++li)
    report.flagged[li] = scan_layer(qm, li);
  return report;
}

void SchemeBase::recover(quant::QuantizedModel& qm,
                         const DetectionReport& report,
                         RecoveryPolicy policy) const {
  RADAR_REQUIRE(report.flagged.size() == qm.num_layers(),
                "report does not match model");
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    for (const std::int64_t g : report.flagged[li]) {
      for (const std::int64_t idx : layouts_[li].group_members(g)) {
        switch (policy) {
          case RecoveryPolicy::kZeroOut:
            qm.set_code(li, idx, 0);
            break;
          case RecoveryPolicy::kReloadClean:
            qm.set_code(li, idx,
                        clean_snapshot_[li][static_cast<std::size_t>(idx)]);
            break;
        }
      }
    }
  }
}

void SchemeBase::resign(const quant::QuantizedModel& qm) {
  RADAR_REQUIRE(layouts_.size() == qm.num_layers(),
                "scheme not attached to this model");
  for (std::size_t li = 0; li < qm.num_layers(); ++li) resign_layer(qm, li);
}

std::int64_t SchemeBase::total_groups() const {
  std::int64_t n = 0;
  for (const auto& l : layouts_) n += l.num_groups();
  return n;
}

std::int64_t count_detected_flips(
    const IntegrityScheme& scheme, const DetectionReport& report,
    const std::vector<std::pair<std::size_t, std::int64_t>>& flips) {
  std::int64_t detected = 0;
  for (const auto& [layer, idx] : flips) {
    const std::int64_t group = scheme.layout(layer).group_of(idx);
    if (report.is_flagged(layer, group)) ++detected;
  }
  return detected;
}

}  // namespace radar::core
