// ScanScratch: caller-provided working memory for the scan hot path.
//
// Every zero-allocation scan entry point (LayerScanner::masked_sums_into,
// IntegrityScheme::scan_layer_into / scan_layer_groups) borrows its
// buffers from one of these instead of heap-allocating per call. The
// buffers grow to the high-water mark of the layers they serve and are
// then reused, so a steady-state scan loop performs zero allocations.
// A scratch object is not thread-safe; use one per worker (ScanSession
// keeps one per layer, which is equivalent because its layer tasks are
// disjoint).
#pragma once

#include <cstdint>
#include <vector>

namespace radar::core {

struct ScanScratch {
  std::vector<std::int8_t> block;   ///< gathered group block (grouped codes)
  std::vector<std::int32_t> acc;    ///< per-group 32-bit accumulators
  std::vector<std::int64_t> sums;   ///< per-group masked sums
};

}  // namespace radar::core
