// Group layout: how a layer's W weights map to checksum groups.
//
// Paper §IV.B.2 / Fig. 3: checksum groups are formed from weights that are
// originally ~W/G locations apart, with a small skew offset (t = 3) so the
// stride itself is not a fixed, guessable constant. We formalize this as a
// skewed block interleaver (always a bijection — see DESIGN.md §6):
//
//   padded W' = Ng * G,  Ng = ceil(W / G) groups of G weights
//   original index i:  row r = i / Ng, column c = i % Ng
//   interleaved:   group(i) = (c + t*r) mod Ng,  slot(i) = r
//   contiguous:    group(i) = i / G,             slot(i) = i % G
//
// With t = 0 this is the paper's "basic interleave" (members exactly Ng
// apart); padding slots hold no real weight and are treated as zero by the
// checksum.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace radar::core {

class GroupLayout {
 public:
  /// Contiguous (non-interleaved) grouping.
  static GroupLayout contiguous(std::int64_t num_weights,
                                std::int64_t group_size);

  /// Skewed-stride interleaved grouping (paper default skew = 3).
  static GroupLayout interleaved(std::int64_t num_weights,
                                 std::int64_t group_size,
                                 std::int64_t skew = 3);

  std::int64_t num_weights() const { return num_weights_; }
  std::int64_t group_size() const { return group_size_; }
  std::int64_t num_groups() const { return num_groups_; }
  bool is_interleaved() const { return interleaved_; }
  std::int64_t skew() const { return skew_; }

  /// Group index of original weight index i.
  std::int64_t group_of(std::int64_t i) const;

  /// Slot of weight i inside its group (0..G-1).
  std::int64_t slot_of(std::int64_t i) const;

  /// Original index occupying (group, slot), or -1 for a padding slot.
  std::int64_t member(std::int64_t group, std::int64_t slot) const;

  /// All real (non-padding) original indices of a group, in slot order.
  std::vector<std::int64_t> group_members(std::int64_t group) const;

 private:
  GroupLayout(std::int64_t w, std::int64_t g, bool inter, std::int64_t skew);

  std::int64_t num_weights_, group_size_, num_groups_, skew_;
  bool interleaved_;
};

}  // namespace radar::core
