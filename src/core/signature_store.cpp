#include "core/signature_store.h"

namespace radar::core {

SignatureStore::SignatureStore(std::int64_t num_groups, int width)
    : num_groups_(num_groups), width_(width) {
  RADAR_REQUIRE(num_groups >= 0, "negative group count");
  RADAR_REQUIRE(width == 2 || width == 3, "signature width must be 2 or 3");
  bits_.assign(static_cast<std::size_t>((num_groups * width + 7) / 8), 0);
}

void SignatureStore::set(std::int64_t group, Signature s) {
  RADAR_REQUIRE(group >= 0 && group < num_groups_, "group out of range");
  RADAR_REQUIRE(s.width == width_, "signature width mismatch");
  const std::int64_t base = group * width_;
  for (int b = 0; b < width_; ++b) {
    const std::int64_t pos = base + b;
    const auto byte = static_cast<std::size_t>(pos / 8);
    const int off = static_cast<int>(pos % 8);
    if ((s.bits >> b) & 1)
      bits_[byte] = static_cast<std::uint8_t>(bits_[byte] | (1u << off));
    else
      bits_[byte] = static_cast<std::uint8_t>(bits_[byte] & ~(1u << off));
  }
}

void SignatureStore::set_packed(std::vector<std::uint8_t> bytes) {
  RADAR_REQUIRE(static_cast<std::int64_t>(bytes.size()) == storage_bytes(),
                "packed signature size mismatch");
  bits_ = std::move(bytes);
}

Signature SignatureStore::get(std::int64_t group) const {
  RADAR_REQUIRE(group >= 0 && group < num_groups_, "group out of range");
  Signature s;
  s.width = width_;
  s.bits = 0;
  const std::int64_t base = group * width_;
  for (int b = 0; b < width_; ++b) {
    const std::int64_t pos = base + b;
    const auto byte = static_cast<std::size_t>(pos / 8);
    const int off = static_cast<int>(pos % 8);
    if ((bits_[byte] >> off) & 1)
      s.bits = static_cast<std::uint8_t>(s.bits | (1u << b));
  }
  return s;
}

PackedWordStore::PackedWordStore(std::int64_t num_groups, int width)
    : num_groups_(num_groups), width_(width) {
  RADAR_REQUIRE(num_groups >= 0, "negative group count");
  RADAR_REQUIRE(width >= 1 && width <= 32,
                "code word width must be in [1, 32]");
  bits_.assign(static_cast<std::size_t>((num_groups * width + 7) / 8), 0);
}

void PackedWordStore::set(std::int64_t group, std::uint32_t word) {
  RADAR_REQUIRE(group >= 0 && group < num_groups_, "group out of range");
  RADAR_REQUIRE(width_ == 32 || word < (1u << width_),
                "code word exceeds store width");
  const std::int64_t base = group * width_;
  for (int b = 0; b < width_; ++b) {
    const std::int64_t pos = base + b;
    const auto byte = static_cast<std::size_t>(pos / 8);
    const int off = static_cast<int>(pos % 8);
    if ((word >> b) & 1u)
      bits_[byte] = static_cast<std::uint8_t>(bits_[byte] | (1u << off));
    else
      bits_[byte] = static_cast<std::uint8_t>(bits_[byte] & ~(1u << off));
  }
}

std::uint32_t PackedWordStore::get(std::int64_t group) const {
  RADAR_REQUIRE(group >= 0 && group < num_groups_, "group out of range");
  std::uint32_t word = 0;
  const std::int64_t base = group * width_;
  for (int b = 0; b < width_; ++b) {
    const std::int64_t pos = base + b;
    const auto byte = static_cast<std::size_t>(pos / 8);
    const int off = static_cast<int>(pos % 8);
    if ((bits_[byte] >> off) & 1) word |= (1u << b);
  }
  return word;
}

void PackedWordStore::set_packed(std::vector<std::uint8_t> bytes) {
  RADAR_REQUIRE(static_cast<std::int64_t>(bytes.size()) == storage_bytes(),
                "packed code word size mismatch");
  bits_ = std::move(bytes);
}

}  // namespace radar::core
