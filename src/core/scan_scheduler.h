// ScanScheduler: budget-driven interleaved scanning (QoS for the sweep).
//
// The existing scan paths each run flat-out: ScanSession drains a whole
// model in one call, and the serve layer's old ShardScanner stepped one
// shard at a time with no notion of how much work a step was allowed to
// do. This scheduler is the piece an edge deployment actually needs: it
// drains a prioritized sweep — dirty groups first (fed by recovery
// writes), then round-robin byte-range chunks — in *slices* bounded by a
// budget knob (X µs or Y bytes per slice), resumable mid-layer via
// scan_layer_range_into. A caller interleaves `run_slice` with inference
// batches; the budget is the dial between detection latency and
// throughput, and the completed-sweep cadence is the coverage guarantee.
//
// Report identity: the chunk plan mirrors ScanSession's byte-range
// partitioning (contiguous ascending group ranges per layer, whole-layer
// chunks for schemes without a native range kernel), and each completed
// sweep accumulates chunk flags in plan order — so `last_sweep_report()`
// equals a serial `scheme.scan(qm)` / `ScanSession::scan_into` bit for
// bit, for ANY budget. The budget changes *when* groups are scanned,
// never *what* a sweep reports. Dirty-queue rescans are reported through
// `slice_flags()` only and never merged into the sweep report, so the
// identity survives priority preemption.
//
// Concurrency: when the model's arena has an EpochGuard, every chunk is
// bracketed by the same seqlock protocol the serve scanner used —
// read_begin / scan / read_validate with bounded retries, then one
// quiescent locked scan so a hot writer can delay but never starve
// detection. The validated range is the layer's whole byte range
// (interleaved layouts scatter a group's members across the layer).
// A scheduler instance is single-threaded: one per scanner thread.
//
// Budget semantics: negative = unlimited, zero = starved (the slice
// scans nothing and reports `starved`, letting a coverage-age alarm
// fire upstream), positive = bounded. When both knobs are positive the
// first limit hit ends the slice. Any slice with a positive budget makes
// progress (at least one chunk or dirty group), so budget_bytes == 1
// degenerates to exactly-one-chunk-per-slice — the old step() behaviour.
// A slice also ends when it completes a sweep, so per-sweep results can
// be harvested at a stable point.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <set>
#include <utility>
#include <vector>

#include "core/integrity_scheme.h"

namespace radar::core {

class ScanScheduler {
 public:
  struct Config {
    std::int64_t budget_us = -1;     ///< wall-time budget per slice
    std::int64_t budget_bytes = -1;  ///< weight-byte budget per slice
    std::int64_t chunk_bytes = 16 * 1024;  ///< sweep granule (resume unit)
    int max_retries = 64;  ///< epoch retries per chunk before fallback
  };

  /// Outcome of one run_slice call.
  struct Slice {
    std::int64_t chunks = 0;        ///< sweep chunks scanned
    std::int64_t dirty_groups = 0;  ///< priority dirty groups drained
    std::int64_t bytes = 0;         ///< weight bytes covered
    std::int64_t elapsed_ns = 0;
    bool flagged = false;  ///< any mismatch found (see slice_flags())
    bool wrapped = false;  ///< this slice completed a full-model sweep
    bool starved = false;  ///< zero budget: nothing was scanned
  };

  /// Build the chunk plan for an attached scheme. The scheme must stay
  /// alive (and attached to the scanned model) for the scheduler's
  /// lifetime. Resets cursor, sweep accumulation, and the dirty queue.
  void plan(const IntegrityScheme& scheme, Config cfg);

  bool planned() const { return !plan_.empty(); }
  std::size_t num_chunks() const { return plan_.size(); }
  /// Index of the next chunk to scan; survives pauses and scanner-thread
  /// respawns because the scheduler lives with the tenant, not the thread.
  std::size_t cursor() const { return cursor_; }
  const Config& config() const { return cfg_; }
  /// Retune the budget knobs without replanning (runtime QoS dial).
  void set_budget(std::int64_t budget_us, std::int64_t budget_bytes) {
    cfg_.budget_us = budget_us;
    cfg_.budget_bytes = budget_bytes;
  }
  void set_max_retries(int n) { cfg_.max_retries = n; }

  /// Enqueue a group for priority rescan at the head of the next slice
  /// (deduplicated). Fed by recovery writes: re-verifying a just-repaired
  /// group beats waiting for the sweep to come back around.
  void push_dirty(std::size_t layer, std::int64_t group);
  std::size_t dirty_pending() const { return dirty_queue_.size(); }

  /// Scan one budget-bounded slice of `qm` (which the planned scheme must
  /// be attached to). Epoch-validated when the arena has a guard.
  Slice run_slice(const quant::QuantizedModel& qm);

  /// Mismatching (layer, group) pairs found by the last run_slice, in
  /// scan order (dirty groups first, then sweep chunks). May repeat a
  /// group that was both dirty-rescanned and swept in one slice.
  const std::vector<std::pair<std::size_t, std::int64_t>>& slice_flags()
      const {
    return slice_flags_;
  }

  /// Flags of the last *completed* sweep — byte-identical to a serial
  /// full scan of the model state the sweep observed. Empty layers (and
  /// an all-empty report) before the first wrap.
  const DetectionReport& last_sweep_report() const { return sweep_report_; }

  /// Reset the cursor and in-progress sweep accumulation (and drop any
  /// queued dirty groups) so the next slice starts a fresh sweep.
  /// last_sweep_report() is left untouched.
  void restart_sweep();

  // ---- stats (single writer: the scanning thread) ----
  std::uint64_t chunks_scanned() const { return chunks_scanned_; }
  std::uint64_t sweeps() const { return sweeps_; }
  std::uint64_t epoch_retries() const { return epoch_retries_; }
  std::uint64_t epoch_fallbacks() const { return epoch_fallbacks_; }
  std::uint64_t dirty_scanned() const { return dirty_scanned_; }
  std::int64_t bytes_scanned() const { return bytes_scanned_; }
  /// Duration of the last completed sweep — the measured coverage
  /// period. 0 before the first wrap.
  std::int64_t last_sweep_ns() const { return last_sweep_ns_; }
  /// Time since the last completed sweep (since plan() before the first
  /// one) — the staleness a coverage deadline is checked against.
  std::int64_t coverage_age_ns() const;

 private:
  /// One sweep granule: groups [begin, end) of one layer.
  struct Chunk {
    std::size_t layer;
    std::int64_t begin, end;
    std::int64_t bytes;  ///< approx weight bytes the range covers
  };

  using Clock = std::chrono::steady_clock;

  /// Scan groups [begin, end) of `layer` under the epoch protocol
  /// (plain when the arena has no guard). Flags land in chunk_flags_.
  void scan_range_guarded(const quant::QuantizedModel& qm,
                          std::size_t layer, std::int64_t begin,
                          std::int64_t end);
  void scan_range(const quant::QuantizedModel& qm, std::size_t layer,
                  std::int64_t begin, std::int64_t end);

  const IntegrityScheme* scheme_ = nullptr;
  Config cfg_;
  std::vector<Chunk> plan_;
  std::size_t cursor_ = 0;

  std::deque<std::pair<std::size_t, std::int64_t>> dirty_queue_;
  std::set<std::pair<std::size_t, std::int64_t>> dirty_set_;

  DetectionReport building_;      ///< sweep in progress, plan order
  DetectionReport sweep_report_;  ///< last completed sweep
  std::vector<std::int64_t> chunk_flags_;
  std::vector<std::pair<std::size_t, std::int64_t>> slice_flags_;
  ScanScratch scratch_;
  std::vector<std::uint64_t> epoch_snap_;

  Clock::time_point sweep_start_{};  ///< first chunk of current sweep
  Clock::time_point sweep_end_{};    ///< last wrap (plan() time before)
  bool sweep_started_ = false;

  std::uint64_t chunks_scanned_ = 0;
  std::uint64_t sweeps_ = 0;
  std::uint64_t epoch_retries_ = 0;
  std::uint64_t epoch_fallbacks_ = 0;
  std::uint64_t dirty_scanned_ = 0;
  std::int64_t bytes_scanned_ = 0;
  std::int64_t last_sweep_ns_ = 0;
};

}  // namespace radar::core
