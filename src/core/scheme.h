// RadarScheme: the paper's detection + recovery pipeline as one
// IntegrityScheme implementation (registry ids "radar2" / "radar3").
//
// attach() derives per-layer group layouts, per-layer 16-bit mask keys and
// golden signatures from a quantized model; scan() recomputes signatures
// over the (possibly corrupted) int8 buffers and reports mismatching
// groups; recover() applies the paper's zero-out policy (or restores a
// clean copy, modeling the halt-and-reload alternative).
#pragma once

#include <cstdint>
#include <vector>

#include "core/integrity_scheme.h"
#include "core/mask.h"
#include "core/scanner.h"
#include "core/signature_store.h"

namespace radar::core {

/// Tunable parameters of the scheme (paper defaults). The grouping fields
/// mirror SchemeParams; signature_bits picks the 2-bit scheme or the §VIII
/// 3-bit MSB-1 variant.
struct RadarConfig {
  std::int64_t group_size = 512;
  bool interleave = true;
  std::int64_t skew = 3;          ///< paper uses an offset of 3
  int signature_bits = 2;         ///< 3 enables the §VIII MSB-1 variant
  MaskStream::Expansion expansion = MaskStream::Expansion::kPrf;
  std::uint64_t master_key = 0xC0FFEE5EC0DEULL;

  static RadarConfig from_params(const SchemeParams& p, int bits);
  SchemeParams to_params() const;
};

class RadarScheme : public SchemeBase {
 public:
  explicit RadarScheme(const RadarConfig& cfg);
  /// Registry-factory form: grouping from `params`, width from `bits`.
  RadarScheme(const SchemeParams& params, int bits)
      : RadarScheme(RadarConfig::from_params(params, bits)) {}

  int signature_bits() const { return sig_bits_; }

  void attach(const quant::QuantizedModel& qm, bool sign = true) override;
  void scan_layer_into(const quant::QuantizedModel& qm, std::size_t layer,
                       std::vector<std::int64_t>& flagged,
                       ScanScratch& scratch) const override;
  void scan_layer_groups(const quant::QuantizedModel& qm, std::size_t layer,
                         std::span<const std::int64_t> groups,
                         std::vector<std::int64_t>& flagged,
                         ScanScratch& scratch) const override;
  void scan_layer_range_into(const quant::QuantizedModel& qm,
                             std::size_t layer, std::int64_t group_begin,
                             std::int64_t group_end,
                             std::vector<std::int64_t>& flagged,
                             ScanScratch& scratch) const override;
  bool supports_range_scan() const override { return true; }
  void resign_layer(const quant::QuantizedModel& qm,
                    std::size_t layer) override;
  std::int64_t signature_storage_bytes() const override;
  std::vector<std::vector<std::uint8_t>> export_golden() const override;
  void import_golden(std::vector<std::vector<std::uint8_t>> packed) override;

 private:
  Signature compute_signature(const quant::QuantizedModel& qm,
                              std::size_t layer, std::int64_t group) const;

  int sig_bits_;  ///< grouping/key fields live in SchemeBase::params_
  std::vector<MaskStream> masks_;
  std::vector<LayerScanner> scanners_;  ///< streaming scan tables
  std::vector<SignatureStore> golden_;
};

}  // namespace radar::core
