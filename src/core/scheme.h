// RadarScheme: the complete detection + recovery pipeline of the paper.
//
// attach() derives per-layer group layouts, per-layer 16-bit mask keys and
// golden signatures from a quantized model; scan() recomputes signatures
// over the (possibly corrupted) int8 buffers and reports mismatching
// groups; recover() applies the paper's zero-out policy (or restores a
// clean copy, modeling the halt-and-reload alternative).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/interleave.h"
#include "core/mask.h"
#include "core/scanner.h"
#include "core/signature_store.h"
#include "quant/qmodel.h"

namespace radar::core {

/// Tunable parameters of the scheme (paper defaults).
struct RadarConfig {
  std::int64_t group_size = 512;
  bool interleave = true;
  std::int64_t skew = 3;          ///< paper uses an offset of 3
  int signature_bits = 2;         ///< 3 enables the §VIII MSB-1 variant
  MaskStream::Expansion expansion = MaskStream::Expansion::kPrf;
  std::uint64_t master_key = 0xC0FFEE5EC0DEULL;
};

/// What to do with a flagged group.
enum class RecoveryPolicy {
  kZeroOut,      ///< paper: set all weights of the group to zero
  kReloadClean,  ///< halt & reload a clean copy (costlier, exact)
};

/// Result of one scan over all layers.
struct DetectionReport {
  /// Flagged group ids per layer, sorted ascending.
  std::vector<std::vector<std::int64_t>> flagged;

  bool attack_detected() const {
    for (const auto& f : flagged)
      if (!f.empty()) return true;
    return false;
  }
  std::int64_t num_flagged_groups() const {
    std::int64_t n = 0;
    for (const auto& f : flagged) n += static_cast<std::int64_t>(f.size());
    return n;
  }
  bool is_flagged(std::size_t layer, std::int64_t group) const;
};

class RadarScheme {
 public:
  explicit RadarScheme(const RadarConfig& cfg) : cfg_(cfg) {
    RADAR_REQUIRE(cfg.group_size > 0, "group size must be positive");
    RADAR_REQUIRE(cfg.signature_bits == 2 || cfg.signature_bits == 3,
                  "signature width must be 2 or 3");
  }

  /// Build layouts / keys / golden signatures for `qm`. Also stores a
  /// clean snapshot for the kReloadClean policy.
  void attach(const quant::QuantizedModel& qm);

  bool attached() const { return !layouts_.empty(); }
  std::size_t num_layers() const { return layouts_.size(); }
  const GroupLayout& layout(std::size_t layer) const {
    return layouts_.at(layer);
  }
  const RadarConfig& config() const { return cfg_; }

  /// Recompute signatures of every group and compare with the golden ones.
  DetectionReport scan(const quant::QuantizedModel& qm) const;

  /// Scan a single layer (run-time per-layer embedding, §IV).
  std::vector<std::int64_t> scan_layer(const quant::QuantizedModel& qm,
                                       std::size_t layer) const;

  /// Apply recovery to every flagged group.
  void recover(quant::QuantizedModel& qm, const DetectionReport& report,
               RecoveryPolicy policy = RecoveryPolicy::kZeroOut) const;

  /// Recompute golden signatures (after an authorized weight update).
  void resign(const quant::QuantizedModel& qm);

  /// Recompute golden signatures of a single layer (used by the per-layer
  /// run-time embedding, where other layers may not have been scanned yet).
  void resign_layer(const quant::QuantizedModel& qm, std::size_t layer);

  /// Total golden-signature bytes across layers (paper Fig. 6 x-axis).
  std::int64_t signature_storage_bytes() const;

  /// Signatures recomputed in one scan (equals total group count).
  std::int64_t total_groups() const;

  /// Export the packed golden signatures (deployment artifact payload).
  std::vector<std::vector<std::uint8_t>> export_golden() const;

  /// Replace the golden signatures with previously exported ones (e.g.
  /// loaded from a signed package). A subsequent scan then reveals any
  /// weight tampering that happened since the export.
  void import_golden(std::vector<std::vector<std::uint8_t>> packed);

 private:
  Signature compute_signature(const quant::QuantizedModel& qm,
                              std::size_t layer, std::int64_t group) const;

  RadarConfig cfg_;
  std::vector<GroupLayout> layouts_;
  std::vector<MaskStream> masks_;
  std::vector<LayerScanner> scanners_;  ///< streaming scan tables
  std::vector<SignatureStore> golden_;
  quant::QSnapshot clean_snapshot_;
};

/// Number of attack flips that land in groups flagged by `report` — the
/// paper's "detected bit-flips out of N" metric. Flips are (layer, index)
/// pairs.
std::int64_t count_detected_flips(
    const RadarScheme& scheme, const DetectionReport& report,
    const std::vector<std::pair<std::size_t, std::int64_t>>& flips);

}  // namespace radar::core
