// Addition checksum and signature binarization (paper §IV.A, Eq. 1).
//
//   M = Σ_t  (mask(t) ? -w_t : +w_t)      over the G weights of a group
//   SA = ⌊M/256⌋ % 2,  SB = ⌊M/128⌋ % 2   (2-bit signature)
//   SC = ⌊M/64⌋ % 2                        (3-bit variant, §VIII)
//
// Floor semantics hold for negative M (arithmetic shift). SB acts as a
// parity over MSBs: one MSB flip changes a weight by ±128, so any odd
// number of MSB flips always toggles SB; SA catches same-direction double
// flips (±256 total); opposite-direction pairs (net 0) are invisible to
// the checksum — that is exactly the weakness interleaving + masking
// addresses.
#pragma once

#include <cstdint>
#include <span>

#include "common/bits.h"
#include "core/interleave.h"
#include "core/mask.h"

namespace radar::core {

/// A packed signature of `width` bits (2 or 3).
struct Signature {
  std::uint8_t bits = 0;
  int width = 2;

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.bits == b.bits && a.width == b.width;
  }
};

/// Masked checksum of one group of a layer's int8 weights.
/// `layout` supplies the group membership; padding slots contribute zero.
/// The mask position is the stream position group*G + slot, so the same
/// key yields different masks for different groups.
std::int64_t masked_group_sum(std::span<const std::int8_t> weights,
                              const GroupLayout& layout, std::int64_t group,
                              const MaskStream& mask);

/// Binarize a checksum to a 2- or 3-bit signature.
/// Bit layout: width 2 -> {SA,SB} as (SA<<1)|SB; width 3 adds SC as LSB.
Signature binarize(std::int64_t m, int width);

/// Convenience: checksum + binarize.
Signature group_signature(std::span<const std::int8_t> weights,
                          const GroupLayout& layout, std::int64_t group,
                          const MaskStream& mask, int width);

}  // namespace radar::core
