#include "core/interleave.h"

namespace radar::core {

namespace {
// Validates before the division so a zero group size cannot SIGFPE in the
// member initializer.
std::int64_t checked_group_count(std::int64_t w, std::int64_t g,
                                 std::int64_t skew) {
  RADAR_REQUIRE(w > 0, "layer must have weights");
  RADAR_REQUIRE(g > 0, "group size must be positive");
  RADAR_REQUIRE(skew >= 0, "skew must be non-negative");
  return (w + g - 1) / g;
}
}  // namespace

GroupLayout::GroupLayout(std::int64_t w, std::int64_t g, bool inter,
                         std::int64_t skew)
    : num_weights_(w),
      group_size_(g),
      num_groups_(checked_group_count(w, g, skew)),
      skew_(skew),
      interleaved_(inter) {}

GroupLayout GroupLayout::contiguous(std::int64_t num_weights,
                                    std::int64_t group_size) {
  return GroupLayout(num_weights, group_size, /*inter=*/false, /*skew=*/0);
}

GroupLayout GroupLayout::interleaved(std::int64_t num_weights,
                                     std::int64_t group_size,
                                     std::int64_t skew) {
  return GroupLayout(num_weights, group_size, /*inter=*/true, skew);
}

std::int64_t GroupLayout::group_of(std::int64_t i) const {
  RADAR_REQUIRE(i >= 0 && i < num_weights_, "weight index out of range");
  if (!interleaved_) return i / group_size_;
  const std::int64_t r = i / num_groups_;
  const std::int64_t c = i % num_groups_;
  return (c + skew_ * r) % num_groups_;
}

std::int64_t GroupLayout::slot_of(std::int64_t i) const {
  RADAR_REQUIRE(i >= 0 && i < num_weights_, "weight index out of range");
  if (!interleaved_) return i % group_size_;
  return i / num_groups_;
}

std::int64_t GroupLayout::member(std::int64_t group, std::int64_t slot) const {
  RADAR_REQUIRE(group >= 0 && group < num_groups_, "group out of range");
  RADAR_REQUIRE(slot >= 0 && slot < group_size_, "slot out of range");
  std::int64_t i;
  if (!interleaved_) {
    i = group * group_size_ + slot;
  } else {
    // Invert group = (c + t*r) mod Ng with r = slot.
    const std::int64_t c =
        ((group - skew_ * slot) % num_groups_ + num_groups_) % num_groups_;
    i = slot * num_groups_ + c;
  }
  return i < num_weights_ ? i : -1;
}

std::vector<std::int64_t> GroupLayout::group_members(
    std::int64_t group) const {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(group_size_));
  for (std::int64_t s = 0; s < group_size_; ++s) {
    const std::int64_t i = member(group, s);
    if (i >= 0) out.push_back(i);
  }
  return out;
}

}  // namespace radar::core
