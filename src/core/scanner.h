// LayerScanner: vectorizable signature computation for one layer.
//
// group_signature() recomputes group membership and mask bits on every
// call — fine for tools and tests, too slow for the run-time scan path.
// LayerScanner precomputes the layout once, the way the hardware would
// hard-wire it, in two complementary shapes:
//
//  * row-major mask signs (sign_rm_[i], +1/-1 per original index) drive
//    the full scan. A contiguous layout reduces each group as a straight
//    int8 x int8 -> int32 dot product. The skewed interleaver has row
//    structure — within row r, consecutive indices map to consecutive
//    groups rotated by (skew*r) mod Ng — so the scan streams the weight
//    buffer once, adding each row into an L1-resident int32 accumulator
//    as two contiguous rotated segments. Both shapes autovectorize and
//    never gather: the pass is sequential over weights and signs.
//  * a group-major permutation (perm_[g*G + s] = original index, sign_
//    alongside, 0-signed padding) drives the O(G) narrow per-group scan
//    the incremental path is built from.
//
// int32 accumulators are exact for any group size up to 2^22 (|w| <= 128),
// with an int64 fallback above that. The *_into entry points write into
// caller-provided ScanScratch, so the steady-state scan loop performs
// zero allocations. All paths are bit-identical to the reference
// primitives (tested).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/checksum.h"
#include "core/scan_scratch.h"

namespace radar::core {

class LayerScanner {
 public:
  LayerScanner(const GroupLayout& layout, const MaskStream& mask,
               int sig_bits);

  std::int64_t num_groups() const { return num_groups_; }
  std::int64_t num_weights() const { return num_weights_; }
  int signature_bits() const { return sig_bits_; }

  /// Largest group size for which the int32 kernel cannot overflow
  /// (2^22 * 128 = 2^29 fits; kMaxGroupSize * 128 would not).
  static constexpr std::int64_t kInt32SafeGroupSize = std::int64_t{1} << 22;

  /// All per-group masked sums into scratch.sums (resized to num_groups);
  /// scratch.acc holds the int32 accumulators of the interleaved row
  /// kernel (nothing is ever gathered). Zero allocations at steady state.
  void masked_sums_into(std::span<const std::int8_t> weights,
                        ScanScratch& scratch) const;

  /// Masked sums of groups [group_begin, group_end) only, written to
  /// scratch.sums[0 .. group_end - group_begin) — the byte-range sharding
  /// kernel. Work is proportional to the bytes the range covers: the
  /// contiguous layout reduces each group as a straight dot product, and
  /// the skewed interleaver reads only the range's rotated column window
  /// of each row (still contiguous segments, still vectorized). Each
  /// group's sum accumulates in the same row order as masked_sums_into,
  /// so results are bit-identical to the corresponding slice of the full
  /// scan.
  void masked_sums_range_into(std::span<const std::int8_t> weights,
                              std::int64_t group_begin,
                              std::int64_t group_end,
                              ScanScratch& scratch) const;

  /// Masked sum of a single group — the narrow-scan primitive, O(G).
  std::int64_t group_sum(std::span<const std::int8_t> weights,
                         std::int64_t group) const;

  /// Signature of a single group (group_sum + binarize).
  Signature group_signature_at(std::span<const std::int8_t> weights,
                               std::int64_t group) const;

  /// Signatures of all groups (allocating convenience wrapper).
  std::vector<Signature> scan(std::span<const std::int8_t> weights) const;

  /// Raw per-group masked sums (allocating convenience wrapper).
  std::vector<std::int64_t> masked_sums(
      std::span<const std::int8_t> weights) const;

 private:
  int sig_bits_;
  std::int64_t num_groups_;
  std::int64_t num_weights_;
  std::int64_t group_size_;
  bool interleaved_;
  std::int64_t skew_;
  std::vector<std::int8_t> sign_rm_;  ///< row-major +1/-1 per weight index
  std::vector<std::int32_t> perm_;  ///< group-major original index (0 on pad)
  std::vector<std::int8_t> sign_;   ///< group-major +1/-1 (0 on pad slots)
};

}  // namespace radar::core
