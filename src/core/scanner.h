// LayerScanner: streaming signature computation for one layer.
//
// group_signature() recomputes group membership and mask bits on every
// call — fine for tools and tests, too slow for the run-time scan path.
// LayerScanner precomputes, per original weight index, its group id and
// mask bit (both are fixed once the layout and key are chosen, exactly
// like the hardware would hard-wire them), so a scan is a single pass of
// adds over the weight stream. Scanner results are bit-identical to the
// reference primitives (tested).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/checksum.h"

namespace radar::core {

class LayerScanner {
 public:
  LayerScanner(const GroupLayout& layout, const MaskStream& mask,
               int sig_bits);

  std::int64_t num_groups() const { return num_groups_; }
  int signature_bits() const { return sig_bits_; }

  /// Signatures of all groups in one streaming pass over the weights.
  std::vector<Signature> scan(std::span<const std::int8_t> weights) const;

  /// Raw per-group masked sums (for diagnostics / ablations).
  std::vector<std::int64_t> masked_sums(
      std::span<const std::int8_t> weights) const;

 private:
  int sig_bits_;
  std::int64_t num_groups_;
  std::vector<std::int32_t> group_of_;  ///< per original weight index
  std::vector<std::int8_t> sign_;       ///< +1 or -1 per weight
};

}  // namespace radar::core
