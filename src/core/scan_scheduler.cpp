#include "core/scan_scheduler.h"

#include <algorithm>
#include <thread>

#include "quant/epoch_guard.h"

namespace radar::core {

void ScanScheduler::plan(const IntegrityScheme& scheme, Config cfg) {
  RADAR_REQUIRE(scheme.attached(), "scheduler plan before attach");
  RADAR_REQUIRE(cfg.chunk_bytes > 0, "scan chunk size must be positive");
  scheme_ = &scheme;
  cfg_ = cfg;
  plan_.clear();
  cursor_ = 0;
  dirty_queue_.clear();
  dirty_set_.clear();
  sweep_started_ = false;
  sweep_end_ = Clock::now();

  // Same partitioning rule as ScanSession: chunks cover contiguous
  // ascending group ranges sized to ~chunk_bytes of weights; schemes
  // whose range scan is a full-layer fallback keep one chunk per layer
  // (splitting would rescan the whole layer per chunk).
  const bool splittable = scheme.supports_range_scan();
  for (std::size_t li = 0; li < scheme.num_layers(); ++li) {
    const GroupLayout& layout = scheme.layout(li);
    const std::int64_t nw = layout.num_weights();
    const std::int64_t ng = layout.num_groups();
    const std::int64_t chunks =
        splittable
            ? std::max<std::int64_t>(
                  1, std::min(ng, (nw + cfg.chunk_bytes - 1) /
                                      cfg.chunk_bytes))
            : 1;
    const std::int64_t per = (ng + chunks - 1) / chunks;
    for (std::int64_t b = 0; b < ng; b += per) {
      const std::int64_t e = std::min(b + per, ng);
      plan_.push_back({li, b, e, std::max<std::int64_t>(
                                     1, (nw * (e - b) + ng - 1) / ng)});
    }
  }

  building_.flagged.assign(scheme.num_layers(), std::vector<std::int64_t>{});
  sweep_report_.flagged.assign(scheme.num_layers(),
                               std::vector<std::int64_t>{});
}

void ScanScheduler::push_dirty(std::size_t layer, std::int64_t group) {
  if (dirty_set_.insert({layer, group}).second)
    dirty_queue_.emplace_back(layer, group);
}

void ScanScheduler::restart_sweep() {
  cursor_ = 0;
  sweep_started_ = false;
  dirty_queue_.clear();
  dirty_set_.clear();
  for (auto& v : building_.flagged) v.clear();
}

std::int64_t ScanScheduler::coverage_age_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now() - sweep_end_)
      .count();
}

void ScanScheduler::scan_range(const quant::QuantizedModel& qm,
                               std::size_t layer, std::int64_t begin,
                               std::int64_t end) {
  // Whole-layer fast path when the range covers every group.
  if (begin == 0 && end == scheme_->layout(layer).num_groups())
    scheme_->scan_layer_into(qm, layer, chunk_flags_, scratch_);
  else
    scheme_->scan_layer_range_into(qm, layer, begin, end, chunk_flags_,
                                   scratch_);
}

void ScanScheduler::scan_range_guarded(const quant::QuantizedModel& qm,
                                       std::size_t layer,
                                       std::int64_t begin,
                                       std::int64_t end) {
  quant::EpochGuard* guard = qm.epoch_guard();
  if (guard == nullptr) {
    scan_range(qm, layer, begin, end);
    return;
  }
  // The validated range is the layer's whole byte range: interleaved
  // layouts scatter a group's members across the entire layer, so the
  // layer range is the true read set.
  const auto [b0, b1] = qm.layer_byte_range(layer);
  bool done = false;
  for (int attempt = 0; attempt < cfg_.max_retries && !done; ++attempt) {
    if (!guard->read_begin(b0, b1, epoch_snap_)) {
      ++epoch_retries_;
      std::this_thread::yield();
      continue;
    }
    scan_range(qm, layer, begin, end);
    if (guard->read_validate(b0, b1, epoch_snap_)) {
      done = true;
    } else {
      ++epoch_retries_;  // writer overlapped: verdict discarded
    }
  }
  if (!done) {
    // Quiescent fallback: lock writers out for one bounded scan so a
    // hot writer can delay detection, never defeat it.
    ++epoch_fallbacks_;
    auto lock = guard->lock_writers();
    scan_range(qm, layer, begin, end);
  }
}

ScanScheduler::Slice ScanScheduler::run_slice(
    const quant::QuantizedModel& qm) {
  RADAR_REQUIRE(planned(), "scheduler run_slice before plan");
  Slice out;
  slice_flags_.clear();
  if (cfg_.budget_us == 0 || cfg_.budget_bytes == 0) {
    out.starved = true;  // scan is starved: coverage age keeps growing
    return out;
  }

  const auto t0 = Clock::now();
  const auto elapsed_ns = [&] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - t0)
        .count();
  };
  const auto budget_left = [&] {
    if (cfg_.budget_bytes > 0 && out.bytes >= cfg_.budget_bytes)
      return false;
    if (cfg_.budget_us > 0 && elapsed_ns() >= cfg_.budget_us * 1000)
      return false;
    return true;
  };

  std::int64_t units = 0;
  // Priority pass: dirty groups (recovery rewrites) before sweep work.
  // Flags are reported via slice_flags_ only — never merged into the
  // sweep report, which must stay bit-identical to a serial scan.
  while (!dirty_queue_.empty() && (units == 0 || budget_left())) {
    const auto [layer, group] = dirty_queue_.front();
    dirty_queue_.pop_front();
    dirty_set_.erase({layer, group});
    scan_range_guarded(qm, layer, group, group + 1);
    for (std::int64_t g : chunk_flags_) slice_flags_.emplace_back(layer, g);
    const GroupLayout& layout = scheme_->layout(layer);
    out.bytes += std::max<std::int64_t>(
        1, (layout.num_weights() + layout.num_groups() - 1) /
               layout.num_groups());
    ++out.dirty_groups;
    ++dirty_scanned_;
    ++units;
  }

  // Round-robin sweep chunks until the budget runs out or a sweep
  // completes (a slice never scans past a wrap: callers harvest the
  // per-sweep report at that stable point).
  while (units == 0 || budget_left()) {
    if (!sweep_started_ && cursor_ == 0) {
      sweep_start_ = Clock::now();
      sweep_started_ = true;
    }
    const Chunk& ch = plan_[cursor_];
    scan_range_guarded(qm, ch.layer, ch.begin, ch.end);
    auto& accum = building_.flagged[ch.layer];
    accum.insert(accum.end(), chunk_flags_.begin(), chunk_flags_.end());
    for (std::int64_t g : chunk_flags_) slice_flags_.emplace_back(ch.layer, g);
    out.bytes += ch.bytes;
    ++out.chunks;
    ++chunks_scanned_;
    ++units;
    if (++cursor_ == plan_.size()) {
      cursor_ = 0;
      ++sweeps_;
      out.wrapped = true;
      sweep_end_ = Clock::now();
      last_sweep_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           sweep_end_ - sweep_start_)
                           .count();
      sweep_started_ = false;
      std::swap(sweep_report_.flagged, building_.flagged);
      for (auto& v : building_.flagged) v.clear();
      break;
    }
  }

  bytes_scanned_ += out.bytes;
  out.flagged = !slice_flags_.empty();
  out.elapsed_ns = elapsed_ns();
  return out;
}

}  // namespace radar::core
