#include "core/checksum.h"

namespace radar::core {

std::int64_t masked_group_sum(std::span<const std::int8_t> weights,
                              const GroupLayout& layout, std::int64_t group,
                              const MaskStream& mask) {
  RADAR_REQUIRE(static_cast<std::int64_t>(weights.size()) ==
                    layout.num_weights(),
                "weight buffer size does not match layout");
  const std::int64_t g = layout.group_size();
  std::int64_t m = 0;
  for (std::int64_t slot = 0; slot < g; ++slot) {
    const std::int64_t i = layout.member(group, slot);
    if (i < 0) continue;  // padding slot: contributes zero
    const std::int64_t pos = group * g + slot;
    const int w = weights[static_cast<std::size_t>(i)];
    m += mask.bit(pos) ? -w : w;
  }
  return m;
}

Signature binarize(std::int64_t m, int width) {
  RADAR_REQUIRE(width == 2 || width == 3, "signature width must be 2 or 3");
  const auto sa = static_cast<std::uint8_t>(floor_div_pow2(m, 8) & 1);  // /256
  const auto sb = static_cast<std::uint8_t>(floor_div_pow2(m, 7) & 1);  // /128
  Signature s;
  s.width = width;
  if (width == 2) {
    s.bits = static_cast<std::uint8_t>((sa << 1) | sb);
  } else {
    const auto sc =
        static_cast<std::uint8_t>(floor_div_pow2(m, 6) & 1);  // /64
    s.bits = static_cast<std::uint8_t>((sa << 2) | (sb << 1) | sc);
  }
  return s;
}

Signature group_signature(std::span<const std::int8_t> weights,
                          const GroupLayout& layout, std::int64_t group,
                          const MaskStream& mask, int width) {
  return binarize(masked_group_sum(weights, layout, group, mask), width);
}

}  // namespace radar::core
