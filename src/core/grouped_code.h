// GroupedCodeScheme: the src/codes/ baselines as first-class
// IntegritySchemes.
//
// The adapter reuses the same GroupLayout plumbing as RadarScheme (so a
// CRC baseline can be interleaved and skewed exactly like the paper's
// groups) but stores one `width`-bit code word per group instead of a
// 2/3-bit signature: CRC-7/10/13/16 (Koopman & Chakravarty, DSN'04),
// Fletcher-16, and Hamming SEC-DED check words. Groups are gathered into a
// fixed group_size-byte block (padding slots are zero, mirroring the
// checksum's treatment of padding), so every group of a layer — including
// the tail group — uses the same code instance.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "core/integrity_scheme.h"
#include "core/signature_store.h"

namespace radar::core {

/// One block code: a fixed-width check word over a group-sized block.
class BlockCode {
 public:
  virtual ~BlockCode() = default;
  /// Stored bits per group.
  virtual int code_bits() const = 0;
  /// Check word of one gathered group block.
  virtual std::uint32_t compute(std::span<const std::int8_t> block)
      const = 0;
};

/// Factory: codes whose geometry depends on the group size (e.g. Hamming
/// parity width) are built once the size is known.
using BlockCodeFactory =
    std::function<std::unique_ptr<BlockCode>(std::int64_t group_size)>;

// Factories for the registered baselines.
BlockCodeFactory crc_block_code(int width);       ///< 7, 10, 13 or 16
BlockCodeFactory fletcher16_block_code();
BlockCodeFactory hamming_secded_block_code();

class GroupedCodeScheme : public SchemeBase {
 public:
  /// `id` is the registry name the scheme reports (and packages store).
  GroupedCodeScheme(std::string id, const SchemeParams& params,
                    BlockCodeFactory make_code);

  const BlockCode& code() const { return *code_; }

  void attach(const quant::QuantizedModel& qm, bool sign = true) override;
  void scan_layer_into(const quant::QuantizedModel& qm, std::size_t layer,
                       std::vector<std::int64_t>& flagged,
                       ScanScratch& scratch) const override;
  void scan_layer_groups(const quant::QuantizedModel& qm, std::size_t layer,
                         std::span<const std::int64_t> groups,
                         std::vector<std::int64_t>& flagged,
                         ScanScratch& scratch) const override;
  void scan_layer_range_into(const quant::QuantizedModel& qm,
                             std::size_t layer, std::int64_t group_begin,
                             std::int64_t group_end,
                             std::vector<std::int64_t>& flagged,
                             ScanScratch& scratch) const override;
  bool supports_range_scan() const override { return true; }
  void resign_layer(const quant::QuantizedModel& qm,
                    std::size_t layer) override;
  std::int64_t signature_storage_bytes() const override;
  std::vector<std::vector<std::uint8_t>> export_golden() const override;
  void import_golden(std::vector<std::vector<std::uint8_t>> packed) override;

 private:
  /// Gather group `g` of `layer` into a zero-padded group_size block.
  void gather(const quant::QuantizedModel& qm, std::size_t layer,
              std::int64_t group, std::vector<std::int8_t>& block) const;

  BlockCodeFactory make_code_;
  std::unique_ptr<BlockCode> code_;  ///< built on attach
  std::vector<PackedWordStore> golden_;
};

}  // namespace radar::core
