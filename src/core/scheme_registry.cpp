#include "core/scheme_registry.h"

#include <algorithm>

#include "core/grouped_code.h"
#include "core/scheme.h"

namespace radar::core {

SchemeRegistry::SchemeRegistry() {
  register_scheme("radar2", [](const SchemeParams& p) {
    return std::make_unique<RadarScheme>(p, 2);
  });
  register_scheme("radar3", [](const SchemeParams& p) {
    return std::make_unique<RadarScheme>(p, 3);
  });
  for (const int width : {7, 10, 13, 16}) {
    register_scheme("crc" + std::to_string(width),
                    [width](const SchemeParams& p) {
                      return std::make_unique<GroupedCodeScheme>(
                          "crc" + std::to_string(width), p,
                          crc_block_code(width));
                    });
  }
  register_scheme("fletcher", [](const SchemeParams& p) {
    return std::make_unique<GroupedCodeScheme>("fletcher", p,
                                               fletcher16_block_code());
  });
  register_scheme("hamming-secded", [](const SchemeParams& p) {
    return std::make_unique<GroupedCodeScheme>("hamming-secded", p,
                                               hamming_secded_block_code());
  });
}

SchemeRegistry& SchemeRegistry::instance() {
  static SchemeRegistry registry;
  return registry;
}

void SchemeRegistry::register_scheme(const std::string& id,
                                     Factory factory) {
  RADAR_REQUIRE(!id.empty(), "empty scheme id");
  RADAR_REQUIRE(factory != nullptr, "null scheme factory");
  for (auto& [name, f] : factories_) {
    if (name == id) {
      f = std::move(factory);
      return;
    }
  }
  factories_.emplace_back(id, std::move(factory));
}

bool SchemeRegistry::contains(const std::string& id) const {
  return std::any_of(factories_.begin(), factories_.end(),
                     [&](const auto& e) { return e.first == id; });
}

std::unique_ptr<IntegrityScheme> SchemeRegistry::create(
    const std::string& id, const SchemeParams& params) const {
  for (const auto& [name, factory] : factories_) {
    if (name == id) return factory(params);
  }
  std::string known;
  for (const auto& i : ids()) known += (known.empty() ? "" : ", ") + i;
  throw InvalidArgument("unknown scheme id \"" + id + "\" (registered: " +
                        known + ")");
}

std::vector<std::string> SchemeRegistry::ids() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace radar::core
