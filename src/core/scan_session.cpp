#include "core/scan_session.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace radar::core {

ScanSession::ScanSession(const IntegrityScheme& scheme, std::size_t threads)
    : scheme_(&scheme),
      threads_(threads == 0 ? std::max<std::size_t>(
                                  1, std::thread::hardware_concurrency())
                            : threads) {}

ThreadPool* ScanSession::pool() const {
  if (threads_ == 1) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads_);
  return pool_.get();
}

void ScanSession::ensure_scratch(std::size_t num_layers) const {
  if (scratch_.size() < num_layers) scratch_.resize(num_layers);
  if (dirty_groups_.size() < num_layers) dirty_groups_.resize(num_layers);
}

DetectionReport ScanSession::scan(const quant::QuantizedModel& qm) const {
  DetectionReport report;
  scan_into(qm, report);
  return report;
}

void ScanSession::scan_into(const quant::QuantizedModel& qm,
                            DetectionReport& out) const {
  RADAR_REQUIRE(scheme_->attached(), "scan before attach");
  RADAR_REQUIRE(scheme_->num_layers() == qm.num_layers(),
                "scheme not attached to this model");
  ensure_scratch(qm.num_layers());
  out.flagged.resize(qm.num_layers());
  ThreadPool* p = pool();
  if (p == nullptr) {
    for (std::size_t li = 0; li < qm.num_layers(); ++li)
      scheme_->scan_layer_into(qm, li, out.flagged[li], scratch_[li]);
    return;
  }
  // One work item per layer; the first exception (if any) is rethrown on
  // the calling thread after the pool drains.
  std::exception_ptr error;
  std::atomic<bool> failed{false};
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    p->submit([this, &qm, &out, &error, &failed, li] {
      try {
        scheme_->scan_layer_into(qm, li, out.flagged[li], scratch_[li]);
      } catch (...) {
        if (!failed.exchange(true)) error = std::current_exception();
      }
    });
  }
  p->wait();
  if (error) std::rethrow_exception(error);
}

void ScanSession::scan_dirty_into(const quant::QuantizedModel& qm,
                                  DetectionReport& out) const {
  RADAR_REQUIRE(scheme_->attached(), "scan before attach");
  RADAR_REQUIRE(scheme_->num_layers() == qm.num_layers(),
                "scheme not attached to this model");
  if (!qm.dirty_tracking()) {
    scan_into(qm, out);  // no log — the full scan is the only safe answer
    return;
  }
  ensure_scratch(qm.num_layers());
  for (std::size_t li = 0; li < qm.num_layers(); ++li)
    dirty_groups_[li].clear();
  // Map each recorded write to its checksum group through the layer's
  // layout (group_of inverts interleave + skew in O(1)).
  for (const quant::DirtyWrite& w : qm.dirty_writes())
    dirty_groups_[w.layer].push_back(
        scheme_->layout(w.layer).group_of(w.index));
  std::int64_t total_dirty = 0;
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    auto& g = dirty_groups_[li];
    std::sort(g.begin(), g.end());
    g.erase(std::unique(g.begin(), g.end()), g.end());
    total_dirty += static_cast<std::int64_t>(g.size());
  }
  if (static_cast<double>(total_dirty) >
      full_scan_threshold_ * static_cast<double>(scheme_->total_groups())) {
    scan_into(qm, out);
    return;
  }
  out.flagged.resize(qm.num_layers());
  // Dirt is usually concentrated in a handful of layers; narrow scans are
  // cheap enough that fanning them over the pool would cost more than it
  // saves, so the incremental path always runs inline.
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    if (dirty_groups_[li].empty()) {
      out.flagged[li].clear();  // untouched since baseline => still clean
      continue;
    }
    scheme_->scan_layer_groups(qm, li, dirty_groups_[li], out.flagged[li],
                               scratch_[li]);
  }
}

}  // namespace radar::core
