#include "core/scan_session.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace radar::core {

namespace {
/// Byte-range sharding tunables: aim for a few shards per worker so the
/// pool can rebalance, but never shards so small that per-item overhead
/// dominates the kernel.
constexpr std::int64_t kShardsPerThread = 4;
constexpr std::int64_t kMinShardBytes = 4096;
}  // namespace

ScanSession::ScanSession(const IntegrityScheme& scheme, std::size_t threads)
    : scheme_(&scheme),
      threads_(threads == 0 ? std::max<std::size_t>(
                                  1, std::thread::hardware_concurrency())
                            : threads),
      effective_workers_(std::min(
          threads_,
          std::max<std::size_t>(1, std::thread::hardware_concurrency()))) {}

ThreadPool* ScanSession::pool() const {
  if (effective_workers_ == 1) return nullptr;
  if (pool_ == nullptr)
    pool_ = std::make_unique<ThreadPool>(effective_workers_);
  return pool_.get();
}

void ScanSession::ensure_scratch(std::size_t num_layers) const {
  if (scratch_.size() < num_layers) scratch_.resize(num_layers);
  if (dirty_groups_.size() < num_layers) dirty_groups_.resize(num_layers);
}

DetectionReport ScanSession::scan(const quant::QuantizedModel& qm) const {
  DetectionReport report;
  scan_into(qm, report);
  return report;
}

void ScanSession::plan_shards(const quant::QuantizedModel& qm) const {
  plan_.clear();
  const std::int64_t total = qm.total_weights();
  const std::int64_t target =
      shard_bytes_ > 0
          ? shard_bytes_
          : std::max<std::int64_t>(
                kMinShardBytes,
                total / (static_cast<std::int64_t>(effective_workers_) *
                         kShardsPerThread));
  // A scheme whose range scan is a full-layer fallback must not have its
  // layers split — each extra shard would rescan the whole layer.
  const bool splittable = scheme_->supports_range_scan();
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    const GroupLayout& layout = scheme_->layout(li);
    const std::int64_t nw = layout.num_weights();
    const std::int64_t ng = layout.num_groups();
    // Shard count proportional to this layer's bytes, split as evenly as
    // possible over its groups (a group is the atomic scan unit).
    const std::int64_t chunks =
        splittable ? std::max<std::int64_t>(
                         1, std::min(ng, (nw + target - 1) / target))
                   : 1;
    const std::int64_t per = (ng + chunks - 1) / chunks;
    for (std::int64_t b = 0; b < ng; b += per)
      plan_.push_back({li, b, std::min(b + per, ng)});
  }
  if (shard_slots_.size() < plan_.size()) shard_slots_.resize(plan_.size());
}

void ScanSession::scan_sharded(const quant::QuantizedModel& qm,
                               DetectionReport& out, ThreadPool* pool) const {
  plan_shards(qm);
  // Workers pull shards off a shared atomic index: one submitted task per
  // worker instead of one per shard, so the pool's queue mutex is touched
  // O(workers) times per scan rather than O(shards) — at the old
  // one-task-per-shard granularity the lock/wake churn rivalled the
  // millisecond-scale shard kernels themselves.
  std::atomic<std::size_t> next{0};
  const auto run_shard = [this, &qm](std::size_t si) {
    const Shard& sh = plan_[si];
    ShardSlot& slot = shard_slots_[si];
    // A shard covering the whole layer takes the full-layer kernel
    // (identical flags; skips the range plumbing for schemes without
    // a native range path).
    if (sh.begin == 0 && sh.end == scheme_->layout(sh.layer).num_groups())
      scheme_->scan_layer_into(qm, sh.layer, slot.flags, slot.scratch);
    else
      scheme_->scan_layer_range_into(qm, sh.layer, sh.begin, sh.end,
                                     slot.flags, slot.scratch);
  };
  const auto drain = [this, &next, &run_shard] {
    for (std::size_t si = next.fetch_add(1, std::memory_order_relaxed);
         si < plan_.size();
         si = next.fetch_add(1, std::memory_order_relaxed))
      run_shard(si);
  };
  if (pool == nullptr) {
    // Clamped to one core: drain every shard inline. Same plan, same
    // slots, same merge — and no thread handoff for hardware that cannot
    // overlap the work anyway.
    drain();
  } else {
    std::exception_ptr error;
    std::atomic<bool> failed{false};
    for (std::size_t w = 0; w < pool->size(); ++w) {
      pool->submit([&drain, &error, &failed] {
        try {
          drain();
        } catch (...) {
          if (!failed.exchange(true)) error = std::current_exception();
        }
      });
    }
    pool->wait();
    if (error) std::rethrow_exception(error);
  }
  // Deterministic merge: shards of a layer appear in ascending group
  // order in the plan, so concatenation reproduces the serial flag list.
  for (auto& f : out.flagged) f.clear();
  for (std::size_t si = 0; si < plan_.size(); ++si) {
    auto& dst = out.flagged[plan_[si].layer];
    dst.insert(dst.end(), shard_slots_[si].flags.begin(),
               shard_slots_[si].flags.end());
  }
}

void ScanSession::scan_by_layer(const quant::QuantizedModel& qm,
                                DetectionReport& out,
                                ThreadPool& pool) const {
  // Legacy partitioning: one work item per layer; the first exception
  // (if any) is rethrown on the calling thread after the pool drains.
  std::exception_ptr error;
  std::atomic<bool> failed{false};
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    pool.submit([this, &qm, &out, &error, &failed, li] {
      try {
        scheme_->scan_layer_into(qm, li, out.flagged[li], scratch_[li]);
      } catch (...) {
        if (!failed.exchange(true)) error = std::current_exception();
      }
    });
  }
  pool.wait();
  if (error) std::rethrow_exception(error);
}

void ScanSession::scan_into(const quant::QuantizedModel& qm,
                            DetectionReport& out) const {
  RADAR_REQUIRE(scheme_->attached(), "scan before attach");
  RADAR_REQUIRE(scheme_->num_layers() == qm.num_layers(),
                "scheme not attached to this model");
  ensure_scratch(qm.num_layers());
  out.flagged.resize(qm.num_layers());
  ThreadPool* p = pool();
  if (threads_ > 1 && sharding_ == Sharding::kByteRange) {
    // The sharded path also serves pool-less (clamped) sessions: the
    // plan and merge are part of the session's contract, only the
    // draining degenerates to inline.
    scan_sharded(qm, out, p);
    return;
  }
  if (p == nullptr) {
    for (std::size_t li = 0; li < qm.num_layers(); ++li)
      scheme_->scan_layer_into(qm, li, out.flagged[li], scratch_[li]);
    return;
  }
  scan_by_layer(qm, out, *p);
}

void ScanSession::scan_dirty_into(const quant::QuantizedModel& qm,
                                  DetectionReport& out) const {
  RADAR_REQUIRE(scheme_->attached(), "scan before attach");
  RADAR_REQUIRE(scheme_->num_layers() == qm.num_layers(),
                "scheme not attached to this model");
  if (!qm.dirty_tracking()) {
    scan_into(qm, out);  // no log — the full scan is the only safe answer
    return;
  }
  ensure_scratch(qm.num_layers());
  for (std::size_t li = 0; li < qm.num_layers(); ++li)
    dirty_groups_[li].clear();
  // Map each recorded write to its checksum group through the layer's
  // layout (group_of inverts interleave + skew in O(1)).
  for (const quant::DirtyWrite& w : qm.dirty_writes())
    dirty_groups_[w.layer].push_back(
        scheme_->layout(w.layer).group_of(w.index));
  std::int64_t total_dirty = 0;
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    auto& g = dirty_groups_[li];
    std::sort(g.begin(), g.end());
    g.erase(std::unique(g.begin(), g.end()), g.end());
    total_dirty += static_cast<std::int64_t>(g.size());
  }
  if (static_cast<double>(total_dirty) >
      full_scan_threshold_ * static_cast<double>(scheme_->total_groups())) {
    scan_into(qm, out);
    return;
  }
  out.flagged.resize(qm.num_layers());
  // Dirt is usually concentrated in a handful of layers; narrow scans are
  // cheap enough that fanning them over the pool would cost more than it
  // saves, so the incremental path always runs inline.
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    if (dirty_groups_[li].empty()) {
      out.flagged[li].clear();  // untouched since baseline => still clean
      continue;
    }
    scheme_->scan_layer_groups(qm, li, dirty_groups_[li], out.flagged[li],
                               scratch_[li]);
  }
}

}  // namespace radar::core
