#include "core/scan_session.h"

#include <atomic>
#include <exception>

namespace radar::core {

ScanSession::ScanSession(const IntegrityScheme& scheme, std::size_t threads)
    : scheme_(&scheme) {
  if (threads != 1) pool_ = std::make_unique<ThreadPool>(threads);
}

DetectionReport ScanSession::scan(const quant::QuantizedModel& qm) const {
  RADAR_REQUIRE(scheme_->attached(), "scan before attach");
  RADAR_REQUIRE(scheme_->num_layers() == qm.num_layers(),
                "scheme not attached to this model");
  DetectionReport report;
  report.flagged.resize(qm.num_layers());
  if (!pool_) {
    for (std::size_t li = 0; li < qm.num_layers(); ++li)
      report.flagged[li] = scheme_->scan_layer(qm, li);
    return report;
  }
  // One work item per layer; the first exception (if any) is rethrown on
  // the calling thread after the pool drains.
  std::exception_ptr error;
  std::atomic<bool> failed{false};
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    pool_->submit([this, &qm, &report, &error, &failed, li] {
      try {
        report.flagged[li] = scheme_->scan_layer(qm, li);
      } catch (...) {
        if (!failed.exchange(true)) error = std::current_exception();
      }
    });
  }
  pool_->wait();
  if (error) std::rethrow_exception(error);
  return report;
}

}  // namespace radar::core
