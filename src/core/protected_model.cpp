#include "core/protected_model.h"

namespace radar::core {

void ProtectedModel::set_scan_threads(std::size_t threads) {
  session_ = threads == 1 ? nullptr
                          : std::make_unique<ScanSession>(*scheme_, threads);
}

DetectionReport ProtectedModel::check_and_recover() {
  ++scans_;
  DetectionReport report =
      session_ ? session_->scan(*qm_) : scheme_->scan(*qm_);
  if (report.attack_detected()) {
    ++detections_;
    groups_recovered_ += report.num_flagged_groups();
    if (alarm_) alarm_(report);
    scheme_->recover(*qm_, report, policy_);
    // Zeroed groups change the weight stream: re-sign them so the next
    // scan treats the recovered state as golden (the paper stores
    // signatures of the deployed weights; zeroed groups are the new
    // deployed state until a clean reload).
    if (policy_ == RecoveryPolicy::kZeroOut) scheme_->resign(*qm_);
  }
  return report;
}

nn::Tensor ProtectedModel::forward(const nn::Tensor& x) {
  check_and_recover();
  return qm_->forward(x);
}

const std::vector<std::vector<std::size_t>>& ProtectedModel::stage_map() {
  if (stage_map_built_) return stage_map_;
  nn::Sequential& net = qm_->network().net();
  stage_map_.assign(net.size(), {});
  for (std::size_t stage = 0; stage < net.size(); ++stage) {
    std::vector<nn::NamedParam> params;
    net.child(stage).collect_params("", params);
    for (const auto& np : params) {
      for (std::size_t qi = 0; qi < qm_->num_layers(); ++qi) {
        if (qm_->layer(qi).param == np.param)
          stage_map_[stage].push_back(qi);
      }
    }
  }
  stage_map_built_ = true;
  return stage_map_;
}

bool ProtectedModel::check_layer(std::size_t qlayer) {
  const auto flagged = scheme_->scan_layer(*qm_, qlayer);
  if (flagged.empty()) return false;
  DetectionReport report;
  report.flagged.resize(qm_->num_layers());
  report.flagged[qlayer] = flagged;
  ++detections_;
  groups_recovered_ += report.num_flagged_groups();
  if (alarm_) alarm_(report);
  scheme_->recover(*qm_, report, policy_);
  // Re-sign only this layer: other layers have not been scanned yet on
  // this fetch pass and must not have tampered state blessed as golden.
  if (policy_ == RecoveryPolicy::kZeroOut) scheme_->resign_layer(*qm_, qlayer);
  return true;
}

nn::Tensor ProtectedModel::forward_layerwise(const nn::Tensor& x) {
  ++scans_;
  const auto& map = stage_map();
  nn::Sequential& net = qm_->network().net();
  nn::Tensor cur = x;
  for (std::size_t stage = 0; stage < net.size(); ++stage) {
    // Verify every weight tensor this stage will fetch, then execute it.
    for (const std::size_t qi : map[stage]) check_layer(qi);
    cur = net.child(stage).forward(cur, nn::Mode::kEval);
  }
  return cur;
}

}  // namespace radar::core
