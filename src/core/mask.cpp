#include "core/mask.h"

#include "common/rng.h"

namespace radar::core {

namespace {
/// splitmix64 finalizer — a cheap, well-mixed keyed PRF for mask bits.
std::uint64_t mix64(std::uint64_t x) { return splitmix64(x); }
}  // namespace

bool MaskStream::bit(std::int64_t position) const {
  if (expansion_ == Expansion::kRepeat) {
    return (key_ >> (position % 16)) & 1u;
  }
  const std::uint64_t v =
      mix64((static_cast<std::uint64_t>(key_) << 48) ^
            static_cast<std::uint64_t>(position));
  return v & 1u;
}

std::uint16_t MaskStream::derive_layer_key(std::uint64_t master_seed,
                                           std::size_t layer) {
  return static_cast<std::uint16_t>(
      mix64(master_seed ^ (0xA5A5ULL * (layer + 1))) & 0xFFFF);
}

}  // namespace radar::core
