// ScanSession: whole-model scans batched across layers on a thread pool.
//
// A scan of an N-layer model is N independent per-layer work items (each
// scheme's scan_layer touches only that layer's weights and golden codes),
// so the session fans them out over a radar::ThreadPool and merges the
// per-layer flag lists into one DetectionReport. Results are bit-identical
// to the serial scan: each work item writes its own report slot and the
// per-layer flag order is deterministic. `threads == 1` runs inline with
// no pool; `threads == 0` uses one thread per hardware core.
#pragma once

#include <cstddef>
#include <memory>

#include "common/thread_pool.h"
#include "core/integrity_scheme.h"

namespace radar::core {

class ScanSession {
 public:
  /// The scheme must stay alive (and attached) for the session lifetime.
  explicit ScanSession(const IntegrityScheme& scheme,
                       std::size_t threads = 0);

  std::size_t threads() const { return pool_ ? pool_->size() : 1; }

  /// Parallel whole-model scan; equals scheme.scan(qm) bit for bit.
  DetectionReport scan(const quant::QuantizedModel& qm) const;

 private:
  const IntegrityScheme* scheme_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when running serially
};

}  // namespace radar::core
