// ScanSession: whole-model scans batched over a thread pool with
// byte-range work sharding, plus an incremental dirty-group mode.
//
// A whole-model scan is partitioned into shards of roughly equal weight
// *bytes* — contiguous group ranges of a layer, split through the
// scheme's scan_layer_range_into primitive — rather than one work item
// per layer. Conv layer sizes span ~two orders of magnitude, so
// layer-granular partitioning is limited by its largest layer (one
// thread finishes last while the rest idle); byte-range shards
// load-balance regardless of the layer size distribution. Results are
// bit-identical to the serial scan: shards of a layer cover disjoint
// ascending group ranges, each writes its own slot, and the merge
// concatenates in plan order. `threads == 1` runs inline with no pool;
// `threads == 0` uses one thread per hardware core. Sharding::kLayer
// restores the legacy one-item-per-layer fanout (kept for benchmarking
// and differential tests).
//
// The session owns per-shard and per-layer scratch; scan_into /
// scan_dirty_into reuse the caller's DetectionReport vectors, and the
// shard plan is rebuilt into cached vectors, so the steady-state scan
// loop performs zero allocations. A session must not be scanned from two
// threads at once (the scratch would race); campaign workers each hold
// their own session.
//
// scan_dirty_into() is the incremental entry point: it maps the model's
// DirtyWrite log to affected groups through each layer's GroupLayout
// (covering interleave and skew via group_of) and rescans only those.
// Contract: the golden codes must describe the model state at the last
// dirty baseline (clear_dirty / restore / snapshot point) — then the
// report equals a full scan bit for bit, at O(dirty * G) cost. When the
// dirty-group count exceeds `full_scan_threshold` of all groups (or
// tracking is off), it falls back to the full scan.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/integrity_scheme.h"

namespace radar::core {

class ScanSession {
 public:
  /// How full scans are partitioned across pool workers.
  enum class Sharding {
    kLayer,      ///< legacy: one work item per layer
    kByteRange,  ///< equal-byte group-range shards (default)
  };

  /// The scheme must stay alive (and attached) for the session lifetime.
  explicit ScanSession(const IntegrityScheme& scheme,
                       std::size_t threads = 0);

  std::size_t threads() const { return threads_; }

  /// Workers that will actually run: `threads` clamped to the hardware
  /// core count. Oversubscribing a scan is pure loss — the kernels are
  /// compute/bandwidth bound with zero blocking, so extra threads only
  /// add scheduling churn (the t1->t8 throughput collapse on small CI
  /// boxes). Requesting 8 threads on a 1-core machine therefore scans
  /// inline; the shard plan, the merge, and the report are unaffected.
  std::size_t effective_workers() const { return effective_workers_; }

  void set_sharding(Sharding s) { sharding_ = s; }
  Sharding sharding() const { return sharding_; }

  /// Override the target shard size in bytes (0 = automatic: weight bytes
  /// / (threads * 4), floored at 4 KiB). Exposed for benches and tests;
  /// the report stays bit-identical for any value.
  void set_shard_bytes(std::int64_t bytes) { shard_bytes_ = bytes; }
  std::int64_t shard_bytes() const { return shard_bytes_; }

  /// Parallel whole-model scan; equals scheme.scan(qm) bit for bit.
  DetectionReport scan(const quant::QuantizedModel& qm) const;

  /// Full scan into a reusable report (vectors cleared, capacity kept).
  void scan_into(const quant::QuantizedModel& qm,
                 DetectionReport& out) const;

  /// Incremental scan of the groups touched since the model's last dirty
  /// baseline; bit-identical to scan_into under the contract above.
  void scan_dirty_into(const quant::QuantizedModel& qm,
                       DetectionReport& out) const;

  /// Dirty-group fraction above which scan_dirty_into degenerates to a
  /// full scan (narrow scans of nearly everything are slower than one
  /// streaming pass). Default 0.25.
  void set_full_scan_threshold(double fraction) {
    full_scan_threshold_ = fraction;
  }
  double full_scan_threshold() const { return full_scan_threshold_; }

  /// The byte-range shards the last pooled kByteRange scan used (exposed
  /// for tests and benches; empty before the first such scan).
  std::size_t last_shard_count() const { return plan_.size(); }

 private:
  /// One unit of full-scan work: groups [begin, end) of one layer.
  struct Shard {
    std::size_t layer;
    std::int64_t begin, end;
  };

  /// Per-shard output slot. Cache-line aligned so two workers finishing
  /// adjacent shards never bounce one line between cores while they
  /// append flags / grow scratch (the headers of adjacent vectors in the
  /// old parallel-arrays layout shared lines).
  struct alignas(64) ShardSlot {
    std::vector<std::int64_t> flags;
    ScanScratch scratch;
  };

  void ensure_scratch(std::size_t num_layers) const;
  /// Rebuild plan_ as equal-byte shards for the current model/scheme
  /// (reuses vector capacity; no allocations at steady state).
  void plan_shards(const quant::QuantizedModel& qm) const;
  /// Byte-range scan: workers drain shards off an atomic index (one
  /// submit per worker, not per shard). `pool == nullptr` drains inline.
  void scan_sharded(const quant::QuantizedModel& qm,
                    DetectionReport& out, ThreadPool* pool) const;
  void scan_by_layer(const quant::QuantizedModel& qm,
                     DetectionReport& out, ThreadPool& pool) const;
  /// The pool, spawned on first parallel use (null when the effective
  /// worker count is 1): serial sessions — and oversubscribed sessions
  /// clamped to one core — never pay for worker threads.
  ThreadPool* pool() const;

  const IntegrityScheme* scheme_;
  std::size_t threads_;
  std::size_t effective_workers_;
  Sharding sharding_ = Sharding::kByteRange;
  std::int64_t shard_bytes_ = 0;  ///< 0 = automatic
  mutable std::unique_ptr<ThreadPool> pool_;
  double full_scan_threshold_ = 0.25;
  mutable std::vector<ScanScratch> scratch_;  ///< one per layer
  mutable std::vector<std::vector<std::int64_t>> dirty_groups_;
  mutable std::vector<Shard> plan_;
  mutable std::vector<ShardSlot> shard_slots_;  ///< one per shard
};

}  // namespace radar::core
