// ScanSession: whole-model scans batched across layers on a thread pool,
// with an incremental dirty-group mode.
//
// A scan of an N-layer model is N independent per-layer work items (each
// scheme's scan_layer touches only that layer's weights and golden codes),
// so the session fans them out over a radar::ThreadPool and merges the
// per-layer flag lists into one DetectionReport. Results are bit-identical
// to the serial scan: each work item writes its own report slot and the
// per-layer flag order is deterministic. `threads == 1` runs inline with
// no pool; `threads == 0` uses one thread per hardware core.
//
// The session owns one ScanScratch per layer (layer work items are
// disjoint, so this is pool-safe within a scan call), and scan_into /
// scan_dirty_into reuse the caller's DetectionReport vectors — the
// steady-state scan loop performs zero allocations. A session must not be
// scanned from two threads at once (the scratch would race); campaign
// workers each hold their own session.
//
// scan_dirty_into() is the incremental entry point: it maps the model's
// DirtyWrite log to affected groups through each layer's GroupLayout
// (covering interleave and skew via group_of) and rescans only those.
// Contract: the golden codes must describe the model state at the last
// dirty baseline (clear_dirty / restore / snapshot point) — then the
// report equals a full scan bit for bit, at O(dirty * G) cost. When the
// dirty-group count exceeds `full_scan_threshold` of all groups (or
// tracking is off), it falls back to the full scan.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/integrity_scheme.h"

namespace radar::core {

class ScanSession {
 public:
  /// The scheme must stay alive (and attached) for the session lifetime.
  explicit ScanSession(const IntegrityScheme& scheme,
                       std::size_t threads = 0);

  std::size_t threads() const { return threads_; }

  /// Parallel whole-model scan; equals scheme.scan(qm) bit for bit.
  DetectionReport scan(const quant::QuantizedModel& qm) const;

  /// Full scan into a reusable report (vectors cleared, capacity kept).
  void scan_into(const quant::QuantizedModel& qm,
                 DetectionReport& out) const;

  /// Incremental scan of the groups touched since the model's last dirty
  /// baseline; bit-identical to scan_into under the contract above.
  void scan_dirty_into(const quant::QuantizedModel& qm,
                       DetectionReport& out) const;

  /// Dirty-group fraction above which scan_dirty_into degenerates to a
  /// full scan (narrow scans of nearly everything are slower than one
  /// streaming pass). Default 0.25.
  void set_full_scan_threshold(double fraction) {
    full_scan_threshold_ = fraction;
  }
  double full_scan_threshold() const { return full_scan_threshold_; }

 private:
  void ensure_scratch(std::size_t num_layers) const;
  /// The pool, spawned on first parallel use (null when threads == 1):
  /// sessions that only ever run narrow incremental scans — which are
  /// always inline — never pay for worker threads.
  ThreadPool* pool() const;

  const IntegrityScheme* scheme_;
  std::size_t threads_;
  mutable std::unique_ptr<ThreadPool> pool_;
  double full_scan_threshold_ = 0.25;
  mutable std::vector<ScanScratch> scratch_;  ///< one per layer
  mutable std::vector<std::vector<std::int64_t>> dirty_groups_;
};

}  // namespace radar::core
