// IntegrityScheme: the scheme-agnostic protection API.
//
// Every weight-integrity code in this repo — the paper's 2/3-bit RADAR
// group signatures as well as the CRC / Fletcher / Hamming baselines it is
// compared against (Table V) — plugs into the run-time path through this
// interface: attach to a quantized model, scan (whole model or one layer),
// recover flagged groups, re-sign after authorized updates, and round-trip
// the golden codes through a deployment package. SchemeBase supplies the
// plumbing every grouped code shares: per-layer GroupLayouts, the clean
// snapshot backing kReloadClean recovery, and the layer-loop defaults for
// scan / resign. Concrete schemes are created by name through
// SchemeRegistry; whole-model scans parallelize through ScanSession.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/interleave.h"
#include "core/mask.h"
#include "core/scan_scratch.h"
#include "quant/qmodel.h"

namespace radar::core {

/// Upper bounds every SchemeParams consumer (package loader, campaign
/// spec validation) enforces before building layouts: a corrupt or
/// hostile group size would otherwise drive the per-group slot loops
/// through astronomically many iterations.
constexpr std::int64_t kMaxGroupSize = std::int64_t{1} << 24;
constexpr std::int64_t kMaxSkew = std::int64_t{1} << 20;

/// Scheme-agnostic tunables, serialized into deployment packages. Fields a
/// scheme does not use (e.g. `expansion` for CRC) are carried but ignored.
struct SchemeParams {
  std::int64_t group_size = 512;
  bool interleave = true;
  std::int64_t skew = 3;          ///< paper uses an offset of 3
  MaskStream::Expansion expansion = MaskStream::Expansion::kPrf;
  std::uint64_t master_key = 0xC0FFEE5EC0DEULL;
};

/// What to do with a flagged group.
enum class RecoveryPolicy {
  kZeroOut,      ///< paper: set all weights of the group to zero
  kReloadClean,  ///< halt & reload a clean copy (costlier, exact)
};

/// Result of one scan over all layers.
struct DetectionReport {
  /// Flagged group ids per layer, sorted ascending.
  std::vector<std::vector<std::int64_t>> flagged;

  bool attack_detected() const {
    for (const auto& f : flagged)
      if (!f.empty()) return true;
    return false;
  }
  std::int64_t num_flagged_groups() const {
    std::int64_t n = 0;
    for (const auto& f : flagged) n += static_cast<std::int64_t>(f.size());
    return n;
  }
  bool is_flagged(std::size_t layer, std::int64_t group) const;
};

/// Runtime-polymorphic protection scheme. See the file comment for the
/// lifecycle; all scan/recover entry points require attach() first.
class IntegrityScheme {
 public:
  virtual ~IntegrityScheme() = default;

  /// Registry id this scheme was created under ("radar2", "crc13", ...).
  virtual const std::string& id() const = 0;
  /// The parameters the scheme was built with (round-tripped by packages).
  virtual const SchemeParams& params() const = 0;

  /// Build layouts / golden codes for `qm`; also snapshots the clean
  /// weights for the kReloadClean recovery policy. Pass `sign = false`
  /// when the golden codes will be replaced via import_golden() anyway
  /// (package loads), skipping one full code computation.
  virtual void attach(const quant::QuantizedModel& qm, bool sign = true) = 0;
  virtual bool attached() const = 0;
  virtual std::size_t num_layers() const = 0;
  virtual const GroupLayout& layout(std::size_t layer) const = 0;

  /// Recompute every group's code and compare with the golden ones.
  virtual DetectionReport scan(const quant::QuantizedModel& qm) const = 0;

  /// Scan a single layer (run-time per-layer embedding, §IV); returns the
  /// flagged group ids, sorted ascending.
  virtual std::vector<std::int64_t> scan_layer(
      const quant::QuantizedModel& qm, std::size_t layer) const = 0;

  /// Zero-allocation scan_layer: fills `flagged` (cleared first, capacity
  /// kept) using `scratch` for working memory. This is the primitive the
  /// run-time scan loop calls; SchemeBase derives scan_layer from it.
  virtual void scan_layer_into(const quant::QuantizedModel& qm,
                               std::size_t layer,
                               std::vector<std::int64_t>& flagged,
                               ScanScratch& scratch) const = 0;

  /// Narrow scan: recheck only `groups` (sorted ascending, deduplicated)
  /// of one layer, filling `flagged` with the mismatching subset. When
  /// every group outside `groups` is known to still hold the weights the
  /// golden codes were computed from, the result equals scan_layer bit for
  /// bit at O(|groups| * G) cost — the incremental-scan primitive.
  /// Default recomputes the full layer and intersects.
  virtual void scan_layer_groups(const quant::QuantizedModel& qm,
                                 std::size_t layer,
                                 std::span<const std::int64_t> groups,
                                 std::vector<std::int64_t>& flagged,
                                 ScanScratch& scratch) const;

  /// Range scan: recompute only groups [group_begin, group_end) of one
  /// layer, filling `flagged` (cleared first) with the mismatching ids in
  /// that range. This is the byte-range sharding primitive ScanSession
  /// partitions whole-model scans with: the result equals the
  /// corresponding slice of scan_layer_into bit for bit, at cost
  /// proportional to the bytes the range covers. Default recomputes the
  /// full layer and trims — correct, but rangeless schemes gain no
  /// sharding speedup.
  virtual void scan_layer_range_into(const quant::QuantizedModel& qm,
                                     std::size_t layer,
                                     std::int64_t group_begin,
                                     std::int64_t group_end,
                                     std::vector<std::int64_t>& flagged,
                                     ScanScratch& scratch) const;

  /// True when scan_layer_range_into costs O(range bytes) rather than
  /// falling back to a full-layer scan + trim. ScanSession only splits a
  /// layer into byte-range shards for schemes that say so — splitting a
  /// trim-fallback scheme would multiply total work by the shard count.
  virtual bool supports_range_scan() const { return false; }

  /// Apply recovery to every flagged group.
  virtual void recover(quant::QuantizedModel& qm,
                       const DetectionReport& report,
                       RecoveryPolicy policy = RecoveryPolicy::kZeroOut)
      const = 0;

  /// Recompute golden codes (after an authorized weight update).
  virtual void resign(const quant::QuantizedModel& qm) = 0;
  /// Recompute golden codes of a single layer only.
  virtual void resign_layer(const quant::QuantizedModel& qm,
                            std::size_t layer) = 0;

  /// Total golden-code bytes across layers (paper Fig. 6 x-axis).
  virtual std::int64_t signature_storage_bytes() const = 0;
  /// Codes recomputed in one scan (equals total group count).
  virtual std::int64_t total_groups() const = 0;

  /// Export the packed golden codes (deployment artifact payload).
  virtual std::vector<std::vector<std::uint8_t>> export_golden() const = 0;
  /// Replace the golden codes with previously exported ones (e.g. loaded
  /// from a signed package). A subsequent scan then reveals any weight
  /// tampering that happened since the export.
  virtual void import_golden(
      std::vector<std::vector<std::uint8_t>> packed) = 0;

  /// Replace the clean weight copy backing kReloadClean recovery with an
  /// external arena blob — typically a read-only mmap of a deployment
  /// package's weight arena, making the golden copy zero-copy. `bytes`
  /// must have the attached model's arena geometry (same blob size and
  /// layer offsets); `holder` keeps the backing storage (file mapping)
  /// alive for the scheme's lifetime. The scheme trusts `bytes` for its
  /// whole lifetime: a file-backed source must stay immutable after
  /// installation (mappings track page-cache writes), so external
  /// sources belong on read-only provisioned storage.
  virtual void set_clean_source(std::shared_ptr<const void> holder,
                                std::span<const std::int8_t> bytes) = 0;

  /// Whole-arena view of the clean (golden) weight bytes backing
  /// kReloadClean — the owned attach-time snapshot or the external
  /// (mmap'd) source. Empty when no clean source is available. Lets a
  /// host byte-compare the live arena against the golden copy, catching
  /// corruption the scheme's codes cannot see (e.g. non-MSB flips under
  /// a 2-bit MSB signature).
  virtual std::span<const std::int8_t> clean_arena_bytes() const {
    return {};
  }
};

/// Shared plumbing of grouped schemes: per-layer GroupLayouts derived from
/// SchemeParams, the clean snapshot, and the layer-loop defaults.
/// Subclasses implement scan_layer_into (the zero-allocation path);
/// scan_layer is provided here as the allocating wrapper around it.
class SchemeBase : public IntegrityScheme {
 public:
  const std::string& id() const override { return id_; }
  const SchemeParams& params() const override { return params_; }
  bool attached() const override { return !layouts_.empty(); }
  std::size_t num_layers() const override { return layouts_.size(); }
  const GroupLayout& layout(std::size_t layer) const override {
    return layouts_.at(layer);
  }

  DetectionReport scan(const quant::QuantizedModel& qm) const override;
  std::vector<std::int64_t> scan_layer(const quant::QuantizedModel& qm,
                                       std::size_t layer) const override;
  void recover(quant::QuantizedModel& qm, const DetectionReport& report,
               RecoveryPolicy policy = RecoveryPolicy::kZeroOut)
      const override;
  void resign(const quant::QuantizedModel& qm) override;
  std::int64_t total_groups() const override;
  void set_clean_source(std::shared_ptr<const void> holder,
                        std::span<const std::int8_t> bytes) override;

  /// True when the kReloadClean copy is an external (e.g. mmap'd) source
  /// rather than an owned arena snapshot.
  bool clean_source_is_external() const { return clean_holder_ != nullptr; }

  std::span<const std::int8_t> clean_arena_bytes() const override {
    return clean_bytes_;
  }

  /// One-shot: tell the NEXT attach() not to capture the owned clean
  /// copy because the caller will install an external source via
  /// set_clean_source immediately afterwards (the package-mmap load
  /// path; skips one full-arena allocation + memcpy). Until that source
  /// arrives, kReloadClean recovery of a flagged group is rejected.
  void defer_clean_capture() { defer_clean_capture_ = true; }

 protected:
  SchemeBase(std::string id, const SchemeParams& params);

  /// Layout for one layer of `num_weights` weights per params().
  GroupLayout make_layout(std::int64_t num_weights) const;
  /// Rebuild layouts_ for every layer of `qm` and capture the clean
  /// weight copy (one arena memcpy).
  void attach_layouts(const quant::QuantizedModel& qm);

  /// Clean codes of layer `layer` (owned snapshot or external source).
  std::span<const std::int8_t> clean_span(std::size_t layer) const {
    RADAR_REQUIRE(!clean_bytes_.empty(),
                  "no clean weight source (deferred capture without "
                  "set_clean_source)");
    return clean_bytes_.subspan(
        static_cast<std::size_t>(clean_offsets_.at(layer).first),
        static_cast<std::size_t>(clean_offsets_.at(layer).second));
  }

  std::string id_;
  SchemeParams params_;
  std::vector<GroupLayout> layouts_;
  /// Per-layer (byte offset, size) into clean_bytes_ — the attached
  /// model's arena geometry.
  std::vector<std::pair<std::int64_t, std::int64_t>> clean_offsets_;
  std::int64_t clean_size_bytes_ = 0;
  quant::ArenaSnapshot clean_copy_;           ///< owned (attach path)
  std::shared_ptr<const void> clean_holder_;  ///< external lifetime (mmap)
  std::span<const std::int8_t> clean_bytes_;  ///< active whole-arena view
  bool defer_clean_capture_ = false;          ///< one-shot attach hint
};

/// Number of attack flips that land in groups flagged by `report` — the
/// paper's "detected bit-flips out of N" metric. Flips are (layer, index)
/// pairs.
std::int64_t count_detected_flips(
    const IntegrityScheme& scheme, const DetectionReport& report,
    const std::vector<std::pair<std::size_t, std::int64_t>>& flips);

}  // namespace radar::core
