// Packed golden-signature storage ("secure on-chip SRAM" in the paper).
//
// Signatures are 2 or 3 bits per group and are bit-packed; storage_bytes()
// is exactly the number the paper's Fig. 6 x-axis reports (5.6 KB for
// ResNet-18 at G = 512).
#pragma once

#include <cstdint>
#include <vector>

#include "core/checksum.h"

namespace radar::core {

class SignatureStore {
 public:
  SignatureStore() = default;
  SignatureStore(std::int64_t num_groups, int width);

  std::int64_t num_groups() const { return num_groups_; }
  int width() const { return width_; }

  void set(std::int64_t group, Signature s);
  Signature get(std::int64_t group) const;

  /// Bytes needed to hold all signatures (bit-packed, rounded up).
  std::int64_t storage_bytes() const {
    return (num_groups_ * width_ + 7) / 8;
  }

  /// Packed signature bytes (for serialization).
  const std::vector<std::uint8_t>& packed() const { return bits_; }
  /// Replace the packed bytes (must match storage_bytes()).
  void set_packed(std::vector<std::uint8_t> bytes);

  /// Storage for an arbitrary configuration without building a store.
  static std::int64_t storage_bytes_for(std::int64_t num_weights,
                                        std::int64_t group_size, int width) {
    const std::int64_t groups = (num_weights + group_size - 1) / group_size;
    return (groups * width + 7) / 8;
  }

 private:
  std::int64_t num_groups_ = 0;
  int width_ = 2;
  std::vector<std::uint8_t> bits_;
};

/// Bit-packed storage of one fixed-width code word per group, for the
/// wider baseline codes (CRC-7..CRC-16, Fletcher, Hamming SEC-DED check
/// words). Same packing discipline as SignatureStore but word-valued.
class PackedWordStore {
 public:
  PackedWordStore() = default;
  /// `width` in [1, 32] bits per group.
  PackedWordStore(std::int64_t num_groups, int width);

  std::int64_t num_groups() const { return num_groups_; }
  int width() const { return width_; }

  void set(std::int64_t group, std::uint32_t word);
  std::uint32_t get(std::int64_t group) const;

  /// Bytes needed to hold all words (bit-packed, rounded up).
  std::int64_t storage_bytes() const {
    return (num_groups_ * width_ + 7) / 8;
  }

  const std::vector<std::uint8_t>& packed() const { return bits_; }
  /// Replace the packed bytes (must match storage_bytes()).
  void set_packed(std::vector<std::uint8_t> bytes);

 private:
  std::int64_t num_groups_ = 0;
  int width_ = 0;
  std::vector<std::uint8_t> bits_;
};

}  // namespace radar::core
