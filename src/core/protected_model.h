// ProtectedModel: an IntegrityScheme embedded in the inference path
// (paper §IV/§V).
//
// Every inference first verifies the weight stream (as the paper does on
// each DRAM→cache fetch), recovers flagged groups, then runs the forward
// pass. Works with any registered scheme — RADAR signatures or the CRC /
// Fletcher / Hamming baselines. Counters expose how often scans,
// detections and recoveries happened, which the examples surface as a
// run-time security log. Whole-model scans optionally fan out across
// layers via ScanSession (set_scan_threads).
#pragma once

#include <cstdint>
#include <functional>

#include "core/integrity_scheme.h"
#include "core/scan_session.h"

namespace radar::core {

class ProtectedModel {
 public:
  /// Wraps (and holds references to) an attached scheme and model.
  ProtectedModel(quant::QuantizedModel& qm, IntegrityScheme& scheme,
                 RecoveryPolicy policy = RecoveryPolicy::kZeroOut)
      : qm_(&qm), scheme_(&scheme), policy_(policy) {
    RADAR_REQUIRE(scheme.attached(), "scheme must be attached first");
  }

  /// Verified inference: scan → (recover if needed) → forward.
  nn::Tensor forward(const nn::Tensor& x);

  /// The paper's per-layer embedding (§IV): each weight tensor is scanned
  /// immediately before the network stage that consumes it executes, so
  /// detection happens on the DRAM→cache fetch path rather than as a
  /// whole-model preamble. Functionally equivalent to forward() but with
  /// layer-granular detection latency.
  nn::Tensor forward_layerwise(const nn::Tensor& x);

  /// Scan + recover without running inference; returns the report.
  DetectionReport check_and_recover();

  /// Route whole-model scans through a ScanSession over `threads` worker
  /// threads (0 = hardware concurrency, 1 = back to serial scans).
  void set_scan_threads(std::size_t threads);

  // ---- telemetry ----
  std::int64_t scans() const { return scans_; }
  std::int64_t detections() const { return detections_; }
  std::int64_t groups_recovered() const { return groups_recovered_; }

  /// Invoked on every detection (before recovery), e.g. to raise an alarm.
  void set_alarm(std::function<void(const DetectionReport&)> alarm) {
    alarm_ = std::move(alarm);
  }

  quant::QuantizedModel& model() { return *qm_; }
  IntegrityScheme& scheme() { return *scheme_; }

 private:
  /// Quantized-layer indices consumed by each Sequential stage (built
  /// lazily on first forward_layerwise call).
  const std::vector<std::vector<std::size_t>>& stage_map();
  /// Scan + recover one quantized layer; returns true on detection.
  bool check_layer(std::size_t qlayer);

  quant::QuantizedModel* qm_;
  IntegrityScheme* scheme_;
  RecoveryPolicy policy_;
  std::unique_ptr<ScanSession> session_;  ///< null: serial whole-model scan
  std::function<void(const DetectionReport&)> alarm_;
  std::vector<std::vector<std::size_t>> stage_map_;
  bool stage_map_built_ = false;
  std::int64_t scans_ = 0;
  std::int64_t detections_ = 0;
  std::int64_t groups_recovered_ = 0;
};

}  // namespace radar::core
