// RadarPackage: the signed deployment artifact.
//
// Bundles everything a device needs to deploy a protected model: the int8
// weight tensors with their scales, the protection scheme's registry id
// and parameters (group size, interleave, skew, mask expansion — the
// master key itself is provisioned out of band), the golden codes, and a
// whole-file CRC-32. Loading rebuilds the scheme by name through
// SchemeRegistry, re-derives codes from the (possibly tampered) weights
// and compares them against the stored golden set, so any modification of
// the weight payload since signing is localized to the affected groups —
// the offline analogue of the run-time scan.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/integrity_scheme.h"

namespace radar::core {

/// Metadata of a package on disk.
struct PackageInfo {
  std::string model_name;
  std::int64_t total_weights = 0;
  std::size_t num_layers = 0;
  std::string scheme_id = "radar2";  ///< SchemeRegistry id
  SchemeParams params;
};

/// Result of a verified load.
struct PackageLoadReport {
  bool crc_ok = false;        ///< whole-file CRC-32 over the weight payload
  bool signatures_ok = false; ///< every group matches its golden code
  DetectionReport tamper;     ///< flagged groups when signatures_ok == false
  PackageInfo info;

  bool verified() const { return crc_ok && signatures_ok; }
};

/// Write the deployment package for a quantized model protected by an
/// attached scheme. `model_name` is free-form metadata.
void save_package(const std::string& path, const quant::QuantizedModel& qm,
                  const IntegrityScheme& scheme,
                  const std::string& model_name);

/// Read metadata only (no model required).
PackageInfo read_package_info(const std::string& path);

/// Load the package into `qm` (must have the same layer structure),
/// rebuild the stored scheme via SchemeRegistry into `scheme` (replacing
/// whatever it held) with the stored golden codes, then verify. The scan
/// fans out over `threads` workers (1 = serial; 0 = hardware concurrency).
/// Tampered groups are reported, not repaired — callers decide between
/// zero-out recovery and rejecting the artifact.
PackageLoadReport load_package(const std::string& path,
                               quant::QuantizedModel& qm,
                               std::unique_ptr<IntegrityScheme>& scheme,
                               std::size_t threads = 1);

}  // namespace radar::core
