// RadarPackage: the signed deployment artifact.
//
// Bundles everything a device needs to deploy a protected model: the int8
// weight arena with its layer table (name / byte offset / size / scale),
// the protection scheme's registry id and parameters (group size,
// interleave, skew, mask expansion — the master key itself is provisioned
// out of band), the golden codes, and a whole-file CRC-32. Loading
// rebuilds the scheme by name through SchemeRegistry, re-derives codes
// from the (possibly tampered) weights and compares them against the
// stored golden set, so any modification of the weight payload since
// signing is localized to the affected groups — the offline analogue of
// the run-time scan.
//
// Format v3 stores the weights as one contiguous 64-byte-aligned arena
// blob (the exact WeightArena geometry), preceded by the layer table:
// loading is a single blob copy, and the blob can instead be mmap'd
// read-only straight out of the file as the scheme's golden clean copy
// (kReloadClean recovery then reads from the page cache, zero-copy).
// v2 packages (per-layer vectors) load transparently.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/integrity_scheme.h"

namespace radar::core {

/// Current (write-side) package format; v2 remains loadable.
constexpr std::uint32_t kPackageFormatV2 = 2;
constexpr std::uint32_t kPackageFormatV3 = 3;

/// Metadata of a package on disk.
struct PackageInfo {
  std::string model_name;
  std::uint32_t format_version = kPackageFormatV3;
  std::int64_t total_weights = 0;
  std::int64_t arena_bytes = 0;  ///< blob size incl. padding (v3; derived for v2)
  std::size_t num_layers = 0;
  std::string scheme_id = "radar2";  ///< SchemeRegistry id
  SchemeParams params;
  /// Per-layer arena table (for v2 files the offsets are the ones a
  /// freshly built arena would assign — the shared geometry rule).
  std::vector<quant::ArenaLayer> layers;
};

/// Result of a verified load.
struct PackageLoadReport {
  bool crc_ok = false;        ///< whole-file CRC-32 over the weight payload
  bool signatures_ok = false; ///< every group matches its golden code
  bool golden_mmapped = false;  ///< clean copy served from the file mapping
  DetectionReport tamper;     ///< flagged groups when signatures_ok == false
  PackageInfo info;

  bool verified() const { return crc_ok && signatures_ok; }
};

/// Knobs of load_package.
struct PackageLoadOptions {
  std::size_t threads = 1;  ///< verify-scan workers (0 = hardware)
  /// Map the package's arena blob read-only and install it as the
  /// scheme's kReloadClean golden copy (v3 packages on platforms with
  /// mmap; silently falls back to the owned copy elsewhere). The mapped
  /// bytes are compared against the verified blob at load time, but a
  /// MAP_PRIVATE mapping tracks later writes to the file's page cache —
  /// the deployment contract is that the package lives on immutable
  /// (read-only provisioned) storage for as long as the scheme is live.
  /// On writable paths, leave this off and keep the owned clean copy.
  bool mmap_golden = false;
};

/// Write the deployment package for a quantized model protected by an
/// attached scheme. `model_name` is free-form metadata. `version` selects
/// the format (v3 default; v2 kept for migration tooling and tests).
void save_package(const std::string& path, const quant::QuantizedModel& qm,
                  const IntegrityScheme& scheme,
                  const std::string& model_name,
                  std::uint32_t version = kPackageFormatV3);

/// Read metadata only (no model required). Accepts v2 and v3.
PackageInfo read_package_info(const std::string& path);

/// A read-only mapping of a v3 package's arena blob. `holder` keeps the
/// pages alive; `bytes` is empty when the mapping was not possible.
struct MappedArena {
  std::shared_ptr<const void> holder;
  std::span<const std::int8_t> bytes;
  bool ok() const { return !bytes.empty(); }
};

/// Re-open a v3 package and map its arena blob read-only — the serve
/// layer's golden-copy *heal* path after a degraded mapping. Returns an
/// empty MappedArena (never throws) when the file is unreadable,
/// corrupt, v2, unaligned, or the platform lacks mmap. The bytes are NOT
/// verified here; callers must check them (CRC sidecar, signature scan)
/// before trusting them as a clean source.
MappedArena map_package_arena(const std::string& path);

/// Load the package into `qm` (must have the same layer structure),
/// rebuild the stored scheme via SchemeRegistry into `scheme` (replacing
/// whatever it held) with the stored golden codes, then verify. The scan
/// fans out over `opts.threads` workers (1 = serial; 0 = hardware
/// concurrency). Tampered groups are reported, not repaired — callers
/// decide between zero-out recovery and rejecting the artifact.
PackageLoadReport load_package(const std::string& path,
                               quant::QuantizedModel& qm,
                               std::unique_ptr<IntegrityScheme>& scheme,
                               const PackageLoadOptions& opts);
PackageLoadReport load_package(const std::string& path,
                               quant::QuantizedModel& qm,
                               std::unique_ptr<IntegrityScheme>& scheme,
                               std::size_t threads = 1);

}  // namespace radar::core
