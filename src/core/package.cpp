#include "core/package.h"

#include <cstring>

#include "codes/crc.h"
#include "common/serialize.h"
#include "core/scan_session.h"
#include "core/scheme_registry.h"

#if defined(__unix__) || defined(__APPLE__)
#define RADAR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace radar::core {

namespace {

std::uint32_t weights_crc(const quant::QuantizedModel& qm) {
  codes::Crc crc(codes::CrcSpec::crc32());
  // CRC over the concatenated int8 payloads, layer order (v2-compatible:
  // real weights only, padding excluded).
  std::uint32_t acc = 0;
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    const auto& q = qm.layer(li).q;
    acc ^= crc.compute_i8(std::span<const std::int8_t>(q.data(), q.size()));
    acc = (acc << 1) | (acc >> 31);  // order-sensitive combination
  }
  return acc;
}

void write_scheme(BinaryWriter& w, const std::string& id,
                  const SchemeParams& p) {
  w.write_string(id);
  w.write_i64(p.group_size);
  w.write_u8(p.interleave ? 1 : 0);
  w.write_i64(p.skew);
  w.write_u8(p.expansion == MaskStream::Expansion::kRepeat ? 0 : 1);
  w.write_u64(p.master_key);
}

void read_scheme(BinaryReader& r, std::string& id, SchemeParams& p) {
  id = r.read_string();
  p.group_size = r.read_i64();
  p.interleave = r.read_u8() != 0;
  p.skew = r.read_i64();
  p.expansion = r.read_u8() == 0 ? MaskStream::Expansion::kRepeat
                                 : MaskStream::Expansion::kPrf;
  p.master_key = r.read_u64();
  // Bound the grouping parameters before any layout / scan work (see
  // kMaxGroupSize): a corrupted group size would otherwise hang the scan
  // or zero-divide.
  if (p.group_size < 1 || p.group_size > kMaxGroupSize || p.skew < 0 ||
      p.skew > kMaxSkew)
    throw SerializationError("corrupt scheme parameters in package");
}

#ifdef RADAR_HAVE_MMAP
/// Read-only whole-file mapping; keeps the pages alive for however long a
/// scheme holds the shared_ptr.
class MappedFile {
 public:
  static std::shared_ptr<MappedFile> map(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return nullptr;
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
      ::close(fd);
      return nullptr;
    }
    void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                     PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (p == MAP_FAILED) return nullptr;
    return std::shared_ptr<MappedFile>(
        new MappedFile(p, static_cast<std::size_t>(st.st_size)));
  }
  ~MappedFile() { ::munmap(base_, len_); }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const std::int8_t> bytes() const {
    return {static_cast<const std::int8_t*>(base_), len_};
  }

 private:
  MappedFile(void* base, std::size_t len) : base_(base), len_(len) {}
  void* base_;
  std::size_t len_;
};
#endif

/// Everything parsed from a package file before it touches a model.
struct ParsedPackage {
  PackageInfo info;
  std::uint32_t stored_crc = 0;
  std::vector<std::vector<std::uint8_t>> golden;
  /// v3: weight blob in arena geometry; v2: rebuilt from per-layer
  /// vectors using the shared offset rule.
  std::vector<std::int8_t> blob;
  std::uint64_t blob_file_offset = 0;  ///< v3 only (0 = not mmap-able)
};

/// Validate a v3 layer-table row against the running cursor and the blob
/// bounds; corrupt tables must die here, before any allocation or scan
/// sized from them.
void check_table_entry(const quant::ArenaLayer& l, std::int64_t prev_end,
                       std::int64_t arena_bytes) {
  if (l.size < 0 || l.offset < 0 ||
      l.offset % quant::kArenaAlignment != 0 || l.offset < prev_end ||
      l.size > arena_bytes || l.offset > arena_bytes - l.size)
    throw SerializationError("corrupt arena layer table in package");
}

/// `read_blob = false` skips materializing the weight payload (metadata
/// queries on v3 packages then never touch the arena bytes; v2 files
/// still stream through their per-layer vectors to reach later fields).
ParsedPackage parse_package(const std::string& path, bool read_blob = true) {
  BinaryReader r(path, kPackageFormatV2, kPackageFormatV3);
  ParsedPackage pkg;
  pkg.info.format_version = r.version();
  pkg.info.model_name = r.read_string();
  read_scheme(r, pkg.info.scheme_id, pkg.info.params);
  pkg.stored_crc = r.read_u32();
  pkg.info.num_layers = r.read_u64();
  if (pkg.info.num_layers >
      r.remaining() / 8)  // each layer costs >= 8 structural bytes
    throw SerializationError("corrupt layer count in package");

  if (r.version() == kPackageFormatV2) {
    // v2: per-layer (name, scale, codes, golden) records. Rebuild the
    // contiguous arena with the shared offset rule so downstream code
    // sees one geometry regardless of the on-disk format.
    std::int64_t cursor = 0;
    for (std::size_t li = 0; li < pkg.info.num_layers; ++li) {
      quant::ArenaLayer l;
      l.name = r.read_string();
      l.scale = r.read_f32();
      if (read_blob) {
        auto codes = r.read_i8_vector();
        l.size = static_cast<std::int64_t>(codes.size());
        cursor = quant::WeightArena::aligned_offset(cursor);
        l.offset = cursor;
        cursor += l.size;
        pkg.blob.resize(static_cast<std::size_t>(
            quant::WeightArena::aligned_offset(cursor)));
        if (!codes.empty())
          std::memcpy(pkg.blob.data() + l.offset, codes.data(),
                      codes.size());
      } else {
        // Metadata-only: learn the size, skip the payload bytes.
        const std::uint64_t n = r.read_u64();
        r.skip(n);
        l.size = static_cast<std::int64_t>(n);
        cursor = quant::WeightArena::aligned_offset(cursor);
        l.offset = cursor;
        cursor += l.size;
      }
      pkg.info.total_weights += l.size;
      pkg.info.layers.push_back(std::move(l));
      pkg.golden.push_back(r.read_u8_vector());
    }
    pkg.info.arena_bytes = quant::WeightArena::aligned_offset(cursor);
    return pkg;
  }

  // v3: layer table, golden codes, then the aligned arena blob.
  pkg.info.arena_bytes = r.read_i64();
  if (pkg.info.arena_bytes < 0 ||
      static_cast<std::uint64_t>(pkg.info.arena_bytes) > r.remaining())
    throw SerializationError("corrupt arena size in package");
  std::int64_t prev_end = 0;
  for (std::size_t li = 0; li < pkg.info.num_layers; ++li) {
    quant::ArenaLayer l;
    l.name = r.read_string();
    l.scale = r.read_f32();
    l.size = r.read_i64();
    l.offset = r.read_i64();
    check_table_entry(l, prev_end, pkg.info.arena_bytes);
    prev_end = l.offset + l.size;
    pkg.info.total_weights += l.size;
    pkg.info.layers.push_back(std::move(l));
  }
  for (std::size_t li = 0; li < pkg.info.num_layers; ++li)
    pkg.golden.push_back(r.read_u8_vector());
  const std::uint32_t pad = r.read_u32();
  if (pad >= quant::kArenaAlignment)
    throw SerializationError("corrupt arena padding in package");
  r.skip(pad);
  pkg.blob_file_offset = r.tell();
  const auto arena_bytes = static_cast<std::uint64_t>(pkg.info.arena_bytes);
  if (read_blob) {
    pkg.blob.resize(static_cast<std::size_t>(pkg.info.arena_bytes));
    r.read_bytes(pkg.blob.data(), arena_bytes);
  } else {
    r.skip(arena_bytes);  // still validates the file actually has it
  }
  return pkg;
}

void save_package_v2(BinaryWriter& w, const quant::QuantizedModel& qm,
                     const IntegrityScheme& scheme) {
  const auto golden = scheme.export_golden();
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    const auto& layer = qm.layer(li);
    w.write_string(layer.name);
    w.write_f32(layer.scale);
    w.write_u64(layer.q.size());
    w.write_bytes(layer.q.data(), layer.q.size());
    w.write_u8_vector(golden[li]);
  }
}

void save_package_v3(BinaryWriter& w, const quant::QuantizedModel& qm,
                     const IntegrityScheme& scheme) {
  const quant::WeightArena& arena = qm.arena();
  w.write_i64(arena.size_bytes());
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    const quant::ArenaLayer& l = arena.layer(li);
    w.write_string(l.name);
    // Scale comes from the QuantLayer — the copy the runtime dequantizes
    // with — so v2 and v3 saves agree even if a caller wrote
    // QuantLayer::scale directly instead of through set_scale().
    w.write_f32(qm.layer(li).scale);
    w.write_i64(l.size);
    w.write_i64(l.offset);
  }
  const auto golden = scheme.export_golden();
  for (std::size_t li = 0; li < qm.num_layers(); ++li)
    w.write_u8_vector(golden[li]);
  // Pad so the blob lands 64-byte aligned in the file: a page-aligned
  // mapping then yields cacheline-aligned layer spans for free.
  const std::uint64_t pos = w.tell() + sizeof(std::uint32_t);
  const auto pad = static_cast<std::uint32_t>(
      (quant::kArenaAlignment - pos % quant::kArenaAlignment) %
      quant::kArenaAlignment);
  w.write_u32(pad);
  static constexpr char kZeros[quant::kArenaAlignment] = {};
  w.write_bytes(kZeros, pad);
  w.write_bytes(arena.bytes().data(),
                static_cast<std::size_t>(arena.size_bytes()));
}

}  // namespace

void save_package(const std::string& path, const quant::QuantizedModel& qm,
                  const IntegrityScheme& scheme,
                  const std::string& model_name, std::uint32_t version) {
  RADAR_REQUIRE(scheme.attached(), "scheme must be attached before save");
  RADAR_REQUIRE(scheme.num_layers() == qm.num_layers(),
                "scheme does not match model");
  RADAR_REQUIRE(
      version == kPackageFormatV2 || version == kPackageFormatV3,
      "unsupported package format version");
  BinaryWriter w(path, version);
  w.write_string(model_name);
  write_scheme(w, scheme.id(), scheme.params());
  w.write_u32(weights_crc(qm));
  w.write_u64(qm.num_layers());
  if (version == kPackageFormatV2)
    save_package_v2(w, qm, scheme);
  else
    save_package_v3(w, qm, scheme);
  w.close();
}

PackageInfo read_package_info(const std::string& path) {
  return parse_package(path, /*read_blob=*/false).info;
}

MappedArena map_package_arena(const std::string& path) {
  MappedArena out;
#ifdef RADAR_HAVE_MMAP
  ParsedPackage pkg;
  try {
    pkg = parse_package(path, /*read_blob=*/false);
  } catch (const std::exception&) {
    return out;  // unreadable or structurally corrupt: caller backs off
  }
  if (pkg.info.format_version != kPackageFormatV3 ||
      pkg.blob_file_offset % quant::kArenaAlignment != 0 ||
      pkg.info.arena_bytes <= 0)
    return out;
  const auto mapped = MappedFile::map(path);
  if (mapped == nullptr) return out;
  const auto all = mapped->bytes();
  const auto arena_bytes = static_cast<std::size_t>(pkg.info.arena_bytes);
  if (pkg.blob_file_offset + arena_bytes > all.size()) return out;
  out.bytes = all.subspan(static_cast<std::size_t>(pkg.blob_file_offset),
                          arena_bytes);
  out.holder = std::move(mapped);
#else
  (void)path;
#endif
  return out;
}

PackageLoadReport load_package(const std::string& path,
                               quant::QuantizedModel& qm,
                               std::unique_ptr<IntegrityScheme>& scheme,
                               const PackageLoadOptions& opts) {
  ParsedPackage pkg = parse_package(path);
  PackageLoadReport report;
  report.info = std::move(pkg.info);
  RADAR_REQUIRE(report.info.num_layers == qm.num_layers(),
                "package layer count does not match model");
  // The package geometry must match the model's arena exactly (offsets
  // are deterministic given the sizes, so any well-formed package for
  // this model matches; a mismatch means corruption or the wrong model).
  std::vector<float> scales(report.info.num_layers);
  for (std::size_t li = 0; li < report.info.num_layers; ++li) {
    const quant::ArenaLayer& pl = report.info.layers[li];
    const quant::ArenaLayer& ml = qm.arena().layer(li);
    RADAR_REQUIRE(pl.size == ml.size,
                  "package layer size mismatch at " + pl.name);
    RADAR_REQUIRE(pl.offset == ml.offset,
                  "package arena geometry mismatch at " + pl.name);
    scales[li] = pl.scale;
  }
  RADAR_REQUIRE(static_cast<std::int64_t>(pkg.blob.size()) ==
                    qm.arena().size_bytes(),
                "package arena size does not match model");
  qm.load_weights(
      std::span<const std::int8_t>(pkg.blob.data(), pkg.blob.size()),
      scales);

  report.crc_ok = (weights_crc(qm) == pkg.stored_crc);

  // Rebuild the scheme from the stored id + params, then substitute the
  // stored golden codes and scan: mismatches localize tampering.
  scheme = SchemeRegistry::instance().create(report.info.scheme_id,
                                             report.info.params);

#ifdef RADAR_HAVE_MMAP
  // Map the file's arena BEFORE attach: when the mapping succeeds, the
  // attach can skip its owned clean-copy capture entirely (one
  // full-arena allocation + memcpy saved — the zero-copy point of the
  // feature), because set_clean_source installs the mapped bytes right
  // after.
  std::shared_ptr<MappedFile> mapped;
  std::span<const std::int8_t> mapped_arena;
  if (opts.mmap_golden && report.info.format_version == kPackageFormatV3 &&
      pkg.blob_file_offset % quant::kArenaAlignment == 0) {
    if ((mapped = MappedFile::map(path)) != nullptr) {
      const auto all = mapped->bytes();
      if (pkg.blob_file_offset + pkg.blob.size() <= all.size())
        mapped_arena = all.subspan(
            static_cast<std::size_t>(pkg.blob_file_offset),
            pkg.blob.size());
      else
        mapped.reset();
    }
  }
  // TOCTOU guard: the mapping re-reads the file by path, so its bytes
  // were never CRC/signature-verified. Install it only when it is
  // byte-identical to the blob the verification ran on; otherwise fall
  // back to the owned clean copy.
  if (mapped != nullptr &&
      (mapped_arena.size() != pkg.blob.size() ||
       std::memcmp(mapped_arena.data(), pkg.blob.data(),
                   pkg.blob.size()) != 0))
    mapped.reset();
  if (mapped != nullptr) {
    if (auto* base = dynamic_cast<SchemeBase*>(scheme.get()))
      base->defer_clean_capture();
  }
#endif

  scheme->attach(qm, /*sign=*/false);
  scheme->import_golden(std::move(pkg.golden));

#ifdef RADAR_HAVE_MMAP
  if (mapped != nullptr) {
    scheme->set_clean_source(std::move(mapped), mapped_arena);
    report.golden_mmapped = true;
  }
#endif

  report.tamper = ScanSession(*scheme, opts.threads).scan(qm);
  report.signatures_ok = !report.tamper.attack_detected();
  return report;
}

PackageLoadReport load_package(const std::string& path,
                               quant::QuantizedModel& qm,
                               std::unique_ptr<IntegrityScheme>& scheme,
                               std::size_t threads) {
  PackageLoadOptions opts;
  opts.threads = threads;
  return load_package(path, qm, scheme, opts);
}

}  // namespace radar::core
