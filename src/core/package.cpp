#include "core/package.h"

#include "codes/crc.h"
#include "common/serialize.h"
#include "core/scan_session.h"
#include "core/scheme_registry.h"

namespace radar::core {

namespace {
// v2: RadarConfig replaced by a scheme registry id + SchemeParams.
constexpr std::uint32_t kPackageVersion = 2;

std::uint32_t weights_crc(const quant::QuantizedModel& qm) {
  codes::Crc crc(codes::CrcSpec::crc32());
  // CRC over the concatenated int8 payloads, layer order.
  std::uint32_t acc = 0;
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    const auto& q = qm.layer(li).q;
    acc ^= crc.compute_i8(std::span<const std::int8_t>(q.data(), q.size()));
    acc = (acc << 1) | (acc >> 31);  // order-sensitive combination
  }
  return acc;
}

void write_scheme(BinaryWriter& w, const std::string& id,
                  const SchemeParams& p) {
  w.write_string(id);
  w.write_i64(p.group_size);
  w.write_u8(p.interleave ? 1 : 0);
  w.write_i64(p.skew);
  w.write_u8(p.expansion == MaskStream::Expansion::kRepeat ? 0 : 1);
  w.write_u64(p.master_key);
}

void read_scheme(BinaryReader& r, std::string& id, SchemeParams& p) {
  id = r.read_string();
  p.group_size = r.read_i64();
  p.interleave = r.read_u8() != 0;
  p.skew = r.read_i64();
  p.expansion = r.read_u8() == 0 ? MaskStream::Expansion::kRepeat
                                 : MaskStream::Expansion::kPrf;
  p.master_key = r.read_u64();
  // Bound the grouping parameters before any layout / scan work (see
  // kMaxGroupSize): a corrupted group size would otherwise hang the scan
  // or zero-divide.
  if (p.group_size < 1 || p.group_size > kMaxGroupSize || p.skew < 0 ||
      p.skew > kMaxSkew)
    throw SerializationError("corrupt scheme parameters in package");
}
}  // namespace

void save_package(const std::string& path, const quant::QuantizedModel& qm,
                  const IntegrityScheme& scheme,
                  const std::string& model_name) {
  RADAR_REQUIRE(scheme.attached(), "scheme must be attached before save");
  RADAR_REQUIRE(scheme.num_layers() == qm.num_layers(),
                "scheme does not match model");
  BinaryWriter w(path, kPackageVersion);
  w.write_string(model_name);
  write_scheme(w, scheme.id(), scheme.params());
  w.write_u32(weights_crc(qm));
  w.write_u64(qm.num_layers());
  const auto golden = scheme.export_golden();
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    const auto& layer = qm.layer(li);
    w.write_string(layer.name);
    w.write_f32(layer.scale);
    w.write_i8_vector(layer.q);
    w.write_u8_vector(golden[li]);
  }
  w.close();
}

PackageInfo read_package_info(const std::string& path) {
  BinaryReader r(path, kPackageVersion);
  PackageInfo info;
  info.model_name = r.read_string();
  read_scheme(r, info.scheme_id, info.params);
  r.read_u32();  // payload CRC
  info.num_layers = r.read_u64();
  for (std::size_t li = 0; li < info.num_layers; ++li) {
    r.read_string();
    r.read_f32();
    info.total_weights +=
        static_cast<std::int64_t>(r.read_i8_vector().size());
    (void)r.read_u8_vector();  // golden codes
  }
  return info;
}

PackageLoadReport load_package(const std::string& path,
                               quant::QuantizedModel& qm,
                               std::unique_ptr<IntegrityScheme>& scheme,
                               std::size_t threads) {
  BinaryReader r(path, kPackageVersion);
  PackageLoadReport report;
  report.info.model_name = r.read_string();
  read_scheme(r, report.info.scheme_id, report.info.params);
  const std::uint32_t stored_crc = r.read_u32();
  report.info.num_layers = r.read_u64();
  RADAR_REQUIRE(report.info.num_layers == qm.num_layers(),
                "package layer count does not match model");

  std::vector<std::vector<std::uint8_t>> golden(report.info.num_layers);
  for (std::size_t li = 0; li < report.info.num_layers; ++li) {
    const std::string name = r.read_string();
    const float scale = r.read_f32();
    auto codes = r.read_i8_vector();
    RADAR_REQUIRE(static_cast<std::int64_t>(codes.size()) ==
                      qm.layer(li).size(),
                  "package layer size mismatch at " + name);
    qm.layer(li).scale = scale;
    qm.layer(li).q = std::move(codes);
    report.info.total_weights += qm.layer(li).size();
    golden[li] = r.read_u8_vector();
  }
  qm.sync_all();

  report.crc_ok = (weights_crc(qm) == stored_crc);

  // Rebuild the scheme from the stored id + params, then substitute the
  // stored golden codes and scan: mismatches localize tampering.
  scheme = SchemeRegistry::instance().create(report.info.scheme_id,
                                             report.info.params);
  scheme->attach(qm, /*sign=*/false);
  scheme->import_golden(std::move(golden));
  report.tamper = ScanSession(*scheme, threads).scan(qm);
  report.signatures_ok = !report.tamper.attack_detected();
  return report;
}

}  // namespace radar::core
