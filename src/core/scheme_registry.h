// SchemeRegistry: string-keyed factory of IntegritySchemes.
//
// Deployment packages, the CLI and the comparison benches all refer to
// protection schemes by name; the registry is the single place that maps a
// name to a constructor. Built-ins (registered on first access):
//
//   radar2 / radar3   paper's 2- / 3-bit group signatures (RadarScheme)
//   crc7 / crc10 /
//   crc13 / crc16     Koopman CRCs over gathered groups (Table V baseline)
//   fletcher          Fletcher-16 over gathered groups
//   hamming-secded    Hamming SEC-DED check words over gathered groups
//
// Additional schemes (new codes, hardware backends) register themselves at
// startup via register_scheme() and instantly work everywhere a scheme id
// is accepted — packages, radar_cli --scheme, ScanSession, benches.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/integrity_scheme.h"

namespace radar::core {

class SchemeRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<IntegrityScheme>(const SchemeParams&)>;

  /// Process-wide registry with the built-ins pre-registered.
  static SchemeRegistry& instance();

  /// Register (or replace) a factory under `id`.
  void register_scheme(const std::string& id, Factory factory);

  bool contains(const std::string& id) const;

  /// Instantiate `id` with `params`; throws InvalidArgument on an unknown
  /// id, listing the registered ones.
  std::unique_ptr<IntegrityScheme> create(const std::string& id,
                                          const SchemeParams& params) const;

  /// Registered ids, sorted ascending.
  std::vector<std::string> ids() const;

 private:
  SchemeRegistry();

  std::vector<std::pair<std::string, Factory>> factories_;
};

}  // namespace radar::core
