#include "core/scheme.h"

namespace radar::core {

RadarConfig RadarConfig::from_params(const SchemeParams& p, int bits) {
  RadarConfig cfg;
  cfg.group_size = p.group_size;
  cfg.interleave = p.interleave;
  cfg.skew = p.skew;
  cfg.signature_bits = bits;
  cfg.expansion = p.expansion;
  cfg.master_key = p.master_key;
  return cfg;
}

SchemeParams RadarConfig::to_params() const {
  SchemeParams p;
  p.group_size = group_size;
  p.interleave = interleave;
  p.skew = skew;
  p.expansion = expansion;
  p.master_key = master_key;
  return p;
}

RadarScheme::RadarScheme(const RadarConfig& cfg)
    : SchemeBase(cfg.signature_bits == 3 ? "radar3" : "radar2",
                 cfg.to_params()),
      sig_bits_(cfg.signature_bits) {
  RADAR_REQUIRE(cfg.signature_bits == 2 || cfg.signature_bits == 3,
                "signature width must be 2 or 3");
}

void RadarScheme::attach(const quant::QuantizedModel& qm, bool sign) {
  attach_layouts(qm);
  masks_.clear();
  scanners_.clear();
  golden_.clear();
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    masks_.emplace_back(MaskStream::derive_layer_key(params_.master_key, li),
                        params_.expansion);
    scanners_.emplace_back(layouts_[li], masks_.back(), sig_bits_);
    golden_.emplace_back(layouts_[li].num_groups(), sig_bits_);
  }
  if (sign) resign(qm);
}

Signature RadarScheme::compute_signature(const quant::QuantizedModel& qm,
                                         std::size_t layer,
                                         std::int64_t group) const {
  const auto& ql = qm.layer(layer);
  return group_signature(
      std::span<const std::int8_t>(ql.q.data(), ql.q.size()),
      layouts_[layer], group, masks_[layer], sig_bits_);
}

void RadarScheme::resign_layer(const quant::QuantizedModel& qm,
                               std::size_t layer) {
  RADAR_REQUIRE(layouts_.size() == qm.num_layers(),
                "scheme not attached to this model");
  RADAR_REQUIRE(layer < layouts_.size(), "layer out of range");
  const auto& ql = qm.layer(layer);
  ScanScratch scratch;
  scanners_[layer].masked_sums_into(
      std::span<const std::int8_t>(ql.q.data(), ql.q.size()), scratch);
  for (std::int64_t g = 0; g < layouts_[layer].num_groups(); ++g)
    golden_[layer].set(
        g, binarize(scratch.sums[static_cast<std::size_t>(g)], sig_bits_));
}

void RadarScheme::scan_layer_into(const quant::QuantizedModel& qm,
                                  std::size_t layer,
                                  std::vector<std::int64_t>& flagged,
                                  ScanScratch& scratch) const {
  RADAR_REQUIRE(attached(), "scan before attach");
  const auto& ql = qm.layer(layer);
  scanners_[layer].masked_sums_into(
      std::span<const std::int8_t>(ql.q.data(), ql.q.size()), scratch);
  flagged.clear();
  for (std::int64_t g = 0; g < layouts_[layer].num_groups(); ++g) {
    if (!(binarize(scratch.sums[static_cast<std::size_t>(g)], sig_bits_) ==
          golden_[layer].get(g)))
      flagged.push_back(g);
  }
}

void RadarScheme::scan_layer_groups(const quant::QuantizedModel& qm,
                                    std::size_t layer,
                                    std::span<const std::int64_t> groups,
                                    std::vector<std::int64_t>& flagged,
                                    ScanScratch& /*scratch*/) const {
  RADAR_REQUIRE(attached(), "scan before attach");
  const auto& ql = qm.layer(layer);
  const std::span<const std::int8_t> w(ql.q.data(), ql.q.size());
  flagged.clear();
  for (const std::int64_t g : groups) {
    if (!(scanners_[layer].group_signature_at(w, g) == golden_[layer].get(g)))
      flagged.push_back(g);
  }
}

void RadarScheme::scan_layer_range_into(const quant::QuantizedModel& qm,
                                        std::size_t layer,
                                        std::int64_t group_begin,
                                        std::int64_t group_end,
                                        std::vector<std::int64_t>& flagged,
                                        ScanScratch& scratch) const {
  RADAR_REQUIRE(attached(), "scan before attach");
  RADAR_REQUIRE(layouts_.size() == qm.num_layers(),
                "scheme not attached to this model");
  RADAR_REQUIRE(layer < layouts_.size() && group_begin >= 0 &&
                    group_begin <= group_end &&
                    group_end <= layouts_[layer].num_groups(),
                "group range out of bounds");
  const auto& ql = qm.layer(layer);
  scanners_[layer].masked_sums_range_into(
      std::span<const std::int8_t>(ql.q.data(), ql.q.size()), group_begin,
      group_end, scratch);
  flagged.clear();
  for (std::int64_t g = group_begin; g < group_end; ++g) {
    if (!(binarize(scratch.sums[static_cast<std::size_t>(g - group_begin)],
                   sig_bits_) == golden_[layer].get(g)))
      flagged.push_back(g);
  }
}

std::int64_t RadarScheme::signature_storage_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& store : golden_) bytes += store.storage_bytes();
  return bytes;
}

std::vector<std::vector<std::uint8_t>> RadarScheme::export_golden() const {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(golden_.size());
  for (const auto& store : golden_) out.push_back(store.packed());
  return out;
}

void RadarScheme::import_golden(
    std::vector<std::vector<std::uint8_t>> packed) {
  RADAR_REQUIRE(attached(), "import_golden before attach");
  RADAR_REQUIRE(packed.size() == golden_.size(),
                "golden layer count mismatch");
  for (std::size_t li = 0; li < golden_.size(); ++li)
    golden_[li].set_packed(std::move(packed[li]));
}

}  // namespace radar::core
