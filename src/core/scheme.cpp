#include "core/scheme.h"

#include <algorithm>

namespace radar::core {

bool DetectionReport::is_flagged(std::size_t layer,
                                 std::int64_t group) const {
  if (layer >= flagged.size()) return false;
  const auto& f = flagged[layer];
  return std::binary_search(f.begin(), f.end(), group);
}

void RadarScheme::attach(const quant::QuantizedModel& qm) {
  layouts_.clear();
  masks_.clear();
  scanners_.clear();
  golden_.clear();
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    const auto& ql = qm.layer(li);
    layouts_.push_back(
        cfg_.interleave
            ? GroupLayout::interleaved(ql.size(), cfg_.group_size, cfg_.skew)
            : GroupLayout::contiguous(ql.size(), cfg_.group_size));
    masks_.emplace_back(MaskStream::derive_layer_key(cfg_.master_key, li),
                        cfg_.expansion);
    scanners_.emplace_back(layouts_.back(), masks_.back(),
                           cfg_.signature_bits);
    golden_.emplace_back(layouts_.back().num_groups(), cfg_.signature_bits);
  }
  clean_snapshot_ = qm.snapshot();
  resign(qm);
}

Signature RadarScheme::compute_signature(const quant::QuantizedModel& qm,
                                         std::size_t layer,
                                         std::int64_t group) const {
  const auto& ql = qm.layer(layer);
  return group_signature(
      std::span<const std::int8_t>(ql.q.data(), ql.q.size()),
      layouts_[layer], group, masks_[layer], cfg_.signature_bits);
}

void RadarScheme::resign_layer(const quant::QuantizedModel& qm,
                               std::size_t layer) {
  RADAR_REQUIRE(layouts_.size() == qm.num_layers(),
                "scheme not attached to this model");
  RADAR_REQUIRE(layer < layouts_.size(), "layer out of range");
  const auto& ql = qm.layer(layer);
  const auto sigs = scanners_[layer].scan(
      std::span<const std::int8_t>(ql.q.data(), ql.q.size()));
  for (std::int64_t g = 0; g < layouts_[layer].num_groups(); ++g)
    golden_[layer].set(g, sigs[static_cast<std::size_t>(g)]);
}

void RadarScheme::resign(const quant::QuantizedModel& qm) {
  RADAR_REQUIRE(layouts_.size() == qm.num_layers(),
                "scheme not attached to this model");
  for (std::size_t li = 0; li < qm.num_layers(); ++li) resign_layer(qm, li);
}

std::vector<std::int64_t> RadarScheme::scan_layer(
    const quant::QuantizedModel& qm, std::size_t layer) const {
  RADAR_REQUIRE(attached(), "scan before attach");
  const auto& ql = qm.layer(layer);
  const auto sigs = scanners_[layer].scan(
      std::span<const std::int8_t>(ql.q.data(), ql.q.size()));
  std::vector<std::int64_t> flagged;
  for (std::int64_t g = 0; g < layouts_[layer].num_groups(); ++g) {
    if (!(sigs[static_cast<std::size_t>(g)] == golden_[layer].get(g)))
      flagged.push_back(g);
  }
  return flagged;
}

DetectionReport RadarScheme::scan(const quant::QuantizedModel& qm) const {
  RADAR_REQUIRE(layouts_.size() == qm.num_layers(),
                "scheme not attached to this model");
  DetectionReport report;
  report.flagged.resize(qm.num_layers());
  for (std::size_t li = 0; li < qm.num_layers(); ++li)
    report.flagged[li] = scan_layer(qm, li);
  return report;
}

void RadarScheme::recover(quant::QuantizedModel& qm,
                          const DetectionReport& report,
                          RecoveryPolicy policy) const {
  RADAR_REQUIRE(report.flagged.size() == qm.num_layers(),
                "report does not match model");
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    for (const std::int64_t g : report.flagged[li]) {
      for (const std::int64_t idx : layouts_[li].group_members(g)) {
        switch (policy) {
          case RecoveryPolicy::kZeroOut:
            qm.set_code(li, idx, 0);
            break;
          case RecoveryPolicy::kReloadClean:
            qm.set_code(li, idx,
                        clean_snapshot_[li][static_cast<std::size_t>(idx)]);
            break;
        }
      }
    }
  }
}

std::int64_t RadarScheme::signature_storage_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& store : golden_) bytes += store.storage_bytes();
  return bytes;
}

std::int64_t RadarScheme::total_groups() const {
  std::int64_t n = 0;
  for (const auto& l : layouts_) n += l.num_groups();
  return n;
}

std::vector<std::vector<std::uint8_t>> RadarScheme::export_golden() const {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(golden_.size());
  for (const auto& store : golden_) out.push_back(store.packed());
  return out;
}

void RadarScheme::import_golden(
    std::vector<std::vector<std::uint8_t>> packed) {
  RADAR_REQUIRE(attached(), "import_golden before attach");
  RADAR_REQUIRE(packed.size() == golden_.size(),
                "golden layer count mismatch");
  for (std::size_t li = 0; li < golden_.size(); ++li)
    golden_[li].set_packed(std::move(packed[li]));
}

std::int64_t count_detected_flips(
    const RadarScheme& scheme, const DetectionReport& report,
    const std::vector<std::pair<std::size_t, std::int64_t>>& flips) {
  std::int64_t detected = 0;
  for (const auto& [layer, idx] : flips) {
    const std::int64_t group = scheme.layout(layer).group_of(idx);
    if (report.is_flagged(layer, group)) ++detected;
  }
  return detected;
}

}  // namespace radar::core
