// Secret-key mask stream (paper §IV.B.1).
//
// A per-layer Nk = 16-bit secret key decides, for every weight position in
// the interleaved stream, whether the checksum adds the weight or its
// two's complement (negation). Two expansion modes:
//
//  kRepeat — the literal scheme in the paper: key bit (position mod 16).
//  kPrf    — counter-mode expansion through a splitmix64-style keyed PRF;
//            removes the 16-periodic pattern while staying O(1) random
//            access. This is the library default.
//
// Keys are derived per layer from a master seed so a deployment needs to
// protect only one secret.
#pragma once

#include <cstdint>

namespace radar::core {

class MaskStream {
 public:
  enum class Expansion { kRepeat, kPrf };

  MaskStream(std::uint16_t key, Expansion expansion = Expansion::kPrf)
      : key_(key), expansion_(expansion) {}

  /// Mask bit for stream position p (group * G + slot). true = negate.
  bool bit(std::int64_t position) const;

  std::uint16_t key() const { return key_; }
  Expansion expansion() const { return expansion_; }

  /// Derive the 16-bit key of layer `layer` from a 64-bit master seed.
  static std::uint16_t derive_layer_key(std::uint64_t master_seed,
                                        std::size_t layer);

 private:
  std::uint16_t key_;
  Expansion expansion_;
};

}  // namespace radar::core
