// DRAM + rowhammer fault-injection model.
//
// The paper's attacker flips PBFA-chosen bits through DRAM rowhammer; the
// defense never sees the mechanism, only the corrupted weights. This model
// closes that loop for the system-level example: weights live in DRAM
// rows; hammering an aggressor row flips susceptible bits in its victim
// neighbours according to a per-cell vulnerability map, and the attacker
// places target bits by choosing addresses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "quant/qmodel.h"

namespace radar::sim {

struct DramConfig {
  std::int64_t row_bytes = 8192;   ///< one DRAM row per bank
  std::int64_t num_rows = 65536;
  double cell_vulnerability = 5e-4;  ///< fraction of hammer-susceptible cells
  std::int64_t hammer_threshold = 50000;  ///< activations to induce flips
  std::uint64_t seed = 99;
};

/// A bit flip that occurred in DRAM.
struct DramFlip {
  std::int64_t row = 0;
  std::int64_t byte_in_row = 0;
  int bit = 0;
};

class DramModel {
 public:
  explicit DramModel(const DramConfig& cfg);

  const DramConfig& config() const { return cfg_; }

  /// Map a weight buffer into consecutive rows starting at `base_row`;
  /// returns the number of rows occupied.
  std::int64_t map_buffer(std::int64_t base_row, std::int64_t bytes);

  /// Hammer the rows adjacent to `victim_row` `activations` times. Bits in
  /// the victim row flip where the cell is susceptible. Returns the flips.
  std::vector<DramFlip> hammer(std::int64_t victim_row,
                               std::int64_t activations);

  /// Targeted variant (the DeepHammer-style attacker): flip a specific
  /// bit if and only if its cell is susceptible; returns success. Models
  /// an attacker who massages memory layout until the target lands on a
  /// vulnerable cell with probability `placement_success`.
  bool targeted_flip(std::int64_t row, std::int64_t byte_in_row, int bit,
                     double placement_success, Rng& rng);

  /// Is the given cell susceptible to rowhammer?
  bool susceptible(std::int64_t row, std::int64_t byte_in_row, int bit) const;

  std::int64_t activations(std::int64_t row) const;

 private:
  std::uint64_t cell_hash(std::int64_t row, std::int64_t byte_in_row,
                          int bit) const;

  DramConfig cfg_;
  std::vector<std::int64_t> activation_count_;
  std::uint64_t salt_;
};

/// Glue: apply a set of DRAM flips to the int8 weight buffers of a model,
/// given the row where the model's weights start. Returns the number of
/// flips that landed inside weight storage.
std::int64_t apply_dram_flips_to_model(const std::vector<DramFlip>& flips,
                                       std::int64_t model_base_row,
                                       const DramConfig& cfg,
                                       quant::QuantizedModel& qm);

}  // namespace radar::sim
