// DRAM + rowhammer fault-injection model.
//
// The paper's attacker flips PBFA-chosen bits through DRAM rowhammer; the
// defense never sees the mechanism, only the corrupted weights. This model
// closes that loop at the physical-address level: weights live in DRAM
// organized as channels x ranks x banks x rows x columns, a configurable
// mapping function places arena byte offsets onto that geometry, and
// hammering an aggressor row disturbs its two same-bank neighbours —
// susceptible cells in a victim row flip with a probability that rises
// with the accumulated activation pressure on its adjacent aggressors
// (double-sided hammering pressures a victim from both rows at once).
//
// Two API layers coexist:
//  - the legacy flat-row view (map_buffer / hammer / targeted_flip /
//    apply_dram_flips_to_model) used by the edge-deployment example, where
//    the default geometry (one channel/rank/bank) reproduces the original
//    linear row space bit for bit, and
//  - the physical layer (decompose / compose / hammer_victim) that the
//    rowhammer campaign attacker drives: flips come back annotated with
//    the arena byte offset each victim cell maps to, so bursts stay
//    spatially correlated through any mapping function.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "quant/qmodel.h"

namespace radar::sim {

/// How arena byte offsets are placed onto the physical geometry.
enum class AddressMapping {
  /// Linear: consecutive bytes fill a row, rows fill a bank, banks fill a
  /// rank... One DRAM row == `row_bytes` consecutive arena bytes (the
  /// legacy flat-row view when the geometry is 1x1x1).
  kRowMajor,
  /// Controller-style interleave: consecutive `stripe_bytes` granules
  /// rotate across every bank in the system before advancing the row, so
  /// one hammered row touches bytes `stripe_bytes` apart strided by
  /// (total banks x stripe_bytes) across the arena.
  kBankStripe,
};

struct DramConfig {
  std::int64_t row_bytes = 8192;  ///< one DRAM row (columns) per bank
  std::int64_t num_rows = 65536;  ///< rows per bank
  double cell_vulnerability = 5e-4;  ///< fraction of hammer-susceptible cells
  std::int64_t hammer_threshold = 50000;  ///< activations to induce flips
  std::uint64_t seed = 99;
  // Physical organization. The defaults (one channel/rank/bank, row-major)
  // keep the legacy flat-row behaviour exactly.
  std::int64_t channels = 1;
  std::int64_t ranks = 1;
  std::int64_t banks = 1;
  AddressMapping mapping = AddressMapping::kRowMajor;
  std::int64_t stripe_bytes = 128;  ///< kBankStripe interleave granule
  /// Flip-probability ramp: at pressure == hammer_threshold a susceptible
  /// victim cell flips with probability 1/flip_ramp, saturating at 1 after
  /// `flip_ramp` further activations. <= 1 makes the threshold a step.
  std::int64_t flip_ramp = 50000;
};

/// A bit flip that occurred in DRAM. `row` is the *global* row id
/// (channel/rank/bank folded in; equal to the flat row for the default
/// geometry) and `offset` is the arena byte offset the cell maps back to
/// (-1 when produced by the legacy flat-row API).
struct DramFlip {
  std::int64_t row = 0;
  std::int64_t byte_in_row = 0;
  int bit = 0;
  std::int64_t offset = -1;
};

/// A fully decomposed physical address.
struct PhysAddr {
  std::int64_t channel = 0;
  std::int64_t rank = 0;
  std::int64_t bank = 0;
  std::int64_t row = 0;
  std::int64_t col = 0;
};

class DramModel {
 public:
  explicit DramModel(const DramConfig& cfg);

  const DramConfig& config() const { return cfg_; }

  /// Banks across the whole system (channels x ranks x banks).
  std::int64_t total_banks() const { return total_banks_; }
  /// Rows across the whole system (total_banks x num_rows).
  std::int64_t total_rows() const { return total_banks_ * cfg_.num_rows; }
  std::int64_t capacity_bytes() const {
    return total_rows() * cfg_.row_bytes;
  }

  // --- physical address mapping -------------------------------------
  /// Arena byte offset -> (channel, rank, bank, row, col). Exact inverse
  /// of compose(); throws when the offset exceeds the capacity.
  PhysAddr decompose(std::int64_t offset) const;
  /// (channel, rank, bank, row, col) -> arena byte offset.
  std::int64_t compose(const PhysAddr& addr) const;
  /// Flat row id of an address: rows of one bank are consecutive, banks
  /// are ordered (channel, rank, bank). Keys the activation counters.
  std::int64_t global_row(const PhysAddr& addr) const;

  /// Map a weight buffer into consecutive flat rows starting at
  /// `base_row`; returns the number of rows occupied. Rejects mappings
  /// that fall outside the geometry or overlap an earlier mapping.
  std::int64_t map_buffer(std::int64_t base_row, std::int64_t bytes);

  // --- legacy flat-row attack surface --------------------------------
  /// Hammer the rows adjacent to `victim_row` `activations` times. Bits
  /// in the victim row flip where the cell is susceptible once the
  /// accumulated count reaches the hammer threshold (and never below it).
  std::vector<DramFlip> hammer(std::int64_t victim_row,
                               std::int64_t activations);

  /// Targeted variant (the DeepHammer-style attacker): hammer the
  /// victim's neighbours `activations` times (default: exactly the
  /// threshold) and flip a specific bit. Sub-threshold accumulated
  /// activations never flip; past the threshold the flip succeeds with
  /// probability `placement_success` — an attacker who massages memory
  /// layout until the target lands on a vulnerable cell.
  bool targeted_flip(std::int64_t row, std::int64_t byte_in_row, int bit,
                     double placement_success, Rng& rng,
                     std::int64_t activations = -1);

  // --- physical rowhammer attack surface ------------------------------
  /// One full rowhammer pass against the row addressed by `victim` (its
  /// `col` is ignored): activate the aggressor row above it — and below
  /// it too when `double_sided` — `activations` times each, then harvest
  /// the victim's flips. Pressure accumulates across calls, like the
  /// flat-row counters.
  std::vector<DramFlip> hammer_victim(const PhysAddr& victim,
                                      std::int64_t activations,
                                      bool double_sided, Rng& rng);

  /// Activate (open) one aggressor row `activations` times.
  void activate(const PhysAddr& aggressor, std::int64_t activations);

  /// Collect the flips the current neighbour pressure induces in the row
  /// addressed by `victim` (its `col` is ignored). Susceptible cells flip
  /// with probability rising in (pressure - threshold); below the
  /// threshold nothing flips. Flips carry the arena byte offset.
  std::vector<DramFlip> harvest(const PhysAddr& victim, Rng& rng);

  /// Is the given cell susceptible to rowhammer? `row` is a global row.
  bool susceptible(std::int64_t row, std::int64_t byte_in_row, int bit) const;

  /// Accumulated activation count of a global row.
  std::int64_t activations(std::int64_t row) const;

 private:
  std::uint64_t cell_hash(std::int64_t row, std::int64_t byte_in_row,
                          int bit) const;
  /// Aggressor pressure on a victim global row: the activation counts of
  /// its same-bank neighbours.
  std::int64_t pressure_on(std::int64_t global_row) const;

  DramConfig cfg_;
  std::int64_t total_banks_ = 1;
  std::vector<std::int64_t> activation_count_;  ///< per global row
  /// Mapped [begin, end) flat-row intervals (overlap rejection).
  std::vector<std::pair<std::int64_t, std::int64_t>> mapped_;
  std::uint64_t salt_;
};

/// Glue: apply a set of DRAM flips to the int8 weight buffers of a model,
/// given the row where the model's weights start. Returns the number of
/// flips that landed inside weight storage.
std::int64_t apply_dram_flips_to_model(const std::vector<DramFlip>& flips,
                                       std::int64_t model_base_row,
                                       const DramConfig& cfg,
                                       quant::QuantizedModel& qm);

}  // namespace radar::sim
