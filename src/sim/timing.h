// Analytic timing model — the gem5 stand-in (see DESIGN.md §4).
//
// Models the paper's platform: Cortex-M4F-class core at 1 GHz streaming
// int8 weights from DRAM through an L1/L2 hierarchy. Inference time is
//
//   cycles = cpm * MACs  +  cpw_load * weight_bytes
//
// and the protection schemes add
//
//   RADAR:  cks_per_weight * W  (+ ilv_per_weight * W if interleaved)
//           + group_cost * groups
//   CRC:    crc_per_byte * W + crc_group_cost * groups
//
// The constants default to values calibrated so that the *baseline and
// RADAR rows of the paper's Table IV/V are matched exactly* on the
// full-size network shapes; every other configuration (group-size sweeps,
// other codes, batch sizes) is then a prediction of the model.
// calibrate() re-derives the constants from any two (shape, time) pairs.
#pragma once

#include <cstdint>

#include "sim/netdesc.h"

namespace radar::sim {

struct SimConfig {
  double freq_hz = 1e9;

  // Inference core. cycles_per_mac is chosen so both Table IV baselines
  // land within a few percent (the exact 2x2 solution is ill-conditioned
  // and yields a nonphysical negative load cost).
  double cycles_per_mac = 1.70;
  double cycles_per_weight_load = 3.0;

  // RADAR detection (calibrated on Table IV RADAR rows: 2.4 ms @ G=8 on
  // ResNet-20 and 19 ms @ G=512 on ResNet-18, non-interleaved).
  double checksum_cycles_per_weight = 1.512;
  double interleave_cycles_per_weight = 3.79;
  double radar_group_cycles = 58.78;

  // CRC (bit-serial over each byte; calibrated on Table V CRC rows:
  // 17.9 ms / 317 ms detection overheads).
  double crc_cycles_per_byte = 26.52;
  double crc_group_cycles = 316.4;

  // Hamming SEC-DED (per-bit parity accumulation).
  double hamming_cycles_per_bit = 2.0;
  double hamming_group_cycles = 80.0;

  // Recovery costs.
  double zero_out_cycles_per_weight = 1.0;
  double reload_bytes_per_cycle = 8.0;  ///< DRAM refill bandwidth
};

/// Timing results in seconds.
struct TimingBreakdown {
  double baseline = 0.0;   ///< unprotected inference
  double detection = 0.0;  ///< added by the protection scheme
  double total() const { return baseline + detection; }
  double overhead_pct() const {
    return baseline > 0.0 ? 100.0 * detection / baseline : 0.0;
  }
};

class TimingSimulator {
 public:
  explicit TimingSimulator(const SimConfig& cfg = {}) : cfg_(cfg) {}

  const SimConfig& config() const { return cfg_; }

  /// Unprotected single-image inference time (seconds).
  double inference_seconds(const NetworkShape& net) const;

  /// Inference + RADAR detection embedded per layer.
  TimingBreakdown radar_seconds(const NetworkShape& net,
                                std::int64_t group_size,
                                bool interleave) const;

  /// Inference + CRC-based detection.
  TimingBreakdown crc_seconds(const NetworkShape& net,
                              std::int64_t group_size, int crc_width) const;

  /// Inference + Hamming SEC-DED detection.
  TimingBreakdown hamming_seconds(const NetworkShape& net,
                                  std::int64_t group_size) const;

  /// One-off recovery costs (seconds).
  double zero_out_seconds(std::int64_t weights_in_flagged_groups) const;
  double reload_seconds(std::int64_t total_weight_bytes) const;

  /// Multi-batch amortization: detection runs once per weight fetch while
  /// inference runs `batch` times (paper §VII.A last paragraph).
  TimingBreakdown radar_seconds_batched(const NetworkShape& net,
                                        std::int64_t group_size,
                                        bool interleave,
                                        std::int64_t batch) const;

  /// Calibrate (cycles_per_mac, cycles_per_weight_load) so that the two
  /// shapes hit the two target times exactly. Throws if the 2x2 system is
  /// singular.
  void calibrate_baseline(const NetworkShape& a, double seconds_a,
                          const NetworkShape& b, double seconds_b);

  /// Calibrate the per-weight / per-group RADAR costs from two measured
  /// detection overheads (non-interleaved).
  void calibrate_radar(const NetworkShape& a, std::int64_t ga,
                       double overhead_a, const NetworkShape& b,
                       std::int64_t gb, double overhead_b);

 private:
  SimConfig cfg_;
};

}  // namespace radar::sim
