#include "sim/netdesc.h"

namespace radar::sim {

std::int64_t NetworkShape::total_weights() const {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.weights();
  return n;
}

std::int64_t NetworkShape::total_macs() const {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.macs();
  return n;
}

std::int64_t NetworkShape::total_groups(std::int64_t group_size) const {
  std::int64_t n = 0;
  for (const auto& l : layers)
    n += (l.weights() + group_size - 1) / group_size;
  return n;
}

std::int64_t NetworkShape::signature_storage_bytes(std::int64_t group_size,
                                                   int sig_bits) const {
  return (total_groups(group_size) * sig_bits + 7) / 8;
}

std::int64_t NetworkShape::code_storage_bytes(std::int64_t group_size,
                                              int code_bits) const {
  return (total_groups(group_size) * code_bits + 7) / 8;
}

namespace {
LayerShape conv(std::string name, std::int64_t cin, std::int64_t cout,
                std::int64_t k, std::int64_t stride, std::int64_t pad,
                std::int64_t in_h, std::int64_t in_w) {
  LayerShape l;
  l.name = std::move(name);
  l.type = LayerType::kConv;
  l.in_channels = cin;
  l.out_channels = cout;
  l.kernel = k;
  l.stride = stride;
  l.padding = pad;
  l.in_h = in_h;
  l.in_w = in_w;
  return l;
}

LayerShape fc(std::string name, std::int64_t in, std::int64_t out) {
  LayerShape l;
  l.name = std::move(name);
  l.type = LayerType::kFullyConnected;
  l.in_channels = in;
  l.out_channels = out;
  return l;
}

/// Append one basic block (two 3x3 convs + optional 1x1 projection).
/// Returns the output spatial size.
std::int64_t basic_block(NetworkShape& net, const std::string& name,
                         std::int64_t cin, std::int64_t cout,
                         std::int64_t stride, std::int64_t in_hw) {
  net.layers.push_back(
      conv(name + ".conv1", cin, cout, 3, stride, 1, in_hw, in_hw));
  const std::int64_t out_hw = net.layers.back().out_h();
  net.layers.push_back(
      conv(name + ".conv2", cout, cout, 3, 1, 1, out_hw, out_hw));
  if (stride != 1 || cin != cout) {
    net.layers.push_back(
        conv(name + ".down", cin, cout, 1, stride, 0, in_hw, in_hw));
  }
  return out_hw;
}
}  // namespace

NetworkShape resnet20_shape() {
  NetworkShape net;
  net.name = "resnet20-cifar10";
  std::int64_t hw = 32;
  net.layers.push_back(conv("stem", 3, 16, 3, 1, 1, hw, hw));
  const std::int64_t widths[3] = {16, 32, 64};
  std::int64_t cin = 16;
  for (int stage = 0; stage < 3; ++stage) {
    for (int b = 0; b < 3; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      hw = basic_block(net,
                       "stage" + std::to_string(stage) + ".block" +
                           std::to_string(b),
                       cin, widths[stage], stride, hw);
      cin = widths[stage];
    }
  }
  net.layers.push_back(fc("fc", 64, 10));
  return net;
}

NetworkShape resnet18_shape() {
  NetworkShape net;
  net.name = "resnet18-imagenet";
  net.layers.push_back(conv("stem", 3, 64, 7, 2, 3, 224, 224));
  std::int64_t hw = 56;  // after the 3x3/2 maxpool on the 112x112 stem out
  const std::int64_t widths[4] = {64, 128, 256, 512};
  std::int64_t cin = 64;
  for (int stage = 0; stage < 4; ++stage) {
    for (int b = 0; b < 2; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      hw = basic_block(net,
                       "stage" + std::to_string(stage) + ".block" +
                           std::to_string(b),
                       cin, widths[stage], stride, hw);
      cin = widths[stage];
    }
  }
  net.layers.push_back(fc("fc", 512, 1000));
  return net;
}

}  // namespace radar::sim
