#include "sim/timing.h"

#include <cmath>

#include "common/error.h"

namespace radar::sim {

namespace {
/// Solve [a11 a12; a21 a22] [x; y] = [b1; b2].
void solve2x2(double a11, double a12, double b1, double a21, double a22,
              double b2, double& x, double& y) {
  const double det = a11 * a22 - a12 * a21;
  RADAR_REQUIRE(std::fabs(det) > 1e-12, "singular calibration system");
  x = (b1 * a22 - b2 * a12) / det;
  y = (a11 * b2 - a21 * b1) / det;
}
}  // namespace

double TimingSimulator::inference_seconds(const NetworkShape& net) const {
  const double cycles =
      cfg_.cycles_per_mac * static_cast<double>(net.total_macs()) +
      cfg_.cycles_per_weight_load * static_cast<double>(net.total_weights());
  return cycles / cfg_.freq_hz;
}

TimingBreakdown TimingSimulator::radar_seconds(const NetworkShape& net,
                                               std::int64_t group_size,
                                               bool interleave) const {
  TimingBreakdown t;
  t.baseline = inference_seconds(net);
  const double w = static_cast<double>(net.total_weights());
  const double groups = static_cast<double>(net.total_groups(group_size));
  double cycles = cfg_.checksum_cycles_per_weight * w +
                  cfg_.radar_group_cycles * groups;
  if (interleave) cycles += cfg_.interleave_cycles_per_weight * w;
  t.detection = cycles / cfg_.freq_hz;
  return t;
}

TimingBreakdown TimingSimulator::crc_seconds(const NetworkShape& net,
                                             std::int64_t group_size,
                                             int crc_width) const {
  (void)crc_width;  // bit-serial cost is width-independent per byte
  TimingBreakdown t;
  t.baseline = inference_seconds(net);
  const double w = static_cast<double>(net.total_weights());
  const double groups = static_cast<double>(net.total_groups(group_size));
  t.detection =
      (cfg_.crc_cycles_per_byte * w + cfg_.crc_group_cycles * groups) /
      cfg_.freq_hz;
  return t;
}

TimingBreakdown TimingSimulator::hamming_seconds(
    const NetworkShape& net, std::int64_t group_size) const {
  TimingBreakdown t;
  t.baseline = inference_seconds(net);
  const double bits = static_cast<double>(net.total_weights()) * 8.0;
  const double groups = static_cast<double>(net.total_groups(group_size));
  t.detection = (cfg_.hamming_cycles_per_bit * bits +
                 cfg_.hamming_group_cycles * groups) /
                cfg_.freq_hz;
  return t;
}

double TimingSimulator::zero_out_seconds(
    std::int64_t weights_in_flagged_groups) const {
  return cfg_.zero_out_cycles_per_weight *
         static_cast<double>(weights_in_flagged_groups) / cfg_.freq_hz;
}

double TimingSimulator::reload_seconds(std::int64_t total_weight_bytes) const {
  return static_cast<double>(total_weight_bytes) /
         cfg_.reload_bytes_per_cycle / cfg_.freq_hz;
}

TimingBreakdown TimingSimulator::radar_seconds_batched(
    const NetworkShape& net, std::int64_t group_size, bool interleave,
    std::int64_t batch) const {
  RADAR_REQUIRE(batch > 0, "batch must be positive");
  TimingBreakdown per_image = radar_seconds(net, group_size, interleave);
  TimingBreakdown t;
  t.baseline = per_image.baseline * static_cast<double>(batch);
  t.detection = per_image.detection;  // weights fetched once per batch
  return t;
}

void TimingSimulator::calibrate_baseline(const NetworkShape& a,
                                         double seconds_a,
                                         const NetworkShape& b,
                                         double seconds_b) {
  solve2x2(static_cast<double>(a.total_macs()),
           static_cast<double>(a.total_weights()), seconds_a * cfg_.freq_hz,
           static_cast<double>(b.total_macs()),
           static_cast<double>(b.total_weights()), seconds_b * cfg_.freq_hz,
           cfg_.cycles_per_mac, cfg_.cycles_per_weight_load);
  RADAR_REQUIRE(cfg_.cycles_per_mac > 0, "negative calibrated MAC cost");
}

void TimingSimulator::calibrate_radar(const NetworkShape& a, std::int64_t ga,
                                      double overhead_a,
                                      const NetworkShape& b, std::int64_t gb,
                                      double overhead_b) {
  solve2x2(static_cast<double>(a.total_weights()),
           static_cast<double>(a.total_groups(ga)),
           overhead_a * cfg_.freq_hz, static_cast<double>(b.total_weights()),
           static_cast<double>(b.total_groups(gb)),
           overhead_b * cfg_.freq_hz, cfg_.checksum_cycles_per_weight,
           cfg_.radar_group_cycles);
}

}  // namespace radar::sim
