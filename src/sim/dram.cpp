#include "sim/dram.h"

#include "common/error.h"
#include "common/rng.h"

namespace radar::sim {

namespace {
std::uint64_t mix64(std::uint64_t x) { return splitmix64(x); }
}  // namespace

DramModel::DramModel(const DramConfig& cfg)
    : cfg_(cfg),
      activation_count_(static_cast<std::size_t>(cfg.num_rows), 0),
      salt_(mix64(cfg.seed)) {
  RADAR_REQUIRE(cfg.row_bytes > 0 && cfg.num_rows > 0, "bad DRAM geometry");
}

std::uint64_t DramModel::cell_hash(std::int64_t row, std::int64_t byte_in_row,
                                   int bit) const {
  return mix64(salt_ ^ (static_cast<std::uint64_t>(row) << 32) ^
               (static_cast<std::uint64_t>(byte_in_row) << 3) ^
               static_cast<std::uint64_t>(bit));
}

bool DramModel::susceptible(std::int64_t row, std::int64_t byte_in_row,
                            int bit) const {
  // Deterministic per-cell draw: a fixed fraction of cells are weak.
  const double u = static_cast<double>(cell_hash(row, byte_in_row, bit) >> 11) /
                   static_cast<double>(1ull << 53);
  return u < cfg_.cell_vulnerability;
}

std::int64_t DramModel::map_buffer(std::int64_t base_row, std::int64_t bytes) {
  const std::int64_t rows = (bytes + cfg_.row_bytes - 1) / cfg_.row_bytes;
  RADAR_REQUIRE(base_row >= 0 && base_row + rows <= cfg_.num_rows,
                "buffer does not fit in DRAM");
  return rows;
}

std::vector<DramFlip> DramModel::hammer(std::int64_t victim_row,
                                        std::int64_t activations) {
  RADAR_REQUIRE(victim_row >= 0 && victim_row < cfg_.num_rows,
                "row out of range");
  auto& count = activation_count_[static_cast<std::size_t>(victim_row)];
  count += activations;
  std::vector<DramFlip> flips;
  if (count < cfg_.hammer_threshold) return flips;
  count = 0;  // flips occurred; cells need re-hammering afterwards
  for (std::int64_t b = 0; b < cfg_.row_bytes; ++b) {
    for (int bit = 0; bit < 8; ++bit) {
      if (susceptible(victim_row, b, bit))
        flips.push_back({victim_row, b, bit});
    }
  }
  return flips;
}

bool DramModel::targeted_flip(std::int64_t row, std::int64_t byte_in_row,
                              int bit, double placement_success, Rng& rng) {
  RADAR_REQUIRE(row >= 0 && row < cfg_.num_rows, "row out of range");
  RADAR_REQUIRE(byte_in_row >= 0 && byte_in_row < cfg_.row_bytes,
                "byte out of range");
  return rng.bernoulli(placement_success);
}

std::int64_t DramModel::activations(std::int64_t row) const {
  RADAR_REQUIRE(row >= 0 && row < cfg_.num_rows, "row out of range");
  return activation_count_[static_cast<std::size_t>(row)];
}

std::int64_t apply_dram_flips_to_model(const std::vector<DramFlip>& flips,
                                       std::int64_t model_base_row,
                                       const DramConfig& cfg,
                                       quant::QuantizedModel& qm) {
  std::int64_t applied = 0;
  for (const auto& f : flips) {
    const std::int64_t flat =
        (f.row - model_base_row) * cfg.row_bytes + f.byte_in_row;
    if (flat < 0 || flat >= qm.total_weights()) continue;
    // Locate (layer, index) for the flat byte offset.
    std::int64_t rem = flat;
    std::size_t layer = 0;
    while (rem >= qm.layer(layer).size()) {
      rem -= qm.layer(layer).size();
      ++layer;
    }
    qm.flip_bit(layer, rem, f.bit);
    ++applied;
  }
  return applied;
}

}  // namespace radar::sim
