#include "sim/dram.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace radar::sim {

namespace {
std::uint64_t mix64(std::uint64_t x) { return splitmix64(x); }
}  // namespace

DramModel::DramModel(const DramConfig& cfg)
    : cfg_(cfg),
      total_banks_(cfg.channels * cfg.ranks * cfg.banks),
      salt_(mix64(cfg.seed)) {
  RADAR_REQUIRE(cfg.row_bytes > 0 && cfg.num_rows > 0, "bad DRAM geometry");
  RADAR_REQUIRE(cfg.channels > 0 && cfg.ranks > 0 && cfg.banks > 0,
                "bad DRAM organization");
  RADAR_REQUIRE(cfg.stripe_bytes > 0, "bad DRAM stripe size");
  if (cfg.mapping == AddressMapping::kBankStripe)
    RADAR_REQUIRE(cfg.row_bytes % cfg.stripe_bytes == 0,
                  "row_bytes must be a multiple of stripe_bytes");
  activation_count_.assign(static_cast<std::size_t>(total_rows()), 0);
}

std::uint64_t DramModel::cell_hash(std::int64_t row, std::int64_t byte_in_row,
                                   int bit) const {
  return mix64(salt_ ^ (static_cast<std::uint64_t>(row) << 32) ^
               (static_cast<std::uint64_t>(byte_in_row) << 3) ^
               static_cast<std::uint64_t>(bit));
}

bool DramModel::susceptible(std::int64_t row, std::int64_t byte_in_row,
                            int bit) const {
  // Deterministic per-cell draw: a fixed fraction of cells are weak.
  const double u = static_cast<double>(cell_hash(row, byte_in_row, bit) >> 11) /
                   static_cast<double>(1ull << 53);
  return u < cfg_.cell_vulnerability;
}

PhysAddr DramModel::decompose(std::int64_t offset) const {
  RADAR_REQUIRE(offset >= 0 && offset < capacity_bytes(),
                "offset outside DRAM capacity");
  PhysAddr a;
  std::int64_t lin;  // global bank index, ordered (channel, rank, bank)
  if (cfg_.mapping == AddressMapping::kRowMajor) {
    const std::int64_t gr = offset / cfg_.row_bytes;
    a.col = offset % cfg_.row_bytes;
    a.row = gr % cfg_.num_rows;
    lin = gr / cfg_.num_rows;
  } else {  // kBankStripe
    const std::int64_t s = offset / cfg_.stripe_bytes;
    const std::int64_t within = offset % cfg_.stripe_bytes;
    lin = s % total_banks_;
    const std::int64_t byte_in_bank =
        (s / total_banks_) * cfg_.stripe_bytes + within;
    a.row = byte_in_bank / cfg_.row_bytes;
    a.col = byte_in_bank % cfg_.row_bytes;
  }
  a.bank = lin % cfg_.banks;
  a.rank = (lin / cfg_.banks) % cfg_.ranks;
  a.channel = lin / (cfg_.banks * cfg_.ranks);
  return a;
}

std::int64_t DramModel::compose(const PhysAddr& a) const {
  RADAR_REQUIRE(a.channel >= 0 && a.channel < cfg_.channels &&
                    a.rank >= 0 && a.rank < cfg_.ranks && a.bank >= 0 &&
                    a.bank < cfg_.banks,
                "bank address out of range");
  RADAR_REQUIRE(a.row >= 0 && a.row < cfg_.num_rows, "row out of range");
  RADAR_REQUIRE(a.col >= 0 && a.col < cfg_.row_bytes, "column out of range");
  const std::int64_t lin =
      (a.channel * cfg_.ranks + a.rank) * cfg_.banks + a.bank;
  if (cfg_.mapping == AddressMapping::kRowMajor)
    return (lin * cfg_.num_rows + a.row) * cfg_.row_bytes + a.col;
  const std::int64_t byte_in_bank = a.row * cfg_.row_bytes + a.col;
  const std::int64_t s =
      (byte_in_bank / cfg_.stripe_bytes) * total_banks_ + lin;
  return s * cfg_.stripe_bytes + byte_in_bank % cfg_.stripe_bytes;
}

std::int64_t DramModel::global_row(const PhysAddr& a) const {
  const std::int64_t lin =
      (a.channel * cfg_.ranks + a.rank) * cfg_.banks + a.bank;
  return lin * cfg_.num_rows + a.row;
}

std::int64_t DramModel::map_buffer(std::int64_t base_row, std::int64_t bytes) {
  RADAR_REQUIRE(bytes > 0, "cannot map an empty buffer");
  const std::int64_t rows = (bytes + cfg_.row_bytes - 1) / cfg_.row_bytes;
  RADAR_REQUIRE(base_row >= 0 && base_row + rows <= total_rows(),
                "buffer does not fit in DRAM");
  for (const auto& [b, e] : mapped_)
    RADAR_REQUIRE(base_row + rows <= b || base_row >= e,
                  "buffer overlaps an existing DRAM mapping");
  mapped_.emplace_back(base_row, base_row + rows);
  return rows;
}

std::vector<DramFlip> DramModel::hammer(std::int64_t victim_row,
                                        std::int64_t activations) {
  RADAR_REQUIRE(victim_row >= 0 && victim_row < total_rows(),
                "row out of range");
  RADAR_REQUIRE(activations >= 0, "negative activations");
  auto& count = activation_count_[static_cast<std::size_t>(victim_row)];
  count += activations;
  std::vector<DramFlip> flips;
  // Sub-threshold pressure never flips — the threshold is the physics.
  if (count < cfg_.hammer_threshold) return flips;
  count = 0;  // flips occurred; cells need re-hammering afterwards
  for (std::int64_t b = 0; b < cfg_.row_bytes; ++b) {
    for (int bit = 0; bit < 8; ++bit) {
      if (susceptible(victim_row, b, bit))
        flips.push_back({victim_row, b, bit, -1});
    }
  }
  return flips;
}

bool DramModel::targeted_flip(std::int64_t row, std::int64_t byte_in_row,
                              int bit, double placement_success, Rng& rng,
                              std::int64_t activations) {
  RADAR_REQUIRE(row >= 0 && row < total_rows(), "row out of range");
  RADAR_REQUIRE(byte_in_row >= 0 && byte_in_row < cfg_.row_bytes,
                "byte out of range");
  // Same bookkeeping as hammer(): the attempt costs activations (default:
  // exactly the threshold) and sub-threshold pressure never flips.
  auto& count = activation_count_[static_cast<std::size_t>(row)];
  count += activations < 0 ? cfg_.hammer_threshold : activations;
  if (count < cfg_.hammer_threshold) return false;
  count -= cfg_.hammer_threshold;
  return rng.bernoulli(placement_success);
}

void DramModel::activate(const PhysAddr& aggressor,
                         std::int64_t activations) {
  RADAR_REQUIRE(activations >= 0, "negative activations");
  const std::int64_t gr = global_row(aggressor);
  RADAR_REQUIRE(gr >= 0 && gr < total_rows(), "row out of range");
  activation_count_[static_cast<std::size_t>(gr)] += activations;
}

std::int64_t DramModel::pressure_on(std::int64_t gr) const {
  // Only same-bank neighbours disturb a row: bank boundaries isolate.
  const std::int64_t r = gr % cfg_.num_rows;
  std::int64_t p = 0;
  if (r > 0) p += activation_count_[static_cast<std::size_t>(gr - 1)];
  if (r + 1 < cfg_.num_rows)
    p += activation_count_[static_cast<std::size_t>(gr + 1)];
  return p;
}

std::vector<DramFlip> DramModel::harvest(const PhysAddr& victim, Rng& rng) {
  PhysAddr v = victim;
  v.col = 0;
  const std::int64_t gr = global_row(v);
  RADAR_REQUIRE(gr >= 0 && gr < total_rows(), "row out of range");
  std::vector<DramFlip> flips;
  const std::int64_t pressure = pressure_on(gr);
  if (pressure < cfg_.hammer_threshold) return flips;
  // Flip probability ramps linearly in the pressure past the threshold
  // and saturates; double-sided hammering doubles the pressure, hence
  // lands higher on the ramp for the same per-aggressor activation count.
  const double p =
      cfg_.flip_ramp <= 1
          ? 1.0
          : std::min(1.0, static_cast<double>(pressure -
                                              cfg_.hammer_threshold + 1) /
                              static_cast<double>(cfg_.flip_ramp));
  for (std::int64_t col = 0; col < cfg_.row_bytes; ++col) {
    for (int bit = 0; bit < 8; ++bit) {
      if (!susceptible(gr, col, bit)) continue;
      if (!rng.bernoulli(p)) continue;
      v.col = col;
      flips.push_back({gr, col, bit, compose(v)});
    }
  }
  return flips;
}

std::vector<DramFlip> DramModel::hammer_victim(const PhysAddr& victim,
                                               std::int64_t activations,
                                               bool double_sided, Rng& rng) {
  PhysAddr above = victim, below = victim;
  above.row = victim.row + 1;
  below.row = victim.row - 1;
  const bool has_above = above.row < cfg_.num_rows;
  const bool has_below = below.row >= 0;
  RADAR_REQUIRE(has_above || has_below, "victim row has no neighbours");
  if (double_sided) {
    if (has_above) activate(above, activations);
    if (has_below) activate(below, activations);
  } else {
    activate(has_above ? above : below, activations);
  }
  return harvest(victim, rng);
}

std::int64_t DramModel::activations(std::int64_t row) const {
  RADAR_REQUIRE(row >= 0 && row < total_rows(), "row out of range");
  return activation_count_[static_cast<std::size_t>(row)];
}

std::int64_t apply_dram_flips_to_model(const std::vector<DramFlip>& flips,
                                       std::int64_t model_base_row,
                                       const DramConfig& cfg,
                                       quant::QuantizedModel& qm) {
  std::int64_t applied = 0;
  for (const auto& f : flips) {
    const std::int64_t flat =
        (f.row - model_base_row) * cfg.row_bytes + f.byte_in_row;
    if (flat < 0 || flat >= qm.total_weights()) continue;
    // Locate (layer, index) for the flat byte offset.
    std::int64_t rem = flat;
    std::size_t layer = 0;
    while (rem >= qm.layer(layer).size()) {
      rem -= qm.layer(layer).size();
      ++layer;
    }
    qm.flip_bit(layer, rem, f.bit);
    ++applied;
  }
  return applied;
}

}  // namespace radar::sim
