// Network shape descriptors for the timing/storage experiments.
//
// Tables IV/V and Fig. 6 of the paper are about the *full-size* networks
// (ResNet-20 @ 32x32, ResNet-18 @ 224x224 with 11.2M conv/fc weights).
// The timing simulator consumes these descriptors — independent of the
// reduced-width models we train — so MAC counts, weight counts and
// signature storage match the paper's systems exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace radar::sim {

enum class LayerType { kConv, kFullyConnected };

struct LayerShape {
  std::string name;
  LayerType type = LayerType::kConv;
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 1;
  std::int64_t stride = 1;
  std::int64_t padding = 0;
  std::int64_t in_h = 0, in_w = 0;  ///< input spatial size (conv only)

  std::int64_t out_h() const {
    return type == LayerType::kConv
               ? (in_h + 2 * padding - kernel) / stride + 1
               : 1;
  }
  std::int64_t out_w() const {
    return type == LayerType::kConv
               ? (in_w + 2 * padding - kernel) / stride + 1
               : 1;
  }
  /// Weight count (= int8 bytes in DRAM).
  std::int64_t weights() const {
    return type == LayerType::kConv
               ? out_channels * in_channels * kernel * kernel
               : in_channels * out_channels;
  }
  /// Multiply-accumulates for one input sample.
  std::int64_t macs() const {
    return type == LayerType::kConv
               ? out_channels * out_h() * out_w() * in_channels * kernel *
                     kernel
               : in_channels * out_channels;
  }
};

struct NetworkShape {
  std::string name;
  std::vector<LayerShape> layers;

  std::int64_t total_weights() const;
  std::int64_t total_macs() const;
  /// Total checksum groups for a given group size (per-layer padding, as
  /// in the implementation).
  std::int64_t total_groups(std::int64_t group_size) const;
  /// Golden-signature bytes for a group size / signature width.
  std::int64_t signature_storage_bytes(std::int64_t group_size,
                                       int sig_bits) const;
  /// Storage bytes for a per-group code of `code_bits` (CRC / Hamming).
  std::int64_t code_storage_bytes(std::int64_t group_size,
                                  int code_bits) const;
};

/// The paper's ResNet-20 on 32x32 CIFAR-10 inputs (0.27M weights).
NetworkShape resnet20_shape();

/// The paper's ResNet-18 on 224x224 ImageNet inputs (11.2M weights,
/// 7x7/2 stem + maxpool + 4 stages of 2 basic blocks + fc-1000).
NetworkShape resnet18_shape();

}  // namespace radar::sim
