#include "quant/epoch_guard.h"

#include <chrono>
#include <thread>

#include "common/fault_points.h"

namespace radar::quant {

EpochGuard::EpochGuard(std::int64_t size_bytes, std::int64_t shard_bytes)
    : size_bytes_(size_bytes), shard_bytes_(shard_bytes) {
  RADAR_REQUIRE(size_bytes > 0, "epoch guard over empty arena");
  RADAR_REQUIRE(shard_bytes > 0, "epoch shard size must be positive");
  const std::int64_t n = (size_bytes + shard_bytes - 1) / shard_bytes;
  epochs_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(n));
}

std::pair<std::size_t, std::size_t> EpochGuard::cover(
    std::int64_t begin, std::int64_t end) const {
  RADAR_REQUIRE(begin >= 0 && begin < end && end <= size_bytes_,
                "epoch range outside guarded arena");
  return {shard_of(begin), shard_of(end - 1)};
}

bool EpochGuard::read_begin(std::int64_t begin, std::int64_t end,
                            std::vector<std::uint64_t>& snap) const {
  const auto [s0, s1] = cover(begin, end);
  snap.clear();
  for (std::size_t s = s0; s <= s1; ++s) {
    // Acquire: the data reads that follow must not hoist above this load.
    const std::uint64_t e = epochs_[s].load(std::memory_order_acquire);
    if ((e & 1) != 0) return false;  // writer mid-section
    snap.push_back(e);
  }
  return true;
}

bool EpochGuard::read_validate(std::int64_t begin, std::int64_t end,
                               const std::vector<std::uint64_t>& snap) const {
  // The data reads must complete before the epochs are re-examined
  // (Boehm's seqlock reader recipe: fence, then relaxed reloads).
  std::atomic_thread_fence(std::memory_order_acquire);
  const auto [s0, s1] = cover(begin, end);
  if (snap.size() != s1 - s0 + 1) return false;  // read_begin bailed early
  for (std::size_t s = s0; s <= s1; ++s) {
    if (epochs_[s].load(std::memory_order_relaxed) != snap[s - s0])
      return false;
  }
  return true;
}

EpochGuard::WriterSection::WriterSection(EpochGuard& guard,
                                         std::int64_t begin, std::int64_t end)
    : guard_(&guard), lock_(guard.writer_mu_) {
  const auto [s0, s1] = guard.cover(begin, end);
  first_ = s0;
  last_ = s1;
  guard_->writer_sections_.fetch_add(1, std::memory_order_relaxed);
  // Odd epochs tell optimistic readers to stand off. seq_cst RMWs keep
  // the epoch transition ordered against the plain data writes between
  // them on every target we build for; writers are rare enough that the
  // conservative ordering is free in practice.
  for (std::size_t s = s0; s <= s1; ++s)
    guard_->epochs_[s].fetch_add(1, std::memory_order_seq_cst);
  // Chaos: hold the odd epochs for a while — stretches the window where
  // optimistic scans must retry or fall back, the exact race the epoch
  // protocol exists to survive.
  if (chaos::fire(chaos::points::kWriterStall))
    std::this_thread::sleep_for(std::chrono::milliseconds(
        chaos::param(chaos::points::kWriterStall, 10)));
}

EpochGuard::WriterSection::~WriterSection() {
  for (std::size_t s = first_; s <= last_; ++s)
    guard_->epochs_[s].fetch_add(1, std::memory_order_seq_cst);
}

}  // namespace radar::quant
