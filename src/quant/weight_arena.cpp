#include "quant/weight_arena.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "common/simd_ops.h"

namespace radar::quant {

AlignedBlob::AlignedBlob(std::int64_t size) : size_(size) {
  RADAR_REQUIRE(size >= 0, "negative blob size");
  if (size == 0) return;
  auto* p = static_cast<std::int8_t*>(::operator new[](
      static_cast<std::size_t>(size),
      std::align_val_t{static_cast<std::size_t>(kArenaAlignment)}));
  std::memset(p, 0, static_cast<std::size_t>(size));
  buf_.reset(p);
}

WeightArena WeightArena::build(std::vector<ArenaLayer> layers) {
  WeightArena arena;
  std::int64_t cursor = 0;
  arena.weight_starts_.reserve(layers.size());
  for (ArenaLayer& l : layers) {
    RADAR_REQUIRE(l.size >= 0, "negative layer size in arena table");
    cursor = aligned_offset(cursor);
    l.offset = cursor;
    cursor += l.size;
    arena.weight_starts_.push_back(arena.total_weights_);
    arena.total_weights_ += l.size;
  }
  arena.blob_ = AlignedBlob(aligned_offset(cursor));
  arena.table_ = std::move(layers);
  return arena;
}

void WeightArena::enable_epoch_guard(std::int64_t shard_bytes) {
  guard_ = std::make_unique<EpochGuard>(blob_.size(), shard_bytes);
}

std::int64_t WeightArena::global_index(std::size_t layer,
                                       std::int64_t idx) const {
  const ArenaLayer& l = table_.at(layer);
  RADAR_REQUIRE(idx >= 0 && idx < l.size, "weight index out of range");
  return weight_starts_[layer] + idx;
}

std::pair<std::size_t, std::int64_t> WeightArena::locate(
    std::int64_t global) const {
  RADAR_REQUIRE(global >= 0 && global < total_weights_,
                "global weight index out of range");
  // Last layer whose first global index is <= global.
  const auto it = std::upper_bound(weight_starts_.begin(),
                                   weight_starts_.end(), global);
  const auto layer =
      static_cast<std::size_t>(it - weight_starts_.begin()) - 1;
  return {layer, global - weight_starts_[layer]};
}

void ArenaSnapshot::capture(const WeightArena& arena) {
  if (blob_.size() != arena.size_bytes())
    blob_ = AlignedBlob(arena.size_bytes());
  if (arena.size_bytes() > 0)
    std::memcpy(blob_.data(), arena.bytes().data(),
                static_cast<std::size_t>(arena.size_bytes()));
  table_ = arena.table();
}

bool operator==(const ArenaSnapshot& a, const ArenaSnapshot& b) {
  if (a.blob_.size() != b.blob_.size()) return false;
  if (a.table_.size() != b.table_.size()) return false;
  for (std::size_t i = 0; i < a.table_.size(); ++i) {
    if (a.table_[i].offset != b.table_[i].offset ||
        a.table_[i].size != b.table_[i].size)
      return false;
  }
  return a.blob_.size() == 0 ||
         simd::bytes_equal(a.blob_.data(), b.blob_.data(),
                           static_cast<std::size_t>(a.blob_.size()));
}

}  // namespace radar::quant
