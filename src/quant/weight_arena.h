// WeightArena: the contiguous int8 weight store behind QuantizedModel.
//
// The paper's threat model treats the deployed int8 weights as one
// DRAM-resident attack surface; this layer gives them exactly that shape
// in memory. All conv / fc weight tensors live back to back in a single
// 64-byte-aligned blob, described by a layer table (name / byte offset /
// size / scale). Each layer's codes are a std::span view into the blob,
// so every consumer — scan kernels, the int8 inference engine, package
// (de)serialization, snapshot / restore — operates on slices of the same
// allocation:
//
//   * snapshot and restore are one memcpy of the blob,
//   * baseline comparison is a byte compare against a second arena,
//   * whole-model scans shard by byte range instead of by layer,
//   * deployment packages (format v3) store the blob verbatim, which is
//     what makes read-only mmap of the golden copy possible.
//
// Layer offsets are 64-byte aligned; the padding bytes between layers are
// zero and are never written after construction, so whole-blob compares
// are exact.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "quant/epoch_guard.h"

namespace radar::quant {

/// Alignment of the blob and of every layer offset inside it.
constexpr std::int64_t kArenaAlignment = 64;

/// One row of the arena's layer table.
struct ArenaLayer {
  std::string name;         ///< hierarchical parameter name
  std::int64_t offset = 0;  ///< byte offset into the blob (64-byte aligned)
  std::int64_t size = 0;    ///< weight count (= bytes, int8 codes)
  float scale = 1.0f;       ///< per-tensor symmetric quantization scale
};

/// 64-byte-aligned owned int8 buffer. Zero-initialized on allocation so
/// inter-layer padding compares equal across arenas.
class AlignedBlob {
 public:
  AlignedBlob() = default;
  explicit AlignedBlob(std::int64_t size);

  std::int8_t* data() { return buf_.get(); }
  const std::int8_t* data() const { return buf_.get(); }
  std::int64_t size() const { return size_; }

 private:
  struct Deleter {
    void operator()(std::int8_t* p) const {
      ::operator delete[](p, std::align_val_t{
                                 static_cast<std::size_t>(kArenaAlignment)});
    }
  };
  std::unique_ptr<std::int8_t[], Deleter> buf_;
  std::int64_t size_ = 0;
};

/// The contiguous weight store: blob + layer table.
class WeightArena {
 public:
  WeightArena() = default;

  /// Build an arena for the given layers. `offset` fields of the input are
  /// ignored and reassigned: layers are laid out in order at 64-byte
  /// aligned offsets (deterministic, so two arenas with the same layer
  /// sizes have identical geometry). The blob starts zeroed.
  static WeightArena build(std::vector<ArenaLayer> layers);

  /// Byte offset layer `i` would get in a freshly built arena — the
  /// geometry contract shared with deployment packages.
  static std::int64_t aligned_offset(std::int64_t unaligned) {
    return (unaligned + kArenaAlignment - 1) / kArenaAlignment *
           kArenaAlignment;
  }

  std::size_t num_layers() const { return table_.size(); }
  const ArenaLayer& layer(std::size_t i) const { return table_.at(i); }
  const std::vector<ArenaLayer>& table() const { return table_; }
  void set_scale(std::size_t i, float s) { table_.at(i).scale = s; }

  /// Total real weights (sum of layer sizes, excluding padding).
  std::int64_t total_weights() const { return total_weights_; }
  /// Blob size in bytes (including inter-layer padding).
  std::int64_t size_bytes() const { return blob_.size(); }

  /// One layer's codes as a view into the blob.
  std::span<std::int8_t> span(std::size_t i) {
    const ArenaLayer& l = table_.at(i);
    return {blob_.data() + l.offset, static_cast<std::size_t>(l.size)};
  }
  std::span<const std::int8_t> span(std::size_t i) const {
    const ArenaLayer& l = table_.at(i);
    return {blob_.data() + l.offset, static_cast<std::size_t>(l.size)};
  }

  /// The whole blob, padding included.
  std::span<std::int8_t> bytes() {
    return {blob_.data(), static_cast<std::size_t>(blob_.size())};
  }
  std::span<const std::int8_t> bytes() const {
    return {blob_.data(), static_cast<std::size_t>(blob_.size())};
  }

  // ---- global-index mapping ----
  // The global index of a weight is its rank in layer order (0-based over
  // all real weights, padding excluded) — the coordinate byte-range work
  // partitioning and cross-layer tooling use.

  /// Global flat index of weight `idx` of layer `layer`.
  std::int64_t global_index(std::size_t layer, std::int64_t idx) const;
  /// Inverse: (layer, in-layer index) of a global flat index.
  std::pair<std::size_t, std::int64_t> locate(std::int64_t global) const;

  // ---- concurrent-access metadata (serving) ----

  /// Attach a per-shard seqlock epoch guard sized to the blob. Until this
  /// is called (batch workloads never call it) the arena carries zero
  /// concurrency overhead. Replaces any previous guard — only valid while
  /// no concurrent readers/writers are active.
  void enable_epoch_guard(
      std::int64_t shard_bytes = kDefaultEpochShardBytes);

  /// The attached guard, or nullptr when none. The guard's internal state
  /// is atomic, so handing out a mutable pointer from a const arena is
  /// sound (mirrors how thread pools are shared).
  EpochGuard* epoch_guard() const { return guard_.get(); }

  /// Blob byte range [begin, end) that layer `i` occupies — the reader
  /// coordinates for epoch validation.
  std::pair<std::int64_t, std::int64_t> layer_byte_range(
      std::size_t i) const {
    const ArenaLayer& l = table_.at(i);
    return {l.offset, l.offset + l.size};
  }

 private:
  std::vector<ArenaLayer> table_;
  std::vector<std::int64_t> weight_starts_;  ///< prefix sums of layer sizes
  AlignedBlob blob_;
  std::int64_t total_weights_ = 0;
  std::unique_ptr<EpochGuard> guard_;  ///< optional (serving only)
};

/// A point-in-time copy of an arena's blob: capture is one memcpy,
/// equality is one memcmp. Carries a copy of the source layer table so
/// per-layer views remain available after the source is gone.
class ArenaSnapshot {
 public:
  ArenaSnapshot() = default;

  /// Copy the arena's blob (reallocating only when the size changed).
  void capture(const WeightArena& arena);

  bool empty() const { return blob_.size() == 0; }
  std::int64_t size_bytes() const { return blob_.size(); }

  std::span<const std::int8_t> bytes() const {
    return {blob_.data(), static_cast<std::size_t>(blob_.size())};
  }
  std::size_t num_layers() const { return table_.size(); }
  const ArenaLayer& layer(std::size_t i) const { return table_.at(i); }
  std::span<const std::int8_t> span(std::size_t i) const {
    const ArenaLayer& l = table_.at(i);
    return {blob_.data() + l.offset, static_cast<std::size_t>(l.size)};
  }

  /// Blob-content equality (layer geometry must match too).
  friend bool operator==(const ArenaSnapshot& a, const ArenaSnapshot& b);

 private:
  friend class QuantizedModel;  // restore() reads the blob directly
  std::vector<ArenaLayer> table_;
  AlignedBlob blob_;
};

}  // namespace radar::quant
