// EpochGuard: per-shard seqlock epochs over the weight arena, the
// concurrency contract between live inference traffic, background
// integrity scans and the (rare) writers that mutate arena bytes —
// attack injection and recovery.
//
// The arena blob is divided into fixed-size byte shards, each with a
// 64-bit epoch counter. A writer (serialized by an internal mutex, since
// writers are rare and correctness matters more than writer throughput)
// brackets its byte-range mutation in a WriterSection: entering bumps
// every covered shard's epoch to an odd value, leaving bumps it back to
// even. A reader snapshots the epochs covering its range before reading
// (bailing out when any is odd — a writer is mid-flight), scans the raw
// bytes with the ordinary zero-copy kernels, then validates that every
// epoch is unchanged. An unchanged even epoch proves no writer overlapped
// the read, so the scan verdict is sound; any overlap forces a retry.
// Readers that keep losing (a pathologically hot writer) can fall back to
// lock_writers(), which quiesces writers entirely for one bounded scan —
// the retry loop is therefore wait-free in the expected case and merely
// blocking in the worst case, and detection never stops traffic.
//
// The optimistic read races writer stores on the raw bytes by design —
// the classic seqlock trade. Torn data is never *used*: validation
// discards it. Thread sanitizers flag the benign race at the access
// point; the TSan CI job carries a narrow suppression for the two
// sanctioned writer entry points (see tests/tsan.supp).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/error.h"

namespace radar::quant {

/// Default epoch-shard granularity: one page-ish unit keeps the epoch
/// array tiny while still localizing writer invalidation (a single-byte
/// flip only perturbs readers overlapping its 4 KiB shard).
constexpr std::int64_t kDefaultEpochShardBytes = 4096;

class EpochGuard {
 public:
  /// Guard `size_bytes` of arena, one epoch per `shard_bytes` shard.
  explicit EpochGuard(std::int64_t size_bytes,
                      std::int64_t shard_bytes = kDefaultEpochShardBytes);

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  std::int64_t size_bytes() const { return size_bytes_; }
  std::int64_t shard_bytes() const { return shard_bytes_; }
  std::size_t num_shards() const { return epochs_.size(); }
  std::size_t shard_of(std::int64_t byte) const {
    return static_cast<std::size_t>(byte / shard_bytes_);
  }

  /// Current epoch of one shard (stats / tests).
  std::uint64_t epoch(std::size_t shard) const {
    return epochs_[shard].load(std::memory_order_acquire);
  }

  // ---- reader protocol ----

  /// Snapshot the epochs covering bytes [begin, end) into `snap`
  /// (cleared first, capacity kept). Returns false — without filling the
  /// tail — when any covered epoch is odd, i.e. a writer is mid-section;
  /// the caller should back off and retry.
  bool read_begin(std::int64_t begin, std::int64_t end,
                  std::vector<std::uint64_t>& snap) const;

  /// After reading the data: true iff every covered epoch still equals
  /// its snapshot, proving no writer overlapped the read.
  bool read_validate(std::int64_t begin, std::int64_t end,
                     const std::vector<std::uint64_t>& snap) const;

  /// Reader-of-last-resort: lock writers out entirely (the same mutex
  /// WriterSection takes), guaranteeing one quiescent scan after a
  /// bounded number of optimistic failures.
  std::unique_lock<std::mutex> lock_writers() const {
    return std::unique_lock<std::mutex>(writer_mu_);
  }

  /// Total writer sections opened so far (stats).
  std::uint64_t writer_sections() const {
    return writer_sections_.load(std::memory_order_relaxed);
  }

  // ---- writer protocol ----

  /// RAII writer bracket over bytes [begin, end): serializes against
  /// other writers and flips the covered epochs odd for its lifetime.
  /// All arena mutations (bit-flip injection, recovery writes, bulk
  /// restores) must happen inside one of these once a guard is enabled —
  /// an unguarded write would silently invalidate scan soundness.
  class WriterSection {
   public:
    WriterSection(EpochGuard& guard, std::int64_t begin, std::int64_t end);
    ~WriterSection();
    WriterSection(const WriterSection&) = delete;
    WriterSection& operator=(const WriterSection&) = delete;

   private:
    EpochGuard* guard_;
    std::size_t first_, last_;  ///< inclusive covered shard range
    std::unique_lock<std::mutex> lock_;
  };

 private:
  friend class WriterSection;

  /// Inclusive shard range covering bytes [begin, end); requires a
  /// non-empty range inside the guarded blob.
  std::pair<std::size_t, std::size_t> cover(std::int64_t begin,
                                            std::int64_t end) const;

  std::int64_t size_bytes_;
  std::int64_t shard_bytes_;
  std::vector<std::atomic<std::uint64_t>> epochs_;
  mutable std::mutex writer_mu_;
  std::atomic<std::uint64_t> writer_sections_{0};
};

}  // namespace radar::quant
