#include "quant/qmodel.h"

namespace radar::quant {

QuantizedModel::QuantizedModel(nn::ResNet& model) : model_(&model) {
  for (auto& np : model.params()) {
    const auto kind = np.param->kind;
    if (kind != nn::ParamKind::kConvWeight &&
        kind != nn::ParamKind::kLinearWeight)
      continue;
    QuantLayer ql;
    ql.name = np.name;
    ql.param = np.param;
    QuantResult r = quantize_symmetric(np.param->value);
    ql.q = std::move(r.q);
    ql.scale = r.scale;
    total_weights_ += ql.size();
    layers_.push_back(std::move(ql));
  }
  RADAR_REQUIRE(!layers_.empty(), "model has no quantizable weights");
  sync_all();
}

std::int8_t QuantizedModel::get_code(std::size_t layer,
                                     std::int64_t idx) const {
  const QuantLayer& l = layers_.at(layer);
  RADAR_REQUIRE(idx >= 0 && idx < l.size(), "weight index out of range");
  return l.q[static_cast<std::size_t>(idx)];
}

void QuantizedModel::set_code(std::size_t layer, std::int64_t idx,
                              std::int8_t v) {
  QuantLayer& l = layers_.at(layer);
  RADAR_REQUIRE(idx >= 0 && idx < l.size(), "weight index out of range");
  if (track_dirty_)
    dirty_.push_back({static_cast<std::uint32_t>(layer), idx,
                      l.q[static_cast<std::size_t>(idx)]});
  l.q[static_cast<std::size_t>(idx)] = v;
  l.param->value[idx] = dequantize(v, l.scale);
}

std::int8_t QuantizedModel::flip_bit(std::size_t layer, std::int64_t idx,
                                     int bit) {
  QuantLayer& l = layers_.at(layer);
  RADAR_REQUIRE(idx >= 0 && idx < l.size(), "weight index out of range");
  const std::int8_t before = l.q[static_cast<std::size_t>(idx)];
  if (track_dirty_)
    dirty_.push_back({static_cast<std::uint32_t>(layer), idx, before});
  const std::int8_t after = radar::flip_bit(before, bit);
  l.q[static_cast<std::size_t>(idx)] = after;
  l.param->value[idx] = dequantize(after, l.scale);
  return before;
}

void QuantizedModel::set_dirty_tracking(bool enabled) {
  track_dirty_ = enabled;
  dirty_.clear();
}

void QuantizedModel::undo_dirty() {
  // Newest-first so repeated writes to one index land on the oldest
  // `before`, i.e. the state at the last baseline.
  for (auto it = dirty_.rbegin(); it != dirty_.rend(); ++it) {
    QuantLayer& l = layers_[it->layer];
    l.q[static_cast<std::size_t>(it->index)] = it->before;
    l.param->value[it->index] = dequantize(it->before, l.scale);
  }
  dirty_.clear();
}

bool QuantizedModel::dirty_matches_baseline() const {
  // The baseline value of a touched weight is the `before` of its OLDEST
  // logged write; later writes to the same index are superseded.
  for (std::size_t i = 0; i < dirty_.size(); ++i) {
    const DirtyWrite& w = dirty_[i];
    bool oldest = true;
    for (std::size_t j = 0; j < i; ++j) {
      if (dirty_[j].layer == w.layer && dirty_[j].index == w.index) {
        oldest = false;
        break;
      }
    }
    if (!oldest) continue;
    if (layers_[w.layer].q[static_cast<std::size_t>(w.index)] != w.before)
      return false;
  }
  return true;
}

void QuantizedModel::sync_layer(std::size_t layer) {
  QuantLayer& l = layers_.at(layer);
  dequantize_into(l.q, l.scale, l.param->value.data());
}

void QuantizedModel::sync_all() {
  for (std::size_t i = 0; i < layers_.size(); ++i) sync_layer(i);
}

QSnapshot QuantizedModel::snapshot() const {
  QSnapshot snap;
  snap.reserve(layers_.size());
  for (const auto& l : layers_) snap.push_back(l.q);
  return snap;
}

void QuantizedModel::restore(const QSnapshot& snap) {
  RADAR_REQUIRE(snap.size() == layers_.size(), "snapshot layer count mismatch");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    RADAR_REQUIRE(snap[i].size() == layers_[i].q.size(),
                  "snapshot size mismatch");
    layers_[i].q = snap[i];
  }
  sync_all();
  dirty_.clear();
}

}  // namespace radar::quant
