#include "quant/qmodel.h"

#include <cstring>

#include "common/simd_ops.h"

namespace radar::quant {

QuantizedModel::QuantizedModel(nn::ResNet& model) : model_(&model) {
  // First pass: quantize every eligible tensor and record the layer table.
  std::vector<QuantResult> results;
  std::vector<ArenaLayer> table;
  for (auto& np : model.params()) {
    const auto kind = np.param->kind;
    if (kind != nn::ParamKind::kConvWeight &&
        kind != nn::ParamKind::kLinearWeight)
      continue;
    QuantResult r = quantize_symmetric(np.param->value);
    table.push_back({np.name, 0,
                     static_cast<std::int64_t>(r.q.size()), r.scale});
    results.push_back(std::move(r));
    QuantLayer ql;
    ql.name = np.name;
    ql.param = np.param;
    ql.scale = results.back().scale;
    layers_.push_back(std::move(ql));
  }
  RADAR_REQUIRE(!layers_.empty(), "model has no quantizable weights");
  // Second pass: lay the codes out in the contiguous arena and point each
  // layer's span at its slice.
  arena_ = WeightArena::build(std::move(table));
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].q = arena_.span(i);
    if (!results[i].q.empty())
      std::memcpy(layers_[i].q.data(), results[i].q.data(),
                  results[i].q.size());
  }
  sync_all();
}

std::int8_t QuantizedModel::get_code(std::size_t layer,
                                     std::int64_t idx) const {
  const QuantLayer& l = layers_.at(layer);
  RADAR_REQUIRE(idx >= 0 && idx < l.size(), "weight index out of range");
  return l.q[static_cast<std::size_t>(idx)];
}

void QuantizedModel::set_code(std::size_t layer, std::int64_t idx,
                              std::int8_t v) {
  QuantLayer& l = layers_.at(layer);
  RADAR_REQUIRE(idx >= 0 && idx < l.size(), "weight index out of range");
  if (track_dirty_)
    dirty_.push_back({static_cast<std::uint32_t>(layer), idx,
                      l.q[static_cast<std::size_t>(idx)]});
  l.q[static_cast<std::size_t>(idx)] = v;
  l.param->value[idx] = dequantize(v, l.scale);
}

std::int8_t QuantizedModel::flip_bit(std::size_t layer, std::int64_t idx,
                                     int bit) {
  QuantLayer& l = layers_.at(layer);
  RADAR_REQUIRE(idx >= 0 && idx < l.size(), "weight index out of range");
  const std::int8_t before = l.q[static_cast<std::size_t>(idx)];
  if (track_dirty_)
    dirty_.push_back({static_cast<std::uint32_t>(layer), idx, before});
  const std::int8_t after = radar::flip_bit(before, bit);
  l.q[static_cast<std::size_t>(idx)] = after;
  l.param->value[idx] = dequantize(after, l.scale);
  return before;
}

void QuantizedModel::set_scale(std::size_t layer, float scale) {
  layers_.at(layer).scale = scale;
  arena_.set_scale(layer, scale);
}

void QuantizedModel::load_weights(std::span<const std::int8_t> bytes,
                                  std::span<const float> scales) {
  RADAR_REQUIRE(static_cast<std::int64_t>(bytes.size()) ==
                    arena_.size_bytes(),
                "arena blob size mismatch");
  RADAR_REQUIRE(scales.size() == layers_.size(),
                "scale count does not match layer count");
  std::memcpy(arena_.bytes().data(), bytes.data(), bytes.size());
  // Re-establish the padding-is-zero invariant whole-blob compares rely
  // on: external blobs (deployment packages) may carry junk between
  // layers, which is semantically void.
  std::int64_t prev_end = 0;
  std::int8_t* base = arena_.bytes().data();
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const ArenaLayer& l = arena_.layer(i);
    std::memset(base + prev_end, 0,
                static_cast<std::size_t>(l.offset - prev_end));
    prev_end = l.offset + l.size;
  }
  std::memset(base + prev_end, 0,
              static_cast<std::size_t>(arena_.size_bytes() - prev_end));
  for (std::size_t i = 0; i < layers_.size(); ++i) set_scale(i, scales[i]);
  sync_all();
  dirty_.clear();
  if (track_dirty_) baseline_.capture(arena_);
}

void QuantizedModel::set_dirty_tracking(bool enabled) {
  track_dirty_ = enabled;
  dirty_.clear();
  if (enabled) baseline_.capture(arena_);
}

void QuantizedModel::clear_dirty() {
  dirty_.clear();
  if (track_dirty_) baseline_.capture(arena_);
}

void QuantizedModel::undo_dirty() {
  // Newest-first so repeated writes to one index land on the oldest
  // `before`, i.e. the state at the last baseline.
  for (auto it = dirty_.rbegin(); it != dirty_.rend(); ++it) {
    QuantLayer& l = layers_[it->layer];
    l.q[static_cast<std::size_t>(it->index)] = it->before;
    l.param->value[it->index] = dequantize(it->before, l.scale);
  }
  dirty_.clear();
  // The arena is back at the baseline state; baseline_ is still valid.
}

bool QuantizedModel::dirty_matches_baseline() const {
  // Untouched weights always equal the baseline, so only logged indices
  // need checking — each against the baseline arena copy.
  for (const DirtyWrite& w : dirty_) {
    if (layers_[w.layer].q[static_cast<std::size_t>(w.index)] !=
        baseline_.span(w.layer)[static_cast<std::size_t>(w.index)])
      return false;
  }
  return true;
}

void QuantizedModel::sync_layer(std::size_t layer) {
  QuantLayer& l = layers_.at(layer);
  dequantize_into(l.q, l.scale, l.param->value.data());
}

void QuantizedModel::sync_all() {
  for (std::size_t i = 0; i < layers_.size(); ++i) sync_layer(i);
}

ArenaSnapshot QuantizedModel::snapshot() const {
  ArenaSnapshot snap;
  snap.capture(arena_);
  return snap;
}

void QuantizedModel::restore(const ArenaSnapshot& snap) {
  RADAR_REQUIRE(snap.num_layers() == layers_.size(),
                "snapshot layer count mismatch");
  RADAR_REQUIRE(snap.size_bytes() == arena_.size_bytes(),
                "snapshot size mismatch");
  // Same totals do not imply the same geometry: a foreign snapshot with
  // permuted layer sizes would land codes inside the wrong layers.
  for (std::size_t i = 0; i < layers_.size(); ++i)
    RADAR_REQUIRE(snap.layer(i).offset == arena_.layer(i).offset &&
                      snap.layer(i).size == arena_.layer(i).size,
                  "snapshot layer geometry mismatch");
  // Per-layer changed probe: a restore after a handful of flips (or none
  // at all — campaign loops restore unconditionally) should cost one
  // compare pass at memory bandwidth, not a whole-model float dequantize.
  // The padding between layers is zero on both sides by invariant, so
  // comparing the layer slices covers the blob.
  const std::int8_t* src = snap.bytes().data();
  std::int8_t* dst = arena_.bytes().data();
  bool any_changed = false;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const ArenaLayer& l = arena_.layer(i);
    if (l.size == 0) continue;
    if (simd::bytes_equal(dst + l.offset, src + l.offset,
                          static_cast<std::size_t>(l.size)))
      continue;
    any_changed = true;
    std::memcpy(dst + l.offset, src + l.offset,
                static_cast<std::size_t>(l.size));
    sync_layer(i);  // refresh only this layer's float mirror
  }
  if (!any_changed && dirty_.empty()) return;  // baseline already current
  dirty_.clear();
  if (track_dirty_) baseline_.capture(arena_);
}

}  // namespace radar::quant
