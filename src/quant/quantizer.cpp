#include "quant/quantizer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace radar::quant {

QuantResult quantize_symmetric(const nn::Tensor& w) {
  QuantResult r;
  const float amax = w.abs_max();
  // An all-zero tensor quantizes to all-zero codes with unit scale.
  r.scale = amax > 0.0f ? amax / 127.0f : 1.0f;
  r.q.resize(static_cast<std::size_t>(w.numel()));
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    const float scaled = w[i] / r.scale;
    const long rounded = std::lround(scaled);
    const long clamped = std::clamp(rounded, -128L, 127L);
    r.q[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(clamped);
  }
  return r;
}

void dequantize_into(std::span<const std::int8_t> q, float scale,
                     float* out) {
  for (std::size_t i = 0; i < q.size(); ++i)
    out[i] = static_cast<float>(q[i]) * scale;
}

float quantization_error(const nn::Tensor& w, const QuantResult& r) {
  RADAR_REQUIRE(static_cast<std::int64_t>(r.q.size()) == w.numel(),
                "size mismatch");
  float m = 0.0f;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    const float dq = dequantize(r.q[static_cast<std::size_t>(i)], r.scale);
    m = std::max(m, std::fabs(dq - w[i]));
  }
  return m;
}

}  // namespace radar::quant
