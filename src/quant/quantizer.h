// Per-layer symmetric 8-bit weight quantization.
//
// Matches the BFA / RADAR setup (Rakin et al. ICCV'19): each conv / fc
// weight tensor gets a single scale = max|w| / 127 and int8 codes
// q = clamp(round(w / scale), -128, 127); the deployed network computes
// with the dequantized values q * scale, so after quantization the float
// master weights are rewritten to exactly q * scale.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/tensor.h"

namespace radar::quant {

/// Quantization result for one weight tensor.
struct QuantResult {
  std::vector<std::int8_t> q;
  float scale = 1.0f;
};

/// Quantize a float tensor with per-tensor symmetric scaling.
QuantResult quantize_symmetric(const nn::Tensor& w);

/// Dequantize a single code.
inline float dequantize(std::int8_t q, float scale) {
  return static_cast<float>(q) * scale;
}

/// Dequantize a full buffer into `out` (must have q.size() elements).
void dequantize_into(std::span<const std::int8_t> q, float scale,
                     float* out);

/// Largest absolute rounding error introduced by quantize->dequantize,
/// useful for tests and sanity checks.
float quantization_error(const nn::Tensor& w, const QuantResult& r);

}  // namespace radar::quant
