// QuantizedModel: the int8 view of a trained network's weights.
//
// This is the deployment artifact RADAR protects: every conv / fc weight
// tensor lives as an int8 buffer ("in DRAM" in the paper's threat model),
// and the float master weights mirror q * scale so that forward passes and
// attacker gradients both see the quantized network. Bit flips mutate the
// int8 buffer and are synced back to the float mirror.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.h"
#include "nn/resnet.h"
#include "quant/quantizer.h"

namespace radar::quant {

/// One quantized weight tensor.
struct QuantLayer {
  std::string name;            ///< hierarchical parameter name
  nn::Param* param = nullptr;  ///< float master (inside the network)
  std::vector<std::int8_t> q;  ///< int8 codes — the attack surface
  float scale = 1.0f;

  std::int64_t size() const { return static_cast<std::int64_t>(q.size()); }
};

/// Full int8 state snapshot (for repeated attack rounds).
using QSnapshot = std::vector<std::vector<std::int8_t>>;

class QuantizedModel {
 public:
  /// Quantizes all conv / fc weights of `model` in place (the float
  /// masters are rewritten to dequantized values). `model` must outlive
  /// this object.
  explicit QuantizedModel(nn::ResNet& model);

  std::size_t num_layers() const { return layers_.size(); }
  QuantLayer& layer(std::size_t i) { return layers_.at(i); }
  const QuantLayer& layer(std::size_t i) const { return layers_.at(i); }
  std::int64_t total_weights() const { return total_weights_; }

  nn::ResNet& network() { return *model_; }

  /// Inference through the (synced) float mirror.
  nn::Tensor forward(const nn::Tensor& x) {
    return model_->forward(x, nn::Mode::kEval);
  }

  // ---- bit-level mutation (the attack surface) ----
  std::int8_t get_code(std::size_t layer, std::int64_t idx) const;
  void set_code(std::size_t layer, std::int64_t idx, std::int8_t v);
  /// Flip one bit and sync the affected float weight. Returns the code
  /// value before the flip.
  std::int8_t flip_bit(std::size_t layer, std::int64_t idx, int bit);

  /// Rewrite the float master of one layer / all layers from int8 codes.
  void sync_layer(std::size_t layer);
  void sync_all();

  // ---- snapshots ----
  QSnapshot snapshot() const;
  void restore(const QSnapshot& snap);

  /// Total int8 weight bytes (= weight count).
  std::int64_t weight_bytes() const { return total_weights_; }

 private:
  nn::ResNet* model_;
  std::vector<QuantLayer> layers_;
  std::int64_t total_weights_ = 0;
};

}  // namespace radar::quant
