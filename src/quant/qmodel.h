// QuantizedModel: the int8 view of a trained network's weights.
//
// This is the deployment artifact RADAR protects: every conv / fc weight
// tensor lives in one contiguous 64-byte-aligned WeightArena ("in DRAM" in
// the paper's threat model) with the float masters mirroring q * scale, so
// that forward passes and attacker gradients both see the quantized
// network. Bit flips mutate the arena and are synced back to the float
// mirror. Each QuantLayer::q is a span view into the arena; snapshots are
// one-memcpy ArenaSnapshots, and baseline comparison under dirty tracking
// is a byte compare against a second arena copy.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bits.h"
#include "nn/resnet.h"
#include "quant/quantizer.h"
#include "quant/weight_arena.h"

namespace radar::quant {

/// One quantized weight tensor — a view into the model's WeightArena.
struct QuantLayer {
  std::string name;            ///< hierarchical parameter name
  nn::Param* param = nullptr;  ///< float master (inside the network)
  std::span<std::int8_t> q;    ///< int8 codes — the attack surface
  float scale = 1.0f;

  std::int64_t size() const { return static_cast<std::int64_t>(q.size()); }
};

/// One recorded weight mutation: enough to undo it and to map it to the
/// checksum group it lands in.
struct DirtyWrite {
  std::uint32_t layer = 0;
  std::int64_t index = 0;
  std::int8_t before = 0;  ///< code value the write replaced
};

class QuantizedModel {
 public:
  /// Quantizes all conv / fc weights of `model` in place (the float
  /// masters are rewritten to dequantized values). `model` must outlive
  /// this object.
  explicit QuantizedModel(nn::ResNet& model);

  std::size_t num_layers() const { return layers_.size(); }
  QuantLayer& layer(std::size_t i) { return layers_.at(i); }
  const QuantLayer& layer(std::size_t i) const { return layers_.at(i); }
  std::int64_t total_weights() const { return arena_.total_weights(); }

  /// The contiguous weight store all layer spans point into.
  const WeightArena& arena() const { return arena_; }

  // ---- concurrent serving support ----
  // The epoch guard is the seqlock protocol a serving deployment layers
  // over the arena: scanners validate epochs around optimistic range
  // scans while writers (fault injection, recovery) bracket their
  // mutations in EpochGuard::WriterSection. Batch workloads never enable
  // it and pay nothing.
  void enable_epoch_guard(
      std::int64_t shard_bytes = kDefaultEpochShardBytes) {
    arena_.enable_epoch_guard(shard_bytes);
  }
  EpochGuard* epoch_guard() const { return arena_.epoch_guard(); }
  /// Arena blob byte range of one layer (epoch-validation coordinates).
  std::pair<std::int64_t, std::int64_t> layer_byte_range(
      std::size_t i) const {
    return arena_.layer_byte_range(i);
  }

  /// Global flat index (rank in layer order) <-> (layer, index) mapping.
  std::int64_t global_index(std::size_t layer, std::int64_t idx) const {
    return arena_.global_index(layer, idx);
  }
  std::pair<std::size_t, std::int64_t> locate(std::int64_t global) const {
    return arena_.locate(global);
  }

  nn::ResNet& network() { return *model_; }

  /// Inference through the (synced) float mirror.
  nn::Tensor forward(const nn::Tensor& x) {
    return model_->forward(x, nn::Mode::kEval);
  }

  // ---- bit-level mutation (the attack surface) ----
  std::int8_t get_code(std::size_t layer, std::int64_t idx) const;
  void set_code(std::size_t layer, std::int64_t idx, std::int8_t v);
  /// Flip one bit and sync the affected float weight. Returns the code
  /// value before the flip.
  std::int8_t flip_bit(std::size_t layer, std::int64_t idx, int bit);

  /// Update one layer's quantization scale (package loads), keeping the
  /// arena's layer table in sync.
  void set_scale(std::size_t layer, float scale);

  /// Overwrite the whole arena blob (padding included) and per-layer
  /// scales — the package-v3 load path. `bytes` must have exactly
  /// arena().size_bytes() bytes laid out with this arena's geometry.
  /// Syncs the float mirror and resets the dirty baseline.
  void load_weights(std::span<const std::int8_t> bytes,
                    std::span<const float> scales);

  /// Rewrite the float master of one layer / all layers from int8 codes.
  void sync_layer(std::size_t layer);
  void sync_all();

  // ---- dirty tracking (incremental scan / undo support) ----
  // When enabled, every set_code / flip_bit appends a DirtyWrite, so a
  // known-clean model can be returned to its exact prior state with
  // undo_dirty() (O(#writes), replacing O(#weights) restore calls) and an
  // incremental scan can rescan only the touched groups. Off by default:
  // attack search loops would otherwise grow the log unboundedly.
  void set_dirty_tracking(bool enabled);
  bool dirty_tracking() const { return track_dirty_; }
  const std::vector<DirtyWrite>& dirty_writes() const { return dirty_; }
  /// Forget the log without undoing (the current state becomes the new
  /// baseline the next undo_dirty() returns to).
  void clear_dirty();
  /// Reverse-apply every recorded write (newest first), syncing the float
  /// mirror of each touched weight, then clear the log.
  void undo_dirty();
  /// True when the current int8 state equals the baseline the dirty log
  /// started from (i.e. undo_dirty() would be a no-op on the codes) —
  /// O(#writes) byte compares against the baseline arena copy,
  /// allocation-free. Lets eval paths reuse cached clean results when a
  /// recovery restored the model exactly.
  bool dirty_matches_baseline() const;

  // ---- snapshots ----
  /// One-memcpy copy of the arena blob.
  ArenaSnapshot snapshot() const;
  /// Full-state restore (one memcpy + float resync); also clears the
  /// dirty log (the restored state is the new baseline).
  void restore(const ArenaSnapshot& snap);

  /// Total int8 weight bytes (= weight count).
  std::int64_t weight_bytes() const { return arena_.total_weights(); }

 private:
  nn::ResNet* model_;
  WeightArena arena_;
  std::vector<QuantLayer> layers_;
  bool track_dirty_ = false;
  std::vector<DirtyWrite> dirty_;
  /// Arena copy at the last dirty baseline (valid while tracking).
  ArenaSnapshot baseline_;
};

}  // namespace radar::quant
