// Small multilayer perceptron — used by unit tests and micro-examples
// where a full ResNet would be overkill.
#pragma once

#include "nn/activations.h"
#include "nn/layer.h"
#include "nn/linear.h"

namespace radar::nn {

class Mlp {
 public:
  /// dims = {in, hidden..., out}; ReLU between layers, none after the last.
  Mlp(const std::vector<std::int64_t>& dims, Rng& rng) {
    RADAR_REQUIRE(dims.size() >= 2, "Mlp needs at least in and out dims");
    for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
      net_.emplace<Linear>("fc" + std::to_string(i), dims[i], dims[i + 1],
                           /*bias=*/true, rng);
      if (i + 2 < dims.size())
        net_.emplace<ReLU>("relu" + std::to_string(i));
    }
  }

  Tensor forward(const Tensor& x, Mode mode = Mode::kEval) {
    return net_.forward(x, mode);
  }
  Tensor backward(const Tensor& g) { return net_.backward(g); }

  std::vector<NamedParam> params() {
    std::vector<NamedParam> out;
    net_.collect_params("", out);
    return out;
  }
  void zero_grad() {
    for (auto& np : params()) np.param->zero_grad();
  }
  Sequential& net() { return net_; }

 private:
  Sequential net_;
};

}  // namespace radar::nn
