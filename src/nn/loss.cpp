#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace radar::nn {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<int>& labels) {
  RADAR_REQUIRE(logits.rank() == 2, "logits must be [N, C]");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  RADAR_REQUIRE(static_cast<std::int64_t>(labels.size()) == n,
                "label count mismatch");
  probs_ = Tensor({n, c});
  labels_ = labels;
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    RADAR_REQUIRE(labels[static_cast<std::size_t>(i)] >= 0 &&
                      labels[static_cast<std::size_t>(i)] < c,
                  "label out of range");
    const float* row = logits.data() + logits.idx2(i, 0);
    const float m = *std::max_element(row, row + c);
    double z = 0.0;
    for (std::int64_t j = 0; j < c; ++j) z += std::exp(static_cast<double>(row[j] - m));
    const double log_z = std::log(z) + m;
    for (std::int64_t j = 0; j < c; ++j)
      probs_[probs_.idx2(i, j)] =
          static_cast<float>(std::exp(static_cast<double>(row[j]) - log_z));
    total += log_z - row[labels[static_cast<std::size_t>(i)]];
  }
  return static_cast<float>(total / static_cast<double>(n));
}

Tensor SoftmaxCrossEntropy::backward() const {
  RADAR_REQUIRE(probs_.numel() > 0, "backward before forward");
  const std::int64_t n = probs_.dim(0), c = probs_.dim(1);
  Tensor g = probs_;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    g[g.idx2(i, labels_[static_cast<std::size_t>(i)])] -= 1.0f;
    for (std::int64_t j = 0; j < c; ++j) g[g.idx2(i, j)] *= inv_n;
  }
  return g;
}

std::vector<int> argmax_rows(const Tensor& logits) {
  RADAR_REQUIRE(logits.rank() == 2, "logits must be [N, C]");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  std::vector<int> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + logits.idx2(i, 0);
    out[static_cast<std::size_t>(i)] =
        static_cast<int>(std::max_element(row, row + c) - row);
  }
  return out;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  const auto pred = argmax_rows(logits);
  RADAR_REQUIRE(pred.size() == labels.size(), "label count mismatch");
  if (pred.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

}  // namespace radar::nn
