#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace radar::nn {

namespace {
std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    RADAR_REQUIRE(d >= 0, "negative dimension");
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)) {
  data_.assign(static_cast<std::size_t>(numel_), 0.0f);
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

void Tensor::reshape(std::vector<std::int64_t> shape) {
  RADAR_REQUIRE(shape_numel(shape) == numel_,
                "reshape must preserve element count");
  shape_ = std::move(shape);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::add_(const Tensor& other) {
  RADAR_REQUIRE(same_shape(other), "shape mismatch in add_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::sub_(const Tensor& other) {
  RADAR_REQUIRE(same_shape(other), "shape mismatch in sub_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Tensor::scale_(float s) {
  for (auto& v : data_) v *= s;
}

void Tensor::axpy_(float alpha, const Tensor& x) {
  RADAR_REQUIRE(same_shape(x), "shape mismatch in axpy_");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * x.data_[i];
}

float Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::min() const {
  RADAR_REQUIRE(numel_ > 0, "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  RADAR_REQUIRE(numel_ > 0, "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::mean() const {
  RADAR_REQUIRE(numel_ > 0, "mean of empty tensor");
  return sum() / static_cast<float>(numel_);
}

float Tensor::sq_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(s);
}

Tensor Tensor::full(std::vector<std::int64_t> shape, float v) {
  Tensor t(std::move(shape));
  t.fill(v);
  return t;
}

Tensor Tensor::randn(std::vector<std::int64_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_)
    v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::kaiming(std::vector<std::int64_t> shape, std::int64_t fan_in,
                       Rng& rng) {
  RADAR_REQUIRE(fan_in > 0, "fan_in must be positive");
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(fan_in));
  return randn(std::move(shape), rng, stddev);
}

Tensor Tensor::uniform(std::vector<std::int64_t> shape, Rng& rng, float lo,
                       float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_)
    v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::from_vector(std::vector<std::int64_t> shape,
                           std::vector<float> values) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = shape_numel(t.shape_);
  RADAR_REQUIRE(static_cast<std::int64_t>(values.size()) == t.numel_,
                "value count does not match shape");
  t.data_ = std::move(values);
  return t;
}

Tensor operator+(const Tensor& a, const Tensor& b) {
  Tensor r = a;
  r.add_(b);
  return r;
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  Tensor r = a;
  r.sub_(b);
  return r;
}

Tensor operator*(float s, const Tensor& a) {
  Tensor r = a;
  r.scale_(s);
  return r;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  RADAR_REQUIRE(a.same_shape(b), "shape mismatch in max_abs_diff");
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace radar::nn
