// Softmax cross-entropy loss over logits, plus accuracy helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace radar::nn {

/// Numerically stable softmax cross-entropy.
class SoftmaxCrossEntropy {
 public:
  /// logits: [N, C]; labels: N class ids in [0, C). Returns mean loss.
  float forward(const Tensor& logits, const std::vector<int>& labels);

  /// Gradient of the mean loss w.r.t. the logits of the last forward().
  Tensor backward() const;

  /// Per-class probabilities from the last forward().
  const Tensor& probs() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

/// Row-wise argmax of a [N, C] logits tensor.
std::vector<int> argmax_rows(const Tensor& logits);

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace radar::nn
