// Checkpointing: save/load named parameters and buffers.
//
// Format v1: [magic][version][count]{name, shape, f32 data}* for params
// followed by the same for buffers. Loading matches strictly by name and
// shape — a mismatch throws rather than silently mis-assigning weights.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.h"

namespace radar::nn {

/// Serialize parameters + buffers to `path`.
void save_checkpoint(const std::string& path,
                     const std::vector<NamedParam>& params,
                     const std::vector<NamedBuffer>& buffers);

/// Restore a checkpoint written by save_checkpoint. Every tensor in the
/// file must exist in the destination lists with identical shape, and
/// vice versa.
void load_checkpoint(const std::string& path,
                     const std::vector<NamedParam>& params,
                     const std::vector<NamedBuffer>& buffers);

}  // namespace radar::nn
