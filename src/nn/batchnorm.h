// Batch normalization over the channel dimension of NCHW tensors.
//
// Training mode uses batch statistics and updates running estimates with
// momentum; eval mode normalizes with the running estimates. Affine
// parameters (gamma, beta) stay in float even when the network's conv/fc
// weights are quantized — mirroring the BFA threat model where only weight
// tensors live in (attackable) DRAM as int8.
#pragma once

#include "nn/layer.h"

namespace radar::nn {

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) override;
  void collect_buffers(const std::string& prefix,
                       std::vector<NamedBuffer>& out) override;
  std::string kind() const override { return "BatchNorm2d"; }

  std::int64_t channels() const { return channels_; }
  float eps() const { return eps_; }
  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

 private:
  std::int64_t channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;

  // forward(kTrain/kGrad) caches for backward
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  std::int64_t cached_n_ = 0, cached_h_ = 0, cached_w_ = 0;
  Mode cached_mode_ = Mode::kEval;
};

}  // namespace radar::nn
