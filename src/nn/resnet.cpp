#include "nn/resnet.h"

#include "nn/fold.h"

namespace radar::nn {

BasicBlock::BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
                       std::int64_t stride, Rng& rng)
    : conv1_(in_channels, out_channels, 3, stride, 1, /*bias=*/false, rng),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, 3, 1, 1, /*bias=*/false, rng),
      bn2_(out_channels) {
  if (stride != 1 || in_channels != out_channels) {
    down_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1,
                                          stride, 0, /*bias=*/false, rng);
    down_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

Tensor BasicBlock::forward(const Tensor& x, Mode mode) {
  Tensor a = relu1_.forward(bn1_.forward(conv1_.forward(x, mode), mode),
                            mode);
  Tensor b = bn2_.forward(conv2_.forward(a, mode), mode);
  Tensor s = has_projection()
                 ? down_bn_->forward(down_conv_->forward(x, mode), mode)
                 : x;
  b.add_(s);
  return relu2_.forward(b, mode);
}

Tensor BasicBlock::backward(const Tensor& grad_out) {
  Tensor g = relu2_.backward(grad_out);
  // Main path.
  Tensor gm = conv1_.backward(
      bn1_.backward(relu1_.backward(conv2_.backward(bn2_.backward(g)))));
  // Skip path.
  if (has_projection()) {
    Tensor gs = down_conv_->backward(down_bn_->backward(g));
    gm.add_(gs);
  } else {
    gm.add_(g);
  }
  return gm;
}

void BasicBlock::collect_params(const std::string& prefix,
                                std::vector<NamedParam>& out) {
  conv1_.collect_params(join_name(prefix, "conv1"), out);
  bn1_.collect_params(join_name(prefix, "bn1"), out);
  conv2_.collect_params(join_name(prefix, "conv2"), out);
  bn2_.collect_params(join_name(prefix, "bn2"), out);
  if (has_projection()) {
    down_conv_->collect_params(join_name(prefix, "down_conv"), out);
    down_bn_->collect_params(join_name(prefix, "down_bn"), out);
  }
}

void BasicBlock::collect_buffers(const std::string& prefix,
                                 std::vector<NamedBuffer>& out) {
  bn1_.collect_buffers(join_name(prefix, "bn1"), out);
  bn2_.collect_buffers(join_name(prefix, "bn2"), out);
  if (has_projection())
    down_bn_->collect_buffers(join_name(prefix, "down_bn"), out);
}

void BasicBlock::fold_batchnorm() {
  fold_conv_bn(conv1_, bn1_);
  fold_conv_bn(conv2_, bn2_);
  if (has_projection()) fold_conv_bn(*down_conv_, *down_bn_);
}

ResNetSpec ResNetSpec::resnet20(std::int64_t num_classes) {
  ResNetSpec s;
  s.num_classes = num_classes;
  s.base_width = 16;
  s.blocks_per_stage = {3, 3, 3};
  s.name = "resnet20";
  return s;
}

ResNetSpec ResNetSpec::resnet18(std::int64_t num_classes,
                                std::int64_t base_width) {
  ResNetSpec s;
  s.num_classes = num_classes;
  s.base_width = base_width;
  s.blocks_per_stage = {2, 2, 2, 2};
  s.name = "resnet18";
  return s;
}

ResNet::ResNet(const ResNetSpec& spec, Rng& rng) : spec_(spec) {
  RADAR_REQUIRE(!spec.blocks_per_stage.empty(), "need at least one stage");
  // Stem (CIFAR-style 3x3 conv).
  net_.emplace<Conv2d>("stem_conv", spec.in_channels, spec.base_width, 3, 1,
                       1, /*bias=*/false, rng);
  net_.emplace<BatchNorm2d>("stem_bn", spec.base_width);
  net_.emplace<ReLU>("stem_relu");
  // Residual stages: width doubles, spatial halves from stage 1 on.
  std::int64_t in_ch = spec.base_width;
  for (std::size_t stage = 0; stage < spec.blocks_per_stage.size(); ++stage) {
    const std::int64_t out_ch = spec.base_width << stage;
    for (std::int64_t b = 0; b < spec.blocks_per_stage[stage]; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      net_.emplace<BasicBlock>(
          "stage" + std::to_string(stage) + ".block" + std::to_string(b),
          in_ch, out_ch, stride, rng);
      in_ch = out_ch;
    }
  }
  net_.emplace<GlobalAvgPool>("avgpool");
  net_.emplace<Linear>("fc", in_ch, spec.num_classes, /*bias=*/true, rng);
}

std::vector<NamedParam> ResNet::params() {
  std::vector<NamedParam> out;
  net_.collect_params("", out);
  return out;
}

std::vector<NamedBuffer> ResNet::buffers() {
  std::vector<NamedBuffer> out;
  net_.collect_buffers("", out);
  return out;
}

void ResNet::zero_grad() {
  for (auto& np : params()) np.param->zero_grad();
}

std::int64_t ResNet::num_params() {
  std::int64_t n = 0;
  for (auto& np : params()) n += np.param->value.numel();
  return n;
}

}  // namespace radar::nn
