#include "nn/linear.h"

#include "nn/gemm.h"

namespace radar::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, bool bias,
               Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_(Tensor::kaiming({out_features, in_features}, in_features, rng),
              ParamKind::kLinearWeight),
      bias_(Tensor({out_features}), ParamKind::kBias) {
  RADAR_REQUIRE(in_features > 0 && out_features > 0, "bad feature count");
}

Tensor Linear::forward(const Tensor& x, Mode mode) {
  RADAR_REQUIRE(x.rank() == 2, "Linear expects [N, F] input");
  RADAR_REQUIRE(x.dim(1) == in_features_, "feature dim mismatch");
  const std::int64_t n = x.dim(0);
  Tensor y({n, out_features_});
  // y = x * W^T
  gemm_bt(x.data(), weight_.value.data(), y.data(), n, in_features_,
          out_features_);
  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t j = 0; j < out_features_; ++j)
        y[y.idx2(i, j)] += bias_.value[j];
  }
  if (needs_cache(mode)) cached_input_ = x;
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  RADAR_REQUIRE(x.numel() > 0, "backward before forward(training=true)");
  const std::int64_t n = x.dim(0);
  RADAR_REQUIRE(grad_out.dim(0) == n && grad_out.dim(1) == out_features_,
                "grad_out shape mismatch");
  // dW += dY^T * X  ([out, in] = [out x n] * [n x in])
  gemm_at(grad_out.data(), x.data(), weight_.grad.data(), out_features_, n,
          in_features_, /*accumulate=*/true);
  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t j = 0; j < out_features_; ++j)
        bias_.grad[j] += grad_out[grad_out.idx2(i, j)];
  }
  // dX = dY * W  ([n, in] = [n x out] * [out x in])
  Tensor gx({n, in_features_});
  gemm(grad_out.data(), weight_.value.data(), gx.data(), n, out_features_,
       in_features_);
  return gx;
}

void Linear::collect_params(const std::string& prefix,
                            std::vector<NamedParam>& out) {
  out.push_back({join_name(prefix, "weight"), &weight_});
  if (has_bias_) out.push_back({join_name(prefix, "bias"), &bias_});
}

}  // namespace radar::nn
