#include "nn/activations.h"

namespace radar::nn {

Tensor ReLU::forward(const Tensor& x, Mode mode) {
  Tensor y(x.shape());
  const bool cache = needs_cache(mode);
  if (cache) {
    mask_.assign(static_cast<std::size_t>(x.numel()), 0);
    cached_shape_ = x.shape();
  }
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const bool pos = x[i] > 0.0f;
    y[i] = pos ? x[i] : 0.0f;
    if (cache) mask_[static_cast<std::size_t>(i)] = pos ? 1 : 0;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  RADAR_REQUIRE(!mask_.empty(), "backward before forward(training=true)");
  RADAR_REQUIRE(grad_out.shape() == cached_shape_, "grad_out shape mismatch");
  Tensor gx(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i)
    gx[i] = mask_[static_cast<std::size_t>(i)] ? grad_out[i] : 0.0f;
  return gx;
}

Tensor Flatten::forward(const Tensor& x, Mode mode) {
  RADAR_REQUIRE(x.rank() >= 2, "Flatten expects rank >= 2");
  if (needs_cache(mode)) cached_shape_ = x.shape();
  Tensor y = x;
  y.reshape({x.dim(0), x.numel() / x.dim(0)});
  return y;
}

Tensor Flatten::backward(const Tensor& grad_out) {
  RADAR_REQUIRE(!cached_shape_.empty(),
                "backward before forward(training=true)");
  Tensor gx = grad_out;
  gx.reshape(cached_shape_);
  return gx;
}

}  // namespace radar::nn
