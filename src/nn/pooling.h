// Pooling layers: global average pool (ResNet head) and max pool
// (ImageNet-style stems).
#pragma once

#include "nn/layer.h"

namespace radar::nn {

/// Average over all spatial positions: [N,C,H,W] -> [N,C].
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string kind() const override { return "GlobalAvgPool"; }

 private:
  std::vector<std::int64_t> cached_shape_;
};

/// Square-window max pooling.
class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t padding);

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string kind() const override { return "MaxPool2d"; }

  std::int64_t out_size(std::int64_t in) const {
    return (in + 2 * padding_ - kernel_) / stride_ + 1;
  }

 private:
  std::int64_t kernel_, stride_, padding_;
  std::vector<std::int64_t> argmax_;  ///< winning input linear index per output
  std::vector<std::int64_t> cached_shape_;
};

}  // namespace radar::nn
