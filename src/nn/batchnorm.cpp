#include "nn/batchnorm.h"

#include <cmath>

namespace radar::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Tensor::full({channels}, 1.0f), ParamKind::kBnGamma),
      beta_(Tensor({channels}), ParamKind::kBnBeta),
      running_mean_({channels}),
      running_var_(Tensor::full({channels}, 1.0f)) {
  RADAR_REQUIRE(channels > 0, "bad channel count");
}

Tensor BatchNorm2d::forward(const Tensor& x, Mode mode) {
  RADAR_REQUIRE(x.rank() == 4 && x.dim(1) == channels_,
                "BatchNorm2d expects NCHW with matching channels");
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t spatial = h * w;
  const std::int64_t per_channel = n * spatial;
  const bool batch_stats = (mode == Mode::kTrain);
  const bool cache = needs_cache(mode);
  Tensor y(x.shape());

  std::vector<float> mean(static_cast<std::size_t>(channels_));
  std::vector<float> var(static_cast<std::size_t>(channels_));
  if (batch_stats) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      double m = 0.0;
      for (std::int64_t s = 0; s < n; ++s) {
        const float* xc = x.data() + x.idx4(s, c, 0, 0);
        for (std::int64_t j = 0; j < spatial; ++j) m += xc[j];
      }
      m /= static_cast<double>(per_channel);
      double v = 0.0;
      for (std::int64_t s = 0; s < n; ++s) {
        const float* xc = x.data() + x.idx4(s, c, 0, 0);
        for (std::int64_t j = 0; j < spatial; ++j) {
          const double d = xc[j] - m;
          v += d * d;
        }
      }
      v /= static_cast<double>(per_channel);
      mean[static_cast<std::size_t>(c)] = static_cast<float>(m);
      var[static_cast<std::size_t>(c)] = static_cast<float>(v);
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(m);
      running_var_[c] = (1.0f - momentum_) * running_var_[c] +
                        momentum_ * static_cast<float>(v);
    }
  } else {
    for (std::int64_t c = 0; c < channels_; ++c) {
      mean[static_cast<std::size_t>(c)] = running_mean_[c];
      var[static_cast<std::size_t>(c)] = running_var_[c];
    }
  }

  if (cache) {
    cached_xhat_ = Tensor(x.shape());
    cached_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
    cached_n_ = n;
    cached_h_ = h;
    cached_w_ = w;
    cached_mode_ = mode;
  }

  for (std::int64_t c = 0; c < channels_; ++c) {
    const float m = mean[static_cast<std::size_t>(c)];
    const float inv_std =
        1.0f / std::sqrt(var[static_cast<std::size_t>(c)] + eps_);
    const float g = gamma_.value[c], b = beta_.value[c];
    if (cache) cached_inv_std_[static_cast<std::size_t>(c)] = inv_std;
    for (std::int64_t s = 0; s < n; ++s) {
      const float* xc = x.data() + x.idx4(s, c, 0, 0);
      float* yc = y.data() + y.idx4(s, c, 0, 0);
      float* xh = cache ? cached_xhat_.data() + y.idx4(s, c, 0, 0) : nullptr;
      for (std::int64_t j = 0; j < spatial; ++j) {
        const float xhat = (xc[j] - m) * inv_std;
        if (xh != nullptr) xh[j] = xhat;
        yc[j] = g * xhat + b;
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  RADAR_REQUIRE(cached_xhat_.numel() > 0,
                "backward before forward(kTrain/kGrad)");
  const std::int64_t n = cached_n_, h = cached_h_, w = cached_w_;
  RADAR_REQUIRE(grad_out.rank() == 4 && grad_out.dim(0) == n &&
                    grad_out.dim(1) == channels_ && grad_out.dim(2) == h &&
                    grad_out.dim(3) == w,
                "grad_out shape mismatch");
  const std::int64_t spatial = h * w;
  const double count = static_cast<double>(n * spatial);
  Tensor gx(grad_out.shape());

  for (std::int64_t c = 0; c < channels_; ++c) {
    double sum_gy = 0.0, sum_gy_xhat = 0.0;
    for (std::int64_t s = 0; s < n; ++s) {
      const float* gy = grad_out.data() + grad_out.idx4(s, c, 0, 0);
      const float* xh = cached_xhat_.data() + cached_xhat_.idx4(s, c, 0, 0);
      for (std::int64_t j = 0; j < spatial; ++j) {
        sum_gy += gy[j];
        sum_gy_xhat += static_cast<double>(gy[j]) * xh[j];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_gy_xhat);
    beta_.grad[c] += static_cast<float>(sum_gy);

    const float g = gamma_.value[c];
    const float inv_std = cached_inv_std_[static_cast<std::size_t>(c)];
    const float k = g * inv_std;
    if (cached_mode_ == Mode::kTrain) {
      // Batch statistics were functions of x: full coupled gradient.
      const float mean_gy = static_cast<float>(sum_gy / count);
      const float mean_gy_xhat = static_cast<float>(sum_gy_xhat / count);
      for (std::int64_t s = 0; s < n; ++s) {
        const float* gy = grad_out.data() + grad_out.idx4(s, c, 0, 0);
        const float* xh = cached_xhat_.data() + cached_xhat_.idx4(s, c, 0, 0);
        float* gxc = gx.data() + gx.idx4(s, c, 0, 0);
        for (std::int64_t j = 0; j < spatial; ++j)
          gxc[j] = k * (gy[j] - mean_gy - xh[j] * mean_gy_xhat);
      }
    } else {
      // kGrad: running statistics are constants — affine backward only.
      for (std::int64_t s = 0; s < n; ++s) {
        const float* gy = grad_out.data() + grad_out.idx4(s, c, 0, 0);
        float* gxc = gx.data() + gx.idx4(s, c, 0, 0);
        for (std::int64_t j = 0; j < spatial; ++j) gxc[j] = k * gy[j];
      }
    }
  }
  return gx;
}

void BatchNorm2d::collect_params(const std::string& prefix,
                                 std::vector<NamedParam>& out) {
  out.push_back({join_name(prefix, "gamma"), &gamma_});
  out.push_back({join_name(prefix, "beta"), &beta_});
}

void BatchNorm2d::collect_buffers(const std::string& prefix,
                                  std::vector<NamedBuffer>& out) {
  out.push_back({join_name(prefix, "running_mean"), &running_mean_});
  out.push_back({join_name(prefix, "running_var"), &running_var_});
}

}  // namespace radar::nn
