// 2-D convolution via im2col + GEMM, with full backward pass.
//
// Weight layout is [Cout, Cin, K, K]; inputs/outputs are NCHW. ResNet
// convolutions carry no bias (batch-norm provides the shift), but bias is
// supported for standalone use. Forward/backward parallelize across batch
// samples on the global thread pool; the inner GEMMs run single-threaded
// to avoid nested parallelism.
#pragma once

#include <cstdint>

#include "nn/layer.h"

namespace radar::nn {

class Conv2d : public Layer {
 public:
  /// Square kernel, symmetric padding.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t padding,
         bool bias, Rng& rng);

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) override;
  std::string kind() const override { return "Conv2d"; }

  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  bool has_bias() const { return has_bias_; }
  Param& bias() { return bias_; }
  /// Turn on the bias term (used by batch-norm folding); the bias tensor
  /// always exists and starts at zero.
  void enable_bias() { has_bias_ = true; }

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t padding() const { return padding_; }

  /// Output spatial size for a given input size.
  std::int64_t out_size(std::int64_t in_size) const {
    return (in_size + 2 * padding_ - kernel_) / stride_ + 1;
  }

  /// Multiply-accumulate count for one sample at the given input size
  /// (used by the timing simulator and tests).
  std::int64_t macs(std::int64_t in_h, std::int64_t in_w) const;

 private:
  /// Expand one sample into a [Cin*K*K, OH*OW] patch matrix.
  void im2col(const float* x, std::int64_t in_h, std::int64_t in_w,
              float* col) const;
  /// Scatter a patch-matrix gradient back into sample-gradient layout.
  void col2im(const float* col, std::int64_t in_h, std::int64_t in_w,
              float* gx) const;

  std::int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;  ///< saved by forward(training=true)
};

}  // namespace radar::nn
