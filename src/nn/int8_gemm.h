// Shared int8 x int8 -> int32 GEMM tile kernels with a fused requantization
// epilogue.
//
// These are the building blocks of the batched quantized inference engine
// (src/qnn): blocked register-tile kernels written in the same
// autovectorizable style as the scan kernels (plain widening
// multiply-accumulate loops over contiguous int8 rows — see
// core/scanner.cpp). Because the accumulators are exact 32-bit integers,
// any tiling / threading / batching order produces bit-identical results;
// the float epilogue is a fixed per-output expression, so two kernels that
// share it (e.g. the naive direct convolution and the tiled im2col GEMM)
// agree byte-for-byte. That exactness is what lets campaign reports be
// CI-diffed across engines and thread counts.
#pragma once

#include <cstdint>

namespace radar::nn {

/// Largest reduction depth K for which K int8*int8 products cannot
/// overflow an int32 accumulator (|p| <= 128 * 127 = 16256).
constexpr std::int64_t kInt8GemmMaxK = (std::int64_t{1} << 31) / 16256;

/// Per-output-row requantization epilogue: y = float(acc) * scale[m] +
/// bias[m], then optional ReLU. `bias == nullptr` means zero bias.
struct RequantEpilogue {
  const float* scale = nullptr;
  const float* bias = nullptr;
  bool relu = false;
};

/// The one epilogue expression both the reference and the tiled kernels
/// evaluate — keep it a single inline function so the two paths cannot
/// drift apart numerically.
inline float requant_one(std::int32_t acc, float scale, float bias,
                         bool relu) {
  const float v = static_cast<float>(acc) * scale + bias;
  return (relu && v < 0.0f) ? 0.0f : v;
}

/// Column-block GEMM (the conv kernel): for m in [m0, m1), p in [0, p),
///   out[m * ldo + p] = epilogue_m( sum_k a[m * lda + k] * b[k * ldb + p] ).
/// `a` is row-major [M x K] (weights, K contiguous); `b` is row-major
/// [K x P] (an im2col patch matrix, P contiguous). Internally blocks m by
/// 4 and p by a cache-resident tile of int32 accumulators, applying the
/// epilogue once per tile ("one pass over the int32 accumulators").
void gemm_i8_colblock(const std::int8_t* a, const std::int8_t* b, float* out,
                      std::int64_t m0, std::int64_t m1, std::int64_t k,
                      std::int64_t p, std::int64_t lda, std::int64_t ldb,
                      std::int64_t ldo, const RequantEpilogue& epi);

/// Dot-product GEMM (the linear kernel): for n in [n0, n1), m in [0, m),
///   y[n * ldy + m] = epilogue_m( sum_k x[n * ldx + k] * w[m * ldw + k] ).
/// Both operands are K-contiguous rows; m is blocked by 4 independent
/// accumulator streams per x row.
void gemm_i8_dot(const std::int8_t* x, const std::int8_t* w, float* y,
                 std::int64_t n0, std::int64_t n1, std::int64_t m,
                 std::int64_t k, std::int64_t ldx, std::int64_t ldw,
                 std::int64_t ldy, const RequantEpilogue& epi);

}  // namespace radar::nn
