// Fully-connected layer: y = x W^T + b with weight [out, in].
#pragma once

#include "nn/layer.h"

namespace radar::nn {

class Linear : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, bool bias,
         Rng& rng);

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) override;
  std::string kind() const override { return "Linear"; }

  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  bool has_bias() const { return has_bias_; }
  Param& bias() { return bias_; }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

  /// MACs for one sample.
  std::int64_t macs() const { return in_features_ * out_features_; }

 private:
  std::int64_t in_features_, out_features_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

}  // namespace radar::nn
