#include "nn/optimizer.h"

#include <cmath>

namespace radar::nn {

Sgd::Sgd(std::vector<NamedParam> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (auto& np : params_) velocity_.emplace_back(np.param->value.shape());
}

void Sgd::step() {
  for (std::size_t p = 0; p < params_.size(); ++p) {
    Param& param = *params_[p].param;
    Tensor& vel = velocity_[p];
    const float wd = decayable(param) ? weight_decay_ : 0.0f;
    for (std::int64_t i = 0; i < param.value.numel(); ++i) {
      const float g = param.grad[i] + wd * param.value[i];
      vel[i] = momentum_ * vel[i] + g;
      param.value[i] -= lr_ * vel[i];
    }
  }
}

Adam::Adam(std::vector<NamedParam> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& np : params_) {
    m_.emplace_back(np.param->value.shape());
    v_.emplace_back(np.param->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t p = 0; p < params_.size(); ++p) {
    Param& param = *params_[p].param;
    const float wd = decayable(param) ? weight_decay_ : 0.0f;
    for (std::int64_t i = 0; i < param.value.numel(); ++i) {
      const float g = param.grad[i] + wd * param.value[i];
      m_[p][i] = beta1_ * m_[p][i] + (1.0f - beta1_) * g;
      v_[p][i] = beta2_ * v_[p][i] + (1.0f - beta2_) * g * g;
      const double mhat = m_[p][i] / bc1;
      const double vhat = v_[p][i] / bc2;
      param.value[i] -=
          static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace radar::nn
