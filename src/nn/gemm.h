// Dense matrix multiply kernels used by Conv2d (im2col) and Linear.
//
// C[MxN] = A[MxK] * B[KxN] (+ optional accumulate). Row-major storage.
// Kernels block over rows; when `parallel` they split across the global
// thread pool. Callers that already parallelize an outer loop (Conv2d
// parallelizes over batch samples) must pass parallel=false — the pool
// does not support nested parallel sections.
#pragma once

#include <cstdint>

namespace radar::nn {

/// C = A * B (C += A * B when accumulate).
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, bool accumulate = false,
          bool parallel = true);

/// C[MxN] = A[MxK] * B^T where B is [N x K] row-major.
void gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate = false,
             bool parallel = true);

/// C[MxN] = A^T * B where A is [K x M] row-major.
void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate = false,
             bool parallel = true);

}  // namespace radar::nn
