// Batch-norm folding for deployment.
//
// Inference-time batch norm is an affine map with constant coefficients,
// so it can be folded into the preceding convolution:
//
//   y = gamma * (conv(x) - mu) / sqrt(var + eps) + beta
//     = conv'(x) + b',   W'_o = W_o * gamma_o / sqrt(var_o + eps)
//                        b'_o = beta_o - gamma_o * mu_o / sqrt(var_o+eps)
//
// Real int8 deployments (the paper's setting) quantize the *folded*
// weights; folding is therefore part of the production pipeline, not an
// optimization detail. After folding the BN layer is reset to identity.
#pragma once

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/resnet.h"

namespace radar::nn {

/// Fold `bn` into `conv` in place; `bn` becomes the identity transform.
/// The convolution gains a bias term if it had none.
void fold_conv_bn(Conv2d& conv, BatchNorm2d& bn);

/// Fold every conv+BN pair of a ResNet (stem and all blocks).
/// Eval-mode outputs are preserved up to float rounding.
void fold_batchnorm(ResNet& model);

}  // namespace radar::nn
