// Dense row-major float tensor.
//
// The single numeric container of the NN substrate. Deliberately plain:
// contiguous std::vector<float> storage, shapes up to rank 4 (N,C,H,W),
// value semantics, no views/strides — the layer kernels index explicitly.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace radar::nn {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::int64_t> shape);
  Tensor(std::initializer_list<std::int64_t> shape)
      : Tensor(std::vector<std::int64_t>(shape)) {}

  // ---- shape ----
  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const {
    RADAR_REQUIRE(i < shape_.size(), "dim index out of range");
    return shape_[i];
  }
  std::size_t rank() const { return shape_.size(); }
  std::int64_t numel() const { return numel_; }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }
  std::string shape_str() const;

  /// Reinterpret as a new shape with identical element count.
  void reshape(std::vector<std::int64_t> shape);

  // ---- element access ----
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  /// Checked linear access.
  float& at(std::int64_t i) {
    RADAR_REQUIRE(i >= 0 && i < numel_, "index out of range");
    return data_[static_cast<std::size_t>(i)];
  }
  float at(std::int64_t i) const {
    RADAR_REQUIRE(i >= 0 && i < numel_, "index out of range");
    return data_[static_cast<std::size_t>(i)];
  }

  /// NCHW offset (unchecked beyond debug builds; hot path).
  std::int64_t idx4(std::int64_t n, std::int64_t c, std::int64_t h,
                    std::int64_t w) const {
    return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  }
  std::int64_t idx2(std::int64_t r, std::int64_t c) const {
    return r * shape_[1] + c;
  }

  // ---- bulk ops ----
  void fill(float v);
  void zero() { fill(0.0f); }
  void add_(const Tensor& other);              ///< elementwise +=
  void sub_(const Tensor& other);              ///< elementwise -=
  void scale_(float s);                        ///< elementwise *=
  void axpy_(float alpha, const Tensor& x);    ///< this += alpha * x

  float sum() const;
  float min() const;
  float max() const;
  float abs_max() const;
  float mean() const;
  /// Squared L2 norm.
  float sq_norm() const;

  // ---- factories ----
  static Tensor zeros(std::vector<std::int64_t> shape) {
    return Tensor(std::move(shape));
  }
  static Tensor full(std::vector<std::int64_t> shape, float v);
  /// Gaussian init N(0, stddev^2).
  static Tensor randn(std::vector<std::int64_t> shape, Rng& rng,
                      float stddev = 1.0f);
  /// Kaiming (He) normal init for a weight of given fan_in.
  static Tensor kaiming(std::vector<std::int64_t> shape, std::int64_t fan_in,
                        Rng& rng);
  static Tensor uniform(std::vector<std::int64_t> shape, Rng& rng, float lo,
                        float hi);
  static Tensor from_vector(std::vector<std::int64_t> shape,
                            std::vector<float> values);

 private:
  std::vector<float> data_;
  std::vector<std::int64_t> shape_;
  std::int64_t numel_ = 0;
};

/// Elementwise binary helpers (allocate a result).
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(float s, const Tensor& a);

/// Max |a-b| over all elements; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace radar::nn
