#include "nn/conv2d.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>

#include "common/thread_pool.h"
#include "nn/gemm.h"

namespace radar::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               bool bias, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_(Tensor::kaiming({out_channels, in_channels, kernel, kernel},
                              in_channels * kernel * kernel, rng),
              ParamKind::kConvWeight),
      bias_(Tensor({out_channels}), ParamKind::kBias) {
  RADAR_REQUIRE(in_channels > 0 && out_channels > 0, "bad channel count");
  RADAR_REQUIRE(kernel > 0 && stride > 0 && padding >= 0,
                "bad conv geometry");
}

std::int64_t Conv2d::macs(std::int64_t in_h, std::int64_t in_w) const {
  const std::int64_t oh = out_size(in_h);
  const std::int64_t ow = out_size(in_w);
  return out_channels_ * oh * ow * in_channels_ * kernel_ * kernel_;
}

void Conv2d::im2col(const float* x, std::int64_t in_h, std::int64_t in_w,
                    float* col) const {
  const std::int64_t oh = out_size(in_h);
  const std::int64_t ow = out_size(in_w);
  const std::int64_t ospatial = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < in_channels_; ++c) {
    for (std::int64_t kh = 0; kh < kernel_; ++kh) {
      for (std::int64_t kw = 0; kw < kernel_; ++kw, ++row) {
        float* dst = col + row * ospatial;
        for (std::int64_t yo = 0; yo < oh; ++yo) {
          const std::int64_t yi = yo * stride_ - padding_ + kh;
          if (yi < 0 || yi >= in_h) {
            std::memset(dst + yo * ow, 0,
                        sizeof(float) * static_cast<std::size_t>(ow));
            continue;
          }
          const float* src_row = x + (c * in_h + yi) * in_w;
          for (std::int64_t xo = 0; xo < ow; ++xo) {
            const std::int64_t xi = xo * stride_ - padding_ + kw;
            dst[yo * ow + xo] =
                (xi >= 0 && xi < in_w) ? src_row[xi] : 0.0f;
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* col, std::int64_t in_h, std::int64_t in_w,
                    float* gx) const {
  const std::int64_t oh = out_size(in_h);
  const std::int64_t ow = out_size(in_w);
  const std::int64_t ospatial = oh * ow;
  std::memset(gx, 0,
              sizeof(float) *
                  static_cast<std::size_t>(in_channels_ * in_h * in_w));
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < in_channels_; ++c) {
    for (std::int64_t kh = 0; kh < kernel_; ++kh) {
      for (std::int64_t kw = 0; kw < kernel_; ++kw, ++row) {
        const float* src = col + row * ospatial;
        for (std::int64_t yo = 0; yo < oh; ++yo) {
          const std::int64_t yi = yo * stride_ - padding_ + kh;
          if (yi < 0 || yi >= in_h) continue;
          float* gx_row = gx + (c * in_h + yi) * in_w;
          for (std::int64_t xo = 0; xo < ow; ++xo) {
            const std::int64_t xi = xo * stride_ - padding_ + kw;
            if (xi >= 0 && xi < in_w) gx_row[xi] += src[yo * ow + xo];
          }
        }
      }
    }
  }
}

Tensor Conv2d::forward(const Tensor& x, Mode mode) {
  RADAR_REQUIRE(x.rank() == 4, "Conv2d expects NCHW input");
  RADAR_REQUIRE(x.dim(1) == in_channels_, "input channel mismatch");
  const std::int64_t n = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const std::int64_t oh = out_size(in_h), ow = out_size(in_w);
  RADAR_REQUIRE(oh > 0 && ow > 0, "conv output collapses to zero size");
  Tensor y({n, out_channels_, oh, ow});

  const std::int64_t ckk = in_channels_ * kernel_ * kernel_;
  const std::int64_t ospatial = oh * ow;
  const std::int64_t in_stride = in_channels_ * in_h * in_w;
  const std::int64_t out_stride = out_channels_ * ospatial;

  ThreadPool::global().parallel_for_chunks(
      static_cast<std::size_t>(n), [&](std::size_t begin, std::size_t end) {
        std::vector<float> col(
            static_cast<std::size_t>(ckk * ospatial));
        for (std::size_t s = begin; s < end; ++s) {
          const float* xs = x.data() + static_cast<std::int64_t>(s) * in_stride;
          float* ys = y.data() + static_cast<std::int64_t>(s) * out_stride;
          im2col(xs, in_h, in_w, col.data());
          gemm(weight_.value.data(), col.data(), ys, out_channels_, ckk,
               ospatial, /*accumulate=*/false, /*parallel=*/false);
          if (has_bias_) {
            for (std::int64_t co = 0; co < out_channels_; ++co) {
              const float b = bias_.value[co];
              float* yrow = ys + co * ospatial;
              for (std::int64_t j = 0; j < ospatial; ++j) yrow[j] += b;
            }
          }
        }
      });

  if (needs_cache(mode)) cached_input_ = x;
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  RADAR_REQUIRE(x.numel() > 0, "backward before forward(training=true)");
  const std::int64_t n = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const std::int64_t oh = out_size(in_h), ow = out_size(in_w);
  RADAR_REQUIRE(grad_out.dim(0) == n && grad_out.dim(1) == out_channels_ &&
                    grad_out.dim(2) == oh && grad_out.dim(3) == ow,
                "grad_out shape mismatch");

  const std::int64_t ckk = in_channels_ * kernel_ * kernel_;
  const std::int64_t ospatial = oh * ow;
  const std::int64_t in_stride = in_channels_ * in_h * in_w;
  const std::int64_t out_stride = out_channels_ * ospatial;

  Tensor gx(x.shape());
  // Per-chunk gradient buffers, reduced in a fixed order after the
  // parallel section: float accumulation order must not depend on thread
  // scheduling (PBFA ranks weights by gradient, so nondeterministic
  // last-bit noise would make attacks irreproducible).
  std::mutex acc_mutex;
  std::vector<std::pair<std::size_t, std::vector<float>>> gw_chunks;
  std::vector<std::pair<std::size_t, std::vector<float>>> gb_chunks;

  ThreadPool::global().parallel_for_chunks(
      static_cast<std::size_t>(n), [&](std::size_t begin, std::size_t end) {
        std::vector<float> col(static_cast<std::size_t>(ckk * ospatial));
        std::vector<float> gcol(static_cast<std::size_t>(ckk * ospatial));
        std::vector<float> local_gw(
            static_cast<std::size_t>(out_channels_ * ckk), 0.0f);
        std::vector<float> local_gb(static_cast<std::size_t>(out_channels_),
                                    0.0f);
        for (std::size_t s = begin; s < end; ++s) {
          const float* xs =
              x.data() + static_cast<std::int64_t>(s) * in_stride;
          const float* gys =
              grad_out.data() + static_cast<std::int64_t>(s) * out_stride;
          im2col(xs, in_h, in_w, col.data());
          // dW += dY * col^T
          gemm_bt(gys, col.data(), local_gw.data(), out_channels_, ospatial,
                  ckk, /*accumulate=*/true, /*parallel=*/false);
          // dcol = W^T * dY
          gemm_at(weight_.value.data(), gys, gcol.data(), ckk, out_channels_,
                  ospatial, /*accumulate=*/false, /*parallel=*/false);
          col2im(gcol.data(),
                 in_h, in_w,
                 gx.data() + static_cast<std::int64_t>(s) * in_stride);
          if (has_bias_) {
            for (std::int64_t co = 0; co < out_channels_; ++co) {
              double acc = 0.0;
              const float* gyrow = gys + co * ospatial;
              for (std::int64_t j = 0; j < ospatial; ++j) acc += gyrow[j];
              local_gb[static_cast<std::size_t>(co)] +=
                  static_cast<float>(acc);
            }
          }
        }
        std::lock_guard<std::mutex> lock(acc_mutex);
        gw_chunks.emplace_back(begin, std::move(local_gw));
        if (has_bias_) gb_chunks.emplace_back(begin, std::move(local_gb));
      });

  std::sort(gw_chunks.begin(), gw_chunks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [begin, local_gw] : gw_chunks) {
    (void)begin;
    for (std::size_t i = 0; i < local_gw.size(); ++i)
      weight_.grad[static_cast<std::int64_t>(i)] += local_gw[i];
  }
  if (has_bias_) {
    std::sort(gb_chunks.begin(), gb_chunks.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [begin, local_gb] : gb_chunks) {
      (void)begin;
      for (std::size_t i = 0; i < local_gb.size(); ++i)
        bias_.grad[static_cast<std::int64_t>(i)] += local_gb[i];
    }
  }
  return gx;
}

void Conv2d::collect_params(const std::string& prefix,
                            std::vector<NamedParam>& out) {
  out.push_back({join_name(prefix, "weight"), &weight_});
  if (has_bias_) out.push_back({join_name(prefix, "bias"), &bias_});
}

}  // namespace radar::nn
