#include "nn/int8_gemm.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/cpu_features.h"
#include "common/error.h"
#include "common/simd_ops.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define RADAR_GEMM_X86 1
#endif

namespace radar::nn {

namespace {

// Register/L1 tile: 4 output rows x 256 int32 accumulators (4 KiB) stays
// resident while the K loop streams weights and patch rows through it.
constexpr std::int64_t kMTile = 4;
constexpr std::int64_t kPTile = 256;

/// The m-block microkernel: accumulate acc[mi][pp] += sum_k a_mi[k] *
/// b[k * ldb + pp] for 4 weight rows and pt <= kPTile patch columns.
/// acc arrives zeroed. Variants are registered per SIMD level; all
/// accumulate exactly in int32 (the K <= kInt8GemmMaxK guard in the
/// entry points bounds every per-column sum), so they are bit-identical.
using TileFn = void (*)(const std::int8_t* a0, const std::int8_t* a1,
                        const std::int8_t* a2, const std::int8_t* a3,
                        const std::int8_t* b, std::int64_t k,
                        std::int64_t pt, std::int64_t ldb,
                        std::int32_t acc[kMTile][kPTile]);

void tile_i8_scalar(const std::int8_t* a0, const std::int8_t* a1,
                    const std::int8_t* a2, const std::int8_t* a3,
                    const std::int8_t* b, std::int64_t k, std::int64_t pt,
                    std::int64_t ldb, std::int32_t acc[kMTile][kPTile]) {
  // 4 weight streams share one pass over each patch row (autovectorizes).
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const std::int8_t* brow = b + kk * ldb;
    const std::int16_t w0 = a0[kk], w1 = a1[kk], w2 = a2[kk], w3 = a3[kk];
    for (std::int64_t pp = 0; pp < pt; ++pp) {
      const std::int16_t bv = brow[pp];
      acc[0][pp] += w0 * bv;
      acc[1][pp] += w1 * bv;
      acc[2][pp] += w2 * bv;
      acc[3][pp] += w3 * bv;
    }
  }
}

#if defined(RADAR_GEMM_X86)

// Vector tiles keep the accumulators in registers across the whole K
// loop (the scalar form streams the 4 KiB acc array through L1 every k
// step, which is what caps it). Two consecutive k rows are folded per
// step with pmaddwd on (b[kk], b[kk+1]) i16 pairs; unpacklo/hi_epi16
// works within 128-bit lanes, so accumulator lane j of the "lo" vector
// holds column 8*(j/4) + j%4 of its 32-column chunk and the "hi" vector
// the +4 columns — a fixed permutation undone once when the lanes are
// stored back to the linear acc array.

__attribute__((target("avx512f,avx512bw,avx512vl"))) void tile_i8_avx512(
    const std::int8_t* a0, const std::int8_t* a1, const std::int8_t* a2,
    const std::int8_t* a3, const std::int8_t* b, std::int64_t k,
    std::int64_t pt, std::int64_t ldb, std::int32_t acc[kMTile][kPTile]) {
  const std::int8_t* const a[kMTile] = {a0, a1, a2, a3};
  std::int64_t p = 0;
  for (; p + 32 <= pt; p += 32) {
    __m512i acc_lo[kMTile], acc_hi[kMTile];
    for (int mi = 0; mi < kMTile; ++mi) {
      acc_lo[mi] = _mm512_setzero_si512();
      acc_hi[mi] = _mm512_setzero_si512();
    }
    std::int64_t kk = 0;
    for (; kk + 2 <= k; kk += 2) {
      const __m512i vb0 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b + kk * ldb + p)));
      const __m512i vb1 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b + (kk + 1) * ldb + p)));
      const __m512i lo = _mm512_unpacklo_epi16(vb0, vb1);
      const __m512i hi = _mm512_unpackhi_epi16(vb0, vb1);
      for (int mi = 0; mi < kMTile; ++mi) {
        const __m512i wpair = _mm512_set1_epi32(
            (static_cast<std::int32_t>(
                 static_cast<std::uint16_t>(a[mi][kk + 1]))
             << 16) |
            static_cast<std::uint16_t>(a[mi][kk]));
        acc_lo[mi] =
            _mm512_add_epi32(acc_lo[mi], _mm512_madd_epi16(lo, wpair));
        acc_hi[mi] =
            _mm512_add_epi32(acc_hi[mi], _mm512_madd_epi16(hi, wpair));
      }
    }
    if (kk < k) {  // odd K tail: pair the last row with zeros
      const __m512i vb0 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b + kk * ldb + p)));
      const __m512i zero = _mm512_setzero_si512();
      const __m512i lo = _mm512_unpacklo_epi16(vb0, zero);
      const __m512i hi = _mm512_unpackhi_epi16(vb0, zero);
      for (int mi = 0; mi < kMTile; ++mi) {
        const __m512i wpair =
            _mm512_set1_epi32(static_cast<std::uint16_t>(a[mi][kk]));
        acc_lo[mi] =
            _mm512_add_epi32(acc_lo[mi], _mm512_madd_epi16(lo, wpair));
        acc_hi[mi] =
            _mm512_add_epi32(acc_hi[mi], _mm512_madd_epi16(hi, wpair));
      }
    }
    // Un-permute: lane j of lo -> column 8*(j/4) + j%4, hi -> +4.
    alignas(64) std::int32_t lanes[16];
    for (int mi = 0; mi < kMTile; ++mi) {
      _mm512_store_si512(lanes, acc_lo[mi]);
      for (int j = 0; j < 16; ++j)
        acc[mi][p + 8 * (j / 4) + j % 4] = lanes[j];
      _mm512_store_si512(lanes, acc_hi[mi]);
      for (int j = 0; j < 16; ++j)
        acc[mi][p + 8 * (j / 4) + 4 + j % 4] = lanes[j];
    }
  }
  if (p < pt) {  // narrow column tail: scalar over the remaining columns
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int8_t* brow = b + kk * ldb;
      const std::int16_t w0 = a0[kk], w1 = a1[kk], w2 = a2[kk],
                         w3 = a3[kk];
      for (std::int64_t pp = p; pp < pt; ++pp) {
        const std::int16_t bv = brow[pp];
        acc[0][pp] += w0 * bv;
        acc[1][pp] += w1 * bv;
        acc[2][pp] += w2 * bv;
        acc[3][pp] += w3 * bv;
      }
    }
  }
}

__attribute__((target("avx2"))) void tile_i8_avx2(
    const std::int8_t* a0, const std::int8_t* a1, const std::int8_t* a2,
    const std::int8_t* a3, const std::int8_t* b, std::int64_t k,
    std::int64_t pt, std::int64_t ldb, std::int32_t acc[kMTile][kPTile]) {
  const std::int8_t* const a[kMTile] = {a0, a1, a2, a3};
  std::int64_t p = 0;
  for (; p + 16 <= pt; p += 16) {
    __m256i acc_lo[kMTile], acc_hi[kMTile];
    for (int mi = 0; mi < kMTile; ++mi) {
      acc_lo[mi] = _mm256_setzero_si256();
      acc_hi[mi] = _mm256_setzero_si256();
    }
    std::int64_t kk = 0;
    for (; kk + 2 <= k; kk += 2) {
      const __m256i vb0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b + kk * ldb + p)));
      const __m256i vb1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b + (kk + 1) * ldb + p)));
      const __m256i lo = _mm256_unpacklo_epi16(vb0, vb1);
      const __m256i hi = _mm256_unpackhi_epi16(vb0, vb1);
      for (int mi = 0; mi < kMTile; ++mi) {
        const __m256i wpair = _mm256_set1_epi32(
            (static_cast<std::int32_t>(
                 static_cast<std::uint16_t>(a[mi][kk + 1]))
             << 16) |
            static_cast<std::uint16_t>(a[mi][kk]));
        acc_lo[mi] =
            _mm256_add_epi32(acc_lo[mi], _mm256_madd_epi16(lo, wpair));
        acc_hi[mi] =
            _mm256_add_epi32(acc_hi[mi], _mm256_madd_epi16(hi, wpair));
      }
    }
    if (kk < k) {
      const __m256i vb0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b + kk * ldb + p)));
      const __m256i zero = _mm256_setzero_si256();
      const __m256i lo = _mm256_unpacklo_epi16(vb0, zero);
      const __m256i hi = _mm256_unpackhi_epi16(vb0, zero);
      for (int mi = 0; mi < kMTile; ++mi) {
        const __m256i wpair =
            _mm256_set1_epi32(static_cast<std::uint16_t>(a[mi][kk]));
        acc_lo[mi] =
            _mm256_add_epi32(acc_lo[mi], _mm256_madd_epi16(lo, wpair));
        acc_hi[mi] =
            _mm256_add_epi32(acc_hi[mi], _mm256_madd_epi16(hi, wpair));
      }
    }
    // Un-permute: lane j of lo -> column 8*(j/4) + j%4, hi -> +4.
    alignas(32) std::int32_t lanes[8];
    for (int mi = 0; mi < kMTile; ++mi) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc_lo[mi]);
      for (int j = 0; j < 8; ++j)
        acc[mi][p + 8 * (j / 4) + j % 4] = lanes[j];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc_hi[mi]);
      for (int j = 0; j < 8; ++j)
        acc[mi][p + 8 * (j / 4) + 4 + j % 4] = lanes[j];
    }
  }
  if (p < pt) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int8_t* brow = b + kk * ldb;
      const std::int16_t w0 = a0[kk], w1 = a1[kk], w2 = a2[kk],
                         w3 = a3[kk];
      for (std::int64_t pp = p; pp < pt; ++pp) {
        const std::int16_t bv = brow[pp];
        acc[0][pp] += w0 * bv;
        acc[1][pp] += w1 * bv;
        acc[2][pp] += w2 * bv;
        acc[3][pp] += w3 * bv;
      }
    }
  }
}

#endif  // RADAR_GEMM_X86

const TileFn* tile_table() {
  static const std::array<TileFn, cpu::kNumSimdLevels> table = [] {
    std::array<TileFn, cpu::kNumSimdLevels> t;
    t.fill(&tile_i8_scalar);
#if defined(RADAR_GEMM_X86)
    if (cpu::level_supported(cpu::SimdLevel::kAvx2))
      t[static_cast<int>(cpu::SimdLevel::kAvx2)] = &tile_i8_avx2;
    if (cpu::level_supported(cpu::SimdLevel::kAvx512))
      t[static_cast<int>(cpu::SimdLevel::kAvx512)] = &tile_i8_avx512;
#endif
    return t;
  }();
  return table.data();
}

}  // namespace

void gemm_i8_colblock(const std::int8_t* a, const std::int8_t* b, float* out,
                      std::int64_t m0, std::int64_t m1, std::int64_t k,
                      std::int64_t p, std::int64_t lda, std::int64_t ldb,
                      std::int64_t ldo, const RequantEpilogue& epi) {
  RADAR_REQUIRE(k <= kInt8GemmMaxK, "int8 GEMM depth overflows int32");
  const TileFn tile =
      tile_table()[static_cast<int>(cpu::active_level())];
  std::int32_t acc[kMTile][kPTile];
  for (std::int64_t m = m0; m < m1; m += kMTile) {
    const std::int64_t mt = std::min(kMTile, m1 - m);
    for (std::int64_t p0 = 0; p0 < p; p0 += kPTile) {
      const std::int64_t pt = std::min(kPTile, p - p0);
      for (std::int64_t mi = 0; mi < mt; ++mi)
        std::memset(acc[mi], 0, sizeof(std::int32_t) *
                                    static_cast<std::size_t>(pt));
      if (mt == kMTile) {
        tile(a + (m + 0) * lda, a + (m + 1) * lda, a + (m + 2) * lda,
             a + (m + 3) * lda, b + p0, k, pt, ldb, acc);
      } else {
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const std::int8_t* brow = b + kk * ldb + p0;
          for (std::int64_t mi = 0; mi < mt; ++mi) {
            const std::int16_t wv = a[(m + mi) * lda + kk];
            std::int32_t* arow = acc[mi];
            for (std::int64_t pp = 0; pp < pt; ++pp)
              arow[pp] += wv * static_cast<std::int16_t>(brow[pp]);
          }
        }
      }
      // Fused epilogue: bias + requant (+ ReLU) in one pass over the tile.
      for (std::int64_t mi = 0; mi < mt; ++mi) {
        const float s = epi.scale[m + mi];
        const float bs = epi.bias != nullptr ? epi.bias[m + mi] : 0.0f;
        float* orow = out + (m + mi) * ldo + p0;
        const std::int32_t* arow = acc[mi];
        if (epi.relu) {
          for (std::int64_t pp = 0; pp < pt; ++pp)
            orow[pp] = requant_one(arow[pp], s, bs, true);
        } else {
          for (std::int64_t pp = 0; pp < pt; ++pp)
            orow[pp] = requant_one(arow[pp], s, bs, false);
        }
      }
    }
  }
}

void gemm_i8_dot(const std::int8_t* x, const std::int8_t* w, float* y,
                 std::int64_t n0, std::int64_t n1, std::int64_t m,
                 std::int64_t k, std::int64_t ldx, std::int64_t ldw,
                 std::int64_t ldy, const RequantEpilogue& epi) {
  RADAR_REQUIRE(k <= kInt8GemmMaxK, "int8 GEMM depth overflows int32");
  // Each output is a contiguous dot product, so this rides the shared
  // dispatched primitive (AVX-512 VNNI / AVX2 / NEON / scalar — all
  // bit-identical); the x row stays L1-resident across the m loop.
  for (std::int64_t n = n0; n < n1; ++n) {
    const std::int8_t* xr = x + n * ldx;
    float* yr = y + n * ldy;
    for (std::int64_t mm = 0; mm < m; ++mm) {
      const std::int32_t acc = simd::dot_i8(xr, w + mm * ldw, k);
      yr[mm] = requant_one(acc, epi.scale[mm],
                           epi.bias != nullptr ? epi.bias[mm] : 0.0f,
                           epi.relu);
    }
  }
}

}  // namespace radar::nn
