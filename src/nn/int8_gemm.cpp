#include "nn/int8_gemm.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace radar::nn {

namespace {

// Register/L1 tile: 4 output rows x 256 int32 accumulators (4 KiB) stays
// resident while the K loop streams weights and patch rows through it.
constexpr std::int64_t kMTile = 4;
constexpr std::int64_t kPTile = 256;

}  // namespace

void gemm_i8_colblock(const std::int8_t* a, const std::int8_t* b, float* out,
                      std::int64_t m0, std::int64_t m1, std::int64_t k,
                      std::int64_t p, std::int64_t lda, std::int64_t ldb,
                      std::int64_t ldo, const RequantEpilogue& epi) {
  RADAR_REQUIRE(k <= kInt8GemmMaxK, "int8 GEMM depth overflows int32");
  std::int32_t acc[kMTile][kPTile];
  for (std::int64_t m = m0; m < m1; m += kMTile) {
    const std::int64_t mt = std::min(kMTile, m1 - m);
    for (std::int64_t p0 = 0; p0 < p; p0 += kPTile) {
      const std::int64_t pt = std::min(kPTile, p - p0);
      for (std::int64_t mi = 0; mi < mt; ++mi)
        std::memset(acc[mi], 0, sizeof(std::int32_t) *
                                    static_cast<std::size_t>(pt));
      if (mt == kMTile) {
        // Hot path: 4 weight streams share one pass over each patch row.
        const std::int8_t* a0 = a + (m + 0) * lda;
        const std::int8_t* a1 = a + (m + 1) * lda;
        const std::int8_t* a2 = a + (m + 2) * lda;
        const std::int8_t* a3 = a + (m + 3) * lda;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const std::int8_t* brow = b + kk * ldb + p0;
          const std::int16_t w0 = a0[kk], w1 = a1[kk], w2 = a2[kk],
                             w3 = a3[kk];
          for (std::int64_t pp = 0; pp < pt; ++pp) {
            const std::int16_t bv = brow[pp];
            acc[0][pp] += w0 * bv;
            acc[1][pp] += w1 * bv;
            acc[2][pp] += w2 * bv;
            acc[3][pp] += w3 * bv;
          }
        }
      } else {
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const std::int8_t* brow = b + kk * ldb + p0;
          for (std::int64_t mi = 0; mi < mt; ++mi) {
            const std::int16_t wv = a[(m + mi) * lda + kk];
            std::int32_t* arow = acc[mi];
            for (std::int64_t pp = 0; pp < pt; ++pp)
              arow[pp] += wv * static_cast<std::int16_t>(brow[pp]);
          }
        }
      }
      // Fused epilogue: bias + requant (+ ReLU) in one pass over the tile.
      for (std::int64_t mi = 0; mi < mt; ++mi) {
        const float s = epi.scale[m + mi];
        const float bs = epi.bias != nullptr ? epi.bias[m + mi] : 0.0f;
        float* orow = out + (m + mi) * ldo + p0;
        const std::int32_t* arow = acc[mi];
        if (epi.relu) {
          for (std::int64_t pp = 0; pp < pt; ++pp)
            orow[pp] = requant_one(arow[pp], s, bs, true);
        } else {
          for (std::int64_t pp = 0; pp < pt; ++pp)
            orow[pp] = requant_one(arow[pp], s, bs, false);
        }
      }
    }
  }
}

void gemm_i8_dot(const std::int8_t* x, const std::int8_t* w, float* y,
                 std::int64_t n0, std::int64_t n1, std::int64_t m,
                 std::int64_t k, std::int64_t ldx, std::int64_t ldw,
                 std::int64_t ldy, const RequantEpilogue& epi) {
  RADAR_REQUIRE(k <= kInt8GemmMaxK, "int8 GEMM depth overflows int32");
  for (std::int64_t n = n0; n < n1; ++n) {
    const std::int8_t* xr = x + n * ldx;
    float* yr = y + n * ldy;
    std::int64_t mm = 0;
    for (; mm + kMTile <= m; mm += kMTile) {
      const std::int8_t* w0 = w + (mm + 0) * ldw;
      const std::int8_t* w1 = w + (mm + 1) * ldw;
      const std::int8_t* w2 = w + (mm + 2) * ldw;
      const std::int8_t* w3 = w + (mm + 3) * ldw;
      std::int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const std::int16_t xv = xr[kk];
        s0 += xv * static_cast<std::int16_t>(w0[kk]);
        s1 += xv * static_cast<std::int16_t>(w1[kk]);
        s2 += xv * static_cast<std::int16_t>(w2[kk]);
        s3 += xv * static_cast<std::int16_t>(w3[kk]);
      }
      const float* bias = epi.bias;
      yr[mm + 0] = requant_one(s0, epi.scale[mm + 0],
                               bias != nullptr ? bias[mm + 0] : 0.0f,
                               epi.relu);
      yr[mm + 1] = requant_one(s1, epi.scale[mm + 1],
                               bias != nullptr ? bias[mm + 1] : 0.0f,
                               epi.relu);
      yr[mm + 2] = requant_one(s2, epi.scale[mm + 2],
                               bias != nullptr ? bias[mm + 2] : 0.0f,
                               epi.relu);
      yr[mm + 3] = requant_one(s3, epi.scale[mm + 3],
                               bias != nullptr ? bias[mm + 3] : 0.0f,
                               epi.relu);
    }
    for (; mm < m; ++mm) {
      const std::int8_t* wr = w + mm * ldw;
      std::int32_t acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<std::int16_t>(xr[kk]) *
               static_cast<std::int16_t>(wr[kk]);
      yr[mm] = requant_one(acc, epi.scale[mm],
                           epi.bias != nullptr ? epi.bias[mm] : 0.0f,
                           epi.relu);
    }
  }
}

}  // namespace radar::nn
