// Residual networks: ResNet-20 (CIFAR-style) and ResNet-18 builders.
//
// Architectures follow He et al. (CVPR'16): BasicBlock = conv3x3-BN-ReLU-
// conv3x3-BN plus identity (or 1x1-conv-BN projection) skip, post-add ReLU.
// The stem is the 3x3 CIFAR variant: the paper's models consume 32x32
// (ResNet-20) and 224x224 (ResNet-18) inputs; our reproduction trains both
// on 32x32 synthetic data (see DESIGN.md §4), so ResNet-18 takes a
// configurable width multiplier to stay CPU-trainable while keeping its
// 4-stage, 2-blocks-per-stage topology.
#pragma once

#include <memory>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layer.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace radar::nn {

/// Standard residual basic block.
class BasicBlock : public Layer {
 public:
  /// stride > 1 (or channel change) inserts a 1x1 projection on the skip.
  BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
             std::int64_t stride, Rng& rng);

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) override;
  void collect_buffers(const std::string& prefix,
                       std::vector<NamedBuffer>& out) override;
  std::string kind() const override { return "BasicBlock"; }

  bool has_projection() const { return down_conv_ != nullptr; }

  // Graph introspection (the quantized inference engine walks the block
  // to compile its op program).
  Conv2d& conv1() { return conv1_; }
  BatchNorm2d& bn1() { return bn1_; }
  Conv2d& conv2() { return conv2_; }
  BatchNorm2d& bn2() { return bn2_; }
  Conv2d* down_conv() { return down_conv_.get(); }
  BatchNorm2d* down_bn() { return down_bn_.get(); }

  /// Fold bn1/bn2 (and the projection BN) into their convolutions; see
  /// nn/fold.h.
  void fold_batchnorm();

 private:
  Conv2d conv1_;
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  std::unique_ptr<Conv2d> down_conv_;
  std::unique_ptr<BatchNorm2d> down_bn_;
  ReLU relu2_;
};

/// Topology descriptor for a ResNet build.
struct ResNetSpec {
  std::int64_t in_channels = 3;
  std::int64_t num_classes = 10;
  std::int64_t base_width = 16;                   ///< channels of stage 0
  std::vector<std::int64_t> blocks_per_stage;     ///< e.g. {3,3,3}
  std::string name = "resnet";

  /// Paper configurations (width_mult scales every stage; 1.0 = paper).
  static ResNetSpec resnet20(std::int64_t num_classes = 10);
  static ResNetSpec resnet18(std::int64_t num_classes = 20,
                             std::int64_t base_width = 16);
};

/// A complete residual classifier. Owns the whole layer graph.
class ResNet {
 public:
  ResNet(const ResNetSpec& spec, Rng& rng);

  Tensor forward(const Tensor& x, Mode mode = Mode::kEval) {
    return net_.forward(x, mode);
  }
  Tensor backward(const Tensor& grad_out) { return net_.backward(grad_out); }

  std::vector<NamedParam> params();
  std::vector<NamedBuffer> buffers();
  void zero_grad();

  /// Total learnable scalar count.
  std::int64_t num_params();

  const ResNetSpec& spec() const { return spec_; }
  Sequential& net() { return net_; }

 private:
  ResNetSpec spec_;
  Sequential net_;
};

}  // namespace radar::nn
