#include "nn/fold.h"

#include <cmath>

namespace radar::nn {

void fold_conv_bn(Conv2d& conv, BatchNorm2d& bn) {
  RADAR_REQUIRE(conv.out_channels() == bn.channels(),
                "conv/bn channel mismatch");
  conv.enable_bias();
  Tensor& w = conv.weight().value;
  Tensor& b = conv.bias().value;
  const std::int64_t per_channel = w.numel() / conv.out_channels();
  for (std::int64_t co = 0; co < conv.out_channels(); ++co) {
    const float inv_std =
        1.0f / std::sqrt(bn.running_var()[co] + 1e-5f);
    const float s = bn.gamma().value[co] * inv_std;
    float* wc = w.data() + co * per_channel;
    for (std::int64_t i = 0; i < per_channel; ++i) wc[i] *= s;
    b[co] = bn.beta().value[co] +
            s * (b[co] - bn.running_mean()[co]);
  }
  // Reset BN to the identity transform.
  bn.gamma().value.fill(1.0f);
  bn.beta().value.zero();
  bn.running_mean().zero();
  bn.running_var().fill(1.0f - 1e-5f);  // sqrt(var + eps) == 1 exactly
}

void fold_batchnorm(ResNet& model) {
  Sequential& net = model.net();
  for (std::size_t i = 0; i + 1 < net.size(); ++i) {
    auto* conv = dynamic_cast<Conv2d*>(&net.child(i));
    auto* bn = dynamic_cast<BatchNorm2d*>(&net.child(i + 1));
    if (conv != nullptr && bn != nullptr) fold_conv_bn(*conv, *bn);
  }
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (auto* block = dynamic_cast<BasicBlock*>(&net.child(i)))
      block->fold_batchnorm();
  }
}

}  // namespace radar::nn
