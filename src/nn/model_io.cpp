#include "nn/model_io.h"

#include <map>

#include "common/serialize.h"

namespace radar::nn {

namespace {
constexpr std::uint32_t kCheckpointVersion = 1;

void write_tensor(BinaryWriter& w, const std::string& name, const Tensor& t) {
  w.write_string(name);
  w.write_u64(t.rank());
  for (auto d : t.shape()) w.write_i64(d);
  w.write_f32_vector(t.vec());
}

void read_tensor_into(BinaryReader& r,
                      const std::map<std::string, Tensor*>& dests,
                      const char* what) {
  const std::string name = r.read_string();
  const auto rank = r.read_u64();
  std::vector<std::int64_t> shape(rank);
  for (auto& d : shape) d = r.read_i64();
  auto data = r.read_f32_vector();
  const auto it = dests.find(name);
  if (it == dests.end())
    throw SerializationError(std::string(what) + " '" + name +
                             "' not present in destination model");
  Tensor& dst = *it->second;
  if (dst.shape() != shape)
    throw SerializationError(std::string(what) + " '" + name +
                             "' shape mismatch");
  RADAR_CHECK(static_cast<std::int64_t>(data.size()) == dst.numel());
  dst.vec() = std::move(data);
}
}  // namespace

void save_checkpoint(const std::string& path,
                     const std::vector<NamedParam>& params,
                     const std::vector<NamedBuffer>& buffers) {
  BinaryWriter w(path, kCheckpointVersion);
  w.write_u64(params.size());
  for (const auto& np : params) write_tensor(w, np.name, np.param->value);
  w.write_u64(buffers.size());
  for (const auto& nb : buffers) write_tensor(w, nb.name, *nb.tensor);
  w.close();
}

void load_checkpoint(const std::string& path,
                     const std::vector<NamedParam>& params,
                     const std::vector<NamedBuffer>& buffers) {
  BinaryReader r(path, kCheckpointVersion);
  std::map<std::string, Tensor*> param_dest, buffer_dest;
  for (const auto& np : params) param_dest[np.name] = &np.param->value;
  for (const auto& nb : buffers) buffer_dest[nb.name] = nb.tensor;

  const auto n_params = r.read_u64();
  if (n_params != param_dest.size())
    throw SerializationError("parameter count mismatch in " + path);
  for (std::uint64_t i = 0; i < n_params; ++i)
    read_tensor_into(r, param_dest, "parameter");

  const auto n_buffers = r.read_u64();
  if (n_buffers != buffer_dest.size())
    throw SerializationError("buffer count mismatch in " + path);
  for (std::uint64_t i = 0; i < n_buffers; ++i)
    read_tensor_into(r, buffer_dest, "buffer");
}

}  // namespace radar::nn
