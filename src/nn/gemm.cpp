#include "nn/gemm.h"

#include <cstring>

#include "common/thread_pool.h"

namespace radar::nn {

namespace {
// Below this many multiply-adds the threading overhead dominates.
constexpr std::int64_t kParallelMinWork = 1 << 15;

void gemm_rows(const float* a, const float* b, float* c, std::int64_t k,
               std::int64_t n, std::int64_t row_begin, std::int64_t row_end,
               bool accumulate) {
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    float* crow = c + i * n;
    if (!accumulate)
      std::memset(crow, 0, sizeof(float) * static_cast<std::size_t>(n));
    const float* arow = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_bt_rows(const float* a, const float* b, float* c, std::int64_t k,
                  std::int64_t n, std::int64_t row_begin,
                  std::int64_t row_end, bool accumulate) {
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      double acc = accumulate ? crow[j] : 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(arow[p]) * brow[p];
      crow[j] = static_cast<float>(acc);
    }
  }
}

void gemm_at_rows(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n, std::int64_t row_begin,
                  std::int64_t row_end, bool accumulate) {
  // C[i, :] = sum_p A[p, i] * B[p, :]; A is [K x M] row-major.
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    float* crow = c + i * n;
    if (!accumulate)
      std::memset(crow, 0, sizeof(float) * static_cast<std::size_t>(n));
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a[p * m + i];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}
}  // namespace

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, bool accumulate, bool parallel) {
  if (!parallel || m * n * k < kParallelMinWork || m == 1) {
    gemm_rows(a, b, c, k, n, 0, m, accumulate);
    return;
  }
  ThreadPool::global().parallel_for_chunks(
      static_cast<std::size_t>(m), [&](std::size_t begin, std::size_t end) {
        gemm_rows(a, b, c, k, n, static_cast<std::int64_t>(begin),
                  static_cast<std::int64_t>(end), accumulate);
      });
}

void gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate, bool parallel) {
  if (!parallel || m * n * k < kParallelMinWork || m == 1) {
    gemm_bt_rows(a, b, c, k, n, 0, m, accumulate);
    return;
  }
  ThreadPool::global().parallel_for_chunks(
      static_cast<std::size_t>(m), [&](std::size_t begin, std::size_t end) {
        gemm_bt_rows(a, b, c, k, n, static_cast<std::int64_t>(begin),
                     static_cast<std::int64_t>(end), accumulate);
      });
}

void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate, bool parallel) {
  if (!parallel || m * n * k < kParallelMinWork || m == 1) {
    gemm_at_rows(a, b, c, m, k, n, 0, m, accumulate);
    return;
  }
  ThreadPool::global().parallel_for_chunks(
      static_cast<std::size_t>(m), [&](std::size_t begin, std::size_t end) {
        gemm_at_rows(a, b, c, m, k, n, static_cast<std::int64_t>(begin),
                     static_cast<std::int64_t>(end), accumulate);
      });
}

}  // namespace radar::nn
