#include "nn/gemm.h"

#include <cstring>

#include "common/thread_pool.h"

namespace radar::nn {

namespace {
// Below this many multiply-adds the threading overhead dominates.
constexpr std::int64_t kParallelMinWork = 1 << 15;

void gemm_rows(const float* a, const float* b, float* c, std::int64_t k,
               std::int64_t n, std::int64_t row_begin, std::int64_t row_end,
               bool accumulate) {
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    float* crow = c + i * n;
    if (!accumulate)
      std::memset(crow, 0, sizeof(float) * static_cast<std::size_t>(n));
    const float* arow = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// Accumulates in float like gemm_rows / gemm_at_rows (it used to widen to
// double, which both halved the vector width and made the three kernels
// disagree on precision for no reason — both dot operands are contiguous,
// so the float loop autovectorizes cleanly).
void gemm_bt_rows(const float* a, const float* b, float* c, std::int64_t k,
                  std::int64_t n, std::int64_t row_begin,
                  std::int64_t row_end, bool accumulate) {
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

void gemm_at_rows(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n, std::int64_t row_begin,
                  std::int64_t row_end, bool accumulate) {
  // C[i, :] = sum_p A[p, i] * B[p, :]; A is [K x M] row-major.
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    float* crow = c + i * n;
    if (!accumulate)
      std::memset(crow, 0, sizeof(float) * static_cast<std::size_t>(n));
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a[p * m + i];
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}
}  // namespace

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, bool accumulate, bool parallel) {
  if (!parallel || m * n * k < kParallelMinWork || m == 1) {
    gemm_rows(a, b, c, k, n, 0, m, accumulate);
    return;
  }
  ThreadPool::global().parallel_for_chunks(
      static_cast<std::size_t>(m), [&](std::size_t begin, std::size_t end) {
        gemm_rows(a, b, c, k, n, static_cast<std::int64_t>(begin),
                  static_cast<std::int64_t>(end), accumulate);
      });
}

void gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate, bool parallel) {
  if (!parallel || m * n * k < kParallelMinWork || m == 1) {
    gemm_bt_rows(a, b, c, k, n, 0, m, accumulate);
    return;
  }
  ThreadPool::global().parallel_for_chunks(
      static_cast<std::size_t>(m), [&](std::size_t begin, std::size_t end) {
        gemm_bt_rows(a, b, c, k, n, static_cast<std::int64_t>(begin),
                     static_cast<std::int64_t>(end), accumulate);
      });
}

void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate, bool parallel) {
  if (!parallel || m * n * k < kParallelMinWork || m == 1) {
    gemm_at_rows(a, b, c, m, k, n, 0, m, accumulate);
    return;
  }
  ThreadPool::global().parallel_for_chunks(
      static_cast<std::size_t>(m), [&](std::size_t begin, std::size_t end) {
        gemm_at_rows(a, b, c, m, k, n, static_cast<std::int64_t>(begin),
                     static_cast<std::int64_t>(end), accumulate);
      });
}

}  // namespace radar::nn
