// Layer framework with explicit manual backpropagation.
//
// Each layer caches what it needs during forward(training=true) and
// produces input gradients in backward(). Composite layers (residual
// blocks, Sequential) own their children and orchestrate the reverse pass
// explicitly — there is no tape/autograd; the graph is the object graph.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace radar::nn {

/// What a parameter is — the quantizer uses this to decide which tensors
/// become int8 (conv/linear weights, per the BFA threat model) and which
/// stay float (biases, batch-norm affine parameters).
enum class ParamKind {
  kConvWeight,
  kLinearWeight,
  kBias,
  kBnGamma,
  kBnBeta,
};

/// A learnable tensor with its gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;
  ParamKind kind = ParamKind::kBias;

  Param() = default;
  Param(Tensor v, ParamKind k)
      : value(std::move(v)), grad(Tensor(value.shape())), kind(k) {}

  void zero_grad() { grad.zero(); }
};

/// Parameter with its hierarchical name, e.g. "stage2.block0.conv1.weight".
struct NamedParam {
  std::string name;
  Param* param;
};

/// Non-learnable persistent tensor (batch-norm running statistics).
struct NamedBuffer {
  std::string name;
  Tensor* tensor;
};

/// Forward-pass mode.
///
/// kEval  — inference only: no caching, batch-norm uses running stats.
/// kTrain — caches for backward, batch-norm uses batch stats and updates
///          running estimates.
/// kGrad  — caches for backward but batch-norm behaves like eval (uses and
///          does not update running stats). This is the PyTorch
///          `model.eval()` + backward combination the BFA attacker relies
///          on to get gradients of the deployed (eval-mode) network.
enum class Mode { kEval, kTrain, kGrad };

/// True when the layer must cache activations for a later backward().
inline bool needs_cache(Mode m) { return m != Mode::kEval; }

/// Base class for every network component.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute outputs according to `mode` (see Mode).
  virtual Tensor forward(const Tensor& x, Mode mode) = 0;

  /// Propagate ∂L/∂output to ∂L/∂input, accumulating parameter gradients.
  /// Only valid after a forward(training=true) call.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Append (prefix-qualified) parameters, depth-first.
  virtual void collect_params(const std::string& prefix,
                              std::vector<NamedParam>& out) {
    (void)prefix;
    (void)out;
  }

  /// Append persistent buffers (running stats), depth-first.
  virtual void collect_buffers(const std::string& prefix,
                               std::vector<NamedBuffer>& out) {
    (void)prefix;
    (void)out;
  }

  /// Short type tag, e.g. "Conv2d".
  virtual std::string kind() const = 0;
};

/// Join hierarchical names: "a" + "b" -> "a.b"; "" + "b" -> "b".
inline std::string join_name(const std::string& prefix,
                             const std::string& leaf) {
  return prefix.empty() ? leaf : prefix + "." + leaf;
}

/// Ordered container running children front-to-back (and back-to-front in
/// backward). Children are owned.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Append a child; returns a non-owning typed pointer for wiring.
  template <typename L, typename... Args>
  L* emplace(std::string name, Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    names_.push_back(std::move(name));
    children_.push_back(std::move(layer));
    return raw;
  }

  void append(std::string name, std::unique_ptr<Layer> layer) {
    names_.push_back(std::move(name));
    children_.push_back(std::move(layer));
  }

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) override;
  void collect_buffers(const std::string& prefix,
                       std::vector<NamedBuffer>& out) override;
  std::string kind() const override { return "Sequential"; }

  std::size_t size() const { return children_.size(); }
  Layer& child(std::size_t i) { return *children_.at(i); }
  const std::string& child_name(std::size_t i) const { return names_.at(i); }

 private:
  std::vector<std::unique_ptr<Layer>> children_;
  std::vector<std::string> names_;
};

}  // namespace radar::nn
