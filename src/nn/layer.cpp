#include "nn/layer.h"

namespace radar::nn {

Tensor Sequential::forward(const Tensor& x, Mode mode) {
  Tensor cur = x;
  for (auto& child : children_) cur = child->forward(cur, mode);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it)
    cur = (*it)->backward(cur);
  return cur;
}

void Sequential::collect_params(const std::string& prefix,
                                std::vector<NamedParam>& out) {
  for (std::size_t i = 0; i < children_.size(); ++i)
    children_[i]->collect_params(join_name(prefix, names_[i]), out);
}

void Sequential::collect_buffers(const std::string& prefix,
                                 std::vector<NamedBuffer>& out) {
  for (std::size_t i = 0; i < children_.size(); ++i)
    children_[i]->collect_buffers(join_name(prefix, names_[i]), out);
}

}  // namespace radar::nn
