#include "nn/pooling.h"

#include <limits>

namespace radar::nn {

Tensor GlobalAvgPool::forward(const Tensor& x, Mode mode) {
  RADAR_REQUIRE(x.rank() == 4, "GlobalAvgPool expects NCHW");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t spatial = h * w;
  Tensor y({n, c});
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* xc = x.data() + x.idx4(s, ch, 0, 0);
      double acc = 0.0;
      for (std::int64_t j = 0; j < spatial; ++j) acc += xc[j];
      y[y.idx2(s, ch)] = static_cast<float>(acc / static_cast<double>(spatial));
    }
  }
  if (needs_cache(mode)) cached_shape_ = x.shape();
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  RADAR_REQUIRE(!cached_shape_.empty(),
                "backward before forward(training=true)");
  const std::int64_t n = cached_shape_[0], c = cached_shape_[1],
                     h = cached_shape_[2], w = cached_shape_[3];
  RADAR_REQUIRE(grad_out.dim(0) == n && grad_out.dim(1) == c,
                "grad_out shape mismatch");
  const std::int64_t spatial = h * w;
  const float inv = 1.0f / static_cast<float>(spatial);
  Tensor gx(cached_shape_);
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_out[grad_out.idx2(s, ch)] * inv;
      float* gxc = gx.data() + gx.idx4(s, ch, 0, 0);
      for (std::int64_t j = 0; j < spatial; ++j) gxc[j] = g;
    }
  }
  return gx;
}

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride,
                     std::int64_t padding)
    : kernel_(kernel), stride_(stride), padding_(padding) {
  RADAR_REQUIRE(kernel > 0 && stride > 0 && padding >= 0,
                "bad pooling geometry");
}

Tensor MaxPool2d::forward(const Tensor& x, Mode mode) {
  RADAR_REQUIRE(x.rank() == 4, "MaxPool2d expects NCHW");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = out_size(h), ow = out_size(w);
  RADAR_REQUIRE(oh > 0 && ow > 0, "pool output collapses to zero size");
  Tensor y({n, c, oh, ow});
  const bool cache = needs_cache(mode);
  if (cache) {
    argmax_.assign(static_cast<std::size_t>(y.numel()), -1);
    cached_shape_ = x.shape();
  }
  std::int64_t out_i = 0;
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t yo = 0; yo < oh; ++yo) {
        for (std::int64_t xo = 0; xo < ow; ++xo, ++out_i) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = -1;
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            const std::int64_t yi = yo * stride_ - padding_ + kh;
            if (yi < 0 || yi >= h) continue;
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              const std::int64_t xi = xo * stride_ - padding_ + kw;
              if (xi < 0 || xi >= w) continue;
              const std::int64_t idx = x.idx4(s, ch, yi, xi);
              if (x[idx] > best) {
                best = x[idx];
                best_idx = idx;
              }
            }
          }
          // A window entirely in padding contributes 0 (cannot happen for
          // valid geometries, but keep the output well-defined).
          y[out_i] = best_idx >= 0 ? best : 0.0f;
          if (cache) argmax_[static_cast<std::size_t>(out_i)] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  RADAR_REQUIRE(!cached_shape_.empty(),
                "backward before forward(training=true)");
  RADAR_REQUIRE(
      grad_out.numel() == static_cast<std::int64_t>(argmax_.size()),
      "grad_out element count mismatch");
  Tensor gx(cached_shape_);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    const std::int64_t src = argmax_[static_cast<std::size_t>(i)];
    if (src >= 0) gx[src] += grad_out[i];
  }
  return gx;
}

}  // namespace radar::nn
