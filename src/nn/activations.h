// Elementwise activations and shape adapters (ReLU, Flatten).
#pragma once

#include "nn/layer.h"

namespace radar::nn {

/// Rectified linear unit; caches the sign mask for backward.
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string kind() const override { return "ReLU"; }

 private:
  std::vector<std::uint8_t> mask_;  ///< 1 where input > 0
  std::vector<std::int64_t> cached_shape_;
};

/// Collapse [N, C, H, W] (or any rank >= 2) into [N, C*H*W].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string kind() const override { return "Flatten"; }

 private:
  std::vector<std::int64_t> cached_shape_;
};

}  // namespace radar::nn
